// Package repro reproduces "On Mitigation of Side-Channel Attacks in 3D
// ICs: Decorrelating Thermal Patterns from Power and Activity" (Knechtel &
// Sinanoglu, DAC 2017) as a self-contained Go library.
//
// The public entry point is the repro/tscfp package: tscfp.NewFlow binds a
// design to functional options (mode, seed, annealing budget, grid
// resolution, dummy-TSV post-processing, progress callbacks), Flow.Run(ctx)
// executes the full TSC-aware floorplanning flow with cooperative
// cancellation, and tscfp.Sweep fans a parameter grid (seeds × modes × grid
// sizes) out over a worker pool. Results and designs serialize to stable
// JSON; the same design, seed, and options reproduce a Result
// byte-identically.
//
//	design, _ := tscfp.Benchmark("n100")
//	res, err := tscfp.Run(ctx, design,
//		tscfp.WithMode(tscfp.TSCAware),
//		tscfp.WithSeed(1))
//
// The implementation lives under internal/: the TSC-aware floorplanning
// flow (internal/core) on top of a corner-sequence floorplanner
// (internal/floorplan, internal/anneal), a HotSpot-class thermal solver
// (internal/thermal), leakage metrics (internal/leakage), Elmore/STA timing
// (internal/timing), voltage volumes (internal/volt), TSV planning
// (internal/tsv), activity modelling (internal/activity), the Sec. 5
// attacks (internal/attack), and Table 1 benchmark synthesis
// (internal/bench).
//
// The benchmarks in bench_test.go regenerate every table and figure of the
// paper's evaluation; the cmd/ binaries (tscfp, attacksim, thermalmap) and
// the examples/ walk through the experiments interactively.
package repro
