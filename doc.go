// Package repro reproduces "On Mitigation of Side-Channel Attacks in 3D
// ICs: Decorrelating Thermal Patterns from Power and Activity" (Knechtel &
// Sinanoglu, DAC 2017) as a self-contained Go library.
//
// The implementation lives under internal/: the TSC-aware floorplanning
// flow (internal/core) on top of a corner-sequence floorplanner
// (internal/floorplan, internal/anneal), a HotSpot-class thermal solver
// (internal/thermal), leakage metrics (internal/leakage), Elmore/STA timing
// (internal/timing), voltage volumes (internal/volt), TSV planning
// (internal/tsv), activity modelling (internal/activity), the Sec. 5
// attacks (internal/attack), and Table 1 benchmark synthesis
// (internal/bench).
//
// The benchmarks in bench_test.go regenerate every table and figure of the
// paper's evaluation; see DESIGN.md for the experiment index and
// EXPERIMENTS.md for paper-vs-measured results.
package repro
