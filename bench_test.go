// Benchmark harness: one testing.B benchmark per table/figure of the
// paper's evaluation (see DESIGN.md for the experiment index, EXPERIMENTS.md
// for recorded results). Each benchmark prints the rows/series the paper
// reports; run with
//
//	go test -bench=. -benchmem -benchtime=1x
//
// Environment knobs (defaults hold the full sweep under ~15 min on a
// laptop; raise them to approach the paper's 50-run averages):
//
//	REPRO_BENCH_ITERS    SA iterations per floorplanning run (default 800)
//	REPRO_BENCH_SAMPLES  activity samples for Eq. 2 (default 30; paper 100)
//	REPRO_BENCH_RUNS     independent runs per (benchmark, mode) (default 1; paper 50)
//	REPRO_BENCH_SET      comma-separated benchmark subset (default all six)
package repro

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/activity"
	"repro/internal/attack"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/leakage"
	"repro/internal/noiseinject"
	"repro/internal/thermal"
	"repro/internal/tsv"
)

func envInt(name string, def int) int {
	if v := os.Getenv(name); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return def
}

func benchIters() int   { return envInt("REPRO_BENCH_ITERS", 800) }
func benchSamples() int { return envInt("REPRO_BENCH_SAMPLES", 30) }
func benchRuns() int    { return envInt("REPRO_BENCH_RUNS", 1) }

func benchSet() []string {
	if v := os.Getenv("REPRO_BENCH_SET"); v != "" {
		return strings.Split(v, ",")
	}
	return []string{"n100", "n200", "n300", "ibm01", "ibm03", "ibm07"}
}

// --- E3: Table 1 — benchmark properties --------------------------------------

func BenchmarkTable1Benchmarks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fmt.Printf("\nTable 1: benchmark properties (generated)\n")
		fmt.Printf("%-8s %9s %6s %7s %7s %10s %10s\n",
			"name", "mods(h/s)", "scale", "nets", "pins", "mm^2/die", "power[W]")
		for _, spec := range bench.Table1() {
			d, err := bench.Generate(spec)
			if err != nil {
				b.Fatal(err)
			}
			fmt.Printf("%-8s %4d/%-4d %6.0f %7d %7d %10.2f %10.2f\n",
				d.Name, d.HardCount(), d.SoftCount(), spec.ScaleFactor,
				len(d.Nets), len(d.Terminals), d.OutlineW*d.OutlineH/1e6, d.TotalPower())
		}
	}
}

// --- E1: Figure 1 — time scales of power vs temperature ----------------------

func BenchmarkFigure1TimeScales(b *testing.B) {
	for i := 0; i < b.N; i++ {
		const n = 16
		cfg := thermal.DefaultConfig(n, n, 4000, 4000, 2)
		stack := thermal.NewStack(cfg)
		p := geom.NewGrid(n, n)
		p.Fill(10.0 / (n * n))
		stack.SetDiePower(0, p)
		steady, _ := stack.SolveSteady(nil, thermal.SolverOpts{})
		rise := steady.Peak() - cfg.Ambient

		traj := stack.SolveTransient(nil, 1e-3, 400, 1, nil)
		tau := math.NaN()
		for k, sol := range traj {
			if sol.Peak()-cfg.Ambient >= 0.63*rise {
				tau = float64(k+1) * 1e-3
				break
			}
		}
		base := traj[len(traj)-1]
		tog := stack.SolveTransient(base, 1e-4, 200, 1, func(s int) float64 {
			if s%2 == 0 {
				return 2
			}
			return 0
		})
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, sol := range tog[20:] {
			pk := sol.Peak()
			lo = math.Min(lo, pk)
			hi = math.Max(hi, pk)
		}
		fmt.Printf("\nFigure 1: thermal tau=%.0f ms vs activity period 0.2 ms; "+
			"ripple %.3f K = %.1f%% of %.1f K steady rise\n",
			tau*1e3, hi-lo, 100*(hi-lo)/rise, rise)
		b.ReportMetric(tau*1e3, "tau_ms")
		b.ReportMetric(100*(hi-lo)/rise, "ripple_%")
	}
}

// --- E2: Figure 2 / Sec. 3 — power x TSV exploration --------------------------

func BenchmarkFigure2Exploration(b *testing.B) {
	const n, die = 32, 4000.0
	const seeds = 3
	for i := 0; i < b.N; i++ {
		fmt.Printf("\nFigure 2: bottom-die correlation, averaged over %d seeds\n", seeds)
		fmt.Printf("%-20s", "power \\ TSV")
		for _, tp := range tsv.AllPatterns() {
			fmt.Printf(" %18s", tp)
		}
		fmt.Println()
		avgByTSV := map[tsv.Pattern]float64{}
		for _, pp := range activity.AllPowerPatterns() {
			fmt.Printf("%-20s", pp)
			for _, tp := range tsv.AllPatterns() {
				sum := 0.0
				for s := int64(0); s < seeds; s++ {
					rng := rand.New(rand.NewSource(100 + s))
					p0 := activity.GeneratePowerMap(pp, n, n, 4, rng)
					p1 := activity.GeneratePowerMap(pp, n, n, 4, rng)
					plan := tsv.GeneratePattern(tp, die, die, rng)
					stack := thermal.NewStack(thermal.DefaultConfig(n, n, die, die, 2))
					stack.SetDiePower(0, p0)
					stack.SetDiePower(1, p1)
					if len(plan.TSVs) > 0 {
						stack.SetTSVMap(plan.CuFractionMap(n, n))
					}
					sol, _ := stack.SolveSteady(nil, thermal.SolverOpts{})
					sum += leakage.Pearson(p0, sol.DieTemp(0))
				}
				r := sum / seeds
				fmt.Printf(" %18.3f", r)
				if pp != activity.GloballyUniform {
					avgByTSV[tp] += r / float64(len(activity.AllPowerPatterns())-1)
				}
			}
			fmt.Println()
		}
		fmt.Printf("%-20s", "avg (non-uniform)")
		for _, tp := range tsv.AllPatterns() {
			fmt.Printf(" %18.3f", avgByTSV[tp])
		}
		fmt.Println()
	}
}

// --- shared Table 2 runs ------------------------------------------------------

type runKey struct {
	bench string
	mode  core.Mode
	seed  int64
}

var (
	runCacheMu sync.Mutex
	runCache   = map[runKey]*core.Result{}
)

func cachedRun(b *testing.B, name string, mode core.Mode, seed int64) *core.Result {
	b.Helper()
	key := runKey{name, mode, seed}
	runCacheMu.Lock()
	defer runCacheMu.Unlock()
	if r, ok := runCache[key]; ok {
		return r
	}
	des := bench.MustGenerate(name)
	// Annealing budget scales with design size: a fixed iteration count
	// that explores n100 well leaves the 1000+-module IBM designs nearly
	// random, which would drown the PA-vs-TSC deltas in packing noise.
	iters := benchIters()
	if scaled := 3 * len(des.Modules); scaled > iters {
		iters = scaled
	}
	res, err := core.Run(des, core.Config{
		Mode:            mode,
		SAIterations:    iters,
		ActivitySamples: benchSamples(),
		Seed:            seed,
	})
	if err != nil {
		b.Fatal(err)
	}
	runCache[key] = res
	return res
}

type avgMetrics struct {
	core.Metrics
	n int
}

func (a *avgMetrics) add(m core.Metrics) {
	a.S1 += m.S1
	a.S2 += m.S2
	a.R1 += m.R1
	a.R2 += m.R2
	a.PowerW += m.PowerW
	a.CriticalNS += m.CriticalNS
	a.WirelengthM += m.WirelengthM
	a.PeakTempK += m.PeakTempK
	a.SignalTSVs += m.SignalTSVs
	a.DummyTSVs += m.DummyTSVs
	a.VoltageVolumes += m.VoltageVolumes
	a.RuntimeSec += m.RuntimeSec
	a.n++
}

func (a *avgMetrics) avg() core.Metrics {
	m := a.Metrics
	n := float64(a.n)
	m.S1 /= n
	m.S2 /= n
	m.R1 /= n
	m.R2 /= n
	m.PowerW /= n
	m.CriticalNS /= n
	m.WirelengthM /= n
	m.PeakTempK /= n
	m.RuntimeSec /= n
	return m
}

func averaged(b *testing.B, name string, mode core.Mode) core.Metrics {
	var a avgMetrics
	for k := 0; k < benchRuns(); k++ {
		a.add(cachedRun(b, name, mode, int64(1+k)).Metrics)
	}
	m := a.avg()
	// Integer columns: averaged over runs.
	m.SignalTSVs = a.SignalTSVs / a.n
	m.DummyTSVs = a.DummyTSVs / a.n
	m.VoltageVolumes = a.VoltageVolumes / a.n
	return m
}

// --- E5: Figure 5 + Table 2 (top) — leakage metrics PA vs TSC -----------------

func BenchmarkTable2Leakage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fmt.Printf("\nTable 2 (top): leakage metrics, %d run(s), %d SA iters, %d activity samples\n",
			benchRuns(), benchIters(), benchSamples())
		fmt.Printf("%-8s | %8s %8s %8s %8s | %8s %8s %8s %8s | %8s\n",
			"bench", "PA S1", "PA r1", "PA S2", "PA r2", "TSC S1", "TSC r1", "TSC S2", "TSC r2", "dr1 %")
		var paR1, tscR1 float64
		cnt := 0
		for _, name := range benchSet() {
			pa := averaged(b, name, core.PowerAware)
			ts := averaged(b, name, core.TSCAware)
			drop := 100 * (pa.R1 - ts.R1) / math.Abs(pa.R1)
			fmt.Printf("%-8s | %8.3f %8.3f %8.3f %8.3f | %8.3f %8.3f %8.3f %8.3f | %8.2f\n",
				name, pa.S1, pa.R1, pa.S2, pa.R2, ts.S1, ts.R1, ts.S2, ts.R2, drop)
			paR1 += pa.R1
			tscR1 += ts.R1
			cnt++
		}
		avgDrop := 100 * (paR1 - tscR1) / math.Abs(paR1)
		fmt.Printf("average r1 reduction TSC vs PA: %.2f%% (paper: 7.71%%)\n", avgDrop)
		b.ReportMetric(avgDrop, "r1_drop_%")
	}
}

// --- E6: Table 2 (bottom) — design cost PA vs TSC -----------------------------

func BenchmarkTable2DesignCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fmt.Printf("\nTable 2 (bottom): design cost, %d run(s) per cell\n", benchRuns())
		fmt.Printf("%-8s | %9s %9s %9s %9s %6s %6s %5s %7s | mode\n",
			"bench", "power[W]", "delay[ns]", "wl[m]", "peak[K]", "sTSV", "dTSV", "vol", "time[s]")
		type agg struct {
			pow, delay, wl, peak, time float64
			vol                        int
			n                          int
		}
		sum := map[core.Mode]*agg{core.PowerAware: {}, core.TSCAware: {}}
		for _, name := range benchSet() {
			for _, mode := range []core.Mode{core.PowerAware, core.TSCAware} {
				m := averaged(b, name, mode)
				tag := "PA"
				if mode == core.TSCAware {
					tag = "TSC"
				}
				fmt.Printf("%-8s | %9.3f %9.3f %9.3f %9.2f %6d %6d %5d %7.1f | %s\n",
					name, m.PowerW, m.CriticalNS, m.WirelengthM, m.PeakTempK,
					m.SignalTSVs, m.DummyTSVs, m.VoltageVolumes, m.RuntimeSec, tag)
				s := sum[mode]
				s.pow += m.PowerW
				s.delay += m.CriticalNS
				s.wl += m.WirelengthM
				s.peak += m.PeakTempK - 293
				s.time += m.RuntimeSec
				s.vol += m.VoltageVolumes
				s.n++
			}
		}
		pa, ts := sum[core.PowerAware], sum[core.TSCAware]
		fmt.Printf("deltas TSC vs PA: power %+.2f%% (paper +5.38%%), delay %+.2f%% (paper +10.33%%), "+
			"wl %+.2f%% (paper +1.08%%), peak-over-ambient %+.2f%% (paper -13.22%%), "+
			"volumes %+.2f%% (paper +87.17%%), runtime x%.2f (paper x2.5)\n",
			100*(ts.pow-pa.pow)/pa.pow, 100*(ts.delay-pa.delay)/pa.delay,
			100*(ts.wl-pa.wl)/pa.wl, 100*(ts.peak-pa.peak)/pa.peak,
			100*float64(ts.vol-pa.vol)/float64(pa.vol), ts.time/pa.time)
	}
}

// --- E4: Figure 4 / Sec. 7.1 — dummy-TSV post-processing ----------------------

func BenchmarkFigure4PostProcessing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := cachedRun(b, "n100", core.TSCAware, 1)
		m := res.Metrics
		drop := 0.0
		if m.PostCorrelationBefore > 0 {
			drop = 100 * (m.PostCorrelationBefore - m.PostCorrelationAfter) / m.PostCorrelationBefore
		}
		fmt.Printf("\nFigure 4: n100 dummy-TSV post-processing: r1 %.3f -> %.3f (-%.1f%%; paper 0.461 -> 0.324, -29.7%%), %d dummy vias in %d-via groups\n",
			m.PostCorrelationBefore, m.PostCorrelationAfter, drop, m.DummyTSVs, 8)
		b.ReportMetric(drop, "r1_drop_%")
		b.ReportMetric(float64(m.DummyTSVs), "dummy_vias")
	}
}

// --- Extension: monolithic 3D flavour (paper footnote 1 / future work) --------

// BenchmarkMonolithicFlavor contrasts the TSV-based stack with monolithic
// integration: the thin ILD couples tiers near-isothermally, so each tier's
// map blends both tiers' power patterns and the per-tier correlation
// changes "considerably", as the paper's footnote predicts.
func BenchmarkMonolithicFlavor(b *testing.B) {
	const n, die = 32, 4000.0
	for i := 0; i < b.N; i++ {
		fmt.Printf("\nMonolithic vs TSV-based flavour: bottom-die/tier correlation\n")
		fmt.Printf("%-20s %12s %12s %12s\n", "power pattern", "TSV-based", "monolithic", "delta")
		for _, pp := range activity.AllPowerPatterns() {
			if pp == activity.GloballyUniform {
				continue
			}
			rng := rand.New(rand.NewSource(42))
			p0 := activity.GeneratePowerMap(pp, n, n, 4, rng)
			p1 := activity.GeneratePowerMap(pp, n, n, 4, rng)
			eval := func(cfg thermal.Config) float64 {
				s := thermal.NewStack(cfg)
				s.SetDiePower(0, p0)
				s.SetDiePower(1, p1)
				sol, _ := s.SolveSteady(nil, thermal.SolverOpts{})
				return leakage.Pearson(p0, sol.DieTemp(0))
			}
			tsvR := eval(thermal.DefaultConfig(n, n, die, die, 2))
			monoR := eval(thermal.MonolithicConfig(n, n, die, die, 2))
			fmt.Printf("%-20s %12.3f %12.3f %12.3f\n", pp, tsvR, monoR, monoR-tsvR)
		}
	}
}

// --- Prior art: noise injection (Gu et al.), the paper's Sec.-1 critique ------

// BenchmarkPriorArtNoiseInjection reproduces the paper's argument against
// runtime thermal-noise injection: meaningful mitigation requires injection
// rates whose power cost dwarfs the TSC-aware floorplan's few percent.
func BenchmarkPriorArtNoiseInjection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pa := cachedRun(b, "n100", core.PowerAware, 1)
		ts := cachedRun(b, "n100", core.TSCAware, 1)
		ctl := noiseinject.Controller{}
		alphas := []float64{0, 0.1, 0.25, 0.5, 1.0}
		fmt.Printf("\nPrior art (noise injection on the PA floorplan) vs TSC-aware floorplanning:\n")
		fmt.Printf("%-28s %8s %10s %10s\n", "countermeasure", "r1", "power[W]", "peak[K]")
		basePower := pa.Metrics.PowerW
		for _, r := range ctl.Sweep(pa, alphas) {
			fmt.Printf("inject alpha=%-17.2f %8.3f %10.3f %10.2f\n",
				r.Alpha, math.Abs(r.R[0]), basePower+r.InjectedW, r.PeakTempK)
		}
		fmt.Printf("%-28s %8.3f %10.3f %10.2f\n",
			"TSC-aware floorplan", math.Abs(ts.Metrics.R1), ts.Metrics.PowerW, ts.Metrics.PeakTempK)
		fmt.Printf("(paper: injection only mitigates at the highest rates; our flow pays %.1f%% power)\n",
			100*(ts.Metrics.PowerW-basePower)/basePower)
	}
}

// --- Ablations: isolate the contribution of each design choice ---------------

// BenchmarkAblationDesignRule reproduces the paper's Sec. 7.2 observation:
// relaxing Corblivar's thermal design rule (high-power modules toward the
// heatsink-side die) "prohibitively increases the peak temperatures".
func BenchmarkAblationDesignRule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		des := bench.MustGenerate("n100")
		run := func(ruleWeight float64) core.Metrics {
			w := core.DefaultWeights(core.TSCAware)
			w.DesignRule = ruleWeight
			res, err := core.Run(des, core.Config{
				Mode: core.TSCAware, SAIterations: benchIters(),
				ActivitySamples: benchSamples(), Seed: 1, Weights: &w,
			})
			if err != nil {
				b.Fatal(err)
			}
			return res.Metrics
		}
		with := run(0.5)
		without := run(0)
		fmt.Printf("\nAblation (design rule, n100 TSC): with rule peak %.2f K r2 %.3f | relaxed peak %.2f K r2 %.3f\n",
			with.PeakTempK, with.R2, without.PeakTempK, without.R2)
		b.ReportMetric(without.PeakTempK-with.PeakTempK, "peak_delta_K")
	}
}

// BenchmarkAblationLeakageTerms isolates the SA leakage objective from the
// dummy-TSV stage: TSC weights with the correlation/entropy terms zeroed
// degenerate to power-aware search plus post-processing.
func BenchmarkAblationLeakageTerms(b *testing.B) {
	for i := 0; i < b.N; i++ {
		des := bench.MustGenerate("n100")
		run := func(leak bool) core.Metrics {
			w := core.DefaultWeights(core.TSCAware)
			if !leak {
				w.Correlation, w.SpatialEntropy = 0, 0
			}
			res, err := core.Run(des, core.Config{
				Mode: core.TSCAware, SAIterations: benchIters(),
				ActivitySamples: benchSamples(), Seed: 1, Weights: &w,
			})
			if err != nil {
				b.Fatal(err)
			}
			return res.Metrics
		}
		full := run(true)
		noLeak := run(false)
		fmt.Printf("\nAblation (SA leakage terms, n100 TSC): full r1 %.3f | post-processing only r1 %.3f\n",
			full.R1, noLeak.R1)
		b.ReportMetric(noLeak.R1-full.R1, "r1_delta")
	}
}

// BenchmarkAblationPostProcessing isolates the dummy-TSV stage.
func BenchmarkAblationPostProcessing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		des := bench.MustGenerate("n100")
		run := func(post bool) core.Metrics {
			res, err := core.Run(des, core.Config{
				Mode: core.TSCAware, SAIterations: benchIters(),
				ActivitySamples: benchSamples(), Seed: 1, PostProcess: &post,
			})
			if err != nil {
				b.Fatal(err)
			}
			return res.Metrics
		}
		with := run(true)
		without := run(false)
		fmt.Printf("\nAblation (dummy TSVs, n100 TSC): with r1 %.3f (%d vias) | without r1 %.3f\n",
			with.R1, with.DummyTSVs, without.R1)
		b.ReportMetric(without.R1-with.R1, "r1_delta")
	}
}

// --- E7: Sec. 5 attacks — localization PA vs TSC ------------------------------

func BenchmarkAttackLocalization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fmt.Printf("\nSec. 5 attacks on n100 (8 hottest modules):\n")
		sensors := attack.DefaultSensors()
		var paErr, tscErr float64
		for _, mode := range []core.Mode{core.PowerAware, core.TSCAware} {
			res := cachedRun(b, "n100", mode, 1)
			order := make([]int, len(res.Design.Modules))
			for k := range order {
				order[k] = k
			}
			sort.Slice(order, func(x, y int) bool {
				return res.Design.Modules[order[x]].Power > res.Design.Modules[order[y]].Power
			})
			dev := attack.NewDevice(res, sensors, 1)
			st := attack.LocalizeAll(dev, order[:8], attack.LocalizeOptions{})
			rng := rand.New(rand.NewSource(2))
			ch := attack.Characterize(dev, order[:8], 4, rng)
			fmt.Printf("  %-12s hit %.2f  die %.2f  err %6.0f um  charR2 %.3f\n",
				mode, st.HitRate, st.DieRate, st.MeanError, ch.R2)
			if mode == core.PowerAware {
				paErr = st.MeanError
			} else {
				tscErr = st.MeanError
			}
			dev.Reset()
		}
		b.ReportMetric(tscErr-paErr, "err_delta_um")
	}
}
