// Golden end-to-end regression fixtures: fixed-seed tscfp runs serialized
// as Result JSON under testdata/golden/, compared field-by-field with
// tolerances. They pin the WHOLE incremental stack (cost, voltage, entropy,
// adjacency caches — all default-on) plus the finalize/post-process stages
// against the exact outputs recorded at review time: any change that shifts
// an annealing decision, a metric, or the JSON schema shows up as a named
// field diff here rather than as silent drift.
//
// Regenerate after an intentional behavior change with:
//
//	go test -run TestGolden -update
//
// and review the fixture diff like any other code change.
package repro

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/tscfp"
)

var updateGolden = flag.Bool("update", false, "regenerate the golden fixtures under testdata/golden/")

// goldenTol is the per-number relative tolerance. The flow is deterministic
// for a fixed seed, so fixtures reproduce byte-identically on the platform
// that recorded them; the tolerance only absorbs cross-platform libm/FMA
// differences in the float-heavy fields.
const goldenTol = 1e-9

func goldenCases() []struct {
	name string
	opts []tscfp.Option
} {
	// Small budgets: each case must stay test-suite cheap while still
	// covering annealing, TSV planning, voltage assignment, verification,
	// and (TSC case) sampling + dummy-TSV post-processing.
	return []struct {
		name string
		opts []tscfp.Option
	}{
		{"n100-tsc-seed7", []tscfp.Option{
			tscfp.WithMode(tscfp.TSCAware),
			tscfp.WithSeed(7),
			tscfp.WithIterations(150),
			tscfp.WithGridN(16),
			tscfp.WithActivitySamples(6),
			tscfp.WithMaxDummyGroups(4),
		}},
		{"n100-pa-seed7", []tscfp.Option{
			tscfp.WithMode(tscfp.PowerAware),
			tscfp.WithSeed(7),
			tscfp.WithIterations(150),
			tscfp.WithGridN(16),
		}},
		// The parallel annealer's determinism contract: 3 tempered replicas
		// with 2-wide speculation walk a different (documented) search than
		// serial, but a fixed (seed, replicas, speculation) triple must
		// reproduce this fixture byte-for-byte on any GOMAXPROCS — CI runs
		// this package at -cpu 1,4,8 under -race, so the same fixture bytes
		// pin all three schedules.
		{"n100-tsc-seed7-repl3", []tscfp.Option{
			tscfp.WithMode(tscfp.TSCAware),
			tscfp.WithSeed(7),
			tscfp.WithIterations(150),
			tscfp.WithGridN(16),
			tscfp.WithActivitySamples(6),
			tscfp.WithMaxDummyGroups(4),
			tscfp.WithReplicas(3),
			tscfp.WithSpeculation(2),
		}},
	}
}

// TestGoldenReplicasOffIdentity pins the flow-identity half of the parallel
// annealing contract end to end: WithReplicas(1) / WithSpeculation(1) route
// through the untouched serial path and must reproduce the SERIAL golden
// fixture byte-for-byte — not merely match another run of themselves.
func TestGoldenReplicasOffIdentity(t *testing.T) {
	design := tscfp.MustBenchmark("n100")
	serial := goldenCases()[0] // n100-tsc-seed7
	opts := append(append([]tscfp.Option{}, serial.opts...),
		tscfp.WithReplicas(1), tscfp.WithSpeculation(1))
	res, err := tscfp.Run(t.Context(), design, opts...)
	if err != nil {
		t.Fatal(err)
	}
	res.Metrics.RuntimeSec = 0
	got, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "golden", serial.name+".json"))
	if err != nil {
		t.Fatalf("missing golden fixture (run `go test -run TestGolden -update`): %v", err)
	}
	if diffs := diffJSON(t, got, want); len(diffs) > 0 {
		t.Fatalf("replicas=1 diverged from the serial fixture:\n%s", joinLines(diffs))
	}
}

func TestGoldenResults(t *testing.T) {
	design := tscfp.MustBenchmark("n100")
	for _, tc := range goldenCases() {
		t.Run(tc.name, func(t *testing.T) {
			res, err := tscfp.Run(t.Context(), design, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			// Runtime is the one documented non-deterministic field.
			res.Metrics.RuntimeSec = 0
			got, err := res.JSON()
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "golden", tc.name+".json")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, append(got, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("regenerated %s", path)
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden fixture (run `go test -run TestGolden -update`): %v", err)
			}
			diffs := diffJSON(t, got, want)
			if len(diffs) > 0 {
				const show = 12
				if len(diffs) > show {
					diffs = append(diffs[:show], fmt.Sprintf("... and %d more", len(diffs)-show))
				}
				t.Fatalf("result diverges from %s:\n%s", path, joinLines(diffs))
			}
		})
	}
}

// diffJSON decodes both documents and walks them field by field, comparing
// numbers with the golden tolerance and everything else exactly. Returned
// diffs name the JSON path of each mismatch.
func diffJSON(t *testing.T, got, want []byte) []string {
	t.Helper()
	var g, w any
	if err := json.Unmarshal(got, &g); err != nil {
		t.Fatalf("decode current result: %v", err)
	}
	if err := json.Unmarshal(want, &w); err != nil {
		t.Fatalf("decode golden fixture: %v", err)
	}
	var diffs []string
	walkDiff("$", g, w, &diffs)
	return diffs
}

func walkDiff(path string, got, want any, diffs *[]string) {
	switch w := want.(type) {
	case map[string]any:
		g, ok := got.(map[string]any)
		if !ok {
			*diffs = append(*diffs, fmt.Sprintf("%s: object expected, got %T", path, got))
			return
		}
		keys := make([]string, 0, len(w))
		for k := range w {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			gv, ok := g[k]
			if !ok {
				*diffs = append(*diffs, fmt.Sprintf("%s.%s: missing in current result", path, k))
				continue
			}
			walkDiff(path+"."+k, gv, w[k], diffs)
		}
		for k := range g {
			if _, ok := w[k]; !ok {
				*diffs = append(*diffs, fmt.Sprintf("%s.%s: not in golden fixture", path, k))
			}
		}
	case []any:
		g, ok := got.([]any)
		if !ok {
			*diffs = append(*diffs, fmt.Sprintf("%s: array expected, got %T", path, got))
			return
		}
		if len(g) != len(w) {
			*diffs = append(*diffs, fmt.Sprintf("%s: length %d, want %d", path, len(g), len(w)))
			return
		}
		for i := range w {
			walkDiff(fmt.Sprintf("%s[%d]", path, i), g[i], w[i], diffs)
		}
	case float64:
		g, ok := got.(float64)
		if !ok {
			*diffs = append(*diffs, fmt.Sprintf("%s: number expected, got %T", path, got))
			return
		}
		if d := math.Abs(g - w); d > goldenTol*math.Max(1, math.Abs(w)) {
			*diffs = append(*diffs, fmt.Sprintf("%s: %v, want %v (|diff| %g)", path, g, w, d))
		}
	default:
		if got != want {
			*diffs = append(*diffs, fmt.Sprintf("%s: %v, want %v", path, got, want))
		}
	}
}

func joinLines(lines []string) string {
	out := ""
	for _, l := range lines {
		out += "  " + l + "\n"
	}
	return out
}
