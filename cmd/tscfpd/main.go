// Command tscfpd is the floorplanning-as-a-service daemon: it accepts JSON
// job submissions over HTTP (single runs and sweep grids), executes them on
// a bounded worker pool over the tscfp flow, streams per-stage progress as
// server-sent events, and dedupes identical submissions through a
// content-addressed result store. See internal/server for the REST surface
// and docs/ARCHITECTURE.md for queue/store/drain semantics.
//
// Configuration is flags-first with env fallbacks (flag wins), so the same
// binary runs standalone or as a k8s Deployment:
//
//	-addr            TSCFPD_ADDR, or ":"+PORT     listen address (default :8080)
//	-workers         TSCFPD_WORKERS               job worker pool size (default GOMAXPROCS)
//	-queue           TSCFPD_QUEUE                 admission queue bound (default 256)
//	-max-body        TSCFPD_MAX_BODY              submission body cap in bytes (default 8 MiB)
//	-drain-timeout   TSCFPD_DRAIN_TIMEOUT         grace for in-flight jobs on SIGTERM (default 30s)
//	-data-dir        TSCFPD_DATA_DIR              durable artifact registry directory
//	                                              (default "": ephemeral in-memory store)
//	-max-store-bytes TSCFPD_MAX_STORE_BYTES       on-disk artifact payload bound (0 = unbounded)
//	-max-cache-bytes TSCFPD_MAX_CACHE_BYTES       in-RAM payload cache bound (default 64 MiB)
//	-retention       TSCFPD_RETENTION             evict artifacts / terminal job records idle
//	                                              longer than this (0 = keep)
//	-max-jobs        TSCFPD_MAX_JOBS              job table bound, terminal records GC'd
//	                                              oldest-first (default 4096)
//
// With -data-dir set, every artifact (results, sweep manifests) is written
// atomically under its content address with a lineage sidecar; a restarted
// daemon rescans the directory, quarantines corrupt files, and serves prior
// results as dedupe hits — byte-identical, original lineage, no recompute.
// Without it the store is in-memory and lost on exit.
//
// SIGTERM/SIGINT trigger graceful drain: /readyz flips to 503, admission
// stops, in-flight jobs get the drain timeout to finish before their
// contexts are cancelled, then the listener shuts down.
//
// Quick start:
//
//	tscfpd -data-dir /var/lib/tscfpd &
//	curl -s localhost:8080/v1/jobs -d '{"benchmark":"n100","options":{"seed":1,"iterations":500}}'
//	curl -N localhost:8080/v1/jobs/j-000001/events     # follow SSE progress
//	curl -s localhost:8080/v1/jobs/j-000001/result     # fetch the Result JSON
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"repro/internal/registry"
	"repro/internal/server"
	"repro/internal/version"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tscfpd: ")

	var (
		addr         = flag.String("addr", envStr("TSCFPD_ADDR", envPort(":8080")), "listen address")
		workers      = flag.Int("workers", envInt("TSCFPD_WORKERS", 0), "job worker pool size (0 = one per CPU)")
		queueCap     = flag.Int("queue", envInt("TSCFPD_QUEUE", 256), "admission queue bound (queued jobs)")
		maxBody      = flag.Int64("max-body", envInt64("TSCFPD_MAX_BODY", 8<<20), "max submission body size in bytes")
		drainTimeout = flag.Duration("drain-timeout", envDuration("TSCFPD_DRAIN_TIMEOUT", 30*time.Second), "grace period for in-flight jobs on shutdown")
		dataDir      = flag.String("data-dir", envStr("TSCFPD_DATA_DIR", ""), "durable artifact registry directory (empty = ephemeral in-memory store)")
		maxStore     = flag.Int64("max-store-bytes", envInt64("TSCFPD_MAX_STORE_BYTES", 0), "on-disk artifact payload bound (0 = unbounded)")
		maxCache     = flag.Int64("max-cache-bytes", envInt64("TSCFPD_MAX_CACHE_BYTES", 64<<20), "in-RAM artifact payload cache bound")
		retention    = flag.Duration("retention", envDuration("TSCFPD_RETENTION", 0), "evict artifacts and terminal job records idle longer than this (0 = keep)")
		maxJobs      = flag.Int("max-jobs", envInt("TSCFPD_MAX_JOBS", 4096), "job table bound (terminal records GC'd oldest-first)")
		showVersion  = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println("tscfpd " + version.String())
		return
	}

	var store server.Store
	var reg *registry.Registry
	if *dataDir != "" {
		var err error
		reg, err = registry.Open(registry.Config{
			Dir:           *dataDir,
			MaxStoreBytes: *maxStore,
			MaxCacheBytes: *maxCache,
			MaxAge:        *retention,
		})
		if err != nil {
			log.Fatalf("open registry: %v", err)
		}
		st := reg.Stats()
		log.Printf("registry %s: %d artifacts (%d bytes) rebuilt, %d quarantined",
			*dataDir, st.Artifacts, st.DiskBytes, st.Quarantined)
		store = reg
	} else {
		log.Print("no -data-dir: artifact store is in-memory and lost on exit")
	}

	srv := server.New(server.Config{
		Workers:      *workers,
		QueueCap:     *queueCap,
		MaxBodyBytes: *maxBody,
		Store:        store,
		MaxJobs:      *maxJobs,
		JobRetention: *retention,
	})
	srv.Start()

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Periodic retention sweep, so an idle daemon still ages artifacts and
	// terminal job records out (Put and register enforce the bounds on every
	// write; this covers the no-traffic case).
	if reg != nil && *retention > 0 {
		go func() {
			t := time.NewTicker(time.Minute)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					reg.EnforceRetention()
					srv.GC()
				}
			}
		}()
	}

	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		log.Printf("shutdown signal: draining (grace %s)", *drainTimeout)
		srv.Drain(*drainTimeout)
		// The workers are gone; give straggling readers a moment to finish
		// streaming before the listener closes.
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(shutdownCtx)
	}()

	log.Printf("listening on %s (workers=%d queue=%d)", *addr, *workers, *queueCap)
	if err := hs.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-drained
	log.Print("drained, exiting")
}

// envStr reads a string env fallback for a flag default.
func envStr(key, def string) string {
	if v := os.Getenv(key); v != "" {
		return v
	}
	return def
}

// envPort maps the conventional PORT variable (knative/k8s serving) to a
// listen address.
func envPort(def string) string {
	if p := os.Getenv("PORT"); p != "" {
		return ":" + p
	}
	return def
}

func envInt(key string, def int) int {
	if v := os.Getenv(key); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			return n
		}
		log.Fatalf("%s: not an integer: %q", key, v)
	}
	return def
}

func envInt64(key string, def int64) int64 {
	if v := os.Getenv(key); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			return n
		}
		log.Fatalf("%s: not an integer: %q", key, v)
	}
	return def
}

func envDuration(key string, def time.Duration) time.Duration {
	if v := os.Getenv(key); v != "" {
		if d, err := time.ParseDuration(v); err == nil {
			return d
		}
		log.Fatalf("%s: not a duration: %q", key, v)
	}
	return def
}
