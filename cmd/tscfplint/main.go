// Command tscfplint runs the repo's custom static-analysis suite
// (internal/analyzers): determinism, journalpair, floatcompare, ctxflow,
// and errsink — the machine-checked form of the invariants the golden,
// fuzz, and equivalence suites otherwise only catch after the fact.
//
// Standalone use (the normal mode, wired into scripts/lint.sh and CI):
//
//	tscfplint ./...
//	tscfplint -run determinism,errsink ./internal/server
//
// It also speaks enough of the vet driver protocol to run as
//
//	go vet -vettool=$(which tscfplint) ./...
//
// In that mode go vet invokes the tool once per package with a JSON
// config file; the tool type-checks the package from the config's file
// lists and export data, reports findings, and writes an (empty) facts
// file — the suite's passes are all package-local, so no facts cross
// package boundaries.
//
// Exit status: 0 clean, 1 findings, 2 operational error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/analyzers"
	"repro/internal/version"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// Vet driver protocol, part 1: `-V=full` must print a versioned
	// identity line the driver uses as a cache key.
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		fmt.Printf("tscfplint version %s\n", version.String())
		return 0
	}
	// Vet driver protocol, part 2: `-flags` asks for the tool's flag
	// definitions as JSON; the suite exposes none to the driver.
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]")
		return 0
	}
	// Vet driver protocol, part 3: a single *.cfg positional argument.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return runVetUnit(args[0])
	}

	fs := flag.NewFlagSet("tscfplint", flag.ContinueOnError)
	runList := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array instead of text")
	list := fs.Bool("list", false, "list analyzers and exit")
	fs.Usage = func() {
		//lint:besteffort usage text to the flag set's stream; nothing to do about a failed write here
		fmt.Fprintf(fs.Output(), "usage: tscfplint [-run a,b] [-json] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	suite := analyzers.All()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *runList != "" {
		suite = filterAnalyzers(suite, *runList)
		if len(suite) == 0 {
			fmt.Fprintf(os.Stderr, "tscfplint: no analyzer matches -run=%s\n", *runList)
			return 2
		}
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := analyzers.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tscfplint: %v\n", err)
		return 2
	}
	diags, err := analyzers.Run(suite, pkgs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tscfplint: %v\n", err)
		return 2
	}
	if *jsonOut {
		if diags == nil {
			diags = []analyzers.Diagnostic{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(os.Stderr, "tscfplint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Printf("%s: %s [%s]\n", d.Pos, d.Message, d.Analyzer)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "tscfplint: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}

func filterAnalyzers(suite []*analyzers.Analyzer, runList string) []*analyzers.Analyzer {
	want := map[string]bool{}
	for _, name := range strings.Split(runList, ",") {
		want[strings.TrimSpace(name)] = true
	}
	var out []*analyzers.Analyzer
	for _, a := range suite {
		if want[a.Name] {
			out = append(out, a)
		}
	}
	return out
}

// vetConfig is the unit-checker config the vet driver hands the tool; the
// field set mirrors x/tools' unitchecker.Config (the protocol is defined
// by cmd/go, not by x/tools, so speaking it needs only encoding/json).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetUnit analyzes one package as directed by a vet driver config.
func runVetUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tscfplint: %v\n", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "tscfplint: parse %s: %v\n", cfgPath, err)
		return 2
	}
	// The driver expects the facts file regardless of findings; the suite
	// is package-local so it is always empty.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "tscfplint: %v\n", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "tscfplint: %v\n", err)
			return 2
		}
		files = append(files, f)
	}
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		ef, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(ef)
	})
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "tscfplint: type-check %s: %v\n", cfg.ImportPath, err)
		return 2
	}
	pkg := &analyzers.Package{
		PkgPath:   cfg.ImportPath,
		Dir:       cfg.Dir,
		Fset:      fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}
	diags, err := analyzers.Run(analyzers.All(), []*analyzers.Package{pkg})
	if err != nil {
		fmt.Fprintf(os.Stderr, "tscfplint: %v\n", err)
		return 2
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos.Offset < diags[j].Pos.Offset })
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", d.Pos, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
