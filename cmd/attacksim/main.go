// Command attacksim floorplans a benchmark in both modes and runs the
// paper's Sec. 5 thermal side-channel attacks against each result,
// quantifying the mitigation: localization hit rate and error,
// characterization R^2, and monitoring correlation, power-aware vs
// TSC-aware.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/signal"

	"repro/internal/attack"
	"repro/internal/version"
	"repro/tscfp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("attacksim: ")
	var (
		benchName   = flag.String("bench", "n100", "benchmark name")
		iters       = flag.Int("iters", 2000, "SA iterations per floorplanning run")
		grid        = flag.Int("grid", 32, "thermal grid resolution")
		sensorsN    = flag.Int("sensors", 8, "thermal sensors per axis per die")
		noise       = flag.Float64("noise", 0.05, "sensor noise sigma in K")
		targets     = flag.Int("targets", 8, "number of attacked modules (hottest first)")
		seed        = flag.Int64("seed", 1, "random seed")
		showVersion = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println("attacksim " + version.String())
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	design := tscfp.MustBenchmark(*benchName)
	sensors := attack.Sensors{N: *sensorsN, NoiseK: *noise}

	// Attack the hottest modules (the natural targets: security modules in
	// our benchmarks carry elevated power density).
	tgt := design.HottestModules(*targets)

	for _, mode := range []tscfp.Mode{tscfp.PowerAware, tscfp.TSCAware} {
		res, err := tscfp.Run(ctx, design,
			tscfp.WithMode(mode),
			tscfp.WithGridN(*grid),
			tscfp.WithIterations(*iters),
			tscfp.WithActivitySamples(50),
			tscfp.WithSeed(*seed))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n=== %s floorplan (r1=%.3f r2=%.3f) ===\n", mode, res.Metrics.R1, res.Metrics.R2)

		dev := attack.NewDevice(res.Core(), sensors, *seed)
		st := attack.LocalizeAll(dev, tgt, attack.LocalizeOptions{})
		fmt.Printf("localization: hit rate %.2f, die rate %.2f, mean error %.0f um (%d targets)\n",
			st.HitRate, st.DieRate, st.MeanError, len(tgt))

		rng := rand.New(rand.NewSource(*seed + 100))
		ch := attack.Characterize(dev, tgt, 6, rng)
		fmt.Printf("characterization: R2=%.3f (%d probes, %d test patterns)\n",
			ch.R2, ch.Probes, ch.TestPatterns)

		mon := attack.Monitor(dev, tgt[0], st.Results[0].EstPos, 24, rng)
		fmt.Printf("monitoring hottest module %d: activity correlation %.3f\n",
			mon.Module, mon.Correlation)

		inv := attack.InvertDevice(dev, attack.InversionOptions{Iterations: 400})
		fmt.Printf("power inversion (PowerField proxy): fidelity %.3f\n", inv.MeanFidelity())

		// Covert channel between the two hottest same-die modules.
		tx := tgt[0]
		rx := -1
		for _, m := range tgt[1:] {
			if res.Modules[m].Die == res.Modules[tx].Die {
				rx = m
				break
			}
		}
		if rx >= 0 {
			cv := attack.CovertChannel(res.Core(), tx, rx, attack.CovertOptions{Bits: 24}, rng)
			fmt.Printf("covert channel %d -> %d: BER %.3f at %.0f ms/bit, %.1f bit/s capacity\n",
				cv.Transmitter, cv.Receiver, cv.BER, cv.BitPeriodS*1e3, cv.ThroughputBPS)
		}
		fmt.Printf("attacker effort: %d steady-state reads\n", dev.Solves)
	}
	fmt.Println("\nmitigation holds when the TSC-aware scores are lower.")
}
