// Command thermalmap reproduces the paper's exploratory study (Sec. 3 /
// Figure 2): all 30 combinations of 5 power-density scenarios and 6 TSV
// distributions on a two-die stack, reporting the power-temperature Pearson
// correlation per die for each combination, plus the trend summaries the
// paper derives from them.
//
// With -dump DIR, each combination's power and thermal maps are written as
// CSV files (one value row per grid row) for external plotting.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/activity"
	"repro/internal/geom"
	"repro/internal/leakage"
	"repro/internal/thermal"
	"repro/internal/tsv"
	"repro/internal/version"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("thermalmap: ")
	var (
		grid        = flag.Int("grid", 32, "grid resolution per axis")
		sizeU       = flag.Float64("die", 4000, "die edge length in um")
		power       = flag.Float64("power", 4.0, "power budget per die in W")
		seed        = flag.Int64("seed", 1, "random seed")
		dump        = flag.String("dump", "", "directory to write CSV maps into (optional)")
		showVersion = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println("thermalmap " + version.String())
		return
	}

	rng := rand.New(rand.NewSource(*seed))
	n := *grid

	fmt.Printf("%-20s %-20s %10s %10s\n", "power pattern", "TSV pattern", "r bottom", "r top")
	type cell struct{ rB, rT float64 }
	results := map[activity.PowerPattern]map[tsv.Pattern]cell{}

	for _, pp := range activity.AllPowerPatterns() {
		results[pp] = map[tsv.Pattern]cell{}
		p0 := activity.GeneratePowerMap(pp, n, n, *power, rng)
		p1 := activity.GeneratePowerMap(pp, n, n, *power, rng)
		for _, tp := range tsv.AllPatterns() {
			plan := tsv.GeneratePattern(tp, *sizeU, *sizeU, rng)
			stack := thermal.NewStack(thermal.DefaultConfig(n, n, *sizeU, *sizeU, 2))
			stack.SetDiePower(0, p0)
			stack.SetDiePower(1, p1)
			if len(plan.TSVs) > 0 {
				stack.SetTSVMap(plan.CuFractionMap(n, n))
			}
			sol, st := stack.SolveSteady(nil, thermal.SolverOpts{})
			if !st.Converged {
				log.Fatalf("%v/%v: thermal solve did not converge", pp, tp)
			}
			t0 := sol.DieTemp(0)
			t1 := sol.DieTemp(1)
			rB := leakage.Pearson(p0, t0)
			rT := leakage.Pearson(p1, t1)
			results[pp][tp] = cell{rB, rT}
			fmt.Printf("%-20s %-20s %10.3f %10.3f\n", pp, tp, rB, rT)
			if *dump != "" {
				base := fmt.Sprintf("%s_%s", sanitize(pp.String()), sanitize(tp.String()))
				mustCSV(filepath.Join(*dump, base+"_power0.csv"), p0)
				mustCSV(filepath.Join(*dump, base+"_temp0.csv"), t0)
				mustCSV(filepath.Join(*dump, base+"_power1.csv"), p1)
				mustCSV(filepath.Join(*dump, base+"_temp1.csv"), t1)
			}
		}
	}

	// Trend summaries (the paper's two key findings).
	fmt.Println("\ntrends (bottom die):")
	avg := func(tp tsv.Pattern) float64 {
		s, c := 0.0, 0
		for _, pp := range activity.AllPowerPatterns() {
			if pp == activity.GloballyUniform {
				continue // r is identically 0 there
			}
			s += results[pp][tp].rB
			c++
		}
		return s / float64(c)
	}
	for _, tp := range tsv.AllPatterns() {
		fmt.Printf("  avg r over non-uniform power, %-20s %7.3f\n", tp.String()+":", avg(tp))
	}
	fmt.Println("  expect: regular/max-density high, irregular lower, islands lowest;")
	fmt.Println("  globally-uniform power rows are identically 0 (lowest correlation).")
}

func sanitize(s string) string {
	return strings.NewReplacer("+", "_", " ", "_").Replace(s)
}

func mustCSV(path string, g *geom.Grid) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		log.Fatal(err)
	}
	var b strings.Builder
	for j := 0; j < g.NY; j++ {
		for i := 0; i < g.NX; i++ {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%.6g", g.At(i, j))
		}
		b.WriteByte('\n')
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		log.Fatal(err)
	}
}
