// Command tscfp floorplans one of the paper's benchmarks in power-aware or
// TSC-aware mode and prints a Table-2-style report: leakage metrics (S1, S2,
// r1, r2) and design cost (power, critical delay, wirelength, peak
// temperature, TSV and voltage-volume counts, runtime). Multiple runs fan
// out over the tscfp.Sweep worker pool.
//
// Usage:
//
//	tscfp -bench n100 -mode tsc -runs 3 -iters 3000
//	tscfp -bench ibm01 -mode pa -runs 8 -workers 4
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"repro/internal/version"
	"repro/tscfp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tscfp: ")

	var (
		benchName   = flag.String("bench", "n100", "benchmark name (n100 n200 n300 ibm01 ibm03 ibm07)")
		mode        = flag.String("mode", "tsc", "floorplanning mode: pa (power-aware) or tsc (TSC-aware)")
		runs        = flag.Int("runs", 1, "independent floorplanning runs to average")
		workers     = flag.Int("workers", 1, "concurrent runs (0 = one per CPU)")
		iters       = flag.Int("iters", 3000, "simulated-annealing iterations per run")
		grid        = flag.Int("grid", 32, "thermal/leakage grid resolution per axis")
		samples     = flag.Int("samples", 100, "activity samples for correlation stability (Eq. 2)")
		seed        = flag.Int64("seed", 1, "base random seed (run k uses seed+k)")
		jsonOut     = flag.String("json", "", "write the last run's full result to this JSON file")
		maps        = flag.Bool("maps", false, "print ASCII heatmaps of the last run's power/thermal maps")
		showFP      = flag.Bool("floorplan", false, "print an ASCII rendering of the last run's floorplan")
		protect     = flag.Bool("protect", false, "post-process only the sensitive modules (Sec. 7.1 adaptation)")
		par         = flag.Int("parallelism", 0, "thermal solver/estimator worker goroutines per run (0 = one per CPU, 1 = serial; results identical)")
		replicas    = flag.Int("replicas", 1, "tempered annealing chains per run (replica exchange; >= 2 is a different deterministic walk than serial)")
		speculate   = flag.Int("speculate", 1, "candidate moves evaluated concurrently per annealing step (>= 2 is a different deterministic walk than serial)")
		fullCost    = flag.Bool("full-recompute", false, "disable the incremental cost evaluator (debug/reference; much slower)")
		fullVolt    = flag.Bool("full-volt", false, "recompute the voltage assignment from scratch at every refresh instead of the incremental engine (debug/reference)")
		fullEntropy = flag.Bool("full-entropy", false, "recompute the spatial entropy from scratch per dirty die instead of the incremental entropy cache (debug/reference)")
		fullAdj     = flag.Bool("full-adj", false, "re-sweep module adjacency at every voltage refresh instead of the incremental adjacency index (debug/reference)")
		fullSTA     = flag.Bool("full-sta", false, "run two full-design STA passes per annealing evaluation instead of the incremental timing caches (debug/reference)")
		churnStats  = flag.Bool("churn-stats", false, "surface the exact-diff repack churn counters: print a per-run pack/fallback summary and include the pack_* fields in -json output")
		checkCost   = flag.Bool("check-cost", false, "cross-check every incremental cost (and voltage refresh, entropy patch, adjacency update, STA patch) against a full recompute (debug; very slow)")
		showVersion = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println("tscfp " + version.String())
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	design, err := tscfp.Benchmark(*benchName)
	if err != nil {
		log.Fatal(err)
	}
	m, err := tscfp.ParseMode(*mode)
	if err != nil {
		log.Fatal(err)
	}
	if *runs < 1 {
		log.Fatalf("-runs must be >= 1, got %d", *runs)
	}

	ow, oh := design.Outline()
	fmt.Printf("benchmark %s: %d modules (%d hard / %d soft), %d nets, %d terminals, %.2f mm^2/die, %.2f W @1.0V\n",
		design.Name(), design.NumModules(), design.HardModules(), design.SoftModules(),
		design.NumNets(), design.NumTerminals(), ow*oh/1e6, design.TotalPower())
	fmt.Printf("mode %s, %d run(s), %d SA iterations, %dx%d grid\n", m, *runs, *iters, *grid, *grid)
	if *replicas > 1 || *speculate > 1 {
		fmt.Printf("parallel anneal: %d replica(s), speculation width %d\n", *replicas, *speculate)
	}
	fmt.Println()

	opts := []tscfp.Option{
		tscfp.WithGridN(*grid),
		tscfp.WithIterations(*iters),
		tscfp.WithActivitySamples(*samples),
		tscfp.WithParallelism(*par),
		tscfp.WithReplicas(*replicas),
		tscfp.WithSpeculation(*speculate),
		tscfp.WithIncrementalCost(!*fullCost),
		tscfp.WithIncrementalVoltage(!*fullVolt),
		tscfp.WithIncrementalEntropy(!*fullEntropy),
		tscfp.WithAdjacencyIndex(!*fullAdj),
		tscfp.WithIncrementalSTA(!*fullSTA),
		tscfp.WithCostCrossCheck(*checkCost),
		tscfp.WithChurnStats(*churnStats),
	}
	if *protect {
		sensitive := design.SensitiveModules()
		fmt.Printf("protecting %d sensitive modules\n", len(sensitive))
		opts = append(opts, tscfp.WithProtectedModules(sensitive...))
	}

	seeds := make([]int64, *runs)
	for k := range seeds {
		seeds[k] = *seed + int64(k)
	}
	// Stream prints each run as it completes instead of buffering the
	// whole campaign; -json/-maps/-floorplan refer to the last grid cell.
	results, err := tscfp.Stream(ctx, tscfp.Grid{
		Design:  design,
		Seeds:   seeds,
		Modes:   []tscfp.Mode{m},
		Options: opts,
	}, tscfp.WithWorkers(*workers))
	if err != nil {
		log.Fatal(err)
	}

	var agg tscfp.Metrics
	var last *tscfp.Result
	lastIndex := -1
	for sr := range results {
		if sr.Err != nil {
			log.Fatal(sr.Err)
		}
		if sr.Cell.Index > lastIndex {
			last, lastIndex = sr.Result, sr.Cell.Index
		}
		mm := sr.Result.Metrics
		fmt.Printf("run %d: S1=%.3f S2=%.3f r1=%.3f r2=%.3f power=%.3fW delay=%.3fns wl=%.3fm peak=%.2fK sTSV=%d dTSV=%d vol=%d legal=%v %.1fs\n",
			sr.Cell.Index, mm.S1, mm.S2, mm.R1, mm.R2, mm.PowerW, mm.CriticalNS, mm.WirelengthM,
			mm.PeakTempK, mm.SignalTSVs, mm.DummyTSVs, mm.VoltageVolumes, sr.Result.Legal, mm.RuntimeSec)
		agg.S1 += mm.S1
		agg.S2 += mm.S2
		agg.R1 += mm.R1
		agg.R2 += mm.R2
		agg.PowerW += mm.PowerW
		agg.CriticalNS += mm.CriticalNS
		agg.WirelengthM += mm.WirelengthM
		agg.PeakTempK += mm.PeakTempK
		agg.SignalTSVs += mm.SignalTSVs
		agg.DummyTSVs += mm.DummyTSVs
		agg.VoltageVolumes += mm.VoltageVolumes
		agg.RuntimeSec += mm.RuntimeSec
		if *churnStats {
			st := sr.Result.Stats
			early, trips, bulk := 0.0, 0.0, 0.0
			if st.PackDieDiffs > 0 {
				early = 100 * float64(st.PackEarlyExits) / float64(st.PackDieDiffs)
			}
			if st.PackMoves > 0 {
				trips = 100 * float64(st.STAGateTrips) / float64(st.PackMoves)
				bulk = 100 * float64(st.AdjBulkFallbacks) / float64(st.PackMoves)
			}
			fmt.Printf("run %d churn: changed p50=%d p95=%d modules/move, early-exit %.1f%% of %d die diffs, sta gate trips %.1f%%, adj bulk fallbacks %.1f%%\n",
				sr.Cell.Index, st.PackChangedP50, st.PackChangedP95, early, st.PackDieDiffs, trips, bulk)
		}
	}
	n := float64(*runs)
	fmt.Printf("\naverages over %d run(s) (%s, %s):\n", *runs, design.Name(), m)
	w := func(label string, v float64) { fmt.Fprintf(os.Stdout, "  %-24s %10.3f\n", label, v) }
	w("spatial entropy S1", agg.S1/n)
	w("spatial entropy S2", agg.S2/n)
	w("correlation r1", agg.R1/n)
	w("correlation r2", agg.R2/n)
	w("overall power [W]", agg.PowerW/n)
	w("critical delay [ns]", agg.CriticalNS/n)
	w("wirelength [m]", agg.WirelengthM/n)
	w("peak temp [K]", agg.PeakTempK/n)
	w("signal TSVs", float64(agg.SignalTSVs)/n)
	w("dummy thermal TSVs", float64(agg.DummyTSVs)/n)
	w("voltage volumes", float64(agg.VoltageVolumes)/n)
	w("runtime [s]", agg.RuntimeSec/n)

	if *showFP && last != nil {
		fmt.Println()
		for d := 0; d < last.Dies; d++ {
			fmt.Print(last.FloorplanASCII(d, 64))
		}
	}
	if *maps && last != nil {
		for d := 0; d < last.Dies; d++ {
			pm, err := last.PowerHeatmap(d)
			if err != nil {
				log.Fatal(err)
			}
			tm, err := last.TempHeatmap(d)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("\ndie %d power map (TSVs overlaid):\n%s", d, pm)
			fmt.Printf("\ndie %d thermal map:\n%s", d, tm)
		}
	}
	if *jsonOut != "" && last != nil {
		if err := last.WriteJSONFile(*jsonOut); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nresult written to %s\n", *jsonOut)
	}
}
