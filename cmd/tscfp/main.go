// Command tscfp floorplans one of the paper's benchmarks in power-aware or
// TSC-aware mode and prints a Table-2-style report: leakage metrics (S1, S2,
// r1, r2) and design cost (power, critical delay, wirelength, peak
// temperature, TSV and voltage-volume counts, runtime).
//
// Usage:
//
//	tscfp -bench n100 -mode tsc -runs 3 -iters 3000
//	tscfp -bench ibm01 -mode pa
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tscfp: ")

	var (
		benchName = flag.String("bench", "n100", "benchmark name (n100 n200 n300 ibm01 ibm03 ibm07)")
		mode      = flag.String("mode", "tsc", "floorplanning mode: pa (power-aware) or tsc (TSC-aware)")
		runs      = flag.Int("runs", 1, "independent floorplanning runs to average")
		iters     = flag.Int("iters", 3000, "simulated-annealing iterations per run")
		grid      = flag.Int("grid", 32, "thermal/leakage grid resolution per axis")
		samples   = flag.Int("samples", 100, "activity samples for correlation stability (Eq. 2)")
		seed      = flag.Int64("seed", 1, "base random seed (run k uses seed+k)")
		jsonOut   = flag.String("json", "", "write the last run's full report to this JSON file")
		maps      = flag.Bool("maps", false, "print ASCII heatmaps of the last run's power/thermal maps")
		showFP    = flag.Bool("floorplan", false, "print an ASCII rendering of the last run's floorplan")
		protect   = flag.Bool("protect", false, "post-process only the sensitive modules (Sec. 7.1 adaptation)")
	)
	flag.Parse()

	spec, err := bench.ByName(*benchName)
	if err != nil {
		log.Fatal(err)
	}
	des, err := bench.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}

	var m core.Mode
	switch *mode {
	case "pa":
		m = core.PowerAware
	case "tsc":
		m = core.TSCAware
	default:
		log.Fatalf("unknown mode %q (want pa or tsc)", *mode)
	}

	fmt.Printf("benchmark %s: %d modules (%d hard / %d soft), %d nets, %d terminals, %.2f mm^2/die, %.2f W @1.0V\n",
		des.Name, len(des.Modules), des.HardCount(), des.SoftCount(),
		len(des.Nets), len(des.Terminals), des.OutlineW*des.OutlineH/1e6, des.TotalPower())
	fmt.Printf("mode %s, %d run(s), %d SA iterations, %dx%d grid\n\n", m, *runs, *iters, *grid, *grid)

	var protectList []int
	if *protect {
		for mi, mod := range des.Modules {
			if mod.Sensitive {
				protectList = append(protectList, mi)
			}
		}
		fmt.Printf("protecting %d sensitive modules\n", len(protectList))
	}

	var agg core.Metrics
	var last *core.Result
	for k := 0; k < *runs; k++ {
		res, err := core.Run(des, core.Config{
			Mode:            m,
			GridN:           *grid,
			SAIterations:    *iters,
			ActivitySamples: *samples,
			Seed:            *seed + int64(k),
			ProtectModules:  protectList,
		})
		if err != nil {
			log.Fatal(err)
		}
		last = res
		mm := res.Metrics
		fmt.Printf("run %d: S1=%.3f S2=%.3f r1=%.3f r2=%.3f power=%.3fW delay=%.3fns wl=%.3fm peak=%.2fK sTSV=%d dTSV=%d vol=%d legal=%v %.1fs\n",
			k, mm.S1, mm.S2, mm.R1, mm.R2, mm.PowerW, mm.CriticalNS, mm.WirelengthM,
			mm.PeakTempK, mm.SignalTSVs, mm.DummyTSVs, mm.VoltageVolumes, res.Layout.Legal(), mm.RuntimeSec)
		agg.S1 += mm.S1
		agg.S2 += mm.S2
		agg.R1 += mm.R1
		agg.R2 += mm.R2
		agg.PowerW += mm.PowerW
		agg.CriticalNS += mm.CriticalNS
		agg.WirelengthM += mm.WirelengthM
		agg.PeakTempK += mm.PeakTempK
		agg.SignalTSVs += mm.SignalTSVs
		agg.DummyTSVs += mm.DummyTSVs
		agg.VoltageVolumes += mm.VoltageVolumes
		agg.RuntimeSec += mm.RuntimeSec
	}
	n := float64(*runs)
	fmt.Printf("\naverages over %d run(s) (%s, %s):\n", *runs, des.Name, m)
	w := func(label string, v float64) { fmt.Fprintf(os.Stdout, "  %-24s %10.3f\n", label, v) }
	w("spatial entropy S1", agg.S1/n)
	w("spatial entropy S2", agg.S2/n)
	w("correlation r1", agg.R1/n)
	w("correlation r2", agg.R2/n)
	w("overall power [W]", agg.PowerW/n)
	w("critical delay [ns]", agg.CriticalNS/n)
	w("wirelength [m]", agg.WirelengthM/n)
	w("peak temp [K]", agg.PeakTempK/n)
	w("signal TSVs", float64(agg.SignalTSVs)/n)
	w("dummy thermal TSVs", float64(agg.DummyTSVs)/n)
	w("voltage volumes", float64(agg.VoltageVolumes)/n)
	w("runtime [s]", agg.RuntimeSec/n)

	if *showFP && last != nil {
		fmt.Println()
		for d := 0; d < last.Layout.Dies; d++ {
			fmt.Print(report.RenderFloorplan(last.Layout, d, 64))
		}
	}
	if *maps && last != nil {
		for d := 0; d < last.Layout.Dies; d++ {
			fmt.Printf("\ndie %d power map (TSVs overlaid):\n%s", d,
				report.HeatmapWithTSVs(last.PowerMaps[d], last.TSVs))
			fmt.Printf("\ndie %d thermal map:\n%s", d, report.Heatmap(last.TempMaps[d]))
		}
	}
	if *jsonOut != "" && last != nil {
		rep := report.FromResult(last, m.String())
		if err := rep.WriteJSON(*jsonOut); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nreport written to %s\n", *jsonOut)
	}
}
