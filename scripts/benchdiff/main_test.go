package main

import (
	"strings"
	"testing"
)

// TestCompareSkipsOneSidedRows pins the gate's skip contract: benchmarks
// present in only one snapshot are reported with a notice but never counted
// as regressions, while shared rows still gate on the tolerance.
func TestCompareSkipsOneSidedRows(t *testing.T) {
	oldRows := map[string]float64{
		"BenchmarkAnnealLoop/n100":  100,
		"BenchmarkRetired":          50,
		"BenchmarkDetailedSolve/ok": 200,
	}
	newRows := map[string]float64{
		"BenchmarkAnnealLoop/n100":  125, // +25% — beyond the 10% tolerance
		"BenchmarkDetailedSolve/ok": 205, // +2.5% — within tolerance
		"BenchmarkFreshlyAdded":     70,  // no baseline
	}
	var buf strings.Builder
	regressions := compare(&buf, oldRows, newRows, 0.10)
	out := buf.String()
	if regressions != 1 {
		t.Fatalf("want exactly the +25%% row to regress, got %d\n%s", regressions, out)
	}
	for _, want := range []string{
		"REGRESSED BenchmarkAnnealLoop/n100",
		"ok        BenchmarkDetailedSolve/ok",
		"MISSING  BenchmarkRetired",
		"NEW      BenchmarkFreshlyAdded",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "(in baseline only, skipped)") ||
		!strings.Contains(out, "(no baseline, skipped)") {
		t.Errorf("one-sided rows not marked as skipped:\n%s", out)
	}
}

// TestCompareEmptyIntersection is the degenerate skip path: two snapshots
// with no benchmark in common produce notices only and pass the gate.
func TestCompareEmptyIntersection(t *testing.T) {
	var buf strings.Builder
	regressions := compare(&buf,
		map[string]float64{"BenchmarkOld": 10},
		map[string]float64{"BenchmarkNew": 20}, 0.10)
	if regressions != 0 {
		t.Fatalf("disjoint snapshots must not regress, got %d\n%s", regressions, buf.String())
	}
	if !strings.Contains(buf.String(), "MISSING") || !strings.Contains(buf.String(), "NEW") {
		t.Fatalf("disjoint snapshots must log both notices:\n%s", buf.String())
	}
}
