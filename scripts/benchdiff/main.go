// Command benchdiff compares two BENCH_<rev>.json perf snapshots (as emitted
// by scripts/bench.sh) and fails when a benchmark matching the filter
// regressed beyond the tolerance — the ROADMAP's perf-trajectory gate.
//
// Usage:
//
//	go run ./scripts/benchdiff -old BENCH_abc1234.json -new BENCH_def5678.json
//	go run ./scripts/benchdiff -filter 'BenchmarkAnnealLoop' -tolerance 0.10 ...
//
// Benchmark names are normalized by stripping the trailing -GOMAXPROCS
// suffix, so snapshots recorded at different core counts still line up.
// Rows present in only one snapshot are reported but never fail the gate
// (new benchmarks land without a baseline; retired ones drop out).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
)

type snapshot struct {
	Meta struct {
		GitRev    string `json:"git_rev"`
		GoVersion string `json:"go_version"`
		Nproc     int    `json:"nproc"`
	} `json:"meta"`
	Benchmarks []struct {
		Benchmark string  `json:"benchmark"`
		NsPerOp   float64 `json:"ns_per_op"`
	} `json:"benchmarks"`
}

var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// compare writes one line per benchmark and returns the number of rows that
// regressed beyond the tolerance. Rows present in only one snapshot are
// skipped with a logged notice — never a failure — so new benchmarks can
// land without a baseline and retired ones can drop out without breaking
// the gate.
func compare(w io.Writer, oldRows, newRows map[string]float64, tolerance float64) int {
	names := make([]string, 0, len(oldRows))
	for name := range oldRows {
		names = append(names, name)
	}
	sort.Strings(names)
	regressions := 0
	for _, name := range names {
		oldNs := oldRows[name]
		newNs, ok := newRows[name]
		if !ok {
			//lint:besteffort diagnostic report to stdout; the exit code carries the verdict
			fmt.Fprintf(w, "  MISSING  %-60s (in baseline only, skipped)\n", name)
			continue
		}
		delta := (newNs - oldNs) / oldNs
		mark := "ok"
		if delta > tolerance {
			mark = "REGRESSED"
			regressions++
		}
		//lint:besteffort diagnostic report to stdout; the exit code carries the verdict
		fmt.Fprintf(w, "  %-9s %-60s %12.0f -> %12.0f ns/op (%+.1f%%)\n", mark, name, oldNs, newNs, delta*100)
	}
	names = names[:0]
	for name := range newRows {
		if _, ok := oldRows[name]; !ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		//lint:besteffort diagnostic report to stdout; the exit code carries the verdict
		fmt.Fprintf(w, "  NEW      %-60s %12.0f ns/op (no baseline, skipped)\n", name, newRows[name])
	}
	return regressions
}

func load(path string, filter *regexp.Regexp) (snapshot, map[string]float64, error) {
	var s snapshot
	data, err := os.ReadFile(path)
	if err != nil {
		return s, nil, err
	}
	if err := json.Unmarshal(data, &s); err != nil {
		return s, nil, fmt.Errorf("%s: %w", path, err)
	}
	rows := make(map[string]float64)
	for _, b := range s.Benchmarks {
		name := gomaxprocsSuffix.ReplaceAllString(b.Benchmark, "")
		if filter.MatchString(name) && b.NsPerOp > 0 {
			rows[name] = b.NsPerOp
		}
	}
	return s, rows, nil
}

func main() {
	oldPath := flag.String("old", "", "baseline BENCH_<rev>.json (committed snapshot)")
	newPath := flag.String("new", "", "freshly emitted BENCH_<rev>.json")
	filterStr := flag.String("filter", "BenchmarkAnnealLoop", "regexp selecting the gated benchmarks")
	tolerance := flag.Float64("tolerance", 0.10, "maximum allowed relative slowdown (0.10 = +10%)")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -old and -new are required")
		os.Exit(2)
	}
	filter, err := regexp.Compile(*filterStr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: bad -filter: %v\n", err)
		os.Exit(2)
	}
	oldSnap, oldRows, err := load(*oldPath, filter)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	newSnap, newRows, err := load(*newPath, filter)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}

	fmt.Printf("baseline %s (%d cores) -> current %s (%d cores), gate: %s > +%.0f%%\n",
		oldSnap.Meta.GitRev, oldSnap.Meta.Nproc, newSnap.Meta.GitRev, newSnap.Meta.Nproc,
		*filterStr, *tolerance*100)

	regressions := compare(os.Stdout, oldRows, newRows, *tolerance)
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d benchmark(s) regressed beyond +%.0f%%\n",
			regressions, *tolerance*100)
		os.Exit(1)
	}
	fmt.Println("benchdiff: no regressions beyond tolerance")
}
