#!/usr/bin/env bash
# Race-enabled test run with a per-package coverage summary and a regression
# gate: the suite runs `go test -race -cover ./...`, writes the per-package
# percentages to a CSV artifact, and fails if a gated package's coverage
# drops below the floor recorded in scripts/coverage_baseline.txt (the
# values measured when the gate landed; raise them when coverage improves,
# never lower them to make a red build green).
#
# Usage:
#   scripts/coverage.sh                 # gate + artifacts under coverage/
#   OUT_DIR=/tmp/cov scripts/coverage.sh
set -euo pipefail

cd "$(dirname "$0")/.."

OUT_DIR="${OUT_DIR:-coverage}"
BASELINE="scripts/coverage_baseline.txt"
mkdir -p "$OUT_DIR"

RAW="$OUT_DIR/test.txt"
CSV="$OUT_DIR/coverage.csv"

echo "== go test -race -cover ./... -> $OUT_DIR"
go test -race -cover ./... | tee "$RAW"

# Parse `ok  <pkg>  <time>  coverage: NN.N% of statements` lines.
awk 'BEGIN { print "package,coverage_pct" }
     $1 == "ok" {
       pct = ""
       for (i = 1; i <= NF; i++) if ($i == "coverage:") { pct = $(i+1); sub(/%$/, "", pct) }
       if (pct != "") printf "%s,%s\n", $2, pct
     }' "$RAW" > "$CSV"
echo "== per-package coverage written to $CSV"

# Gate: each `<package> <min_pct>` line in the baseline must be met.
fail=0
while read -r pkg floor; do
  case "$pkg" in ''|'#'*) continue;; esac
  got="$(awk -F, -v p="$pkg" '$1 == p { print $2 }' "$CSV")"
  if [ -z "$got" ]; then
    echo "coverage gate: no coverage recorded for $pkg" >&2
    fail=1
    continue
  fi
  if awk -v g="$got" -v f="$floor" 'BEGIN { exit !(g < f) }'; then
    echo "coverage gate: $pkg at ${got}% is below the ${floor}% floor" >&2
    fail=1
  else
    echo "coverage gate: $pkg at ${got}% (floor ${floor}%)"
  fi
done < "$BASELINE"
exit "$fail"
