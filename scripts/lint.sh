#!/usr/bin/env bash
# The repo's full static gate, run identically by CI's lint job and by hand:
#
#   1. gofmt    -- formatting drift anywhere in the tree is an error;
#   2. go vet   -- the standard suite;
#   3. tscfplint (cmd/tscfplint) -- the repo's own invariant checkers:
#      determinism, journalpair, floatcompare, ctxflow, errsink (see
#      docs/ARCHITECTURE.md "Static analysis"); built from this tree, so
#      the gate and the code it checks always move together;
#   4. staticcheck -- pinned to STATICCHECK_VERSION so a floating release
#      cannot break CI on an unrelated day;
#   5. govulncheck -- pinned likewise; call-graph-reachable vulns only.
#
# Tools 4 and 5 need a module download to install. Locally (no network, or
# no desire to install) they are skipped with a notice unless the binary is
# already on PATH at the pinned version; CI sets INSTALL_MISSING=1 to
# install and therefore hard-require them. Everything built from this repo
# (1-3) always runs and always gates.
#
# Usage:
#   scripts/lint.sh                    # local: skip missing external tools
#   INSTALL_MISSING=1 scripts/lint.sh  # CI: install pinned tools, run all
set -euo pipefail

cd "$(dirname "$0")/.."

STATICCHECK_VERSION="${STATICCHECK_VERSION:-2025.1.1}"
GOVULNCHECK_VERSION="${GOVULNCHECK_VERSION:-v1.1.4}"
INSTALL_MISSING="${INSTALL_MISSING:-0}"
fail=0

echo "== gofmt"
unformatted="$(gofmt -l . | grep -v '^internal/analyzers/testdata/' || true)"
if [ -n "$unformatted" ]; then
  echo "gofmt: needs formatting:" >&2
  echo "$unformatted" >&2
  fail=1
fi

echo "== go vet"
go vet ./... || fail=1

echo "== tscfplint"
go run ./cmd/tscfplint ./... || fail=1

# run_external <name> <module@version> <args...>: run a pinned external
# tool, installing it first under INSTALL_MISSING=1, skipping with a notice
# when absent locally.
run_external() {
  local name="$1" mod="$2"
  shift 2
  if [ "$INSTALL_MISSING" = "1" ]; then
    echo "== installing $mod"
    go install "$mod"
  fi
  if ! command -v "$name" >/dev/null 2>&1; then
    echo "== $name: not on PATH; skipped (set INSTALL_MISSING=1 to install $mod)"
    return 0
  fi
  echo "== $name"
  "$name" "$@" || fail=1
}

run_external staticcheck "honnef.co/go/tools/cmd/staticcheck@${STATICCHECK_VERSION}" ./...
run_external govulncheck "golang.org/x/vuln/cmd/govulncheck@${GOVULNCHECK_VERSION}" ./...

exit "$fail"
