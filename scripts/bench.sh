#!/usr/bin/env bash
# Reproducible benchmark runner: executes the perf benchmark suite with
# pinned seeds/budgets and archives raw output, a parsed CSV, and run
# metadata under bench_results/<UTC timestamp>/ so perf trajectories can be
# compared across commits. See docs/BENCHMARKS.md.
#
# Usage:
#   scripts/bench.sh                 # short suite (default budgets)
#   BENCH_TIME=3x scripts/bench.sh   # more repetitions per benchmark
#   BENCH_FILTER='AnnealLoop' scripts/bench.sh
#   OUT_DIR=/tmp/bench scripts/bench.sh
set -euo pipefail

cd "$(dirname "$0")/.."

BENCH_FILTER="${BENCH_FILTER:-BenchmarkAnnealLoop|BenchmarkAnnealReplicas|BenchmarkDetailedSolve|BenchmarkFastEstimate}"
BENCH_TIME="${BENCH_TIME:-1x}"
# Pinned workload knobs: the perf suite must measure the same work on every
# commit. REPRO_BENCH_ITERS drives the anneal-loop budget (see bench_test.go).
export REPRO_BENCH_ITERS="${REPRO_BENCH_ITERS:-800}"

STAMP="$(date -u +%Y%m%dT%H%M%SZ)"
OUT_DIR="${OUT_DIR:-bench_results/$STAMP}"
mkdir -p "$OUT_DIR"

RAW="$OUT_DIR/bench.txt"
CSV="$OUT_DIR/bench.csv"
META="$OUT_DIR/meta.json"

cat > "$META" <<EOF
{
  "timestamp_utc": "$STAMP",
  "git_rev": "$(git rev-parse HEAD 2>/dev/null || echo unknown)",
  "git_dirty": $(if [ -n "$(git status --porcelain 2>/dev/null)" ]; then echo true; else echo false; fi),
  "go_version": "$(go version | sed 's/"/\\"/g')",
  "nproc": $(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1),
  "bench_filter": "$BENCH_FILTER",
  "bench_time": "$BENCH_TIME",
  "repro_bench_iters": $REPRO_BENCH_ITERS
}
EOF

echo "== benchmarks -> $OUT_DIR (filter: $BENCH_FILTER, benchtime: $BENCH_TIME)"
go test -run 'XXX' -bench "$BENCH_FILTER" -benchtime "$BENCH_TIME" -benchmem . | tee "$RAW"

# Parse `BenchmarkName/sub-case-N   iters   ns/op ...` lines into CSV.
awk 'BEGIN { print "benchmark,iterations,ns_per_op,extra" }
     /^Benchmark/ {
       extra = ""
       for (i = 4; i <= NF; i++) extra = extra (extra == "" ? "" : " ") $i
       gsub(/,/, ";", extra)
       printf "%s,%s,%s,%s\n", $1, $2, $3, extra
     }' "$RAW" > "$CSV"

# Emit the top-level BENCH_<rev>.json perf snapshot (the ROADMAP's perf
# trajectory gate): run metadata plus the parsed benchmark rows in one
# machine-readable document, named after the git revision so successive
# PRs leave a comparable trail. Also archived alongside the raw output.
REV="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
SNAPSHOT="${SNAPSHOT:-BENCH_${REV}.json}"
{
  printf '{\n  "meta": '
  sed 's/^/  /' "$META" | sed '1s/^  //'
  printf ',\n  "benchmarks": [\n'
  awk -F, 'NR > 1 {
    if (seen++) printf ",\n"
    gsub(/"/, "\\\"", $1); gsub(/"/, "\\\"", $4)
    printf "    {\"benchmark\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"extra\": \"%s\"}", $1, $2, $3, $4
  } END { if (seen) printf "\n" }' "$CSV"
  printf '  ]\n}\n'
} > "$SNAPSHOT"
if [ "$(realpath "$SNAPSHOT")" != "$(realpath "$OUT_DIR/$(basename "$SNAPSHOT")" 2>/dev/null || true)" ]; then
  cp "$SNAPSHOT" "$OUT_DIR/"
fi

echo
echo "== perf snapshot: $SNAPSHOT"
echo "== results archived:"
ls -l "$OUT_DIR"
