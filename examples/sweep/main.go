// sweep runs the paper-style experiment campaign through the concurrent
// batch runner: repeats (seeds) × modes fan out over a worker pool, results
// stream back as they finish, and a CSV summary row per cell lands on
// stdout — the Table 2 workflow as a library call.
//
// Run with:
//
//	go run ./examples/sweep
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"

	"repro/tscfp"
)

func main() {
	log.SetFlags(0)
	design := tscfp.MustBenchmark("n100")

	grid := tscfp.Grid{
		Design: design,
		Seeds:  []int64{1, 2, 3},
		Modes:  []tscfp.Mode{tscfp.PowerAware, tscfp.TSCAware},
		Options: []tscfp.Option{
			tscfp.WithIterations(800),
			tscfp.WithActivitySamples(30),
			tscfp.WithGridN(24),
		},
	}
	cells := grid.Cells()
	workers := runtime.GOMAXPROCS(0)
	log.Printf("sweeping %d cells (%d seeds x %d modes) on %d workers",
		len(cells), len(grid.Seeds), len(grid.Modes), workers)

	// Stream yields cells in completion order; collect for the summary.
	ch, err := tscfp.Stream(context.Background(), grid, tscfp.WithWorkers(workers))
	if err != nil {
		log.Fatal(err)
	}
	byMode := map[tscfp.Mode][]*tscfp.Result{}
	fmt.Println("cell,seed,mode,r1,r2,s1,s2,power_w,delay_ns,peak_k,dummy_tsvs,runtime_s")
	for sr := range ch {
		if sr.Err != nil {
			log.Fatal(sr.Err)
		}
		m := sr.Result.Metrics
		fmt.Printf("%d,%d,%s,%.4f,%.4f,%.4f,%.4f,%.3f,%.3f,%.2f,%d,%.1f\n",
			sr.Cell.Index, sr.Cell.Seed, sr.Cell.Mode,
			m.R1, m.R2, m.S1, m.S2, m.PowerW, m.CriticalNS, m.PeakTempK,
			m.DummyTSVs, m.RuntimeSec)
		byMode[sr.Cell.Mode] = append(byMode[sr.Cell.Mode], sr.Result)
	}

	// Per-mode averages, the paper's Table 2 comparison.
	fmt.Println()
	for _, mode := range grid.Modes {
		rs := byMode[mode]
		var r1, s1 float64
		for _, r := range rs {
			r1 += r.Metrics.R1
			s1 += r.Metrics.S1
		}
		n := float64(len(rs))
		fmt.Printf("%-12s avg over %d seeds: r1=%.4f S1=%.4f\n", mode, len(rs), r1/n, s1/n)
	}
	fmt.Println("\nexpected: the TSC-aware rows carry lower |r1| and higher S1 —")
	fmt.Println("the mitigation, measured across repeats instead of a single draw.")
}
