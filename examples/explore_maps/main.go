// explore_maps reproduces the paper's Sec. 3 exploratory experiments
// (Figure 2) as a library walkthrough: build synthetic power scenarios and
// TSV distributions, run the detailed thermal solver, and measure how the
// power-temperature correlation depends on both — the two key findings the
// TSC-aware floorplanner is built on.
//
// Run with:
//
//	go run ./examples/explore_maps
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/activity"
	"repro/internal/leakage"
	"repro/internal/thermal"
	"repro/internal/tsv"
)

const (
	gridN = 32
	dieUM = 4000.0
	seeds = 3
)

func main() {
	// Average each (power, TSV) combination's bottom-die correlation over a
	// few seeds: single draws are noisy because both the power blobs and
	// the irregular TSV sites are random.
	fmt.Printf("%-20s", "power \\ TSV")
	for _, tp := range tsv.AllPatterns() {
		fmt.Printf(" %18s", tp)
	}
	fmt.Println()

	for _, pp := range activity.AllPowerPatterns() {
		fmt.Printf("%-20s", pp)
		for _, tp := range tsv.AllPatterns() {
			sum := 0.0
			for s := int64(0); s < seeds; s++ {
				sum += correlation(pp, tp, s)
			}
			fmt.Printf(" %18.3f", sum/seeds)
		}
		fmt.Println()
	}

	fmt.Println("\nfindings to check against the paper (Sec. 3):")
	fmt.Println(" (i)  globally uniform power -> correlation 0 (lowest);")
	fmt.Println("      large gradients -> higher correlation than locally-uniform regimes;")
	fmt.Println(" (ii) TSV islands (few, concentrated) decorrelate most;")
	fmt.Println("      adding regular TSV lattices pulls the correlation back up.")
}

// correlation builds one two-die stack with the given power scenario on
// both dies and the given TSV pattern, and returns the bottom die's
// power-temperature Pearson correlation.
func correlation(pp activity.PowerPattern, tp tsv.Pattern, seed int64) float64 {
	rng := rand.New(rand.NewSource(1000 + seed))
	p0 := activity.GeneratePowerMap(pp, gridN, gridN, 4.0, rng)
	p1 := activity.GeneratePowerMap(pp, gridN, gridN, 4.0, rng)
	plan := tsv.GeneratePattern(tp, dieUM, dieUM, rng)

	stack := thermal.NewStack(thermal.DefaultConfig(gridN, gridN, dieUM, dieUM, 2))
	stack.SetDiePower(0, p0)
	stack.SetDiePower(1, p1)
	if len(plan.TSVs) > 0 {
		stack.SetTSVMap(plan.CuFractionMap(gridN, gridN))
	}
	sol, _ := stack.SolveSteady(nil, thermal.SolverOpts{})
	return leakage.Pearson(p0, sol.DieTemp(0))
}
