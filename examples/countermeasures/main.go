// countermeasures compares the paper's design-time mitigation against the
// prior art it critiques (Gu et al.'s runtime thermal-noise injection):
// for the same benchmark, how much does each approach decorrelate the
// bottom die, and what does it cost in power and peak temperature?
//
// The paper's argument (Sec. 1): injection "causes further power
// dissipation, which may be prohibitive for thermal- and power-constrained
// 3D ICs in the first place", and "the best leakage-mitigation rates are
// only achievable for the highest injection rates".
//
// Run with:
//
//	go run ./examples/countermeasures
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"repro/internal/noiseinject"
	"repro/tscfp"
)

func main() {
	log.SetFlags(0)
	design := tscfp.MustBenchmark("n100")

	// Both floorplans run concurrently on the sweep worker pool.
	results, err := tscfp.Sweep(context.Background(), tscfp.Grid{
		Design: design,
		Seeds:  []int64{5},
		Modes:  []tscfp.Mode{tscfp.PowerAware, tscfp.TSCAware},
		Options: []tscfp.Option{
			tscfp.WithIterations(1500),
			tscfp.WithActivitySamples(40),
		},
	}, tscfp.WithWorkers(2))
	if err != nil {
		log.Fatal(err)
	}
	for _, sr := range results {
		if sr.Err != nil {
			log.Fatal(sr.Err)
		}
	}
	pa, tsc := results[0].Result, results[1].Result

	fmt.Printf("%-30s %8s %10s %10s\n", "countermeasure", "|r1|", "power[W]", "peak[K]")
	fmt.Printf("%-30s %8.3f %10.3f %10.2f\n", "none (power-aware baseline)",
		math.Abs(pa.Metrics.R1), pa.Metrics.PowerW, pa.Metrics.PeakTempK)

	ctl := noiseinject.Controller{}
	for _, alpha := range []float64{0.1, 0.25, 0.5, 1.0} {
		r := ctl.Smooth(pa.Core(), alpha)
		fmt.Printf("noise injection alpha=%-8.2f %8.3f %10.3f %10.2f\n",
			alpha, math.Abs(r.R[0]), pa.Metrics.PowerW+r.InjectedW, r.PeakTempK)
	}

	fmt.Printf("%-30s %8.3f %10.3f %10.2f\n", "TSC-aware floorplan (ours)",
		math.Abs(tsc.Metrics.R1), tsc.Metrics.PowerW, tsc.Metrics.PeakTempK)

	fmt.Println("\nreading: the floorplan-level mitigation reaches injection-class")
	fmt.Println("decorrelation at a fraction of the power and without the thermal cost,")
	fmt.Println("because it exploits structure (TSVs, power management) instead of")
	fmt.Println("spending energy on dummy activity.")
}
