// countermeasures compares the paper's design-time mitigation against the
// prior art it critiques (Gu et al.'s runtime thermal-noise injection):
// for the same benchmark, how much does each approach decorrelate the
// bottom die, and what does it cost in power and peak temperature?
//
// The paper's argument (Sec. 1): injection "causes further power
// dissipation, which may be prohibitive for thermal- and power-constrained
// 3D ICs in the first place", and "the best leakage-mitigation rates are
// only achievable for the highest injection rates".
//
// Run with:
//
//	go run ./examples/countermeasures
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/noiseinject"
)

func main() {
	log.SetFlags(0)
	design := bench.MustGenerate("n100")

	pa, err := core.Run(design, core.Config{
		Mode: core.PowerAware, SAIterations: 1500, ActivitySamples: 40, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	tsc, err := core.Run(design, core.Config{
		Mode: core.TSCAware, SAIterations: 1500, ActivitySamples: 40, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-30s %8s %10s %10s\n", "countermeasure", "|r1|", "power[W]", "peak[K]")
	fmt.Printf("%-30s %8.3f %10.3f %10.2f\n", "none (power-aware baseline)",
		math.Abs(pa.Metrics.R1), pa.Metrics.PowerW, pa.Metrics.PeakTempK)

	ctl := noiseinject.Controller{}
	for _, alpha := range []float64{0.1, 0.25, 0.5, 1.0} {
		r := ctl.Smooth(pa, alpha)
		fmt.Printf("noise injection alpha=%-8.2f %8.3f %10.3f %10.2f\n",
			alpha, math.Abs(r.R[0]), pa.Metrics.PowerW+r.InjectedW, r.PeakTempK)
	}

	fmt.Printf("%-30s %8.3f %10.3f %10.2f\n", "TSC-aware floorplan (ours)",
		math.Abs(tsc.Metrics.R1), tsc.Metrics.PowerW, tsc.Metrics.PeakTempK)

	fmt.Println("\nreading: the floorplan-level mitigation reaches injection-class")
	fmt.Println("decorrelation at a fraction of the power and without the thermal cost,")
	fmt.Println("because it exploits structure (TSVs, power management) instead of")
	fmt.Println("spending energy on dummy activity.")
}
