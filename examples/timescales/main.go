// timescales reproduces Figure 1 of the paper with the transient solver:
// activity/power switches on nanosecond-to-millisecond scales while
// temperature responds over milliseconds-to-seconds, which is why the
// thermal side channel has low bandwidth — and why the paper's attacker
// model grants steady-state readings.
//
// Run with:
//
//	go run ./examples/timescales
package main

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/thermal"
)

func main() {
	const n = 16
	cfg := thermal.DefaultConfig(n, n, 4000, 4000, 2)
	stack := thermal.NewStack(cfg)

	// 10 W uniformly on the bottom die.
	p := geom.NewGrid(n, n)
	p.Fill(10.0 / (n * n))
	stack.SetDiePower(0, p)

	steady, _ := stack.SolveSteady(nil, thermal.SolverOpts{})
	rise := steady.Peak() - cfg.Ambient
	fmt.Printf("steady-state rise at constant power: %.2f K\n\n", rise)

	// Heating step response: time to reach 63% / 95% of the steady rise.
	dt := 1e-3
	traj := stack.SolveTransient(nil, dt, 600, 1, nil)
	t63, t95 := -1.0, -1.0
	for i, sol := range traj {
		r := sol.Peak() - cfg.Ambient
		if t63 < 0 && r >= 0.63*rise {
			t63 = float64(i+1) * dt
		}
		if t95 < 0 && r >= 0.95*rise {
			t95 = float64(i+1) * dt
		}
	}
	fmt.Printf("thermal step response: tau(63%%) = %.0f ms, t(95%%) = %.0f ms\n", t63*1e3, t95*1e3)

	// Fast activity toggling: power switches every 100 us (activity time
	// scale), far below the thermal time constant.
	base := traj[len(traj)-1]
	toggled := stack.SolveTransient(base, 1e-4, 400, 1, func(step int) float64 {
		if step%2 == 0 {
			return 2.0 // full activity
		}
		return 0.0 // idle
	})
	lo, hi := toggled[50].Peak(), toggled[50].Peak()
	for _, sol := range toggled[50:] {
		p := sol.Peak()
		if p < lo {
			lo = p
		}
		if p > hi {
			hi = p
		}
	}
	fmt.Printf("\nactivity toggling at 5 kHz (power swings 0 <-> 2x):\n")
	fmt.Printf("  temperature ripple: %.3f K (%.1f%% of the steady rise)\n",
		hi-lo, 100*(hi-lo)/rise)
	fmt.Println("\nthe power square wave is invisible at thermal time scales —")
	fmt.Println("Figure 1's separation, and the reason the TSC needs steady-state attacks.")
}
