// voltage_volumes walks through the paper's Sec. 6.1 voltage assignment in
// isolation: pack a floorplan, run the reference timing analysis, grow
// voltage volumes under both objectives, and compare — power-aware
// assignment merges modules into few low-voltage volumes; TSC-aware
// assignment fragments the partition to keep power densities uniform within
// and across volumes (the paper reports +87% volumes for that).
//
// Run with:
//
//	go run ./examples/voltage_volumes
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/floorplan"
	"repro/internal/timing"
	"repro/internal/volt"
	"repro/tscfp"
)

func main() {
	design := tscfp.MustBenchmark("ibm01").Netlist()
	rng := rand.New(rand.NewSource(3))
	layout := floorplan.NewRandom(design, rng).Pack()

	// Reference static timing at the 1.0 V level: the slack pool that
	// voltage assignment spends.
	params := timing.DefaultParams()
	ref := timing.Analyze(layout, nil, params)
	fmt.Printf("%s: %d modules, critical delay %.3f ns at 1.0 V\n",
		design.Name, len(design.Modules), ref.Critical)

	for _, mode := range []volt.Mode{volt.PowerAware, volt.TSCAware} {
		cfg := volt.Config{Mode: mode}
		asg := volt.Assign(layout, ref, cfg)
		sta := volt.Repair(layout, asg, params, cfg)

		counts := map[float64]int{}
		for _, lv := range asg.LevelOf {
			counts[lv.V]++
		}
		name := "power-aware"
		if mode == volt.TSCAware {
			name = "TSC-aware"
		}
		fmt.Printf("\n%s assignment:\n", name)
		fmt.Printf("  voltage volumes: %d\n", len(asg.Volumes))
		fmt.Printf("  modules at 0.8/1.0/1.2 V: %d / %d / %d\n",
			counts[0.8], counts[1.0], counts[1.2])
		fmt.Printf("  total power %.3f W (nominal %.3f W)\n", asg.TotalPower, design.TotalPower())
		fmt.Printf("  critical delay after repair %.3f ns (target %.3f ns)\n",
			sta.Critical, asg.Target)
		fmt.Printf("  power-density spread: intra-volume %.3g, inter-volume %.3g [W/um^2]\n",
			asg.IntraVolumeDensityStdDev(layout), asg.InterVolumeDensityStdDev(layout))
	}
	fmt.Println("\nexpected: TSC-aware has more volumes and lower density spread;")
	fmt.Println("power-aware has the lower total power.")
}
