// attack_demo mounts the paper's Sec. 5 thermal side-channel attacks
// against two floorplans of the same design — one power-aware, one
// TSC-aware — and compares how much each leaks. This is the threat model
// the TSC-aware flow exists to blunt: an attacker with sensor access,
// repeatable inputs, and steady-state patience localizes and monitors
// security-critical modules.
//
// Run with:
//
//	go run ./examples/attack_demo
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/attack"
	"repro/tscfp"
)

func main() {
	log.SetFlags(0)
	design := tscfp.MustBenchmark("n100")

	// The benchmark marks ~5% of modules as security-critical (crypto-like,
	// elevated power density) — those are the attack targets.
	targets := design.SensitiveModules()
	fmt.Printf("attacking %d sensitive modules of %s\n", len(targets), design.Name())

	sensors := attack.DefaultSensors()
	for _, mode := range []tscfp.Mode{tscfp.PowerAware, tscfp.TSCAware} {
		res, err := tscfp.Run(context.Background(), design,
			tscfp.WithMode(mode),
			tscfp.WithIterations(1500),
			tscfp.WithActivitySamples(50),
			tscfp.WithSeed(7))
		if err != nil {
			log.Fatal(err)
		}

		// The attack toolkit consumes the live flow result behind the
		// public snapshot.
		dev := attack.NewDevice(res.Core(), sensors, 7)
		loc := attack.LocalizeAll(dev, targets, attack.LocalizeOptions{})
		rng := rand.New(rand.NewSource(77))
		ch := attack.Characterize(dev, targets, 5, rng)
		mon := attack.Monitor(dev, targets[0], loc.Results[0].EstPos, 20, rng)

		fmt.Printf("\n%s floorplan (verified r1=%.3f):\n", mode, res.Metrics.R1)
		fmt.Printf("  localization:     hit rate %.2f, die rate %.2f, mean error %.0f um\n",
			loc.HitRate, loc.DieRate, loc.MeanError)
		fmt.Printf("  characterization: model R2 %.3f over %d probes\n", ch.R2, ch.Probes)
		fmt.Printf("  monitoring:       activity correlation %.3f at module %d\n",
			mon.Correlation, mon.Module)
	}
	fmt.Println("\nlower TSC-aware scores = the design-time mitigation is working.")
}
