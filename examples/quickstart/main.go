// Quickstart: floorplan the n100 benchmark with the TSC-aware flow through
// the public tscfp API and print the leakage report — the minimal
// end-to-end use of the library.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro/tscfp"
)

func main() {
	log.SetFlags(0)

	// 1. Load a benchmark (Table 1 of the paper). Any JSON-decoded
	//    tscfp.Design works; Benchmark synthesizes the paper's six.
	design := tscfp.MustBenchmark("n100")
	fmt.Printf("design %s: %d modules, %d nets, %.1f W nominal\n",
		design.Name(), design.NumModules(), design.NumNets(), design.TotalPower())

	// 2. Run the TSC-aware floorplanning flow. Unset options select the
	//    paper-equivalent defaults; a short annealing budget keeps this
	//    example under a minute. The context cancels the run cooperatively
	//    (annealing moves, solver sweeps) if you wire it to a signal.
	result, err := tscfp.Run(context.Background(), design,
		tscfp.WithMode(tscfp.TSCAware),
		tscfp.WithIterations(1500),
		tscfp.WithActivitySamples(50),
		tscfp.WithSeed(1),
		tscfp.WithProgress(func(ev tscfp.Event) {
			// Anneal events arrive at chain boundaries (every iters/50
			// moves), so gate on a multiple of that stride.
			if ev.Stage == tscfp.StageAnneal && ev.Done > 0 && ev.Done%300 == 0 {
				fmt.Printf("  annealing %d/%d (best cost %.3f)\n", ev.Done, ev.Total, ev.Cost)
			}
		}))
	if err != nil {
		log.Fatal(err)
	}

	// 3. Inspect the outcome.
	m := result.Metrics
	fmt.Println("\nleakage metrics (Eq. 1 / Eq. 3, detailed thermal verification):")
	fmt.Printf("  bottom die: correlation r1 = %.3f, spatial entropy S1 = %.3f\n", m.R1, m.S1)
	fmt.Printf("  top die:    correlation r2 = %.3f, spatial entropy S2 = %.3f\n", m.R2, m.S2)
	fmt.Printf("  dummy-TSV post-processing: r1 %.3f -> %.3f (%d dummy vias)\n",
		m.PostCorrelationBefore, m.PostCorrelationAfter, m.DummyTSVs)

	fmt.Println("\ndesign cost:")
	fmt.Printf("  power %.2f W, critical delay %.3f ns, wirelength %.2f m\n",
		m.PowerW, m.CriticalNS, m.WirelengthM)
	fmt.Printf("  peak temperature %.1f K, %d signal TSVs, %d voltage volumes\n",
		m.PeakTempK, m.SignalTSVs, m.VoltageVolumes)
	fmt.Printf("  outline legal: %v, runtime %.1f s\n", result.Legal, m.RuntimeSec)

	// 4. Serialize for downstream tooling: the Result round-trips through
	//    JSON, and the same seed + options reproduce it byte-identically.
	data, err := result.JSON()
	if err != nil {
		log.Fatal(err)
	}
	path := "quickstart_result.json"
	if err := os.WriteFile(path, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfull result written to %s (%d bytes)\n", path, len(data))
}
