// Quickstart: floorplan the n100 benchmark with the TSC-aware flow and
// print the leakage report — the minimal end-to-end use of the library.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/core"
)

func main() {
	log.SetFlags(0)

	// 1. Load a benchmark (Table 1 of the paper). Any block-level
	//    netlist.Design works; bench synthesizes the paper's six.
	design := bench.MustGenerate("n100")
	fmt.Printf("design %s: %d modules, %d nets, %.1f W nominal\n",
		design.Name, len(design.Modules), len(design.Nets), design.TotalPower())

	// 2. Run the TSC-aware floorplanning flow. The zero-value knobs select
	//    the paper-equivalent defaults; a short annealing budget keeps this
	//    example under a minute.
	result, err := core.Run(design, core.Config{
		Mode:            core.TSCAware,
		SAIterations:    1500,
		ActivitySamples: 50,
		Seed:            1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Inspect the outcome.
	m := result.Metrics
	fmt.Println("\nleakage metrics (Eq. 1 / Eq. 3, detailed thermal verification):")
	fmt.Printf("  bottom die: correlation r1 = %.3f, spatial entropy S1 = %.3f\n", m.R1, m.S1)
	fmt.Printf("  top die:    correlation r2 = %.3f, spatial entropy S2 = %.3f\n", m.R2, m.S2)
	fmt.Printf("  dummy-TSV post-processing: r1 %.3f -> %.3f (%d dummy vias)\n",
		m.PostCorrelationBefore, m.PostCorrelationAfter, m.DummyTSVs)

	fmt.Println("\ndesign cost:")
	fmt.Printf("  power %.2f W, critical delay %.3f ns, wirelength %.2f m\n",
		m.PowerW, m.CriticalNS, m.WirelengthM)
	fmt.Printf("  peak temperature %.1f K, %d signal TSVs, %d voltage volumes\n",
		m.PeakTempK, m.SignalTSVs, m.VoltageVolumes)
	fmt.Printf("  outline legal: %v, runtime %.1f s\n", result.Layout.Legal(), m.RuntimeSec)
}
