// Performance benchmarks for the two hot paths this repo optimizes: the
// annealing loop's cost evaluation (incremental caches vs full recompute)
// and the detailed thermal solver (parallel red-black SOR vs serial). See
// docs/BENCHMARKS.md for the reproducible workflow and recorded baselines;
// scripts/bench.sh runs the suite and archives results.
//
// The anneal-loop legs share every post-PR optimization (swept adjacency,
// prefix-resumed packing, shared-prefix entropy sums), so their ratio
// isolates the incremental caching itself. The recorded pre-PR wall-clock
// baselines in docs/BENCHMARKS.md capture the full speedup.
package repro

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/thermal"
)

// annealLegConfig toggles the incremental stack one PR at a time, so the
// legs bracket each optimization generation.
type annealLegConfig struct {
	label       string
	incremental bool // PR 2: geometric/thermal caches
	incrVolt    bool // PR 3: cached voltage engine
	incrEntropy bool // PR 4: incremental spatial entropy
	adjIndex    bool // PR 4: churn-tolerant adjacency index
	incrSTA     bool // PR 5: incremental static-timing caches
}

// annealLoopRun executes the SA search (no post-processing) — the flow's
// hot path — at a fixed budget so legs are comparable.
func annealLoopRun(b *testing.B, name string, leg annealLegConfig, iters int) *core.Result {
	b.Helper()
	des := bench.MustGenerate(name)
	post := false
	inc, iv, ie, ai, is := leg.incremental, leg.incrVolt, leg.incrEntropy, leg.adjIndex, leg.incrSTA
	res, err := core.Run(des, core.Config{
		Mode:               core.TSCAware,
		SAIterations:       iters,
		Seed:               1,
		PostProcess:        &post,
		IncrementalCost:    &inc,
		IncrementalVoltage: &iv,
		IncrementalEntropy: &ie,
		AdjacencyIndex:     &ai,
		IncrementalSTA:     &is,
	})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkAnnealLoop times the annealing loop in six legs — the
// full-recompute reference, the incremental geometric/thermal caches with
// from-scratch voltage refreshes (the PR 2 configuration), the cached
// voltage engine on top (PR 3), the incremental entropy cache on top of
// that, the PR 4 stack including the adjacency index, and the full stack
// with the incremental STA caches (the PR 5 default) — on a small (n100)
// and a large (ibm01) benchmark. All legs must find the identical best
// floorplan (asserted by TestFlowIncrementalMatchesFull,
// TestFlowIncrementalVoltageMatchesFullVoltage,
// TestFlowIncrementalEntropyAdjacencyMatchesFull, and
// TestFlowIncrementalSTAMatchesFullSTA in internal/core).
func BenchmarkAnnealLoop(b *testing.B) {
	iters := benchIters()
	for _, name := range []string{"n100", "ibm01"} {
		for _, leg := range []annealLegConfig{
			{label: "full-recompute"},
			{label: "incremental", incremental: true},
			{label: "incremental-volt", incremental: true, incrVolt: true},
			{label: "incremental-entropy", incremental: true, incrVolt: true, incrEntropy: true},
			{label: "incremental-all", incremental: true, incrVolt: true, incrEntropy: true, adjIndex: true},
			{label: "incremental-sta", incremental: true, incrVolt: true, incrEntropy: true, adjIndex: true, incrSTA: true},
		} {
			b.Run(fmt.Sprintf("%s/%s", name, leg.label), func(b *testing.B) {
				var st core.EvalStats
				for i := 0; i < b.N; i++ {
					st = annealLoopRun(b, name, leg, iters).EvalStats
				}
				if st.Evals > 0 {
					b.ReportMetric(float64(st.NetsReused)/float64(st.Evals), "nets_reused/eval")
					b.ReportMetric(float64(st.DiesReused)/float64(st.Evals), "dies_reused/eval")
				}
				if st.VoltCandidatesReused+st.VoltCandidatesRegrown > 0 {
					b.ReportMetric(float64(st.VoltCandidatesReused)/
						float64(st.VoltCandidatesReused+st.VoltCandidatesRegrown), "volt_cands_reused_frac")
				}
				if st.EntropyPatched+st.EntropyRebuilt > 0 {
					b.ReportMetric(float64(st.EntropyPatched)/
						float64(st.EntropyPatched+st.EntropyRebuilt), "entropy_patched_frac")
				}
				if st.AdjIncrementalUpdates > 0 {
					b.ReportMetric(float64(st.AdjRowsChanged)/
						float64(st.AdjIncrementalUpdates), "adj_rows_changed/update")
				}
				if st.STAPatches > 0 {
					b.ReportMetric(float64(st.STAModulesRecomputed)/
						float64(st.STAPatches), "sta_mods_recomputed/patch")
					b.ReportMetric(float64(st.STACritRescans)/
						float64(st.STAPatches), "sta_crit_rescan_frac")
				}
				// Churn report: how exact the diff packer's changed sets
				// are at the default knobs, and how often the downstream
				// engines' churn gates still trip into their fallbacks.
				if st.PackMoves > 0 {
					b.ReportMetric(float64(st.PackChangedPercentile(0.50)), "pack_changed_p50")
					b.ReportMetric(float64(st.PackChangedPercentile(0.95)), "pack_changed_p95")
					b.ReportMetric(float64(st.STAGateTrips)/float64(st.PackMoves), "sta_gate_trip_frac")
					b.ReportMetric(float64(st.AdjBulkFallbacks)/float64(st.PackMoves), "adj_bulk_fallback_frac")
				}
				if st.PackDieDiffs > 0 {
					b.ReportMetric(float64(st.PackEarlyExits)/float64(st.PackDieDiffs), "pack_early_exit_frac")
					b.ReportMetric(float64(st.PackReplayedPositions)/float64(st.PackDieDiffs), "pack_replayed/diff")
				}
			})
		}
	}
}

// BenchmarkAnnealReplicas times the parallel annealer at 1/2/4/8 tempered
// replicas and at speculation widths 2/4, on the full incremental stack
// (thermal fan-out serial inside each worker, the Config default under
// replicas). Every chain runs the full iteration budget, so higher replica
// counts spend cores on search quality rather than a shorter loop; best_cost
// reports the best annealing cost reached, on a scale shared across legs of
// one benchmark/seed (the parallel annealer normalizes against the serial
// path's Seed-derived reference floorplan). docs/BENCHMARKS.md derives the
// quality-per-wall-clock comparison from the recorded best_cost/ns-op pairs.
func BenchmarkAnnealReplicas(b *testing.B) {
	iters := benchIters()
	for _, name := range []string{"n100", "ibm01"} {
		for _, leg := range []struct {
			label       string
			replicas    int
			speculation int
		}{
			{"repl-1", 1, 1},
			{"repl-2", 2, 1},
			{"repl-4", 4, 1},
			{"repl-8", 8, 1},
			{"spec-2", 1, 2},
			{"spec-4", 1, 4},
		} {
			b.Run(fmt.Sprintf("%s/%s", name, leg.label), func(b *testing.B) {
				des := bench.MustGenerate(name)
				post := false
				var st core.EvalStats
				for i := 0; i < b.N; i++ {
					res, err := core.Run(des, core.Config{
						Mode:         core.TSCAware,
						SAIterations: iters,
						Seed:         1,
						PostProcess:  &post,
						Replicas:     leg.replicas,
						Speculation:  leg.speculation,
					})
					if err != nil {
						b.Fatal(err)
					}
					st = res.EvalStats
				}
				b.ReportMetric(st.AnnealBestCost, "best_cost")
				if st.ReplicaSwapAttempts > 0 {
					b.ReportMetric(float64(st.ReplicaSwapAccepts)/
						float64(st.ReplicaSwapAttempts), "swap_accept_frac")
				}
				if st.SpecBatches > 0 {
					b.ReportMetric(float64(st.SpecCommits)/
						float64(st.SpecBatches), "spec_commit_frac")
				}
			})
		}
	}
}

// BenchmarkDetailedSolve times one steady-state solve of the detailed
// red-black SOR solver, serial vs fanned across all cores. Both produce
// byte-identical fields (TestParallelSteadySolveMatchesSerial).
func BenchmarkDetailedSolve(b *testing.B) {
	const n = 64
	power := geom.NewGrid(n, n)
	rng := rand.New(rand.NewSource(1))
	for i := range power.Data {
		power.Data[i] = rng.Float64() * 0.01
	}
	for _, leg := range []struct {
		label   string
		workers int
	}{
		{"serial", 1},
		{"parallel", 0},
	} {
		b.Run(leg.label, func(b *testing.B) {
			stack := thermal.NewStack(thermal.DefaultConfig(n, n, 4000, 4000, 2))
			stack.SetDiePower(0, power)
			stack.SetDiePower(1, power)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, st := stack.SolveSteady(nil, thermal.SolverOpts{Tol: 1e-5, Workers: leg.workers})
				if !st.Converged {
					b.Fatal("solver did not converge")
				}
			}
		})
	}
}

// BenchmarkFastEstimate times the in-loop power-blurring estimate, serial vs
// parallel separable convolution.
func BenchmarkFastEstimate(b *testing.B) {
	const n = 64
	fe := thermal.CalibrateFast(thermal.DefaultConfig(n, n, 4000, 4000, 2))
	rng := rand.New(rand.NewSource(2))
	maps := make([]*geom.Grid, 2)
	for d := range maps {
		maps[d] = geom.NewGrid(n, n)
		for i := range maps[d].Data {
			maps[d].Data[i] = rng.Float64() * 0.01
		}
	}
	for _, leg := range []struct {
		label   string
		workers int
	}{
		{"serial", 1},
		{"parallel", 0},
	} {
		b.Run(leg.label, func(b *testing.B) {
			fe.SetWorkers(leg.workers)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fe.Estimate(maps)
			}
		})
	}
}
