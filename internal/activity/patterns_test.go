package activity

import (
	"math"
	"math/rand"
	"testing"
)

// TestPatternRelativeSpreadOrdering: the five scenarios are ordered by how
// sharp their gradients are; the coefficient of variation must respect the
// paper's naming.
func TestPatternRelativeSpreadOrdering(t *testing.T) {
	cv := func(p PowerPattern) float64 {
		// Average over seeds to stabilize.
		s := 0.0
		for seed := int64(0); seed < 5; seed++ {
			g := GeneratePowerMap(p, 32, 32, 10, rand.New(rand.NewSource(100+seed)))
			s += g.StdDev() / g.Mean()
		}
		return s / 5
	}
	uniform := cv(GloballyUniform)
	small := cv(SmallGradients)
	medium := cv(MediumGradients)
	large := cv(LargeGradients)
	if uniform != 0 {
		t.Fatalf("globally uniform must have zero spread, got %v", uniform)
	}
	if !(small < medium && medium < large) {
		t.Fatalf("spread ordering violated: small %v medium %v large %v", small, medium, large)
	}
}

func TestLocallyUniformRegimesAreDiscrete(t *testing.T) {
	g := GeneratePowerMap(LocallyUniform, 32, 32, 10, rand.New(rand.NewSource(7)))
	// At most 4 distinct values (the regime set), up to normalization.
	distinct := map[float64]bool{}
	for _, v := range g.Data {
		distinct[math.Round(v*1e12)/1e12] = true
	}
	if len(distinct) > 4 {
		t.Fatalf("locally uniform map has %d regimes, want <= 4", len(distinct))
	}
}

func TestGeneratePowerMapDifferentSeedsDiffer(t *testing.T) {
	a := GeneratePowerMap(LargeGradients, 16, 16, 5, rand.New(rand.NewSource(1)))
	b := GeneratePowerMap(LargeGradients, 16, 16, 5, rand.New(rand.NewSource(2)))
	same := true
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should give different blob layouts")
	}
}

func TestSamplerZeroSigmaIsNominal(t *testing.T) {
	s := NewSamplerFromPowers([]float64{1, 2, 3}, 0)
	p := s.Sample(rand.New(rand.NewSource(3)))
	for i, want := range []float64{1, 2, 3} {
		if p[i] != want {
			t.Fatalf("zero sigma must reproduce nominal: %v", p)
		}
	}
}

func TestAllPowerPatternsCount(t *testing.T) {
	if len(AllPowerPatterns()) != int(NumPowerPatterns) {
		t.Fatal("pattern list out of sync")
	}
}
