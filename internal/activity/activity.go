// Package activity models runtime activity of the 3D IC's modules. The
// paper impersonates an attacker triggering varying activity patterns by
// modelling every module's power as a Gaussian distribution around its
// nominal value with a 10% standard deviation (Sec. 6.2), evaluating the
// steady-state temperatures for each sample. This package provides that
// sampler plus the five synthetic power-distribution scenarios of the
// exploratory study (Sec. 3 / Figure 2).
package activity

import (
	"math"
	"math/rand"

	"repro/internal/floorplan"
	"repro/internal/geom"
)

// Sampler draws per-module power vectors around the nominal powers.
type Sampler struct {
	nominal []float64
	sigma   float64 // relative std dev
}

// NewSampler builds a sampler over the layout's modules with the given
// relative standard deviation (the paper uses 0.10).
func NewSampler(l *floorplan.Layout, sigmaFrac float64) *Sampler {
	return &Sampler{nominal: l.NominalPowers(), sigma: sigmaFrac}
}

// NewSamplerFromPowers builds a sampler over explicit nominal powers
// (e.g. voltage-scaled ones).
func NewSamplerFromPowers(nominal []float64, sigmaFrac float64) *Sampler {
	return &Sampler{nominal: append([]float64(nil), nominal...), sigma: sigmaFrac}
}

// Sample draws one activity pattern: power[m] ~ N(nominal[m], sigma*nominal[m]),
// truncated at zero (modules cannot produce negative power).
func (s *Sampler) Sample(rng *rand.Rand) []float64 {
	out := make([]float64, len(s.nominal))
	for m, p := range s.nominal {
		v := p * (1 + s.sigma*rng.NormFloat64())
		if v < 0 {
			v = 0
		}
		out[m] = v
	}
	return out
}

// SampleN draws n patterns.
func (s *Sampler) SampleN(rng *rand.Rand, n int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = s.Sample(rng)
	}
	return out
}

// Nominal returns a copy of the nominal powers.
func (s *Sampler) Nominal() []float64 {
	return append([]float64(nil), s.nominal...)
}

// --- Figure 2 power-distribution scenarios -----------------------------------

// PowerPattern names the five power-density scenarios of the paper's
// exploratory experiments: "globally uniform, locally uniform, medium
// gradients, small gradients, and large gradients".
type PowerPattern int

const (
	GloballyUniform PowerPattern = iota
	LocallyUniform
	MediumGradients
	SmallGradients
	LargeGradients
	NumPowerPatterns
)

func (p PowerPattern) String() string {
	switch p {
	case GloballyUniform:
		return "globally-uniform"
	case LocallyUniform:
		return "locally-uniform"
	case MediumGradients:
		return "medium-gradients"
	case SmallGradients:
		return "small-gradients"
	case LargeGradients:
		return "large-gradients"
	default:
		return "power-pattern?"
	}
}

// AllPowerPatterns lists the five scenarios in paper order.
func AllPowerPatterns() []PowerPattern {
	return []PowerPattern{
		GloballyUniform, LocallyUniform, MediumGradients,
		SmallGradients, LargeGradients,
	}
}

// GeneratePowerMap synthesizes an nx x ny power map (cell values in Watts,
// summing to totalW) of the given scenario.
func GeneratePowerMap(p PowerPattern, nx, ny int, totalW float64, rng *rand.Rand) *geom.Grid {
	g := geom.NewGrid(nx, ny)
	switch p {
	case GloballyUniform:
		g.Fill(1)
	case LocallyUniform:
		// 4x4 regions, each at one of a few discrete power regimes.
		regimes := []float64{0.5, 1.0, 1.5, 2.0}
		nr := 4
		for rj := 0; rj < nr; rj++ {
			for ri := 0; ri < nr; ri++ {
				v := regimes[rng.Intn(len(regimes))]
				for j := rj * ny / nr; j < (rj+1)*ny/nr; j++ {
					for i := ri * nx / nr; i < (ri+1)*nx/nr; i++ {
						g.Set(i, j, v)
					}
				}
			}
		}
	case SmallGradients:
		addBlobs(g, rng, 10, 0.3, float64(nx)/3)
	case MediumGradients:
		addBlobs(g, rng, 8, 1.5, float64(nx)/5)
	case LargeGradients:
		addBlobs(g, rng, 5, 6.0, float64(nx)/10)
	}
	// Normalize to the requested budget.
	if s := g.Sum(); s > 0 {
		g.ScaleBy(totalW / s)
	} else {
		g.Fill(totalW / float64(nx*ny))
	}
	return g
}

// addBlobs lays a base level plus n Gaussian blobs of the given relative
// amplitude and radius (in cells).
func addBlobs(g *geom.Grid, rng *rand.Rand, n int, amp, radius float64) {
	g.Fill(1)
	for b := 0; b < n; b++ {
		cx := rng.Float64() * float64(g.NX)
		cy := rng.Float64() * float64(g.NY)
		for j := 0; j < g.NY; j++ {
			for i := 0; i < g.NX; i++ {
				dx := (float64(i) + 0.5 - cx) / radius
				dy := (float64(j) + 0.5 - cy) / radius
				g.Add(i, j, amp*math.Exp(-(dx*dx+dy*dy)/2))
			}
		}
	}
}
