package activity

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bench"
	"repro/internal/floorplan"
)

func TestSampleMeanAndSpread(t *testing.T) {
	des := bench.MustGenerate("n100")
	l := floorplan.New(des).Pack()
	s := NewSampler(l, 0.10)
	rng := rand.New(rand.NewSource(1))
	n := 2000
	sums := make([]float64, len(des.Modules))
	sqs := make([]float64, len(des.Modules))
	for k := 0; k < n; k++ {
		p := s.Sample(rng)
		for m, v := range p {
			sums[m] += v
			sqs[m] += v * v
		}
	}
	for m, mod := range l.Design.Modules {
		mean := sums[m] / float64(n)
		if math.Abs(mean-mod.Power) > 0.02*mod.Power+1e-12 {
			t.Fatalf("module %d mean %v, nominal %v", m, mean, mod.Power)
		}
		std := math.Sqrt(sqs[m]/float64(n) - mean*mean)
		if mod.Power > 1e-6 {
			rel := std / mod.Power
			if rel < 0.07 || rel > 0.13 {
				t.Fatalf("module %d relative std %v, want ~0.10", m, rel)
			}
		}
	}
}

func TestSampleNonNegative(t *testing.T) {
	s := NewSamplerFromPowers([]float64{0.001}, 5.0) // huge sigma forces truncation
	rng := rand.New(rand.NewSource(2))
	for k := 0; k < 1000; k++ {
		if v := s.Sample(rng)[0]; v < 0 {
			t.Fatal("negative power sampled")
		}
	}
}

func TestSampleN(t *testing.T) {
	s := NewSamplerFromPowers([]float64{1, 2}, 0.1)
	rng := rand.New(rand.NewSource(3))
	ps := s.SampleN(rng, 100)
	if len(ps) != 100 || len(ps[0]) != 2 {
		t.Fatal("dims")
	}
}

func TestNominalIsCopy(t *testing.T) {
	s := NewSamplerFromPowers([]float64{1, 2}, 0.1)
	n := s.Nominal()
	n[0] = 99
	if s.Nominal()[0] == 99 {
		t.Fatal("Nominal must return a copy")
	}
}

func TestSamplerDeterministicWithSeed(t *testing.T) {
	s := NewSamplerFromPowers([]float64{1, 2, 3}, 0.1)
	a := s.Sample(rand.New(rand.NewSource(7)))
	b := s.Sample(rand.New(rand.NewSource(7)))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must reproduce samples")
		}
	}
}

func TestGeneratePowerMapBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, p := range AllPowerPatterns() {
		g := GeneratePowerMap(p, 32, 32, 7.5, rng)
		if math.Abs(g.Sum()-7.5) > 1e-9 {
			t.Fatalf("%v: total %v, want 7.5", p, g.Sum())
		}
		if g.Min() < 0 {
			t.Fatalf("%v: negative power", p)
		}
	}
}

func TestGloballyUniformIsFlat(t *testing.T) {
	g := GeneratePowerMap(GloballyUniform, 16, 16, 4, rand.New(rand.NewSource(5)))
	first := g.At(0, 0)
	for _, v := range g.Data {
		if math.Abs(v-first) > 1e-12 {
			t.Fatal("globally uniform map must be constant")
		}
	}
}

func TestLargeGradientsSpikier(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	small := GeneratePowerMap(SmallGradients, 32, 32, 10, rng)
	large := GeneratePowerMap(LargeGradients, 32, 32, 10, rng)
	// Relative spread must be clearly higher for the large-gradient map.
	relSmall := small.StdDev() / small.Mean()
	relLarge := large.StdDev() / large.Mean()
	if relLarge <= relSmall {
		t.Fatalf("large gradients (%v) must be spikier than small (%v)", relLarge, relSmall)
	}
}

func TestLocallyUniformHasRegions(t *testing.T) {
	g := GeneratePowerMap(LocallyUniform, 32, 32, 10, rand.New(rand.NewSource(7)))
	// Values within one 8x8 region are constant.
	v := g.At(0, 0)
	for j := 0; j < 8; j++ {
		for i := 0; i < 8; i++ {
			if g.At(i, j) != v {
				t.Fatal("region not uniform")
			}
		}
	}
}

func TestPatternStrings(t *testing.T) {
	for _, p := range AllPowerPatterns() {
		if p.String() == "power-pattern?" {
			t.Fatalf("pattern %d missing name", p)
		}
	}
}
