package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewRectNormalizes(t *testing.T) {
	r := NewRect(10, 10, -4, -6)
	if r.X != 6 || r.Y != 4 || r.W != 4 || r.H != 6 {
		t.Fatalf("got %+v", r)
	}
}

func TestRectFromCorners(t *testing.T) {
	r := RectFromCorners(Point{5, 7}, Point{1, 2})
	want := Rect{1, 2, 4, 5}
	if r != want {
		t.Fatalf("got %+v want %+v", r, want)
	}
}

func TestRectArea(t *testing.T) {
	if got := (Rect{0, 0, 3, 4}).Area(); got != 12 {
		t.Fatalf("area = %v", got)
	}
}

func TestRectCenter(t *testing.T) {
	c := (Rect{1, 1, 2, 4}).Center()
	if c.X != 2 || c.Y != 3 {
		t.Fatalf("center = %+v", c)
	}
}

func TestIntersect(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	b := Rect{5, 5, 10, 10}
	o, ok := a.Intersect(b)
	if !ok {
		t.Fatal("expected overlap")
	}
	if o != (Rect{5, 5, 5, 5}) {
		t.Fatalf("got %+v", o)
	}
}

func TestIntersectDisjointAndTouching(t *testing.T) {
	a := Rect{0, 0, 5, 5}
	if _, ok := a.Intersect(Rect{6, 0, 2, 2}); ok {
		t.Fatal("disjoint rects must not overlap")
	}
	if _, ok := a.Intersect(Rect{5, 0, 2, 2}); ok {
		t.Fatal("touching rects must not count as overlapping")
	}
}

func TestOverlapAreaSymmetric(t *testing.T) {
	a := Rect{0, 0, 4, 4}
	b := Rect{2, 2, 4, 4}
	if a.OverlapArea(b) != b.OverlapArea(a) {
		t.Fatal("overlap area not symmetric")
	}
	if a.OverlapArea(b) != 4 {
		t.Fatalf("got %v", a.OverlapArea(b))
	}
}

func TestUnion(t *testing.T) {
	a := Rect{0, 0, 2, 2}
	b := Rect{5, 5, 1, 1}
	u := a.Union(b)
	if u != (Rect{0, 0, 6, 6}) {
		t.Fatalf("got %+v", u)
	}
}

func TestAdjacent(t *testing.T) {
	a := Rect{0, 0, 4, 4}
	cases := []struct {
		b    Rect
		want bool
	}{
		{Rect{4, 0, 4, 4}, true},   // right abut
		{Rect{4, 4, 4, 4}, false},  // corner touch only
		{Rect{0, 4, 4, 4}, true},   // top abut
		{Rect{2, 2, 4, 4}, true},   // overlap counts
		{Rect{10, 0, 1, 1}, false}, // far away
		{Rect{-4, 1, 4, 1}, true},  // left abut
	}
	for i, c := range cases {
		if got := a.Adjacent(c.b); got != c.want {
			t.Errorf("case %d: Adjacent(%+v) = %v, want %v", i, c.b, got, c.want)
		}
	}
}

func TestContains(t *testing.T) {
	r := Rect{0, 0, 2, 2}
	if !r.Contains(Point{0, 0}) {
		t.Fatal("lower-left corner should be inside")
	}
	if r.Contains(Point{2, 2}) {
		t.Fatal("upper-right corner should be outside (half-open)")
	}
}

func TestContainsRect(t *testing.T) {
	outer := Rect{0, 0, 10, 10}
	if !outer.ContainsRect(Rect{0, 0, 10, 10}) {
		t.Fatal("rect should contain itself")
	}
	if outer.ContainsRect(Rect{5, 5, 6, 2}) {
		t.Fatal("overhanging rect should not be contained")
	}
}

func TestInset(t *testing.T) {
	r := Rect{0, 0, 10, 10}
	in := r.Inset(2)
	if in != (Rect{2, 2, 6, 6}) {
		t.Fatalf("got %+v", in)
	}
	deg := (Rect{0, 0, 2, 2}).Inset(3)
	if deg.Area() != 0 {
		t.Fatalf("expected degenerate, got %+v", deg)
	}
}

func TestManhattanEuclid(t *testing.T) {
	p, q := Point{0, 0}, Point{3, 4}
	if p.Manhattan(q) != 7 {
		t.Fatal("manhattan")
	}
	if p.Euclid(q) != 5 {
		t.Fatal("euclid")
	}
}

func TestPropertyIntersectionWithinBoth(t *testing.T) {
	f := func(ax, ay, aw, ah, bx, by, bw, bh float64) bool {
		a := NewRect(mod(ax, 100), mod(ay, 100), mod(aw, 50)+0.1, mod(ah, 50)+0.1)
		b := NewRect(mod(bx, 100), mod(by, 100), mod(bw, 50)+0.1, mod(bh, 50)+0.1)
		o, ok := a.Intersect(b)
		if !ok {
			return true
		}
		return o.Area() <= a.Area()+1e-9 && o.Area() <= b.Area()+1e-9 &&
			a.ContainsRect(o) && b.ContainsRect(o)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyUnionContainsBoth(t *testing.T) {
	f := func(ax, ay, aw, ah, bx, by, bw, bh float64) bool {
		a := NewRect(mod(ax, 100), mod(ay, 100), mod(aw, 50)+0.1, mod(ah, 50)+0.1)
		b := NewRect(mod(bx, 100), mod(by, 100), mod(bw, 50)+0.1, mod(bh, 50)+0.1)
		u := a.Union(b)
		return u.ContainsRect(a) && u.ContainsRect(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func mod(v, m float64) float64 {
	v = math.Abs(v)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 1
	}
	return math.Mod(v, m)
}

func TestGridBasics(t *testing.T) {
	g := NewGrid(4, 3)
	if g.Len() != 12 {
		t.Fatal("len")
	}
	g.Set(2, 1, 5)
	if g.At(2, 1) != 5 {
		t.Fatal("set/at")
	}
	g.Add(2, 1, 1)
	if g.At(2, 1) != 6 {
		t.Fatal("add")
	}
	if g.Sum() != 6 || g.Mean() != 0.5 {
		t.Fatalf("sum=%v mean=%v", g.Sum(), g.Mean())
	}
	if g.Max() != 6 || g.Min() != 0 {
		t.Fatal("min/max")
	}
}

func TestGridStdDev(t *testing.T) {
	g := NewGrid(2, 2)
	copy(g.Data, []float64{2, 4, 4, 6})
	want := math.Sqrt(2) // population stddev of {2,4,4,6}
	if math.Abs(g.StdDev()-want) > 1e-12 {
		t.Fatalf("got %v want %v", g.StdDev(), want)
	}
}

func TestGridCloneIndependence(t *testing.T) {
	g := NewGrid(2, 2)
	g.Set(0, 0, 1)
	c := g.Clone()
	c.Set(0, 0, 9)
	if g.At(0, 0) != 1 {
		t.Fatal("clone aliases source")
	}
}

func TestGridArith(t *testing.T) {
	a := NewGrid(2, 2)
	b := NewGrid(2, 2)
	a.Fill(3)
	b.Fill(1)
	a.AddGrid(b)
	if a.At(1, 1) != 4 {
		t.Fatal("addgrid")
	}
	a.SubGrid(b)
	if a.At(0, 1) != 3 {
		t.Fatal("subgrid")
	}
	a.ScaleBy(2)
	if a.Sum() != 24 {
		t.Fatal("scaleby")
	}
}

func TestGridDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGrid(2, 2).AddGrid(NewGrid(3, 3))
}

func TestRasterizeConservation(t *testing.T) {
	extent := Rect{0, 0, 100, 100}
	g := NewGrid(10, 10)
	r := Rect{13, 27, 30, 40}
	g.RasterizeDensity(extent, r, 7.5)
	if math.Abs(g.Sum()-7.5) > 1e-9 {
		t.Fatalf("density rasterization must conserve total: got %v", g.Sum())
	}
}

func TestRasterizeClipsOutside(t *testing.T) {
	extent := Rect{0, 0, 100, 100}
	g := NewGrid(10, 10)
	// Half the rect hangs outside the extent; only the inside half lands.
	g.RasterizeDensity(extent, Rect{90, 0, 20, 10}, 2.0)
	if math.Abs(g.Sum()-1.0) > 1e-9 {
		t.Fatalf("expected half the mass inside, got %v", g.Sum())
	}
}

func TestRasterizeFractionalCoverage(t *testing.T) {
	extent := Rect{0, 0, 10, 10}
	g := NewGrid(10, 10) // 1x1 cells
	g.Rasterize(extent, Rect{0.5, 0.5, 1, 1}, 1.0)
	// Each of the 4 touched cells covered 25%.
	for _, c := range [][2]int{{0, 0}, {1, 0}, {0, 1}, {1, 1}} {
		if math.Abs(g.At(c[0], c[1])-0.25) > 1e-12 {
			t.Fatalf("cell %v = %v", c, g.At(c[0], c[1]))
		}
	}
}

func TestCellCenterAndCellAtRoundTrip(t *testing.T) {
	extent := Rect{0, 0, 64, 32}
	g := NewGrid(16, 8)
	for j := 0; j < g.NY; j++ {
		for i := 0; i < g.NX; i++ {
			p := g.CellCenter(extent, i, j)
			ii, jj := g.CellAt(extent, p)
			if ii != i || jj != j {
				t.Fatalf("round trip failed at (%d,%d): got (%d,%d)", i, j, ii, jj)
			}
		}
	}
}

func TestCellAtClamps(t *testing.T) {
	extent := Rect{0, 0, 10, 10}
	g := NewGrid(5, 5)
	i, j := g.CellAt(extent, Point{-5, 100})
	if i != 0 || j != 4 {
		t.Fatalf("got (%d,%d)", i, j)
	}
}

func TestDownsample(t *testing.T) {
	g := NewGrid(4, 4)
	for idx := range g.Data {
		g.Data[idx] = float64(idx)
	}
	d, err := g.Downsample(2)
	if err != nil {
		t.Fatal(err)
	}
	// Top-left block of the original: values 0,1,4,5 -> mean 2.5.
	if d.At(0, 0) != 2.5 {
		t.Fatalf("got %v", d.At(0, 0))
	}
	if _, err := g.Downsample(3); err == nil {
		t.Fatal("expected error for non-dividing factor")
	}
}

func TestNormalize(t *testing.T) {
	g := NewGrid(2, 2)
	copy(g.Data, []float64{1, 2, 3, 5})
	g.Normalize()
	if g.Min() != 0 || g.Max() != 1 {
		t.Fatalf("min=%v max=%v", g.Min(), g.Max())
	}
	c := NewGrid(2, 2)
	c.Fill(4)
	c.Normalize()
	if c.Sum() != 0 {
		t.Fatal("constant grid should normalize to zeros")
	}
}

func TestQuantile(t *testing.T) {
	g := NewGrid(5, 1)
	copy(g.Data, []float64{5, 1, 3, 2, 4})
	if got := g.Quantile(0); got != 1 {
		t.Fatalf("q0 = %v", got)
	}
	if got := g.Quantile(1); got != 5 {
		t.Fatalf("q1 = %v", got)
	}
	if got := g.Quantile(0.5); got != 3 {
		t.Fatalf("q0.5 = %v", got)
	}
}

func TestPropertyRasterizeDensityConserves(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	extent := Rect{0, 0, 100, 100}
	for trial := 0; trial < 200; trial++ {
		g := NewGrid(8+rng.Intn(8), 8+rng.Intn(8))
		r := NewRect(rng.Float64()*80, rng.Float64()*80, rng.Float64()*19+1, rng.Float64()*19+1)
		total := rng.Float64() * 10
		g.RasterizeDensity(extent, r, total)
		// The rect is fully inside the extent, so all mass must land.
		if r.MaxX() <= 100 && r.MaxY() <= 100 {
			if math.Abs(g.Sum()-total) > 1e-6 {
				t.Fatalf("trial %d: sum %v want %v (rect %+v)", trial, g.Sum(), total, r)
			}
		}
	}
}
