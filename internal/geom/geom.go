// Package geom provides the planar geometry primitives used throughout the
// floorplanner and the thermal simulator: points, rectangles, and dense
// float64 grids with the raster operations the leakage metrics need.
//
// All coordinates are in micrometres (um) unless stated otherwise; grids are
// unitless rasters whose physical pitch is tracked by the caller.
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the plane, in um.
type Point struct {
	X, Y float64
}

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p minus q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Manhattan returns the L1 distance between p and q.
func (p Point) Manhattan(q Point) float64 {
	return math.Abs(p.X-q.X) + math.Abs(p.Y-q.Y)
}

// Euclid returns the L2 distance between p and q.
func (p Point) Euclid(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Hypot(dx, dy)
}

// Rect is an axis-aligned rectangle identified by its lower-left corner and
// its extent. Width and Height are always non-negative for rectangles
// produced by the constructors in this package.
type Rect struct {
	X, Y float64 // lower-left corner
	W, H float64 // extent
}

// NewRect builds a rectangle from a lower-left corner and extent, normalizing
// negative extents so that W, H >= 0.
func NewRect(x, y, w, h float64) Rect {
	if w < 0 {
		x, w = x+w, -w
	}
	if h < 0 {
		y, h = y+h, -h
	}
	return Rect{x, y, w, h}
}

// RectFromCorners builds the rectangle spanned by two opposite corners.
func RectFromCorners(a, b Point) Rect {
	return NewRect(math.Min(a.X, b.X), math.Min(a.Y, b.Y),
		math.Abs(a.X-b.X), math.Abs(a.Y-b.Y))
}

// Area returns the rectangle area in um^2.
func (r Rect) Area() float64 { return r.W * r.H }

// Center returns the rectangle's center point.
func (r Rect) Center() Point { return Point{r.X + r.W/2, r.Y + r.H/2} }

// MaxX returns the right edge coordinate.
func (r Rect) MaxX() float64 { return r.X + r.W }

// MaxY returns the top edge coordinate.
func (r Rect) MaxY() float64 { return r.Y + r.H }

// Contains reports whether p lies inside r (closed on the lower-left edges,
// open on the upper-right edges, so adjacent rectangles tile without double
// ownership).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.X && p.X < r.MaxX() && p.Y >= r.Y && p.Y < r.MaxY()
}

// ContainsRect reports whether q lies entirely within r (closed comparison).
func (r Rect) ContainsRect(q Rect) bool {
	return q.X >= r.X && q.Y >= r.Y && q.MaxX() <= r.MaxX() && q.MaxY() <= r.MaxY()
}

// Intersect returns the overlap of r and q and whether it is non-empty.
// Touching edges count as empty overlap.
func (r Rect) Intersect(q Rect) (Rect, bool) {
	x0 := math.Max(r.X, q.X)
	y0 := math.Max(r.Y, q.Y)
	x1 := math.Min(r.MaxX(), q.MaxX())
	y1 := math.Min(r.MaxY(), q.MaxY())
	if x1 <= x0 || y1 <= y0 {
		return Rect{}, false
	}
	return Rect{x0, y0, x1 - x0, y1 - y0}, true
}

// OverlapArea returns the overlapping area of r and q (0 when disjoint).
func (r Rect) OverlapArea(q Rect) float64 {
	o, ok := r.Intersect(q)
	if !ok {
		return 0
	}
	return o.Area()
}

// Union returns the bounding box of r and q.
func (r Rect) Union(q Rect) Rect {
	if r.Area() == 0 && r.W == 0 && r.H == 0 && r.X == 0 && r.Y == 0 {
		return q
	}
	x0 := math.Min(r.X, q.X)
	y0 := math.Min(r.Y, q.Y)
	x1 := math.Max(r.MaxX(), q.MaxX())
	y1 := math.Max(r.MaxY(), q.MaxY())
	return Rect{x0, y0, x1 - x0, y1 - y0}
}

// Adjacent reports whether r and q share a boundary segment of positive
// length (abutting but not overlapping counts; corner touch does not).
func (r Rect) Adjacent(q Rect) bool {
	if _, overlaps := r.Intersect(q); overlaps {
		return true // overlapping modules are trivially "adjacent" for volume growth
	}
	// Vertical abutment: shared x edge, overlapping y span.
	ySpan := math.Min(r.MaxY(), q.MaxY()) - math.Max(r.Y, q.Y)
	if ySpan > 0 && (almostEqual(r.MaxX(), q.X) || almostEqual(q.MaxX(), r.X)) {
		return true
	}
	// Horizontal abutment: shared y edge, overlapping x span.
	xSpan := math.Min(r.MaxX(), q.MaxX()) - math.Max(r.X, q.X)
	if xSpan > 0 && (almostEqual(r.MaxY(), q.Y) || almostEqual(q.MaxY(), r.Y)) {
		return true
	}
	return false
}

// Translate returns r shifted by (dx, dy).
func (r Rect) Translate(dx, dy float64) Rect {
	return Rect{r.X + dx, r.Y + dy, r.W, r.H}
}

// Scale returns r with the corner and extent multiplied by f.
func (r Rect) Scale(f float64) Rect {
	return Rect{r.X * f, r.Y * f, r.W * f, r.H * f}
}

// Inset returns r shrunk by d on every side. If the rectangle would invert,
// the degenerate zero-area rectangle at its center is returned.
func (r Rect) Inset(d float64) Rect {
	if r.W <= 2*d || r.H <= 2*d {
		c := r.Center()
		return Rect{c.X, c.Y, 0, 0}
	}
	return Rect{r.X + d, r.Y + d, r.W - 2*d, r.H - 2*d}
}

func (r Rect) String() string {
	return fmt.Sprintf("Rect(%.2f,%.2f %gx%g)", r.X, r.Y, r.W, r.H)
}

const eps = 1e-9

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) <= eps*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// AspectRatio returns W/H, or +Inf for degenerate heights.
func (r Rect) AspectRatio() float64 {
	if r.H == 0 {
		return math.Inf(1)
	}
	return r.W / r.H
}
