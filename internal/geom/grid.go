package geom

import (
	"fmt"
	"math"
	"sort"
)

// Grid is a dense row-major raster of float64 samples. It is the common
// currency between the floorplanner (power maps), the thermal solver
// (temperature maps), and the leakage metrics.
type Grid struct {
	NX, NY int // columns, rows
	Data   []float64
}

// NewGrid allocates an NX x NY grid of zeros.
func NewGrid(nx, ny int) *Grid {
	if nx <= 0 || ny <= 0 {
		panic(fmt.Sprintf("geom: invalid grid dims %dx%d", nx, ny))
	}
	return &Grid{NX: nx, NY: ny, Data: make([]float64, nx*ny)}
}

// Clone returns a deep copy of g.
func (g *Grid) Clone() *Grid {
	c := NewGrid(g.NX, g.NY)
	copy(c.Data, g.Data)
	return c
}

// At returns the sample at column i, row j.
func (g *Grid) At(i, j int) float64 { return g.Data[j*g.NX+i] }

// Set stores v at column i, row j.
func (g *Grid) Set(i, j int, v float64) { g.Data[j*g.NX+i] = v }

// Add accumulates v at column i, row j.
func (g *Grid) Add(i, j int, v float64) { g.Data[j*g.NX+i] += v }

// Fill sets every sample to v.
func (g *Grid) Fill(v float64) {
	for i := range g.Data {
		g.Data[i] = v
	}
}

// Len returns the number of samples.
func (g *Grid) Len() int { return len(g.Data) }

// InBounds reports whether (i, j) addresses a valid cell.
func (g *Grid) InBounds(i, j int) bool {
	return i >= 0 && i < g.NX && j >= 0 && j < g.NY
}

// Mean returns the average sample value.
func (g *Grid) Mean() float64 {
	if len(g.Data) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range g.Data {
		s += v
	}
	return s / float64(len(g.Data))
}

// Sum returns the total of all samples.
func (g *Grid) Sum() float64 {
	s := 0.0
	for _, v := range g.Data {
		s += v
	}
	return s
}

// Min returns the smallest sample value (+Inf for an empty grid).
func (g *Grid) Min() float64 {
	m := math.Inf(1)
	for _, v := range g.Data {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest sample value (-Inf for an empty grid).
func (g *Grid) Max() float64 {
	m := math.Inf(-1)
	for _, v := range g.Data {
		if v > m {
			m = v
		}
	}
	return m
}

// StdDev returns the population standard deviation of the samples.
func (g *Grid) StdDev() float64 {
	n := float64(len(g.Data))
	if n == 0 {
		return 0
	}
	mean := g.Mean()
	ss := 0.0
	for _, v := range g.Data {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / n)
}

// AddGrid accumulates o into g element-wise; the grids must share dimensions.
func (g *Grid) AddGrid(o *Grid) {
	g.mustMatch(o)
	for i, v := range o.Data {
		g.Data[i] += v
	}
}

// SubGrid subtracts o from g element-wise.
func (g *Grid) SubGrid(o *Grid) {
	g.mustMatch(o)
	for i, v := range o.Data {
		g.Data[i] -= v
	}
}

// ScaleBy multiplies every sample by f.
func (g *Grid) ScaleBy(f float64) {
	for i := range g.Data {
		g.Data[i] *= f
	}
}

func (g *Grid) mustMatch(o *Grid) {
	if g.NX != o.NX || g.NY != o.NY {
		panic(fmt.Sprintf("geom: grid dimension mismatch %dx%d vs %dx%d", g.NX, g.NY, o.NX, o.NY))
	}
}

// Quantile returns the q-th quantile (0 <= q <= 1) of the samples using
// nearest-rank on a sorted copy.
func (g *Grid) Quantile(q float64) float64 {
	if len(g.Data) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), g.Data...)
	sort.Float64s(s)
	idx := int(q * float64(len(s)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// Rasterize distributes a rectangle's value onto the grid by exact
// area-weighted coverage: the grid spans `extent` (a rectangle in um) and
// each cell receives value*overlapFraction, where overlapFraction is the
// fraction of the cell covered by r.
func (g *Grid) Rasterize(extent Rect, r Rect, value float64) {
	if extent.W <= 0 || extent.H <= 0 {
		return
	}
	cw := extent.W / float64(g.NX)
	ch := extent.H / float64(g.NY)
	i0 := int(math.Floor((r.X - extent.X) / cw))
	i1 := int(math.Ceil((r.MaxX() - extent.X) / cw))
	j0 := int(math.Floor((r.Y - extent.Y) / ch))
	j1 := int(math.Ceil((r.MaxY() - extent.Y) / ch))
	if i0 < 0 {
		i0 = 0
	}
	if j0 < 0 {
		j0 = 0
	}
	if i1 > g.NX {
		i1 = g.NX
	}
	if j1 > g.NY {
		j1 = g.NY
	}
	for j := j0; j < j1; j++ {
		for i := i0; i < i1; i++ {
			cell := Rect{
				X: extent.X + float64(i)*cw,
				Y: extent.Y + float64(j)*ch,
				W: cw, H: ch,
			}
			frac := r.OverlapArea(cell) / cell.Area()
			if frac > 0 {
				g.Add(i, j, value*frac)
			}
		}
	}
}

// RasterizeDensity distributes a rectangle carrying total quantity `total`
// (e.g. Watts) as a density onto the grid: each covered cell gains
// total * overlapArea / r.Area().
func (g *Grid) RasterizeDensity(extent Rect, r Rect, total float64) {
	if r.Area() <= 0 {
		return
	}
	g.Rasterize(extent, r, 0) // no-op guard for extent validity
	cw := extent.W / float64(g.NX)
	ch := extent.H / float64(g.NY)
	i0 := clampInt(int(math.Floor((r.X-extent.X)/cw)), 0, g.NX)
	i1 := clampInt(int(math.Ceil((r.MaxX()-extent.X)/cw)), 0, g.NX)
	j0 := clampInt(int(math.Floor((r.Y-extent.Y)/ch)), 0, g.NY)
	j1 := clampInt(int(math.Ceil((r.MaxY()-extent.Y)/ch)), 0, g.NY)
	for j := j0; j < j1; j++ {
		for i := i0; i < i1; i++ {
			cell := Rect{
				X: extent.X + float64(i)*cw,
				Y: extent.Y + float64(j)*ch,
				W: cw, H: ch,
			}
			ov := r.OverlapArea(cell)
			if ov > 0 {
				g.Add(i, j, total*ov/r.Area())
			}
		}
	}
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// CellCenter returns the physical center of cell (i, j) given the grid's
// physical extent.
func (g *Grid) CellCenter(extent Rect, i, j int) Point {
	cw := extent.W / float64(g.NX)
	ch := extent.H / float64(g.NY)
	return Point{
		X: extent.X + (float64(i)+0.5)*cw,
		Y: extent.Y + (float64(j)+0.5)*ch,
	}
}

// CellAt returns the cell indices containing physical point p, clamped to the
// grid bounds.
func (g *Grid) CellAt(extent Rect, p Point) (int, int) {
	cw := extent.W / float64(g.NX)
	ch := extent.H / float64(g.NY)
	i := clampInt(int((p.X-extent.X)/cw), 0, g.NX-1)
	j := clampInt(int((p.Y-extent.Y)/ch), 0, g.NY-1)
	return i, j
}

// Downsample returns a grid reduced by an integer factor in each dimension,
// averaging the covered samples. The factor must divide both dimensions.
func (g *Grid) Downsample(factor int) (*Grid, error) {
	if factor <= 0 || g.NX%factor != 0 || g.NY%factor != 0 {
		return nil, fmt.Errorf("geom: factor %d does not divide %dx%d", factor, g.NX, g.NY)
	}
	out := NewGrid(g.NX/factor, g.NY/factor)
	inv := 1.0 / float64(factor*factor)
	for j := 0; j < out.NY; j++ {
		for i := 0; i < out.NX; i++ {
			s := 0.0
			for dj := 0; dj < factor; dj++ {
				for di := 0; di < factor; di++ {
					s += g.At(i*factor+di, j*factor+dj)
				}
			}
			out.Set(i, j, s*inv)
		}
	}
	return out, nil
}

// Normalize rescales the samples linearly to [0, 1]. A constant grid becomes
// all zeros.
func (g *Grid) Normalize() {
	lo, hi := g.Min(), g.Max()
	if hi-lo <= 0 {
		g.Fill(0)
		return
	}
	inv := 1 / (hi - lo)
	for i, v := range g.Data {
		g.Data[i] = (v - lo) * inv
	}
}
