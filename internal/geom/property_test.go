package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randRect(rng *rand.Rand) Rect {
	return NewRect(rng.Float64()*100, rng.Float64()*100, rng.Float64()*50+0.1, rng.Float64()*50+0.1)
}

func TestPropertyIntersectCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		a, b := randRect(rng), randRect(rng)
		oa, ok1 := a.Intersect(b)
		ob, ok2 := b.Intersect(a)
		if ok1 != ok2 || (ok1 && oa != ob) {
			t.Fatalf("intersect not commutative: %+v %+v", a, b)
		}
	}
}

func TestPropertyIntersectIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		a := randRect(rng)
		o, ok := a.Intersect(a)
		if !ok || math.Abs(o.Area()-a.Area()) > 1e-9 {
			t.Fatalf("self-intersection must be identity: %+v vs %+v", a, o)
		}
	}
}

func TestPropertyUnionCommutativeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		a, b, c := randRect(rng), randRect(rng), randRect(rng)
		if a.Union(b) != b.Union(a) {
			t.Fatal("union not commutative")
		}
		lhs := a.Union(b).Union(c)
		rhs := a.Union(b.Union(c))
		if math.Abs(lhs.Area()-rhs.Area()) > 1e-9 {
			t.Fatal("union not associative on bounding boxes")
		}
	}
}

func TestPropertyTranslatePreservesArea(t *testing.T) {
	f := func(dx, dy float64) bool {
		if math.IsNaN(dx) || math.IsNaN(dy) || math.Abs(dx) > 1e9 || math.Abs(dy) > 1e9 {
			return true
		}
		r := Rect{1, 2, 3, 4}
		tr := r.Translate(dx, dy)
		return tr.W == r.W && tr.H == r.H
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyScaleScalesArea(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 300; i++ {
		r := randRect(rng)
		f := rng.Float64()*3 + 0.1
		s := r.Scale(f)
		if math.Abs(s.Area()-r.Area()*f*f) > 1e-6*r.Area()*f*f {
			t.Fatalf("scale area wrong: %v vs %v", s.Area(), r.Area()*f*f)
		}
	}
}

func TestPropertyOverlapBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		a, b := randRect(rng), randRect(rng)
		ov := a.OverlapArea(b)
		if ov < 0 || ov > math.Min(a.Area(), b.Area())+1e-9 {
			t.Fatalf("overlap %v out of bounds for %v, %v", ov, a.Area(), b.Area())
		}
	}
}

func TestPropertyAdjacencySymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 500; i++ {
		a, b := randRect(rng), randRect(rng)
		if a.Adjacent(b) != b.Adjacent(a) {
			t.Fatalf("adjacency not symmetric: %+v %+v", a, b)
		}
	}
}

func TestPropertyGridDownsamplePreservesMean(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		g := NewGrid(8, 8)
		for i := range g.Data {
			g.Data[i] = rng.Float64()
		}
		d, err := g.Downsample(2)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(d.Mean()-g.Mean()) > 1e-12 {
			t.Fatalf("downsample changed mean: %v vs %v", d.Mean(), g.Mean())
		}
	}
}

func TestPropertyNormalizeIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := NewGrid(6, 6)
	for i := range g.Data {
		g.Data[i] = rng.Float64()*10 - 5
	}
	g.Normalize()
	before := append([]float64(nil), g.Data...)
	g.Normalize()
	for i := range before {
		if math.Abs(before[i]-g.Data[i]) > 1e-12 {
			t.Fatal("normalize not idempotent")
		}
	}
}

func TestPropertyRasterizeMonotoneInValue(t *testing.T) {
	extent := Rect{0, 0, 100, 100}
	r := Rect{10, 10, 30, 30}
	g1 := NewGrid(10, 10)
	g2 := NewGrid(10, 10)
	g1.RasterizeDensity(extent, r, 1)
	g2.RasterizeDensity(extent, r, 2)
	for i := range g1.Data {
		if g2.Data[i] < g1.Data[i] {
			t.Fatal("rasterize must be monotone in total value")
		}
	}
}
