// Package version renders the build's version string for the -version flag
// shared by this repo's commands (tscfp, tscfpd, attacksim, thermalmap).
package version

import (
	"fmt"
	"runtime/debug"
)

// String reports "<module version> <vcs revision> (<go toolchain>)" from the
// build info the Go toolchain stamps into every binary. A tagged module
// build yields the tag; a plain checkout build yields "(devel)" plus the
// short VCS revision (suffixed "+dirty" for a modified tree) when the
// toolchain recorded one.
func String() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown (build info unavailable)"
	}
	v := bi.Main.Version
	if v == "" {
		v = "(devel)"
	}
	var rev, dirty string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "+dirty"
			}
		}
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if rev != "" {
		return fmt.Sprintf("%s %s%s (%s)", v, rev, dirty, bi.GoVersion)
	}
	return fmt.Sprintf("%s (%s)", v, bi.GoVersion)
}
