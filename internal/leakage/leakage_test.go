package leakage

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func gridOf(nx, ny int, f func(i, j int) float64) *geom.Grid {
	g := geom.NewGrid(nx, ny)
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			g.Set(i, j, f(i, j))
		}
	}
	return g
}

func TestPearsonPerfectCorrelation(t *testing.T) {
	a := gridOf(8, 8, func(i, j int) float64 { return float64(i + j) })
	b := gridOf(8, 8, func(i, j int) float64 { return 3*float64(i+j) + 10 })
	if r := Pearson(a, b); math.Abs(r-1) > 1e-12 {
		t.Fatalf("r = %v, want 1", r)
	}
}

func TestPearsonPerfectAnticorrelation(t *testing.T) {
	a := gridOf(8, 8, func(i, j int) float64 { return float64(i) })
	b := gridOf(8, 8, func(i, j int) float64 { return -2 * float64(i) })
	if r := Pearson(a, b); math.Abs(r+1) > 1e-12 {
		t.Fatalf("r = %v, want -1", r)
	}
}

func TestPearsonConstantMapZero(t *testing.T) {
	a := gridOf(4, 4, func(i, j int) float64 { return 5 })
	b := gridOf(4, 4, func(i, j int) float64 { return float64(i) })
	if r := Pearson(a, b); r != 0 {
		t.Fatalf("constant map must give r=0, got %v", r)
	}
}

func TestPearsonSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := gridOf(8, 8, func(i, j int) float64 { return rng.Float64() })
	b := gridOf(8, 8, func(i, j int) float64 { return rng.Float64() })
	if math.Abs(Pearson(a, b)-Pearson(b, a)) > 1e-12 {
		t.Fatal("pearson must be symmetric")
	}
}

func TestPearsonMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Pearson(geom.NewGrid(2, 2), geom.NewGrid(3, 3))
}

func TestPropertyPearsonBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := gridOf(6, 6, func(i, j int) float64 { return rng.NormFloat64() })
		b := gridOf(6, 6, func(i, j int) float64 { return rng.NormFloat64() })
		r := Pearson(a, b)
		return r >= -1-1e-12 && r <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyPearsonAffineInvariant(t *testing.T) {
	f := func(seed int64, scale, offset float64) bool {
		if math.IsNaN(scale) || math.IsInf(scale, 0) || math.Abs(scale) < 1e-6 || math.Abs(scale) > 1e6 {
			return true
		}
		if math.IsNaN(offset) || math.Abs(offset) > 1e6 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		a := gridOf(6, 6, func(i, j int) float64 { return rng.NormFloat64() })
		b := gridOf(6, 6, func(i, j int) float64 { return rng.NormFloat64() })
		r1 := Pearson(a, b)
		b2 := b.Clone()
		b2.ScaleBy(math.Abs(scale))
		for i := range b2.Data {
			b2.Data[i] += offset
		}
		r2 := Pearson(a, b2)
		return math.Abs(r1-r2) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStabilityMapPerfectlyStableBin(t *testing.T) {
	// Bin (0,0): temperature follows power exactly across samples ->
	// stability 1. Bin (1,0): temperature is random -> |stability| < 1.
	m := 50
	rng := rand.New(rand.NewSource(2))
	powers := make([]*geom.Grid, m)
	temps := make([]*geom.Grid, m)
	for k := 0; k < m; k++ {
		p := geom.NewGrid(2, 1)
		tm := geom.NewGrid(2, 1)
		v := rng.Float64()
		p.Set(0, 0, v)
		tm.Set(0, 0, 300+10*v)
		p.Set(1, 0, rng.Float64())
		tm.Set(1, 0, 300+rng.Float64())
		powers[k], temps[k] = p, tm
	}
	stab := StabilityMap(powers, temps)
	if math.Abs(stab.At(0, 0)-1) > 1e-9 {
		t.Fatalf("bin (0,0) stability %v, want 1", stab.At(0, 0))
	}
	if math.Abs(stab.At(1, 0)) > 0.5 {
		t.Fatalf("random bin stability %v should be small", stab.At(1, 0))
	}
}

func TestStabilityConstantBinZero(t *testing.T) {
	powers := []*geom.Grid{geom.NewGrid(2, 2), geom.NewGrid(2, 2)}
	temps := []*geom.Grid{geom.NewGrid(2, 2), geom.NewGrid(2, 2)}
	stab := StabilityMap(powers, temps)
	if stab.Sum() != 0 {
		t.Fatal("constant bins must have stability 0")
	}
}

func TestMeanAbsStability(t *testing.T) {
	g := geom.NewGrid(2, 1)
	g.Set(0, 0, -0.5)
	g.Set(1, 0, 0.5)
	if got := MeanAbsStability(g); got != 0.5 {
		t.Fatalf("got %v", got)
	}
}

func TestMostStableBin(t *testing.T) {
	g := geom.NewGrid(3, 3)
	g.Set(1, 2, -0.9)
	g.Set(2, 0, 0.7)
	i, j, v := MostStableBin(g, nil)
	if i != 1 || j != 2 || v != 0.9 {
		t.Fatalf("got (%d,%d,%v)", i, j, v)
	}
	// Exclude the best bin; the second best must win.
	excl := make([]bool, 9)
	excl[2*3+1] = true
	i, j, v = MostStableBin(g, excl)
	if i != 2 || j != 0 || v != 0.7 {
		t.Fatalf("got (%d,%d,%v)", i, j, v)
	}
}

func TestNestedMeansSeparatesTwoLevels(t *testing.T) {
	// Left half value 1, right half value 10: exactly two classes.
	g := gridOf(8, 8, func(i, j int) float64 {
		if i < 4 {
			return 1
		}
		return 10
	})
	classes := NestedMeansClasses(g, EntropyOptions{})
	seen := map[int]bool{}
	for _, c := range classes {
		seen[c] = true
	}
	if len(seen) != 2 {
		t.Fatalf("want 2 classes, got %d", len(seen))
	}
	// All left bins share a class; all right bins share the other.
	c0 := classes[0]
	for j := 0; j < 8; j++ {
		for i := 0; i < 4; i++ {
			if classes[j*8+i] != c0 {
				t.Fatal("left half split incorrectly")
			}
		}
	}
}

func TestNestedMeansConstantMapOneClass(t *testing.T) {
	g := gridOf(4, 4, func(i, j int) float64 { return 7 })
	classes := NestedMeansClasses(g, EntropyOptions{})
	for _, c := range classes {
		if c != 0 {
			t.Fatal("constant map must be a single class")
		}
	}
}

func TestNestedMeansRespectsMaxDepth(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := gridOf(16, 16, func(i, j int) float64 { return rng.Float64() })
	classes := NestedMeansClasses(g, EntropyOptions{MaxDepth: 3, StdDevFrac: 1e-12})
	maxC := 0
	for _, c := range classes {
		if c > maxC {
			maxC = c
		}
	}
	if maxC+1 > 8 {
		t.Fatalf("depth 3 allows at most 8 classes, got %d", maxC+1)
	}
}

func TestSpatialEntropyZeroForConstantMap(t *testing.T) {
	g := gridOf(8, 8, func(i, j int) float64 { return 3 })
	if s := SpatialEntropy(g, EntropyOptions{}); s != 0 {
		t.Fatalf("constant map entropy %v, want 0", s)
	}
}

// TestSpatialEntropyPrinciple verifies Claramunt's two principles as the
// paper uses them: interleaved (close) different-valued entities score
// higher than segregated ones.
func TestSpatialEntropyPrinciple(t *testing.T) {
	// Segregated: left half low, right half high.
	seg := gridOf(8, 8, func(i, j int) float64 {
		if i < 4 {
			return 1
		}
		return 10
	})
	// Interleaved checkerboard of the same two values.
	inter := gridOf(8, 8, func(i, j int) float64 {
		if (i+j)%2 == 0 {
			return 1
		}
		return 10
	})
	sSeg := SpatialEntropy(seg, EntropyOptions{})
	sInter := SpatialEntropy(inter, EntropyOptions{})
	if sInter <= sSeg {
		t.Fatalf("interleaved (%v) must exceed segregated (%v)", sInter, sSeg)
	}
}

func TestSpatialEntropyMoreGradientsMoreEntropy(t *testing.T) {
	// Smooth, locally-uniform map vs a map with many large gradients.
	smooth := gridOf(16, 16, func(i, j int) float64 { return 1 + 0.01*float64(i) })
	rng := rand.New(rand.NewSource(4))
	spiky := gridOf(16, 16, func(i, j int) float64 { return rng.Float64() * 10 })
	sSmooth := SpatialEntropy(smooth, EntropyOptions{})
	sSpiky := SpatialEntropy(spiky, EntropyOptions{})
	if sSpiky <= sSmooth {
		t.Fatalf("spiky map (%v) must exceed smooth map (%v)", sSpiky, sSmooth)
	}
}

func TestSumPairwiseAbs(t *testing.T) {
	v := []float64{1, 3, 6}
	// |1-3| + |1-6| + |3-6| = 2 + 5 + 3 = 10
	if got := sumPairwiseAbs(v); got != 10 {
		t.Fatalf("got %v", got)
	}
}

func TestSumCrossAbs(t *testing.T) {
	a := []float64{0, 2}
	b := []float64{1, 3}
	// |0-1|+|0-3|+|2-1|+|2-3| = 1+3+1+1 = 6
	if got := sumCrossAbsSorted(a, b, prefixSums(b)); got != 6 {
		t.Fatalf("got %v", got)
	}
}

func TestAvgIntraManhattanBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xs := make([]float64, 20)
	ys := make([]float64, 20)
	for i := range xs {
		xs[i] = float64(rng.Intn(10))
		ys[i] = float64(rng.Intn(10))
	}
	want := 0.0
	pairs := 0
	for i := 0; i < len(xs); i++ {
		for j := i + 1; j < len(xs); j++ {
			want += math.Abs(xs[i]-xs[j]) + math.Abs(ys[i]-ys[j])
			pairs++
		}
	}
	want /= float64(pairs)
	if got := avgIntraManhattan(xs, ys); math.Abs(got-want) > 1e-9 {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestAvgInterManhattanBruteForce(t *testing.T) {
	// Class = bins {(0,0), (1,0)}; all = 2x2 grid.
	cx := []float64{0, 1}
	cy := []float64{0, 0}
	sortedAllX := []float64{0, 0, 1, 1}
	sortedAllY := []float64{0, 0, 1, 1}
	// Others: (0,1), (1,1).
	// d((0,0),(0,1)) = 1; d((0,0),(1,1)) = 2; d((1,0),(0,1)) = 2; d((1,0),(1,1)) = 1.
	want := (1.0 + 2 + 2 + 1) / 4
	got := avgInterManhattanPre(cx, cy, sortedAllX, prefixSums(sortedAllX), sortedAllY, prefixSums(sortedAllY))
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("got %v want %v", got, want)
	}
}

// TestSumCrossAbsSortedBruteForce pins the shared-prefix cross sum against a
// direct double loop on random inputs.
func TestSumCrossAbsSortedBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		A := make([]float64, 1+rng.Intn(12))
		B := make([]float64, 1+rng.Intn(30))
		for i := range A {
			A[i] = math.Floor(rng.Float64() * 8)
		}
		for i := range B {
			B[i] = math.Floor(rng.Float64() * 8)
		}
		want := 0.0
		for _, a := range A {
			for _, b := range B {
				want += math.Abs(a - b)
			}
		}
		sorted := append([]float64(nil), B...)
		sort.Float64s(sorted)
		got := sumCrossAbsSorted(A, sorted, prefixSums(sorted))
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: got %v want %v", trial, got, want)
		}
	}
}

func TestAnalyzeReport(t *testing.T) {
	p := gridOf(8, 8, func(i, j int) float64 { return float64(i) })
	tm := gridOf(8, 8, func(i, j int) float64 { return 300 + float64(i) })
	rep := Analyze(1, p, tm, EntropyOptions{})
	if rep.Die != 1 {
		t.Fatal("die")
	}
	if math.Abs(rep.Correlation-1) > 1e-12 {
		t.Fatalf("correlation %v", rep.Correlation)
	}
	if rep.SpatialEntropy <= 0 {
		t.Fatalf("entropy %v", rep.SpatialEntropy)
	}
}

func TestPropertySpatialEntropyNonNegative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gridOf(8, 8, func(i, j int) float64 { return rng.Float64() * 5 })
		return SpatialEntropy(g, EntropyOptions{}) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
