package leakage

import (
	"math"
	"sort"

	"repro/internal/geom"
)

// EntropyCache is an incremental evaluator for the spatial entropy S_d
// (paper Eq. 3) of one power map that changes a few bins at a time — the
// annealing loop's per-dirty-die entropy refresh, where the map is patched
// per move (moved footprints subtracted and re-added) and a from-scratch
// SpatialEntropy was the last full-map recompute left on the shared path.
//
// What is cached and how it stays exact:
//
//   - the value-sorted bin list behind the nested-means classification is
//     maintained by merging the changed bins into the previous sort instead
//     of re-sorting the whole map. The split decisions read only the value
//     sequence and never cut inside a run of equal values (see
//     nestedMeansSplit), so the maintained order reproduces the from-scratch
//     classification bin for bin;
//   - the nested-means class boundaries are re-validated on every update by
//     re-running the (cheap, sort-free) split recursion over the maintained
//     order with the exact arithmetic of the full path — value drift that
//     invalidates a boundary is thereby detected exactly, never missed by an
//     approximate bound;
//   - the per-class Manhattan terms of Eq. 3 are evaluated from per-class
//     coordinate histograms instead of per-class coordinate sorts. Bin
//     coordinates are small integers, so every pairwise and cross sum is an
//     exactly representable integer and the histogram evaluation returns the
//     bit-identical dIntra/dInter the sort-based path computes (exact while
//     n*n*(nx+ny) stays below 2^53 — comfortably beyond any realistic grid).
//
// Update is self-synchronizing: it diffs the incoming grid against the
// cache's own mirror of the last seen values, so callers never itemize
// changes, and a rejected move needs no cache rollback — the next Update
// against the restored map re-converges to the exact from-scratch entropy.
// An EntropyCache is not safe for concurrent use.
type EntropyCache struct {
	opts   EntropyOptions
	nx, ny int
	valid  bool

	vals    []float64 // vals[bin] mirrors the last synchronized grid
	items   []item    // vals sorted ascending (any tie order)
	classOf []int     // bin -> dense class id, ascending power
	entropy float64

	// Exact per-coordinate cross sums against the full grid: crossX[x] is
	// sum over every bin b of |x - x_b|, likewise crossY. Constant per grid
	// shape.
	crossX, crossY []float64

	// Scratch, reused across updates.
	changedMark []bool
	changedBins []int
	newEntries  []item
	mergeBuf    []item
	histX       []int // nClasses * nx flattened per-class x histograms
	histY       []int // nClasses * ny
	classCnt    []int
}

// NewEntropyCache validates the options and returns an empty cache; the
// first Update builds every structure from scratch.
func NewEntropyCache(opts EntropyOptions) (*EntropyCache, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts.defaults()
	return &EntropyCache{opts: opts}, nil
}

// Entropy returns the last computed spatial entropy. Only meaningful after
// an Update.
func (c *EntropyCache) Entropy() float64 { return c.entropy }

// Invalidate drops the cached state; the next Update rebuilds from scratch.
func (c *EntropyCache) Invalidate() { c.valid = false }

// Update synchronizes the cache with the grid's current contents and returns
// the spatial entropy, bit-identical to SpatialEntropy(power, opts) on the
// same data. patched reports whether the update was served incrementally
// (false on the first use, a grid-shape change, or when more than a quarter
// of the bins changed — then a from-scratch rebuild is cheaper than the
// merge). It panics on invalid power maps (see ValidatePowerMap), mirroring
// SpatialEntropy's contract.
func (c *EntropyCache) Update(power *geom.Grid) (entropy float64, patched bool) {
	if err := ValidatePowerMap(power); err != nil {
		panic(err.Error())
	}
	n := len(power.Data)
	if !c.valid || power.NX != c.nx || power.NY != c.ny {
		c.rebuild(power)
		return c.entropy, false
	}

	// Diff against the mirror: the caller patches maps in place, so the
	// changed set is re-derived here rather than itemized by the caller.
	changed := c.changedBins[:0]
	for i, v := range power.Data {
		//lint:floateq mirror diff: untouched bins are byte-copies of the mirror, so any difference is a real patch
		if v != c.vals[i] {
			changed = append(changed, i)
		}
	}
	c.changedBins = changed
	if len(changed) == 0 {
		return c.entropy, true
	}
	if len(changed) > n/4 {
		// Wholesale change (e.g. new voltage scales touched every bin): the
		// merge would shuffle most of the array anyway.
		c.rebuild(power)
		return c.entropy, false
	}

	// Merge the changed bins into the maintained sort: drop their stale
	// entries, weave in the re-sorted new values.
	for _, b := range changed {
		c.changedMark[b] = true
	}
	newEntries := c.newEntries[:0]
	for _, b := range changed {
		newEntries = append(newEntries, item{power.Data[b], b})
	}
	sort.Slice(newEntries, func(i, j int) bool { return newEntries[i].val < newEntries[j].val })
	c.newEntries = newEntries

	merged := c.mergeBuf[:0]
	k := 0
	for _, it := range c.items {
		if c.changedMark[it.idx] {
			continue // stale entry of a changed bin
		}
		for k < len(newEntries) && newEntries[k].val < it.val {
			merged = append(merged, newEntries[k])
			k++
		}
		merged = append(merged, it)
	}
	merged = append(merged, newEntries[k:]...)
	c.mergeBuf = c.items[:0]
	c.items = merged

	for _, b := range changed {
		c.changedMark[b] = false
		c.vals[b] = power.Data[b]
	}
	c.recompute(power)
	return c.entropy, true
}

// rebuild resizes and refills every structure from scratch.
func (c *EntropyCache) rebuild(power *geom.Grid) {
	n := len(power.Data)
	if !c.valid || power.NX != c.nx || power.NY != c.ny {
		c.nx, c.ny = power.NX, power.NY
		c.vals = make([]float64, n)
		c.classOf = make([]int, n)
		c.changedMark = make([]bool, n)
		c.items = make([]item, 0, n)
		c.mergeBuf = make([]item, 0, n)
		c.buildCrossSums()
	}
	copy(c.vals, power.Data)
	items := c.items[:0]
	for i, v := range power.Data {
		items = append(items, item{v, i})
	}
	sort.Slice(items, func(a, b int) bool { return items[a].val < items[b].val })
	c.items = items
	c.recompute(power)
	c.valid = true
}

// buildCrossSums precomputes, per coordinate, the exact Manhattan distance
// sum against every bin of the grid (each x value occurs ny times, each y
// value nx times). Closed form, all integers.
func (c *EntropyCache) buildCrossSums() {
	nx, ny := c.nx, c.ny
	c.crossX = resizeF64(c.crossX, nx)
	c.crossY = resizeF64(c.crossY, ny)
	for x := 0; x < nx; x++ {
		// sum over x' in [0,nx) of |x-x'| = x(x+1)/2 + (nx-1-x)(nx-x)/2.
		s := x*(x+1)/2 + (nx-1-x)*(nx-x)/2
		c.crossX[x] = float64(ny) * float64(s)
	}
	for y := 0; y < ny; y++ {
		s := y*(y+1)/2 + (ny-1-y)*(ny-y)/2
		c.crossY[y] = float64(nx) * float64(s)
	}
}

// recompute re-derives the classification and the entropy from the
// maintained sort, with the exact arithmetic of the from-scratch path: the
// stop threshold comes from the grid's StdDev (bin order, like
// SpatialEntropy), the split re-runs nestedMeansSplit, and the Manhattan
// terms come from the per-class histograms.
func (c *EntropyCache) recompute(power *geom.Grid) {
	stop := c.opts.StdDevFrac * power.StdDev()
	nClasses := nestedMeansSplit(c.items, c.classOf, stop, c.opts.MaxDepth)
	c.entropy = c.entropyFromClasses(nClasses)
}

// entropyFromClasses evaluates Eq. 3 from the per-class coordinate
// histograms. Value-identical (bit for bit) to spatialEntropyFromClasses on
// the same classOf: every pairwise/cross Manhattan sum is an exact integer,
// and the final divisions and the class accumulation order match the
// sort-based path operation for operation.
func (c *EntropyCache) entropyFromClasses(nClasses int) float64 {
	nx, ny := c.nx, c.ny
	n := nx * ny
	total := float64(n)

	c.histX = resizeInt(c.histX, nClasses*nx)
	c.histY = resizeInt(c.histY, nClasses*ny)
	c.classCnt = resizeInt(c.classCnt, nClasses)
	for j := 0; j < ny; j++ {
		row := j * nx
		for i := 0; i < nx; i++ {
			cl := c.classOf[row+i]
			c.histX[cl*nx+i]++
			c.histY[cl*ny+j]++
			c.classCnt[cl]++
		}
	}

	S := 0.0
	for cl := 0; cl < nClasses; cl++ {
		cnt := c.classCnt[cl]
		hx := c.histX[cl*nx : (cl+1)*nx]
		hy := c.histY[cl*ny : (cl+1)*ny]
		size := float64(cnt)
		p := size / total
		shannon := -p * math.Log2(p)
		if shannon == 0 {
			continue
		}
		intraX := pairwiseAbsFromHist(hx)
		intraY := pairwiseAbsFromHist(hy)
		var dIntra float64
		if cnt >= 2 {
			pairs := size * float64(cnt-1) / 2
			dIntra = (intraX + intraY) / pairs
		}
		var dInter float64
		if nOther := n - cnt; nOther > 0 {
			crossAll := crossFromHist(hx, c.crossX) + crossFromHist(hy, c.crossY)
			withinPairs := 2 * (intraX + intraY) // ordered within-class pairs
			inter := crossAll - withinPairs
			dInter = inter / (size * float64(nOther))
		}
		if dIntra <= 0 {
			// Single-member (or co-located) class: cell pitch as distance.
			dIntra = 1
		}
		if dInter <= 0 {
			continue
		}
		S += (dIntra / dInter) * shannon
	}
	return S
}

// pairwiseAbsFromHist returns sum_{i<j} |v_i - v_j| over the coordinate
// multiset described by the histogram (hist[x] occurrences of value x).
// Exact: every intermediate is an integer below 2^53 for realistic grids.
func pairwiseAbsFromHist(hist []int) float64 {
	total, cumCnt, cumSum := 0.0, 0.0, 0.0
	for x, cnt := range hist {
		if cnt == 0 {
			continue
		}
		cx, fx := float64(cnt), float64(x)
		total += (fx*cumCnt - cumSum) * cx
		cumCnt += cx
		cumSum += fx * cx
	}
	return total
}

// crossFromHist returns the Manhattan distance sum between the class
// multiset and every bin of the grid, via the precomputed per-coordinate
// cross sums. Exact integers throughout.
func crossFromHist(hist []int, cross []float64) float64 {
	total := 0.0
	for x, cnt := range hist {
		if cnt != 0 {
			total += float64(cnt) * cross[x]
		}
	}
	return total
}

func resizeInt(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

func resizeF64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// classes exposes the current classification for in-package tests.
func (c *EntropyCache) classes() []int { return c.classOf }
