package leakage

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// patchRandomBins perturbs k random bins the way the annealing loop patches
// power maps (subtract/re-add footprints): each touched bin gets a new
// non-negative value. Returns the pre-patch values for reverts.
func patchRandomBins(g *geom.Grid, rng *rand.Rand, k int) (bins []int, old []float64) {
	for t := 0; t < k; t++ {
		b := rng.Intn(len(g.Data))
		bins = append(bins, b)
		old = append(old, g.Data[b])
		g.Data[b] = rng.Float64() * 2
	}
	return bins, old
}

// TestEntropyCacheMatchesFullOverRandomPatches is the entropy half of the
// incremental-vs-full equivalence contract: over 1k journaled patches with
// rejections interleaved (a rejected patch restores the exact old values and
// the cache must re-converge without any rollback call), every Update must
// reproduce SpatialEntropy on the same map within 1e-9 — in practice bit
// for bit, since the histogram evaluation is exact.
func TestEntropyCacheMatchesFullOverRandomPatches(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	// Non-square grid so x/y histogram indexing cannot silently swap.
	g := geom.NewGrid(12, 20)
	for i := range g.Data {
		g.Data[i] = rng.Float64()
	}
	c, err := NewEntropyCache(EntropyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	check := func(step int, wantPatched bool) {
		got, patched := c.Update(g)
		want := SpatialEntropy(g, EntropyOptions{})
		if d := math.Abs(got - want); d > 1e-9*math.Max(1, math.Abs(want)) {
			t.Fatalf("step %d: cache %v vs full %v (|diff| %g)", step, got, want, d)
		}
		if patched != wantPatched {
			t.Fatalf("step %d: patched=%v, want %v", step, patched, wantPatched)
		}
	}
	check(-1, false) // first use: full rebuild
	patches := 0
	for i := 0; i < 1000; i++ {
		bins, old := patchRandomBins(g, rng, 1+rng.Intn(6))
		check(i, true)
		patches++
		if rng.Float64() < 0.5 {
			// Rejection: restore the exact pre-patch values (the journal
			// restores map bytes); the cache self-syncs on the next Update.
			for k := len(bins) - 1; k >= 0; k-- {
				g.Data[bins[k]] = old[k]
			}
			check(i, true)
		}
	}
	if patches == 0 {
		t.Fatal("no patches exercised")
	}
}

// TestEntropyCacheClassesMatchFull pins the maintained classification
// against NestedMeansClasses after heavy patching: identical class ids for
// every bin (class monotonicity and the tie-handling argument both follow
// from this equality plus the existing NestedMeansClasses property tests).
func TestEntropyCacheClassesMatchFull(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := geom.NewGrid(16, 16)
	for i := range g.Data {
		g.Data[i] = rng.NormFloat64()
	}
	c, err := NewEntropyCache(EntropyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c.Update(g)
	for i := 0; i < 200; i++ {
		patchRandomBins(g, rng, 1+rng.Intn(8))
		c.Update(g)
		want := NestedMeansClasses(g, EntropyOptions{})
		got := c.classes()
		for b := range want {
			if got[b] != want[b] {
				t.Fatalf("step %d bin %d: cache class %d != full class %d", i, b, got[b], want[b])
			}
		}
	}
}

// TestEntropyCachePermutationSensitive mirrors the SpatialEntropy
// permutation property through the cache: scrambling a segregated map must
// raise the cached entropy exactly as it raises the full metric.
func TestEntropyCachePermutationSensitive(t *testing.T) {
	seg := geom.NewGrid(8, 8)
	for j := 0; j < 8; j++ {
		for i := 0; i < 8; i++ {
			if i < 4 {
				seg.Set(i, j, 1)
			} else {
				seg.Set(i, j, 10)
			}
		}
	}
	scram := seg.Clone()
	rng := rand.New(rand.NewSource(4))
	rng.Shuffle(len(scram.Data), func(a, b int) {
		scram.Data[a], scram.Data[b] = scram.Data[b], scram.Data[a]
	})
	c, err := NewEntropyCache(EntropyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sSeg, _ := c.Update(seg)
	sScram, _ := c.Update(scram) // wholesale change: internal rebuild path
	if sSeg != SpatialEntropy(seg, EntropyOptions{}) {
		t.Fatalf("cached segregated entropy %v diverges from full", sSeg)
	}
	if sScram != SpatialEntropy(scram, EntropyOptions{}) {
		t.Fatalf("cached scrambled entropy %v diverges from full", sScram)
	}
	if sScram <= sSeg {
		t.Fatalf("interleaving must raise spatial entropy: %v vs %v", sScram, sSeg)
	}
}

// TestEntropyCacheWholesaleChangeRebuilds verifies the patch/rebuild
// threshold: changing most bins (a voltage-scale change touches every bin)
// must fall back to the rebuild path and still return the exact entropy.
func TestEntropyCacheWholesaleChangeRebuilds(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := geom.NewGrid(10, 10)
	for i := range g.Data {
		g.Data[i] = rng.Float64()
	}
	c, err := NewEntropyCache(EntropyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c.Update(g)
	for i := range g.Data {
		g.Data[i] *= 1.3
	}
	got, patched := c.Update(g)
	if patched {
		t.Fatal("wholesale change must take the rebuild path")
	}
	if want := SpatialEntropy(g, EntropyOptions{}); got != want {
		t.Fatalf("rebuilt entropy %v != full %v", got, want)
	}
	// An identical map must be served without work and count as patched.
	if _, patched := c.Update(g); !patched {
		t.Fatal("unchanged map must be served from cache")
	}
}

// --- validation error paths --------------------------------------------------

func TestEntropyOptionsValidate(t *testing.T) {
	cases := []struct {
		name string
		opts EntropyOptions
		ok   bool
	}{
		{"zero-defaults", EntropyOptions{}, true},
		{"explicit", EntropyOptions{MaxDepth: 3, StdDevFrac: 0.1}, true},
		{"negative-depth", EntropyOptions{MaxDepth: -1}, false},
		{"negative-frac", EntropyOptions{StdDevFrac: -0.5}, false},
		{"nan-frac", EntropyOptions{StdDevFrac: math.NaN()}, false},
		{"inf-frac", EntropyOptions{StdDevFrac: math.Inf(1)}, false},
	}
	for _, tc := range cases {
		err := tc.opts.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: error expected, got nil", tc.name)
		}
	}
}

func TestValidatePowerMap(t *testing.T) {
	good := geom.NewGrid(4, 4)
	if err := ValidatePowerMap(good); err != nil {
		t.Fatalf("valid map rejected: %v", err)
	}
	if err := ValidatePowerMap(nil); err == nil {
		t.Fatal("nil map accepted")
	}
	if err := ValidatePowerMap(&geom.Grid{}); err == nil {
		t.Fatal("empty map accepted")
	}
	mismatched := &geom.Grid{NX: 3, NY: 3, Data: make([]float64, 4)}
	if err := ValidatePowerMap(mismatched); err == nil {
		t.Fatal("dimension-mismatched map accepted")
	}
	bad := geom.NewGrid(2, 2)
	bad.Data[1] = math.NaN()
	if err := ValidatePowerMap(bad); err == nil {
		t.Fatal("NaN map accepted")
	}
	bad.Data[1] = math.Inf(-1)
	if err := ValidatePowerMap(bad); err == nil {
		t.Fatal("Inf map accepted")
	}
}

func TestNewEntropyCacheRejectsBadOptions(t *testing.T) {
	if _, err := NewEntropyCache(EntropyOptions{MaxDepth: -2}); err == nil {
		t.Fatal("negative MaxDepth accepted")
	}
	if _, err := NewEntropyCache(EntropyOptions{StdDevFrac: -1}); err == nil {
		t.Fatal("negative StdDevFrac accepted")
	}
	if c, err := NewEntropyCache(EntropyOptions{}); err != nil || c == nil {
		t.Fatalf("default options rejected: %v", err)
	}
}

func TestSpatialEntropyPanicsOnInvalidInputs(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: panic expected", name)
			}
		}()
		fn()
	}
	g := geom.NewGrid(4, 4)
	mustPanic("negative depth", func() { SpatialEntropy(g, EntropyOptions{MaxDepth: -1}) })
	mustPanic("nil map", func() { NestedMeansClasses(nil, EntropyOptions{}) })
	mustPanic("empty map", func() { SpatialEntropy(&geom.Grid{}, EntropyOptions{}) })
	mustPanic("cache nil map", func() {
		c, _ := NewEntropyCache(EntropyOptions{})
		c.Update(nil)
	})
}
