package leakage

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func randomMaps(rng *rand.Rand, m, nx, ny int) []*geom.Grid {
	out := make([]*geom.Grid, m)
	for k := range out {
		g := geom.NewGrid(nx, ny)
		for i := range g.Data {
			g.Data[i] = rng.Float64()
		}
		out[k] = g
	}
	return out
}

func TestSVFPerfectChannel(t *testing.T) {
	// Thermal map = affine image of the power map: the side channel
	// preserves all pairwise structure, SVF -> 1.
	rng := rand.New(rand.NewSource(1))
	powers := randomMaps(rng, 12, 6, 6)
	temps := make([]*geom.Grid, len(powers))
	for k, p := range powers {
		tm := p.Clone()
		tm.ScaleBy(3)
		for i := range tm.Data {
			tm.Data[i] += 300
		}
		temps[k] = tm
	}
	if svf := SVF(powers, temps); svf < 0.999 {
		t.Fatalf("perfect channel should give SVF ~1, got %v", svf)
	}
}

func TestSVFUselessChannel(t *testing.T) {
	// Thermal maps unrelated to power maps: SVF ~ 0.
	rng := rand.New(rand.NewSource(2))
	powers := randomMaps(rng, 14, 6, 6)
	temps := randomMaps(rng, 14, 6, 6)
	if svf := math.Abs(SVF(powers, temps)); svf > 0.35 {
		t.Fatalf("unrelated channel should give SVF ~0, got %v", svf)
	}
}

func TestSVFDegradedChannelOrdering(t *testing.T) {
	// Adding noise to the channel must not raise SVF.
	rng := rand.New(rand.NewSource(3))
	powers := randomMaps(rng, 12, 6, 6)
	mk := func(noise float64) []*geom.Grid {
		temps := make([]*geom.Grid, len(powers))
		nrng := rand.New(rand.NewSource(99))
		for k, p := range powers {
			tm := p.Clone()
			for i := range tm.Data {
				tm.Data[i] += noise * nrng.NormFloat64()
			}
			temps[k] = tm
		}
		return temps
	}
	clean := SVF(powers, mk(0.01))
	noisy := SVF(powers, mk(2.0))
	if noisy >= clean {
		t.Fatalf("noise should lower SVF: clean %v noisy %v", clean, noisy)
	}
}

func TestSVFTooFewSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	powers := randomMaps(rng, 2, 4, 4)
	temps := randomMaps(rng, 2, 4, 4)
	if svf := SVF(powers, temps); svf != 0 {
		t.Fatalf("got %v for degenerate sample count", svf)
	}
}

func TestSVFPerDie(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p0 := randomMaps(rng, 10, 4, 4)
	t0 := make([]*geom.Grid, len(p0))
	for k, p := range p0 {
		t0[k] = p.Clone() // perfect channel on die 0
	}
	p1 := randomMaps(rng, 10, 4, 4)
	t1 := randomMaps(rng, 10, 4, 4) // broken channel on die 1
	out := SVFPerDie([][]*geom.Grid{p0, p1}, [][]*geom.Grid{t0, t1})
	if len(out) != 2 {
		t.Fatal("dies")
	}
	if out[0] < 0.999 {
		t.Fatalf("die 0 should be perfect: %v", out[0])
	}
	if math.Abs(out[1]) > 0.4 {
		t.Fatalf("die 1 should be near 0: %v", out[1])
	}
}

func TestGridDistance(t *testing.T) {
	a := geom.NewGrid(2, 1)
	b := geom.NewGrid(2, 1)
	a.Set(0, 0, 3)
	b.Set(1, 0, 4)
	if d := gridDistance(a, b); d != 5 {
		t.Fatalf("distance %v, want 5", d)
	}
}
