// Package leakage implements the paper's thermal-leakage metrics:
//
//   - Pearson correlation of power and thermal maps per die (Eq. 1), the
//     steady-state leakage measure and the basis of the side-channel
//     vulnerability factor;
//   - correlation stability per grid bin over m activity samples (Eq. 2),
//     identifying the locations an attacker can model reliably;
//   - spatial entropy of power maps (Eq. 3, after Claramunt), with
//     nested-means classification and Manhattan inter-/intra-class
//     distances — the fast in-loop proxy used during floorplanning.
package leakage

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
)

// Pearson returns the correlation coefficient r_d between a power map and a
// thermal map of the same die (paper Eq. 1). The maps must share dimensions.
// Degenerate (constant) maps yield 0.
func Pearson(power, temp *geom.Grid) float64 {
	if power.NX != temp.NX || power.NY != temp.NY {
		panic(fmt.Sprintf("leakage: grid mismatch %dx%d vs %dx%d", power.NX, power.NY, temp.NX, temp.NY))
	}
	return pearsonSlices(power.Data, temp.Data)
}

func pearsonSlices(a, b []float64) float64 {
	n := float64(len(a))
	if n == 0 {
		return 0
	}
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= n
	mb /= n
	var num, da, db float64
	for i := range a {
		x, y := a[i]-ma, b[i]-mb
		num += x * y
		da += x * x
		db += y * y
	}
	if da <= 0 || db <= 0 {
		return 0
	}
	return num / math.Sqrt(da*db)
}

// MaskedPearson returns the Pearson correlation restricted to the bins
// marked true in mask — the per-region leakage used when only particular
// (security-critical) modules are to be protected (the paper's Sec. 7.1
// adaptation). A mask with fewer than two selected bins yields 0.
func MaskedPearson(power, temp *geom.Grid, mask []bool) float64 {
	if power.NX != temp.NX || power.NY != temp.NY || len(mask) != len(power.Data) {
		panic("leakage: masked grids must share dimensions")
	}
	var a, b []float64
	for i := range mask {
		if mask[i] {
			a = append(a, power.Data[i])
			b = append(b, temp.Data[i])
		}
	}
	if len(a) < 2 {
		return 0
	}
	return pearsonSlices(a, b)
}

// StabilityMap computes the per-bin runtime correlation stability r_{d,x,y}
// (paper Eq. 2): for each bin, the Pearson correlation between its power and
// temperature readings across the m provided samples. powers[k] and temps[k]
// are the maps of sample k. Bins whose power or temperature never varies get
// stability 0 (nothing for an attacker to model there).
func StabilityMap(powers, temps []*geom.Grid) *geom.Grid {
	if len(powers) == 0 || len(powers) != len(temps) {
		panic("leakage: need equal, non-zero sample counts")
	}
	nx, ny := powers[0].NX, powers[0].NY
	m := len(powers)
	out := geom.NewGrid(nx, ny)
	pv := make([]float64, m)
	tv := make([]float64, m)
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			for k := 0; k < m; k++ {
				pv[k] = powers[k].At(i, j)
				tv[k] = temps[k].At(i, j)
			}
			out.Set(i, j, pearsonSlices(pv, tv))
		}
	}
	return out
}

// MeanAbsStability summarizes a stability map as the mean absolute per-bin
// correlation — the paper's "average correlation" criterion for the dummy
// TSV insertion stop rule.
func MeanAbsStability(stab *geom.Grid) float64 {
	s := 0.0
	for _, v := range stab.Data {
		s += math.Abs(v)
	}
	return s / float64(len(stab.Data))
}

// MostStableBin returns the bin with the highest absolute stability,
// optionally excluding bins marked true in `exclude` (nil = none). Ties
// break toward the lower index for determinism.
func MostStableBin(stab *geom.Grid, exclude []bool) (i, j int, val float64) {
	best := -1.0
	bi, bj := 0, 0
	for jj := 0; jj < stab.NY; jj++ {
		for ii := 0; ii < stab.NX; ii++ {
			if exclude != nil && exclude[jj*stab.NX+ii] {
				continue
			}
			v := math.Abs(stab.At(ii, jj))
			if v > best {
				best, bi, bj = v, ii, jj
			}
		}
	}
	return bi, bj, best
}

// --- Spatial entropy (Eq. 3) -------------------------------------------------

// EntropyOptions tunes the nested-means classification.
type EntropyOptions struct {
	// MaxDepth bounds the recursive bi-partitioning (2^MaxDepth classes at
	// most). Default 5 (up to 32 classes). Zero selects the default;
	// negative values are invalid (they would silently collapse every bin
	// into one class — see Validate).
	MaxDepth int
	// StdDevFrac stops splitting a class once its standard deviation falls
	// below this fraction of the whole map's standard deviation ("until the
	// standard deviation within any class approaches zero"). Default 0.05.
	// Zero selects the default; negative or non-finite values are invalid.
	StdDevFrac float64
}

func (o *EntropyOptions) defaults() {
	if o.MaxDepth == 0 {
		o.MaxDepth = 5
	}
	if o.StdDevFrac == 0 {
		o.StdDevFrac = 0.05
	}
}

// Validate rejects option values that would silently misclassify: a negative
// MaxDepth collapses the whole map into a single class (a non-positive class
// count), and a negative or non-finite StdDevFrac disables or corrupts the
// stop rule. Zero values are the documented defaults and are valid.
func (o EntropyOptions) Validate() error {
	if o.MaxDepth < 0 {
		return fmt.Errorf("leakage: EntropyOptions.MaxDepth %d is negative (2^MaxDepth classes must be positive)", o.MaxDepth)
	}
	if o.StdDevFrac < 0 || math.IsNaN(o.StdDevFrac) || math.IsInf(o.StdDevFrac, 0) {
		return fmt.Errorf("leakage: EntropyOptions.StdDevFrac %v must be finite and non-negative", o.StdDevFrac)
	}
	return nil
}

// ValidatePowerMap rejects power maps the entropy metrics cannot classify:
// nil or empty grids, grids whose Data does not match NX*NY, and maps
// containing non-finite values (these would corrupt the value sort and the
// class means without any error surfacing).
func ValidatePowerMap(power *geom.Grid) error {
	if power == nil {
		return fmt.Errorf("leakage: nil power map")
	}
	if power.NX <= 0 || power.NY <= 0 || len(power.Data) == 0 {
		return fmt.Errorf("leakage: empty power map (%dx%d, %d samples)", power.NX, power.NY, len(power.Data))
	}
	if len(power.Data) != power.NX*power.NY {
		return fmt.Errorf("leakage: power map has %d samples for %dx%d bins", len(power.Data), power.NX, power.NY)
	}
	for i, v := range power.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("leakage: power map bin %d holds non-finite value %v", i, v)
		}
	}
	return nil
}

// mustEntropyInputs panics on invalid entropy inputs; SpatialEntropy and
// NestedMeansClasses treat them as programmer errors (matching Pearson's
// grid-mismatch contract). Callers that need an error instead should call
// Validate/ValidatePowerMap themselves, or use NewEntropyCache.
func mustEntropyInputs(power *geom.Grid, opts EntropyOptions) {
	if err := opts.Validate(); err != nil {
		panic(err.Error())
	}
	if err := ValidatePowerMap(power); err != nil {
		panic(err.Error())
	}
}

// SpatialEntropy computes the spatial entropy S_d of a power map (paper
// Eq. 3): classes of similar power value from nested-means partitioning,
// each class weighted by its inter-/intra-class Manhattan distance ratio
// and its Shannon term. It panics on invalid options or power maps (see
// EntropyOptions.Validate and ValidatePowerMap).
func SpatialEntropy(power *geom.Grid, opts EntropyOptions) float64 {
	opts.defaults()
	classes := NestedMeansClasses(power, opts)
	return spatialEntropyFromClasses(power, classes)
}

// NestedMeansClasses assigns each bin a class id via nested-means
// partitioning of the power values: values are recursively bi-partitioned at
// the current class mean until the within-class standard deviation
// approaches zero (or MaxDepth is hit). Class ids are dense, starting at 0,
// ordered by ascending power. It panics on invalid options or power maps.
func NestedMeansClasses(power *geom.Grid, opts EntropyOptions) []int {
	opts.defaults()
	mustEntropyInputs(power, opts)
	n := len(power.Data)
	globalStd := power.StdDev()
	stop := opts.StdDevFrac * globalStd

	items := make([]item, n)
	for i, v := range power.Data {
		items[i] = item{v, i}
	}
	sort.Slice(items, func(a, b int) bool { return items[a].val < items[b].val })

	classOf := make([]int, n)
	nestedMeansSplit(items, classOf, stop, opts.MaxDepth)
	return classOf
}

// nestedMeansSplit runs the recursive nested-means bi-partitioning over a
// value-sorted item slice, assigning dense class ids (ascending power) into
// classOf, indexed by bin. It returns the class count.
//
// The split decisions read only the value sequence, and a cut can never land
// inside a run of equal values (all of them compare to the mean the same
// way), so the resulting bin->class assignment is a pure function of the
// value multiset — any tie order in items yields the identical classOf. The
// EntropyCache relies on this to keep its incrementally maintained sort
// bit-compatible with the from-scratch sort here.
func nestedMeansSplit(items []item, classOf []int, stop float64, maxDepth int) int {
	nextClass := 0
	var split func(lo, hi, depth int)
	split = func(lo, hi, depth int) {
		if hi-lo <= 1 || depth >= maxDepth || stdOf(items[lo:hi]) <= stop {
			for k := lo; k < hi; k++ {
				classOf[items[k].idx] = nextClass
			}
			nextClass++
			return
		}
		mean := 0.0
		for k := lo; k < hi; k++ {
			mean += items[k].val
		}
		mean /= float64(hi - lo)
		// Find the cut: first index with value > mean.
		cut := lo
		for cut < hi && items[cut].val <= mean {
			cut++
		}
		if cut == lo || cut == hi {
			// All values equal (or numerically so): one class.
			for k := lo; k < hi; k++ {
				classOf[items[k].idx] = nextClass
			}
			nextClass++
			return
		}
		split(lo, cut, depth+1)
		split(cut, hi, depth+1)
	}
	split(0, len(items), 0)
	return nextClass
}

type item struct {
	val float64
	idx int
}

func stdOf(items []item) float64 {
	n := float64(len(items))
	if n == 0 {
		return 0
	}
	mean := 0.0
	for _, it := range items {
		mean += it.val
	}
	mean /= n
	ss := 0.0
	for _, it := range items {
		d := it.val - mean
		ss += d * d
	}
	return math.Sqrt(ss / n)
}

// spatialEntropyFromClasses evaluates Eq. 3 given the class assignment.
func spatialEntropyFromClasses(power *geom.Grid, classOf []int) float64 {
	nx, ny := power.NX, power.NY
	total := float64(len(classOf))

	nClasses := 0
	for _, c := range classOf {
		if c+1 > nClasses {
			nClasses = c + 1
		}
	}
	// Collect coordinates per class.
	xs := make([][]float64, nClasses)
	ys := make([][]float64, nClasses)
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			c := classOf[j*nx+i]
			xs[c] = append(xs[c], float64(i))
			ys[c] = append(ys[c], float64(j))
		}
	}
	// Precompute the sorted coordinate multisets of ALL bins once, with
	// prefix sums: every class's inter-class cross sum then costs
	// O(|class| log n) against them instead of re-sorting the full grid
	// per class. (These multisets are sorted by construction: each x value
	// appears ny times, each y value nx times.)
	n := len(classOf)
	sortedAllX := make([]float64, 0, n)
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			sortedAllX = append(sortedAllX, float64(i))
		}
	}
	sortedAllY := make([]float64, 0, n)
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			sortedAllY = append(sortedAllY, float64(j))
		}
	}
	prefX := prefixSums(sortedAllX)
	prefY := prefixSums(sortedAllY)

	S := 0.0
	for c := 0; c < nClasses; c++ {
		size := float64(len(xs[c]))
		if size == 0 {
			continue
		}
		p := size / total
		shannon := -p * math.Log2(p)
		if shannon == 0 {
			continue
		}
		dIntra := avgIntraManhattan(xs[c], ys[c])
		dInter := avgInterManhattanPre(xs[c], ys[c], sortedAllX, prefX, sortedAllY, prefY)
		if dIntra <= 0 {
			// Single-member (or co-located) class: treat the ratio as its
			// upper bound contribution using the cell pitch as distance.
			dIntra = 1
		}
		if dInter <= 0 {
			continue
		}
		// Note on the ratio's orientation: the paper's Eq. 3 prints
		// dinter/dintra, but Claramunt's two principles as quoted by the
		// paper ("the closer the similar entities, the lower the spatial
		// entropy") require the intra/inter orientation — similar entities
		// packed together shrink dIntra and must shrink the entropy. We
		// follow the principles (and Claramunt's original formulation);
		// with the printed orientation the locally-uniform power regimes
		// the paper optimizes for would *raise* S, contradicting its own
		// observed trend (Sec. 4.2: lower S -> lower correlation).
		S += (dIntra / dInter) * shannon
	}
	return S
}

// avgIntraManhattan returns the average pairwise Manhattan distance within a
// point set in O(n log n) by separating the x and y sums.
func avgIntraManhattan(xs, ys []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	pairs := float64(n) * float64(n-1) / 2
	return (sumPairwiseAbs(xs) + sumPairwiseAbs(ys)) / pairs
}

// sumPairwiseAbs returns sum_{i<j} |v_i - v_j| in O(n log n).
func sumPairwiseAbs(v []float64) float64 {
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	total, prefix := 0.0, 0.0
	for i, x := range s {
		total += x*float64(i) - prefix
		prefix += x
	}
	return total
}

// avgInterManhattanPre returns the average Manhattan distance between
// members of a class (cx, cy) and all *other* bins, given the pre-sorted
// coordinate multisets of every bin and their prefix sums. Cost is
// O(|class| log n) — the class members are looked up against the shared
// sorted arrays instead of re-sorting the grid per class.
func avgInterManhattanPre(cx, cy, sortedAllX, prefX, sortedAllY, prefY []float64) float64 {
	nC := len(cx)
	nAll := len(sortedAllX)
	nOther := nAll - nC
	if nC == 0 || nOther <= 0 {
		return 0
	}
	// sum over (a in class, b in all) - sum over (a in class, b in class).
	crossAll := sumCrossAbsSorted(cx, sortedAllX, prefX) + sumCrossAbsSorted(cy, sortedAllY, prefY)
	withinPairs := 2 * (sumPairwiseAbs(cx) + sumPairwiseAbs(cy)) // ordered pairs
	inter := crossAll - withinPairs
	return inter / (float64(nC) * float64(nOther))
}

// sumCrossAbsSorted returns sum over a in A, b in B of |a - b|, where B is
// already sorted and prefixB holds its prefix sums (prefixB[k] = sum of the
// first k elements). O(|A| log |B|).
func sumCrossAbsSorted(A, sortedB, prefixB []float64) float64 {
	nB := len(sortedB)
	sumB := prefixB[nB]
	total := 0.0
	for _, x := range A {
		// Number of b's < x (ties split either way: |x - b| is 0 at ties).
		k := sort.SearchFloat64s(sortedB, x)
		left := float64(k)*x - prefixB[k]
		right := (sumB - prefixB[k]) - float64(nB-k)*x
		total += left + right
	}
	return total
}

// prefixSums returns p with p[k] = sum of the first k elements.
func prefixSums(v []float64) []float64 {
	p := make([]float64, len(v)+1)
	for i, x := range v {
		p[i+1] = p[i] + x
	}
	return p
}

// Report bundles the per-die leakage metrics for convenience.
type Report struct {
	Die            int
	Correlation    float64 // r_d, Eq. 1
	SpatialEntropy float64 // S_d, Eq. 3
}

// Analyze computes the steady-state metrics for one die.
func Analyze(die int, power, temp *geom.Grid, opts EntropyOptions) Report {
	return Report{
		Die:            die,
		Correlation:    Pearson(power, temp),
		SpatialEntropy: SpatialEntropy(power, opts),
	}
}
