package leakage

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func TestPropertyStabilityBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		m := 5 + rng.Intn(20)
		powers := make([]*geom.Grid, m)
		temps := make([]*geom.Grid, m)
		for k := 0; k < m; k++ {
			p := geom.NewGrid(4, 4)
			tm := geom.NewGrid(4, 4)
			for i := range p.Data {
				p.Data[i] = rng.Float64()
				tm.Data[i] = 300 + rng.Float64()*20
			}
			powers[k], temps[k] = p, tm
		}
		stab := StabilityMap(powers, temps)
		for _, v := range stab.Data {
			if v < -1-1e-9 || v > 1+1e-9 {
				t.Fatalf("stability %v out of [-1,1]", v)
			}
		}
	}
}

func TestPropertyNestedMeansClassesOrderedByPower(t *testing.T) {
	// Class ids are assigned in ascending power order: the mean power of
	// class c must not exceed that of class c+1.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		g := geom.NewGrid(8, 8)
		for i := range g.Data {
			g.Data[i] = rng.Float64() * 10
		}
		classes := NestedMeansClasses(g, EntropyOptions{})
		nC := 0
		for _, c := range classes {
			if c+1 > nC {
				nC = c + 1
			}
		}
		sums := make([]float64, nC)
		counts := make([]float64, nC)
		for i, c := range classes {
			sums[c] += g.Data[i]
			counts[c]++
		}
		prev := math.Inf(-1)
		for c := 0; c < nC; c++ {
			if counts[c] == 0 {
				continue
			}
			mean := sums[c] / counts[c]
			if mean < prev-1e-9 {
				t.Fatalf("class %d mean %v below previous %v", c, mean, prev)
			}
			prev = mean
		}
	}
}

func TestPropertyNestedMeansPartitionComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := geom.NewGrid(10, 10)
	for i := range g.Data {
		g.Data[i] = rng.NormFloat64()
	}
	classes := NestedMeansClasses(g, EntropyOptions{})
	if len(classes) != 100 {
		t.Fatal("every bin must be classified")
	}
	for _, c := range classes {
		if c < 0 {
			t.Fatal("negative class id")
		}
	}
}

func TestPropertySpatialEntropyPermutationSensitive(t *testing.T) {
	// Spatial entropy depends on WHERE values sit, not just their
	// histogram: scrambling a segregated map must change S.
	seg := geom.NewGrid(8, 8)
	for j := 0; j < 8; j++ {
		for i := 0; i < 8; i++ {
			if i < 4 {
				seg.Set(i, j, 1)
			} else {
				seg.Set(i, j, 10)
			}
		}
	}
	sSeg := SpatialEntropy(seg, EntropyOptions{})
	rng := rand.New(rand.NewSource(4))
	scram := seg.Clone()
	rng.Shuffle(len(scram.Data), func(a, b int) {
		scram.Data[a], scram.Data[b] = scram.Data[b], scram.Data[a]
	})
	sScram := SpatialEntropy(scram, EntropyOptions{})
	if math.Abs(sSeg-sScram) < 1e-6 {
		t.Fatalf("scrambling should change spatial entropy: %v vs %v", sSeg, sScram)
	}
	// Classical (non-spatial) Shannon term is permutation-invariant, so
	// the scrambled (interleaved) map must score HIGHER (closer different
	// entities).
	if sScram <= sSeg {
		t.Fatalf("interleaving must raise spatial entropy: %v vs %v", sScram, sSeg)
	}
}

func TestPropertyMaskedPearsonSubsetsFullMap(t *testing.T) {
	// A full mask equals the unmasked Pearson.
	rng := rand.New(rand.NewSource(5))
	p := geom.NewGrid(6, 6)
	tm := geom.NewGrid(6, 6)
	for i := range p.Data {
		p.Data[i] = rng.Float64()
		tm.Data[i] = rng.Float64()
	}
	mask := make([]bool, len(p.Data))
	for i := range mask {
		mask[i] = true
	}
	if math.Abs(MaskedPearson(p, tm, mask)-Pearson(p, tm)) > 1e-12 {
		t.Fatal("full mask must equal unmasked correlation")
	}
}

func TestMaskedPearsonTinyMask(t *testing.T) {
	p := geom.NewGrid(4, 4)
	tm := geom.NewGrid(4, 4)
	mask := make([]bool, 16)
	mask[3] = true
	if MaskedPearson(p, tm, mask) != 0 {
		t.Fatal("single-bin mask must yield 0")
	}
}

func TestPropertySVFScaleInvariant(t *testing.T) {
	// Scaling all thermal maps by a positive constant must not change SVF
	// (distance correlations are scale-covariant).
	rng := rand.New(rand.NewSource(6))
	m := 10
	powers := make([]*geom.Grid, m)
	temps := make([]*geom.Grid, m)
	for k := 0; k < m; k++ {
		p := geom.NewGrid(5, 5)
		tm := geom.NewGrid(5, 5)
		for i := range p.Data {
			p.Data[i] = rng.Float64()
			tm.Data[i] = 300 + 0.5*p.Data[i] + 0.1*rng.Float64()
		}
		powers[k], temps[k] = p, tm
	}
	base := SVF(powers, temps)
	scaled := make([]*geom.Grid, m)
	for k := range temps {
		s := temps[k].Clone()
		s.ScaleBy(7)
		scaled[k] = s
	}
	if math.Abs(SVF(powers, scaled)-base) > 1e-9 {
		t.Fatal("SVF must be scale invariant in the channel")
	}
}
