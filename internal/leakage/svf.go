package leakage

import (
	"math"

	"repro/internal/geom"
)

// SVF computes the side-channel vulnerability factor after Demme et al.
// (ISCA 2012), the metric the paper grounds its correlation measure in
// (Sec. 4.1): the Pearson correlation between the pairwise-similarity
// structure of the victim's execution (here: power maps over activity
// samples) and that of the attacker's observations (thermal maps over the
// same samples).
//
// For each pair of samples (i, j), the "oracle" distance is the Euclidean
// distance between power maps i and j, and the "side channel" distance is
// the Euclidean distance between the corresponding thermal maps; SVF is the
// correlation of the two distance vectors. SVF near 1 means the side
// channel faithfully preserves the structure of the secret activity; near 0
// means the leakage carries no exploitable structure.
func SVF(powers, temps []*geom.Grid) float64 {
	m := len(powers)
	if m < 3 || len(temps) != m {
		return 0
	}
	var dp, dt []float64
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			dp = append(dp, gridDistance(powers[i], powers[j]))
			dt = append(dt, gridDistance(temps[i], temps[j]))
		}
	}
	return pearsonSlices(dp, dt)
}

// gridDistance returns the Euclidean distance between two equally-sized
// grids.
func gridDistance(a, b *geom.Grid) float64 {
	s := 0.0
	for i := range a.Data {
		d := a.Data[i] - b.Data[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// SVFPerDie evaluates SVF separately for each die's sample series.
// powers[d][k] and temps[d][k] index die d, sample k.
func SVFPerDie(powers, temps [][]*geom.Grid) []float64 {
	out := make([]float64, len(powers))
	for d := range powers {
		out[d] = SVF(powers[d], temps[d])
	}
	return out
}
