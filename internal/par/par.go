// Package par provides the small data-parallel fan-out helper shared by the
// thermal solver and the fast estimator: a contiguous index range split
// across a bounded worker pool. Results are required to be independent of
// the partitioning (every callee writes disjoint output cells), which is
// what keeps the parallel solvers byte-identical to their serial runs.
package par

import (
	"runtime"
	"sync"
)

// Workers resolves a requested worker count: values <= 0 select
// runtime.GOMAXPROCS(0), everything else is returned unchanged.
func Workers(requested int) int {
	if requested <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return requested
}

// For splits [0, n) into at most `workers` contiguous chunks and runs fn on
// each chunk concurrently, blocking until all chunks complete. With one
// worker (or a tiny n) fn runs inline on the calling goroutine, so the
// serial path pays no synchronization cost. fn must only write state disjoint
// between chunks.
func For(workers, n int, fn func(lo, hi int)) {
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
