package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersDefaults(t *testing.T) {
	if Workers(0) != runtime.GOMAXPROCS(0) {
		t.Fatal("0 must select GOMAXPROCS")
	}
	if Workers(-3) != runtime.GOMAXPROCS(0) {
		t.Fatal("negative must select GOMAXPROCS")
	}
	if Workers(7) != 7 {
		t.Fatal("positive must pass through")
	}
}

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 100} {
		for _, n := range []int{0, 1, 5, 64, 1000} {
			hits := make([]int32, n)
			For(workers, n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestForChunksAreContiguousAndOrderedWithinChunk(t *testing.T) {
	// Each chunk writes its own lo into its cells; cells must be grouped.
	const n = 97
	owner := make([]int32, n)
	For(4, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.StoreInt32(&owner[i], int32(lo))
		}
	})
	for i := 1; i < n; i++ {
		if owner[i] < owner[i-1] {
			t.Fatalf("chunk starts must be non-decreasing: owner[%d]=%d owner[%d]=%d",
				i-1, owner[i-1], i, owner[i])
		}
	}
}
