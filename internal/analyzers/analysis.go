// Package analyzers is tscfplint's pass suite: static-analysis checks that
// encode this repository's hand-maintained invariants — bit-exact
// determinism in the incremental/anneal packages, journaled mutations with
// exact rollback, tolerance-based float comparison, context-aware
// cancellation, and no silently dropped write errors.
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis
// (Analyzer, Pass, Diagnostic) so the passes read like standard vet
// checkers, but it is self-contained on the standard library: the container
// this repo builds in has no module proxy access, so vendoring x/tools is
// not an option. Packages are loaded by driving `go list -deps -export`
// and type-checking target sources against compiler export data (load.go).
//
// Findings are suppressed site-by-site with an annotation comment carrying
// a mandatory reason, on the flagged line or the line directly above:
//
//	//lint:<key> <reason>
//
// where <key> is analyzer-specific (besteffort, wallclock, rand, maporder,
// floateq, ctx, partialswitch, journal). A bare annotation without a
// reason does not suppress; the finding is re-reported with a hint. See
// docs/ARCHITECTURE.md "Static analysis".
package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one named invariant check over a type-checked
// package. The shape mirrors x/tools go/analysis so passes port in either
// direction without restructuring.
type Analyzer struct {
	Name string // short lower-case identifier, used in output and -run
	Doc  string // one-paragraph description of the invariant
	Run  func(*Pass) error
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags       []Diagnostic
	annotations map[annotKey][]annotation
}

type annotKey struct {
	file string
	line int
}

type annotation struct {
	key    string
	reason string
}

// annotRE matches the suppression comment form. The reason is mandatory;
// an empty one is recorded so the finding can carry a targeted hint.
var annotRE = regexp.MustCompile(`^//\s*lint:([a-z]+)\s*(.*)$`)

// newPass builds a Pass and indexes every //lint: annotation in the
// package by (file, line) so suppression lookups are O(1) per finding.
func newPass(a *Analyzer, pkg *Package) *Pass {
	p := &Pass{
		Analyzer:    a,
		Fset:        pkg.Fset,
		Files:       pkg.Files,
		Pkg:         pkg.Types,
		TypesInfo:   pkg.TypesInfo,
		annotations: make(map[annotKey][]annotation),
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := annotRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				k := annotKey{pos.Filename, pos.Line}
				p.annotations[k] = append(p.annotations[k], annotation{
					key:    m[1],
					reason: strings.TrimSpace(m[2]),
				})
			}
		}
	}
	return p
}

// Reportf records a finding at pos unless a well-formed //lint:<key>
// annotation (with a non-empty reason) covers the position's line or the
// line above it. A reason-less annotation never suppresses: the finding is
// reported with a hint instead, so "annotate it" cannot degrade into a
// contentless mute.
func (p *Pass) Reportf(pos token.Pos, key string, format string, args ...any) {
	position := p.Fset.Position(pos)
	// The invariants gate production code. Tests pin exact values, use
	// wall-clock deadlines, and write to buffers on purpose; when a
	// driver (go vet's unit checker) hands us test variants, findings
	// positioned in test files are dropped so both modes agree.
	if strings.HasSuffix(position.Filename, "_test.go") {
		return
	}
	hint := ""
	for _, line := range []int{position.Line, position.Line - 1} {
		for _, an := range p.annotations[annotKey{position.Filename, line}] {
			if an.key != key {
				continue
			}
			if an.reason != "" {
				return // suppressed
			}
			hint = fmt.Sprintf(" (//lint:%s must carry a reason to suppress)", key)
		}
	}
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...) + hint,
	})
}

// suppressKey returns the standard trailer telling a reader how to
// annotate an intentional site.
func suppressKey(key string) string {
	return fmt.Sprintf("; annotate //lint:%s <reason> if intentional", key)
}

// Run applies every analyzer in as to every package in pkgs and returns
// all findings sorted by file, line, column, then analyzer name — a
// stable order so CI diffs and golden tests are reproducible.
func Run(as []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range as {
			pass := newPass(a, pkg)
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.PkgPath, err)
			}
			out = append(out, pass.diags...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// All returns the full suite in a fixed order.
func All() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer,
		JournalPairAnalyzer,
		FloatCompareAnalyzer,
		CtxFlowAnalyzer,
		ErrSinkAnalyzer,
	}
}

// ---- shared type/AST helpers used by several passes ----

// calleeFunc resolves a call expression to the *types.Func it invokes, or
// nil for builtins, conversions, and calls of function-typed values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isPkgLevelCall reports whether fn is a package-level function (not a
// method) of the package with import path pkgPath.
func isPkgLevelCall(fn *types.Func, pkgPath string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// recvNamed returns the defined type of a method's receiver (through one
// pointer), or nil for package-level functions.
func recvNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// namedPath returns "pkgpath.TypeName" for a defined type, or "".
func namedPath(n *types.Named) string {
	if n == nil || n.Obj() == nil {
		return ""
	}
	if n.Obj().Pkg() == nil { // error type and other universe names
		return n.Obj().Name()
	}
	return n.Obj().Pkg().Path() + "." + n.Obj().Name()
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	return ok && namedPath(n) == "context.Context"
}

// pkgPathMatches reports whether pkgPath equals pat or ends with "/"+pat —
// so "internal/core" matches both "repro/internal/core" and a test
// fixture's "fixture/internal/core".
func pkgPathMatches(pkgPath, pat string) bool {
	return pkgPath == pat || strings.HasSuffix(pkgPath, "/"+pat)
}

func pkgPathMatchesAny(pkgPath string, pats []string) bool {
	for _, pat := range pats {
		if pkgPathMatches(pkgPath, pat) {
			return true
		}
	}
	return false
}

// enclosingFuncName returns the name of the innermost enclosing function
// declaration of pos in file, or "".
func enclosingFuncName(file *ast.File, pos token.Pos) string {
	name := ""
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if fd, ok := n.(*ast.FuncDecl); ok {
			if fd.Pos() <= pos && pos < fd.End() {
				name = fd.Name.Name
			}
			return fd.Pos() <= pos && pos < fd.End()
		}
		return true
	})
	return name
}
