package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// FloatCompareAnalyzer flags exact `==`/`!=` between computed
// floating-point operands. The incremental caches hold a 1e-9 equivalence
// contract against full recomputation precisely because float arithmetic
// drifts at the ulp level (PR 5's subtract/re-add power-map patching
// flipped nested-means entropy classes through exactly this); comparisons
// must go through the blessed tolerance helpers (Equivalent*,
// math.Abs(a-b) <= tol) instead of raw equality.
//
// Deliberately NOT flagged:
//   - comparisons where either side is a compile-time constant — sentinel
//     and default-value checks (x == 0, tol != 1e-9) compare against a
//     value that was assigned exactly, not computed;
//   - self-comparison (x != x), the portable NaN test;
//   - code inside the tolerance/equivalence helpers themselves
//     (function names matching Equivalent/approxEqual/almostEqual);
//   - _test.go files (fixtures pin exact values on purpose).
//
// Suppress intentional exact comparisons with //lint:floateq <reason>.
var FloatCompareAnalyzer = &Analyzer{
	Name: "floatcompare",
	Doc:  "forbid exact ==/!= between computed floating-point values outside tolerance helpers",
	Run:  runFloatCompare,
}

var toleranceHelperRE = regexp.MustCompile(`(?i)(equivalent|approxeq|almosteq|floateq|withintol)`)

func runFloatCompare(pass *Pass) error {
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloatOperand(pass, be.X) || !isFloatOperand(pass, be.Y) {
				return true
			}
			if isConstExpr(pass, be.X) || isConstExpr(pass, be.Y) {
				return true
			}
			if sameIdent(pass, be.X, be.Y) {
				return true // x != x NaN check
			}
			if toleranceHelperRE.MatchString(enclosingFuncName(file, be.Pos())) {
				return true
			}
			pass.Reportf(be.Pos(), "floateq",
				"exact float %s comparison: ulp drift breaks this — use a tolerance helper (math.Abs(a-b) <= tol or Equivalent*)%s",
				be.Op, suppressKey("floateq"))
			return true
		})
	}
	return nil
}

func isFloatOperand(pass *Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isConstExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

// sameIdent reports whether x and y are the same simple identifier
// resolving to the same object — the x != x NaN idiom.
func sameIdent(pass *Pass, x, y ast.Expr) bool {
	xi, ok1 := ast.Unparen(x).(*ast.Ident)
	yi, ok2 := ast.Unparen(y).(*ast.Ident)
	return ok1 && ok2 && pass.TypesInfo.Uses[xi] != nil && pass.TypesInfo.Uses[xi] == pass.TypesInfo.Uses[yi]
}
