package analyzers

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// The test harness mirrors x/tools' analysistest: fixture packages live
// under testdata/src/<analyzer>/..., every line that must produce a
// finding carries a `// want "regex"` comment (several per line allowed),
// and every finding must be claimed by a want on its line. Fixtures are
// copied into a throwaway module and loaded through the production Load —
// the same `go list -export` + type-check path tscfplint uses — so the
// tests also pin the loader end to end.

// wantRE pulls the expectation list off a source line.
var wantRE = regexp.MustCompile(`//\s*want\s+(.+)$`)

// wantStrRE pulls the individual quoted regexes out of the list.
var wantStrRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

type wantKey struct {
	file string // path relative to the fixture root
	line int
}

// runAnalyzerTest loads testdata/src/<root> as a fresh module and checks
// analyzer a's findings against the fixture's want comments.
func runAnalyzerTest(t *testing.T, a *Analyzer, root string) {
	t.Helper()
	fixture := filepath.Join("testdata", "src", root)
	dir := t.TempDir()
	if err := copyFixture(fixture, dir); err != nil {
		t.Fatalf("copy fixture: %v", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module fixture\n\ngo 1.24\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	wants, err := collectWants(fixture)
	if err != nil {
		t.Fatalf("collect wants: %v", err)
	}

	pkgs, err := Load(dir, "./...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("Load returned no packages")
	}
	diags, err := Run([]*Analyzer{a}, pkgs)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	matched := make(map[wantKey][]bool, len(wants))
	for k, res := range wants {
		matched[k] = make([]bool, len(res))
	}
	for _, d := range diags {
		rel, err := filepath.Rel(dir, d.Pos.Filename)
		if err != nil {
			t.Fatalf("diagnostic outside fixture: %v", err)
		}
		k := wantKey{filepath.ToSlash(rel), d.Pos.Line}
		claimed := false
		for i, re := range wants[k] {
			if re.MatchString(d.Message) {
				matched[k][i] = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("%s:%d: unexpected finding: %s", k.file, k.line, d.Message)
		}
	}
	for k, res := range wants {
		for i, re := range res {
			if !matched[k][i] {
				t.Errorf("%s:%d: expected finding matching %q, got none", k.file, k.line, re)
			}
		}
	}
}

func copyFixture(src, dst string) error {
	return filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
}

// collectWants scans the fixture tree for want comments, keyed by path
// relative to the fixture root (the same shape findings are keyed by
// after the copy).
func collectWants(fixture string) (map[wantKey][]*regexp.Regexp, error) {
	wants := make(map[wantKey][]*regexp.Regexp)
	err := filepath.WalkDir(fixture, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		rel, err := filepath.Rel(fixture, path)
		if err != nil {
			return err
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			m := wantRE.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			quoted := wantStrRE.FindAllString(m[1], -1)
			if len(quoted) == 0 {
				return fmt.Errorf("%s:%d: malformed want comment", rel, line)
			}
			for _, q := range quoted {
				s, err := strconv.Unquote(q)
				if err != nil {
					return fmt.Errorf("%s:%d: %v", rel, line, err)
				}
				re, err := regexp.Compile(s)
				if err != nil {
					return fmt.Errorf("%s:%d: %v", rel, line, err)
				}
				k := wantKey{filepath.ToSlash(rel), line}
				wants[k] = append(wants[k], re)
			}
		}
		return sc.Err()
	})
	return wants, err
}

func TestDeterminismAnalyzer(t *testing.T) {
	runAnalyzerTest(t, DeterminismAnalyzer, "determinism")
}

func TestJournalPairAnalyzer(t *testing.T) {
	runAnalyzerTest(t, JournalPairAnalyzer, "journalpair")
}

func TestFloatCompareAnalyzer(t *testing.T) {
	runAnalyzerTest(t, FloatCompareAnalyzer, "floatcompare")
}

func TestCtxFlowAnalyzer(t *testing.T) {
	runAnalyzerTest(t, CtxFlowAnalyzer, "ctxflow")
}

func TestErrSinkAnalyzer(t *testing.T) {
	runAnalyzerTest(t, ErrSinkAnalyzer, "errsink")
}
