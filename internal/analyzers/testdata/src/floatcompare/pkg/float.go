// Package pkg exercises the exact-float-equality check.
package pkg

import "math"

const tol = 1e-9

// Computed-vs-computed equality is the ulp-drift bug class.
func Drifts(a, b float64) bool {
	return a == b // want "exact float == comparison"
}

func DriftsNeq(a, b float64) bool {
	return a != b // want "exact float != comparison"
}

// Sentinel checks compare against a value that was assigned exactly.
func Unset(x float64) bool {
	return x == 0
}

func DefaultTol(t float64) bool {
	return t != 1e-9
}

// Self-comparison is the portable NaN test.
func IsNaN(x float64) bool {
	return x != x
}

// Tolerance helpers are the blessed home of exact logic.
func EquivalentValues(a, b float64) bool {
	return a == b || math.Abs(a-b) <= tol
}

// Annotated intentional identity check of copied values.
func Same(a, b float64) bool {
	//lint:floateq identity check of copied values, not recomputations
	return a == b
}

// Integers are not floats.
func IntEq(a, b int) bool {
	return a == b
}
