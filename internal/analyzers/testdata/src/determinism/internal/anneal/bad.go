// Package anneal is a determinism fixture: its import path ends in
// internal/anneal, so the analyzer treats it as a deterministic package.
package anneal

import (
	"fmt"
	"io"
	"math/rand"
	"slices"
	"sort"
	"time"
)

// Wall-clock reads are findings in a deterministic package.
func Wallclock() float64 {
	started := time.Now()                // want "time\\.Now in deterministic package"
	return time.Since(started).Seconds() // want "time\\.Since in deterministic package"
}

// An annotated timing-stat site is allowlisted.
func Stats() time.Time {
	//lint:wallclock timing stat for reporting only, excluded from golden compares
	return time.Now()
}

// A bare annotation without a reason must not silence the finding.
func Muted() time.Time {
	//lint:wallclock
	return time.Now() // want "must carry a reason"
}

// Global math/rand functions draw from shared unseeded state.
func GlobalRand() int {
	return rand.Intn(10) // want "global rand\\.Intn"
}

// The injected seeded generator is the blessed idiom.
func SeededRand(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// Emitting during map iteration leaks the random order into the output.
func EmitUnsorted(w io.Writer, m map[int]float64) {
	for k, v := range m { // want "range over map feeds an ordered output"
		fmt.Fprintf(w, "%d %g\n", k, v)
	}
}

// Collect, sort, then emit: the correct idiom stays silent.
func EmitSorted(w io.Writer, m map[int]float64) {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%d %g\n", k, m[k])
	}
}

// Appending map keys without ever sorting leaks the order to the caller.
func CollectUnsorted(m map[int]float64) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k) // want "append to keys inside range over map without a later sort"
	}
	return keys
}

// slices.Sort after the loop is the same collect-sort-emit idiom.
func CollectSlicesSorted(m map[int]float64) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// Appending into a struct field is out of the tracker's single-identifier
// scope; the field's consumers sort before emission.
type keyAgg struct {
	keys []int
}

func (a *keyAgg) collect(m map[int]float64) {
	for k := range m {
		a.keys = append(a.keys, k)
	}
}

// Order-insensitive reductions over a map are fine.
func Sum(m map[int]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v
	}
	return sum
}
