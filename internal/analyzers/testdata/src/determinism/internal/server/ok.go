// Package server is the negative fixture: it is not one of the
// deterministic packages, so wall-clock and map-order checks do not apply.
package server

import (
	"fmt"
	"io"
	"time"
)

func Uptime(start time.Time) float64 {
	return time.Since(start).Seconds()
}

func Dump(w io.Writer, m map[string]int) error {
	for k, v := range m {
		if _, err := fmt.Fprintf(w, "%s %d\n", k, v); err != nil {
			return err
		}
	}
	return nil
}
