// Package pkg exercises the discarded-write-error check.
package pkg

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// A bare expression statement drops the error on the floor.
func Dropped(w io.Writer, p []byte) {
	w.Write(p) // want "Write error discarded"
}

// Blanking the error result is the same silent drop.
func BlankAssigned(w io.Writer, p []byte) {
	_, _ = w.Write(p) // want "Write error discarded"
}

// Checking the error is the contract.
func Checked(w io.Writer, p []byte) error {
	_, err := w.Write(p)
	return err
}

func Printed(w io.Writer, v int) {
	fmt.Fprintf(w, "%d\n", v) // want "fmt\\.Fprintf error discarded"
}

// Stderr/stdout prints are accepted best-effort terminal output.
func Logged(v int) {
	fmt.Fprintf(os.Stderr, "%d\n", v)
}

// strings.Builder writes cannot fail.
func Built(v int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d", v)
	return b.String()
}

func Encoded(w io.Writer, v any) {
	json.NewEncoder(w).Encode(v) // want "Encode error discarded"
}

// Close on a written handle loses the buffered tail.
func WriteAll(f *os.File, p []byte) error {
	defer f.Close() // want "Close error discarded on f"
	_, err := f.Write(p)
	return err
}

// Close on a read-only handle has no buffered write to lose.
func ReadAll(f *os.File) ([]byte, error) {
	defer f.Close()
	return io.ReadAll(f)
}

// A single-result error sent to _ is the same drop as a bare statement.
func Synced(f *os.File) {
	_ = f.Sync() // want "Sync error discarded"
}

// Write-then-Close tracking follows selector/index chains to the root.
func WriteIndexed(fs []*os.File, i int, p []byte) error {
	defer fs[i].Close() // want "Close error discarded on fs"
	_, err := fs[i].Write(p)
	return err
}

// Close on a value produced by a call has no trackable root: not flagged.
func CloseFresh(open func() *os.File) {
	open().Close()
}

// Annotated best-effort frame.
func Notify(w io.Writer) {
	//lint:besteffort SSE keep-alive; a dead client surfaces on the next data frame
	w.Write([]byte(": keepalive\n\n"))
}

// A bare annotation must not silence anything.
func Muted(w io.Writer, p []byte) {
	//lint:besteffort
	w.Write(p) // want "must carry a reason"
}
