// Package server is a ctxflow layer fixture: exported unbounded loops
// here must consult their context.
package server

import "context"

// Spin never consults ctx: cancellation cannot stop it.
func Spin(ctx context.Context, ch <-chan int) int {
	total := 0
	for { // want "unbounded for-loop in exported Spin never consults a context"
		v, ok := <-ch
		if !ok {
			return total
		}
		total += v
	}
}

// Serve consults ctx through a select.
func Serve(ctx context.Context, ch <-chan int) int {
	total := 0
	for {
		select {
		case <-ctx.Done():
			return total
		case v := <-ch:
			total += v
		}
	}
}

// Forwarding ctx to a callee counts as consulting.
func Pump(ctx context.Context, ch <-chan int) int {
	total := 0
	for {
		if err := step(ctx); err != nil {
			return total
		}
		total += <-ch
	}
}

func step(ctx context.Context) error { return ctx.Err() }

// Unexported loops are an internal concern, not an exported contract.
func spinInternal(ctx context.Context, ch <-chan int) int {
	for {
		v, ok := <-ch
		if !ok {
			return 0
		}
		_ = v
	}
}

// A received ctx must flow; a fresh root drops cancellation mid-chain.
func Rebase(ctx context.Context) context.Context {
	return context.Background() // want "context\\.Background inside Rebase"
}

// Annotated detached work below an entry point.
func Detach(ctx context.Context) context.Context {
	//lint:ctx deliberate detach: audit writes must outlive the request
	return context.Background()
}
