// Package other is outside the flow/server/anneal layers: the unbounded
// loop gate does not apply, but dropping a received context is flagged
// everywhere.
package other

import "context"

func Wait(ctx context.Context, ch <-chan int) int {
	for {
		v, ok := <-ch
		if !ok {
			return 0
		}
		_ = v
	}
}

func Fresh(ctx context.Context) context.Context {
	return context.TODO() // want "context\\.TODO inside Fresh"
}
