// Package journal exercises the journaled-undo pairing check.
package journal

// rec is a journaled mutation record with no handling of its own.
type rec struct {
	idx int
	old float64
}

// badCache appends records nothing can roll back: the finding.
type badCache struct {
	vals    []float64
	journal []rec // want "journal field badCache\\.journal has no rollback-family handling"
}

func (c *badCache) set(i int, v float64) {
	c.journal = append(c.journal, rec{i, c.vals[i]})
	c.vals[i] = v
}

// goodCache pairs its journal with a Rollback on the container.
type goodCache struct {
	vals    []float64
	journal []rec
}

func (c *goodCache) set(i int, v float64) {
	c.journal = append(c.journal, rec{i, c.vals[i]})
	c.vals[i] = v
}

func (c *goodCache) Rollback() {
	for i := len(c.journal) - 1; i >= 0; i-- {
		c.vals[c.journal[i].idx] = c.journal[i].old
	}
	c.journal = c.journal[:0]
}

// undoRec carries its own Revert: handling on the record type pairs too.
type undoRec struct {
	idx int
	old float64
}

func (r undoRec) Revert(vals []float64) { vals[r.idx] = r.old }

type elemCache struct {
	vals    []float64
	pending []undoRec
}

func (c *elemCache) set(i int, v float64) {
	c.pending = append(c.pending, undoRec{i, c.vals[i]})
	c.vals[i] = v
}

// auditLog is a deliberate fire-and-forget record stream.
type auditLog struct {
	//lint:journal append-only audit trail: replayed on startup, never rolled back
	records []rec
}

func (l *auditLog) add(r rec) { l.records = append(l.records, r) }

// ptrCache journals through pointers: slice-of-pointer records still need
// rollback handling.
type ptrCache struct {
	vals  []float64
	diffs []*rec // want "journal field ptrCache\\.diffs has no rollback-family handling"
}

func (c *ptrCache) set(i int, v float64) {
	c.diffs = append(c.diffs, &rec{i, c.vals[i]})
	c.vals[i] = v
}

// oneShot holds a single in-flight record behind a pointer: same contract.
type oneShot struct {
	vals []float64
	undo *rec // want "journal field oneShot\\.undo has no rollback-family handling"
}

// counters is not a journal: plain value fields named like logs carry no
// records and are ignored.
type counters struct {
	history int
	journal string
	records map[int]rec
}
