package journal

// recKind discriminates journal record kinds.
type recKind int

const (
	kindSet recKind = iota
	kindSwap
	kindReset
	numKinds // sentinel, exempt from exhaustiveness
)

// rollback misses kindReset and has no default: adding a record kind
// without handling it silently corrupts rollback — the finding.
func rollback(k recKind) int {
	switch k { // want "misses kindReset"
	case kindSet:
		return 1
	case kindSwap:
		return 2
	}
	return 0
}

// rollbackAll lists every kind.
func rollbackAll(k recKind) int {
	switch k {
	case kindSet, kindSwap:
		return 1
	case kindReset:
		return 2
	}
	return 0
}

// describe has a default clause, which counts as handling.
func describe(k recKind) string {
	switch k {
	case kindSet:
		return "set"
	default:
		return "other"
	}
}

// peek is a deliberate partial dispatch, annotated.
func peek(k recKind) bool {
	//lint:partialswitch only kindSet carries a payload worth peeking at
	switch k {
	case kindSet:
		return true
	case kindSwap:
		return false
	}
	return false
}
