package analyzers

import (
	"go/ast"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// JournalPairAnalyzer machine-checks the journaled-undo idiom the whole
// incremental stack is built on (core's moveJournal, floorplan.PackDiff,
// timing.STACache's patch journal, anneal's pending bookkeeping):
//
//  1. every journal/record container — a struct holding a field whose name
//     marks it as a journal (journal, pending, undo, log, record(s),
//     history, diff(s), patches) — must come with rollback-family handling
//     (a Rollback/Revert/Undo/Commit/Reset/Settle method on the container
//     or on the record element type). Appending records that nothing can
//     roll back is exactly how an unpaired mutation escapes a rejected
//     move;
//  2. switches over a record-kind enum (a defined integer type named
//     *Op/*Kind/*Tag with a package-level const block) that have no
//     default clause must list every non-sentinel constant — a rollback
//     switch silently skipping a newly added record kind corrupts state
//     without a diagnostic.
//
// Suppress with //lint:journal <reason> (container check) or
// //lint:partialswitch <reason> (exhaustiveness check).
var JournalPairAnalyzer = &Analyzer{
	Name: "journalpair",
	Doc:  "journal/record containers must have rollback-family handling; record-kind switches must be exhaustive",
	Run:  runJournalPair,
}

var journalFieldRE = regexp.MustCompile(`(?i)^(journal|pending|undo(log)?|oplog|records?|history|diffs?|patches)$`)
var rollbackMethodRE = regexp.MustCompile(`(?i)(rollback|revert|undo|commit|reset|settle|drop)`)
var kindEnumRE = regexp.MustCompile(`(?i)(op|kind|tag)$`)
var sentinelConstRE = regexp.MustCompile(`(?i)(^(num|max|invalid|sentinel)|(count|sentinel|end)$)`)

func runJournalPair(pass *Pass) error {
	checkJournalContainers(pass)
	checkKindSwitches(pass)
	return nil
}

// checkJournalContainers scans package-level struct types for journal
// fields and requires rollback-family handling in reach of each one.
func checkJournalContainers(pass *Pass) {
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if !journalFieldRE.MatchString(f.Name()) {
				continue
			}
			// A journal field must be a mutation log: a slice of records,
			// or a (pointer to) record struct. Plain counters/strings named
			// "history" etc. are not journals.
			elem := journalElemType(f.Type())
			if elem == nil {
				continue
			}
			if hasRollbackFamilyMethod(named) || hasRollbackFamilyMethod(elem) {
				continue
			}
			pass.Reportf(f.Pos(), "journal",
				"journal field %s.%s has no rollback-family handling (no Rollback/Revert/Undo/Commit/Reset method on %s or %s)%s",
				name, f.Name(), name, elem.Obj().Name(), suppressKey("journal"))
		}
	}
}

// journalElemType returns the defined record type a journal field holds:
// the element of a slice (through one pointer) or the pointee of a
// pointer-to-struct field. Returns nil for field types that cannot carry
// journal records (ints, strings, maps, funcs).
func journalElemType(t types.Type) *types.Named {
	switch u := t.Underlying().(type) {
	case *types.Slice:
		e := u.Elem()
		if p, ok := e.Underlying().(*types.Pointer); ok {
			e = p.Elem()
		}
		if n, ok := e.(*types.Named); ok {
			if _, isStruct := n.Underlying().(*types.Struct); isStruct {
				return n
			}
		}
	case *types.Pointer:
		if n, ok := u.Elem().(*types.Named); ok {
			if _, isStruct := n.Underlying().(*types.Struct); isStruct {
				return n
			}
		}
	}
	return nil
}

// hasRollbackFamilyMethod reports whether the type (or its pointer) has a
// method whose name marks it as rollback handling. Methods defined in
// other packages count (floorplan.PackDiff's Rollback pairs core's
// packDiffs journal).
func hasRollbackFamilyMethod(n *types.Named) bool {
	if n == nil {
		return false
	}
	ms := types.NewMethodSet(types.NewPointer(n))
	for i := 0; i < ms.Len(); i++ {
		if rollbackMethodRE.MatchString(ms.At(i).Obj().Name()) {
			return true
		}
	}
	return false
}

// checkKindSwitches enforces exhaustiveness of default-less switches over
// record-kind enums defined in this package.
func checkKindSwitches(pass *Pass) {
	enums := map[*types.Named][]*types.Const{}
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() || !kindEnumRE.MatchString(name) {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		b, ok := named.Underlying().(*types.Basic)
		if !ok || b.Info()&types.IsInteger == 0 {
			continue
		}
		var consts []*types.Const
		for _, cn := range scope.Names() {
			c, ok := scope.Lookup(cn).(*types.Const)
			if ok && c.Type() == named && !sentinelConstRE.MatchString(c.Name()) {
				consts = append(consts, c)
			}
		}
		if len(consts) >= 2 {
			enums[named] = consts
		}
	}
	if len(enums) == 0 {
		return
	}

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			tagType := pass.TypesInfo.TypeOf(sw.Tag)
			named, ok := tagType.(*types.Named)
			if !ok {
				return true
			}
			consts, tracked := enums[named]
			if !tracked {
				return true
			}
			covered := map[types.Object]bool{}
			hasDefault := false
			for _, stmt := range sw.Body.List {
				cc := stmt.(*ast.CaseClause)
				if cc.List == nil {
					hasDefault = true
					continue
				}
				for _, e := range cc.List {
					ast.Inspect(e, func(m ast.Node) bool {
						if id, ok := m.(*ast.Ident); ok {
							if c, ok := pass.TypesInfo.Uses[id].(*types.Const); ok {
								covered[c] = true
							}
						}
						return true
					})
				}
			}
			if hasDefault {
				return true
			}
			var missing []string
			for _, c := range consts {
				if !covered[c] {
					missing = append(missing, c.Name())
				}
			}
			if len(missing) > 0 {
				sort.Strings(missing)
				pass.Reportf(sw.Pos(), "partialswitch",
					"switch over %s has no default and misses %s: a record kind added without handling here silently corrupts rollback%s",
					named.Obj().Name(), strings.Join(missing, ", "), suppressKey("partialswitch"))
			}
			return true
		})
	}
}
