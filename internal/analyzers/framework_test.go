package analyzers

import (
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

func TestAllAnalyzersNamedAndDocumented(t *testing.T) {
	suite := All()
	if len(suite) != 5 {
		t.Fatalf("suite has %d analyzers, want 5", len(suite))
	}
	seen := map[string]bool{}
	for _, a := range suite {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v incomplete", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
}

func TestLoadRejectsBadPattern(t *testing.T) {
	if _, err := Load(t.TempDir(), "./..."); err == nil {
		t.Fatal("Load of an empty directory succeeded, want error (no go.mod)")
	}
}

func TestRunStableDiagnosticOrder(t *testing.T) {
	// A synthetic analyzer that reports in scrambled order must come out
	// sorted by position: CI output and golden comparisons rely on it.
	scrambled := &Analyzer{
		Name: "scrambled",
		Doc:  "test analyzer",
		Run: func(p *Pass) error {
			f := p.Files[0]
			p.Reportf(f.End()-1, "nosuchkey", "late")
			p.Reportf(f.Pos(), "nosuchkey", "early")
			return nil
		},
	}
	dir := t.TempDir()
	writeFixtureModule(t, dir, map[string]string{
		"p/p.go": "package p\n\nfunc F() {}\n",
	})
	pkgs, err := Load(dir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run([]*Analyzer{scrambled}, pkgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2", len(diags))
	}
	if diags[0].Message != "early" || diags[1].Message != "late" {
		t.Errorf("diagnostics not position-sorted: %+v", diags)
	}
	for _, d := range diags {
		if d.Analyzer != "scrambled" {
			t.Errorf("diagnostic analyzer = %q, want scrambled", d.Analyzer)
		}
		if !d.Pos.IsValid() {
			t.Errorf("invalid position on %+v", d)
		}
	}
}

func TestReportfDropsTestFilePositions(t *testing.T) {
	fset := token.NewFileSet()
	f := fset.AddFile("x_test.go", -1, 100)
	p := &Pass{
		Analyzer:    &Analyzer{Name: "t"},
		Fset:        fset,
		annotations: map[annotKey][]annotation{},
	}
	p.Reportf(f.Pos(0), "key", "should vanish")
	if len(p.diags) != 0 {
		t.Fatalf("finding in _test.go survived: %+v", p.diags)
	}
}

func TestPkgPathMatching(t *testing.T) {
	if !pkgPathMatches("repro/internal/core", "internal/core") {
		t.Error("suffix match failed")
	}
	if pkgPathMatches("repro/internal/coreutils", "internal/core") {
		t.Error("matched a non-boundary suffix")
	}
	if !pkgPathMatches("tscfp", "tscfp") {
		t.Error("exact match failed")
	}
}

// writeFixtureModule materializes a throwaway module for loader tests.
func writeFixtureModule(t *testing.T, dir string, files map[string]string) {
	t.Helper()
	files["go.mod"] = "module fixture\n\ngo 1.24\n"
	for name, content := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
}
