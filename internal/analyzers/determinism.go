package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DeterministicPackages are the path suffixes of packages whose results
// must be bit-identical for a fixed seed at any worker count — the whole
// incremental/anneal stack pinned by the golden and fuzz suites. Matching
// is by path suffix ("internal/core" matches "repro/internal/core" and a
// fixture module's "fixture/internal/core").
var DeterministicPackages = []string{
	"internal/core",
	"internal/anneal",
	"internal/floorplan",
	"internal/leakage",
	"internal/timing",
	"internal/volt",
	"internal/geom",
	"internal/thermal",
	"internal/par",
}

// DeterminismAnalyzer enforces the reproducibility contract inside the
// deterministic packages:
//
//   - no wall-clock reads (time.Now/Since/Until/Tick/After/NewTicker/
//     NewTimer) outside annotated timing-stat sites (//lint:wallclock);
//   - no math/rand global-state functions — randomness must flow through
//     an injected, seeded *rand.Rand (rand.New(rand.NewSource(seed)) is
//     the blessed constructor pair);
//   - no `range` over a map whose body feeds an ordered sink (writer or
//     encoder calls, or append into an outer slice that is never sorted
//     afterwards) — the iteration-order bug class the golden/fuzz suites
//     only catch after the fact.
var DeterminismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc:  "forbid wall-clock, global rand, and unordered map iteration feeding ordered outputs in the deterministic packages",
	Run:  runDeterminism,
}

// wallClockFuncs are time-package functions whose result depends on when
// the call happens.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Tick": true,
	"After": true, "AfterFunc": true, "NewTicker": true, "NewTimer": true,
}

// seededRandFuncs are the only math/rand package-level functions the
// deterministic packages may call: the constructor pair for an injected
// generator.
var seededRandFuncs = map[string]bool{"New": true, "NewSource": true}

func runDeterminism(pass *Pass) error {
	if !pkgPathMatchesAny(pass.Pkg.Path(), DeterministicPackages) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkDetCall(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, file, n)
			}
			return true
		})
	}
	return nil
}

func checkDetCall(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if isPkgLevelCall(fn, "time") && wallClockFuncs[fn.Name()] {
			pass.Reportf(call.Pos(), "wallclock",
				"time.%s in deterministic package %s: results must not depend on wall clock%s",
				fn.Name(), pass.Pkg.Name(), suppressKey("wallclock"))
		}
	case "math/rand", "math/rand/v2":
		if isPkgLevelCall(fn, fn.Pkg().Path()) && !seededRandFuncs[fn.Name()] {
			pass.Reportf(call.Pos(), "rand",
				"global %s.%s uses shared unseeded state: draw from an injected *rand.Rand instead%s",
				fn.Pkg().Name(), fn.Name(), suppressKey("rand"))
		}
	}
}

// orderedSinkMethods are method names whose call order is observable in an
// ordered output: stream writes, encoders, and hash updates.
var orderedSinkMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true, "Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
}

func checkMapRange(pass *Pass, file *ast.File, rng *ast.RangeStmt) {
	t := pass.TypesInfo.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}

	// Collect order-sensitive sinks in the body. Two classes: direct
	// stream/encoder/print calls (order observable immediately), and
	// appends into a slice declared outside the loop (order observable
	// unless the slice is sorted before use — checked below).
	var directSink ast.Node
	appendTargets := map[types.Object]token.Pos{}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			if _, isBuiltin := pass.TypesInfo.Uses[fun].(*types.Builtin); isBuiltin && fun.Name == "append" {
				if obj := appendTargetObj(pass, call); obj != nil && obj.Pos() < rng.Pos() {
					appendTargets[obj] = call.Pos()
				}
			}
			if fn, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && orderedSinkMethods[fn.Name()] {
				directSink = call
			}
		case *ast.SelectorExpr:
			if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
				name := fn.Name()
				if orderedSinkMethods[name] {
					directSink = call
				}
			}
		}
		return true
	})

	if directSink != nil {
		pass.Reportf(rng.Pos(), "maporder",
			"range over map feeds an ordered output: map iteration order is random — collect keys, sort, then emit%s",
			suppressKey("maporder"))
		return
	}
	if len(appendTargets) == 0 {
		return
	}
	// Appends into outer slices are fine if the function sorts the slice
	// after the loop (the collect-sort-emit idiom). Look for any sort.* /
	// slices.Sort* call after the range whose arguments mention the target.
	fd := enclosingFuncDecl(file, rng.Pos())
	for obj, pos := range appendTargets {
		if fd != nil && sortedAfter(pass, fd, rng.End(), obj) {
			continue
		}
		pass.Reportf(pos, "maporder",
			"append to %s inside range over map without a later sort: element order depends on map iteration%s",
			obj.Name(), suppressKey("maporder"))
	}
}

// appendTargetObj returns the object of x in `x = append(x, ...)` /
// `x := append(x, ...)` when the append call is the RHS of an assignment
// whose LHS is a plain identifier.
func appendTargetObj(pass *Pass, call *ast.CallExpr) types.Object {
	if len(call.Args) == 0 {
		return nil
	}
	if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
		if obj := pass.TypesInfo.Uses[id]; obj != nil {
			return obj
		}
		return pass.TypesInfo.Defs[id]
	}
	return nil
}

// sortedAfter reports whether, lexically after pos inside fd, some call
// into sort or slices mentions obj among its arguments (including inside
// closure arguments, which covers sort.Slice's less function).
func sortedAfter(pass *Pass, fd *ast.FuncDecl, pos token.Pos, obj types.Object) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		fn := calleeFunc(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		pkg := fn.Pkg().Path()
		if pkg != "sort" && !(pkg == "slices" && strings.HasPrefix(fn.Name(), "Sort")) {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

// enclosingFuncDecl returns the innermost FuncDecl containing pos.
func enclosingFuncDecl(file *ast.File, pos token.Pos) *ast.FuncDecl {
	var fd *ast.FuncDecl
	for _, decl := range file.Decls {
		if d, ok := decl.(*ast.FuncDecl); ok && d.Pos() <= pos && pos < d.End() {
			fd = d
		}
	}
	return fd
}
