package analyzers

import (
	"go/ast"
	"go/types"
)

// CtxLoopPackages are the layers whose exported entry points own
// long-running work: the public flow API, the serving daemon, and the
// anneal engines. Unbounded loops there must consult their context or
// cancellation silently stops reaching the inner loops — the property
// PR 1 threaded ctx down to the anneal/thermal sweeps for.
var CtxLoopPackages = []string{
	"tscfp",
	"internal/server",
	"internal/anneal",
	"internal/core",
	"cmd/tscfpd",
}

// CtxFlowAnalyzer enforces the cancellation contract:
//
//  1. in the flow/server/anneal layers, an exported function that receives
//     a context.Context must not contain an unbounded `for {}` loop whose
//     body never consults any context (no ctx.Done()/ctx.Err() select, no
//     call forwarding ctx) — such a loop outlives cancellation;
//  2. everywhere: a function that receives a context.Context must not mint
//     a fresh context.Background()/context.TODO() — that drops the
//     caller's deadline and cancellation on the floor mid-chain. Detached
//     background work below an entry point is the rare legitimate case;
//     annotate it //lint:ctx <reason>.
var CtxFlowAnalyzer = &Analyzer{
	Name: "ctxflow",
	Doc:  "exported unbounded loops must consult ctx; functions receiving a ctx must not mint context.Background",
	Run:  runCtxFlow,
}

func runCtxFlow(pass *Pass) error {
	loopLayer := pkgPathMatchesAny(pass.Pkg.Path(), CtxLoopPackages)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ctxParams := contextParams(pass, fd)
			if len(ctxParams) == 0 {
				continue
			}
			checkBackgroundDrop(pass, fd)
			if loopLayer && fd.Name.IsExported() {
				checkUnboundedLoops(pass, fd, ctxParams)
			}
		}
	}
	return nil
}

// contextParams returns the objects of fd's context.Context parameters.
func contextParams(pass *Pass, fd *ast.FuncDecl) []types.Object {
	var out []types.Object
	for _, field := range fd.Type.Params.List {
		t := pass.TypesInfo.TypeOf(field.Type)
		if t == nil || !isContextType(t) {
			continue
		}
		for _, name := range field.Names {
			if obj := pass.TypesInfo.Defs[name]; obj != nil {
				out = append(out, obj)
			}
		}
	}
	return out
}

// checkBackgroundDrop flags context.Background()/context.TODO() calls in a
// function that already received a context.
func checkBackgroundDrop(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.TypesInfo, call)
		if fn == nil || !isPkgLevelCall(fn, "context") {
			return true
		}
		if fn.Name() == "Background" || fn.Name() == "TODO" {
			pass.Reportf(call.Pos(), "ctx",
				"context.%s inside %s, which already receives a ctx: forward the caller's context or its child — a fresh root drops cancellation and deadlines%s",
				fn.Name(), fd.Name.Name, suppressKey("ctx"))
		}
		return true
	})
}

// checkUnboundedLoops flags `for {}` loops (no condition, no range) whose
// body never references any context-typed value. Referencing ANY context
// counts: a select on ctx.Done(), an explicit ctx.Err() poll, or a call
// that forwards ctx (the callee then owns the check).
func checkUnboundedLoops(pass *Pass, fd *ast.FuncDecl, ctxParams []types.Object) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Cond != nil {
			return true
		}
		consults := false
		ast.Inspect(loop.Body, func(m ast.Node) bool {
			id, ok := m.(*ast.Ident)
			if !ok || consults {
				return !consults
			}
			obj := pass.TypesInfo.Uses[id]
			if obj != nil && isContextType(obj.Type()) {
				consults = true
			}
			return !consults
		})
		if !consults {
			pass.Reportf(loop.Pos(), "ctx",
				"unbounded for-loop in exported %s never consults a context: cancellation cannot stop it — select on ctx.Done() or poll ctx.Err()%s",
				fd.Name.Name, suppressKey("ctx"))
		}
		return true
	})
}
