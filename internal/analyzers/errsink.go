package analyzers

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrSinkAnalyzer flags silently discarded errors from write paths — the
// PR 9 bug class, where tscfpd's writeJSON/SSE handlers dropped
// ResponseWriter and Encoder errors and dead clients looked healthy:
//
//   - a discarded error from a Write/WriteString/WriteByte/WriteRune/
//     ReadFrom/Flush/Sync method (io.Writer, http.ResponseWriter, bufio,
//     SSE frames, ...);
//   - a discarded error from fmt.Fprint/Fprintf/Fprintln, unless the
//     writer is os.Stdout/os.Stderr (best-effort terminal output is the
//     accepted idiom in cmds and examples);
//   - a discarded (*json.Encoder).Encode error;
//   - a discarded Close on a value this function also wrote to — the
//     buffered tail of a file write surfaces at Close, so ignoring it
//     loses data while reporting success. Close on read-only values is
//     not flagged.
//
// "Discarded" covers bare expression statements, defer statements, and
// assignments that send the error to _. Receivers whose writes cannot
// fail (strings.Builder, bytes.Buffer, hash.Hash) are exempt. Genuine
// best-effort sites must say so: //lint:besteffort <reason>.
var ErrSinkAnalyzer = &Analyzer{
	Name: "errsink",
	Doc:  "forbid silently discarded errors from writer/encoder/Close calls on write paths",
	Run:  runErrSink,
}

// writeMethodNames return an error whose loss hides a failed write.
var writeMethodNames = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"WriteTo": true, "ReadFrom": true, "Flush": true, "Sync": true,
}

// infallibleWriterPkgs hold writer types documented to never return a
// write error.
var infallibleWriterPkgs = map[string]bool{
	"strings": true, "bytes": true, "hash": true,
	"crypto/sha256": true, "crypto/sha1": true, "crypto/sha512": true, "crypto/md5": true,
	"hash/fnv": true, "hash/crc32": true, "hash/crc64": true, "hash/maphash": true, "hash/adler32": true,
}

func runErrSink(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFuncErrSinks(pass, fd)
		}
	}
	return nil
}

func checkFuncErrSinks(pass *Pass, fd *ast.FuncDecl) {
	// Pass 1: objects this function writes to (receiver of a write-method
	// call, or writer argument of an Fprint-family call). Close-error
	// discards are only findings for these.
	written := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.TypesInfo, call)
		if fn == nil {
			return true
		}
		switch {
		case writeMethodNames[fn.Name()] && recvNamed(fn) != nil:
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if obj := baseObject(pass, sel.X); obj != nil {
					written[obj] = true
				}
			}
		case isPkgLevelCall(fn, "fmt") && strings.HasPrefix(fn.Name(), "Fprint") && len(call.Args) > 0:
			if obj := baseObject(pass, call.Args[0]); obj != nil {
				written[obj] = true
			}
		case isPkgLevelCall(fn, "io") && (fn.Name() == "Copy" || fn.Name() == "CopyN" || fn.Name() == "WriteString") && len(call.Args) > 0:
			if obj := baseObject(pass, call.Args[0]); obj != nil {
				written[obj] = true
			}
		}
		return true
	})

	// Pass 2: find discard sites.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				checkDiscardedCall(pass, call, written)
			}
		case *ast.DeferStmt:
			checkDiscardedCall(pass, n.Call, written)
		case *ast.GoStmt:
			checkDiscardedCall(pass, n.Call, written)
		case *ast.AssignStmt:
			// x, _ := w.Write(p) or _ = enc.Encode(v): the error result
			// position must not land in _.
			if len(n.Rhs) != 1 {
				return true
			}
			call, ok := n.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			if errResultBlanked(pass, n, call) {
				checkDiscardedCall(pass, call, written)
			}
		}
		return true
	})
}

// errResultBlanked reports whether the assignment sends the call's
// error-typed result(s) to the blank identifier.
func errResultBlanked(pass *Pass, as *ast.AssignStmt, call *ast.CallExpr) bool {
	t := pass.TypesInfo.TypeOf(call)
	if t == nil {
		return false
	}
	results, ok := t.(*types.Tuple)
	if !ok {
		// Single result: blanked iff LHS is _.
		if !isErrorType(t) || len(as.Lhs) != 1 {
			return false
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		return ok && id.Name == "_"
	}
	if results.Len() != len(as.Lhs) {
		return false
	}
	for i := 0; i < results.Len(); i++ {
		if !isErrorType(results.At(i).Type()) {
			continue
		}
		if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
			return true
		}
	}
	return false
}

func isErrorType(t types.Type) bool {
	n, ok := t.(*types.Named)
	return ok && namedPath(n) == "error"
}

// checkDiscardedCall reports a finding if call is an error-returning write
// sink whose error the surrounding statement discards.
func checkDiscardedCall(pass *Pass, call *ast.CallExpr, written map[types.Object]bool) {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil || !returnsError(fn) {
		return
	}
	recv := recvNamed(fn)
	switch {
	case recv != nil && writeMethodNames[fn.Name()]:
		if recvPkg := recv.Obj().Pkg(); recvPkg != nil && infallibleWriterPkgs[recvPkg.Path()] {
			return
		}
		pass.Reportf(call.Pos(), "besteffort",
			"%s error discarded: a failed write is silently reported as success%s",
			fn.Name(), suppressKey("besteffort"))
	case recv != nil && fn.Name() == "Encode":
		pass.Reportf(call.Pos(), "besteffort",
			"Encode error discarded: a failed or half-written encoding is silently reported as success%s",
			suppressKey("besteffort"))
	case recv != nil && fn.Name() == "Close":
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return
		}
		obj := baseObject(pass, sel.X)
		if obj == nil || !written[obj] {
			return
		}
		pass.Reportf(call.Pos(), "besteffort",
			"Close error discarded on %s, which this function wrote to: buffered write failures surface at Close%s",
			obj.Name(), suppressKey("besteffort"))
	case isPkgLevelCall(fn, "fmt") && strings.HasPrefix(fn.Name(), "Fprint"):
		if len(call.Args) > 0 && (isStdStream(pass, call.Args[0]) || isInfallibleWriter(pass, call.Args[0])) {
			return
		}
		pass.Reportf(call.Pos(), "besteffort",
			"fmt.%s error discarded: a failed write is silently reported as success%s",
			fn.Name(), suppressKey("besteffort"))
	}
}

// returnsError reports whether fn's last result is error.
func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	return isErrorType(sig.Results().At(sig.Results().Len() - 1).Type())
}

// baseObject resolves the root identifier of an expression (x, x.f, x[i],
// *x, x.f.g → x's object), the key write-then-Close tracking is keyed by.
func baseObject(pass *Pass, e ast.Expr) types.Object {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return pass.TypesInfo.Uses[v]
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.CallExpr:
			return nil
		default:
			return nil
		}
	}
}

// isInfallibleWriter reports whether e's type (through & and *) is a
// writer documented to never fail (strings.Builder, bytes.Buffer,
// hash.Hash implementations) — Fprintf into those has no loseable error.
func isInfallibleWriter(pass *Pass, e ast.Expr) bool {
	if u, ok := ast.Unparen(e).(*ast.UnaryExpr); ok {
		e = u.X
	}
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return infallibleWriterPkgs[n.Obj().Pkg().Path()]
}

// isStdStream reports whether e is os.Stdout or os.Stderr — best-effort
// terminal output, the accepted discard in cmds and examples.
func isStdStream(pass *Pass, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "os" {
		return false
	}
	return obj.Name() == "Stdout" || obj.Name() == "Stderr"
}
