package analyzers

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one type-checked target: parsed syntax plus resolved types,
// the unit every Analyzer runs over.
type Package struct {
	PkgPath   string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Export     string
	Error      *struct{ Err string }
}

// Load resolves patterns (e.g. "./...") relative to dir into type-checked
// packages ready for analysis.
//
// Strategy: `go list -deps -export -json` emits, for every target and
// every transitive dependency, the path to its compiler export data in the
// build cache. Targets (DepOnly=false) are parsed from source with
// comments; all imports — std and intra-module alike — are satisfied from
// export data via go/importer's gc reader. That keeps the loader entirely
// on the standard library while matching the compiler's view of types, and
// means each target type-checks independently (no in-order re-checking of
// its module-internal deps).
//
// Only GoFiles are analyzed: _test.go files are deliberately out of scope
// (the float-equality and determinism contracts exempt tests, and loading
// test variants would triple the package graph for no finding we gate on).
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Dir,GoFiles,Standard,DepOnly,Export,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exportFiles := make(map[string]string)
	var targets []*listPackage
	dec := json.NewDecoder(&stdout)
	for {
		var lp listPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("parse go list output: %w", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("load %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exportFiles[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly {
			p := lp
			targets = append(targets, &p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	// One importer for the whole run: its package cache is keyed by import
	// path, and every export file comes from the same `go list` build, so
	// sharing it across targets is both correct and fast.
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		ef, ok := exportFiles[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(ef)
	})

	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("parse %s: %w", filepath.Join(t.Dir, name), err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Implicits:  make(map[ast.Node]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Scopes:     make(map[ast.Node]*types.Scope),
			Instances:  make(map[*ast.Ident]types.Instance),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-check %s: %w", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			PkgPath:   t.ImportPath,
			Dir:       t.Dir,
			Fset:      fset,
			Files:     files,
			Types:     tpkg,
			TypesInfo: info,
		})
	}
	return pkgs, nil
}
