package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/tscfp"
)

// testJobBody is a small n100-class submission (tiny grid, short anneal)
// whose flow completes in well under a second.
const testJobBody = `{
	"benchmark": "n100",
	"options": {"mode": "tsc", "seed": 42, "iterations": 100, "grid_n": 12,
	            "activity_samples": 4, "max_dummy_groups": 2}
}`

// testRunOptions mirrors testJobBody for in-process reference runs.
var testRunOptions = tscfp.RunOptions{
	Mode: "tsc", Seed: 42, Iterations: 100, GridN: 12,
	ActivitySamples: 4, MaxDummyGroups: 2,
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		s.Drain(300 * time.Millisecond)
		ts.Close()
	})
	return s, ts
}

func submit(t *testing.T, ts *httptest.Server, body string) (JobStatus, *http.Response) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if resp.StatusCode == http.StatusCreated || resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decode submission response: %v", err)
		}
	}
	return st, resp
}

func getStatus(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode job status: %v", err)
	}
	return st
}

// followSSE consumes a job's event stream until the terminal state event,
// returning every received event in order.
func followSSE(t *testing.T, ts *httptest.Server, id string) []sseEvent {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("SSE status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type = %q", ct)
	}
	var events []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = []byte(strings.TrimPrefix(line, "data: "))
		case line == "":
			if cur.name != "" {
				events = append(events, cur)
				if cur.name == "state" {
					var st JobStatus
					if err := json.Unmarshal(cur.data, &st); err != nil {
						t.Fatalf("bad state event %q: %v", cur.data, err)
					}
					if st.State.Terminal() {
						return events
					}
				}
			}
			cur = sseEvent{}
		}
	}
	t.Fatalf("SSE stream ended without a terminal state event (%d events)", len(events))
	return nil
}

// decodeResult fetches and decodes a completed job's Result.
func decodeResult(t *testing.T, ts *httptest.Server, id string) *tscfp.Result {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result status = %d", resp.StatusCode)
	}
	res, err := tscfp.ReadResult(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestEndToEndSingleJob is the acceptance path: a job submitted over HTTP
// completes with SSE progress events in stage order, its Result matches an
// in-process run with the same seed, a duplicate submission dedupes to the
// same artifact with lineage, and /metrics reflects all of it.
func TestEndToEndSingleJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueCap: 8})

	st, resp := submit(t, ts, testJobBody)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+st.ID {
		t.Fatalf("Location = %q", loc)
	}

	events := followSSE(t, ts, st.ID)
	final := getStatus(t, ts, st.ID)
	if final.State != StateDone {
		t.Fatalf("job state = %s (error %q)", final.State, final.Error)
	}
	if final.ArtifactID == "" || final.Deduped {
		t.Fatalf("first run should produce a fresh artifact, got %+v", final)
	}

	// Progress stages must appear in flow order. The replay coalesces
	// within a stage, never across stages, so first-appearance order is the
	// emission order.
	wantOrder := []tscfp.Stage{
		tscfp.StageAnneal, tscfp.StageFinalize, tscfp.StageSampling,
		tscfp.StagePostProcess, tscfp.StageDone,
	}
	var stages []tscfp.Stage
	seen := map[tscfp.Stage]bool{}
	for _, ev := range events {
		if ev.name != "progress" {
			continue
		}
		var pe tscfp.Event
		if err := json.Unmarshal(ev.data, &pe); err != nil {
			t.Fatalf("bad progress event %q: %v", ev.data, err)
		}
		if !seen[pe.Stage] {
			seen[pe.Stage] = true
			stages = append(stages, pe.Stage)
		}
	}
	if fmt.Sprint(stages) != fmt.Sprint(wantOrder) {
		t.Fatalf("progress stages = %v, want %v", stages, wantOrder)
	}

	// The served Result must match an in-process run bit-for-bit (runtime
	// aside) — same seed, same options, same determinism contract.
	got := decodeResult(t, ts, st.ID)
	opts, err := testRunOptions.Options()
	if err != nil {
		t.Fatal(err)
	}
	want, err := tscfp.Run(context.Background(), tscfp.MustBenchmark("n100"), opts...)
	if err != nil {
		t.Fatal(err)
	}
	got.Metrics.RuntimeSec, want.Metrics.RuntimeSec = 0, 0
	gotJSON, _ := got.JSON()
	wantJSON, _ := want.JSON()
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatalf("served result differs from in-process run (%d vs %d bytes)",
			len(gotJSON), len(wantJSON))
	}

	// Duplicate submission: no run, same artifact, lineage to the producer.
	st2, resp2 := submit(t, ts, testJobBody)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("duplicate submit status = %d", resp2.StatusCode)
	}
	if !st2.Deduped || st2.State != StateDone {
		t.Fatalf("duplicate should dedupe, got %+v", st2)
	}
	if st2.ArtifactID != final.ArtifactID {
		t.Fatalf("dedupe artifact %s != original %s", st2.ArtifactID, final.ArtifactID)
	}
	if st2.LineageJob != final.ID {
		t.Fatalf("dedupe lineage %s != producing job %s", st2.LineageJob, final.ID)
	}
	// The deduped job's SSE stream still serves a terminal state replay.
	dedupeEvents := followSSE(t, ts, st2.ID)
	if len(dedupeEvents) == 0 {
		t.Fatal("deduped job produced no SSE events")
	}

	// A semantically identical submission spelled differently (full mode
	// name, explicit design instead of benchmark) hits the same artifact.
	design, _ := json.Marshal(tscfp.MustBenchmark("n100"))
	alt := fmt.Sprintf(`{"design": %s, "options": {"mode": "tsc-aware", "seed": 42,
		"iterations": 100, "grid_n": 12, "activity_samples": 4, "max_dummy_groups": 2}}`, design)
	st3, resp3 := submit(t, ts, alt)
	if resp3.StatusCode != http.StatusOK || st3.ArtifactID != final.ArtifactID {
		t.Fatalf("inline-design duplicate should hit the same artifact: status %d, %+v",
			resp3.StatusCode, st3)
	}

	metrics := fetch(t, ts, "/metrics")
	for _, want := range []string{
		"tscfpd_jobs_completed_total 1",
		"tscfpd_jobs_deduped_total 2",
		`tscfpd_stage_latency_seconds_count{stage="anneal"} 1`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}
}

// TestSweepJob runs a 2-seed sweep, checks the manifest, and verifies that
// a later single-run submission of one cell dedupes against the artifact
// the sweep stored for that cell.
func TestSweepJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 8})

	body := `{
		"benchmark": "n100",
		"options": {"mode": "tsc", "iterations": 80, "grid_n": 12,
		            "activity_samples": 2, "max_dummy_groups": 1},
		"sweep": {"seeds": [1, 2]}
	}`
	st, resp := submit(t, ts, body)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	events := followSSE(t, ts, st.ID)
	final := getStatus(t, ts, st.ID)
	if final.State != StateDone {
		t.Fatalf("sweep state = %s (error %q)", final.State, final.Error)
	}

	cellEvents := 0
	for _, ev := range events {
		if ev.name == "cell" {
			cellEvents++
		}
	}
	if cellEvents != 2 {
		t.Fatalf("saw %d cell events, want 2", cellEvents)
	}

	resp2, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var manifest sweepManifest
	if err := json.NewDecoder(resp2.Body).Decode(&manifest); err != nil {
		t.Fatal(err)
	}
	if len(manifest.Cells) != 2 {
		t.Fatalf("manifest has %d cells, want 2", len(manifest.Cells))
	}
	for _, c := range manifest.Cells {
		if c.Artifact == "" || c.Error != "" {
			t.Fatalf("bad manifest cell %+v", c)
		}
	}
	if manifest.Cells[0].Artifact == manifest.Cells[1].Artifact {
		t.Fatal("different seeds produced the same artifact ID")
	}

	// Submitting cell 0 (seed 1) as a single run must hit the sweep's
	// stored artifact, with lineage back to the sweep job.
	single := `{
		"benchmark": "n100",
		"options": {"mode": "tsc", "seed": 1, "iterations": 80, "grid_n": 12,
		            "activity_samples": 2, "max_dummy_groups": 1}
	}`
	st2, resp3 := submit(t, ts, single)
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("cell resubmit status = %d, want dedupe hit", resp3.StatusCode)
	}
	if st2.ArtifactID != manifest.Cells[0].Artifact || st2.LineageJob != st.ID {
		t.Fatalf("cell dedupe = %+v, want artifact %s from job %s",
			st2, manifest.Cells[0].Artifact, st.ID)
	}
}

// TestReplicaJob runs a 2-replica speculative job end to end over HTTP: the
// job completes with SSE progress, its Result carries the repl_*/spec_*
// stats and matches an in-process run with the same shape, and the dedupe
// key treats the serial spellings ("replicas": 1 vs omitted) as the same
// submission while keeping the 2-replica artifact distinct.
func TestReplicaJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 8})

	body := `{
		"benchmark": "n100",
		"options": {"mode": "tsc", "seed": 42, "iterations": 100, "grid_n": 12,
		            "activity_samples": 4, "max_dummy_groups": 2,
		            "replicas": 2, "speculation": 2}
	}`
	st, resp := submit(t, ts, body)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	followSSE(t, ts, st.ID)
	final := getStatus(t, ts, st.ID)
	if final.State != StateDone {
		t.Fatalf("replica job state = %s (error %q)", final.State, final.Error)
	}
	got := decodeResult(t, ts, st.ID)
	if got.Stats.ReplicaCount != 2 || got.Stats.SpecWorkers != 2 {
		t.Fatalf("served result missing parallel stats: %+v", got.Stats)
	}

	ro := testRunOptions
	ro.Replicas, ro.Speculation = 2, 2
	opts, err := ro.Options()
	if err != nil {
		t.Fatal(err)
	}
	want, err := tscfp.Run(context.Background(), tscfp.MustBenchmark("n100"), opts...)
	if err != nil {
		t.Fatal(err)
	}
	got.Metrics.RuntimeSec, want.Metrics.RuntimeSec = 0, 0
	gotJSON, _ := got.JSON()
	wantJSON, _ := want.JSON()
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatalf("served replica result differs from in-process run (%d vs %d bytes)",
			len(gotJSON), len(wantJSON))
	}

	// Serial baseline, then the explicit "replicas": 1 spelling: Canonical
	// normalizes 1 to 0, so the spelling must dedupe against the serial
	// artifact — and not against the 2-replica one.
	stSerial, respSerial := submit(t, ts, testJobBody)
	if respSerial.StatusCode != http.StatusCreated {
		t.Fatalf("serial submit status = %d", respSerial.StatusCode)
	}
	followSSE(t, ts, stSerial.ID)
	finalSerial := getStatus(t, ts, stSerial.ID)
	if finalSerial.State != StateDone {
		t.Fatalf("serial job state = %s", finalSerial.State)
	}
	if finalSerial.ArtifactID == final.ArtifactID {
		t.Fatal("serial and 2-replica runs content-addressed identically")
	}
	one := strings.Replace(testJobBody, `"max_dummy_groups": 2`,
		`"max_dummy_groups": 2, "replicas": 1, "speculation": 1`, 1)
	st2, resp2 := submit(t, ts, one)
	if resp2.StatusCode != http.StatusOK || !st2.Deduped {
		t.Fatalf("replicas=1 spelling did not dedupe: status %d, %+v", resp2.StatusCode, st2)
	}
	if st2.ArtifactID != finalSerial.ArtifactID {
		t.Fatalf("replicas=1 deduped to %s, want the serial artifact %s",
			st2.ArtifactID, finalSerial.ArtifactID)
	}
}

// TestCancelRunningJob cancels a long-running job via DELETE and expects a
// prompt cancelled state.
func TestCancelRunningJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 8})

	body := `{"benchmark": "n100", "options": {"iterations": 100000000, "grid_n": 12}}`
	st, _ := submit(t, ts, body)
	waitState(t, ts, st.ID, StateRunning)

	cancelJob(t, ts, st.ID)
	waitState(t, ts, st.ID, StateCancelled)
}

// TestCancelQueuedJob cancels a job that is still waiting behind a blocker
// and expects it to finalize without ever running.
func TestCancelQueuedJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 8})

	blocker, _ := submit(t, ts, `{"benchmark": "n100", "options": {"iterations": 100000000, "grid_n": 12}}`)
	waitState(t, ts, blocker.ID, StateRunning)
	queued, _ := submit(t, ts, testJobBody)

	cancelJob(t, ts, queued.ID)
	st := getStatus(t, ts, queued.ID)
	if st.State != StateCancelled {
		t.Fatalf("queued job state after cancel = %s", st.State)
	}
	if st.Started != nil {
		t.Fatalf("cancelled-while-queued job should never start, got %+v", st)
	}
}

// TestQueueBoundsAndValidation exercises admission control: a full queue
// returns 503 with Retry-After, and malformed submissions return 400/413.
func TestQueueBoundsAndValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 1, MaxBodyBytes: 4096})

	blocker, _ := submit(t, ts, `{"benchmark": "n100", "options": {"iterations": 100000000, "grid_n": 12}}`)
	waitState(t, ts, blocker.ID, StateRunning)
	if _, resp := submit(t, ts, testJobBody); resp.StatusCode != http.StatusCreated {
		t.Fatalf("first queued submit = %d", resp.StatusCode)
	}
	_, resp := submit(t, ts, `{"benchmark": "n100", "options": {"seed": 99}}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-capacity submit = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}

	for name, body := range map[string]string{
		"unknown benchmark":    `{"benchmark": "n9000"}`,
		"no design":            `{"options": {"seed": 1}}`,
		"benchmark and design": `{"benchmark": "n100", "design": {"name": "x"}}`,
		"bad mode":             `{"benchmark": "n100", "options": {"mode": "fast"}}`,
		"bad criterion":        `{"benchmark": "n100", "options": {"post_criterion": "top"}}`,
		"negative iterations":  `{"benchmark": "n100", "options": {"iterations": -1}}`,
		"unknown field":        `{"benchmark": "n100", "bogus": 1}`,
		"truncated":            `{"benchmark": "n1`,
	} {
		if _, resp := submit(t, ts, body); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, resp.StatusCode)
		}
	}

	big := fmt.Sprintf(`{"benchmark": "n100", "options": {"protected_modules": [%s1]}}`,
		strings.Repeat("1,", 4096))
	if _, resp := submit(t, ts, big); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body status = %d, want 413", resp.StatusCode)
	}
}

// TestDrain is the shutdown acceptance path: during drain /readyz flips to
// 503 and admission stops; a long-running job is cancelled within the
// deadline; and after drain no server goroutine survives.
func TestDrain(t *testing.T) {
	before := runtime.NumGoroutine()

	s := New(Config{Workers: 2, QueueCap: 8})
	s.Start()
	ts := httptest.NewServer(s.Handler())

	if body := fetch(t, ts, "/readyz"); !strings.Contains(body, "ready") {
		t.Fatalf("readyz before drain = %q", body)
	}
	st, _ := submit(t, ts, `{"benchmark": "n100", "options": {"iterations": 100000000, "grid_n": 12}}`)
	waitState(t, ts, st.ID, StateRunning)

	start := time.Now()
	s.Drain(250 * time.Millisecond)
	if e := time.Since(start); e > 5*time.Second {
		t.Fatalf("drain took %s, deadline was 250ms", e)
	}

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain = %d, want 503", resp.StatusCode)
	}
	if _, resp := submit(t, ts, testJobBody); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain = %d, want 503", resp.StatusCode)
	}
	if got := getStatus(t, ts, st.ID); got.State != StateCancelled {
		t.Fatalf("in-flight job after drain = %s, want cancelled", got.State)
	}

	ts.Close()
	waitGoroutines(t, before)
}

// cancelJob issues DELETE /v1/jobs/{id}.
func cancelJob(t *testing.T, ts *httptest.Server, id string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status = %d", resp.StatusCode)
	}
}

// waitState polls a job until it reaches want (or any terminal state).
func waitState(t *testing.T, ts *httptest.Server, id string, want State) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := getStatus(t, ts, id)
		if st.State == want {
			return
		}
		if st.State.Terminal() || time.Now().After(deadline) {
			t.Fatalf("job %s state = %s (error %q), want %s", id, st.State, st.Error, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func fetch(t *testing.T, ts *httptest.Server, path string) string {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return buf.String()
}

// waitGoroutines asserts the goroutine count returns to the baseline —
// workers, SSE fanout, and flow goroutines must all exit after drain.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d > baseline %d\n%s",
				runtime.NumGoroutine(), base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
