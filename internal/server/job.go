package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/tscfp"
)

// State is a job's lifecycle phase. Transitions are linear:
// queued -> running -> done|failed|cancelled, except that a queued job
// cancelled before a worker claims it goes straight to cancelled.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// SweepSpec is the optional sweep block of a submission: the cross product
// of its axes runs as one job, one flow per cell, with tscfp.Grid semantics
// (an empty axis contributes a single default element).
type SweepSpec struct {
	Seeds      []int64  `json:"seeds,omitempty"`
	Modes      []string `json:"modes,omitempty"`
	GridNs     []int    `json:"grid_ns,omitempty"`
	Iterations []int    `json:"iterations,omitempty"`
	// Workers bounds the in-job fan-out across cells. The default 1 keeps a
	// sweep job inside the single worker-pool slot it was admitted to;
	// larger values trade pool fairness for per-job latency. Workers does
	// not affect results (tscfp's determinism contract) and is excluded
	// from the submission's content address.
	Workers int `json:"workers,omitempty"`
}

// JobRequest is the POST /v1/jobs submission body. Exactly one of
// Benchmark (a built-in design name) and Design (an inline netlist in the
// tscfp JSON schema) must be set.
type JobRequest struct {
	Benchmark string           `json:"benchmark,omitempty"`
	Design    *tscfp.Design    `json:"design,omitempty"`
	Options   tscfp.RunOptions `json:"options"`
	// Priority orders the queue: higher runs first, ties FIFO. Default 0.
	Priority int        `json:"priority,omitempty"`
	Sweep    *SweepSpec `json:"sweep,omitempty"`
}

// normalize resolves the request's design, canonicalizes option spellings
// in place, and fail-fasts option validation through NewFlow, so a bad
// submission is a 400 at admission instead of a failed job later.
func (r *JobRequest) normalize() (*tscfp.Design, error) {
	if r.Benchmark != "" && r.Design != nil {
		return nil, errors.New("benchmark and design are mutually exclusive")
	}
	design := r.Design
	if r.Benchmark != "" {
		d, err := tscfp.Benchmark(r.Benchmark)
		if err != nil {
			return nil, err
		}
		design = d
	}
	if design == nil {
		return nil, errors.New("job needs a benchmark name or an inline design")
	}
	opts, err := r.Options.Canonical()
	if err != nil {
		return nil, err
	}
	r.Options = opts
	if r.Sweep != nil {
		for i, ms := range r.Sweep.Modes {
			m, err := tscfp.ParseMode(ms)
			if err != nil {
				return nil, err
			}
			r.Sweep.Modes[i] = string(m)
		}
		if r.Sweep.Workers < 0 {
			return nil, fmt.Errorf("negative sweep workers %d", r.Sweep.Workers)
		}
	}
	flowOpts, err := r.Options.Options()
	if err != nil {
		return nil, err
	}
	if _, err := tscfp.NewFlow(design, flowOpts...); err != nil {
		return nil, err
	}
	return design, nil
}

// contentKey derives the content address of a submission: the SHA-256 of
// the canonical JSON of (design netlist, canonical options, sweep axes).
// A benchmark-by-name submission and the equivalent inline design hash
// identically because the design is serialized after synthesis either way;
// knobs that cannot change the result (sweep worker count) are excluded.
func contentKey(design *tscfp.Design, opts tscfp.RunOptions, sweep *SweepSpec) (string, error) {
	if sweep != nil {
		s := *sweep
		s.Workers = 0
		sweep = &s
	}
	payload := struct {
		Design  *tscfp.Design    `json:"design"`
		Options tscfp.RunOptions `json:"options"`
		Sweep   *SweepSpec       `json:"sweep,omitempty"`
	}{design, opts, sweep}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(&payload); err != nil {
		return "", err
	}
	sum := sha256.Sum256(buf.Bytes())
	return "sha256:" + hex.EncodeToString(sum[:]), nil
}

// job is one submission moving through the queue and worker pool. The
// fields above mu are set before the job becomes visible to any other
// goroutine and immutable after; everything below is guarded by mu.
type job struct {
	id       string
	seq      uint64
	priority int
	req      JobRequest
	design   *tscfp.Design
	key      string
	events   *broadcaster
	ctx      context.Context
	cancel   context.CancelFunc

	mu        sync.Mutex
	state     State
	submitted time.Time
	started   time.Time
	finished  time.Time
	artifact  string
	deduped   bool
	lineage   string
	errMsg    string
}

// JobStatus is the wire shape of a job in the REST API.
type JobStatus struct {
	ID        string `json:"id"`
	State     State  `json:"state"`
	Priority  int    `json:"priority"`
	Design    string `json:"design"`
	Benchmark string `json:"benchmark,omitempty"`
	Sweep     bool   `json:"sweep,omitempty"`

	Submitted time.Time  `json:"submitted"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`

	// ArtifactID is the content address of the result once done. Deduped
	// marks a submission served from the store without running; LineageJob
	// then names the job that originally produced the artifact.
	ArtifactID string `json:"artifact_id,omitempty"`
	Deduped    bool   `json:"deduped,omitempty"`
	LineageJob string `json:"lineage_job,omitempty"`
	Error      string `json:"error,omitempty"`
}

// status snapshots the job for the wire.
func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:         j.id,
		State:      j.state,
		Priority:   j.priority,
		Design:     j.design.Name(),
		Benchmark:  j.req.Benchmark,
		Sweep:      j.req.Sweep != nil,
		Submitted:  j.submitted,
		ArtifactID: j.artifact,
		Deduped:    j.deduped,
		LineageJob: j.lineage,
		Error:      j.errMsg,
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	return st
}
