package server

import (
	"encoding/json"
	"sync"
)

// sseEvent is one server-sent event: an event name and a JSON payload.
type sseEvent struct {
	name string
	data []byte
}

// broadcaster fans one job's event stream out to any number of SSE
// subscribers.
//
// Live subscribers receive events as they happen; delivery of progress
// events is lossy under backpressure (a subscriber whose buffer is full
// skips updates rather than stalling the flow), which is safe because
// every event carries absolute Done/Total state, not deltas, and the
// handler always delivers the terminal job state after the stream closes.
//
// Late subscribers get a replay that preserves stage order without storing
// the full history: per coalescing key (one per flow stage, one per sweep
// cell, one for job state) only the latest event is kept, in first-seen
// order. An anneal with thousands of chain updates replays as one event.
type broadcaster struct {
	mu     sync.Mutex
	subs   map[chan sseEvent]struct{}
	replay []sseEvent
	index  map[string]int // coalescing key -> position in replay
	closed bool
}

func newBroadcaster() *broadcaster {
	return &broadcaster{
		subs:  make(map[chan sseEvent]struct{}),
		index: make(map[string]int),
	}
}

// publish marshals v and delivers it to live subscribers, coalescing into
// the replay under key. Publishing after close is a no-op.
func (b *broadcaster) publish(name, key string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	ev := sseEvent{name: name, data: data}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	if i, ok := b.index[key]; ok {
		b.replay[i] = ev
	} else {
		b.index[key] = len(b.replay)
		b.replay = append(b.replay, ev)
	}
	for ch := range b.subs {
		select {
		case ch <- ev:
		default: // lossy under backpressure; see type comment
		}
	}
}

// subscribe returns the coalesced replay and, while the stream is open, a
// live channel (nil once closed). The caller must unsubscribe the channel.
// The job-state event is reordered to the end of the replay: clients that
// disconnect at a terminal state must see the progress replay first.
func (b *broadcaster) subscribe() ([]sseEvent, chan sseEvent) {
	b.mu.Lock()
	defer b.mu.Unlock()
	hist := make([]sseEvent, 0, len(b.replay))
	var states []sseEvent
	for _, ev := range b.replay {
		if ev.name == "state" {
			states = append(states, ev)
		} else {
			hist = append(hist, ev)
		}
	}
	hist = append(hist, states...)
	if b.closed {
		return hist, nil
	}
	ch := make(chan sseEvent, 64)
	b.subs[ch] = struct{}{}
	return hist, ch
}

// unsubscribe detaches a live channel. Safe after close.
func (b *broadcaster) unsubscribe(ch chan sseEvent) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.subs, ch)
}

// close ends the stream: live channels are closed (the handler then emits
// the terminal state itself) and future subscribers get replay only.
func (b *broadcaster) close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for ch := range b.subs {
		close(ch)
		delete(b.subs, ch)
	}
}
