package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/registry"
	"repro/tscfp"
)

// newRegistryServer builds a server over a disk-backed registry rooted at
// dir, plus its HTTP front end. The caller drains and closes via the
// returned shutdown func (explicit, not t.Cleanup, because restart tests
// need to stop the first instance mid-test).
func newRegistryServer(t *testing.T, dir string, cfg Config) (*Server, *httptest.Server, func()) {
	t.Helper()
	reg, err := registry.Open(registry.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Store = reg
	s := New(cfg)
	s.Start()
	ts := httptest.NewServer(s.Handler())
	var once bool
	return s, ts, func() {
		if once {
			return
		}
		once = true
		s.Drain(300 * time.Millisecond)
		ts.Close()
	}
}

func fetchArtifact(t *testing.T, ts *httptest.Server, id string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/artifacts/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("artifact %s status = %d", id, resp.StatusCode)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRestartDurability is the restart acceptance path: a job submitted and
// completed before shutdown is served from disk by a fresh daemon on the
// same data dir — byte-identical payload, deduped:true with the original
// job's lineage, and no recompute (the second instance never runs a flow).
func TestRestartDurability(t *testing.T) {
	dir := t.TempDir()

	_, ts1, stop1 := newRegistryServer(t, dir, Config{Workers: 1, QueueCap: 8})
	st, resp := submit(t, ts1, testJobBody)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	followSSE(t, ts1, st.ID)
	final := getStatus(t, ts1, st.ID)
	if final.State != StateDone || final.Deduped {
		t.Fatalf("producing job = %+v", final)
	}
	payload := fetchArtifact(t, ts1, final.ArtifactID)
	stop1() // graceful drain + listener close: the "SIGTERM" half

	_, ts2, stop2 := newRegistryServer(t, dir, Config{Workers: 1, QueueCap: 8})
	defer stop2()
	st2, resp2 := submit(t, ts2, testJobBody)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-restart submit status = %d, want 200 dedupe", resp2.StatusCode)
	}
	if !st2.Deduped || st2.State != StateDone {
		t.Fatalf("post-restart submission did not dedupe: %+v", st2)
	}
	if st2.ArtifactID != final.ArtifactID {
		t.Fatalf("artifact %s != pre-restart %s", st2.ArtifactID, final.ArtifactID)
	}
	if st2.LineageJob != final.ID {
		t.Fatalf("lineage %s != original producing job %s", st2.LineageJob, final.ID)
	}
	// The restarted daemon must not reuse the producer's job ID for the new
	// record — lineage would then point at the deduped job itself.
	if st2.ID == final.ID {
		t.Fatalf("restarted daemon reused job ID %s", st2.ID)
	}
	if got := fetchArtifact(t, ts2, st2.ArtifactID); !bytes.Equal(got, payload) {
		t.Fatalf("post-restart payload differs: %d vs %d bytes", len(got), len(payload))
	}
	// No recompute: the second instance completed zero runs, and the store
	// rescan shows up in /metrics.
	metrics := fetch(t, ts2, "/metrics")
	for _, want := range []string{
		"tscfpd_jobs_completed_total 0",
		"tscfpd_jobs_deduped_total 1",
		"tscfpd_store_rescanned_total 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}
}

// TestRestartCorruptionQuarantine: artifacts corrupted between runs
// (truncated payload, flipped bytes) are quarantined at startup — counted
// in /metrics, moved out of the data dir — and the daemon recomputes the
// job instead of serving garbage.
func TestRestartCorruptionQuarantine(t *testing.T) {
	dir := t.TempDir()

	_, ts1, stop1 := newRegistryServer(t, dir, Config{Workers: 1, QueueCap: 8})
	st, _ := submit(t, ts1, testJobBody)
	followSSE(t, ts1, st.ID)
	final := getStatus(t, ts1, st.ID)
	if final.State != StateDone {
		t.Fatalf("producing job = %+v", final)
	}
	payload := fetchArtifact(t, ts1, final.ArtifactID)
	stop1()

	// Corrupt the stored payload on disk: truncate it. (A second, fake
	// artifact with flipped bytes exercises the hash-mismatch path.)
	stem := strings.TrimPrefix(final.ArtifactID, "sha256:")
	if err := os.Truncate(filepath.Join(dir, "artifacts", stem), 3); err != nil {
		t.Fatal(err)
	}
	fakeStem := strings.Repeat("a", 64)
	if err := os.WriteFile(filepath.Join(dir, "artifacts", fakeStem), []byte("no sidecar"), 0o644); err != nil {
		t.Fatal(err)
	}

	_, ts2, stop2 := newRegistryServer(t, dir, Config{Workers: 1, QueueCap: 8})
	defer stop2()
	metrics := fetch(t, ts2, "/metrics")
	if !strings.Contains(metrics, "tscfpd_store_quarantined_total 2") {
		t.Fatalf("metrics missing quarantine count:\n%s", metrics)
	}
	// The submission no longer dedupes (the artifact is gone) — it runs
	// fresh and produces the same bytes, proving the server still serves.
	st2, resp2 := submit(t, ts2, testJobBody)
	if resp2.StatusCode != http.StatusCreated {
		t.Fatalf("submit after quarantine = %d, want a fresh 201 run", resp2.StatusCode)
	}
	followSSE(t, ts2, st2.ID)
	final2 := getStatus(t, ts2, st2.ID)
	if final2.State != StateDone || final2.Deduped {
		t.Fatalf("recompute job = %+v", final2)
	}
	got := fetchArtifact(t, ts2, final2.ArtifactID)
	// The recompute reproduces the pre-corruption result bit-for-bit
	// (runtime aside) — same seed, same determinism contract.
	gotRes, err := tscfp.ReadResult(bytes.NewReader(got))
	if err != nil {
		t.Fatal(err)
	}
	wantRes, err := tscfp.ReadResult(bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	gotRes.Metrics.RuntimeSec, wantRes.Metrics.RuntimeSec = 0, 0
	gotJSON, _ := gotRes.JSON()
	wantJSON, _ := wantRes.JSON()
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatalf("recomputed result differs from pre-corruption original (%d vs %d bytes)",
			len(gotJSON), len(wantJSON))
	}
}

// TestJobTableGC bounds the job table: with MaxJobs set, terminal records
// are pruned oldest-first while queued/running jobs survive, and the GC
// shows up in /metrics.
func TestJobTableGC(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueCap: 8, MaxJobs: 3})

	st, resp := submit(t, ts, testJobBody)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	followSSE(t, ts, st.ID)

	// Seven dedupe submissions: each creates a terminal-at-birth record, so
	// the table repeatedly exceeds MaxJobs=3 and prunes oldest-first.
	var last JobStatus
	for i := 0; i < 7; i++ {
		last, resp = submit(t, ts, testJobBody)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("dedupe submit %d = %d", i, resp.StatusCode)
		}
	}
	var list struct {
		Jobs  []JobStatus `json:"jobs"`
		Total int         `json:"total"`
	}
	if err := json.Unmarshal([]byte(fetch(t, ts, "/v1/jobs")), &list); err != nil {
		t.Fatal(err)
	}
	if list.Total > 3 {
		t.Fatalf("job table holds %d records, bound is 3", list.Total)
	}
	// The newest record survived, the producer was GC'd.
	found := false
	for _, j := range list.Jobs {
		if j.ID == last.ID {
			found = true
		}
		if j.ID == st.ID {
			t.Fatalf("oldest terminal job %s survived GC", st.ID)
		}
	}
	if !found {
		t.Fatalf("newest job %s missing from list %+v", last.ID, list.Jobs)
	}
	resp2, err := http.Get(ts.URL + "/v1/jobs/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("GC'd job status = %d, want 404", resp2.StatusCode)
	}
	if m := fetch(t, ts, "/metrics"); !strings.Contains(m, "tscfpd_jobs_gced_total 5") {
		t.Fatalf("metrics missing GC count:\n%s", m)
	}
}

// TestListPagination covers ?limit=/?offset= on GET /v1/jobs: stable
// slicing over the filtered set, total reporting the pre-pagination count,
// and 400s on malformed values.
func TestListPagination(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 8})

	st, _ := submit(t, ts, testJobBody)
	followSSE(t, ts, st.ID)
	ids := []string{st.ID}
	for i := 0; i < 4; i++ {
		d, resp := submit(t, ts, testJobBody)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("dedupe submit = %d", resp.StatusCode)
		}
		ids = append(ids, d.ID)
	}

	page := func(query string) (got []string, total int) {
		t.Helper()
		var list struct {
			Jobs  []JobStatus `json:"jobs"`
			Total int         `json:"total"`
		}
		if err := json.Unmarshal([]byte(fetch(t, ts, "/v1/jobs"+query)), &list); err != nil {
			t.Fatal(err)
		}
		for _, j := range list.Jobs {
			got = append(got, j.ID)
		}
		return got, list.Total
	}

	if got, total := page(""); len(got) != 5 || total != 5 {
		t.Fatalf("unpaginated list = %v total %d", got, total)
	}
	if got, total := page("?limit=2"); fmt.Sprint(got) != fmt.Sprint(ids[:2]) || total != 5 {
		t.Fatalf("limit=2 = %v total %d, want %v", got, total, ids[:2])
	}
	if got, _ := page("?offset=3"); fmt.Sprint(got) != fmt.Sprint(ids[3:]) {
		t.Fatalf("offset=3 = %v, want %v", got, ids[3:])
	}
	if got, _ := page("?offset=1&limit=2"); fmt.Sprint(got) != fmt.Sprint(ids[1:3]) {
		t.Fatalf("offset=1&limit=2 = %v, want %v", got, ids[1:3])
	}
	if got, total := page("?offset=99"); len(got) != 0 || total != 5 {
		t.Fatalf("past-the-end offset = %v total %d", got, total)
	}
	if got, _ := page("?limit=0"); len(got) != 0 {
		t.Fatalf("limit=0 = %v, want empty page", got)
	}
	for _, q := range []string{"?limit=-1", "?limit=x", "?offset=-2", "?offset=1.5"} {
		resp, err := http.Get(ts.URL + "/v1/jobs" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s status = %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestSSEKeepAlive: an idle event stream (a queued job stuck behind a
// blocker emits nothing) carries ": keepalive" comment frames so proxies
// do not sever it, and the stream still delivers the real terminal event.
func TestSSEKeepAlive(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 8, SSEKeepAlive: 20 * time.Millisecond})

	blocker, _ := submit(t, ts, `{"benchmark": "n100", "options": {"iterations": 100000000, "grid_n": 12}}`)
	waitState(t, ts, blocker.ID, StateRunning)
	queued, _ := submit(t, ts, testJobBody)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + queued.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	type lineOrErr struct {
		line string
		err  error
	}
	lines := make(chan lineOrErr)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			lines <- lineOrErr{line: sc.Text()}
		}
		lines <- lineOrErr{err: errors.New("stream ended")}
	}()

	keepalives := 0
	deadline := time.After(5 * time.Second)
	for keepalives < 3 {
		select {
		case l := <-lines:
			if l.err != nil {
				t.Fatalf("stream ended after %d keepalives", keepalives)
			}
			if strings.HasPrefix(l.line, ": keepalive") {
				keepalives++
			} else if strings.HasPrefix(l.line, "event: ") && keepalives == 0 {
				// The queued job has no events yet; nothing should precede
				// the keepalives except blank separators.
				t.Fatalf("unexpected event on idle stream: %q", l.line)
			}
		case <-deadline:
			t.Fatalf("saw only %d keepalive frames on an idle stream", keepalives)
		}
	}

	// Cancel both; the idle stream must still deliver a terminal state.
	cancelJob(t, ts, queued.ID)
	cancelJob(t, ts, blocker.ID)
	sawState := false
	deadline = time.After(5 * time.Second)
	for !sawState {
		select {
		case l := <-lines:
			if l.err != nil {
				t.Fatal("stream ended without a state event")
			}
			if l.line == "event: state" {
				sawState = true
			}
		case <-deadline:
			t.Fatal("no terminal state event after cancel")
		}
	}
}

// TestSweepCellHitCounting pins the dedupe-undercount fix: cells a sweep
// serves from the store count as artifact hits and sweep-cell dedupe
// metrics, exactly like single-run dedupe hits.
func TestSweepCellHitCounting(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueCap: 8})

	body := `{
		"benchmark": "n100",
		"options": {"mode": "tsc", "iterations": 80, "grid_n": 12,
		            "activity_samples": 2, "max_dummy_groups": 1},
		"sweep": {"seeds": [1, 2]}
	}`
	st, resp := submit(t, ts, body)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("sweep submit = %d", resp.StatusCode)
	}
	followSSE(t, ts, st.ID)
	if final := getStatus(t, ts, st.ID); final.State != StateDone {
		t.Fatalf("sweep = %+v", final)
	}

	// A second identical sweep dedupes at admission (whole-job hit); a
	// sweep over a superset of seeds re-serves the two cached cells from
	// the store and must count both.
	super := strings.Replace(body, `"seeds": [1, 2]`, `"seeds": [1, 2, 3]`, 1)
	st2, resp2 := submit(t, ts, super)
	if resp2.StatusCode != http.StatusCreated {
		t.Fatalf("superset sweep submit = %d", resp2.StatusCode)
	}
	followSSE(t, ts, st2.ID)
	if final := getStatus(t, ts, st2.ID); final.State != StateDone {
		t.Fatalf("superset sweep = %+v", final)
	}

	var manifest sweepManifest
	respM, err := http.Get(ts.URL + "/v1/jobs/" + st2.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer respM.Body.Close()
	if err := json.NewDecoder(respM.Body).Decode(&manifest); err != nil {
		t.Fatal(err)
	}
	deduped := 0
	for _, c := range manifest.Cells {
		if c.Deduped {
			deduped++
			a, ok := s.store.Lookup(c.Artifact)
			if !ok {
				t.Fatalf("deduped cell artifact %s missing", c.Artifact)
			}
			if a.Hits == 0 {
				t.Fatalf("sweep-served cell %s has zero hits — the undercount bug", c.Artifact)
			}
			if a.JobID != st.ID {
				t.Fatalf("cell lineage %s, want first sweep %s", a.JobID, st.ID)
			}
		}
	}
	if deduped != 2 {
		t.Fatalf("superset sweep deduped %d cells, want 2", deduped)
	}
	if m := fetch(t, ts, "/metrics"); !strings.Contains(m, "tscfpd_sweep_cells_deduped_total 2") {
		t.Fatalf("metrics missing sweep-cell dedupe count:\n%s", m)
	}
}

// errWriter fails every write, standing in for a client that hung up.
type errWriter struct {
	header http.Header
	code   int
}

func (w *errWriter) Header() http.Header {
	if w.header == nil {
		w.header = make(http.Header)
	}
	return w.header
}
func (w *errWriter) WriteHeader(code int)      { w.code = code }
func (w *errWriter) Write([]byte) (int, error) { return 0, errors.New("client gone") }

// TestWriteJSONErrorCounted: a failed response write is detected and
// counted instead of silently dropped.
func TestWriteJSONErrorCounted(t *testing.T) {
	s := New(Config{Workers: 1})
	s.writeJSON(&errWriter{}, http.StatusOK, map[string]int{"x": 1})
	s.metrics.mu.Lock()
	n := s.metrics.writeErrors
	s.metrics.mu.Unlock()
	if n != 1 {
		t.Fatalf("writeErrors = %d, want 1", n)
	}
}
