package server

import (
	"sync"
	"time"
)

// Artifact is one stored result: the JSON payload of a completed run (or a
// sweep manifest) addressed by the content hash of the submission that
// produced it, with lineage back to that job.
type Artifact struct {
	ID      string    `json:"id"`
	JobID   string    `json:"job_id"`
	Created time.Time `json:"created"`
	Bytes   int       `json:"bytes"`
	// Hits counts submissions served from this artifact without running
	// (dedupe), not including the producing run itself.
	Hits int `json:"hits"`

	data []byte
}

// store is the in-memory content-addressed result registry. It generalizes
// the bench_results/ on-disk convention: every completed Result is an
// addressable artifact whose ID is the hash of its inputs, so identical
// submissions collapse onto one computation and every artifact traces back
// to the job that produced it. The store is rebuildable state — losing it
// costs recomputation, never correctness — which keeps the daemon safe to
// run as a stateless replicated Deployment.
type store struct {
	mu        sync.Mutex
	artifacts map[string]*Artifact
}

func newStore() *store {
	return &store{artifacts: make(map[string]*Artifact)}
}

// put records data under id. The first writer wins: a concurrent duplicate
// run keeps the original producer's lineage, and the second return reports
// whether the artifact already existed.
func (s *store) put(id string, data []byte, jobID string) (*Artifact, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if a, ok := s.artifacts[id]; ok {
		return a, true
	}
	a := &Artifact{
		ID:      id,
		JobID:   jobID,
		Created: time.Now(),
		Bytes:   len(data),
		data:    data,
	}
	s.artifacts[id] = a
	return a, false
}

// hit returns the artifact for id and counts a dedupe hit, or nil.
func (s *store) hit(id string) *Artifact {
	s.mu.Lock()
	defer s.mu.Unlock()
	a := s.artifacts[id]
	if a != nil {
		a.Hits++
	}
	return a
}

// lookup returns the artifact for id without counting a hit, or nil.
func (s *store) lookup(id string) *Artifact {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.artifacts[id]
}

// get returns the payload for id.
func (s *store) get(id string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	a, ok := s.artifacts[id]
	if !ok {
		return nil, false
	}
	return a.data, true
}

// size reports the artifact count.
func (s *store) size() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.artifacts)
}
