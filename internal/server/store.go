package server

import (
	"sync"
	"time"

	"repro/internal/registry"
)

// Store is the content-addressed artifact registry behind the daemon: every
// completed Result is an addressable artifact whose ID is the hash of its
// inputs, so identical submissions collapse onto one computation and every
// artifact traces back to the job that produced it.
//
// Two implementations exist: registry.Registry (disk-backed, durable across
// restarts, memory- and disk-bounded — the production shape, selected with
// -data-dir) and the in-process memStore below (ephemeral, for zero-config
// runs and tests). Either way the store is rebuildable state — losing it
// costs recomputation, never correctness — which keeps the daemon safe to
// run as a stateless replicated Deployment.
type Store interface {
	// Put records data under id with lineage to the producing job. The
	// first writer wins: a concurrent duplicate run keeps the original
	// producer's lineage, and the bool reports whether the artifact already
	// existed. An error means the payload could not be stored.
	Put(id string, data []byte, jobID string, jobSeq uint64) (registry.Artifact, bool, error)
	// Hit returns the artifact for id and counts a dedupe hit.
	Hit(id string) (registry.Artifact, bool)
	// Lookup returns the artifact for id without counting a hit.
	Lookup(id string) (registry.Artifact, bool)
	// Get returns the payload for id.
	Get(id string) ([]byte, bool)
	// Len reports the artifact count.
	Len() int
	// Stats snapshots the store's observability counters.
	Stats() registry.Stats
	// LastJobSeq reports the highest producing-job sequence on record, so a
	// restarted daemon allocates job IDs above every ID in stored lineage.
	LastJobSeq() uint64
}

// memStore is the ephemeral in-memory Store used when no data directory is
// configured. It is unbounded by design — bounded, durable serving is what
// registry.Registry is for.
type memStore struct {
	mu        sync.Mutex
	artifacts map[string]*registry.Artifact
	data      map[string][]byte
	bytes     int64
}

func newMemStore() *memStore {
	return &memStore{
		artifacts: make(map[string]*registry.Artifact),
		data:      make(map[string][]byte),
	}
}

func (s *memStore) Put(id string, data []byte, jobID string, jobSeq uint64) (registry.Artifact, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if a, ok := s.artifacts[id]; ok {
		return *a, true, nil
	}
	a := &registry.Artifact{
		ID:      id,
		JobID:   jobID,
		JobSeq:  jobSeq,
		Created: time.Now(),
		Bytes:   len(data),
	}
	s.artifacts[id] = a
	s.data[id] = data
	s.bytes += int64(len(data))
	return *a, false, nil
}

func (s *memStore) Hit(id string) (registry.Artifact, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	a, ok := s.artifacts[id]
	if !ok {
		return registry.Artifact{}, false
	}
	a.Hits++
	return *a, true
}

func (s *memStore) Lookup(id string) (registry.Artifact, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	a, ok := s.artifacts[id]
	if !ok {
		return registry.Artifact{}, false
	}
	return *a, true
}

func (s *memStore) Get(id string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.data[id]
	return data, ok
}

func (s *memStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.artifacts)
}

// Stats reports the in-memory store's payload bytes as cache bytes: it is
// all RAM, which is exactly why it is the zero-config shape, not the
// production one.
func (s *memStore) Stats() registry.Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return registry.Stats{Artifacts: len(s.artifacts), CacheBytes: s.bytes}
}

func (s *memStore) LastJobSeq() uint64 { return 0 }
