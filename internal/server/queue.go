package server

import (
	"container/heap"
	"errors"
	"sync"
)

var (
	// errQueueFull rejects a submission when the bounded backlog is at
	// capacity; the API maps it to 503 + Retry-After.
	errQueueFull = errors.New("queue full")
	// errQueueClosed rejects submissions once draining has begun.
	errQueueClosed = errors.New("queue closed")
)

// queue is the bounded, priority-ordered admission queue feeding the worker
// pool. Higher priority pops first; equal priorities pop FIFO by admission
// sequence. Closing stops admission but keeps pop draining the backlog, so
// a graceful drain runs every already-admitted job (under its own context,
// which the drain deadline may cancel).
type queue struct {
	mu       sync.Mutex
	notEmpty *sync.Cond
	items    jobHeap
	capacity int
	closed   bool
}

func newQueue(capacity int) *queue {
	q := &queue{capacity: capacity}
	q.notEmpty = sync.NewCond(&q.mu)
	return q
}

// push admits a job, or reports errQueueFull/errQueueClosed.
func (q *queue) push(j *job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return errQueueClosed
	}
	if len(q.items) >= q.capacity {
		return errQueueFull
	}
	heap.Push(&q.items, j)
	q.notEmpty.Signal()
	return nil
}

// pop blocks until a job is available or the queue is closed and drained;
// the second return is false only in the latter case (worker shutdown).
func (q *queue) pop() (*job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.notEmpty.Wait()
	}
	if len(q.items) == 0 {
		return nil, false
	}
	return heap.Pop(&q.items).(*job), true
}

// remove takes a still-queued job out of the backlog (cancellation before a
// worker claims it). It returns nil if the job is not queued — typically
// because a worker popped it first, in which case the caller falls back to
// context cancellation.
func (q *queue) remove(id string) *job {
	q.mu.Lock()
	defer q.mu.Unlock()
	for i, j := range q.items {
		if j.id == id {
			return heap.Remove(&q.items, i).(*job)
		}
	}
	return nil
}

// close stops admission and wakes blocked pops; the backlog keeps draining.
func (q *queue) close() {
	q.mu.Lock()
	q.closed = true
	q.notEmpty.Broadcast()
	q.mu.Unlock()
}

// depth reports the queued-not-yet-claimed job count.
func (q *queue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// jobHeap orders by priority descending, then admission sequence ascending.
type jobHeap []*job

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(a, b int) bool {
	if h[a].priority != h[b].priority {
		return h[a].priority > h[b].priority
	}
	return h[a].seq < h[b].seq
}
func (h jobHeap) Swap(a, b int) { h[a], h[b] = h[b], h[a] }

func (h *jobHeap) Push(x any) { *h = append(*h, x.(*job)) }

func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return j
}
