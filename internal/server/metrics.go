package server

import (
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/tscfp"
)

// registry is the daemon's metrics surface behind GET /metrics, rendered in
// the Prometheus text exposition format (counters and gauges only, no
// client library dependency). Stage latency is observed from the flow's own
// progress events: a stage's duration is the wall time between its first
// event and the first event of the next stage.
type registry struct {
	mu sync.Mutex

	submitted int // admitted jobs, including deduped ones
	deduped   int // submissions served from the store without running
	rejected  int // submissions refused (queue full or draining)
	running   int
	completed int
	failed    int
	cancelled int

	stageCount   map[string]int
	stageSeconds map[string]float64

	queueDepth func() int
	storeSize  func() int
}

func newRegistry(queueDepth, storeSize func() int) *registry {
	return &registry{
		stageCount:   make(map[string]int),
		stageSeconds: make(map[string]float64),
		queueDepth:   queueDepth,
		storeSize:    storeSize,
	}
}

func (m *registry) jobSubmitted(deduped bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.submitted++
	if deduped {
		m.deduped++
	}
}

func (m *registry) jobRejected() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rejected++
}

func (m *registry) jobStarted() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.running++
}

// jobCancelledQueued counts a job cancelled before any worker claimed it
// (it never contributed to the running gauge).
func (m *registry) jobCancelledQueued() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cancelled++
}

func (m *registry) jobFinished(state State) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.running--
	switch state {
	case StateDone:
		m.completed++
	case StateFailed:
		m.failed++
	case StateCancelled:
		m.cancelled++
	}
}

func (m *registry) observeStage(stage string, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stageCount[stage]++
	m.stageSeconds[stage] += d.Seconds()
}

// handler renders the registry.
func (m *registry) handler(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	m.mu.Lock()
	defer m.mu.Unlock()
	fmt.Fprintf(w, "tscfpd_queue_depth %d\n", m.queueDepth())
	fmt.Fprintf(w, "tscfpd_store_artifacts %d\n", m.storeSize())
	fmt.Fprintf(w, "tscfpd_jobs_running %d\n", m.running)
	fmt.Fprintf(w, "tscfpd_jobs_submitted_total %d\n", m.submitted)
	fmt.Fprintf(w, "tscfpd_jobs_deduped_total %d\n", m.deduped)
	fmt.Fprintf(w, "tscfpd_jobs_rejected_total %d\n", m.rejected)
	fmt.Fprintf(w, "tscfpd_jobs_completed_total %d\n", m.completed)
	fmt.Fprintf(w, "tscfpd_jobs_failed_total %d\n", m.failed)
	fmt.Fprintf(w, "tscfpd_jobs_cancelled_total %d\n", m.cancelled)
	stages := make([]string, 0, len(m.stageCount))
	for s := range m.stageCount {
		stages = append(stages, s)
	}
	sort.Strings(stages)
	for _, s := range stages {
		fmt.Fprintf(w, "tscfpd_stage_latency_seconds_sum{stage=%q} %g\n", s, m.stageSeconds[s])
		fmt.Fprintf(w, "tscfpd_stage_latency_seconds_count{stage=%q} %d\n", s, m.stageCount[s])
	}
}

// stageTimer turns a flow's progress events into per-stage latency
// observations. It runs on the flow goroutine (WithProgress is synchronous)
// so it needs no locking of its own.
type stageTimer struct {
	reg     *registry
	stage   tscfp.Stage
	started time.Time
}

func newStageTimer(reg *registry) *stageTimer {
	return &stageTimer{reg: reg}
}

// observe notes a progress event; entering a new stage closes the previous
// one's latency window.
func (t *stageTimer) observe(stage tscfp.Stage) {
	now := time.Now()
	if stage == t.stage {
		return
	}
	if t.stage != "" {
		t.reg.observeStage(string(t.stage), now.Sub(t.started))
	}
	t.stage = stage
	t.started = now
}

// finish closes the last open stage window (on success, StageDone's).
func (t *stageTimer) finish() {
	if t.stage != "" {
		t.reg.observeStage(string(t.stage), time.Since(t.started))
		t.stage = ""
	}
}
