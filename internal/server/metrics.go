package server

import (
	"bytes"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/registry"
	"repro/tscfp"
)

// metrics is the daemon's observability surface behind GET /metrics,
// rendered in the Prometheus text exposition format (counters and gauges
// only, no client library dependency). Stage latency is observed from the
// flow's own progress events: a stage's duration is the wall time between
// its first event and the first event of the next stage. Store gauges come
// from the artifact registry's own counters (disk bytes, cache hit ratio,
// evictions, quarantine/rescan counts).
type metrics struct {
	mu sync.Mutex

	submitted    int // admitted jobs, including deduped ones
	deduped      int // submissions served from the store without running
	rejected     int // submissions refused (queue full or draining)
	running      int
	completed    int
	failed       int
	cancelled    int
	cellsDeduped int // sweep cells served from the store (job-level dedupe aside)
	writeErrors  int // response/SSE writes that failed (dead clients)
	jobsGCed     int // terminal job records pruned from the job table

	stageCount   map[string]int
	stageSeconds map[string]float64

	queueDepth func() int
	storeStats func() registry.Stats
}

func newMetrics(queueDepth func() int, storeStats func() registry.Stats) *metrics {
	return &metrics{
		stageCount:   make(map[string]int),
		stageSeconds: make(map[string]float64),
		queueDepth:   queueDepth,
		storeStats:   storeStats,
	}
}

func (m *metrics) jobSubmitted(deduped bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.submitted++
	if deduped {
		m.deduped++
	}
}

func (m *metrics) jobRejected() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rejected++
}

func (m *metrics) jobStarted() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.running++
}

// jobCancelledQueued counts a job cancelled before any worker claimed it
// (it never contributed to the running gauge).
func (m *metrics) jobCancelledQueued() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cancelled++
}

func (m *metrics) jobFinished(state State) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.running--
	switch state {
	case StateDone:
		m.completed++
	case StateFailed:
		m.failed++
	case StateCancelled:
		m.cancelled++
	}
}

// cellDeduped counts one sweep cell served from the store.
func (m *metrics) cellDeduped() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cellsDeduped++
}

// writeError counts a failed client write (JSON response or SSE frame).
func (m *metrics) writeError() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.writeErrors++
}

// jobsCollected counts terminal job records pruned by the job-table GC.
func (m *metrics) jobsCollected(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.jobsGCed += n
}

func (m *metrics) observeStage(stage string, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stageCount[stage]++
	m.stageSeconds[stage] += d.Seconds()
}

// handler renders the metrics. The page is assembled in a buffer and sent
// with one checked Write: streaming Fprintf straight to the
// ResponseWriter silently dropped client-write failures (the PR 9 bug
// class tscfpd_write_errors_total exists to count).
func (m *metrics) handler(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	st := m.storeStats()
	var buf bytes.Buffer
	m.mu.Lock()
	fmt.Fprintf(&buf, "tscfpd_queue_depth %d\n", m.queueDepth())
	fmt.Fprintf(&buf, "tscfpd_store_artifacts %d\n", st.Artifacts)
	fmt.Fprintf(&buf, "tscfpd_store_disk_bytes %d\n", st.DiskBytes)
	fmt.Fprintf(&buf, "tscfpd_store_cache_bytes %d\n", st.CacheBytes)
	fmt.Fprintf(&buf, "tscfpd_store_cache_hits_total %d\n", st.CacheHits)
	fmt.Fprintf(&buf, "tscfpd_store_cache_misses_total %d\n", st.CacheMisses)
	fmt.Fprintf(&buf, "tscfpd_store_evictions_total %d\n", st.Evictions)
	fmt.Fprintf(&buf, "tscfpd_store_quarantined_total %d\n", st.Quarantined)
	fmt.Fprintf(&buf, "tscfpd_store_rescanned_total %d\n", st.Rescanned)
	fmt.Fprintf(&buf, "tscfpd_jobs_running %d\n", m.running)
	fmt.Fprintf(&buf, "tscfpd_jobs_submitted_total %d\n", m.submitted)
	fmt.Fprintf(&buf, "tscfpd_jobs_deduped_total %d\n", m.deduped)
	fmt.Fprintf(&buf, "tscfpd_jobs_rejected_total %d\n", m.rejected)
	fmt.Fprintf(&buf, "tscfpd_jobs_completed_total %d\n", m.completed)
	fmt.Fprintf(&buf, "tscfpd_jobs_failed_total %d\n", m.failed)
	fmt.Fprintf(&buf, "tscfpd_jobs_cancelled_total %d\n", m.cancelled)
	fmt.Fprintf(&buf, "tscfpd_jobs_gced_total %d\n", m.jobsGCed)
	fmt.Fprintf(&buf, "tscfpd_sweep_cells_deduped_total %d\n", m.cellsDeduped)
	fmt.Fprintf(&buf, "tscfpd_write_errors_total %d\n", m.writeErrors)
	stages := make([]string, 0, len(m.stageCount))
	for s := range m.stageCount {
		stages = append(stages, s)
	}
	sort.Strings(stages)
	for _, s := range stages {
		fmt.Fprintf(&buf, "tscfpd_stage_latency_seconds_sum{stage=%q} %g\n", s, m.stageSeconds[s])
		fmt.Fprintf(&buf, "tscfpd_stage_latency_seconds_count{stage=%q} %d\n", s, m.stageCount[s])
	}
	m.mu.Unlock()
	if _, err := w.Write(buf.Bytes()); err != nil {
		m.writeError()
	}
}

// stageTimer turns a flow's progress events into per-stage latency
// observations. It runs on the flow goroutine (WithProgress is synchronous)
// so it needs no locking of its own.
type stageTimer struct {
	reg     *metrics
	stage   tscfp.Stage
	started time.Time
}

func newStageTimer(reg *metrics) *stageTimer {
	return &stageTimer{reg: reg}
}

// observe notes a progress event; entering a new stage closes the previous
// one's latency window.
func (t *stageTimer) observe(stage tscfp.Stage) {
	now := time.Now()
	if stage == t.stage {
		return
	}
	if t.stage != "" {
		t.reg.observeStage(string(t.stage), now.Sub(t.started))
	}
	t.stage = stage
	t.started = now
}

// finish closes the last open stage window (on success, StageDone's).
func (t *stageTimer) finish() {
	if t.stage != "" {
		t.reg.observeStage(string(t.stage), time.Since(t.started))
		t.stage = ""
	}
}
