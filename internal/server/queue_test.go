package server

import (
	"testing"
	"time"
)

func qjob(id string, seq uint64, prio int) *job {
	return &job{id: id, seq: seq, priority: prio}
}

// TestQueueOrdering pins the pop order: priority descending, FIFO within a
// priority level.
func TestQueueOrdering(t *testing.T) {
	q := newQueue(16)
	for _, j := range []*job{
		qjob("a", 1, 0), qjob("b", 2, 5), qjob("c", 3, 0),
		qjob("d", 4, 5), qjob("e", 5, 9),
	} {
		if err := q.push(j); err != nil {
			t.Fatal(err)
		}
	}
	want := []string{"e", "b", "d", "a", "c"}
	for _, id := range want {
		j, ok := q.pop()
		if !ok || j.id != id {
			t.Fatalf("pop = %v/%v, want %s", j, ok, id)
		}
	}
}

// TestQueueBound rejects pushes beyond capacity with errQueueFull.
func TestQueueBound(t *testing.T) {
	q := newQueue(2)
	if err := q.push(qjob("a", 1, 0)); err != nil {
		t.Fatal(err)
	}
	if err := q.push(qjob("b", 2, 0)); err != nil {
		t.Fatal(err)
	}
	if err := q.push(qjob("c", 3, 0)); err != errQueueFull {
		t.Fatalf("over-capacity push = %v, want errQueueFull", err)
	}
	if q.depth() != 2 {
		t.Fatalf("depth = %d, want 2", q.depth())
	}
}

// TestQueueRemove takes a queued job out by ID; removing twice (or a
// missing ID) returns nil.
func TestQueueRemove(t *testing.T) {
	q := newQueue(4)
	q.push(qjob("a", 1, 0))
	q.push(qjob("b", 2, 7))
	q.push(qjob("c", 3, 0))
	if j := q.remove("a"); j == nil || j.id != "a" {
		t.Fatalf("remove(a) = %v", j)
	}
	if j := q.remove("a"); j != nil {
		t.Fatalf("second remove(a) = %v, want nil", j)
	}
	j, ok := q.pop()
	if !ok || j.id != "b" {
		t.Fatalf("pop after remove = %v/%v, want b", j, ok)
	}
}

// TestQueueCloseDrains: close rejects new pushes but pop still drains the
// backlog, then reports shutdown.
func TestQueueCloseDrains(t *testing.T) {
	q := newQueue(4)
	q.push(qjob("a", 1, 0))
	q.close()
	if err := q.push(qjob("b", 2, 0)); err != errQueueClosed {
		t.Fatalf("push after close = %v, want errQueueClosed", err)
	}
	if j, ok := q.pop(); !ok || j.id != "a" {
		t.Fatalf("pop after close = %v/%v, want a", j, ok)
	}
	if _, ok := q.pop(); ok {
		t.Fatal("pop on drained closed queue reported a job")
	}
}

// TestQueueCloseWakesBlockedPop: a pop blocked on an empty queue returns
// promptly once the queue closes.
func TestQueueCloseWakesBlockedPop(t *testing.T) {
	q := newQueue(4)
	done := make(chan bool, 1)
	go func() {
		_, ok := q.pop()
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	q.close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("blocked pop returned a job from an empty queue")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("close did not wake the blocked pop")
	}
}

// TestStoreFirstWriterWins pins dedupe lineage: a second put under the same
// ID keeps the original artifact and reports it existed.
func TestStoreFirstWriterWins(t *testing.T) {
	s := newMemStore()
	a, existed, err := s.Put("k", []byte("one"), "j-1", 1)
	if err != nil || existed || a.JobID != "j-1" {
		t.Fatalf("first put = %+v existed=%v err=%v", a, existed, err)
	}
	b, existed, err := s.Put("k", []byte("two"), "j-2", 2)
	if err != nil || !existed || b.JobID != "j-1" {
		t.Fatalf("second put = %+v existed=%v err=%v, want original kept", b, existed, err)
	}
	if data, _ := s.Get("k"); string(data) != "one" {
		t.Fatalf("payload = %q, want first writer's", data)
	}
	if _, ok := s.Hit("k"); !ok {
		t.Fatal("hit on stored key missed")
	}
	if a, _ := s.Lookup("k"); a.Hits != 1 {
		t.Fatal("hit accounting broken")
	}
	if _, ok := s.Hit("missing"); ok {
		t.Fatal("hit on missing key returned an artifact")
	}
}
