// Package server implements tscfpd, the floorplanning-as-a-service daemon:
// an HTTP front end over the public tscfp flow that accepts JSON job
// submissions (single runs and sweep grids), executes them on a bounded
// worker pool with a priority queue, streams per-stage progress as
// server-sent events, and dedupes identical submissions through a
// content-addressed artifact registry.
//
// The serving shape is a stateless single binary: configuration arrives via
// flags/env, health and readiness live at /healthz and /readyz, metrics at
// /metrics, and local state is rebuildable, never irreplaceable. The job
// table is in-memory and GC-bounded (terminal records beyond MaxJobs or
// older than JobRetention are pruned); the artifact store is pluggable — a
// disk-backed registry (internal/registry) survives restarts with bounded
// RAM, the in-memory fallback serves zero-config runs. SIGTERM maps to
// Drain: readiness flips, admission stops, and in-flight work finishes or
// is cancelled within a deadline.
//
// REST surface:
//
//	POST   /v1/jobs             submit a job (201; 200 on a dedupe hit)
//	GET    /v1/jobs             list jobs (?state= filters, ?limit=/?offset= paginate)
//	GET    /v1/jobs/{id}        job status
//	DELETE /v1/jobs/{id}        cancel (idempotent)
//	GET    /v1/jobs/{id}/events SSE progress stream (keep-alive comments when idle)
//	GET    /v1/jobs/{id}/result the job's result payload
//	GET    /v1/artifacts/{id}   a stored artifact by content address
//	GET    /healthz, /readyz, /metrics
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/tscfp"
)

// Config tunes a Server. Zero values select the documented defaults.
type Config struct {
	// Workers is the job worker-pool size; <1 selects GOMAXPROCS.
	Workers int
	// QueueCap bounds the admission backlog (queued, not running, jobs);
	// <1 selects 256. A full queue rejects submissions with 503.
	QueueCap int
	// MaxBodyBytes caps a submission body; <1 selects 8 MiB.
	MaxBodyBytes int64
	// Store is the artifact registry. nil selects the ephemeral in-memory
	// store; pass a *registry.Registry for durable, bounded serving.
	Store Store
	// MaxJobs bounds the job table: when the table grows past it, terminal
	// job records are pruned oldest-first (running and queued jobs are
	// never pruned). <1 selects 4096.
	MaxJobs int
	// JobRetention prunes terminal job records that finished longer ago
	// than this, regardless of count. 0 keeps them until MaxJobs evicts.
	JobRetention time.Duration
	// SSEKeepAlive is the interval between ": keepalive" comment frames on
	// idle event streams, so LB/proxy idle timeouts do not sever them.
	// <=0 selects 15s.
	SSEKeepAlive time.Duration
}

// Server is one tscfpd instance. Create with New, mount Handler, call
// Start, and Drain before exit.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	queue   *queue
	store   Store
	metrics *metrics

	baseCtx   context.Context
	cancelAll context.CancelFunc

	mu    sync.Mutex
	jobs  map[string]*job
	order []*job // submission order, for listing and oldest-first GC
	seq   uint64

	draining atomic.Bool
	wg       sync.WaitGroup
	started  atomic.Bool
}

// New builds a Server from cfg. Workers do not run until Start.
func New(cfg Config) *Server {
	if cfg.Workers < 1 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueCap < 1 {
		cfg.QueueCap = 256
	}
	if cfg.MaxBodyBytes < 1 {
		cfg.MaxBodyBytes = 8 << 20
	}
	if cfg.Store == nil {
		cfg.Store = newMemStore()
	}
	if cfg.MaxJobs < 1 {
		cfg.MaxJobs = 4096
	}
	if cfg.SSEKeepAlive <= 0 {
		cfg.SSEKeepAlive = 15 * time.Second
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:       cfg,
		mux:       http.NewServeMux(),
		queue:     newQueue(cfg.QueueCap),
		store:     cfg.Store,
		jobs:      make(map[string]*job),
		baseCtx:   ctx,
		cancelAll: cancel,
		// Seed job IDs above every ID recorded in stored lineage, so a
		// restarted daemon never reuses the ID an on-disk artifact already
		// names as its producer.
		seq: cfg.Store.LastJobSeq(),
	}
	s.metrics = newMetrics(s.queue.depth, s.store.Stats)

	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	s.mux.HandleFunc("GET /v1/artifacts/{id}", s.handleArtifact)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		if _, err := io.WriteString(w, "ok\n"); err != nil {
			s.metrics.writeError()
		}
	})
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	s.mux.HandleFunc("GET /metrics", s.metrics.handler)
	return s
}

// Handler returns the HTTP surface, ready to mount on any http.Server.
func (s *Server) Handler() http.Handler { return s.mux }

// Start launches the worker pool. It is idempotent.
func (s *Server) Start() {
	if !s.started.CompareAndSwap(false, true) {
		return
	}
	s.wg.Add(s.cfg.Workers)
	for i := 0; i < s.cfg.Workers; i++ {
		go s.worker()
	}
}

// Drain is the SIGTERM half of graceful shutdown: readiness flips to 503,
// admission stops (POST /v1/jobs and the queue both reject), and admitted
// work gets timeout to finish. Whatever is still in flight at the deadline
// is cancelled through its per-job context (tscfp.Flow.Run honors it down
// to annealing moves and solver sweeps). Drain returns once every worker
// has exited; the caller still owns http.Server.Shutdown for the listener.
func (s *Server) Drain(timeout time.Duration) {
	s.draining.Store(true)
	s.queue.close()
	if !s.started.Load() {
		s.cancelAll()
		return
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-done:
	case <-timer.C:
		s.cancelAll()
		<-done
	}
	s.cancelAll()
}

// Draining reports whether Drain has begun (mirrors /readyz).
func (s *Server) Draining() bool { return s.draining.Load() }

// GC prunes terminal job records past the table bounds now. register prunes
// on every admission; this is for a periodic sweep so an idle daemon still
// ages records out under JobRetention.
func (s *Server) GC() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gcLocked(time.Now())
}

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j, ok := s.queue.pop()
		if !ok {
			return
		}
		s.run(j)
	}
}

// ---- submission ----

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.metrics.jobRejected()
		w.Header().Set("Retry-After", "10")
		s.httpError(w, http.StatusServiceUnavailable, "draining: not accepting jobs")
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var req JobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.httpError(w, http.StatusRequestEntityTooLarge,
				"body exceeds %d bytes", tooBig.Limit)
			return
		}
		s.httpError(w, http.StatusBadRequest, "decode job: %v", err)
		return
	}
	design, err := req.normalize()
	if err != nil {
		s.httpError(w, http.StatusBadRequest, "invalid job: %v", err)
		return
	}
	key, err := contentKey(design, req.Options, req.Sweep)
	if err != nil {
		s.httpError(w, http.StatusInternalServerError, "hash job: %v", err)
		return
	}

	j := &job{
		priority:  req.Priority,
		req:       req,
		design:    design,
		key:       key,
		events:    newBroadcaster(),
		submitted: time.Now(),
		state:     StateQueued,
	}
	s.mu.Lock()
	s.seq++
	j.seq = s.seq
	j.id = fmt.Sprintf("j-%06d", s.seq)
	s.mu.Unlock()

	// Dedupe at admission: an identical prior submission's artifact serves
	// this one without a run. The job record still exists — with lineage —
	// so the lifecycle API and SSE stream behave uniformly. (Best-effort:
	// two identical jobs racing through admission both run; the store's
	// first-writer-wins put keeps lineage consistent.)
	if art, ok := s.store.Hit(key); ok {
		now := time.Now()
		j.state = StateDone
		j.started, j.finished = now, now
		j.artifact = art.ID
		j.deduped = true
		j.lineage = art.JobID
		j.events.publish("state", "state", j.status())
		j.events.close()
		s.register(j)
		s.metrics.jobSubmitted(true)
		s.writeJSON(w, http.StatusOK, j.status())
		return
	}

	j.ctx, j.cancel = context.WithCancel(s.baseCtx)
	s.register(j)
	if err := s.queue.push(j); err != nil {
		s.unregister(j)
		s.metrics.jobRejected()
		w.Header().Set("Retry-After", "10")
		s.httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	s.metrics.jobSubmitted(false)
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	s.writeJSON(w, http.StatusCreated, j.status())
}

func (s *Server) register(j *job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jobs[j.id] = j
	s.order = append(s.order, j)
	s.gcLocked(time.Now())
}

func (s *Server) unregister(j *job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.jobs, j.id)
	for i, o := range s.order {
		if o == j {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
}

// gcLocked bounds the job table: terminal records are pruned oldest-first
// while the table exceeds MaxJobs, and terminal records that finished
// before now-JobRetention are pruned regardless of count. Queued and
// running jobs are never pruned — the bound applies to history, not work.
// Requires s.mu.
func (s *Server) gcLocked(now time.Time) {
	var cut time.Time
	if s.cfg.JobRetention > 0 {
		cut = now.Add(-s.cfg.JobRetention)
	}
	excess := len(s.order) - s.cfg.MaxJobs
	if excess <= 0 && cut.IsZero() {
		return
	}
	kept := make([]*job, 0, len(s.order))
	removed := 0
	for _, j := range s.order {
		j.mu.Lock()
		terminal := j.state.Terminal()
		finished := j.finished
		j.mu.Unlock()
		aged := terminal && !cut.IsZero() && finished.Before(cut)
		if terminal && (aged || excess > 0) {
			delete(s.jobs, j.id)
			removed++
			if excess > 0 {
				excess--
			}
			continue
		}
		kept = append(kept, j)
	}
	s.order = kept
	if removed > 0 {
		s.metrics.jobsCollected(removed)
	}
}

func (s *Server) lookup(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// ---- execution ----

func (s *Server) run(j *job) {
	j.mu.Lock()
	if j.state != StateQueued {
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	j.mu.Unlock()
	s.metrics.jobStarted()
	j.events.publish("state", "state", j.status())

	var artifact string
	var err error
	if j.req.Sweep != nil {
		artifact, err = s.runSweep(j)
	} else {
		artifact, err = s.runSingle(j)
	}

	j.mu.Lock()
	j.finished = time.Now()
	switch {
	case err == nil:
		j.state = StateDone
		j.artifact = artifact
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.state = StateCancelled
		j.errMsg = err.Error()
	default:
		j.state = StateFailed
		j.errMsg = err.Error()
	}
	state := j.state
	j.mu.Unlock()
	j.cancel()
	s.metrics.jobFinished(state)
	j.events.publish("state", "state", j.status())
	j.events.close()
}

// runSingle executes one flow and stores its Result under the job's
// content address.
func (s *Server) runSingle(j *job) (string, error) {
	opts, err := j.req.Options.Options()
	if err != nil {
		return "", err
	}
	timer := newStageTimer(s.metrics)
	opts = append(opts, tscfp.WithProgress(func(ev tscfp.Event) {
		timer.observe(ev.Stage)
		j.events.publish("progress", "progress:"+string(ev.Stage), ev)
	}))
	res, err := tscfp.Run(j.ctx, j.design, opts...)
	if err != nil {
		return "", err
	}
	timer.finish()
	data, err := res.JSON()
	if err != nil {
		return "", err
	}
	if _, _, err := s.store.Put(j.key, data, j.id, j.seq); err != nil {
		return "", err
	}
	return j.key, nil
}

// sweepCell is one cell's entry in a sweep manifest and its SSE "cell"
// event payload.
type sweepCell struct {
	Cell     tscfp.Cell `json:"cell"`
	Artifact string     `json:"artifact_id,omitempty"`
	Deduped  bool       `json:"deduped,omitempty"`
	Error    string     `json:"error,omitempty"`
}

// sweepManifest is the artifact a sweep job produces: per-cell artifact
// IDs (each cell's Result is stored individually under the same address an
// equivalent single-run submission would hash to) plus error text for
// failed cells.
type sweepManifest struct {
	Cells []sweepCell `json:"cells"`
}

// runSweep executes a sweep grid via tscfp.Stream, publishing one SSE
// "cell" event per completed cell. If every cell is already in the store
// the whole job dedupes without running; otherwise the full grid runs
// (store puts are idempotent, so previously-stored cells keep their
// original lineage and are flagged Deduped in the manifest). Cells served
// from the store count as dedupe hits on their artifacts — a sweep hitting
// a cached cell is the same event as a single run hitting it.
func (s *Server) runSweep(j *job) (string, error) {
	spec := j.req.Sweep
	grid := tscfp.Grid{
		Design:     j.design,
		Seeds:      spec.Seeds,
		GridNs:     spec.GridNs,
		Iterations: spec.Iterations,
	}
	for _, m := range spec.Modes {
		grid.Modes = append(grid.Modes, tscfp.Mode(m))
	}
	baseOpts, err := j.req.Options.Options()
	if err != nil {
		return "", err
	}
	grid.Options = baseOpts
	cells := grid.Cells()

	keys := make([]string, len(cells))
	outs := make([]sweepCell, len(cells))
	allCached := true
	for i, c := range cells {
		keys[i], err = contentKey(j.design, cellOptions(j.req.Options, c), nil)
		if err != nil {
			return "", err
		}
		outs[i].Cell = c
		if a, ok := s.store.Hit(keys[i]); ok {
			outs[i].Artifact = a.ID
			outs[i].Deduped = true
			s.metrics.cellDeduped()
		} else {
			allCached = false
		}
	}

	if !allCached {
		workers := spec.Workers
		if workers < 1 {
			workers = 1
		}
		ch, err := tscfp.Stream(j.ctx, grid, tscfp.WithWorkers(workers))
		if err != nil {
			return "", err
		}
		for sr := range ch {
			i := sr.Cell.Index
			if sr.Err != nil {
				outs[i].Artifact, outs[i].Deduped = "", false
				outs[i].Error = sr.Err.Error()
			} else {
				data, jerr := sr.Result.JSON()
				if jerr != nil {
					outs[i].Error = jerr.Error()
				} else if a, existed, perr := s.store.Put(keys[i], data, j.id, j.seq); perr != nil {
					outs[i].Error = perr.Error()
				} else {
					outs[i].Artifact = a.ID
					outs[i].Deduped = existed
					outs[i].Error = ""
				}
			}
			j.events.publish("cell", fmt.Sprintf("cell:%d", i), outs[i])
		}
		if err := j.ctx.Err(); err != nil {
			return "", err
		}
	} else {
		for i := range outs {
			j.events.publish("cell", fmt.Sprintf("cell:%d", i), outs[i])
		}
	}

	for _, o := range outs {
		if o.Error != "" {
			return "", fmt.Errorf("cell %d (seed %d, %s): %s",
				o.Cell.Index, o.Cell.Seed, o.Cell.Mode, o.Error)
		}
	}
	data, err := json.Marshal(sweepManifest{Cells: outs})
	if err != nil {
		return "", err
	}
	if _, _, err := s.store.Put(j.key, data, j.id, j.seq); err != nil {
		return "", err
	}
	return j.key, nil
}

// cellOptions overlays one sweep cell onto the job's base options, mirroring
// tscfp.Cell.Options so the cell's content address equals the address of an
// equivalent single-run submission.
func cellOptions(base tscfp.RunOptions, c tscfp.Cell) tscfp.RunOptions {
	o := base
	o.Seed = c.Seed
	o.Mode = string(c.Mode)
	if c.GridN > 0 {
		o.GridN = c.GridN
	}
	if c.Iterations > 0 {
		o.Iterations = c.Iterations
	}
	return o
}

// ---- lifecycle handlers ----

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	filter := State(q.Get("state"))
	offset, err := queryInt(q.Get("offset"), 0)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, "bad offset: %v", err)
		return
	}
	limit, err := queryInt(q.Get("limit"), -1)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, "bad limit: %v", err)
		return
	}
	s.mu.Lock()
	jobs := append([]*job(nil), s.order...)
	s.mu.Unlock()
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].seq < jobs[b].seq })
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		st := j.status()
		if filter != "" && st.State != filter {
			continue
		}
		out = append(out, st)
	}
	total := len(out)
	if offset > len(out) {
		offset = len(out)
	}
	out = out[offset:]
	if limit >= 0 && limit < len(out) {
		out = out[:limit]
	}
	s.writeJSON(w, http.StatusOK, struct {
		Jobs  []JobStatus `json:"jobs"`
		Total int         `json:"total"`
	}{out, total})
}

// queryInt parses a non-negative pagination parameter, def when absent.
func queryInt(v string, def int) (int, error) {
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, err
	}
	if n < 0 {
		return 0, fmt.Errorf("negative value %d", n)
	}
	return n, nil
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		s.httpError(w, http.StatusNotFound, "no such job")
		return
	}
	s.writeJSON(w, http.StatusOK, j.status())
}

// handleCancel cancels a job. Idempotent: cancelling a terminal job
// reports its (unchanged) state. A still-queued job is removed from the
// queue and finalized directly; a running one is cancelled through its
// context and finalized by its worker.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		s.httpError(w, http.StatusNotFound, "no such job")
		return
	}
	j.mu.Lock()
	terminal := j.state.Terminal()
	j.mu.Unlock()
	if !terminal {
		if removed := s.queue.remove(j.id); removed != nil {
			now := time.Now()
			j.mu.Lock()
			j.state = StateCancelled
			j.finished = now
			j.errMsg = "cancelled before start"
			j.mu.Unlock()
			s.metrics.jobCancelledQueued()
			j.events.publish("state", "state", j.status())
			j.events.close()
		}
		j.cancel()
	}
	s.writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		s.httpError(w, http.StatusNotFound, "no such job")
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		s.httpError(w, http.StatusInternalServerError, "response writer cannot stream")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	// write reports delivery failure so the handler bails on a dead client
	// instead of streaming into the void until the job ends.
	write := func(ev sseEvent) bool {
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.name, ev.data); err != nil {
			s.metrics.writeError()
			return false
		}
		fl.Flush()
		return true
	}
	hist, live := j.events.subscribe()
	for _, ev := range hist {
		if !write(ev) {
			if live != nil {
				j.events.unsubscribe(live)
			}
			return
		}
	}
	if live == nil {
		// Stream already closed; the replay's state event was terminal.
		return
	}
	defer j.events.unsubscribe(live)
	// Keep-alive comments defeat LB/proxy idle timeouts between progress
	// events (a queued job behind a long blocker can be silent for minutes)
	// and double as dead-client probes: a failed keep-alive write ends the
	// handler even if the request context has not fired yet.
	keepalive := time.NewTicker(s.cfg.SSEKeepAlive)
	defer keepalive.Stop()
	for {
		select {
		case ev, open := <-live:
			if !open {
				// Stream closed while we were attached. Progress delivery is
				// lossy under backpressure, so re-emit the terminal state
				// explicitly rather than trusting the last delivered event.
				data, _ := json.Marshal(j.status())
				write(sseEvent{name: "state", data: data})
				return
			}
			if !write(ev) {
				return
			}
		case <-keepalive.C:
			if _, err := fmt.Fprint(w, ": keepalive\n\n"); err != nil {
				s.metrics.writeError()
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		s.httpError(w, http.StatusNotFound, "no such job")
		return
	}
	st := j.status()
	if st.State != StateDone {
		s.httpError(w, http.StatusConflict, "job is %s, not done", st.State)
		return
	}
	data, ok := s.store.Get(st.ArtifactID)
	if !ok {
		s.httpError(w, http.StatusNotFound, "artifact %s not in store", st.ArtifactID)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if _, err := w.Write(data); err != nil {
		s.metrics.writeError()
	}
}

func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	data, ok := s.store.Get(r.PathValue("id"))
	if !ok {
		s.httpError(w, http.StatusNotFound, "no such artifact")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if _, err := w.Write(data); err != nil {
		s.metrics.writeError()
	}
}

func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		s.httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	if _, err := io.WriteString(w, "ready\n"); err != nil {
		s.metrics.writeError()
	}
}

// ---- helpers ----

// writeJSON encodes v to the client. An Encode failure (almost always a
// client that hung up mid-response) is counted rather than silently
// dropped; the response is already committed, so bailing is all a handler
// can do, and every caller writes last.
func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		s.metrics.writeError()
	}
}

func (s *Server) httpError(w http.ResponseWriter, code int, format string, args ...any) {
	s.writeJSON(w, code, struct {
		Error string `json:"error"`
	}{fmt.Sprintf(format, args...)})
}
