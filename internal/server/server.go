// Package server implements tscfpd, the floorplanning-as-a-service daemon:
// an HTTP front end over the public tscfp flow that accepts JSON job
// submissions (single runs and sweep grids), executes them on a bounded
// worker pool with a priority queue, streams per-stage progress as
// server-sent events, and dedupes identical submissions through a
// content-addressed result store.
//
// The serving shape is a stateless single binary: configuration arrives via
// flags/env, health and readiness live at /healthz and /readyz, metrics at
// /metrics, and the only state (the job table and result store) is
// in-memory and rebuildable, so the same binary runs standalone or as a
// replicated k8s Deployment. SIGTERM maps to Drain: readiness flips,
// admission stops, and in-flight work finishes or is cancelled within a
// deadline.
//
// REST surface:
//
//	POST   /v1/jobs             submit a job (201; 200 on a dedupe hit)
//	GET    /v1/jobs             list jobs (?state= filters)
//	GET    /v1/jobs/{id}        job status
//	DELETE /v1/jobs/{id}        cancel (idempotent)
//	GET    /v1/jobs/{id}/events SSE progress stream
//	GET    /v1/jobs/{id}/result the job's result payload
//	GET    /v1/artifacts/{id}   a stored artifact by content address
//	GET    /healthz, /readyz, /metrics
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/tscfp"
)

// Config tunes a Server. Zero values select the documented defaults.
type Config struct {
	// Workers is the job worker-pool size; <1 selects GOMAXPROCS.
	Workers int
	// QueueCap bounds the admission backlog (queued, not running, jobs);
	// <1 selects 256. A full queue rejects submissions with 503.
	QueueCap int
	// MaxBodyBytes caps a submission body; <1 selects 8 MiB.
	MaxBodyBytes int64
}

// Server is one tscfpd instance. Create with New, mount Handler, call
// Start, and Drain before exit.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	queue   *queue
	store   *store
	metrics *registry

	baseCtx   context.Context
	cancelAll context.CancelFunc

	mu    sync.Mutex
	jobs  map[string]*job
	order []*job // submission order, for listing
	seq   uint64

	draining atomic.Bool
	wg       sync.WaitGroup
	started  atomic.Bool
}

// New builds a Server from cfg. Workers do not run until Start.
func New(cfg Config) *Server {
	if cfg.Workers < 1 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueCap < 1 {
		cfg.QueueCap = 256
	}
	if cfg.MaxBodyBytes < 1 {
		cfg.MaxBodyBytes = 8 << 20
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:       cfg,
		mux:       http.NewServeMux(),
		queue:     newQueue(cfg.QueueCap),
		store:     newStore(),
		jobs:      make(map[string]*job),
		baseCtx:   ctx,
		cancelAll: cancel,
	}
	s.metrics = newRegistry(s.queue.depth, s.store.size)

	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	s.mux.HandleFunc("GET /v1/artifacts/{id}", s.handleArtifact)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	s.mux.HandleFunc("GET /metrics", s.metrics.handler)
	return s
}

// Handler returns the HTTP surface, ready to mount on any http.Server.
func (s *Server) Handler() http.Handler { return s.mux }

// Start launches the worker pool. It is idempotent.
func (s *Server) Start() {
	if !s.started.CompareAndSwap(false, true) {
		return
	}
	s.wg.Add(s.cfg.Workers)
	for i := 0; i < s.cfg.Workers; i++ {
		go s.worker()
	}
}

// Drain is the SIGTERM half of graceful shutdown: readiness flips to 503,
// admission stops (POST /v1/jobs and the queue both reject), and admitted
// work gets timeout to finish. Whatever is still in flight at the deadline
// is cancelled through its per-job context (tscfp.Flow.Run honors it down
// to annealing moves and solver sweeps). Drain returns once every worker
// has exited; the caller still owns http.Server.Shutdown for the listener.
func (s *Server) Drain(timeout time.Duration) {
	s.draining.Store(true)
	s.queue.close()
	if !s.started.Load() {
		s.cancelAll()
		return
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-done:
	case <-timer.C:
		s.cancelAll()
		<-done
	}
	s.cancelAll()
}

// Draining reports whether Drain has begun (mirrors /readyz).
func (s *Server) Draining() bool { return s.draining.Load() }

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j, ok := s.queue.pop()
		if !ok {
			return
		}
		s.run(j)
	}
}

// ---- submission ----

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.metrics.jobRejected()
		w.Header().Set("Retry-After", "10")
		httpError(w, http.StatusServiceUnavailable, "draining: not accepting jobs")
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var req JobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge,
				"body exceeds %d bytes", tooBig.Limit)
			return
		}
		httpError(w, http.StatusBadRequest, "decode job: %v", err)
		return
	}
	design, err := req.normalize()
	if err != nil {
		httpError(w, http.StatusBadRequest, "invalid job: %v", err)
		return
	}
	key, err := contentKey(design, req.Options, req.Sweep)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "hash job: %v", err)
		return
	}

	j := &job{
		priority:  req.Priority,
		req:       req,
		design:    design,
		key:       key,
		events:    newBroadcaster(),
		submitted: time.Now(),
		state:     StateQueued,
	}
	s.mu.Lock()
	s.seq++
	j.seq = s.seq
	j.id = fmt.Sprintf("j-%06d", s.seq)
	s.mu.Unlock()

	// Dedupe at admission: an identical prior submission's artifact serves
	// this one without a run. The job record still exists — with lineage —
	// so the lifecycle API and SSE stream behave uniformly. (Best-effort:
	// two identical jobs racing through admission both run; the store's
	// first-writer-wins put keeps lineage consistent.)
	if art := s.store.hit(key); art != nil {
		now := time.Now()
		j.state = StateDone
		j.started, j.finished = now, now
		j.artifact = art.ID
		j.deduped = true
		j.lineage = art.JobID
		j.events.publish("state", "state", j.status())
		j.events.close()
		s.register(j)
		s.metrics.jobSubmitted(true)
		writeJSON(w, http.StatusOK, j.status())
		return
	}

	j.ctx, j.cancel = context.WithCancel(s.baseCtx)
	s.register(j)
	if err := s.queue.push(j); err != nil {
		s.unregister(j)
		s.metrics.jobRejected()
		w.Header().Set("Retry-After", "10")
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	s.metrics.jobSubmitted(false)
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	writeJSON(w, http.StatusCreated, j.status())
}

func (s *Server) register(j *job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jobs[j.id] = j
	s.order = append(s.order, j)
}

func (s *Server) unregister(j *job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.jobs, j.id)
	for i, o := range s.order {
		if o == j {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
}

func (s *Server) lookup(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// ---- execution ----

func (s *Server) run(j *job) {
	j.mu.Lock()
	if j.state != StateQueued {
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	j.mu.Unlock()
	s.metrics.jobStarted()
	j.events.publish("state", "state", j.status())

	var artifact string
	var err error
	if j.req.Sweep != nil {
		artifact, err = s.runSweep(j)
	} else {
		artifact, err = s.runSingle(j)
	}

	j.mu.Lock()
	j.finished = time.Now()
	switch {
	case err == nil:
		j.state = StateDone
		j.artifact = artifact
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.state = StateCancelled
		j.errMsg = err.Error()
	default:
		j.state = StateFailed
		j.errMsg = err.Error()
	}
	state := j.state
	j.mu.Unlock()
	j.cancel()
	s.metrics.jobFinished(state)
	j.events.publish("state", "state", j.status())
	j.events.close()
}

// runSingle executes one flow and stores its Result under the job's
// content address.
func (s *Server) runSingle(j *job) (string, error) {
	opts, err := j.req.Options.Options()
	if err != nil {
		return "", err
	}
	timer := newStageTimer(s.metrics)
	opts = append(opts, tscfp.WithProgress(func(ev tscfp.Event) {
		timer.observe(ev.Stage)
		j.events.publish("progress", "progress:"+string(ev.Stage), ev)
	}))
	res, err := tscfp.Run(j.ctx, j.design, opts...)
	if err != nil {
		return "", err
	}
	timer.finish()
	data, err := res.JSON()
	if err != nil {
		return "", err
	}
	s.store.put(j.key, data, j.id)
	return j.key, nil
}

// sweepCell is one cell's entry in a sweep manifest and its SSE "cell"
// event payload.
type sweepCell struct {
	Cell     tscfp.Cell `json:"cell"`
	Artifact string     `json:"artifact_id,omitempty"`
	Deduped  bool       `json:"deduped,omitempty"`
	Error    string     `json:"error,omitempty"`
}

// sweepManifest is the artifact a sweep job produces: per-cell artifact
// IDs (each cell's Result is stored individually under the same address an
// equivalent single-run submission would hash to) plus error text for
// failed cells.
type sweepManifest struct {
	Cells []sweepCell `json:"cells"`
}

// runSweep executes a sweep grid via tscfp.Stream, publishing one SSE
// "cell" event per completed cell. If every cell is already in the store
// the whole job dedupes without running; otherwise the full grid runs
// (store puts are idempotent, so previously-stored cells keep their
// original lineage and are flagged Deduped in the manifest).
func (s *Server) runSweep(j *job) (string, error) {
	spec := j.req.Sweep
	grid := tscfp.Grid{
		Design:     j.design,
		Seeds:      spec.Seeds,
		GridNs:     spec.GridNs,
		Iterations: spec.Iterations,
	}
	for _, m := range spec.Modes {
		grid.Modes = append(grid.Modes, tscfp.Mode(m))
	}
	baseOpts, err := j.req.Options.Options()
	if err != nil {
		return "", err
	}
	grid.Options = baseOpts
	cells := grid.Cells()

	keys := make([]string, len(cells))
	outs := make([]sweepCell, len(cells))
	allCached := true
	for i, c := range cells {
		keys[i], err = contentKey(j.design, cellOptions(j.req.Options, c), nil)
		if err != nil {
			return "", err
		}
		outs[i].Cell = c
		if a := s.store.lookup(keys[i]); a != nil {
			outs[i].Artifact = a.ID
			outs[i].Deduped = true
		} else {
			allCached = false
		}
	}

	if !allCached {
		workers := spec.Workers
		if workers < 1 {
			workers = 1
		}
		ch, err := tscfp.Stream(j.ctx, grid, tscfp.WithWorkers(workers))
		if err != nil {
			return "", err
		}
		for sr := range ch {
			i := sr.Cell.Index
			if sr.Err != nil {
				outs[i].Artifact, outs[i].Deduped = "", false
				outs[i].Error = sr.Err.Error()
			} else {
				data, jerr := sr.Result.JSON()
				if jerr != nil {
					outs[i].Error = jerr.Error()
				} else {
					a, existed := s.store.put(keys[i], data, j.id)
					outs[i].Artifact = a.ID
					outs[i].Deduped = existed
					outs[i].Error = ""
				}
			}
			j.events.publish("cell", fmt.Sprintf("cell:%d", i), outs[i])
		}
		if err := j.ctx.Err(); err != nil {
			return "", err
		}
	} else {
		for i := range outs {
			j.events.publish("cell", fmt.Sprintf("cell:%d", i), outs[i])
		}
	}

	for _, o := range outs {
		if o.Error != "" {
			return "", fmt.Errorf("cell %d (seed %d, %s): %s",
				o.Cell.Index, o.Cell.Seed, o.Cell.Mode, o.Error)
		}
	}
	data, err := json.Marshal(sweepManifest{Cells: outs})
	if err != nil {
		return "", err
	}
	s.store.put(j.key, data, j.id)
	return j.key, nil
}

// cellOptions overlays one sweep cell onto the job's base options, mirroring
// tscfp.Cell.Options so the cell's content address equals the address of an
// equivalent single-run submission.
func cellOptions(base tscfp.RunOptions, c tscfp.Cell) tscfp.RunOptions {
	o := base
	o.Seed = c.Seed
	o.Mode = string(c.Mode)
	if c.GridN > 0 {
		o.GridN = c.GridN
	}
	if c.Iterations > 0 {
		o.Iterations = c.Iterations
	}
	return o
}

// ---- lifecycle handlers ----

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	filter := State(r.URL.Query().Get("state"))
	s.mu.Lock()
	jobs := append([]*job(nil), s.order...)
	s.mu.Unlock()
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].seq < jobs[b].seq })
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		st := j.status()
		if filter != "" && st.State != filter {
			continue
		}
		out = append(out, st)
	}
	writeJSON(w, http.StatusOK, struct {
		Jobs []JobStatus `json:"jobs"`
	}{out})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

// handleCancel cancels a job. Idempotent: cancelling a terminal job
// reports its (unchanged) state. A still-queued job is removed from the
// queue and finalized directly; a running one is cancelled through its
// context and finalized by its worker.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	j.mu.Lock()
	terminal := j.state.Terminal()
	j.mu.Unlock()
	if !terminal {
		if removed := s.queue.remove(j.id); removed != nil {
			now := time.Now()
			j.mu.Lock()
			j.state = StateCancelled
			j.finished = now
			j.errMsg = "cancelled before start"
			j.mu.Unlock()
			s.metrics.jobCancelledQueued()
			j.events.publish("state", "state", j.status())
			j.events.close()
		}
		j.cancel()
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "response writer cannot stream")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	write := func(ev sseEvent) {
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.name, ev.data)
		fl.Flush()
	}
	hist, live := j.events.subscribe()
	for _, ev := range hist {
		write(ev)
	}
	if live == nil {
		// Stream already closed; the replay's state event was terminal.
		return
	}
	defer j.events.unsubscribe(live)
	for {
		select {
		case ev, open := <-live:
			if !open {
				// Stream closed while we were attached. Progress delivery is
				// lossy under backpressure, so re-emit the terminal state
				// explicitly rather than trusting the last delivered event.
				data, _ := json.Marshal(j.status())
				write(sseEvent{name: "state", data: data})
				return
			}
			write(ev)
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	st := j.status()
	if st.State != StateDone {
		httpError(w, http.StatusConflict, "job is %s, not done", st.State)
		return
	}
	data, ok := s.store.get(st.ArtifactID)
	if !ok {
		httpError(w, http.StatusNotFound, "artifact %s not in store", st.ArtifactID)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	data, ok := s.store.get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such artifact")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	fmt.Fprintln(w, "ready")
}

// ---- helpers ----

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, struct {
		Error string `json:"error"`
	}{fmt.Sprintf(format, args...)})
}
