package core

import (
	"context"
	"math/rand"

	"repro/internal/anneal"
	"repro/internal/floorplan"
	"repro/internal/netlist"
	"repro/internal/thermal"
)

// runParallelAnneal is the Replicas/Speculation annealing stage: K tempered
// chains, each with M speculative evaluator copies, replacing the serial
// anneal.Run call. It returns the best floorplan across all chains plus the
// merged evaluation stats.
//
// Determinism layout: the flow RNG contributes exactly K+1 draws (one seed
// per replica plus the swap-decision seed) and is then untouched until
// finalize, so the walk inside the replicas — whatever the scheduler does —
// cannot perturb the downstream stages. Each replica derives its initial
// floorplan and its whole move stream from its own seeded RNG, and the
// engine's barrier discipline does the rest: a fixed (Seed, Replicas,
// Speculation) triple gives a byte-identical Result for any GOMAXPROCS.
func runParallelAnneal(ctx context.Context, des *netlist.Design, cfg *Config, rng *rand.Rand, fast *thermal.FastEstimator) (*floorplan.Floorplan, EvalStats, error) {
	k := cfg.Replicas
	if k < 1 {
		k = 1
	}
	m := cfg.Speculation
	if m < 1 {
		m = 1
	}
	seeds := make([]int64, k)
	for r := range seeds {
		seeds[r] = rng.Int63()
	}
	swapSeed := rng.Int63()

	newEval := func(fp *floorplan.Floorplan) *evaluator {
		ev := &evaluator{fp: fp, cfg: cfg, fast: fast, check: cfg.CostCrossCheck}
		if *cfg.IncrementalCost {
			ev.incr = newIncrState()
			ev.voltIncr = *cfg.IncrementalVoltage
			ev.entropyIncr = *cfg.IncrementalEntropy
			ev.adjIncr = *cfg.AdjacencyIndex
			ev.staIncr = *cfg.IncrementalSTA
		}
		return ev
	}

	reps := make([]anneal.Replica, k)
	evs := make([][]*evaluator, k)
	bests := make([]*floorplan.Floorplan, k)
	for r := range reps {
		rrng := rand.New(rand.NewSource(seeds[r]))
		fp := floorplan.NewRandom(des, rrng)
		evs[r] = make([]*evaluator, m)
		probs := make([]anneal.Problem, m)
		for c := range evs[r] {
			if c == 0 {
				evs[r][c] = newEval(fp)
			} else {
				evs[r][c] = newEval(fp.Clone())
			}
			probs[c] = evs[r][c]
		}
		r := r
		reps[r] = anneal.Replica{
			Problems: probs,
			RNG:      rrng,
			OnBest: func(float64) {
				bests[r] = evs[r][0].fp.Clone()
			},
		}
	}

	// Replica costs must be comparable across the ladder (swaps and the
	// best-of pick both compare them), so every evaluator shares one set of
	// normalization baselines instead of deriving its own from its replica's
	// initial packing. A throwaway full-path evaluator computes them once on
	// the same reference floorplan the serial path would have started from
	// (a fresh Seed-derived stream), which puts AnnealBestCost on one scale
	// for every replica/speculation shape at a given seed. normTerms is
	// read-only after this, so the pointer is safe to share across the
	// worker goroutines.
	boot := &evaluator{fp: floorplan.NewRandom(des, rand.New(rand.NewSource(cfg.Seed))), cfg: cfg, fast: fast}
	boot.Cost()
	for r := range evs {
		for _, ev := range evs[r] {
			ev.norm = boot.norm
		}
	}

	pres := anneal.RunParallel(reps, anneal.ParallelOptions{
		Schedule: anneal.Options{Iterations: cfg.SAIterations, Ctx: ctx},
		SwapSeed: swapSeed,
		OnStride: func(done, total int, best float64) {
			cfg.emit(ProgressEvent{Stage: StageAnneal, Done: done, Total: total, Cost: best})
		},
	})

	var stats EvalStats
	addEvalStats(&stats, &boot.stats)
	for r := range evs {
		for _, ev := range evs[r] {
			addEvalStats(&stats, &ev.stats)
		}
	}
	stats.AnnealBestCost = pres.BestCost
	stats.Replicas = k
	stats.ReplicaSwapAttempts = pres.SwapAttempts
	stats.ReplicaSwapAccepts = pres.SwapAccepts
	stats.ReplicaBest = pres.Best
	stats.SpecWorkers = m
	stats.SpecBatches = pres.SpecBatches
	stats.SpecCommits = pres.SpecCommits
	stats.SpecDiscarded = pres.SpecDiscarded

	if err := ctx.Err(); err != nil {
		return nil, stats, err
	}
	best := bests[pres.Best]
	if best == nil {
		best = evs[pres.Best][0].fp
	}
	return best, stats, nil
}

// addEvalStats accumulates src into dst: every effort counter sums, the
// cross-check drift takes the max. The Replica*/Spec* fields are run-level,
// set by runParallelAnneal after merging, and are not touched here.
func addEvalStats(dst, src *EvalStats) {
	dst.Evals += src.Evals
	dst.FullEvals += src.FullEvals
	dst.IncrementalEvals += src.IncrementalEvals
	dst.VoltRefreshes += src.VoltRefreshes
	dst.VoltIncrementalRefreshes += src.VoltIncrementalRefreshes
	dst.VoltCandidatesReused += src.VoltCandidatesReused
	dst.VoltCandidatesRegrown += src.VoltCandidatesRegrown
	dst.VoltCrossChecks += src.VoltCrossChecks
	dst.EntropyPatched += src.EntropyPatched
	dst.EntropyRebuilt += src.EntropyRebuilt
	dst.EntropyCrossChecks += src.EntropyCrossChecks
	dst.AdjFullSweeps += src.AdjFullSweeps
	dst.AdjIncrementalUpdates += src.AdjIncrementalUpdates
	dst.AdjRowsChanged += src.AdjRowsChanged
	dst.AdjCrossChecks += src.AdjCrossChecks
	dst.STAPatches += src.STAPatches
	dst.STARebuilds += src.STARebuilds
	dst.STAModulesRecomputed += src.STAModulesRecomputed
	dst.STACritRescans += src.STACritRescans
	dst.STACrossChecks += src.STACrossChecks
	dst.DiesRepacked += src.DiesRepacked
	dst.DiesReused += src.DiesReused
	dst.NetsRecomputed += src.NetsRecomputed
	dst.NetsReused += src.NetsReused
	dst.ResponsesComputed += src.ResponsesComputed
	dst.ResponsesReused += src.ResponsesReused
	dst.CrossChecks += src.CrossChecks
	if src.MaxCrossCheckError > dst.MaxCrossCheckError {
		dst.MaxCrossCheckError = src.MaxCrossCheckError
	}
	dst.PackMoves += src.PackMoves
	dst.PackDieDiffs += src.PackDieDiffs
	dst.PackEarlyExits += src.PackEarlyExits
	dst.PackReplayedPositions += src.PackReplayedPositions
	dst.PackChangedModules += src.PackChangedModules
	if src.PackChangedHist != nil {
		if dst.PackChangedHist == nil {
			dst.PackChangedHist = make([]int, len(src.PackChangedHist))
		}
		for i, c := range src.PackChangedHist {
			dst.PackChangedHist[i] += c
		}
	}
	dst.STAGateTrips += src.STAGateTrips
	dst.AdjBulkFallbacks += src.AdjBulkFallbacks
}
