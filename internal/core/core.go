// Package core implements the paper's primary contribution: thermal
// side-channel-aware 3D floorplanning (Fig. 3). It orchestrates the
// substrates — floorplan representation and annealing, fast and detailed
// thermal analysis, timing, voltage assignment, TSV planning, leakage
// metrics, activity sampling — into the two experimental setups of Sec. 7:
//
//   - power-aware floorplanning (PA): packing, wirelength, critical delay,
//     peak temperature, and voltage assignment optimized together (the
//     competitive baseline);
//   - TSC-aware floorplanning (TSC): the same criteria plus minimization of
//     the power/thermal correlation (Eq. 1) and the spatial entropy of the
//     power maps (Eq. 3), a TSC-oriented voltage-assignment objective, and
//     the correlation-stability-guided dummy-TSV post-processing of
//     Sec. 6.2.
package core

import (
	"time"

	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/thermal"
	"repro/internal/timing"
	"repro/internal/tsv"
	"repro/internal/volt"
)

// Mode selects the experimental setup.
type Mode int

const (
	// PowerAware is the paper's baseline setup (i).
	PowerAware Mode = iota
	// TSCAware is the paper's proposed setup (ii).
	TSCAware
)

func (m Mode) String() string {
	if m == TSCAware {
		return "TSC-aware"
	}
	return "power-aware"
}

// PostCriterion selects the correlation watched by the dummy-TSV stop rule.
type PostCriterion int

const (
	// BottomDie accepts insertions while |r_1| drops (default; the bottom
	// die is the protectable one).
	BottomDie PostCriterion = iota
	// AllDies accepts insertions while the mean |r_d| over dies drops.
	AllDies
)

// Weights are the multi-objective cost weights. The paper weights all
// criteria equally (Sec. 7); each term is normalized to its initial value
// before weighting, so 1.0 everywhere reproduces that setup.
type Weights struct {
	OutlineViolation float64
	Wirelength       float64
	CriticalDelay    float64
	PeakTemp         float64
	Power            float64
	VoltageVolumes   float64
	Correlation      float64 // TSC-aware only
	SpatialEntropy   float64 // TSC-aware only
	// DesignRule is Corblivar's thermal design rule (Sec. 7.2): the
	// fraction of power placed away from the heatsink-side die is
	// penalized, pushing high-power modules toward the top die. The paper
	// notes that relaxing this rule "prohibitively increases the peak
	// temperatures" — BenchmarkAblationDesignRule reproduces that.
	DesignRule float64
}

// DefaultWeights returns equal weighting, with the leakage terms enabled
// only in TSC mode. Outline violation carries a high weight because it is a
// legality constraint, not a quality trade-off.
func DefaultWeights(mode Mode) Weights {
	w := Weights{
		OutlineViolation: 8,
		Wirelength:       1,
		CriticalDelay:    1,
		PeakTemp:         1,
		Power:            1,
		VoltageVolumes:   0.25,
		DesignRule:       0.5,
	}
	if mode == TSCAware {
		// The leakage terms carry extra weight: the classical criteria
		// already pull toward compact, hot-spot-concentrated layouts, and
		// an equally-weighted correlation term cannot overcome that pull at
		// our (much smaller than the paper's) annealing budgets.
		w.Correlation = 3
		w.SpatialEntropy = 1.5
	}
	return w
}

// Config tunes one floorplanning run.
type Config struct {
	Mode Mode
	// GridN is the lateral resolution of the thermal and leakage grids.
	// Default 32.
	GridN int
	// SAIterations is the annealing budget. Default 3000.
	SAIterations int
	// VoltEvery re-runs voltage assignment every k-th accepted evaluation
	// (the paper integrates it continuously; the stride keeps runtime at
	// the reported ~30% overhead). Default 10.
	VoltEvery int
	// ActivitySamples is m of Eq. 2; the paper uses 100. Default 100.
	ActivitySamples int
	// ActivitySigma is the relative power sigma; the paper uses 0.10.
	ActivitySigma float64
	// PostProcess enables the dummy-TSV insertion stage (TSC mode).
	// Nil defaults to true in TSC mode, false in PA mode.
	PostProcess *bool
	// MaxDummyGroups bounds post-processing insertions. Default 64.
	MaxDummyGroups int
	// DummyViasPerGroup is the island size of each inserted dummy group.
	// Default 8.
	DummyViasPerGroup int
	// PostCriterion selects which correlation the dummy-TSV stop rule
	// watches. The paper tracks "the resulting average correlation" and
	// separately suggests focusing on critical regions; the bottom die is
	// the one the flow can actually protect (Sec. 7.2 explains why the top
	// die is structurally compromised by the heatsink design rule), so
	// BottomDie is the default.
	PostCriterion PostCriterion
	// ProtectModules, when non-empty, switches the post-processing stage
	// to the paper's Sec. 7.1 adaptation: dummy TSVs target only the bins
	// covered by these (security-critical) modules, the stop rule watches
	// the correlation over those bins, and "more stable correlations
	// elsewhere" are accepted. Module indices into Design.Modules.
	ProtectModules []int
	// Weights override; zero value selects DefaultWeights(Mode).
	Weights *Weights
	// Seed drives all stochastic stages.
	Seed int64
	// TimingParams override; zero value selects timing.DefaultParams().
	TimingParams *timing.Params
	// VoltTargetFactor relaxes the timing target for voltage assignment.
	// Default 1.15.
	VoltTargetFactor float64
	// Parallelism bounds the worker goroutines fanned out by the detailed
	// thermal solver's red-black SOR sweeps and the fast estimator's
	// separable convolutions. 0 selects GOMAXPROCS; 1 forces the serial
	// path. Results are byte-identical for every setting.
	Parallelism int
	// Replicas runs K tempered annealing chains (parallel tempering): each
	// replica anneals on its own RNG stream at its rung of a geometric
	// temperature ladder, neighbours periodically swap temperatures by the
	// Metropolis criterion, and the best replica's floorplan feeds the rest
	// of the flow. 0 and 1 select the single-chain serial path, which is
	// bit-identical to pre-replica releases at a fixed seed. K >= 2 is its
	// own deterministic contract: a fixed (Seed, Replicas, Speculation)
	// triple yields a byte-identical Result for any GOMAXPROCS, but the
	// result differs from the serial walk.
	Replicas int
	// Speculation evaluates M candidate moves per annealing step
	// concurrently, each on its own evaluator copy, and commits the first
	// acceptance in candidate order. 0 and 1 select the serial move loop.
	// Like Replicas, M >= 2 keeps the GOMAXPROCS-independence guarantee but
	// is a different (still deterministic) walk than serial.
	Speculation int
	// IncrementalCost selects the caching annealing-loop evaluator that
	// repacks only moved dies and patches per-net and per-die cost state
	// (incremental.go). Nil defaults to true; the full-recompute path is
	// kept for debugging and as the cross-check reference.
	IncrementalCost *bool
	// IncrementalVoltage selects the incremental voltage-volume refresh:
	// the annealing loop holds a volt.Assigner that caches per-module
	// feasible-level masks, adjacency lists, and per-root candidate trees,
	// and each stride refresh regrows only the trees whose inputs changed
	// since the previous refresh (the dirty set comes from the move
	// journal). Nil defaults to true. Only effective together with
	// IncrementalCost — the full-recompute evaluator has no move journal to
	// derive dirtiness from, so it always runs the full volt.Assign.
	IncrementalVoltage *bool
	// IncrementalEntropy selects the incremental spatial-entropy refresh
	// (TSC mode): each die holds a leakage.EntropyCache that patches the
	// nested-means classification and the per-class Manhattan terms from
	// the power-map diff instead of recomputing Eq. 3 from scratch on every
	// dirty die. Nil defaults to true. Only effective together with
	// IncrementalCost (the full-recompute evaluator has no patched maps to
	// diff against).
	IncrementalEntropy *bool
	// AdjacencyIndex selects the churn-tolerant adjacency structure inside
	// the incremental voltage engine: a floorplan.AdjacencyIndex patched
	// per refresh from the move journal's dirty set, replacing the full
	// adjacency re-sweep and all-rows diff. Nil defaults to true. Only
	// effective together with IncrementalVoltage.
	AdjacencyIndex *bool
	// IncrementalSTA selects the incremental static-timing engine: the
	// annealing loop holds two timing.STACache instances (the reference
	// analysis feeding voltage refreshes and the delay-scaled one feeding
	// the critical-delay cost term) that patch Arrive/Depart/Critical from
	// each move's refreshed nets instead of re-running two full STA passes
	// per evaluation, with journaled undo for rejected moves. Nil defaults
	// to true. Only effective together with IncrementalCost — the caches
	// are patched from its move journal's net list.
	IncrementalSTA *bool
	// CostCrossCheck re-evaluates every annealing move through the full
	// recompute path and panics if the incremental cost drifts beyond
	// 1e-9 (relative); with IncrementalVoltage it additionally pins every
	// incremental voltage refresh against a fresh full volt.Assign
	// (identical volumes, TotalPower within 1e-9), with AdjacencyIndex the
	// cached adjacency rows against a fresh sweep (exact equality), with
	// IncrementalEntropy every patched per-die entropy against a
	// from-scratch leakage.SpatialEntropy (1e-9 relative), and with
	// IncrementalSTA both cached analyses (Critical, Arrive, Depart,
	// ModuleDelay, NetDelay) against a full AnalyzeFromNetDelays pass at
	// 1e-9 on every evaluation. Debug aid: it forfeits the entire speedup.
	CostCrossCheck bool
	// Progress, when non-nil, receives per-stage events as the flow
	// advances. The callback runs synchronously on the flow goroutine and
	// must be cheap; it must not retain the event past the call.
	Progress func(ProgressEvent)
}

// Stage identifies one phase of the flow (Fig. 3) in progress events.
type Stage string

const (
	// StageAnneal is the simulated-annealing floorplanning search.
	StageAnneal Stage = "anneal"
	// StageFinalize covers TSV planning, voltage assignment, and the
	// detailed thermal verification.
	StageFinalize Stage = "finalize"
	// StageSampling is the activity-sampling loop of the post-processing
	// stage (Eq. 2 inputs).
	StageSampling Stage = "sampling"
	// StagePostProcess is the iterative dummy-TSV insertion (Sec. 6.2).
	StagePostProcess Stage = "post-process"
	// StageDone fires once, after metrics are final.
	StageDone Stage = "done"
)

// ProgressEvent is one progress update. Done/Total count stage-local units
// (annealing moves, activity samples, dummy groups); Total is 0 when the
// stage has no meaningful denominator. Cost carries the best annealing cost
// seen so far during StageAnneal and the watched correlation during
// StagePostProcess; it is 0 elsewhere.
type ProgressEvent struct {
	Stage Stage
	Done  int
	Total int
	Cost  float64
}

func (c *Config) defaults() {
	if c.GridN == 0 {
		c.GridN = 32
	}
	if c.SAIterations == 0 {
		c.SAIterations = 3000
	}
	if c.VoltEvery == 0 {
		c.VoltEvery = 10
	}
	if c.ActivitySamples == 0 {
		c.ActivitySamples = 100
	}
	if c.ActivitySigma == 0 {
		c.ActivitySigma = 0.10
	}
	if c.PostProcess == nil {
		pp := c.Mode == TSCAware
		c.PostProcess = &pp
	}
	if c.MaxDummyGroups == 0 {
		c.MaxDummyGroups = 64
	}
	if c.DummyViasPerGroup == 0 {
		c.DummyViasPerGroup = 8
	}
	if c.Weights == nil {
		w := DefaultWeights(c.Mode)
		c.Weights = &w
	}
	if c.TimingParams == nil {
		tp := timing.DefaultParams()
		c.TimingParams = &tp
	}
	if c.VoltTargetFactor == 0 {
		c.VoltTargetFactor = 1.15
	}
	if c.IncrementalCost == nil {
		inc := true
		c.IncrementalCost = &inc
	}
	if c.IncrementalVoltage == nil {
		inc := true
		c.IncrementalVoltage = &inc
	}
	if c.IncrementalEntropy == nil {
		inc := true
		c.IncrementalEntropy = &inc
	}
	if c.AdjacencyIndex == nil {
		inc := true
		c.AdjacencyIndex = &inc
	}
	if c.IncrementalSTA == nil {
		inc := true
		c.IncrementalSTA = &inc
	}
	// Replica/speculation workers are the annealing loop's own use of the
	// cores; defaulting the thermal fan-out to serial inside each worker
	// avoids oversubscribing GOMAXPROCS with nested pools. An explicit
	// Parallelism still wins.
	if (c.Replicas > 1 || c.Speculation > 1) && c.Parallelism == 0 {
		c.Parallelism = 1
	}
}

// EvalStats reports the annealing-loop evaluation effort: how many cost
// evaluations ran, how much work the incremental caches avoided, and how far
// the optional cross-check saw the incremental cost drift from the full
// recompute (0 unless Config.CostCrossCheck was set).
type EvalStats struct {
	// Evals counts cost evaluations; FullEvals of those rebuilt every term
	// from scratch, IncrementalEvals served from the caches.
	Evals            int
	FullEvals        int
	IncrementalEvals int
	// VoltRefreshes counts voltage-assignment re-runs (the VoltEvery
	// stride); VoltIncrementalRefreshes of those were served by the cached
	// volt.Assigner instead of a from-scratch volt.Assign.
	VoltRefreshes            int
	VoltIncrementalRefreshes int
	// VoltCandidatesReused/VoltCandidatesRegrown count the Assigner's cached
	// per-root candidate trees served as-is vs regrown because a module's
	// adjacency or feasible-level mask changed.
	VoltCandidatesReused  int
	VoltCandidatesRegrown int
	// VoltCrossChecks counts incremental-vs-full voltage-assignment
	// comparisons (0 unless Config.CostCrossCheck was set).
	VoltCrossChecks int
	// EntropyPatched/EntropyRebuilt count per-die spatial-entropy refreshes
	// served by patching the entropy cache vs rebuilt from scratch (first
	// use, voltage-scale changes, wholesale map changes);
	// EntropyCrossChecks counts patched-vs-full comparisons (0 unless
	// Config.CostCrossCheck was set).
	EntropyPatched     int
	EntropyRebuilt     int
	EntropyCrossChecks int
	// AdjFullSweeps counts full adjacency re-sweeps inside the voltage
	// engine (rebuilds, refreshes with the index disabled, and index
	// updates that fell back to the bulk sweep-plus-diff path at high
	// churn); AdjIncrementalUpdates counts stride refreshes served by the
	// index's per-module probes. The index paths together reported
	// AdjRowsChanged changed neighbour rows. AdjCrossChecks counts
	// index-vs-sweep row comparisons (0 unless Config.CostCrossCheck was
	// set).
	AdjFullSweeps         int
	AdjIncrementalUpdates int
	AdjRowsChanged        int
	AdjCrossChecks        int
	// STAPatches counts per-move incremental patches applied across the two
	// timing caches (reference + delay-scaled); STARebuilds their full STA
	// passes (first use, voltage-scale changes, invalidations).
	// STAModulesRecomputed totals the per-patch Arrive/Depart module
	// recomputes (the caches' actual work, vs nModules per full pass) and
	// STACritRescans the patches that re-derived the critical max with a
	// flat scan because a module attaining it decreased. STACrossChecks
	// counts cached-vs-full analysis comparisons (0 unless
	// Config.CostCrossCheck was set).
	STAPatches           int
	STARebuilds          int
	STAModulesRecomputed int
	STACritRescans       int
	STACrossChecks       int
	// DiesRepacked/DiesReused count per-die skyline packings run vs skipped.
	DiesRepacked int
	DiesReused   int
	// NetsRecomputed/NetsReused count per-net wirelength+Elmore refreshes
	// run vs served from cache.
	NetsRecomputed int
	NetsReused     int
	// ResponsesComputed/ResponsesReused count per-source-die thermal blur
	// responses run vs served from cache.
	ResponsesComputed int
	ResponsesReused   int
	// CrossChecks counts full-recompute comparisons; MaxCrossCheckError is
	// the largest |incremental - full| cost difference they observed.
	CrossChecks        int
	MaxCrossCheckError float64
	// Replicas records the tempered-chain count when the parallel annealer
	// ran (0 on the serial path); ReplicaSwapAttempts/ReplicaSwapAccepts
	// count the Metropolis temperature-swap decisions across the ladder and
	// ReplicaBest is the index of the chain that produced the final
	// floorplan.
	Replicas            int
	ReplicaSwapAttempts int
	ReplicaSwapAccepts  int
	ReplicaBest         int
	// AnnealBestCost is the best (normalized, weighted) annealing cost the
	// search reached — the quality the replica ladder buys. It is a core
	// diagnostic only: the tscfp wire schema does not carry it, so serial
	// result encodings are unchanged.
	AnnealBestCost float64
	// SpecWorkers records the speculative-evaluation width M whenever the
	// parallel annealer ran (1 for a replica-only run, 0 on the serial path);
	// SpecBatches counts candidate batches evaluated, SpecCommits the
	// batches that committed an acceptance, and SpecDiscarded the candidate
	// evaluations thrown away (losers of a committed batch plus all
	// candidates of batches with no acceptance).
	SpecWorkers   int
	SpecBatches   int
	SpecCommits   int
	SpecDiscarded int
	// PackMoves counts moves applied through the diff-producing repack
	// (PackDieFromDiff); PackDieDiffs the per-die diffs they ran (a move
	// touches one or two dies); PackEarlyExits the diffs that stopped early
	// because the resumed skyline re-converged with the pre-move snapshot;
	// PackReplayedPositions the sequence positions actually replayed (vs
	// whole-suffix under the old pessimistic contract); and
	// PackChangedModules the modules whose placement actually changed —
	// the exact churn every downstream engine gate now sees.
	PackMoves             int
	PackDieDiffs          int
	PackEarlyExits        int
	PackReplayedPositions int
	PackChangedModules    int
	// PackChangedHist is a per-move histogram of exact changed-set sizes:
	// bucket i counts moves that changed i modules, with the last bucket
	// absorbing everything >= len-1. Percentiles via PackChangedPercentile.
	PackChangedHist []int
	// STAGateTrips counts moves whose changed-net count exceeded the STA
	// patch budget (~nNets/16), dropping the timing caches to the lazy
	// full-rebuild path; AdjBulkFallbacks counts adjacency-index updates
	// that fell back to the bulk sweep (> n/8 moved modules). Both are the
	// churn-gate trips the exact changed-placement contract is meant to
	// keep at zero for single-module moves.
	STAGateTrips     int
	AdjBulkFallbacks int
}

// packHistBuckets bounds the changed-set-size histogram; ibm01-class moves
// stay far below it, and anything larger lands in the overflow bucket.
const packHistBuckets = 512

// recordPackChanged tallies one move's exact changed-set size.
func (s *EvalStats) recordPackChanged(n int) {
	if s.PackChangedHist == nil {
		s.PackChangedHist = make([]int, packHistBuckets)
	}
	if n >= len(s.PackChangedHist) {
		n = len(s.PackChangedHist) - 1
	}
	s.PackChangedHist[n]++
	s.PackChangedModules += n
}

// PackChangedPercentile returns the p-quantile (p in [0,1]) of the per-move
// changed-set sizes from the histogram: the smallest size s such that at
// least p of the moves changed <= s modules. Sizes in the overflow bucket
// report as packHistBuckets-1. Returns 0 when no moves were recorded.
func (s *EvalStats) PackChangedPercentile(p float64) int {
	total := 0
	for _, c := range s.PackChangedHist {
		total += c
	}
	if total == 0 {
		return 0
	}
	want := p * float64(total)
	cum := 0
	for sz, c := range s.PackChangedHist {
		cum += c
		if float64(cum) >= want {
			return sz
		}
	}
	return len(s.PackChangedHist) - 1
}

// DieMetrics bundles the per-die leakage measurements.
type DieMetrics struct {
	// R is the power-temperature correlation (Eq. 1, detailed analysis).
	R float64
	// S is the spatial entropy of the power map (Eq. 3).
	S float64
	// SVF is the side-channel vulnerability factor over the activity
	// samples (0 when post-processing is disabled).
	SVF float64
	// MeanStability is the mean absolute per-bin stability (Eq. 2).
	MeanStability float64
}

// Metrics mirrors one column pair of the paper's Table 2.
type Metrics struct {
	// PerDie holds the leakage metrics for every die, bottom (0) to top.
	PerDie []DieMetrics

	// Leakage metrics for the bottom and top die (Eq. 1 and Eq. 3),
	// verified with the detailed thermal analysis — aliases of
	// PerDie[0] and PerDie[len-1] kept for the two-die Table 2 shape.
	S1, S2 float64 // spatial entropies, bottom/top die
	R1, R2 float64 // correlation coefficients, bottom/top die

	// Design cost.
	PowerW         float64
	CriticalNS     float64
	WirelengthM    float64
	PeakTempK      float64
	SignalTSVs     int
	DummyTSVs      int
	VoltageVolumes int
	RuntimeSec     float64

	// PostCorrelationBefore/After record the dummy-TSV stage's effect on
	// the watched correlation (Fig. 4: 0.461 -> 0.324 on n100; with
	// ProtectModules set, the masked correlation over the protected bins).
	PostCorrelationBefore float64
	PostCorrelationAfter  float64

	// SVF1, SVF2 are the side-channel vulnerability factors per die
	// (Demme et al., the metric the paper grounds Eq. 1 in), measured over
	// the post-processing activity samples. Zero when post-processing is
	// disabled.
	SVF1, SVF2 float64
	// MeanStability1, MeanStability2 are the mean absolute per-bin
	// correlation stabilities (Eq. 2) per die over the same samples.
	MeanStability1, MeanStability2 float64
}

// Result is a completed floorplanning run.
type Result struct {
	Design     *netlist.Design
	Layout     *floorplan.Layout
	TSVs       *tsv.Plan
	Assignment *volt.Assignment
	Metrics    Metrics

	// PowerMaps and TempMaps are the final nominal per-die maps (detailed
	// analysis, voltage-scaled powers, all TSVs applied).
	PowerMaps []*geom.Grid
	TempMaps  []*geom.Grid

	// Stack is the solved detailed thermal model (reusable by attacks).
	Stack *thermal.Stack

	// EvalStats reports the annealing-loop evaluation effort, including how
	// much work the incremental caches avoided.
	EvalStats EvalStats
	// SolverStats reports the detailed verification solve of the finalize
	// stage (post-processing solves are not included).
	SolverStats thermal.Stats

	started time.Time
}
