package core

import (
	"context"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/bench"
)

// parCfg is fastCfg with the parallel-anneal knobs set.
func parCfg(mode Mode, seed int64, replicas, speculation int) Config {
	cfg := fastCfg(mode, seed)
	cfg.Replicas = replicas
	cfg.Speculation = speculation
	return cfg
}

// stripRuntime zeroes the wall-clock field so results can be compared.
func stripRuntime(res *Result) Metrics {
	m := res.Metrics
	m.RuntimeSec = 0
	return m
}

// TestRunReplicasOneIsSerial pins the flow-identity half of the determinism
// contract at the config level: Replicas=1 / Speculation=1 must route
// through the serial annealing path and reproduce the plain config's run
// byte-for-byte (the golden fixtures pin the same property end to end).
func TestRunReplicasOneIsSerial(t *testing.T) {
	des := bench.MustGenerate("n100")
	serial, err := Run(des, fastCfg(TSCAware, 7))
	if err != nil {
		t.Fatal(err)
	}
	cfg := parCfg(TSCAware, 7, 1, 1)
	one, err := Run(des, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripRuntime(serial), stripRuntime(one)) {
		t.Fatal("Replicas=1/Speculation=1 diverged from the serial flow")
	}
	if !reflect.DeepEqual(one.EvalStats, serial.EvalStats) {
		t.Fatalf("eval stats diverged:\n got %+v\nwant %+v", one.EvalStats, serial.EvalStats)
	}
	if one.EvalStats.Replicas != 0 || one.EvalStats.SpecWorkers != 0 {
		t.Fatal("serial path must not report parallel-anneal stats")
	}
}

// TestRunReplicasDeterministicAcrossGOMAXPROCS is the flow half of the
// determinism contract: a fixed (Seed, Replicas, Speculation) triple must
// yield identical metrics, stats, and layout for any GOMAXPROCS. The -cpu
// 1,4,8 runs in CI cover the same property via the golden-fixture test; this
// pins it in-process either way.
func TestRunReplicasDeterministicAcrossGOMAXPROCS(t *testing.T) {
	des := bench.MustGenerate("n100")
	run := func() *Result {
		res, err := Run(des, parCfg(TSCAware, 11, 3, 2))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	var ref *Result
	for _, procs := range []int{1, 4} {
		old := runtime.GOMAXPROCS(procs)
		res := run()
		runtime.GOMAXPROCS(old)
		if ref == nil {
			ref = res
			continue
		}
		if !reflect.DeepEqual(stripRuntime(ref), stripRuntime(res)) {
			t.Fatalf("GOMAXPROCS=%d: metrics diverged", procs)
		}
		if !reflect.DeepEqual(ref.EvalStats, res.EvalStats) {
			t.Fatalf("GOMAXPROCS=%d: eval stats diverged:\n got %+v\nwant %+v",
				procs, res.EvalStats, ref.EvalStats)
		}
		if !reflect.DeepEqual(ref.Layout.Rects, res.Layout.Rects) ||
			!reflect.DeepEqual(ref.Layout.DieOf, res.Layout.DieOf) {
			t.Fatalf("GOMAXPROCS=%d: layout diverged", procs)
		}
	}
}

// TestRunReplicasReportsStats checks the replica/speculation bookkeeping on
// a tempered run and that the result passes the full validity bar.
func TestRunReplicasReportsStats(t *testing.T) {
	des := bench.MustGenerate("n100")
	res, err := Run(des, parCfg(TSCAware, 5, 3, 2))
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res)
	s := res.EvalStats
	if s.Replicas != 3 || s.SpecWorkers != 2 {
		t.Fatalf("shape not recorded: Replicas=%d SpecWorkers=%d", s.Replicas, s.SpecWorkers)
	}
	if s.ReplicaSwapAttempts == 0 {
		t.Fatal("no temperature swaps attempted over a 3-replica run")
	}
	if s.ReplicaSwapAccepts > s.ReplicaSwapAttempts {
		t.Fatalf("swap accepts %d exceed attempts %d", s.ReplicaSwapAccepts, s.ReplicaSwapAttempts)
	}
	if s.ReplicaBest < 0 || s.ReplicaBest >= 3 {
		t.Fatalf("best replica index %d out of range", s.ReplicaBest)
	}
	if s.SpecBatches == 0 || s.SpecCommits == 0 {
		t.Fatalf("speculation did no work: %+v", s)
	}
	// 3 replicas x 2 copies plus the normalization bootstrap all evaluate.
	if s.Evals <= 150 {
		t.Fatalf("only %d evals across a 3x2 fleet with a 150-move budget", s.Evals)
	}
}

// TestRunReplicasCrossCheck runs -check-cost inside every replica: each of
// the K x M evaluators carries its own incremental caches and each is pinned
// against the full recompute on every move. The regime (3 replicas, 150
// iterations) is long enough that speculative batches reject candidates
// folded with a pending committed-winner replay — the path where a dropped
// pending move used to leave the cached layout stale on the loser copies.
func TestRunReplicasCrossCheck(t *testing.T) {
	des := bench.MustGenerate("n100")
	cfg := parCfg(TSCAware, 9, 3, 2)
	cfg.SAIterations = 150
	cfg.CostCrossCheck = true
	res, err := Run(des, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := res.EvalStats
	if s.CrossChecks == 0 {
		t.Fatal("cross-check did not run inside the replicas")
	}
	if s.MaxCrossCheckError > 1e-9 {
		t.Fatalf("incremental cost drifted %g inside a replica", s.MaxCrossCheckError)
	}
}

// TestRunReplicasCancellation cancels mid-anneal via the progress callback
// and expects the flow to return the context error with no partial result.
func TestRunReplicasCancellation(t *testing.T) {
	des := bench.MustGenerate("n100")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := parCfg(TSCAware, 3, 2, 1)
	cfg.SAIterations = 100000
	cfg.Progress = func(ev ProgressEvent) {
		if ev.Stage == StageAnneal && ev.Done > 0 {
			cancel()
		}
	}
	res, err := RunContext(ctx, des, cfg)
	if err == nil {
		t.Fatal("cancelled parallel run returned no error")
	}
	if res != nil {
		t.Fatal("cancelled run must not return a partial result")
	}
}

// TestConfigParallelismDefaultsSerialUnderReplicas pins the oversubscription
// rule: replica/speculation runs default the nested thermal fan-out to the
// serial path unless Parallelism is set explicitly.
func TestConfigParallelismDefaultsSerialUnderReplicas(t *testing.T) {
	cfg := Config{Replicas: 4}
	cfg.defaults()
	if cfg.Parallelism != 1 {
		t.Fatalf("Replicas>1 left Parallelism=%d, want the serial default", cfg.Parallelism)
	}
	cfg = Config{Speculation: 2}
	cfg.defaults()
	if cfg.Parallelism != 1 {
		t.Fatalf("Speculation>1 left Parallelism=%d, want the serial default", cfg.Parallelism)
	}
	cfg = Config{Replicas: 4, Parallelism: 3}
	cfg.defaults()
	if cfg.Parallelism != 3 {
		t.Fatal("explicit Parallelism must win over the replica default")
	}
	cfg = Config{}
	cfg.defaults()
	if cfg.Parallelism != 0 {
		t.Fatal("serial runs must keep the GOMAXPROCS thermal fan-out")
	}
}
