package core

import (
	"context"
	"math"
	"math/rand"

	"repro/internal/activity"
	"repro/internal/geom"
	"repro/internal/leakage"
	"repro/internal/thermal"
)

// postProcess runs the Sec. 6.2 stage on a finalized result: sample
// Gaussian-distributed activities, evaluate the steady-state temperatures
// for each, build the per-bin correlation-stability map (Eq. 2), and insert
// dummy thermal-TSV groups at the most stable bins as long as the watched
// correlation keeps dropping — the paper's "sweet spot" stop criterion.
//
// With Config.ProtectModules set, the stage runs the paper's Sec. 7.1
// adaptation instead: only bins covered by the protected modules are
// targeted and watched, and collateral stabilization elsewhere is accepted.
func postProcess(ctx context.Context, res *Result, cfg *Config, rng *rand.Rand, nominal *thermal.Solution) error {
	l := res.Layout
	stack := res.Stack
	n := cfg.GridN

	// --- Activity sampling (Eq. 2 inputs) --------------------------------
	powers := scaledPowers(l, res.Assignment.PowerScale)
	sampler := activity.NewSamplerFromPowers(powers, cfg.ActivitySigma)
	mSamples := cfg.ActivitySamples
	powerSamples := make([][]*geom.Grid, l.Dies) // [die][sample]
	tempSamples := make([][]*geom.Grid, l.Dies)
	for d := 0; d < l.Dies; d++ {
		powerSamples[d] = make([]*geom.Grid, mSamples)
		tempSamples[d] = make([]*geom.Grid, mSamples)
	}
	warm := nominal
	cfg.emit(ProgressEvent{Stage: StageSampling, Total: mSamples})
	for k := 0; k < mSamples; k++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		p := sampler.Sample(rng)
		for d := 0; d < l.Dies; d++ {
			pm := l.PowerMap(d, n, n, p)
			powerSamples[d][k] = pm
			stack.SetDiePower(d, pm)
		}
		sol, _ := stack.SolveSteady(warm, thermal.SolverOpts{Tol: 1e-4, Ctx: ctx, Workers: cfg.Parallelism})
		warm = sol
		for d := 0; d < l.Dies; d++ {
			tempSamples[d][k] = sol.DieTemp(d)
		}
		cfg.emit(ProgressEvent{Stage: StageSampling, Done: k + 1, Total: mSamples})
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	// Restore nominal power maps.
	for d := 0; d < l.Dies; d++ {
		stack.SetDiePower(d, res.PowerMaps[d])
	}

	// Sampled leakage metrics: SVF and mean stability per die.
	stab := make([]*geom.Grid, l.Dies)
	for d := 0; d < l.Dies; d++ {
		stab[d] = leakage.StabilityMap(powerSamples[d], tempSamples[d])
		res.Metrics.PerDie[d].SVF = leakage.SVF(powerSamples[d], tempSamples[d])
		res.Metrics.PerDie[d].MeanStability = leakage.MeanAbsStability(stab[d])
	}
	syncDieAliases(&res.Metrics)

	// Protection masks: nil = whole-die scope; otherwise the bins covered
	// by the protected modules, per die.
	masks := protectionMasks(res, cfg)

	// Stability map guiding insertion.
	combined := geom.NewGrid(n, n)
	switch {
	case masks != nil:
		for d := 0; d < l.Dies; d++ {
			if masks[d] == nil {
				continue
			}
			for i, v := range stab[d].Data {
				if masks[d][i] {
					combined.Data[i] += math.Abs(v)
				}
			}
		}
	case cfg.PostCriterion == BottomDie:
		for i, v := range stab[0].Data {
			combined.Data[i] = math.Abs(v)
		}
	default:
		for d := 0; d < l.Dies; d++ {
			for i, v := range stab[d].Data {
				combined.Data[i] += math.Abs(v) / float64(l.Dies)
			}
		}
	}

	// --- Iterative dummy-TSV insertion -----------------------------------
	watched := func(sol *thermal.Solution) float64 {
		if masks != nil {
			s, c := 0.0, 0
			for d := 0; d < l.Dies; d++ {
				if masks[d] == nil {
					continue
				}
				s += math.Abs(leakage.MaskedPearson(res.PowerMaps[d], sol.DieTemp(d), masks[d]))
				c++
			}
			if c == 0 {
				return 0
			}
			return s / float64(c)
		}
		if cfg.PostCriterion == BottomDie {
			return math.Abs(leakage.Pearson(res.PowerMaps[0], sol.DieTemp(0)))
		}
		s := 0.0
		for d := 0; d < l.Dies; d++ {
			s += math.Abs(leakage.Pearson(res.PowerMaps[d], sol.DieTemp(d)))
		}
		return s / float64(l.Dies)
	}
	cur := watched(nominal)
	res.Metrics.PostCorrelationBefore = cur
	cfg.emit(ProgressEvent{Stage: StagePostProcess, Total: cfg.MaxDummyGroups, Cost: cur})

	// Insertions proceed most-stable-bin first while the watched correlation
	// keeps dropping. A rejected bin is reverted and skipped; after
	// `patience` consecutive rejections we are past the paper's "sweet
	// spot" and stop.
	const patience = 5
	used := make([]bool, n*n)
	outline := l.Outline()
	warmSol := nominal
	rejected := 0
	for g := 0; g < cfg.MaxDummyGroups && rejected < patience; g++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		bi, bj, val := leakage.MostStableBin(combined, used)
		if val <= 0 {
			break
		}
		used[bj*n+bi] = true
		candidate := res.TSVs.Clone()
		pos := res.PowerMaps[0].CellCenter(outline, bi, bj)
		if cfg.PostCriterion == BottomDie && masks == nil {
			// Protect the bottom die: its escape path crosses gap 0.
			candidate.AddDummyGap(0, pos, cfg.DummyViasPerGroup)
		} else {
			// Whole-stack (or protected-region) scope: pipe heat through
			// every gap under the stable bin.
			for g := 0; g < stack.Gaps(); g++ {
				candidate.AddDummyGap(g, pos, cfg.DummyViasPerGroup)
			}
		}
		applyTSVs(stack, candidate, n)
		sol, _ := stack.SolveSteady(warmSol, thermal.SolverOpts{Tol: 1e-5, Ctx: ctx, Workers: cfg.Parallelism})
		if err := ctx.Err(); err != nil {
			return err
		}
		if c := watched(sol); c < cur {
			cur = c
			res.TSVs = candidate
			warmSol = sol
			rejected = 0
		} else {
			applyTSVs(stack, res.TSVs, n)
			rejected++
		}
		cfg.emit(ProgressEvent{Stage: StagePostProcess, Done: g + 1, Total: cfg.MaxDummyGroups, Cost: cur})
	}

	// Refresh the final maps and metrics with the accepted TSV set.
	finalSol, _ := stack.SolveSteady(warmSol, thermal.SolverOpts{Workers: cfg.Parallelism})
	for d := 0; d < l.Dies; d++ {
		res.TempMaps[d] = finalSol.DieTemp(d)
	}
	for d := 0; d < l.Dies; d++ {
		res.Metrics.PerDie[d].R = leakage.Pearson(res.PowerMaps[d], res.TempMaps[d])
	}
	syncDieAliases(&res.Metrics)
	res.Metrics.PeakTempK = finalSol.Peak()
	res.Metrics.PostCorrelationAfter = cur
	return nil
}

// protectionMasks rasterizes the protected modules' footprints into per-die
// bin masks. Returns nil when no protection is configured; individual dies
// without protected modules get nil masks.
func protectionMasks(res *Result, cfg *Config) [][]bool {
	if len(cfg.ProtectModules) == 0 {
		return nil
	}
	l := res.Layout
	n := cfg.GridN
	masks := make([][]bool, l.Dies)
	outline := l.Outline()
	ref := geom.NewGrid(n, n)
	for _, mi := range cfg.ProtectModules {
		if mi < 0 || mi >= len(l.Rects) {
			continue
		}
		d := l.DieOf[mi]
		if masks[d] == nil {
			masks[d] = make([]bool, n*n)
		}
		r := l.Rects[mi]
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				cell := geom.Rect{
					X: outline.X + float64(i)*outline.W/float64(n),
					Y: outline.Y + float64(j)*outline.H/float64(n),
					W: outline.W / float64(n),
					H: outline.H / float64(n),
				}
				if r.OverlapArea(cell) > 0 {
					masks[d][j*n+i] = true
				}
			}
		}
	}
	_ = ref
	return masks
}
