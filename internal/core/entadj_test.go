package core

import (
	"math/rand"
	"testing"

	"repro/internal/bench"
)

// TestIncrementalEntropyAdjacencyCrossCheckOverJournaledRun is the
// acceptance contract for the entropy cache and the adjacency index: a
// journaled 1k-move perturb/cost/undo run with the cross-check enabled must
// see every patched per-die entropy within 1e-9 of a from-scratch
// SpatialEntropy and every adjacency-index row set exactly equal to a fresh
// sweep (the evaluator panics otherwise), while the incremental cost stays
// within its own 1e-9 contract. Interleaved undos exercise the
// refresh-during-rejected-move path for both caches — the entropy cache
// re-converging against restored map bytes, the index against the
// re-derived volt dirty set.
func TestIncrementalEntropyAdjacencyCrossCheckOverJournaledRun(t *testing.T) {
	ev := makeEval(t, TSCAware, true, 51)
	if !ev.entropyIncr || !ev.adjIncr {
		t.Fatal("incremental entropy/adjacency not active under default config")
	}
	ev.check = true
	rng := rand.New(rand.NewSource(13))
	dec := rand.New(rand.NewSource(14))
	ev.Cost()
	for i := 0; i < 1000; i++ {
		undo := ev.Perturb(rng)
		ev.Cost()
		if dec.Float64() < 0.5 {
			undo()
		}
	}
	st := ev.stats
	if st.EntropyCrossChecks == 0 || st.AdjCrossChecks == 0 {
		t.Fatalf("cache cross-checks never ran: %+v", st)
	}
	if st.EntropyPatched == 0 {
		t.Fatalf("entropy cache never served a patch: %+v", st)
	}
	// AdjRowsChanged is only counted by the index paths (probe or bulk);
	// at this design size the bulk path dominates, so AdjIncrementalUpdates
	// alone may legitimately stay 0.
	if st.AdjRowsChanged == 0 {
		t.Fatalf("adjacency index never served a refresh: %+v", st)
	}
	if st.MaxCrossCheckError > 1e-9 {
		t.Fatalf("cost cross-check error too large: %g", st.MaxCrossCheckError)
	}
}

// TestFlowIncrementalEntropyAdjacencyMatchesFull is the flow-level
// determinism criterion for this PR's caches: with everything else held at
// defaults, toggling the entropy cache and the adjacency index off must
// produce the identical best floorplan and metrics for a fixed seed.
func TestFlowIncrementalEntropyAdjacencyMatchesFull(t *testing.T) {
	des := bench.MustGenerate("n100")
	run := func(entropy, adjacency bool) *Result {
		ent, adj := entropy, adjacency
		post := false
		res, err := Run(des, Config{
			Mode:               TSCAware,
			GridN:              16,
			SAIterations:       400,
			Seed:               3,
			PostProcess:        &post,
			IncrementalEntropy: &ent,
			AdjacencyIndex:     &adj,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fast := run(true, true)
	full := run(false, false)
	for m := range fast.Layout.Rects {
		if fast.Layout.Rects[m] != full.Layout.Rects[m] || fast.Layout.DieOf[m] != full.Layout.DieOf[m] {
			t.Fatalf("module %d placed differently: %+v/die%d vs %+v/die%d", m,
				fast.Layout.Rects[m], fast.Layout.DieOf[m], full.Layout.Rects[m], full.Layout.DieOf[m])
		}
	}
	if fast.Metrics.PeakTempK != full.Metrics.PeakTempK || fast.Metrics.S1 != full.Metrics.S1 ||
		fast.Metrics.PowerW != full.Metrics.PowerW {
		t.Fatalf("metrics differ: peak %v vs %v, S1 %v vs %v, power %v vs %v",
			fast.Metrics.PeakTempK, full.Metrics.PeakTempK,
			fast.Metrics.S1, full.Metrics.S1, fast.Metrics.PowerW, full.Metrics.PowerW)
	}
	if fast.EvalStats.EntropyPatched == 0 || fast.EvalStats.AdjRowsChanged == 0 {
		t.Fatalf("caches never engaged in the incremental leg: %+v", fast.EvalStats)
	}
	if full.EvalStats.EntropyPatched != 0 || full.EvalStats.AdjRowsChanged != 0 {
		t.Fatalf("disabled caches engaged in the reference leg: %+v", full.EvalStats)
	}
}
