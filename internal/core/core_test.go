package core

import (
	"math"
	"testing"

	"repro/internal/bench"
	"repro/internal/netlist"
)

// fastCfg returns a configuration small enough for unit tests.
func fastCfg(mode Mode, seed int64) Config {
	return Config{
		Mode:            mode,
		GridN:           16,
		SAIterations:    150,
		ActivitySamples: 12,
		MaxDummyGroups:  8,
		Seed:            seed,
	}
}

func TestRunPowerAwareN100(t *testing.T) {
	des := bench.MustGenerate("n100")
	res, err := Run(des, fastCfg(PowerAware, 1))
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res)
	if res.Metrics.DummyTSVs != 0 {
		t.Fatal("PA mode must not insert dummy TSVs")
	}
}

func TestRunTSCAwareN100(t *testing.T) {
	des := bench.MustGenerate("n100")
	res, err := Run(des, fastCfg(TSCAware, 2))
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res)
	m := res.Metrics
	if m.PostCorrelationAfter > m.PostCorrelationBefore+1e-9 {
		t.Fatalf("post-processing must not raise correlation: %v -> %v",
			m.PostCorrelationBefore, m.PostCorrelationAfter)
	}
}

func checkResult(t *testing.T, res *Result) {
	t.Helper()
	m := res.Metrics
	if res.Layout == nil || res.TSVs == nil || res.Assignment == nil {
		t.Fatal("missing result components")
	}
	if ov := res.Layout.OverlapArea(); ov > 1e-6 {
		t.Fatalf("layout overlap %v", ov)
	}
	if m.R1 < -1 || m.R1 > 1 || m.R2 < -1 || m.R2 > 1 {
		t.Fatalf("correlations out of range: r1=%v r2=%v", m.R1, m.R2)
	}
	if m.S1 < 0 || m.S2 < 0 {
		t.Fatalf("entropies negative: S1=%v S2=%v", m.S1, m.S2)
	}
	if m.PowerW <= 0 || m.CriticalNS <= 0 || m.WirelengthM <= 0 {
		t.Fatalf("non-positive design cost: %+v", m)
	}
	if m.PeakTempK <= 293 {
		t.Fatalf("peak temperature %v must exceed ambient", m.PeakTempK)
	}
	if m.SignalTSVs <= 0 {
		t.Fatal("expected signal TSVs on a 2-die design")
	}
	if m.VoltageVolumes <= 0 {
		t.Fatal("expected voltage volumes")
	}
	if m.RuntimeSec <= 0 {
		t.Fatal("runtime not recorded")
	}
	// Maps must be consistent with the stack dimensions.
	for d := 0; d < res.Layout.Dies; d++ {
		if res.PowerMaps[d].Sum() <= 0 {
			t.Fatalf("die %d power map empty", d)
		}
		if res.TempMaps[d].Max() <= 293 {
			t.Fatalf("die %d temperature map at ambient", d)
		}
	}
}

func TestRunRejectsInvalidDesign(t *testing.T) {
	des := &netlist.Design{Name: "bad", Dies: 2}
	if _, err := Run(des, fastCfg(PowerAware, 3)); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestRunRejectsSingleDie(t *testing.T) {
	des := bench.MustGenerate("n100")
	des.Dies = 1
	if _, err := Run(des, fastCfg(PowerAware, 4)); err == nil {
		t.Fatal("expected die-count error")
	}
}

// TestRunThreeDieStack exercises the paper's stated future work: taller
// stacks. The flow must place across three dies, plan TSVs per gap, and
// report per-die leakage metrics.
func TestRunThreeDieStack(t *testing.T) {
	des := bench.MustGenerate("n100")
	des.Dies = 3
	res, err := Run(des, fastCfg(TSCAware, 4))
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res)
	if len(res.Metrics.PerDie) != 3 {
		t.Fatalf("per-die metrics %d, want 3", len(res.Metrics.PerDie))
	}
	// All three dies must carry modules.
	for d := 0; d < 3; d++ {
		if len(res.Layout.ModulesOnDie(d)) == 0 {
			t.Fatalf("die %d empty", d)
		}
	}
	// TSVs must exist in both gaps.
	gaps := map[int]bool{}
	for _, v := range res.TSVs.TSVs {
		gaps[v.Gap] = true
	}
	if !gaps[0] || !gaps[1] {
		t.Fatalf("TSVs missing from a gap: %v", gaps)
	}
	// Aliases follow bottom and top dies.
	if res.Metrics.R1 != res.Metrics.PerDie[0].R || res.Metrics.R2 != res.Metrics.PerDie[2].R {
		t.Fatal("aliases out of sync")
	}
}

func TestRunDeterministicWithSeed(t *testing.T) {
	des := bench.MustGenerate("n100")
	a, err := Run(des, fastCfg(PowerAware, 7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(des, fastCfg(PowerAware, 7))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Metrics.R1-b.Metrics.R1) > 1e-12 ||
		a.Metrics.SignalTSVs != b.Metrics.SignalTSVs ||
		a.Metrics.VoltageVolumes != b.Metrics.VoltageVolumes {
		t.Fatal("same seed must reproduce the run")
	}
}

func TestRunWithProtectedModules(t *testing.T) {
	des := bench.MustGenerate("n100")
	// Protect the sensitive (crypto-like) modules, as the paper's Sec. 7.1
	// adaptation suggests.
	var protect []int
	for mi, m := range des.Modules {
		if m.Sensitive {
			protect = append(protect, mi)
		}
	}
	cfg := fastCfg(TSCAware, 5)
	cfg.ProtectModules = protect
	res, err := Run(des, cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res)
	m := res.Metrics
	if m.PostCorrelationAfter > m.PostCorrelationBefore+1e-9 {
		t.Fatalf("protected post-processing must not raise the watched correlation: %v -> %v",
			m.PostCorrelationBefore, m.PostCorrelationAfter)
	}
}

func TestRunReportsSampledMetrics(t *testing.T) {
	des := bench.MustGenerate("n100")
	res, err := Run(des, fastCfg(TSCAware, 6))
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if m.SVF1 < -1 || m.SVF1 > 1 || m.SVF2 < -1 || m.SVF2 > 1 {
		t.Fatalf("SVF out of range: %v %v", m.SVF1, m.SVF2)
	}
	if m.SVF1 == 0 && m.SVF2 == 0 {
		t.Fatal("SVF not computed in TSC mode")
	}
	if m.MeanStability1 <= 0 || m.MeanStability1 > 1 {
		t.Fatalf("mean stability 1 = %v", m.MeanStability1)
	}
	if m.MeanStability2 <= 0 || m.MeanStability2 > 1 {
		t.Fatalf("mean stability 2 = %v", m.MeanStability2)
	}
}

func TestRunAllDiesCriterion(t *testing.T) {
	des := bench.MustGenerate("n100")
	cfg := fastCfg(TSCAware, 8)
	cfg.PostCriterion = AllDies
	res, err := Run(des, cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res)
	m := res.Metrics
	if m.PostCorrelationAfter > m.PostCorrelationBefore+1e-9 {
		t.Fatalf("all-dies criterion must not raise the watched correlation: %v -> %v",
			m.PostCorrelationBefore, m.PostCorrelationAfter)
	}
}

func TestRunPostProcessDisabled(t *testing.T) {
	des := bench.MustGenerate("n100")
	cfg := fastCfg(TSCAware, 9)
	off := false
	cfg.PostProcess = &off
	res, err := Run(des, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.DummyTSVs != 0 {
		t.Fatal("post-processing disabled but dummies inserted")
	}
	if res.Metrics.PostCorrelationBefore != res.Metrics.PostCorrelationAfter {
		t.Fatal("before/after must coincide when the stage is off")
	}
	// Sampled metrics are absent when the stage is off.
	if res.Metrics.SVF1 != 0 || res.Metrics.MeanStability1 != 0 {
		t.Fatal("sampled metrics should be zero without post-processing")
	}
}

func TestModeString(t *testing.T) {
	if PowerAware.String() != "power-aware" || TSCAware.String() != "TSC-aware" {
		t.Fatal("mode strings")
	}
}

func TestDefaultWeights(t *testing.T) {
	pa := DefaultWeights(PowerAware)
	if pa.Correlation != 0 || pa.SpatialEntropy != 0 {
		t.Fatal("PA weights must not include leakage terms")
	}
	tsc := DefaultWeights(TSCAware)
	if tsc.Correlation <= 0 || tsc.SpatialEntropy <= 0 {
		t.Fatal("TSC weights must include leakage terms")
	}
}

// TestPackChangedHistogram pins the churn histogram's tally and percentile
// semantics: exact bucket counts, the overflow clamp for outsized changed
// sets, and the smallest-size-covering-p percentile rule the churn reports
// are built on.
func TestPackChangedHistogram(t *testing.T) {
	var s EvalStats
	if got := s.PackChangedPercentile(0.5); got != 0 {
		t.Fatalf("empty histogram percentile = %d, want 0", got)
	}
	// 10 moves: sizes 1..8, plus 3 and one far beyond the bucket range.
	for _, n := range []int{1, 2, 3, 4, 5, 6, 7, 8, 3, packHistBuckets + 100} {
		s.recordPackChanged(n)
	}
	if s.PackChangedHist[3] != 2 || s.PackChangedHist[7] != 1 {
		t.Fatalf("bucket counts wrong: hist[3]=%d hist[7]=%d", s.PackChangedHist[3], s.PackChangedHist[7])
	}
	if s.PackChangedHist[packHistBuckets-1] != 1 {
		t.Fatalf("overflow bucket = %d, want 1", s.PackChangedHist[packHistBuckets-1])
	}
	wantTotal := 1 + 2 + 3 + 4 + 5 + 6 + 7 + 8 + 3 + (packHistBuckets - 1)
	if s.PackChangedModules != wantTotal {
		t.Fatalf("PackChangedModules = %d, want %d", s.PackChangedModules, wantTotal)
	}
	// 10 recorded moves, sizes sorted: 1 2 3 3 4 5 6 7 8 511.
	for _, tc := range []struct {
		p    float64
		want int
	}{{0, 0}, {0.1, 1}, {0.5, 4}, {0.9, 8}, {0.95, 511}, {1, packHistBuckets - 1}} {
		if got := s.PackChangedPercentile(tc.p); got != tc.want {
			t.Fatalf("percentile(%.2f) = %d, want %d", tc.p, got, tc.want)
		}
	}
}
