package core

import (
	"math/rand"
	"testing"

	"repro/internal/bench"
	"repro/internal/floorplan"
	"repro/internal/thermal"
	"repro/internal/timing"
)

func newEvaluator(t *testing.T, mode Mode, seed int64) *evaluator {
	t.Helper()
	des := bench.MustGenerate("n100")
	cfg := Config{Mode: mode, GridN: 16, Seed: seed}
	cfg.defaults()
	fast := thermal.CalibrateFast(thermal.DefaultConfig(16, 16, des.OutlineW, des.OutlineH, des.Dies))
	rng := rand.New(rand.NewSource(seed))
	return &evaluator{fp: floorplan.NewRandom(des, rng), cfg: &cfg, fast: fast}
}

func TestCostPositiveAndFinite(t *testing.T) {
	for _, mode := range []Mode{PowerAware, TSCAware} {
		ev := newEvaluator(t, mode, 1)
		c := ev.Cost()
		if c <= 0 || c != c /* NaN */ {
			t.Fatalf("%v: cost %v", mode, c)
		}
	}
}

func TestCostStableForUnchangedState(t *testing.T) {
	ev := newEvaluator(t, TSCAware, 2)
	// Prime normalization and the voltage-assignment cache stride so both
	// evaluations hit the same cache phase.
	stride := ev.cfg.VoltEvery
	var c1, c2 float64
	for i := 0; i < stride; i++ {
		c1 = ev.Cost()
	}
	for i := 0; i < stride; i++ {
		c2 = ev.Cost()
	}
	if c1 != c2 {
		t.Fatalf("cost drifted without a move: %v vs %v", c1, c2)
	}
}

func TestCostRespondsToPerturbation(t *testing.T) {
	ev := newEvaluator(t, PowerAware, 3)
	base := ev.Cost()
	rng := rand.New(rand.NewSource(4))
	changed := false
	for i := 0; i < 20; i++ {
		undo := ev.Perturb(rng)
		if c := ev.Cost(); c != base {
			changed = true
		}
		undo()
	}
	if !changed {
		t.Fatal("20 random moves never changed the cost")
	}
}

func TestTSCModeIncludesLeakageTerms(t *testing.T) {
	// Same floorplan, same seed: the TSC cost must include extra terms, so
	// the two modes' raw term structs agree on shared terms but TSC fills
	// corr/entropy.
	evPA := newEvaluator(t, PowerAware, 5)
	evTSC := newEvaluator(t, TSCAware, 5)
	lPA := evPA.fp.Pack()
	lTSC := evTSC.fp.Pack()
	tPA := evPA.terms(lPA)
	tTSC := evTSC.terms(lTSC)
	if tPA.corr != 0 || tPA.entropy != 0 {
		t.Fatal("PA mode must not compute leakage terms")
	}
	if tTSC.corr <= 0 || tTSC.entropy <= 0 {
		t.Fatalf("TSC mode must compute leakage terms: corr=%v entropy=%v", tTSC.corr, tTSC.entropy)
	}
	// Identical seeds -> identical floorplans -> identical shared terms.
	if tPA.wl != tTSC.wl || tPA.viol != tTSC.viol {
		t.Fatal("shared terms should agree for identical floorplans")
	}
}

func TestDesignRuleTermRange(t *testing.T) {
	ev := newEvaluator(t, PowerAware, 6)
	l := ev.fp.Pack()
	terms := ev.terms(l)
	if terms.rule < 0 || terms.rule > 1 {
		t.Fatalf("design-rule term %v out of [0,1]", terms.rule)
	}
}

func TestDesignRuleTermTracksDieAssignment(t *testing.T) {
	// Round-robin die assignment puts roughly half the power on the lower
	// die, so the design-rule term (power-weighted distance from the top
	// die) sits near 0.5.
	des := bench.MustGenerate("n100")
	cfg := Config{Mode: PowerAware, GridN: 16}
	cfg.defaults()
	fast := thermal.CalibrateFast(thermal.DefaultConfig(16, 16, des.OutlineW, des.OutlineH, des.Dies))
	ev := &evaluator{fp: floorplan.New(des), cfg: &cfg, fast: fast}
	terms := ev.terms(ev.fp.Pack())
	if terms.rule < 0.2 || terms.rule > 0.8 {
		t.Fatalf("round-robin design-rule term %v should sit near 0.5", terms.rule)
	}
}

func TestVoltCacheRefreshes(t *testing.T) {
	ev := newEvaluator(t, PowerAware, 8)
	l := ev.fp.Pack()
	ev.terms(l) // eval 0: assignment runs
	if ev.powerScale == nil {
		t.Fatal("voltage scales not cached")
	}
	evals := ev.evals
	ev.terms(l) // eval 1: cache hit
	if ev.evals != evals+1 {
		t.Fatal("eval counter")
	}
}

func TestScaledPowers(t *testing.T) {
	des := bench.MustGenerate("n100")
	l := floorplan.New(des).Pack()
	scale := make([]float64, len(des.Modules))
	for i := range scale {
		scale[i] = 0.5
	}
	p := scaledPowers(l, scale)
	for i, m := range des.Modules {
		if p[i] != 0.5*m.Power {
			t.Fatal("scaling wrong")
		}
	}
	p2 := scaledPowers(l, nil)
	for i, m := range des.Modules {
		if p2[i] != m.Power {
			t.Fatal("nil scale must be nominal")
		}
	}
	_ = timing.DefaultParams() // keep import for the helper's signature stability
}
