package core

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/leakage"
	"repro/internal/netlist"
	"repro/internal/timing"
	"repro/internal/volt"
)

// incrState holds the caches behind the incremental cost evaluator. The
// contract with the annealer's Perturb/Cost/undo protocol:
//
//   - a floorplan.Move touches only the dies it names, so only those dies
//     are repacked (floorplan.PackDie); every other module's rect is
//     untouched, bit for bit;
//   - per-net wirelength and Elmore delay are recomputed only for nets with
//     a pin on a module whose placement actually changed — the values are
//     recomputed from scratch (not accumulated), so they are identical to a
//     full recompute;
//   - per-die power maps are re-rasterized from scratch for exactly the
//     dies a changed module left or entered (PowerMapInto, bit-identical to
//     the full path's PowerMap — an additive subtract/re-add patch would
//     leave ulp-level round-off that the discontinuous nested-means entropy
//     classification can amplify past the 1e-9 contract), and the fast
//     estimator's per-source blur responses are recomputed only for dies
//     whose map changed;
//   - per-die spatial entropies (TSC mode) are served by
//     leakage.EntropyCache when evaluator.entropyIncr is set: the cache
//     diffs each dirty die's map against its own value mirror and patches
//     the nested-means sort and the per-class histogram sums, reproducing
//     the from-scratch SpatialEntropy bit for bit (see the entCaches field
//     for the rollback story);
//   - every mutation this evaluation makes to the caches is journaled; the
//     undo closure returned by Perturb rolls the journal back, so rejected
//     moves restore the caches exactly (byte for byte — rejected moves
//     restore cloned pre-move maps, not re-derived ones).
//
// Voltage scales are deliberately NOT journaled: the full evaluator keeps
// scales computed during a rejected evaluation too (they are not part of the
// floorplan undo), and the incremental path mirrors that — a refresh during
// a rejected move instead marks every map dirty for the next evaluation.
// The voltage-assigner caches (the dirty-module set feeding volt.Assigner)
// ARE journaled, because unlike the scales they must track the floorplan
// exactly; see the volt fields below.
type incrState struct {
	lay *floorplan.Layout

	// modNets[m] lists the nets with a pin on module m.
	modNets [][]int

	netLen   []float64 // per-net HPWL in um, without the vertical detour
	netCross []bool    // whether the net spans dies
	netWL    []float64 // per-net HPWL including the detour (the cost term)
	netDelay []float64 // per-net Elmore delay in ns

	maps      []*geom.Grid   // per-die voltage-scaled power maps
	resp      [][]*geom.Grid // resp[s] = fast.Response(maps[s], s)
	entropy   []float64      // per-die spatial entropy (TSC mode only)
	mapsValid bool           // maps/resp/entropy reflect lay under current scales

	// entCaches[d] incrementally maintains die d's spatial entropy
	// (evaluator.entropyIncr, TSC mode). The caches are self-synchronizing —
	// each Update diffs the grid against the cache's own value mirror — so
	// rejected moves need no cache rollback: the journal restores the map
	// bytes and the entropy values, and the next Update on a die
	// re-converges exactly. Only the VALUES are journaled (oldEntropy).
	entCaches []*leakage.EntropyCache

	pending *floorplan.Move // applied to fp but not yet to the caches
	journal *moveJournal    // rollback record of the last evaluated move
	dirty   []int           // dies whose maps need patching this evaluation

	// packers[d] caches die d's skyline states so repacks resume from the
	// move's first changed sequence position. diffPool recycles the
	// floorplan.PackDiff records that journal each repack (one or two per
	// move, settled when the journal is superseded or rolled back).
	packers  []*floorplan.DiePacker
	diffPool []*floorplan.PackDiff

	// Incremental voltage refresh (evaluator.voltIncr): vasg caches the
	// voltage-volume candidate trees between stride refreshes; voltDirty
	// marks the modules whose placement changed since the assigner last saw
	// the layout (voltDirtyList is the same set in insertion order, handed
	// to Refresh). voltAllDirty forces a full rebuild when the caches were
	// dropped wholesale (reset rollback). The dirty-set mutations are
	// journaled like every other cache: a rejected move unmarks exactly the
	// modules it marked, and a rejected move whose evaluation refreshed the
	// assignment re-derives the set from the rollback diff (the assigner saw
	// the rejected geometry, so after the undo precisely the reverted
	// modules differ from its snapshot).
	vasg          *volt.Assigner
	voltDirty     []bool
	voltDirtyList []int
	voltAllDirty  bool

	// Incremental STA (evaluator.staIncr): staRefC tracks the reference
	// analysis (delayScale nil, feeding the voltage refresh) and staScaledC
	// the delay-scaled one (feeding the cost's critical-delay term), both
	// patched per move from the journal's net list instead of re-running a
	// full pass. The scaled cache is invalidated whenever the voltage
	// scales change (stride refreshes) and rebuilt lazily. Patches are
	// journaled inside the caches; the move journal records which caches
	// were patched vs rebuilt so rollback can Revert or Invalidate exactly.
	staRefC    *timing.STACache
	staScaledC *timing.STACache
	staNets    []int // per-move scratch: nets whose delay value changed
	// staStatsBase folds in the counters of STA cache generations dropped
	// by a wholesale geometry rebuild, so Result.Stats reports run totals
	// like every other cache's counters do.
	staStatsBase timing.STACacheStats

	// Scratch, sized once.
	netStamp []int
	stamp    int
	dieMark  []bool

	// Check-path placement mirror (evaluator.check only): the layout as of
	// the last verified evaluation. Every cross-checked eval pins the
	// modules that differ from it against the journal's exact changed set —
	// the end-to-end proof that the diff contract reports precisely the
	// real churn. movedEval marks that the current evaluation applied a
	// move (vs a cache-only re-eval, whose diff must be empty).
	checkRects []geom.Rect
	checkDies  []int
	movedEval  bool

	// Recycled buffers: the annealing loop runs one evaluation per move, so
	// per-eval allocations are worth pooling. staRef/staScaled back the
	// full-STA reference path (staIncr off).
	staRef    *timing.Analysis
	staScaled *timing.Analysis
	temps     []*geom.Grid
	powers    []float64
	pool      []*geom.Grid
}

// grabGrid returns a pooled grid of the cache's dimensions (contents
// undefined) or allocates one.
func (ic *incrState) grabGrid(nx, ny int) *geom.Grid {
	for n := len(ic.pool); n > 0; n = len(ic.pool) {
		g := ic.pool[n-1]
		ic.pool = ic.pool[:n-1]
		if g.NX == nx && g.NY == ny {
			return g
		}
	}
	return geom.NewGrid(nx, ny)
}

// releaseGrid returns a superseded grid to the pool (bounded — the
// steady-state working set is a handful of grids; anything beyond that is
// left to the garbage collector). Only call when dropping the last
// reference.
func (ic *incrState) releaseGrid(g *geom.Grid) {
	const poolCap = 64
	if g != nil && len(ic.pool) < poolCap {
		ic.pool = append(ic.pool, g)
	}
}

// releaseGrids is releaseGrid over a slice.
func (ic *incrState) releaseGrids(gs []*geom.Grid) {
	for _, g := range gs {
		ic.releaseGrid(g)
	}
}

// grabDiff returns a cleared pack-diff record from the pool or allocates one.
func (ic *incrState) grabDiff() *floorplan.PackDiff {
	if n := len(ic.diffPool); n > 0 {
		pd := ic.diffPool[n-1]
		ic.diffPool = ic.diffPool[:n-1]
		pd.Reset()
		return pd
	}
	return &floorplan.PackDiff{}
}

// releaseDiff returns a settled pack-diff record to the pool (bounded — a
// move journals at most two).
func (ic *incrState) releaseDiff(pd *floorplan.PackDiff) {
	const diffPoolCap = 8
	if len(ic.diffPool) < diffPoolCap {
		ic.diffPool = append(ic.diffPool, pd)
	}
}

// moveJournal records every cache mutation of one evaluated move so a
// rejected move can be rolled back exactly.
type moveJournal struct {
	// reset marks a journal whose rollback must drop all caches (the move
	// was folded into a full rebuild and has no itemized record).
	reset bool
	// refreshed marks that the voltage assignment re-ran during this
	// evaluation; the new scales survive rollback (full-path parity), so
	// the maps must be rebuilt instead of restored.
	refreshed bool
	// mapsRebuilt marks that updateMaps fully rebuilt the maps during this
	// evaluation (they were invalid coming in) instead of journaling
	// per-die patches; rollback must invalidate them, not restore them.
	mapsRebuilt bool

	// mods lists exactly the modules whose placement the move changed
	// (concatenated from the per-die pack diffs — the exact set, not a
	// touched-die snapshot), with their pre-move placements in rects/dies.
	mods  []int
	rects []geom.Rect
	dies  []int

	// packDiffs journal the per-die repacks: Rollback restores the layout
	// and the packer's skyline snapshots byte-exactly (no invalidation, no
	// suffix replay on the next move), Commit releases them when the move
	// is accepted.
	packDiffs []*floorplan.PackDiff

	nets     []int
	netLen   []float64
	netCross []bool
	netWL    []float64
	netDelay []float64

	mapDies    []int
	oldMaps    []*geom.Grid
	oldResp    [][]*geom.Grid
	oldEntropy []float64

	// voltAdded lists the modules this move newly marked volt-dirty, so a
	// rollback can unmark exactly them (unless refreshed, which re-derives
	// the set instead — see incrState.voltDirty).
	voltAdded []int

	// staRefPatched/staScaledPatched mark that applyMove patched the STA
	// caches with this move's nets (rollback calls Revert);
	// staRefRebuilt/staScaledRebuilt that a cache ran a full Rebuild during
	// this evaluation, so its journal cannot restore the pre-move state and
	// rollback must Invalidate it instead. Rebuilt wins over patched (a
	// patched-then-rebuilt cache holds the rejected geometry wholesale).
	// staScaleStable marks that this evaluation's voltage refresh
	// reproduced the previous delay scales value-for-value, so a rejected
	// refresh eval can still Revert the scaled cache (the surviving scales
	// match what it was built under) instead of dropping it.
	staRefPatched    bool
	staScaledPatched bool
	staRefRebuilt    bool
	staScaledRebuilt bool
	staScaleStable   bool
}

// newIncrState allocates an empty cache set; everything is built lazily on
// the first Cost call.
func newIncrState() *incrState { return &incrState{} }

// perturb applies one floorplan move, remembers it for the next Cost call,
// and returns an undo closure that reverts both the floorplan and the
// caches.
func (ic *incrState) perturb(e *evaluator, rng *rand.Rand) func() {
	// A still-pending move (applied to the floorplan without an intervening
	// Cost — the speculative annealer's committed-winner replay does this on
	// every losing copy) folds into the new move so no staleness can slip
	// through. It must also SURVIVE an undo of the new move: the undo
	// closure reverts only this Perturb's floorplan mutation, so the folded
	// move is still applied to the floorplan but not to the caches —
	// dropping it on rollback would leave the cached layout permanently
	// stale on its dies (a latent bug the old suffix-pessimistic repack
	// partially masked by over-rewriting; the exact-diff contract and its
	// zero-tolerance cross-check require the protocol to be airtight).
	prev := ic.pending
	mv, undo := e.fp.PerturbMove(rng)
	if prev != nil {
		for i, d := range prev.Dies {
			mv.Touch(d, prev.Starts[i])
		}
	}
	// The previous move's journal is superseded: once the annealer moves
	// on without undoing, that move is committed and its pre-move grid
	// snapshots and pack-diff journals can be recycled.
	if j := ic.journal; j != nil {
		ic.releaseGrids(j.oldMaps)
		for _, r := range j.oldResp {
			ic.releaseGrids(r)
		}
		for _, pd := range j.packDiffs {
			pd.Commit()
			ic.releaseDiff(pd)
		}
		ic.journal = nil
	}
	ic.pending = &mv
	return func() {
		undo()
		ic.rollback()
		// The folded-in move survives the undo: it is still applied to the
		// floorplan and still unseen by the caches, so it stays pending.
		ic.pending = prev
	}
}

// rollback reverts the cache mutations of the last evaluated move. Called
// after the floorplan undo has already restored the sequences.
func (ic *incrState) rollback() {
	ic.pending = nil
	ic.dirty = ic.dirty[:0]
	ic.movedEval = false
	j := ic.journal
	ic.journal = nil
	if j == nil {
		return // undone before any Cost ran: caches never saw the move
	}
	if j.reset {
		ic.lay = nil
		ic.mapsValid = false
		ic.packers = nil
		ic.checkRects, ic.checkDies = nil, nil
		ic.invalidateSTA()
		if ic.voltDirty != nil {
			// The caches are gone wholesale; the assigner's snapshot no
			// longer corresponds to anything we can diff against.
			ic.voltAllDirty = true
			ic.clearVoltDirty()
		}
		return
	}
	if ic.voltDirty != nil && j.refreshed {
		// The assigner refreshed on the rejected geometry: relative to its
		// snapshot, exactly the modules this rollback is about to revert
		// are dirty — and j.mods IS that set (every listed module changed,
		// by the exact-diff contract).
		ic.clearVoltDirty()
		for _, m := range j.mods {
			ic.markVoltDirty(m)
		}
	}
	// Pack-diff rollback restores both the layout entries of j.mods and the
	// packers' skyline snapshots byte-exactly (in reverse order, so a
	// cross-die move unwinds destination before source) — the next repack
	// resumes from live snapshots instead of replaying the whole suffix
	// after an Invalidate.
	for i := len(j.packDiffs) - 1; i >= 0; i-- {
		j.packDiffs[i].Rollback(ic.lay)
	}
	for _, pd := range j.packDiffs {
		ic.releaseDiff(pd)
	}
	if ic.checkRects != nil {
		for i, m := range j.mods {
			ic.checkRects[m] = j.rects[i]
			ic.checkDies[m] = j.dies[i]
		}
	}
	if ic.voltDirty != nil && !j.refreshed {
		// No refresh saw the move: unmark exactly what it marked.
		for _, m := range j.voltAdded {
			ic.voltDirty[m] = false
		}
		if len(j.voltAdded) > 0 {
			w := 0
			for _, m := range ic.voltDirtyList {
				if ic.voltDirty[m] {
					ic.voltDirtyList[w] = m
					w++
				}
			}
			ic.voltDirtyList = ic.voltDirtyList[:w]
		}
	}
	for i, ni := range j.nets {
		ic.netLen[ni] = j.netLen[i]
		ic.netCross[ni] = j.netCross[i]
		ic.netWL[ni] = j.netWL[i]
		ic.netDelay[ni] = j.netDelay[i]
	}
	// The STA caches mirror ic.netDelay: revert the per-move patch, unless
	// the cache ran a full rebuild during the rejected evaluation (then the
	// journal describes nothing restorable) or — for the scaled cache — the
	// voltage scales changed (they survive rollback, so the cache must be
	// rebuilt under them on the next evaluation either way).
	if ic.staRefC != nil {
		if j.staRefRebuilt {
			ic.staRefC.Invalidate()
		} else if j.staRefPatched {
			ic.staRefC.Revert()
		}
	}
	if ic.staScaledC != nil {
		if j.staScaledRebuilt || (j.refreshed && !j.staScaleStable) {
			ic.staScaledC.Invalidate()
		} else if j.staScaledPatched {
			ic.staScaledC.Revert()
		}
	}
	if j.refreshed || j.mapsRebuilt {
		// Either the scales changed (and survive rollback) or the maps were
		// rebuilt wholesale under the now-undone geometry; both ways they
		// must be rebuilt on the next evaluation rather than restored.
		ic.mapsValid = false
		return
	}
	for i, d := range j.mapDies {
		ic.releaseGrids(ic.resp[d])
		ic.releaseGrid(ic.maps[d])
		ic.maps[d] = j.oldMaps[i]
		ic.resp[d] = j.oldResp[i]
		if j.oldEntropy != nil {
			ic.entropy[d] = j.oldEntropy[i]
		}
	}
}

// incrementalCost is Cost over the caches: apply the pending move (if any),
// then assemble the terms from cached per-net and per-die state.
func (e *evaluator) incrementalCost() float64 {
	ic := e.incr
	e.stats.Evals++
	switch {
	case ic.lay == nil:
		ic.initGeometry(e)
		e.stats.FullEvals++
	case ic.pending != nil:
		ic.applyMove(e)
		e.stats.IncrementalEvals++
	default:
		e.stats.IncrementalEvals++
	}

	t := &normTerms{}
	t.viol = ic.lay.OutlineViolation()
	wl := 0.0
	for _, v := range ic.netWL {
		wl += v
	}
	t.wl = wl

	if refreshed := e.refreshVoltage(ic.lay, func() *timing.Analysis {
		return ic.refSTA(e)
	}); refreshed {
		ic.mapsValid = false
		if ic.journal != nil {
			ic.journal.refreshed = true
		}
		if ic.staScaledC != nil {
			if ic.staScaledC.SameScale(e.delayScale) {
				// A stable assignment reproduced the scales exactly: the
				// cache stays live, and a rejected move may Revert it.
				if ic.journal != nil {
					ic.journal.staScaleStable = true
				}
			} else {
				// The scales actually changed; rebuild lazily below.
				ic.staScaledC.Invalidate()
			}
		}
	}
	t.delay = ic.scaledSTA(e).Critical
	if e.staIncr {
		ic.syncSTAStats(e)
		if e.check {
			e.crossCheckSTA()
		}
	}
	t.power = e.scaledPower
	t.volumes = float64(e.nVolumes)

	powers := ic.scaledPowers(e)
	ic.updateMaps(e, powers)
	ic.temps = e.fast.CombineInto(ic.resp, ic.temps)
	t.peak = peakOf(ic.temps)

	if e.cfg.Mode == TSCAware {
		corr, entropy := 0.0, 0.0
		for d := 0; d < ic.lay.Dies; d++ {
			corr += math.Abs(leakage.Pearson(ic.maps[d], ic.temps[d]))
			entropy += ic.entropy[d]
		}
		t.corr = corr / float64(ic.lay.Dies)
		t.entropy = entropy / float64(ic.lay.Dies)
	}
	t.rule = designRuleTerm(ic.lay, powers)

	cost := e.finishCost(ic.lay, t)
	if e.check {
		e.crossCheck(cost)
	}
	return cost
}

// refSTA returns the reference (unscaled) analysis over the cached net
// delays: served by the incremental STA cache when enabled (rebuilt lazily
// on first use or after an invalidation, otherwise already patched by
// applyMove), else a full AnalyzeFromNetDelaysInto pass per call.
func (ic *incrState) refSTA(e *evaluator) *timing.Analysis {
	if !e.staIncr {
		ic.staRef = timing.AnalyzeFromNetDelaysInto(ic.lay.Design, ic.netDelay, nil, ic.staRef)
		return ic.staRef
	}
	if ic.staRefC == nil {
		ic.staRefC = timing.NewSTACache(ic.lay.Design, ic.modNets)
	}
	if !ic.staRefC.Valid() {
		ic.staRefC.Rebuild(ic.netDelay, nil)
		if ic.journal != nil {
			ic.journal.staRefRebuilt = true
		}
	}
	return ic.staRefC.Analysis()
}

// scaledSTA is refSTA under the current voltage delay scales (the cost's
// critical-delay term).
func (ic *incrState) scaledSTA(e *evaluator) *timing.Analysis {
	if !e.staIncr {
		ic.staScaled = timing.AnalyzeFromNetDelaysInto(ic.lay.Design, ic.netDelay, e.delayScale, ic.staScaled)
		return ic.staScaled
	}
	if ic.staScaledC == nil {
		ic.staScaledC = timing.NewSTACache(ic.lay.Design, ic.modNets)
	}
	if !ic.staScaledC.Valid() {
		ic.staScaledC.Rebuild(ic.netDelay, e.delayScale)
		if ic.journal != nil {
			ic.journal.staScaledRebuilt = true
		}
	}
	return ic.staScaledC.Analysis()
}

// patchSTA brings the STA caches in line with the move's delay changes
// (ic.staNets, collected by applyMove's net refresh). Churn gate: an
// itemized patch recomputes every module incident to a changed net, and its
// cost grows roughly linearly in the changed-net count while the full pass
// it can save is flat — BenchmarkSTACachePatch puts the break-even near
// nNets/11 on an ibm01-class design, so above nNets/16 (margin for the
// rejected-move Revert) the move just drops the caches, falling back to the
// lazy full rebuild at the next use, which is exactly the pre-cache cost.
// An invalidated cache needs no rollback handling: a rejected move leaves
// it invalid and the rebuild reads the reverted delays.
func (ic *incrState) patchSTA(e *evaluator, j *moveJournal) {
	budget := len(ic.netWL) / 16
	if budget < 16 {
		budget = 16
	}
	if len(ic.staNets) > budget {
		e.stats.STAGateTrips++
		ic.invalidateSTA()
		return
	}
	if ic.staRefC != nil && ic.staRefC.Valid() {
		ic.staRefC.Patch(ic.staNets, ic.netDelay)
		j.staRefPatched = true
	}
	if ic.staScaledC != nil && ic.staScaledC.Valid() {
		ic.staScaledC.Patch(ic.staNets, ic.netDelay)
		j.staScaledPatched = true
	}
}

// invalidateSTA drops both STA caches (wholesale geometry changes).
func (ic *incrState) invalidateSTA() {
	if ic.staRefC != nil {
		ic.staRefC.Invalidate()
	}
	if ic.staScaledC != nil {
		ic.staScaledC.Invalidate()
	}
}

// syncSTAStats mirrors the caches' counters (plus any banked from dropped
// cache generations) into the run stats.
func (ic *incrState) syncSTAStats(e *evaluator) {
	base := ic.staStatsBase
	patches, rebuilds, mods, rescans := base.Patches, base.Rebuilds, base.ModulesRecomputed, base.CritRescans
	for _, c := range []*timing.STACache{ic.staRefC, ic.staScaledC} {
		if c == nil {
			continue
		}
		st := c.Stats()
		patches += st.Patches
		rebuilds += st.Rebuilds
		mods += st.ModulesRecomputed
		rescans += st.CritRescans
	}
	e.stats.STAPatches = patches
	e.stats.STARebuilds = rebuilds
	e.stats.STAModulesRecomputed = mods
	e.stats.STACritRescans = rescans
}

// crossCheckSTA pins both cached analyses against a from-scratch STA pass
// over the same cached net delays: Critical, Arrive, Depart, ModuleDelay,
// and the NetDelay mirror, each within 1e-9 relative. Debug aid behind
// Config.CostCrossCheck, like crossCheck.
func (e *evaluator) crossCheckSTA() {
	ic := e.incr
	check := func(c *timing.STACache, scale []float64, label string) {
		if c == nil || !c.Valid() {
			return
		}
		e.stats.STACrossChecks++
		want := timing.AnalyzeFromNetDelays(ic.lay.Design, ic.netDelay, scale)
		if err := timing.EquivalentAnalyses(c.Analysis(), want, 1e-9); err != nil {
			panic(fmt.Sprintf("core: incremental %s STA diverged from full pass: %v", label, err))
		}
	}
	check(ic.staRefC, nil, "reference")
	check(ic.staScaledC, e.delayScale, "scaled")
}

// crossCheck re-evaluates the current floorplan through the full-recompute
// path (using the same voltage scales) and panics if the incremental cost
// drifted past the epsilon contract. It also pins the packer diff contract
// at zero tolerance: the cached layout must equal a from-scratch Pack bit
// for bit, and the modules that moved since the last verified evaluation
// must be exactly the journal's changed set — no module missing from the
// diff, none reported spuriously. Debug aid: it forfeits the entire
// speedup, so it is only enabled by Config.CostCrossCheck and in tests.
func (e *evaluator) crossCheck(got float64) {
	e.stats.CrossChecks++
	ic := e.incr
	l := e.fp.Pack()
	want := e.finishCost(l, e.staticTerms(l))
	diff := math.Abs(got - want)
	if diff > e.stats.MaxCrossCheckError {
		e.stats.MaxCrossCheckError = diff
	}
	if diff > 1e-9*math.Max(1, math.Abs(want)) {
		panic(fmt.Sprintf("core: incremental cost %v diverged from full recompute %v (|diff| %g)",
			got, want, diff))
	}

	// Placement pin, zero tolerance: the incrementally maintained layout is
	// the full Pack, byte for byte.
	moved := ic.movedEval
	ic.movedEval = false
	for m := range l.Rects {
		if ic.lay.Rects[m] != l.Rects[m] || ic.lay.DieOf[m] != l.DieOf[m] {
			panic(fmt.Sprintf("core: incremental placement of module %d (%+v die %d) != full pack (%+v die %d)",
				m, ic.lay.Rects[m], ic.lay.DieOf[m], l.Rects[m], l.DieOf[m]))
		}
	}
	// Exact-changed-set pin: diff the layout against the last verified
	// mirror; the differing modules must be precisely the journal's mods
	// when this eval applied a move, and nothing otherwise.
	if ic.checkRects == nil || len(ic.checkRects) != len(l.Rects) {
		ic.checkRects = append(ic.checkRects[:0], ic.lay.Rects...)
		ic.checkDies = append(ic.checkDies[:0], ic.lay.DieOf...)
		return
	}
	expected := make(map[int]bool)
	if moved {
		for _, m := range ic.journal.mods {
			expected[m] = true
		}
	}
	for m := range ic.lay.Rects {
		changed := ic.lay.Rects[m] != ic.checkRects[m] || ic.lay.DieOf[m] != ic.checkDies[m]
		if changed != expected[m] {
			panic(fmt.Sprintf("core: exact-diff contract broken for module %d: placement changed=%v but journal reports changed=%v",
				m, changed, expected[m]))
		}
		if changed {
			ic.checkRects[m] = ic.lay.Rects[m]
			ic.checkDies[m] = ic.lay.DieOf[m]
		}
	}
}

// initGeometry builds the layout and per-net caches from scratch. The power
// maps are built by updateMaps once the voltage scales are known.
func (ic *incrState) initGeometry(e *evaluator) {
	ic.lay = e.fp.Pack()
	des := ic.lay.Design
	nMods, nNets := len(des.Modules), len(des.Nets)

	ic.modNets = make([][]int, nMods)
	for ni, n := range des.Nets {
		for _, m := range n.Modules {
			ic.modNets[m] = append(ic.modNets[m], ni)
		}
	}
	ic.netLen = make([]float64, nNets)
	ic.netCross = make([]bool, nNets)
	ic.netWL = make([]float64, nNets)
	ic.netDelay = make([]float64, nNets)
	for ni, n := range des.Nets {
		ic.refreshNet(ni, n, e.cfg.TimingParams)
	}
	// The STA caches hold the previous modNets table; drop them so they are
	// recreated against the fresh one (they rebuild lazily at first use),
	// banking their counters so the run's stats keep accumulating.
	for _, c := range []*timing.STACache{ic.staRefC, ic.staScaledC} {
		if c != nil {
			st := c.Stats()
			ic.staStatsBase.Patches += st.Patches
			ic.staStatsBase.Rebuilds += st.Rebuilds
			ic.staStatsBase.ModulesRecomputed += st.ModulesRecomputed
			ic.staStatsBase.CritRescans += st.CritRescans
		}
	}
	ic.staRefC, ic.staScaledC = nil, nil

	ic.maps = make([]*geom.Grid, ic.lay.Dies)
	ic.resp = make([][]*geom.Grid, ic.lay.Dies)
	ic.entropy = make([]float64, ic.lay.Dies)
	ic.mapsValid = false
	if e.cfg.Mode == TSCAware && e.entropyIncr && ic.entCaches == nil {
		ic.entCaches = make([]*leakage.EntropyCache, ic.lay.Dies)
		for d := range ic.entCaches {
			c, err := leakage.NewEntropyCache(leakage.EntropyOptions{})
			if err != nil {
				panic(fmt.Sprintf("core: default entropy options rejected: %v", err))
			}
			ic.entCaches[d] = c
		}
	}

	ic.netStamp = make([]int, nNets)
	ic.dieMark = make([]bool, ic.lay.Dies)

	if e.voltIncr && ic.voltDirty == nil {
		ic.voltDirty = make([]bool, nMods)
	}

	if ic.pending != nil {
		// The move is folded into this full build; there is no itemized
		// rollback record, so an undo must drop the caches entirely.
		ic.pending = nil
		ic.journal = &moveJournal{reset: true}
	}
}

// scaledPowers fills the reusable per-module voltage-scaled power buffer,
// value-identical to the package-level scaledPowers helper.
func (ic *incrState) scaledPowers(e *evaluator) []float64 {
	des := ic.lay.Design
	if cap(ic.powers) < len(des.Modules) {
		ic.powers = make([]float64, len(des.Modules))
	}
	p := ic.powers[:len(des.Modules)]
	for m, mod := range des.Modules {
		p[m] = mod.Power
	}
	if e.powerScale != nil {
		for m := range p {
			p[m] *= e.powerScale[m]
		}
	}
	return p
}

// refreshNet recomputes one net's cached geometry and delay from the current
// layout. The values are recomputed exactly as the full path would, so
// unchanged nets keep bit-identical cached values.
func (ic *incrState) refreshNet(ni int, n *netlist.Net, p *timing.Params) {
	if n.Degree() < 2 {
		// Degenerate nets (single-pin, empty) carry no wire: WL and delay
		// are zero in both evaluators, matching the layout's HPWL (a
		// one-point bounding box) and the guarded ElmoreDelay, and the STA
		// pass skips them entirely.
		ic.netLen[ni], ic.netCross[ni], ic.netWL[ni], ic.netDelay[ni] = 0, false, 0, 0
		return
	}
	ln := ic.lay.NetHPWL(n, 0)
	cross := false
	die0 := -1
	for _, mi := range n.Modules {
		if die0 == -1 {
			die0 = ic.lay.DieOf[mi]
		} else if ic.lay.DieOf[mi] != die0 {
			cross = true
			break
		}
	}
	wl := ln
	if cross {
		wl = ln + p.VertLen
	}
	ic.netLen[ni] = ln
	ic.netCross[ni] = cross
	ic.netWL[ni] = wl
	ic.netDelay[ni] = timing.ElmoreDelay(ln, cross, n.Degree(), *p)
}

// applyMove repacks the dies the pending move touched through the
// diff-producing packer, journals the exact changed set, and patches the
// per-net caches from it. Map patching is deferred to updateMaps (the
// voltage scales of this evaluation must be known first).
func (ic *incrState) applyMove(e *evaluator) {
	mv := ic.pending
	ic.pending = nil
	j := &moveJournal{}
	ic.journal = j
	ic.movedEval = true

	// Partial repack: only the touched dies, each resuming from the move's
	// first changed sequence position via the cached skyline snapshots.
	// PackDieFromDiff stops as soon as the skyline re-converges with the
	// pre-move snapshot and reports exactly the modules whose placement
	// changed — j.mods is that set, not a touched-die population snapshot.
	if ic.packers == nil {
		ic.packers = make([]*floorplan.DiePacker, ic.lay.Dies)
	}
	for i, d := range mv.Dies {
		if ic.packers[d] == nil {
			ic.packers[d] = &floorplan.DiePacker{}
		}
		pd := ic.grabDiff()
		e.fp.PackDieFromDiff(ic.lay, d, mv.Starts[i], ic.packers[d], pd)
		j.packDiffs = append(j.packDiffs, pd)
		j.mods = append(j.mods, pd.Changed...)
		j.rects = append(j.rects, pd.OldRects...)
		j.dies = append(j.dies, pd.OldDies...)
		e.stats.PackDieDiffs++
		if pd.Converged {
			e.stats.PackEarlyExits++
		}
		e.stats.PackReplayedPositions += pd.Exit - pd.From
	}
	e.stats.PackMoves++
	e.stats.recordPackChanged(len(j.mods))
	e.stats.DiesRepacked += len(mv.Dies)
	e.stats.DiesReused += ic.lay.Dies - len(mv.Dies)

	// Accumulate the changed modules into the voltage-assigner dirty set,
	// journaling the newly marked ones for rollback.
	if ic.voltDirty != nil {
		for _, m := range j.mods {
			if !ic.voltDirty[m] {
				ic.markVoltDirty(m)
				j.voltAdded = append(j.voltAdded, m)
			}
		}
	}

	// Patch the nets touching a changed module; mark their dies map-dirty.
	ic.staNets = ic.staNets[:0]
	ic.stamp++
	recomputed := 0
	for i := range ic.dieMark {
		ic.dieMark[i] = false
	}
	for i, m := range j.mods {
		ic.dieMark[j.dies[i]] = true       // old die
		ic.dieMark[ic.lay.DieOf[m]] = true // new die
		for _, ni := range ic.modNets[m] {
			if ic.netStamp[ni] == ic.stamp {
				continue
			}
			ic.netStamp[ni] = ic.stamp
			old := ic.netDelay[ni]
			j.nets = append(j.nets, ni)
			j.netLen = append(j.netLen, ic.netLen[ni])
			j.netCross = append(j.netCross, ic.netCross[ni])
			j.netWL = append(j.netWL, ic.netWL[ni])
			j.netDelay = append(j.netDelay, old)
			ic.refreshNet(ni, ic.lay.Design.Nets[ni], e.cfg.TimingParams)
			//lint:floateq change detection against a stored copy: unchanged values are bit-identical, not recomputed
			if e.staIncr && ic.netDelay[ni] != old {
				ic.staNets = append(ic.staNets, ni)
			}
			recomputed++
		}
	}
	e.stats.NetsRecomputed += recomputed
	e.stats.NetsReused += len(ic.netWL) - recomputed

	// Update the STA caches from the refreshed nets, or drop them when the
	// move churned too much for a patch to pay (see patchSTA).
	if e.staIncr {
		ic.patchSTA(e, j)
	}

	ic.dirty = ic.dirty[:0]
	for d, marked := range ic.dieMark {
		if marked {
			ic.dirty = append(ic.dirty, d)
		}
	}
}

// updateMaps brings the per-die power maps, fast-estimator responses, and
// entropy cache in line with the current layout and voltage scales: a full
// rebuild when the scales changed (or on first use), otherwise a patch of
// only the dirty dies.
func (ic *incrState) updateMaps(e *evaluator, powers []float64) {
	n := e.cfg.GridN
	tsc := e.cfg.Mode == TSCAware
	if !ic.mapsValid {
		for d := 0; d < ic.lay.Dies; d++ {
			ic.releaseGrid(ic.maps[d])
			ic.releaseGrids(ic.resp[d])
			ic.maps[d] = ic.lay.PowerMap(d, n, n, powers)
		}
		for s := 0; s < ic.lay.Dies; s++ {
			ic.resp[s] = e.fast.Response(ic.maps[s], s)
			if tsc {
				ic.entropy[s] = ic.dieEntropy(e, s)
			}
		}
		ic.mapsValid = true
		ic.dirty = ic.dirty[:0]
		if ic.journal != nil {
			ic.journal.mapsRebuilt = true
		}
		e.stats.ResponsesComputed += ic.lay.Dies
		return
	}
	if len(ic.dirty) == 0 {
		e.stats.ResponsesReused += ic.lay.Dies
		return
	}
	j := ic.journal
	for _, d := range ic.dirty {
		j.mapDies = append(j.mapDies, d)
		snap := ic.grabGrid(n, n)
		copy(snap.Data, ic.maps[d].Data)
		j.oldMaps = append(j.oldMaps, snap)
		// Re-rasterize the dirty die from scratch rather than subtracting
		// the moved modules' old footprints and re-adding the new ones: the
		// additive patch leaves a few ulps of round-off on every touched
		// cell, and the nested-means classification behind the spatial
		// entropy is DISCONTINUOUS in the cell values — one ulp can flip a
		// bin across a class boundary and shift the entropy term by far
		// more than the 1e-9 contract (observed on small designs). The
		// rebuild reproduces the full path's floats bit for bit and its
		// cost is dominated by the per-dirty-die blur response below.
		ic.lay.PowerMapInto(d, powers, ic.maps[d])
	}
	for _, d := range ic.dirty {
		j.oldResp = append(j.oldResp, ic.resp[d])
		ic.resp[d] = e.fast.Response(ic.maps[d], d)
		if tsc {
			j.oldEntropy = append(j.oldEntropy, ic.entropy[d])
			ic.entropy[d] = ic.dieEntropy(e, d)
		}
	}
	e.stats.ResponsesComputed += len(ic.dirty)
	e.stats.ResponsesReused += ic.lay.Dies - len(ic.dirty)
	ic.dirty = ic.dirty[:0]
}

// dieEntropy returns die d's spatial entropy under the current maps: served
// by the incremental entropy cache when enabled, otherwise the from-scratch
// Eq. 3 evaluation. With the cross-check active every cached value is pinned
// against the full recompute at 1e-9 (relative).
func (ic *incrState) dieEntropy(e *evaluator, d int) float64 {
	if ic.entCaches == nil {
		return leakage.SpatialEntropy(ic.maps[d], leakage.EntropyOptions{})
	}
	ent, patched := ic.entCaches[d].Update(ic.maps[d])
	if patched {
		e.stats.EntropyPatched++
	} else {
		e.stats.EntropyRebuilt++
	}
	if e.check {
		e.stats.EntropyCrossChecks++
		want := leakage.SpatialEntropy(ic.maps[d], leakage.EntropyOptions{})
		if diff := math.Abs(ent - want); diff > 1e-9*math.Max(1, math.Abs(want)) {
			panic(fmt.Sprintf("core: incremental entropy %v diverged from full recompute %v on die %d (|diff| %g)",
				ent, want, d, diff))
		}
	}
	return ent
}

// markVoltDirty records module m as changed since the voltage assigner's
// snapshot (idempotent).
func (ic *incrState) markVoltDirty(m int) {
	if !ic.voltDirty[m] {
		ic.voltDirty[m] = true
		ic.voltDirtyList = append(ic.voltDirtyList, m)
	}
}

// clearVoltDirty empties the dirty set in O(dirty).
func (ic *incrState) clearVoltDirty() {
	for _, m := range ic.voltDirtyList {
		ic.voltDirty[m] = false
	}
	ic.voltDirtyList = ic.voltDirtyList[:0]
}

// refreshVoltAssignment serves one stride voltage refresh from the cached
// volt.Assigner: only the candidate trees that depend on a module whose
// placement (accumulated here from the move journal since the last refresh)
// or feasible-level mask (diffed inside the assigner from ref) changed are
// regrown. Consumes the dirty set; the result is value-identical to a fresh
// volt.Assign on the current layout, which the check path verifies.
func (ic *incrState) refreshVoltAssignment(e *evaluator, ref *timing.Analysis) *volt.Assignment {
	if ic.vasg == nil {
		cfg := e.voltConfig()
		cfg.FullAdjacency = !e.adjIncr
		ic.vasg = volt.NewAssigner(cfg)
	}
	if ic.voltAllDirty {
		ic.vasg.Invalidate()
		ic.voltAllDirty = false
	}
	asg := ic.vasg.Refresh(ic.lay, ref, ic.voltDirtyList)
	ic.clearVoltDirty()
	st := ic.vasg.Stats()
	e.stats.VoltIncrementalRefreshes = st.Refreshes
	e.stats.VoltCandidatesReused = st.CandidatesReused
	e.stats.VoltCandidatesRegrown = st.CandidatesRegrown
	e.stats.AdjFullSweeps = st.AdjFullSweeps
	e.stats.AdjBulkFallbacks = st.AdjBulkFallbacks
	e.stats.AdjIncrementalUpdates = st.AdjIncrementalUpdates
	e.stats.AdjRowsChanged = st.AdjRowsChanged
	if e.check {
		e.crossCheckVolt(ic.lay, ref, asg)
		e.stats.AdjCrossChecks++
		if err := ic.vasg.CheckAdjacency(ic.lay); err != nil {
			panic(fmt.Sprintf("core: adjacency index diverged from full sweep: %v", err))
		}
	}
	return asg
}

// crossCheckVolt pins an incremental voltage refresh against a from-scratch
// volt.Assign on the same layout and reference timing: identical volumes and
// per-module levels, TotalPower within the 1e-9 contract. Debug aid behind
// Config.CostCrossCheck, like crossCheck.
func (e *evaluator) crossCheckVolt(l *floorplan.Layout, ref *timing.Analysis, got *volt.Assignment) {
	e.stats.VoltCrossChecks++
	want := volt.Assign(l, ref, e.voltConfig())
	if err := volt.Equivalent(got, want, 1e-9); err != nil {
		panic(fmt.Sprintf("core: incremental voltage assignment diverged from full volt.Assign: %v", err))
	}
}
