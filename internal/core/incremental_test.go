package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bench"
	"repro/internal/floorplan"
	"repro/internal/thermal"
)

// makeEval builds an evaluator over n100 at a small grid, with or without
// the incremental caches.
func makeEval(t *testing.T, mode Mode, incremental bool, seed int64) *evaluator {
	t.Helper()
	des := bench.MustGenerate("n100")
	cfg := Config{Mode: mode, GridN: 16, Seed: seed}
	cfg.defaults()
	fast := thermal.CalibrateFast(thermal.DefaultConfig(16, 16, des.OutlineW, des.OutlineH, des.Dies))
	rng := rand.New(rand.NewSource(seed))
	ev := &evaluator{fp: floorplan.NewRandom(des, rng), cfg: &cfg, fast: fast}
	if incremental {
		ev.incr = newIncrState()
		ev.voltIncr = *cfg.IncrementalVoltage
		ev.entropyIncr = *cfg.IncrementalEntropy
		ev.adjIncr = *cfg.AdjacencyIndex
		ev.staIncr = *cfg.IncrementalSTA
	}
	return ev
}

func relDiff(a, b float64) float64 {
	return math.Abs(a-b) / math.Max(1, math.Abs(b))
}

// TestIncrementalMatchesFullOverRandomCycles is the epsilon contract: a full
// and an incremental evaluator driven through the same 1k perturb/undo
// cycles must agree on every cost to 1e-9 (relative). Undos are interleaved
// so the journal rollback path is exercised as hard as the apply path.
func TestIncrementalMatchesFullOverRandomCycles(t *testing.T) {
	for _, mode := range []Mode{PowerAware, TSCAware} {
		cycles := 1000
		if mode == PowerAware {
			cycles = 300 // the PA path is a strict subset; keep the suite fast
		}
		full := makeEval(t, mode, false, 11)
		inc := makeEval(t, mode, true, 11)
		mrFull := rand.New(rand.NewSource(99))
		mrInc := rand.New(rand.NewSource(99))
		dec := rand.New(rand.NewSource(7))

		if d := relDiff(inc.Cost(), full.Cost()); d > 1e-9 {
			t.Fatalf("%v: initial cost differs by %g", mode, d)
		}
		for i := 0; i < cycles; i++ {
			undoFull := full.Perturb(mrFull)
			undoInc := inc.Perturb(mrInc)
			cf, ci := full.Cost(), inc.Cost()
			if d := relDiff(ci, cf); d > 1e-9 {
				t.Fatalf("%v cycle %d: incremental %v vs full %v (rel diff %g)", mode, i, ci, cf, d)
			}
			if dec.Float64() < 0.5 {
				undoFull()
				undoInc()
			}
		}
		// Post-undo state must also agree (journal rollback correctness).
		if d := relDiff(inc.Cost(), full.Cost()); d > 1e-9 {
			t.Fatalf("%v: post-cycle cost differs by %g", mode, d)
		}
		st := inc.stats
		if st.IncrementalEvals == 0 || st.NetsReused == 0 || st.DiesReused+st.ResponsesReused == 0 {
			t.Fatalf("incremental caches never engaged: %+v", st)
		}
	}
}

// TestCostCrossCheckFlag exercises the built-in debug cross-check: it panics
// on divergence, so surviving a few hundred mixed cycles (and recording a
// sub-epsilon max error) is the assertion.
func TestCostCrossCheckFlag(t *testing.T) {
	ev := makeEval(t, TSCAware, true, 21)
	ev.check = true
	rng := rand.New(rand.NewSource(5))
	dec := rand.New(rand.NewSource(6))
	ev.Cost()
	for i := 0; i < 200; i++ {
		undo := ev.Perturb(rng)
		ev.Cost()
		if dec.Float64() < 0.4 {
			undo()
		}
	}
	if ev.stats.CrossChecks < 200 {
		t.Fatalf("cross-checks did not run: %+v", ev.stats)
	}
	if ev.stats.MaxCrossCheckError > 1e-9 {
		t.Fatalf("cross-check error too large: %g", ev.stats.MaxCrossCheckError)
	}
}

// TestUndoBeforeCostIsSafe covers the protocol corner where a move is undone
// without an intervening Cost call: the caches must not go stale.
func TestUndoBeforeCostIsSafe(t *testing.T) {
	ev := makeEval(t, PowerAware, true, 31)
	ref := makeEval(t, PowerAware, false, 31)
	rng := rand.New(rand.NewSource(8))
	rngRef := rand.New(rand.NewSource(8))
	ev.Cost()
	ref.Cost()
	for i := 0; i < 20; i++ {
		ev.Perturb(rng)()     // apply + immediately undo, no Cost between
		ref.Perturb(rngRef)() // keep the reference rng in lockstep
		if d := relDiff(ev.Cost(), ref.Cost()); d > 1e-9 {
			t.Fatalf("cycle %d: cost drifted by %g after cost-less undo", i, d)
		}
	}
}

// TestFlowIncrementalMatchesFull is the end-to-end determinism criterion:
// for a fixed seed, the flow must produce the identical best floorplan with
// the incremental evaluator on and off.
func TestFlowIncrementalMatchesFull(t *testing.T) {
	des := bench.MustGenerate("n100")
	run := func(incremental bool) *Result {
		inc := incremental
		post := false
		res, err := Run(des, Config{
			Mode:            TSCAware,
			GridN:           16,
			SAIterations:    400,
			Seed:            3,
			PostProcess:     &post,
			IncrementalCost: &inc,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fast := run(true)
	full := run(false)
	if len(fast.Layout.Rects) != len(full.Layout.Rects) {
		t.Fatal("layouts differ in size")
	}
	for m := range fast.Layout.Rects {
		if fast.Layout.Rects[m] != full.Layout.Rects[m] || fast.Layout.DieOf[m] != full.Layout.DieOf[m] {
			t.Fatalf("module %d placed differently: %+v/die%d vs %+v/die%d", m,
				fast.Layout.Rects[m], fast.Layout.DieOf[m], full.Layout.Rects[m], full.Layout.DieOf[m])
		}
	}
	if fast.Metrics.PeakTempK != full.Metrics.PeakTempK || fast.Metrics.R1 != full.Metrics.R1 {
		t.Fatalf("metrics differ: peak %v vs %v, r1 %v vs %v",
			fast.Metrics.PeakTempK, full.Metrics.PeakTempK, fast.Metrics.R1, full.Metrics.R1)
	}
	if fast.EvalStats.IncrementalEvals == 0 {
		t.Fatalf("incremental run never used the caches: %+v", fast.EvalStats)
	}
	if full.EvalStats.IncrementalEvals != 0 {
		t.Fatalf("full run unexpectedly used caches: %+v", full.EvalStats)
	}
	if !fast.SolverStats.Converged || fast.SolverStats.Sweeps == 0 {
		t.Fatalf("solver stats not recorded: %+v", fast.SolverStats)
	}
}
