package core

import (
	"math/rand"
	"testing"

	"repro/internal/bench"
)

// TestIncrementalVoltageCrossCheckOverJournaledRun is the acceptance
// contract for the incremental voltage refresh: a journaled 1k-move
// perturb/cost/undo run with the cross-check enabled must see every stride
// refresh produce identical volumes and TotalPower within 1e-9 of a
// from-scratch volt.Assign (crossCheckVolt panics otherwise), and the
// incremental cost must stay within the 1e-9 epsilon contract throughout.
// Interleaved undos exercise the volt dirty-set journal rollback — both the
// unmark path (no refresh saw the move) and the re-derive path (the
// assigner refreshed on rejected geometry).
func TestIncrementalVoltageCrossCheckOverJournaledRun(t *testing.T) {
	ev := makeEval(t, TSCAware, true, 41)
	if !ev.voltIncr {
		t.Fatal("incremental voltage not active under default config")
	}
	ev.check = true
	rng := rand.New(rand.NewSource(9))
	dec := rand.New(rand.NewSource(10))
	ev.Cost()
	for i := 0; i < 1000; i++ {
		undo := ev.Perturb(rng)
		ev.Cost()
		if dec.Float64() < 0.5 {
			undo()
		}
	}
	st := ev.stats
	if st.VoltCrossChecks == 0 {
		t.Fatalf("voltage cross-checks never ran: %+v", st)
	}
	if st.VoltIncrementalRefreshes == 0 || st.VoltIncrementalRefreshes != st.VoltRefreshes {
		t.Fatalf("refreshes not served incrementally: %+v", st)
	}
	if st.VoltCandidatesReused == 0 {
		t.Fatalf("no candidate tree was ever reused: %+v", st)
	}
	if st.MaxCrossCheckError > 1e-9 {
		t.Fatalf("cost cross-check error too large: %g", st.MaxCrossCheckError)
	}
}

// TestFlowIncrementalVoltageMatchesFullVoltage is the flow-level determinism
// criterion for the voltage engine alone: with the incremental cost caches
// on in both legs, toggling only the voltage engine must produce the
// identical best floorplan and metrics for a fixed seed.
func TestFlowIncrementalVoltageMatchesFullVoltage(t *testing.T) {
	des := bench.MustGenerate("n100")
	run := func(voltIncremental bool) *Result {
		vi := voltIncremental
		post := false
		res, err := Run(des, Config{
			Mode:               TSCAware,
			GridN:              16,
			SAIterations:       400,
			Seed:               3,
			PostProcess:        &post,
			IncrementalVoltage: &vi,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fast := run(true)
	full := run(false)
	for m := range fast.Layout.Rects {
		if fast.Layout.Rects[m] != full.Layout.Rects[m] || fast.Layout.DieOf[m] != full.Layout.DieOf[m] {
			t.Fatalf("module %d placed differently: %+v/die%d vs %+v/die%d", m,
				fast.Layout.Rects[m], fast.Layout.DieOf[m], full.Layout.Rects[m], full.Layout.DieOf[m])
		}
	}
	if fast.Metrics.PeakTempK != full.Metrics.PeakTempK || fast.Metrics.PowerW != full.Metrics.PowerW {
		t.Fatalf("metrics differ: peak %v vs %v, power %v vs %v",
			fast.Metrics.PeakTempK, full.Metrics.PeakTempK, fast.Metrics.PowerW, full.Metrics.PowerW)
	}
	if fast.EvalStats.VoltIncrementalRefreshes == 0 {
		t.Fatalf("incremental-voltage run never used the assigner: %+v", fast.EvalStats)
	}
	if fast.EvalStats.VoltCandidatesReused == 0 {
		t.Fatalf("assigner never reused a candidate: %+v", fast.EvalStats)
	}
	if full.EvalStats.VoltIncrementalRefreshes != 0 {
		t.Fatalf("full-voltage run unexpectedly used the assigner: %+v", full.EvalStats)
	}
}

// TestIncrementalVoltageUnderParallelism runs the refresh alongside the
// parallel thermal workers; under `go test -race` (the CI job) it asserts
// the voltage caches never share state with the estimator's fan-out.
func TestIncrementalVoltageUnderParallelism(t *testing.T) {
	des := bench.MustGenerate("n100")
	post := false
	res, err := Run(des, Config{
		Mode:         TSCAware,
		GridN:        16,
		SAIterations: 200,
		Seed:         7,
		PostProcess:  &post,
		Parallelism:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.EvalStats.VoltIncrementalRefreshes == 0 {
		t.Fatalf("incremental voltage inactive: %+v", res.EvalStats)
	}
}
