package core

import (
	"math/rand"
	"testing"

	"repro/internal/bench"
	"repro/internal/floorplan"
	"repro/internal/netlist"
	"repro/internal/thermal"
)

// TestIncrementalSTACrossCheckOverJournaledRun is the acceptance contract
// for the incremental STA engine: a journaled 1k-move perturb/cost/undo run
// with the cross-check enabled must see both cached analyses (reference and
// delay-scaled) match a full AnalyzeFromNetDelays pass on every evaluation
// (crossCheckSTA panics otherwise), while the incremental cost stays within
// the 1e-9 epsilon contract. Interleaved undos exercise the cache journal's
// Revert path and the rebuilt-under-rejected-geometry Invalidate path.
func TestIncrementalSTACrossCheckOverJournaledRun(t *testing.T) {
	ev := makeEval(t, TSCAware, true, 51)
	if !ev.staIncr {
		t.Fatal("incremental STA not active under default config")
	}
	ev.check = true
	rng := rand.New(rand.NewSource(12))
	dec := rand.New(rand.NewSource(13))
	ev.Cost()
	for i := 0; i < 1000; i++ {
		undo := ev.Perturb(rng)
		ev.Cost()
		if dec.Float64() < 0.5 {
			undo()
		}
	}
	st := ev.stats
	if st.STACrossChecks == 0 {
		t.Fatalf("STA cross-checks never ran: %+v", st)
	}
	if st.STAPatches == 0 || st.STAModulesRecomputed == 0 {
		t.Fatalf("the STA caches were never patched: %+v", st)
	}
	if st.STARebuilds == 0 {
		t.Fatalf("the scaled cache never rebuilt across voltage refreshes: %+v", st)
	}
	if st.MaxCrossCheckError > 1e-9 {
		t.Fatalf("cost cross-check error too large: %g", st.MaxCrossCheckError)
	}
}

// TestFlowIncrementalSTAMatchesFullSTA is the flow-level determinism
// criterion for the STA engine alone: with every other incremental cache on
// in both legs, toggling only the timing caches must produce the identical
// best floorplan and metrics for a fixed seed.
func TestFlowIncrementalSTAMatchesFullSTA(t *testing.T) {
	des := bench.MustGenerate("n100")
	run := func(staIncremental bool) *Result {
		si := staIncremental
		post := false
		res, err := Run(des, Config{
			Mode:           TSCAware,
			GridN:          16,
			SAIterations:   400,
			Seed:           3,
			PostProcess:    &post,
			IncrementalSTA: &si,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fast := run(true)
	full := run(false)
	for m := range fast.Layout.Rects {
		if fast.Layout.Rects[m] != full.Layout.Rects[m] || fast.Layout.DieOf[m] != full.Layout.DieOf[m] {
			t.Fatalf("module %d placed differently: %+v/die%d vs %+v/die%d", m,
				fast.Layout.Rects[m], fast.Layout.DieOf[m], full.Layout.Rects[m], full.Layout.DieOf[m])
		}
	}
	if fast.Metrics.PeakTempK != full.Metrics.PeakTempK || fast.Metrics.CriticalNS != full.Metrics.CriticalNS {
		t.Fatalf("metrics differ: peak %v vs %v, critical %v vs %v",
			fast.Metrics.PeakTempK, full.Metrics.PeakTempK, fast.Metrics.CriticalNS, full.Metrics.CriticalNS)
	}
	if fast.EvalStats.STAPatches == 0 {
		t.Fatalf("incremental-STA run never patched a cache: %+v", fast.EvalStats)
	}
	if full.EvalStats.STAPatches != 0 || full.EvalStats.STARebuilds != 0 {
		t.Fatalf("full-STA run unexpectedly used the caches: %+v", full.EvalStats)
	}
}

// degenerateNetDesign is a hand-built stack whose netlist contains the
// degenerate shapes Design.Validate rejects — a single-pin net and an empty
// net — alongside real nets and a terminal net. The evaluators must agree
// on it anyway: degenerate nets carry zero WL and zero delay in both paths.
func degenerateNetDesign() *netlist.Design {
	mod := func(name string, w, h, p, d float64) *netlist.Module {
		return &netlist.Module{Name: name, Kind: netlist.Hard, W: w, H: h, Power: p, IntrinsicDelay: d}
	}
	return &netlist.Design{
		Name: "degenerate", Dies: 2, OutlineW: 400, OutlineH: 400,
		Modules: []*netlist.Module{
			mod("a", 80, 60, 0.4, 0.2),
			mod("b", 60, 90, 0.6, 0.3),
			mod("c", 70, 70, 0.5, 0.25),
			mod("d", 90, 50, 0.3, 0.15),
			mod("e", 50, 50, 0.2, 0.1),
			mod("f", 60, 60, 0.7, 0.35),
		},
		Nets: []*netlist.Net{
			{Name: "ab", Modules: []int{0, 1}},
			{Name: "bcd", Modules: []int{1, 2, 3}},
			{Name: "ef", Modules: []int{4, 5}},
			{Name: "af", Modules: []int{0, 5}},
			{Name: "single", Modules: []int{2}},                    // degree 1: degenerate
			{Name: "empty"},                                        // degree 0: degenerate
			{Name: "term", Modules: []int{3}, Terminals: []int{0}}, // STA-skipped, real WL
		},
		Terminals: []*netlist.Terminal{{Name: "p0", X: 0, Y: 200}},
	}
}

// TestDegenerateNetsAgreeAcrossEvaluators drives the full and incremental
// evaluators over a design containing single-pin and empty nets: costs must
// agree to 1e-9 throughout, the cached WL/delay of the degenerate nets must
// be exactly zero, and no net may carry a negative delay (the un-guarded
// Elmore model gave empty nets sinkPins = -1 and a negative delay).
func TestDegenerateNetsAgreeAcrossEvaluators(t *testing.T) {
	des := degenerateNetDesign()
	build := func(incremental bool) *evaluator {
		cfg := Config{Mode: TSCAware, GridN: 16, Seed: 1}
		cfg.defaults()
		fast := thermal.CalibrateFast(thermal.DefaultConfig(16, 16, des.OutlineW, des.OutlineH, des.Dies))
		rng := rand.New(rand.NewSource(1))
		ev := &evaluator{fp: floorplan.NewRandom(des, rng), cfg: &cfg, fast: fast}
		if incremental {
			ev.incr = newIncrState()
			ev.voltIncr = *cfg.IncrementalVoltage
			ev.entropyIncr = *cfg.IncrementalEntropy
			ev.adjIncr = *cfg.AdjacencyIndex
			ev.staIncr = *cfg.IncrementalSTA
		}
		return ev
	}
	full := build(false)
	inc := build(true)
	mrFull := rand.New(rand.NewSource(21))
	mrInc := rand.New(rand.NewSource(21))
	dec := rand.New(rand.NewSource(22))
	if d := relDiff(inc.Cost(), full.Cost()); d > 1e-9 {
		t.Fatalf("initial cost differs by %g", d)
	}
	for i := 0; i < 200; i++ {
		undoFull := full.Perturb(mrFull)
		undoInc := inc.Perturb(mrInc)
		cf, ci := full.Cost(), inc.Cost()
		if d := relDiff(ci, cf); d > 1e-9 {
			t.Fatalf("cycle %d: incremental %v vs full %v (rel diff %g)", i, ci, cf, d)
		}
		if dec.Float64() < 0.5 {
			undoFull()
			undoInc()
		}
	}
	ic := inc.incr
	for ni, n := range des.Nets {
		if n.Degree() < 2 {
			if ic.netWL[ni] != 0 || ic.netDelay[ni] != 0 || ic.netLen[ni] != 0 {
				t.Fatalf("degenerate net %q cached WL/delay not zero: wl=%v delay=%v",
					n.Name, ic.netWL[ni], ic.netDelay[ni])
			}
		}
		if ic.netDelay[ni] < 0 {
			t.Fatalf("net %q has negative cached delay %v", n.Name, ic.netDelay[ni])
		}
	}
}
