package core

import (
	"math"
	"math/rand"

	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/leakage"
	"repro/internal/thermal"
	"repro/internal/timing"
	"repro/internal/volt"
)

// evaluator adapts a floorplan to the anneal.Problem interface, computing
// the multi-objective cost of Sec. 7 with the fast thermal analysis in the
// loop (Fig. 3).
type evaluator struct {
	fp   *floorplan.Floorplan
	cfg  *Config
	fast *thermal.FastEstimator

	// Voltage assignment is refreshed every VoltEvery evaluations; the
	// scales apply in between (module identity is stable across moves).
	evals       int
	powerScale  []float64
	delayScale  []float64
	nVolumes    int
	scaledPower float64

	// Normalization baselines (set on first evaluation).
	norm *normTerms
}

type normTerms struct {
	viol, wl, delay, peak, power, volumes, corr, entropy, rule float64
}

func nz(v float64) float64 {
	if v <= 1e-12 {
		return 1
	}
	return v
}

// Cost evaluates the current floorplan.
func (e *evaluator) Cost() float64 {
	l := e.fp.Pack()
	terms := e.terms(l)
	if e.norm == nil {
		n := *terms
		n.viol = nz(l.OutlineW * l.OutlineH * 0.05) // 5% of a die as the violation scale
		n.wl = nz(terms.wl)
		n.delay = nz(terms.delay)
		n.peak = nz(terms.peak)
		n.power = nz(terms.power)
		n.volumes = nz(terms.volumes)
		n.corr = nz(terms.corr)
		n.entropy = nz(terms.entropy)
		n.rule = 1 // already a fraction in [0,1]
		e.norm = &n
	}
	w := e.cfg.Weights
	cost := w.OutlineViolation*terms.viol/e.norm.viol +
		w.Wirelength*terms.wl/e.norm.wl +
		w.CriticalDelay*terms.delay/e.norm.delay +
		w.PeakTemp*terms.peak/e.norm.peak +
		w.Power*terms.power/e.norm.power +
		w.VoltageVolumes*terms.volumes/e.norm.volumes +
		w.DesignRule*terms.rule/e.norm.rule
	if e.cfg.Mode == TSCAware {
		cost += w.Correlation*terms.corr/e.norm.corr +
			w.SpatialEntropy*terms.entropy/e.norm.entropy
	}
	return cost
}

// terms computes the raw cost terms for a packed layout.
func (e *evaluator) terms(l *floorplan.Layout) *normTerms {
	t := &normTerms{}
	t.viol = l.OutlineViolation()
	t.wl = l.HPWL(e.cfg.TimingParams.VertLen)

	// Voltage assignment: refresh periodically, reuse scales in between.
	if e.powerScale == nil || e.evals%e.cfg.VoltEvery == 0 {
		ref := timing.Analyze(l, nil, *e.cfg.TimingParams)
		asg := volt.Assign(l, ref, e.voltConfig())
		e.powerScale = asg.PowerScale
		e.delayScale = asg.DelayScale
		e.nVolumes = len(asg.Volumes)
		e.scaledPower = asg.TotalPower
	} else {
		e.scaledPower = 0
		for m, mod := range l.Design.Modules {
			e.scaledPower += mod.Power * e.powerScale[m]
		}
	}
	e.evals++
	sta := timing.Analyze(l, e.delayScale, *e.cfg.TimingParams)
	t.delay = sta.Critical
	t.power = e.scaledPower
	t.volumes = float64(e.nVolumes)

	// Fast thermal estimate on the voltage-scaled power maps.
	powers := scaledPowers(l, e.powerScale)
	maps := make([]*geom.Grid, l.Dies)
	for d := 0; d < l.Dies; d++ {
		maps[d] = l.PowerMap(d, e.cfg.GridN, e.cfg.GridN, powers)
	}
	temps := e.fast.Estimate(maps)
	peak := 0.0
	for _, tm := range temps {
		if m := tm.Max(); m > peak {
			peak = m
		}
	}
	t.peak = peak

	if e.cfg.Mode == TSCAware {
		corr, entropy := 0.0, 0.0
		for d := 0; d < l.Dies; d++ {
			corr += math.Abs(leakage.Pearson(maps[d], temps[d]))
			entropy += leakage.SpatialEntropy(maps[d], leakage.EntropyOptions{})
		}
		t.corr = corr / float64(l.Dies)
		t.entropy = entropy / float64(l.Dies)
	}

	// Corblivar's thermal design rule: the power-weighted distance from
	// the heatsink-side (top) die, as a fraction of total power.
	if l.Dies > 1 {
		away, total := 0.0, 0.0
		for m := range l.Design.Modules {
			p := powers[m]
			total += p
			away += p * float64(l.Dies-1-l.DieOf[m]) / float64(l.Dies-1)
		}
		if total > 0 {
			t.rule = away / total
		}
	}
	return t
}

func (e *evaluator) voltConfig() volt.Config {
	mode := volt.PowerAware
	if e.cfg.Mode == TSCAware {
		mode = volt.TSCAware
	}
	return volt.Config{Mode: mode, TargetFactor: e.cfg.VoltTargetFactor}
}

// Perturb applies one floorplan move; voltage scales stay valid because the
// module set is unchanged (only geometry moves).
func (e *evaluator) Perturb(rng *rand.Rand) func() {
	_, undo := e.fp.Perturb(rng)
	return undo
}

// scaledPowers applies per-module power scaling (nil = nominal).
func scaledPowers(l *floorplan.Layout, scale []float64) []float64 {
	p := l.NominalPowers()
	if scale != nil {
		for m := range p {
			p[m] *= scale[m]
		}
	}
	return p
}
