package core

import (
	"math"
	"math/rand"

	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/leakage"
	"repro/internal/thermal"
	"repro/internal/timing"
	"repro/internal/volt"
)

// evaluator adapts a floorplan to the anneal.Problem interface, computing
// the multi-objective cost of Sec. 7 with the fast thermal analysis in the
// loop (Fig. 3).
//
// Two evaluation paths share the same math: the full path packs the whole
// floorplan and recomputes every term from scratch on every call, while the
// incremental path (incr non-nil, see incremental.go) repacks only the dies
// a move touched and patches the per-net and per-die caches. The check flag
// cross-checks every incremental evaluation against the full path.
type evaluator struct {
	fp   *floorplan.Floorplan
	cfg  *Config
	fast *thermal.FastEstimator

	// Voltage assignment is refreshed every VoltEvery evaluations; the
	// scales apply in between (module identity is stable across moves).
	evals       int
	powerScale  []float64
	delayScale  []float64
	nVolumes    int
	scaledPower float64

	// Normalization baselines (set on first evaluation).
	norm *normTerms

	// incr, when non-nil, holds the incremental caches; voltIncr routes the
	// stride voltage refreshes through incr's cached volt.Assigner instead
	// of a from-scratch volt.Assign (requires incr); entropyIncr serves the
	// per-dirty-die spatial entropy from incr's leakage.EntropyCache
	// instead of a from-scratch SpatialEntropy; adjIncr equips the cached
	// assigner with the churn-tolerant adjacency index; staIncr serves the
	// per-move reference and delay-scaled STA from incr's timing.STACache
	// pair instead of two full AnalyzeFromNetDelaysInto passes; check
	// enables the per-eval full-recompute cross-check (debug aid, heavily
	// slows runs).
	incr        *incrState
	voltIncr    bool
	entropyIncr bool
	adjIncr     bool
	staIncr     bool
	check       bool
	stats       EvalStats
}

type normTerms struct {
	viol, wl, delay, peak, power, volumes, corr, entropy, rule float64
}

func nz(v float64) float64 {
	if v <= 1e-12 {
		return 1
	}
	return v
}

// Cost evaluates the current floorplan.
func (e *evaluator) Cost() float64 {
	if e.incr != nil {
		return e.incrementalCost()
	}
	e.stats.Evals++
	e.stats.FullEvals++
	l := e.fp.Pack()
	return e.finishCost(l, e.terms(l))
}

// finishCost normalizes and weights raw terms into the scalar cost,
// initializing the normalization baselines on the first evaluation. Both
// evaluation paths funnel through here.
func (e *evaluator) finishCost(l *floorplan.Layout, terms *normTerms) float64 {
	if e.norm == nil {
		n := *terms
		n.viol = nz(l.OutlineW * l.OutlineH * 0.05) // 5% of a die as the violation scale
		n.wl = nz(terms.wl)
		n.delay = nz(terms.delay)
		n.peak = nz(terms.peak)
		n.power = nz(terms.power)
		n.volumes = nz(terms.volumes)
		n.corr = nz(terms.corr)
		n.entropy = nz(terms.entropy)
		n.rule = 1 // already a fraction in [0,1]
		e.norm = &n
	}
	w := e.cfg.Weights
	cost := w.OutlineViolation*terms.viol/e.norm.viol +
		w.Wirelength*terms.wl/e.norm.wl +
		w.CriticalDelay*terms.delay/e.norm.delay +
		w.PeakTemp*terms.peak/e.norm.peak +
		w.Power*terms.power/e.norm.power +
		w.VoltageVolumes*terms.volumes/e.norm.volumes +
		w.DesignRule*terms.rule/e.norm.rule
	if e.cfg.Mode == TSCAware {
		cost += w.Correlation*terms.corr/e.norm.corr +
			w.SpatialEntropy*terms.entropy/e.norm.entropy
	}
	return cost
}

// terms computes the raw cost terms for a packed layout: the voltage-cache
// bookkeeping followed by the geometry- and scale-derived terms.
func (e *evaluator) terms(l *floorplan.Layout) *normTerms {
	e.refreshVoltage(l, func() *timing.Analysis {
		return timing.Analyze(l, nil, *e.cfg.TimingParams)
	})
	return e.staticTerms(l)
}

// refreshVoltage advances the evaluation counter and re-runs the voltage
// assignment on the stride boundary (the paper integrates it continuously;
// the stride keeps runtime at the reported ~30% overhead), otherwise
// refreshes the scaled power sum under the cached scales. ref supplies the
// reference STA for the assignment; the incremental path substitutes its
// cached net delays, and with voltIncr set serves the assignment itself from
// the cached volt.Assigner. Reports whether the assignment ran.
func (e *evaluator) refreshVoltage(l *floorplan.Layout, ref func() *timing.Analysis) bool {
	refreshed := false
	if e.powerScale == nil || e.evals%e.cfg.VoltEvery == 0 {
		var asg *volt.Assignment
		if e.voltIncr && e.incr != nil {
			asg = e.incr.refreshVoltAssignment(e, ref())
		} else {
			asg = volt.Assign(l, ref(), e.voltConfig())
		}
		e.powerScale = asg.PowerScale
		e.delayScale = asg.DelayScale
		e.nVolumes = len(asg.Volumes)
		e.scaledPower = asg.TotalPower
		e.stats.VoltRefreshes++
		refreshed = true
	} else {
		e.scaledPower = 0
		for m, mod := range l.Design.Modules {
			e.scaledPower += mod.Power * e.powerScale[m]
		}
	}
	e.evals++
	return refreshed
}

// staticTerms computes the raw cost terms from the layout geometry and the
// current voltage scales, touching no evaluator bookkeeping. It is the
// full-recompute reference the incremental path is checked against.
func (e *evaluator) staticTerms(l *floorplan.Layout) *normTerms {
	t := &normTerms{}
	t.viol = l.OutlineViolation()
	t.wl = l.HPWL(e.cfg.TimingParams.VertLen)
	sta := timing.Analyze(l, e.delayScale, *e.cfg.TimingParams)
	t.delay = sta.Critical
	t.power = e.scaledPower
	t.volumes = float64(e.nVolumes)

	// Fast thermal estimate on the voltage-scaled power maps.
	powers := scaledPowers(l, e.powerScale)
	maps := make([]*geom.Grid, l.Dies)
	for d := 0; d < l.Dies; d++ {
		maps[d] = l.PowerMap(d, e.cfg.GridN, e.cfg.GridN, powers)
	}
	temps := e.fast.Estimate(maps)
	t.peak = peakOf(temps)

	if e.cfg.Mode == TSCAware {
		corr, entropy := 0.0, 0.0
		for d := 0; d < l.Dies; d++ {
			corr += math.Abs(leakage.Pearson(maps[d], temps[d]))
			entropy += leakage.SpatialEntropy(maps[d], leakage.EntropyOptions{})
		}
		t.corr = corr / float64(l.Dies)
		t.entropy = entropy / float64(l.Dies)
	}

	t.rule = designRuleTerm(l, powers)
	return t
}

// peakOf returns the hottest cell over the per-die temperature maps.
func peakOf(temps []*geom.Grid) float64 {
	peak := 0.0
	for _, tm := range temps {
		if m := tm.Max(); m > peak {
			peak = m
		}
	}
	return peak
}

// designRuleTerm is Corblivar's thermal design rule: the power-weighted
// distance from the heatsink-side (top) die, as a fraction of total power.
func designRuleTerm(l *floorplan.Layout, powers []float64) float64 {
	if l.Dies <= 1 {
		return 0
	}
	away, total := 0.0, 0.0
	for m := range l.Design.Modules {
		p := powers[m]
		total += p
		away += p * float64(l.Dies-1-l.DieOf[m]) / float64(l.Dies-1)
	}
	if total <= 0 {
		return 0
	}
	return away / total
}

// voltConfig is the shared assignment configuration. One-shot volt.Assign
// calls (the full path and the cross-check references) force FullAdjacency
// themselves; the held Assigner in refreshVoltAssignment sets it from the
// AdjacencyIndex option.
func (e *evaluator) voltConfig() volt.Config {
	mode := volt.PowerAware
	if e.cfg.Mode == TSCAware {
		mode = volt.TSCAware
	}
	return volt.Config{Mode: mode, TargetFactor: e.cfg.VoltTargetFactor}
}

// Perturb applies one floorplan move; voltage scales stay valid because the
// module set is unchanged (only geometry moves). With incremental caches
// active the undo closure also rolls the caches back.
func (e *evaluator) Perturb(rng *rand.Rand) func() {
	if e.incr == nil {
		_, undo := e.fp.Perturb(rng)
		return undo
	}
	return e.incr.perturb(e, rng)
}

// scaledPowers applies per-module power scaling (nil = nominal).
func scaledPowers(l *floorplan.Layout, scale []float64) []float64 {
	p := l.NominalPowers()
	if scale != nil {
		for m := range p {
			p[m] *= scale[m]
		}
	}
	return p
}
