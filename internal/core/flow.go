package core

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/anneal"
	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/leakage"
	"repro/internal/netlist"
	"repro/internal/thermal"
	"repro/internal/timing"
	"repro/internal/tsv"
	"repro/internal/volt"
)

// Run executes one full floorplanning flow (Fig. 3) on the design:
// annealing with the fast thermal analysis in the loop, signal-TSV planning,
// final voltage assignment with timing repair, detailed thermal verification
// of the leakage correlation, and — in TSC mode — the activity-sampling /
// dummy-TSV post-processing stage.
func Run(des *netlist.Design, cfg Config) (*Result, error) {
	return RunContext(context.Background(), des, cfg)
}

// RunContext is Run with cooperative cancellation: ctx is polled between
// annealing moves, thermal-solver sweeps, and activity samples, and the flow
// returns ctx.Err() promptly once it is done. A cancelled run returns no
// partial Result.
func RunContext(ctx context.Context, des *netlist.Design, cfg Config) (*Result, error) {
	cfg.defaults()
	if err := des.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid design: %w", err)
	}
	if des.Dies < 2 {
		return nil, fmt.Errorf("core: the flow needs a stacked design (>= 2 dies), got %d", des.Dies)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	//lint:wallclock RuntimeSec is a reporting stat; golden compares exclude it
	started := time.Now()
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Fast-analysis calibration (one impulse solve per die).
	thermCfg := thermal.DefaultConfig(cfg.GridN, cfg.GridN, des.OutlineW, des.OutlineH, des.Dies)
	fast := thermal.CalibrateFastWorkers(thermCfg, cfg.Parallelism)

	// Annealing: the serial chain, or — when replica exchange or
	// speculative evaluation is requested — the parallel annealer. The
	// serial path is untouched so existing seeds reproduce byte-identically.
	var best *floorplan.Floorplan
	var evStats EvalStats
	if cfg.Replicas > 1 || cfg.Speculation > 1 {
		cfg.emit(ProgressEvent{Stage: StageAnneal, Total: cfg.SAIterations})
		b, stats, err := runParallelAnneal(ctx, des, &cfg, rng, fast)
		if err != nil {
			return nil, err
		}
		best, evStats = b, stats
	} else {
		fp := floorplan.NewRandom(des, rng)
		ev := &evaluator{fp: fp, cfg: &cfg, fast: fast, check: cfg.CostCrossCheck}
		if *cfg.IncrementalCost {
			ev.incr = newIncrState()
			ev.voltIncr = *cfg.IncrementalVoltage
			ev.entropyIncr = *cfg.IncrementalEntropy
			ev.adjIncr = *cfg.AdjacencyIndex
			ev.staIncr = *cfg.IncrementalSTA
		}
		cfg.emit(ProgressEvent{Stage: StageAnneal, Total: cfg.SAIterations})
		ares := anneal.Run(ev, anneal.Options{
			Iterations: cfg.SAIterations,
			Ctx:        ctx,
			OnBest: func(cost float64) {
				best = fp.Clone()
			},
			OnChain: func(done, total int, bestCost float64) {
				cfg.emit(ProgressEvent{Stage: StageAnneal, Done: done, Total: total, Cost: bestCost})
			},
		}, rng)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if best == nil {
			best = fp
		}
		evStats = ev.stats
		evStats.AnnealBestCost = ares.BestCost
	}
	layout := best.Pack()

	res := &Result{
		Design:    layout.Design,
		Layout:    layout,
		EvalStats: evStats,
		started:   started,
	}
	if err := finalize(ctx, res, &cfg, rng); err != nil {
		return nil, err
	}
	res.Metrics.RuntimeSec = time.Since(started).Seconds() //lint:wallclock RuntimeSec is a reporting stat; golden compares exclude it
	cfg.emit(ProgressEvent{Stage: StageDone})
	return res, nil
}

// emit delivers a progress event to the configured callback, if any.
func (c *Config) emit(ev ProgressEvent) {
	if c.Progress != nil {
		c.Progress(ev)
	}
}

// finalize plans TSVs, assigns voltages, runs detailed verification, and (in
// TSC mode) the post-processing stage, filling in the metrics.
func finalize(ctx context.Context, res *Result, cfg *Config, rng *rand.Rand) error {
	l := res.Layout
	cfg.emit(ProgressEvent{Stage: StageFinalize})

	// Signal TSVs for every cross-die net.
	plan := tsv.PlanSignals(l, tsv.Options{})
	res.TSVs = plan

	// Final voltage assignment with timing repair.
	ref := timing.Analyze(l, nil, *cfg.TimingParams)
	vcfg := volt.Config{TargetFactor: cfg.VoltTargetFactor}
	if cfg.Mode == TSCAware {
		vcfg.Mode = volt.TSCAware
	}
	asg := volt.Assign(l, ref, vcfg)
	sta := volt.Repair(l, asg, *cfg.TimingParams, vcfg)
	res.Assignment = asg

	// Detailed thermal verification with all TSVs applied.
	stack := thermal.NewStack(thermal.DefaultConfig(cfg.GridN, cfg.GridN, l.OutlineW, l.OutlineH, l.Dies))
	powers := scaledPowers(l, asg.PowerScale)
	maps := make([]*geom.Grid, l.Dies)
	for d := 0; d < l.Dies; d++ {
		maps[d] = l.PowerMap(d, cfg.GridN, cfg.GridN, powers)
		stack.SetDiePower(d, maps[d])
	}
	applyTSVs(stack, plan, cfg.GridN)
	sol, solStats := stack.SolveSteady(nil, thermal.SolverOpts{Ctx: ctx, Workers: cfg.Parallelism})
	res.SolverStats = solStats
	if err := ctx.Err(); err != nil {
		return err
	}

	res.Stack = stack
	res.PowerMaps = maps
	res.TempMaps = make([]*geom.Grid, l.Dies)
	for d := 0; d < l.Dies; d++ {
		res.TempMaps[d] = sol.DieTemp(d)
	}

	m := &res.Metrics
	m.PerDie = make([]DieMetrics, l.Dies)
	for d := 0; d < l.Dies; d++ {
		m.PerDie[d].R = leakage.Pearson(maps[d], res.TempMaps[d])
		m.PerDie[d].S = leakage.SpatialEntropy(maps[d], leakage.EntropyOptions{})
	}
	syncDieAliases(m)
	m.PowerW = asg.TotalPower
	m.CriticalNS = sta.Critical
	m.WirelengthM = l.HPWL(cfg.TimingParams.VertLen) * 1e-6 // um -> m
	m.PeakTempK = sol.Peak()
	m.SignalTSVs = plan.SignalCount()
	m.VoltageVolumes = len(asg.Volumes)

	// Post-processing: destabilize the leakage correlation by inserting
	// dummy thermal TSVs at the most correlation-stable bins (Sec. 6.2).
	if *cfg.PostProcess {
		if err := postProcess(ctx, res, cfg, rng, sol); err != nil {
			return err
		}
	} else {
		m.PostCorrelationBefore = m.R1
		m.PostCorrelationAfter = m.R1
	}
	m.DummyTSVs = res.TSVs.DummyCount()
	return nil
}

// applyTSVs installs the plan's per-gap copper maps into the stack.
func applyTSVs(stack *thermal.Stack, plan *tsv.Plan, n int) {
	for g := 0; g < stack.Gaps(); g++ {
		stack.SetTSVGapMap(g, plan.CuFractionMapGap(g, n, n))
	}
}

// syncDieAliases refreshes the two-die alias fields from PerDie.
func syncDieAliases(m *Metrics) {
	if len(m.PerDie) == 0 {
		return
	}
	bottom := m.PerDie[0]
	top := m.PerDie[len(m.PerDie)-1]
	m.R1, m.S1 = bottom.R, bottom.S
	m.R2, m.S2 = top.R, top.S
	m.SVF1, m.MeanStability1 = bottom.SVF, bottom.MeanStability
	m.SVF2, m.MeanStability2 = top.SVF, top.MeanStability
}
