package report

import (
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/tsv"
)

var (
	resOnce sync.Once
	testRes *core.Result
)

func result(t *testing.T) *core.Result {
	t.Helper()
	resOnce.Do(func() {
		des := bench.MustGenerate("n100")
		r, err := core.Run(des, core.Config{
			Mode: core.TSCAware, GridN: 16, SAIterations: 100,
			ActivitySamples: 6, MaxDummyGroups: 4, Seed: 11,
		})
		if err != nil {
			t.Fatal(err)
		}
		testRes = r
	})
	return testRes
}

func TestFromResultComplete(t *testing.T) {
	res := result(t)
	r := FromResult(res, "TSC-aware")
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(r.Modules) != 100 {
		t.Fatalf("modules %d", len(r.Modules))
	}
	if r.Benchmark != "n100" || r.Mode != "TSC-aware" || r.Dies != 2 {
		t.Fatalf("header wrong: %+v", r)
	}
	if len(r.TSVs) == 0 || len(r.Volumes) == 0 {
		t.Fatal("missing TSVs or volumes")
	}
	for _, m := range r.Modules {
		if m.VoltageV != 0.8 && m.VoltageV != 1.0 && m.VoltageV != 1.2 {
			t.Fatalf("module %s voltage %v", m.Name, m.VoltageV)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	res := result(t)
	r := FromResult(res, "TSC-aware")
	path := filepath.Join(t.TempDir(), "r.json")
	if err := r.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	if back.Benchmark != r.Benchmark || len(back.Modules) != len(r.Modules) {
		t.Fatal("round trip lost data")
	}
	if back.Metrics.R1 != r.Metrics.R1 {
		t.Fatal("metrics lost")
	}
	g1, err := back.Grid("temp", 0)
	if err != nil {
		t.Fatal(err)
	}
	if g1.Max() != res.TempMaps[0].Max() {
		t.Fatal("temp map lost")
	}
}

func TestReadJSONMissingFile(t *testing.T) {
	if _, err := ReadJSON("/nonexistent/file.json"); err == nil {
		t.Fatal("expected error")
	}
}

func TestGridUnknownKind(t *testing.T) {
	r := FromResult(result(t), "x")
	if _, err := r.Grid("nope", 0); err == nil {
		t.Fatal("expected error")
	}
	if _, err := r.Grid("power", 9); err == nil {
		t.Fatal("expected die range error")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	r := FromResult(result(t), "x")
	r.PowerMaps[0] = r.PowerMaps[0][:3]
	if err := r.Validate(); err == nil {
		t.Fatal("expected size error")
	}
}

func TestHeatmapShape(t *testing.T) {
	g := geom.NewGrid(8, 4)
	g.Set(0, 0, 1)
	h := Heatmap(g)
	lines := strings.Split(strings.TrimRight(h, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("rows %d", len(lines))
	}
	for _, l := range lines {
		if len(l) != 8 {
			t.Fatalf("row length %d", len(l))
		}
	}
	// Hottest cell (0,0) renders at bottom-left as the darkest shade.
	if lines[3][0] != '@' {
		t.Fatalf("expected '@' at bottom-left, got %q", lines[3][0])
	}
}

func TestHeatmapConstant(t *testing.T) {
	g := geom.NewGrid(3, 3)
	g.Fill(5)
	h := Heatmap(g)
	if strings.Trim(h, " \n") != "" {
		t.Fatalf("constant map should render blank, got %q", h)
	}
}

func TestHeatmapWithTSVs(t *testing.T) {
	g := geom.NewGrid(8, 8)
	plan := &tsv.Plan{Geometry: tsv.DefaultGeometry(), OutlineW: 800, OutlineH: 800}
	plan.AddDummy(geom.Point{X: 50, Y: 50}, 4)   // cell (0,0) -> bottom-left
	plan.AddDummy(geom.Point{X: 750, Y: 750}, 1) // cell (7,7) -> top-right
	h := HeatmapWithTSVs(g, plan)
	lines := strings.Split(strings.TrimRight(h, "\n"), "\n")
	if lines[7][0] != 'O' {
		t.Fatalf("group marker missing: %q", lines[7][0])
	}
	if lines[0][7] != 'o' {
		t.Fatalf("single marker missing: %q", lines[0][7])
	}
}
