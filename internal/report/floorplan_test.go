package report

import (
	"strings"
	"testing"

	"repro/internal/floorplan"
	"repro/internal/netlist"
)

func renderDesign() *floorplan.Layout {
	d := &netlist.Design{
		Name: "r",
		Modules: []*netlist.Module{
			{Name: "a", Kind: netlist.Hard, W: 50, H: 50, Power: 1},
			{Name: "b", Kind: netlist.Hard, W: 50, H: 50, Power: 1, Sensitive: true},
		},
		Nets:     []*netlist.Net{{Name: "n", Modules: []int{0, 1}}},
		OutlineW: 100, OutlineH: 100, Dies: 1,
	}
	return floorplan.New(d).Pack()
}

func TestRenderFloorplanStructure(t *testing.T) {
	l := renderDesign()
	out := RenderFloorplan(l, 0, 40)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header + top border + rows + bottom border.
	if len(lines) < 7 {
		t.Fatalf("too few lines: %d", len(lines))
	}
	if !strings.HasPrefix(lines[1], "+") || !strings.HasSuffix(lines[1], "+") {
		t.Fatal("missing border")
	}
	for _, ln := range lines[2 : len(lines)-1] {
		if len(ln) != 42 { // | + 40 + |
			t.Fatalf("row width %d: %q", len(ln), ln)
		}
	}
}

func TestRenderShowsModulesAndSensitivity(t *testing.T) {
	l := renderDesign()
	out := RenderFloorplan(l, 0, 40)
	if !strings.Contains(out, "a") {
		t.Fatal("module a missing")
	}
	// Sensitive module renders upper-case.
	if !strings.Contains(out, "B") {
		t.Fatal("sensitive module should be upper-case")
	}
	if strings.Contains(strings.TrimPrefix(out, "die 0"), "b") {
		t.Fatal("sensitive module must not render lower-case")
	}
}

func TestRenderEmptyDie(t *testing.T) {
	l := renderDesign()
	out := RenderFloorplan(l, 0, 8)
	if out == "" {
		t.Fatal("empty output")
	}
	// Rendering a die index with no modules must not panic and shows only
	// whitespace between borders.
	d := renderDesign()
	d.DieOf[0], d.DieOf[1] = 0, 0
	out2 := RenderFloorplan(d, 1, 20)
	if strings.ContainsAny(out2, "abAB") {
		t.Fatal("die 1 should be empty")
	}
}

func TestClampRange(t *testing.T) {
	lo, hi := clampRange(-2, 50, 10)
	if lo != 0 || hi != 10 {
		t.Fatalf("got %d %d", lo, hi)
	}
	lo, hi = clampRange(3, 3, 10)
	if hi != 4 {
		t.Fatalf("degenerate range must widen: %d %d", lo, hi)
	}
}
