// Package report serializes floorplanning results for downstream tooling:
// a stable JSON schema covering the layout, TSV plan, voltage assignment,
// and metrics, plus terminal-friendly ASCII heatmaps of power and thermal
// grids (the closest a CLI gets to the paper's Figure 2/4 map plots).
package report

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/tsv"
)

// Report is the serializable snapshot of a core.Result.
type Report struct {
	Benchmark string  `json:"benchmark"`
	Mode      string  `json:"mode"`
	OutlineW  float64 `json:"outline_w_um"`
	OutlineH  float64 `json:"outline_h_um"`
	Dies      int     `json:"dies"`

	Modules []ModuleReport `json:"modules"`
	TSVs    []TSVReport    `json:"tsvs"`
	Volumes []VolumeReport `json:"voltage_volumes"`

	Metrics core.Metrics `json:"metrics"`

	// Maps are row-major grids; PowerMaps in W per cell, TempMaps in K.
	GridN     int         `json:"grid_n"`
	PowerMaps [][]float64 `json:"power_maps"`
	TempMaps  [][]float64 `json:"temp_maps"`
}

// ModuleReport is one placed module.
type ModuleReport struct {
	Name      string  `json:"name"`
	Die       int     `json:"die"`
	X         float64 `json:"x_um"`
	Y         float64 `json:"y_um"`
	W         float64 `json:"w_um"`
	H         float64 `json:"h_um"`
	PowerW    float64 `json:"power_w"`
	VoltageV  float64 `json:"voltage_v"`
	Sensitive bool    `json:"sensitive,omitempty"`
}

// TSVReport is one TSV (or TSV group).
type TSVReport struct {
	Kind  string  `json:"kind"`
	X     float64 `json:"x_um"`
	Y     float64 `json:"y_um"`
	Net   int     `json:"net"`
	Count int     `json:"count"`
}

// VolumeReport is one voltage volume.
type VolumeReport struct {
	Modules []int   `json:"modules"`
	Voltage float64 `json:"voltage_v"`
}

// FromResult builds the serializable snapshot. mode is a human-readable
// label ("power-aware", "TSC-aware").
func FromResult(res *core.Result, mode string) *Report {
	r := &Report{
		Benchmark: res.Design.Name,
		Mode:      mode,
		OutlineW:  res.Layout.OutlineW,
		OutlineH:  res.Layout.OutlineH,
		Dies:      res.Layout.Dies,
		Metrics:   res.Metrics,
		GridN:     res.PowerMaps[0].NX,
	}
	for mi, m := range res.Design.Modules {
		rect := res.Layout.Rects[mi]
		r.Modules = append(r.Modules, ModuleReport{
			Name: m.Name, Die: res.Layout.DieOf[mi],
			X: rect.X, Y: rect.Y, W: rect.W, H: rect.H,
			PowerW:    m.Power * res.Assignment.PowerScale[mi],
			VoltageV:  res.Assignment.LevelOf[mi].V,
			Sensitive: m.Sensitive,
		})
	}
	for _, v := range res.TSVs.TSVs {
		r.TSVs = append(r.TSVs, TSVReport{
			Kind: v.Kind.String(), X: v.Pos.X, Y: v.Pos.Y, Net: v.Net, Count: v.Count,
		})
	}
	for _, v := range res.Assignment.Volumes {
		r.Volumes = append(r.Volumes, VolumeReport{Modules: v.Modules, Voltage: v.Level.V})
	}
	for d := 0; d < res.Layout.Dies; d++ {
		r.PowerMaps = append(r.PowerMaps, append([]float64(nil), res.PowerMaps[d].Data...))
		r.TempMaps = append(r.TempMaps, append([]float64(nil), res.TempMaps[d].Data...))
	}
	return r
}

// WriteJSON writes the report to path with indentation.
func (r *Report) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("report: marshal: %w", err)
	}
	return os.WriteFile(path, data, 0o644)
}

// ReadJSON loads a report written by WriteJSON.
func ReadJSON(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("report: unmarshal %s: %w", path, err)
	}
	return &r, nil
}

// Validate checks the report's structural consistency.
func (r *Report) Validate() error {
	if r.Dies < 1 {
		return fmt.Errorf("report: bad die count %d", r.Dies)
	}
	if len(r.PowerMaps) != r.Dies || len(r.TempMaps) != r.Dies {
		return fmt.Errorf("report: map count mismatch")
	}
	want := r.GridN * r.GridN
	for d := 0; d < r.Dies; d++ {
		if len(r.PowerMaps[d]) != want || len(r.TempMaps[d]) != want {
			return fmt.Errorf("report: die %d map size %d, want %d", d, len(r.PowerMaps[d]), want)
		}
	}
	for _, m := range r.Modules {
		if m.Die < 0 || m.Die >= r.Dies {
			return fmt.Errorf("report: module %s on die %d", m.Name, m.Die)
		}
	}
	return nil
}

// Grid reconstructs die d's map of the given kind ("power" or "temp").
func (r *Report) Grid(kind string, d int) (*geom.Grid, error) {
	if d < 0 || d >= r.Dies {
		return nil, fmt.Errorf("report: die %d out of range", d)
	}
	g := geom.NewGrid(r.GridN, r.GridN)
	switch kind {
	case "power":
		copy(g.Data, r.PowerMaps[d])
	case "temp":
		copy(g.Data, r.TempMaps[d])
	default:
		return nil, fmt.Errorf("report: unknown map kind %q", kind)
	}
	return g, nil
}

// shades orders ASCII density characters light to dark.
const shades = " .:-=+*#%@"

// Heatmap renders a grid as terminal ASCII art, one character per cell,
// linearly binned between the grid's min and max. Row 0 (y=0) prints at
// the bottom, matching plot orientation.
func Heatmap(g *geom.Grid) string {
	lo, hi := g.Min(), g.Max()
	span := hi - lo
	var b strings.Builder
	for j := g.NY - 1; j >= 0; j-- {
		for i := 0; i < g.NX; i++ {
			idx := 0
			if span > 0 {
				idx = int((g.At(i, j) - lo) / span * float64(len(shades)-1))
			}
			if idx < 0 {
				idx = 0
			}
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			b.WriteByte(shades[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// HeatmapWithTSVs renders like Heatmap but overlays TSV positions as 'o'
// (single vias) or 'O' (groups), mirroring the white dots of the paper's
// Figure 2.
func HeatmapWithTSVs(g *geom.Grid, plan *tsv.Plan) string {
	base := []byte(Heatmap(g))
	lineLen := g.NX + 1 // cells + newline
	for _, v := range plan.TSVs {
		i := int(v.Pos.X / plan.OutlineW * float64(g.NX))
		j := int(v.Pos.Y / plan.OutlineH * float64(g.NY))
		if i < 0 || i >= g.NX || j < 0 || j >= g.NY {
			continue
		}
		row := g.NY - 1 - j
		ch := byte('o')
		if v.Count > 1 {
			ch = 'O'
		}
		base[row*lineLen+i] = ch
	}
	return string(base)
}
