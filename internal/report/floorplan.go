package report

import (
	"fmt"
	"strings"

	"repro/internal/floorplan"
)

// RenderFloorplan draws one die of a layout as ASCII art (the terminal
// counterpart of the paper's Figure 4a): each module's footprint is filled
// with a letter cycling through the alphabet, sensitive modules are
// upper-cased, and whitespace stays blank. Width is the character-grid
// width; the height follows from the die aspect ratio (terminal cells are
// roughly twice as tall as wide, so the row count is halved).
func RenderFloorplan(l *floorplan.Layout, die, width int) string {
	if width < 8 {
		width = 8
	}
	height := int(float64(width) * l.OutlineH / l.OutlineW / 2)
	if height < 4 {
		height = 4
	}
	cells := make([]byte, width*height)
	for i := range cells {
		cells[i] = ' '
	}
	letters := "abcdefghijklmnopqrstuvwxyz"
	k := 0
	for mi, r := range l.Rects {
		if l.DieOf[mi] != die {
			continue
		}
		ch := letters[k%len(letters)]
		k++
		if l.Design.Modules[mi].Sensitive {
			ch = ch - 'a' + 'A'
		}
		i0 := int(r.X / l.OutlineW * float64(width))
		i1 := int(r.MaxX() / l.OutlineW * float64(width))
		j0 := int(r.Y / l.OutlineH * float64(height))
		j1 := int(r.MaxY() / l.OutlineH * float64(height))
		i0, i1 = clampRange(i0, i1, width)
		j0, j1 = clampRange(j0, j1, height)
		for j := j0; j < j1; j++ {
			for i := i0; i < i1; i++ {
				cells[j*width+i] = ch
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "die %d (%dx%d um, %d modules):\n", die, int(l.OutlineW), int(l.OutlineH), len(l.ModulesOnDie(die)))
	b.WriteByte('+')
	b.WriteString(strings.Repeat("-", width))
	b.WriteString("+\n")
	for j := height - 1; j >= 0; j-- {
		b.WriteByte('|')
		b.Write(cells[j*width : (j+1)*width])
		b.WriteString("|\n")
	}
	b.WriteByte('+')
	b.WriteString(strings.Repeat("-", width))
	b.WriteString("+\n")
	return b.String()
}

func clampRange(lo, hi, n int) (int, int) {
	if lo < 0 {
		lo = 0
	}
	if hi > n {
		hi = n
	}
	if hi <= lo && lo < n {
		hi = lo + 1
	}
	return lo, hi
}
