package attack

import (
	"math"
	"math/rand"

	"repro/internal/geom"
)

// LocalizationResult reports one localization attempt (Sec. 5, attack 2).
type LocalizationResult struct {
	Module   int
	TrueDie  int
	TruePos  geom.Point
	EstDie   int
	EstPos   geom.Point
	ErrorUM  float64 // Euclidean distance on the estimated die
	Hit      bool    // estimate falls inside the module's footprint
	DieMatch bool
}

// LocalizeOptions tunes the attack.
type LocalizeOptions struct {
	// HighActivity and LowActivity are the toggled module's multipliers.
	// The paper's attacker crafts inputs that trigger the module hard or
	// leave it idle; defaults 3.0 / 0.0.
	HighActivity float64
	LowActivity  float64
	// TopFraction of the differential map's hottest bins form the centroid
	// estimate. Default 0.02.
	TopFraction float64
}

func (o *LocalizeOptions) defaults() {
	if o.HighActivity == 0 {
		o.HighActivity = 3.0
	}
	if o.TopFraction == 0 {
		o.TopFraction = 0.02
	}
}

// Localize runs the localization attack against module mi: toggle its
// activity between high and low, difference the thermal estimates, and take
// the centroid of the strongest response as the position estimate. The die
// with the strongest response is the die estimate.
func Localize(d *Device, mi int, opts LocalizeOptions) LocalizationResult {
	opts.defaults()
	actHigh := d.ones()
	actHigh[mi] = opts.HighActivity
	actLow := d.ones()
	actLow[mi] = opts.LowActivity
	high := d.Respond(actHigh)
	low := d.Respond(actLow)

	res := LocalizationResult{
		Module:  mi,
		TrueDie: d.ModuleDie(mi),
		TruePos: d.ModuleCenter(mi),
	}
	// Differential maps; the strongest total excess picks the die.
	bestDie, bestScore := 0, math.Inf(-1)
	diffs := make([]*geom.Grid, d.Dies())
	for die := 0; die < d.Dies(); die++ {
		diff := high[die].Clone()
		diff.SubGrid(low[die])
		diffs[die] = diff
		if s := diff.Max(); s > bestScore {
			bestScore, bestDie = s, die
		}
	}
	res.EstDie = bestDie
	res.DieMatch = bestDie == res.TrueDie

	// Centroid of the top-q bins on the estimated die.
	diff := diffs[bestDie]
	n := diff.Len()
	k := int(float64(n) * opts.TopFraction)
	if k < 1 {
		k = 1
	}
	thr := diff.Quantile(1 - opts.TopFraction)
	outline := geom.Rect{W: d.res.Layout.OutlineW, H: d.res.Layout.OutlineH}
	var wx, wy, wsum float64
	for j := 0; j < diff.NY; j++ {
		for i := 0; i < diff.NX; i++ {
			v := diff.At(i, j)
			if v < thr {
				continue
			}
			c := diff.CellCenter(outline, i, j)
			w := v - thr
			if w <= 0 {
				w = 1e-12
			}
			wx += w * c.X
			wy += w * c.Y
			wsum += w
		}
	}
	if wsum > 0 {
		res.EstPos = geom.Point{X: wx / wsum, Y: wy / wsum}
	}
	res.ErrorUM = res.EstPos.Euclid(res.TruePos)
	res.Hit = res.DieMatch && d.res.Layout.Rects[mi].Contains(res.EstPos)
	return res
}

// LocalizationStudy attacks every module in targets and aggregates.
type LocalizationStudy struct {
	Results   []LocalizationResult
	HitRate   float64
	DieRate   float64
	MeanError float64 // um
}

// LocalizeAll runs Localize on each target module.
func LocalizeAll(d *Device, targets []int, opts LocalizeOptions) LocalizationStudy {
	st := LocalizationStudy{}
	for _, mi := range targets {
		r := Localize(d, mi, opts)
		st.Results = append(st.Results, r)
		if r.Hit {
			st.HitRate++
		}
		if r.DieMatch {
			st.DieRate++
		}
		st.MeanError += r.ErrorUM
	}
	if len(st.Results) > 0 {
		n := float64(len(st.Results))
		st.HitRate /= n
		st.DieRate /= n
		st.MeanError /= n
	}
	return st
}

// CharacterizationResult reports the model-building attack (Sec. 5,
// attack 1).
type CharacterizationResult struct {
	Targets      []int
	Probes       int // steady-state evaluations spent building the model
	TestPatterns int
	// R2 is the coefficient of determination of the attacker's linear
	// thermal model on held-out activity patterns, averaged over dies.
	// 1 = the device is perfectly characterizable; lower is safer.
	R2 float64
}

// Characterize builds the attacker's thermal model by signature probing —
// the paper's attacker applies "specifically crafted, repetitive input
// patterns" per component: each target module is toggled high/low in
// isolation and the differential response becomes its thermal signature.
// The model T = T_nominal + sum_m sig_m * (act_m - 1) is then scored by R^2
// on kTest random activity patterns over the same targets. Sensor noise,
// interpolation error, and (de)correlated thermal structure determine how
// predictive the model can get.
func Characterize(d *Device, targets []int, kTest int, rng *rand.Rand) CharacterizationResult {
	dies := d.Dies()
	bins := d.gridN * d.gridN
	const hi, lo = 2.0, 0.5

	// Nominal baseline.
	base := d.Respond(d.ones())

	// Signatures per target: (T_hi - T_lo) / (hi - lo).
	sig := make(map[int][]*geom.Grid, len(targets))
	for _, mi := range targets {
		actHi := d.ones()
		actHi[mi] = hi
		actLo := d.ones()
		actLo[mi] = lo
		thi := d.Respond(actHi)
		tlo := d.Respond(actLo)
		s := make([]*geom.Grid, dies)
		for die := 0; die < dies; die++ {
			g := thi[die].Clone()
			g.SubGrid(tlo[die])
			g.ScaleBy(1 / (hi - lo))
			s[die] = g
		}
		sig[mi] = s
	}

	// Test on fresh random patterns over the target set.
	var ssRes, ssTot float64
	for k := 0; k < kTest; k++ {
		act := d.ones()
		for _, mi := range targets {
			act[mi] = lo + (hi-lo)*rng.Float64()
		}
		obs := d.Respond(act)
		for die := 0; die < dies; die++ {
			for b := 0; b < bins; b++ {
				pred := base[die].Data[b]
				for _, mi := range targets {
					pred += sig[mi][die].Data[b] * (act[mi] - 1)
				}
				o := obs[die].Data[b]
				ssRes += (o - pred) * (o - pred)
				ssTot += (o - base[die].Data[b]) * (o - base[die].Data[b])
			}
		}
	}
	r2 := 0.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	if r2 < 0 {
		r2 = 0
	}
	return CharacterizationResult{
		Targets:      append([]int(nil), targets...),
		Probes:       1 + 2*len(targets),
		TestPatterns: kTest,
		R2:           r2,
	}
}

// MonitorResult reports the runtime-monitoring attack: how well the local
// sensor reading tracks the target module's secret activity.
type MonitorResult struct {
	Module      int
	Correlation float64 // |corr(sensor estimate, true activity)| over time
}

// Monitor observes module mi over `steps` random activity steps (all
// modules vary; the attacker watches the bin nearest the module it
// localized) and correlates the readings with the module's true activity.
func Monitor(d *Device, mi int, estPos geom.Point, steps int, rng *rand.Rand) MonitorResult {
	die := d.ModuleDie(mi)
	outline := geom.Rect{W: d.res.Layout.OutlineW, H: d.res.Layout.OutlineH}
	nMod := len(d.powers)
	truth := make([]float64, steps)
	reads := make([]float64, steps)
	for s := 0; s < steps; s++ {
		act := make([]float64, nMod)
		for m := range act {
			act[m] = 0.5 + rng.Float64()
		}
		t := d.Respond(act)
		i, j := t[die].CellAt(outline, estPos)
		truth[s] = act[mi]
		reads[s] = t[die].At(i, j)
	}
	return MonitorResult{Module: mi, Correlation: math.Abs(pearson(truth, reads))}
}

func pearson(a, b []float64) float64 {
	n := float64(len(a))
	if n == 0 {
		return 0
	}
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= n
	mb /= n
	var num, da, db float64
	for i := range a {
		x, y := a[i]-ma, b[i]-mb
		num += x * y
		da += x * x
		db += y * y
	}
	if da <= 0 || db <= 0 {
		return 0
	}
	return num / math.Sqrt(da*db)
}
