package attack

import (
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/thermal"
)

// CovertResult reports a thermal covert-channel experiment (Sec. 2.1 cites
// Masti et al.'s 12.5 bit/s channel between cores): a transmitter module
// encodes bits in its activity, a receiver watches a thermal sensor, and
// the channel quality is the bit error rate at the chosen bit period.
type CovertResult struct {
	Transmitter int
	Receiver    int // module whose location the receiver watches
	BitPeriodS  float64
	Bits        int
	Errors      int
	BER         float64
	// ThroughputBPS is the binary-symmetric-channel capacity at this BER
	// and bit rate: (1 - H2(BER)) / BitPeriod.
	ThroughputBPS float64
}

// CovertOptions tunes the experiment.
type CovertOptions struct {
	// BitPeriodS is the symbol duration in seconds. Default 0.05.
	BitPeriodS float64
	// Bits transmitted. Default 32.
	Bits int
	// HighActivity is the transmitter's multiplier for a 1 bit (0 bits
	// idle the module). Default 4.
	HighActivity float64
	// DT is the transient step in seconds. Default BitPeriodS/10.
	DT float64
	// SensorNoiseK is the receiver's readout noise. Default 0.02.
	SensorNoiseK float64
}

func (o *CovertOptions) defaults() {
	if o.BitPeriodS == 0 {
		o.BitPeriodS = 0.05
	}
	if o.Bits == 0 {
		o.Bits = 32
	}
	if o.HighActivity == 0 {
		o.HighActivity = 4
	}
	if o.DT == 0 {
		o.DT = o.BitPeriodS / 10
	}
	if o.SensorNoiseK == 0 {
		o.SensorNoiseK = 0.02
	}
}

// CovertChannel simulates tx encoding random bits in its activity while a
// receiver thresholds the temperature at module rx's location (a process
// observing its own core's sensor, as in the cited study). Returns the
// measured BER and the resulting channel throughput.
func CovertChannel(res *core.Result, tx, rx int, opts CovertOptions, rng *rand.Rand) CovertResult {
	opts.defaults()
	l := res.Layout
	n := res.PowerMaps[0].NX
	stack := res.Stack

	// Nominal powers with the transmitter idle.
	powers := make([]float64, len(l.Design.Modules))
	for m, mod := range l.Design.Modules {
		powers[m] = mod.Power * res.Assignment.PowerScale[m]
	}

	bits := make([]bool, opts.Bits)
	for i := range bits {
		bits[i] = rng.Intn(2) == 1
	}

	// Receiver location: the bin over module rx's center on rx's die.
	outline := geom.Rect{W: l.OutlineW, H: l.OutlineH}
	rxDie := l.DieOf[rx]
	rxI, rxJ := res.PowerMaps[rxDie].CellAt(outline, l.Rects[rx].Center())

	stepsPerBit := int(math.Max(1, opts.BitPeriodS/opts.DT))
	readings := make([]float64, opts.Bits)

	// Start from the idle steady state.
	setTx := func(active bool) {
		p := append([]float64(nil), powers...)
		if active {
			p[tx] *= opts.HighActivity
		} else {
			p[tx] = 0
		}
		for d := 0; d < l.Dies; d++ {
			stack.SetDiePower(d, l.PowerMap(d, n, n, p))
		}
	}
	setTx(false)
	sol, _ := stack.SolveSteady(nil, thermal.SolverOpts{Tol: 1e-4})
	for b, bit := range bits {
		setTx(bit)
		traj := stack.SolveTransient(sol, opts.DT, stepsPerBit, 0, nil)
		sol = traj[len(traj)-1]
		readings[b] = sol.DieTemp(rxDie).At(rxI, rxJ) + rng.NormFloat64()*opts.SensorNoiseK
	}
	// Restore nominal power maps.
	for d := 0; d < l.Dies; d++ {
		stack.SetDiePower(d, res.PowerMaps[d])
	}

	// Receiver decodes by comparing each reading against the median.
	sorted := append([]float64(nil), readings...)
	insertionSort(sorted)
	median := sorted[len(sorted)/2]
	errors := 0
	for b, bit := range bits {
		decoded := readings[b] > median
		if decoded != bit {
			errors++
		}
	}
	ber := float64(errors) / float64(opts.Bits)
	return CovertResult{
		Transmitter: tx, Receiver: rx,
		BitPeriodS: opts.BitPeriodS, Bits: opts.Bits,
		Errors: errors, BER: ber,
		ThroughputBPS: (1 - binaryEntropy(ber)) / opts.BitPeriodS,
	}
}

func insertionSort(v []float64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

// binaryEntropy returns H2(p) in bits, 0 at p in {0, 1}.
func binaryEntropy(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
}
