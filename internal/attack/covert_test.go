package attack

import (
	"math"
	"math/rand"
	"testing"
)

// pickTxRx returns the hottest module as transmitter and a same-die
// neighbour as receiver.
func pickTxRx(t *testing.T) (int, int) {
	t.Helper()
	res := paResult(t)
	tx, bp := 0, 0.0
	for m, mod := range res.Design.Modules {
		if mod.Power > bp {
			tx, bp = m, mod.Power
		}
	}
	// Receiver: nearest module on the same die.
	rx, best := -1, math.Inf(1)
	for m := range res.Design.Modules {
		if m == tx || res.Layout.DieOf[m] != res.Layout.DieOf[tx] {
			continue
		}
		d := res.Layout.Rects[m].Center().Euclid(res.Layout.Rects[tx].Center())
		if d < best {
			rx, best = m, d
		}
	}
	if rx < 0 {
		t.Fatal("no receiver found")
	}
	return tx, rx
}

func TestCovertChannelSlowBitsDecode(t *testing.T) {
	res := paResult(t)
	tx, rx := pickTxRx(t)
	r := CovertChannel(res, tx, rx, CovertOptions{
		BitPeriodS: 0.2, Bits: 16, HighActivity: 6, SensorNoiseK: 0.001,
	}, rand.New(rand.NewSource(1)))
	if r.BER > 0.3 {
		t.Fatalf("slow covert channel should decode: BER %v", r.BER)
	}
	if r.ThroughputBPS <= 0 {
		t.Fatalf("throughput %v", r.ThroughputBPS)
	}
}

func TestCovertChannelFasterIsWorse(t *testing.T) {
	res := paResult(t)
	tx, rx := pickTxRx(t)
	slow := CovertChannel(res, tx, rx, CovertOptions{
		BitPeriodS: 0.2, Bits: 16, HighActivity: 6, SensorNoiseK: 0.001,
	}, rand.New(rand.NewSource(2)))
	fast := CovertChannel(res, tx, rx, CovertOptions{
		BitPeriodS: 0.002, Bits: 16, HighActivity: 6, SensorNoiseK: 0.001,
	}, rand.New(rand.NewSource(2)))
	// The thermal low-pass must hurt the fast channel more (Figure 1's
	// bandwidth limit). Allow equality: both can be error-free at tiny
	// noise, but fast must not be better.
	if fast.BER < slow.BER {
		t.Fatalf("faster channel cannot have lower BER: fast %v slow %v", fast.BER, slow.BER)
	}
}

func TestCovertResultAccounting(t *testing.T) {
	res := paResult(t)
	tx, rx := pickTxRx(t)
	r := CovertChannel(res, tx, rx, CovertOptions{BitPeriodS: 0.05, Bits: 8}, rand.New(rand.NewSource(3)))
	if r.Bits != 8 || r.Transmitter != tx || r.Receiver != rx {
		t.Fatalf("accounting: %+v", r)
	}
	if r.BER < 0 || r.BER > 1 {
		t.Fatalf("BER %v", r.BER)
	}
	if float64(r.Errors)/float64(r.Bits) != r.BER {
		t.Fatal("BER inconsistent with errors")
	}
}

func TestBinaryEntropy(t *testing.T) {
	if binaryEntropy(0) != 0 || binaryEntropy(1) != 0 {
		t.Fatal("H2 at endpoints")
	}
	if math.Abs(binaryEntropy(0.5)-1) > 1e-12 {
		t.Fatal("H2(0.5) must be 1")
	}
	if binaryEntropy(0.1) >= binaryEntropy(0.3) {
		t.Fatal("H2 must increase toward 0.5")
	}
}

func TestInsertionSort(t *testing.T) {
	v := []float64{3, 1, 2, 0.5}
	insertionSort(v)
	for i := 1; i < len(v); i++ {
		if v[i] < v[i-1] {
			t.Fatal("not sorted")
		}
	}
}
