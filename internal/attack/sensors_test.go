package attack

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// TestInterpolateBoundedByReadout: bilinear interpolation never over- or
// undershoots the sensor extremes.
func TestInterpolateBoundedByReadout(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := Sensors{N: 6}
	for trial := 0; trial < 50; trial++ {
		r := geom.NewGrid(6, 6)
		for i := range r.Data {
			r.Data[i] = 290 + rng.Float64()*30
		}
		up := s.Interpolate(r, 24, 24)
		lo, hi := r.Min(), r.Max()
		if up.Min() < lo-1e-9 || up.Max() > hi+1e-9 {
			t.Fatalf("interpolation out of bounds: [%v,%v] vs [%v,%v]",
				up.Min(), up.Max(), lo, hi)
		}
	}
}

// TestInterpolateAgreesAtSensorSites: upsampling to the sensor resolution
// reproduces the readout.
func TestInterpolateAgreesAtSensorSites(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := Sensors{N: 5}
	r := geom.NewGrid(5, 5)
	for i := range r.Data {
		r.Data[i] = rng.Float64()
	}
	same := s.Interpolate(r, 5, 5)
	for i := range r.Data {
		if math.Abs(r.Data[i]-same.Data[i]) > 1e-9 {
			t.Fatalf("identity upsample differs at %d: %v vs %v", i, r.Data[i], same.Data[i])
		}
	}
}

// TestReadIsDeterministicAtZeroNoise and seeded with noise.
func TestReadDeterminism(t *testing.T) {
	die := geom.NewGrid(16, 16)
	for i := range die.Data {
		die.Data[i] = float64(i)
	}
	s := Sensors{N: 4, NoiseK: 0.5}
	a := s.Read(die, rand.New(rand.NewSource(7)))
	b := s.Read(die, rand.New(rand.NewSource(7)))
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("seeded reads must reproduce")
		}
	}
}

// TestDenserSensorsLowerInterpolationError: with more sensors, the
// attacker's reconstruction of a smooth field improves — the paper's
// premise that rich sensor access strengthens the TSC.
func TestDenserSensorsLowerInterpolationError(t *testing.T) {
	// Smooth ground-truth field.
	truth := geom.NewGrid(32, 32)
	for j := 0; j < 32; j++ {
		for i := 0; i < 32; i++ {
			truth.Set(i, j, 300+5*math.Sin(float64(i)/6)+4*math.Cos(float64(j)/5))
		}
	}
	rng := rand.New(rand.NewSource(3))
	errAt := func(n int) float64 {
		s := Sensors{N: n, NoiseK: 0}
		readout := s.Read(truth, rng)
		est := s.Interpolate(readout, 32, 32)
		sum := 0.0
		for i := range est.Data {
			d := est.Data[i] - truth.Data[i]
			sum += d * d
		}
		return math.Sqrt(sum / float64(len(est.Data)))
	}
	coarse := errAt(4)
	fine := errAt(16)
	if fine >= coarse {
		t.Fatalf("denser sensors must reduce error: %v vs %v", fine, coarse)
	}
}

// TestLocalizationErrorGrowsWithNoise: the defender's margin scales with
// sensor noise (Sec. 2.1's noise limitation).
func TestLocalizationErrorGrowsWithNoise(t *testing.T) {
	res := paResult(t)
	best, bp := 0, 0.0
	for m, mod := range res.Design.Modules {
		if mod.Power > bp {
			best, bp = m, mod.Power
		}
	}
	errAt := func(noise float64) float64 {
		d := NewDevice(res, Sensors{N: 8, NoiseK: noise}, 5)
		total := 0.0
		const reps = 3
		for k := 0; k < reps; k++ {
			r := Localize(d, best, LocalizeOptions{})
			total += r.ErrorUM
		}
		d.Reset()
		return total / reps
	}
	clean := errAt(0)
	noisy := errAt(2.0)
	if noisy < clean {
		t.Fatalf("heavy sensor noise should not improve localization: %v vs %v", noisy, clean)
	}
}
