package attack

import (
	"math"

	"repro/internal/geom"
	"repro/internal/leakage"
	"repro/internal/thermal"
)

// InversionResult reports the temperature-to-power inversion attack: the
// paper lists "temperature-to-power interpolation techniques such as
// [PowerField]" as the third reason the TSC is attractive — the thermal
// side channel proxies the power side channel. The attacker observes the
// steady-state thermal maps, knows (or calibrates) the stack's thermal
// response, and reconstructs the per-die power maps by regularized
// deconvolution.
type InversionResult struct {
	// EstPower[d] is the reconstructed power map of die d (W per cell,
	// same grid as the observation).
	EstPower []*geom.Grid
	// Fidelity[d] is the Pearson correlation between the reconstruction
	// and the true power map — the attack's success measure (1 = the
	// thermal channel fully exposes the power channel).
	Fidelity []float64
	// Iterations actually used.
	Iterations int
}

// InversionOptions tunes the deconvolution.
type InversionOptions struct {
	// Iterations of projected Landweber descent. Default 200.
	Iterations int
	// Step is the gradient step relative to the operator norm estimate.
	// Default 0.5.
	Step float64
}

func (o *InversionOptions) defaults() {
	if o.Iterations == 0 {
		o.Iterations = 200
	}
	if o.Step == 0 {
		o.Step = 0.5
	}
}

// InvertPower reconstructs power maps from observed temperature maps using
// the calibrated fast thermal model: projected Landweber iteration
// (gradient descent on ||T_obs - F(P)||^2 with P >= 0).
//
// obs are the observed per-die temperature maps in K (ambient included);
// truePower, when non-nil, is used to score Fidelity.
func InvertPower(fe *thermal.FastEstimator, obs []*geom.Grid, truePower []*geom.Grid, ambient float64, opts InversionOptions) InversionResult {
	opts.defaults()
	dies := fe.Dies()
	nx, ny := obs[0].NX, obs[0].NY

	// Work on temperature rises.
	rises := make([]*geom.Grid, dies)
	for d := 0; d < dies; d++ {
		r := obs[d].Clone()
		for i := range r.Data {
			r.Data[i] -= ambient
		}
		rises[d] = r
	}

	// Estimate the operator norm from one power iteration to scale the
	// gradient step: lambda_max ~ ||F^T F x|| / ||x||.
	x := make([]*geom.Grid, dies)
	for d := 0; d < dies; d++ {
		g := geom.NewGrid(nx, ny)
		g.Fill(1)
		x[d] = g
	}
	fx := fe.Adjoint(fe.Rises(x))
	num, den := 0.0, 0.0
	for d := 0; d < dies; d++ {
		for i := range fx[d].Data {
			num += fx[d].Data[i] * fx[d].Data[i]
			den += x[d].Data[i] * fx[d].Data[i]
		}
	}
	lambdaMax := 1.0
	if den > 0 {
		lambdaMax = num / den
	}
	step := opts.Step / lambdaMax

	// Projected Landweber.
	est := make([]*geom.Grid, dies)
	for d := 0; d < dies; d++ {
		est[d] = geom.NewGrid(nx, ny)
	}
	res := InversionResult{EstPower: est}
	for it := 0; it < opts.Iterations; it++ {
		pred := fe.Rises(est)
		for d := 0; d < dies; d++ {
			pred[d].SubGrid(rises[d])
			pred[d].ScaleBy(-1) // residual = rises - F(est)
		}
		grad := fe.Adjoint(pred)
		for d := 0; d < dies; d++ {
			for i := range est[d].Data {
				v := est[d].Data[i] + step*grad[d].Data[i]
				if v < 0 {
					v = 0
				}
				est[d].Data[i] = v
			}
		}
		res.Iterations = it + 1
	}

	if truePower != nil {
		res.Fidelity = make([]float64, dies)
		for d := 0; d < dies; d++ {
			res.Fidelity[d] = leakage.Pearson(truePower[d], est[d])
		}
	}
	return res
}

// InvertDevice runs the inversion attack end-to-end against a Device: the
// attacker reads the nominal steady state through the sensors, calibrates a
// fast model of the same stack configuration, and reconstructs the power
// maps. Returns the reconstruction scored against the device's true
// (voltage-scaled) power maps.
func InvertDevice(d *Device, opts InversionOptions) InversionResult {
	obs := d.Respond(d.ones())
	cfg := thermal.DefaultConfig(d.gridN, d.gridN, d.res.Layout.OutlineW, d.res.Layout.OutlineH, d.Dies())
	fe := thermal.CalibrateFast(cfg)
	truth := make([]*geom.Grid, d.Dies())
	for die := 0; die < d.Dies(); die++ {
		truth[die] = d.res.PowerMaps[die]
	}
	r := InvertPower(fe, obs, truth, cfg.Ambient, opts)
	d.Reset()
	return r
}

// MeanFidelity averages the per-die fidelities.
func (r InversionResult) MeanFidelity() float64 {
	if len(r.Fidelity) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, f := range r.Fidelity {
		s += f
	}
	return s / float64(len(r.Fidelity))
}
