// Package attack implements the thermal side-channel attacks of the paper's
// Sec. 5 against floorplanned 3D ICs, under the paper's strong attacker
// model: repeatable inputs, steady-state readings, and unlimited access to
// the on-chip thermal sensors.
//
//   - Thermal characterization (attack 1): the attacker sweeps activity
//     patterns, builds a linear thermal model of the device, and is scored
//     by the model's predictive power on held-out patterns.
//   - Localization (attack 2): the attacker toggles one module's activity
//     and estimates its position from the differential thermal map; scored
//     by hit rate and localization error.
//   - Monitoring (attack 2, continued): once localized, the attacker reads
//     the module's activity over time from the local sensor; scored by the
//     correlation between estimated and true activity.
//
// The mitigation claim under test: TSC-aware floorplans yield lower scores
// than power-aware floorplans on the same benchmark.
package attack

import (
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/thermal"
)

// Sensors models the on-chip thermal sensor grid available to the attacker:
// an N x N lattice per die with additive Gaussian readout noise. The paper
// grants the attacker high-accuracy, continuous readings; NoiseK = 0
// reproduces that bound, small positive values model realistic sensors.
type Sensors struct {
	N      int     // sensors per axis per die
	NoiseK float64 // readout noise sigma in Kelvin
}

// DefaultSensors returns an 8x8 lattice with 0.05 K noise.
func DefaultSensors() Sensors { return Sensors{N: 8, NoiseK: 0.05} }

// Read samples the die temperature map at the sensor lattice and adds
// readout noise.
func (s Sensors) Read(die *geom.Grid, rng *rand.Rand) *geom.Grid {
	out := geom.NewGrid(s.N, s.N)
	for j := 0; j < s.N; j++ {
		for i := 0; i < s.N; i++ {
			// Sensor (i,j) sits at the center of its lattice cell.
			x := int((float64(i) + 0.5) / float64(s.N) * float64(die.NX))
			y := int((float64(j) + 0.5) / float64(s.N) * float64(die.NY))
			v := die.At(clampI(x, 0, die.NX-1), clampI(y, 0, die.NY-1))
			if s.NoiseK > 0 {
				v += rng.NormFloat64() * s.NoiseK
			}
			out.Set(i, j, v)
		}
	}
	return out
}

// Interpolate bilinearly upsamples a sensor readout to nx x ny — the
// paper's interpolation step (high-resolution estimates from sparse
// sensors, after Beneventi et al.).
func (s Sensors) Interpolate(readout *geom.Grid, nx, ny int) *geom.Grid {
	out := geom.NewGrid(nx, ny)
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			// Position in sensor-lattice coordinates.
			fx := (float64(i)+0.5)/float64(nx)*float64(s.N) - 0.5
			fy := (float64(j)+0.5)/float64(ny)*float64(s.N) - 0.5
			x0 := clampI(int(math.Floor(fx)), 0, s.N-1)
			y0 := clampI(int(math.Floor(fy)), 0, s.N-1)
			x1 := clampI(x0+1, 0, s.N-1)
			y1 := clampI(y0+1, 0, s.N-1)
			tx := clampF(fx-float64(x0), 0, 1)
			ty := clampF(fy-float64(y0), 0, 1)
			v := (1-tx)*(1-ty)*readout.At(x0, y0) +
				tx*(1-ty)*readout.At(x1, y0) +
				(1-tx)*ty*readout.At(x0, y1) +
				tx*ty*readout.At(x1, y1)
			out.Set(i, j, v)
		}
	}
	return out
}

// Device is the attacker's interface to a floorplanned 3D IC: apply an
// activity pattern (per-module multipliers on the nominal, voltage-scaled
// power), await the thermal steady state (the paper's second attacker
// assumption), and read the sensors.
type Device struct {
	res     *core.Result
	sensors Sensors
	rng     *rand.Rand
	warm    *thermal.Solution
	powers  []float64 // nominal voltage-scaled module powers
	gridN   int
	// Solves counts steady-state evaluations (attacker effort).
	Solves int
}

// NewDevice wraps a floorplanning result for attack experiments.
func NewDevice(res *core.Result, sensors Sensors, seed int64) *Device {
	powers := make([]float64, len(res.Design.Modules))
	for m, mod := range res.Design.Modules {
		powers[m] = mod.Power * res.Assignment.PowerScale[m]
	}
	return &Device{
		res:     res,
		sensors: sensors,
		rng:     rand.New(rand.NewSource(seed)),
		powers:  powers,
		gridN:   res.PowerMaps[0].NX,
	}
}

// GridN returns the lateral resolution of the device's thermal model.
func (d *Device) GridN() int { return d.gridN }

// Dies returns the die count.
func (d *Device) Dies() int { return d.res.Layout.Dies }

// Respond applies the activity pattern, solves to steady state, and returns
// the attacker's interpolated temperature estimate per die.
func (d *Device) Respond(activity []float64) []*geom.Grid {
	l := d.res.Layout
	p := make([]float64, len(d.powers))
	for m := range p {
		p[m] = d.powers[m] * activity[m]
	}
	for die := 0; die < l.Dies; die++ {
		d.res.Stack.SetDiePower(die, l.PowerMap(die, d.gridN, d.gridN, p))
	}
	sol, _ := d.res.Stack.SolveSteady(d.warm, thermal.SolverOpts{Tol: 1e-4})
	d.warm = sol
	d.Solves++
	out := make([]*geom.Grid, l.Dies)
	for die := 0; die < l.Dies; die++ {
		readout := d.sensors.Read(sol.DieTemp(die), d.rng)
		out[die] = d.sensors.Interpolate(readout, d.gridN, d.gridN)
	}
	return out
}

// Reset restores the nominal power maps (activity 1.0 everywhere).
func (d *Device) Reset() {
	l := d.res.Layout
	for die := 0; die < l.Dies; die++ {
		d.res.Stack.SetDiePower(die, d.res.PowerMaps[die])
	}
}

// ModuleDie returns the die holding module mi.
func (d *Device) ModuleDie(mi int) int { return d.res.Layout.DieOf[mi] }

// ModuleCenter returns module mi's placed center.
func (d *Device) ModuleCenter(mi int) geom.Point {
	return d.res.Layout.Rects[mi].Center()
}

// ones returns an all-1.0 activity vector.
func (d *Device) ones() []float64 {
	a := make([]float64, len(d.powers))
	for i := range a {
		a[i] = 1
	}
	return a
}

func clampI(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
