package attack

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/geom"
)

// sharedResult caches one small floorplanning run for all attack tests.
var (
	resOnce sync.Once
	resPA   *core.Result
)

func paResult(t *testing.T) *core.Result {
	t.Helper()
	resOnce.Do(func() {
		des := bench.MustGenerate("n100")
		r, err := core.Run(des, core.Config{
			Mode: core.PowerAware, GridN: 16, SAIterations: 120,
			ActivitySamples: 8, Seed: 42,
		})
		if err != nil {
			t.Fatal(err)
		}
		resPA = r
	})
	return resPA
}

func TestSensorsReadDims(t *testing.T) {
	s := Sensors{N: 4, NoiseK: 0}
	die := geom.NewGrid(16, 16)
	die.Fill(300)
	r := s.Read(die, rand.New(rand.NewSource(1)))
	if r.NX != 4 || r.NY != 4 {
		t.Fatalf("dims %dx%d", r.NX, r.NY)
	}
	for _, v := range r.Data {
		if v != 300 {
			t.Fatal("noiseless read of constant field must be constant")
		}
	}
}

func TestSensorsNoiseApplied(t *testing.T) {
	s := Sensors{N: 4, NoiseK: 1.0}
	die := geom.NewGrid(16, 16)
	die.Fill(300)
	r := s.Read(die, rand.New(rand.NewSource(2)))
	varies := false
	for _, v := range r.Data {
		if v != 300 {
			varies = true
		}
	}
	if !varies {
		t.Fatal("noise not applied")
	}
}

func TestInterpolateConstantField(t *testing.T) {
	s := Sensors{N: 4}
	r := geom.NewGrid(4, 4)
	r.Fill(7)
	up := s.Interpolate(r, 16, 16)
	for _, v := range up.Data {
		if math.Abs(v-7) > 1e-12 {
			t.Fatal("interpolation of constant field must be constant")
		}
	}
}

func TestInterpolatePreservesGradientDirection(t *testing.T) {
	s := Sensors{N: 4}
	r := geom.NewGrid(4, 4)
	for j := 0; j < 4; j++ {
		for i := 0; i < 4; i++ {
			r.Set(i, j, float64(i))
		}
	}
	up := s.Interpolate(r, 16, 16)
	for j := 0; j < 16; j++ {
		for i := 1; i < 16; i++ {
			if up.At(i, j) < up.At(i-1, j)-1e-9 {
				t.Fatal("interpolation broke monotone gradient")
			}
		}
	}
}

func TestDeviceRespondShapes(t *testing.T) {
	d := NewDevice(paResult(t), Sensors{N: 8, NoiseK: 0}, 1)
	maps := d.Respond(d.ones())
	if len(maps) != 2 {
		t.Fatalf("dies %d", len(maps))
	}
	for _, m := range maps {
		if m.NX != d.GridN() || m.NY != d.GridN() {
			t.Fatal("map dims")
		}
		if m.Max() <= 293 {
			t.Fatal("temperatures at ambient")
		}
	}
	if d.Solves != 1 {
		t.Fatalf("solves %d", d.Solves)
	}
	d.Reset()
}

func TestHigherActivityHotter(t *testing.T) {
	d := NewDevice(paResult(t), Sensors{N: 8, NoiseK: 0}, 2)
	low := d.Respond(d.ones())
	hi := d.ones()
	for i := range hi {
		hi[i] = 2
	}
	high := d.Respond(hi)
	if high[0].Mean() <= low[0].Mean() {
		t.Fatal("doubling activity must heat the die")
	}
	d.Reset()
}

func TestLocalizeFindsHotModule(t *testing.T) {
	res := paResult(t)
	d := NewDevice(res, Sensors{N: 16, NoiseK: 0}, 3)
	// Pick the highest-power module: the easiest target; a noiseless
	// attacker must at least get the die right and land nearby.
	best, bp := 0, 0.0
	for m, mod := range res.Design.Modules {
		if mod.Power > bp {
			best, bp = m, mod.Power
		}
	}
	r := Localize(d, best, LocalizeOptions{})
	if !r.DieMatch {
		t.Fatalf("die mismatch for hottest module: est %d true %d", r.EstDie, r.TrueDie)
	}
	// Error within a third of the die diagonal (coarse but meaningful at
	// this tiny grid/sensor resolution).
	diag := math.Hypot(res.Layout.OutlineW, res.Layout.OutlineH)
	if r.ErrorUM > diag/3 {
		t.Fatalf("localization error %v um too large (diag %v)", r.ErrorUM, diag)
	}
	d.Reset()
}

func TestLocalizeAllAggregates(t *testing.T) {
	d := NewDevice(paResult(t), Sensors{N: 8, NoiseK: 0.02}, 4)
	st := LocalizeAll(d, []int{0, 1, 2}, LocalizeOptions{})
	if len(st.Results) != 3 {
		t.Fatal("results count")
	}
	if st.HitRate < 0 || st.HitRate > 1 || st.DieRate < 0 || st.DieRate > 1 {
		t.Fatal("rates out of range")
	}
	if st.MeanError < 0 {
		t.Fatal("negative error")
	}
	d.Reset()
}

func TestCharacterizeR2Range(t *testing.T) {
	d := NewDevice(paResult(t), Sensors{N: 8, NoiseK: 0.01}, 5)
	r := Characterize(d, []int{0, 1, 2, 3}, 4, rand.New(rand.NewSource(6)))
	if r.R2 < 0 || r.R2 > 1 {
		t.Fatalf("R2 %v out of range", r.R2)
	}
	if r.Probes != 9 || r.TestPatterns != 4 {
		t.Fatalf("probe accounting: %d probes, %d tests", r.Probes, r.TestPatterns)
	}
	d.Reset()
}

func TestCharacterizeNoiselessIsPredictive(t *testing.T) {
	// With no sensor noise and steady-state readings, the device is linear;
	// the attack must achieve a decent fit even with few probes.
	d := NewDevice(paResult(t), Sensors{N: 8, NoiseK: 0}, 7)
	r := Characterize(d, []int{0, 1, 2, 3, 4, 5}, 6, rand.New(rand.NewSource(8)))
	if r.R2 < 0.3 {
		t.Fatalf("noiseless characterization too weak: R2=%v", r.R2)
	}
	d.Reset()
}

func TestMonitorTracksActivity(t *testing.T) {
	res := paResult(t)
	d := NewDevice(res, Sensors{N: 16, NoiseK: 0}, 9)
	best, bp := 0, 0.0
	for m, mod := range res.Design.Modules {
		if mod.Power > bp {
			best, bp = m, mod.Power
		}
	}
	r := Monitor(d, best, d.ModuleCenter(best), 16, rand.New(rand.NewSource(10)))
	if r.Correlation < 0 || r.Correlation > 1 {
		t.Fatalf("correlation %v out of range", r.Correlation)
	}
	// The hottest module watched noiselessly at its true position must
	// leak: its local temperature tracks its activity.
	if r.Correlation < 0.3 {
		t.Fatalf("monitoring the hottest module should leak: corr=%v", r.Correlation)
	}
	d.Reset()
}
