package timing

import (
	"fmt"
	"math"

	"repro/internal/netlist"
)

// STACache incrementally maintains the single-hop STA of
// AnalyzeFromNetDelaysInto under per-net delay patches. The annealing loop
// runs one reference and one delay-scaled STA pass per move, each walking
// every net of the design, even though a move changes only the handful of
// nets with a pin on a moved module; the cache turns those passes into
// O(affected-module-degree) patches.
//
// Exactness contract: after any sequence of Rebuild/Patch/Revert calls the
// cached Analysis is value-identical to AnalyzeFromNetDelaysInto over the
// same (netDelay, delayScale) inputs — not merely within an epsilon:
//
//   - Arrive/Depart recomputes evaluate the same float sums in a max, and
//     IEEE max is order-independent, so a recomputed module reproduces the
//     full pass bit for bit;
//   - Depart uses the cached per-net max sink delay: rounding is monotone,
//     so max_i fl(nd + delay_i) = fl(nd + max_i delay_i) exactly;
//   - the global Critical is maintained as a running max over the cached
//     per-module paths, with a flat rescan whenever a module that attained
//     the maximum decreases (the recompute-on-decrease rule), reproducing
//     the full pass's max over identical values.
//
// The cross-check path (core's -check-cost) still compares at the 1e-9
// contract shared by every incremental cache, which this satisfies with
// zero slack. The cache is not safe for concurrent use.
type STACache struct {
	des     *netlist.Design
	modNets [][]int

	// netDrv[ni] is the net's driver (the lowest-index module pin, the
	// direction heuristic of the full pass), or -1 when the STA skips the
	// net (fewer than two module pins). sinkMax[ni] is the largest
	// ModuleDelay over the net's non-driver pins; it depends only on the
	// delay scales, so it survives delay-churn rebuilds (sinkMaxValid) and
	// is recomputed only when the scales actually change.
	netDrv       []int
	sinkMax      []float64
	sinkMaxValid bool

	// a is the live analysis view; its NetDelay is the cache's own mirror
	// of the caller's delays, so the caller's slice is never aliased.
	a     Analysis
	path  []float64 // PathThrough(m) mirror backing the Critical max
	scale []float64 // delay scales the analysis was built under (nil = 1.0)
	valid bool

	// Journal of the last Patch, for Revert. A new Patch supersedes it
	// (the previous move is committed), mirroring the evaluator's
	// move-journal lifecycle.
	jNets   []int
	jDelay  []float64
	jMods   []int
	jArrive []float64
	jDepart []float64
	jPath   []float64
	jCrit   float64
	jLive   bool

	mark     []bool // scratch: affected-module dedup
	affected []int

	stats STACacheStats
}

// STACacheStats counts the cache's work since construction.
type STACacheStats struct {
	// Rebuilds counts full STA passes (first use, voltage-scale changes,
	// invalidations); Patches the incremental updates.
	Rebuilds int
	Patches  int
	// ModulesRecomputed totals the Arrive/Depart recomputes across all
	// patches — the cache's actual work, vs nModules per full pass.
	ModulesRecomputed int
	// CritRescans counts patches that re-derived Critical with a flat
	// per-module max scan because a module attaining it decreased.
	CritRescans int
}

// NewSTACache builds an empty cache for the design. modNets[m] must list
// the nets with a pin on module m (the evaluator shares its own table);
// nil derives the table from the design. The cache starts invalid — call
// Rebuild before Patch.
func NewSTACache(des *netlist.Design, modNets [][]int) *STACache {
	if modNets == nil {
		modNets = make([][]int, len(des.Modules))
		for ni, n := range des.Nets {
			for _, m := range n.Modules {
				modNets[m] = append(modNets[m], ni)
			}
		}
	}
	c := &STACache{
		des:     des,
		modNets: modNets,
		netDrv:  make([]int, len(des.Nets)),
		sinkMax: make([]float64, len(des.Nets)),
		path:    make([]float64, len(des.Modules)),
		mark:    make([]bool, len(des.Modules)),
	}
	for ni, n := range des.Nets {
		c.netDrv[ni] = -1
		if len(n.Modules) < 2 {
			continue
		}
		drv := n.Modules[0]
		for _, m := range n.Modules[1:] {
			if m < drv {
				drv = m
			}
		}
		c.netDrv[ni] = drv
	}
	return c
}

// Valid reports whether the cache holds a consistent analysis.
func (c *STACache) Valid() bool { return c.valid }

// Invalidate drops the cached analysis (and any pending Revert); the next
// use must Rebuild. Called when the inputs changed in a way the cache
// cannot itemize (voltage-scale change, wholesale geometry rebuild).
func (c *STACache) Invalidate() {
	c.valid = false
	c.jLive = false
}

// Stats returns the work counters.
func (c *STACache) Stats() STACacheStats { return c.stats }

// SameScale reports whether the cached analysis was built under delay
// scales value-identical to delayScale — a voltage refresh that reproduces
// the previous scales (the common stable-assignment case) then needs no
// invalidation, since ModuleDelay and every derived stage are unchanged.
func (c *STACache) SameScale(delayScale []float64) bool {
	return c.valid && c.scaleEquals(delayScale)
}

// scaleEquals is SameScale without the validity requirement (the last
// Rebuild's scales stay comparable across an Invalidate).
func (c *STACache) scaleEquals(delayScale []float64) bool {
	if delayScale == nil || c.scale == nil {
		return delayScale == nil && c.scale == nil
	}
	if len(delayScale) != len(c.scale) {
		return false
	}
	for i, s := range c.scale {
		//lint:floateq SameScale is a keep-alive identity check: the caller passes the same slice values it handed Rebuild
		if delayScale[i] != s {
			return false
		}
	}
	return true
}

// Analysis returns the live cached analysis. The view is updated in place
// by Patch/Rebuild/Revert — read it synchronously, do not retain it across
// cache operations (snapshot with AnalyzeFromNetDelays for that).
func (c *STACache) Analysis() *Analysis { return &c.a }

// Rebuild runs a full STA pass over the inputs, resetting the cache.
// delayScale follows the Analyze convention (nil = all 1.0). netDelay is
// copied, not retained.
func (c *STACache) Rebuild(netDelay, delayScale []float64) *Analysis {
	c.stats.Rebuilds++
	c.jLive = false
	refreshSinkMax := !c.sinkMaxValid || !c.scaleEquals(delayScale)
	if delayScale == nil {
		c.scale = nil
	} else {
		c.scale = append(c.scale[:0], delayScale...)
	}
	AnalyzeFromNetDelaysInto(c.des, netDelay, delayScale, &c.a)
	for m := range c.path {
		c.path[m] = c.a.PathThrough(m)
	}
	if refreshSinkMax {
		for ni, n := range c.des.Nets {
			drv := c.netDrv[ni]
			if drv < 0 {
				continue
			}
			sm := math.Inf(-1)
			for _, m := range n.Modules {
				if m == drv {
					continue
				}
				if d := c.a.ModuleDelay[m]; d > sm {
					sm = d
				}
			}
			c.sinkMax[ni] = sm
		}
		c.sinkMaxValid = true
	}
	c.valid = true
	return &c.a
}

// Patch applies new delays for the listed nets (values read from netDelay,
// which must be indexed like the design's nets), recomputing Arrive/Depart
// for exactly the modules incident to a changed net and updating Critical.
// The previous state is journaled; Revert undoes this one Patch. Duplicate
// net indices are safe; nets whose delay is unchanged cost nothing beyond
// the journal entry.
func (c *STACache) Patch(nets []int, netDelay []float64) *Analysis {
	if !c.valid {
		panic("timing: STACache.Patch on an invalid cache (Rebuild first)")
	}
	c.stats.Patches++
	c.jNets = c.jNets[:0]
	c.jDelay = c.jDelay[:0]
	c.jMods = c.jMods[:0]
	c.jArrive = c.jArrive[:0]
	c.jDepart = c.jDepart[:0]
	c.jPath = c.jPath[:0]
	c.jCrit = c.a.Critical
	c.jLive = true

	// Apply the delay patches to the mirror and collect the modules whose
	// Arrive (sinks) or Depart (driver) reads a changed net. Nets whose
	// delay is value-unchanged are skipped entirely — no journal entry, no
	// module effect — so callers may hand over a generous superset (e.g.
	// every net a move recomputed) at the cost of one compare each.
	c.affected = c.affected[:0]
	for _, ni := range nets {
		old := c.a.NetDelay[ni]
		nd := netDelay[ni]
		//lint:floateq no-op patch skip: unchanged delays are copies of the cached value, and skipping them is what keeps Patch O(changed)
		if nd == old {
			continue
		}
		c.jNets = append(c.jNets, ni)
		c.jDelay = append(c.jDelay, old)
		c.a.NetDelay[ni] = nd
		drv := c.netDrv[ni]
		if drv < 0 {
			continue
		}
		if !c.mark[drv] {
			c.mark[drv] = true
			c.affected = append(c.affected, drv)
		}
		for _, m := range c.des.Nets[ni].Modules {
			if m != drv && !c.mark[m] {
				c.mark[m] = true
				c.affected = append(c.affected, m)
			}
		}
	}

	// Recompute the affected modules' stages from their incident nets and
	// track the Critical max: grow it directly on increase, rescan the flat
	// path mirror when a module that attained it decreases.
	rescan := false
	maxNew := math.Inf(-1)
	for _, m := range c.affected {
		c.mark[m] = false
		c.jMods = append(c.jMods, m)
		c.jArrive = append(c.jArrive, c.a.Arrive[m])
		c.jDepart = append(c.jDepart, c.a.Depart[m])
		c.jPath = append(c.jPath, c.path[m])
		arr, dep := 0.0, 0.0
		for _, ni := range c.modNets[m] {
			drv := c.netDrv[ni]
			if drv < 0 {
				continue
			}
			nd := c.a.NetDelay[ni]
			if drv == m {
				if out := nd + c.sinkMax[ni]; out > dep {
					dep = out
				}
			} else if in := c.a.ModuleDelay[drv] + nd; in > arr {
				arr = in
			}
		}
		c.a.Arrive[m], c.a.Depart[m] = arr, dep
		oldPath := c.path[m]
		newPath := c.a.PathThrough(m)
		c.path[m] = newPath
		if newPath > maxNew {
			maxNew = newPath
		}
		//lint:floateq rescan trigger compares the stored critical value against its own copy; bit-equality is exact here
		if oldPath == c.jCrit && newPath < oldPath {
			rescan = true
		}
	}
	c.stats.ModulesRecomputed += len(c.affected)
	switch {
	case rescan:
		c.stats.CritRescans++
		crit := 0.0 // the full pass's max also starts at zero
		for _, p := range c.path {
			if p > crit {
				crit = p
			}
		}
		c.a.Critical = crit
	case maxNew > c.a.Critical:
		c.a.Critical = maxNew
	}
	return &c.a
}

// Revert rolls back the last Patch exactly (no-op when there is nothing to
// revert — after Rebuild, Invalidate, or a previous Revert).
func (c *STACache) Revert() {
	if !c.jLive {
		return
	}
	c.jLive = false
	// Walk backwards so duplicate journal entries (the same net patched
	// twice in one call) restore the oldest value last.
	for i := len(c.jNets) - 1; i >= 0; i-- {
		c.a.NetDelay[c.jNets[i]] = c.jDelay[i]
	}
	for i, m := range c.jMods {
		c.a.Arrive[m] = c.jArrive[i]
		c.a.Depart[m] = c.jDepart[i]
		c.path[m] = c.jPath[i]
	}
	c.a.Critical = c.jCrit
}

// EquivalentAnalyses compares two analyses field by field within a relative
// epsilon and returns the first difference found (nil when equivalent).
// The cross-check path pins the cached analysis against a full pass with it.
func EquivalentAnalyses(got, want *Analysis, eps float64) error {
	close := func(a, b float64) bool {
		return math.Abs(a-b) <= eps*math.Max(1, math.Abs(b))
	}
	if !close(got.Critical, want.Critical) {
		return fmt.Errorf("timing: Critical %v != %v", got.Critical, want.Critical)
	}
	type vec struct {
		name      string
		got, want []float64
	}
	for _, v := range []vec{
		{"NetDelay", got.NetDelay, want.NetDelay},
		{"Arrive", got.Arrive, want.Arrive},
		{"Depart", got.Depart, want.Depart},
		{"ModuleDelay", got.ModuleDelay, want.ModuleDelay},
	} {
		if len(v.got) != len(v.want) {
			return fmt.Errorf("timing: %s sized %d != %d", v.name, len(v.got), len(v.want))
		}
		for i := range v.got {
			if !close(v.got[i], v.want[i]) {
				return fmt.Errorf("timing: %s[%d] %v != %v", v.name, i, v.got[i], v.want[i])
			}
		}
	}
	return nil
}
