// Package timing estimates timing paths for block-level 3D floorplans: net
// delays via Elmore models of the placed wires (including TSV parasitics for
// cross-die nets), module delays from their intrinsic values scaled by the
// voltage assignment, and a static timing analysis that yields the critical
// delay and per-module slacks. The voltage-assignment stage (internal/volt)
// consumes the slacks, exactly as the paper describes: "the prospects for
// voltage assignment depend primarily on timing slacks".
//
// Block-level IP modules are registered at their boundaries, so a timing
// path is one hop: source module internal delay + Elmore net delay + sink
// module internal delay, and the critical delay is the worst hop. This is
// the standard floorplan-stage model for black-box IP (the paper's Sec. 2.2
// threat model: only basic module properties are known) and it lands the
// critical delays in the paper's reported range (Table 2: 0.78 - 3.8 ns).
package timing

import (
	"math"

	"repro/internal/floorplan"
)

// Params holds the interconnect parasitics. Units: resistance kOhm,
// capacitance fF, lengths um; kOhm*fF = ps. Defaults model a 90 nm node,
// matching the paper's voltage-scaling data point.
type Params struct {
	RWire   float64 // kOhm per um
	CWire   float64 // fF per um
	RDriver float64 // kOhm, driving-point resistance
	CPin    float64 // fF per sink pin
	RTSV    float64 // kOhm per TSV
	CTSV    float64 // fF per TSV
	VertLen float64 // um, wirelength detour charged to a cross-die net
}

// DefaultParams returns 90 nm-class parasitics.
func DefaultParams() Params {
	return Params{
		RWire:   0.08e-3, // 0.08 Ohm/um
		CWire:   0.2,     // 0.2 fF/um
		RDriver: 1.0,     // 1 kOhm
		CPin:    2.0,     // 2 fF
		RTSV:    0.05e-3, // 50 mOhm
		CTSV:    50.0,    // 50 fF
		VertLen: 50.0,    // um through the bond layer
	}
}

// Analysis is the result of one STA pass over a layout.
type Analysis struct {
	// NetDelay[n] is net n's Elmore delay in ns.
	NetDelay []float64
	// Arrive[m] is the worst incoming stage into module m: the largest
	// (driver delay + net delay) over nets driving m, in ns.
	Arrive []float64
	// Depart[m] is the worst outgoing stage from module m: the largest
	// (net delay + sink delay) over nets m drives, in ns.
	Depart []float64
	// ModuleDelay[m] is the voltage-scaled module delay used.
	ModuleDelay []float64
	// Critical is the design's critical (single-hop) path delay in ns.
	Critical float64
}

// Analyze runs Elmore estimation and single-hop STA over the layout.
// delayScale[m] multiplies module m's intrinsic delay (nil = all 1.0, the
// 1.0 V reference).
func Analyze(l *floorplan.Layout, delayScale []float64, p Params) *Analysis {
	nMod := len(l.Design.Modules)
	a := &Analysis{
		NetDelay:    make([]float64, len(l.Design.Nets)),
		Arrive:      make([]float64, nMod),
		Depart:      make([]float64, nMod),
		ModuleDelay: make([]float64, nMod),
	}
	for m, mod := range l.Design.Modules {
		s := 1.0
		if delayScale != nil {
			s = delayScale[m]
		}
		a.ModuleDelay[m] = mod.IntrinsicDelay * s
	}
	for ni := range l.Design.Nets {
		a.NetDelay[ni] = NetElmore(l, ni, p)
	}
	// Orient each net from its lowest-index module pin to the others (the
	// conventional driver heuristic for direction-less benchmarks).
	for ni, n := range l.Design.Nets {
		if len(n.Modules) < 2 {
			continue
		}
		drv := n.Modules[0]
		for _, m := range n.Modules[1:] {
			if m < drv {
				drv = m
			}
		}
		nd := a.NetDelay[ni]
		for _, m := range n.Modules {
			if m == drv {
				continue
			}
			if in := a.ModuleDelay[drv] + nd; in > a.Arrive[m] {
				a.Arrive[m] = in
			}
			if out := nd + a.ModuleDelay[m]; out > a.Depart[drv] {
				a.Depart[drv] = out
			}
		}
	}
	for m := 0; m < nMod; m++ {
		if th := a.PathThrough(m); th > a.Critical {
			a.Critical = th
		}
	}
	return a
}

// PathThrough returns the longest single-hop path touching module m in ns:
// its own delay plus the worse of its worst incoming and outgoing stages.
func (a *Analysis) PathThrough(m int) float64 {
	return a.ModuleDelay[m] + math.Max(a.Arrive[m], a.Depart[m])
}

// Slack returns module m's slack against a target clock period in ns.
func (a *Analysis) Slack(m int, target float64) float64 {
	return target - a.PathThrough(m)
}

// NetElmore returns net ni's Elmore delay in ns for the given layout.
// The model: a driver of resistance RDriver charges the net's distributed
// RC (length = half-perimeter wirelength plus the vertical detour for
// cross-die nets) and the sink pin loads; TSVs on cross-die nets add their
// lumped resistance and capacitance.
func NetElmore(l *floorplan.Layout, ni int, p Params) float64 {
	n := l.Design.Nets[ni]
	length := l.NetHPWL(n, 0)
	tsvs := 0
	die0 := -1
	for _, mi := range n.Modules {
		if die0 == -1 {
			die0 = l.DieOf[mi]
		} else if l.DieOf[mi] != die0 {
			tsvs = 1
			break
		}
	}
	if tsvs > 0 {
		length += p.VertLen
	}
	sinkPins := float64(n.Degree() - 1)
	cTotal := p.CWire*length + p.CPin*sinkPins + p.CTSV*float64(tsvs)
	// Driver sees the full load; the distributed wire adds R*C/2; the TSV
	// adds its lumped RC charging the downstream half of the load.
	ps := p.RDriver*cTotal +
		0.5*p.RWire*length*(p.CWire*length+p.CPin*sinkPins) +
		p.RTSV*float64(tsvs)*cTotal/2
	return ps * 1e-3 // ps -> ns
}

// WorstPaths returns the k modules with the longest paths through them,
// sorted descending — the voltage-assignment stage protects these first.
func (a *Analysis) WorstPaths(k int) []int {
	n := len(a.ModuleDelay)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	if k > n {
		k = n
	}
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < n; j++ {
			if a.PathThrough(idx[j]) > a.PathThrough(idx[best]) {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	return idx[:k]
}

// TotalNetDelay returns the sum of all net delays (an optimization proxy).
func (a *Analysis) TotalNetDelay() float64 {
	s := 0.0
	for _, d := range a.NetDelay {
		s += d
	}
	return s
}

// MaxNetDelay returns the largest single net delay.
func (a *Analysis) MaxNetDelay() float64 {
	m := 0.0
	for _, d := range a.NetDelay {
		m = math.Max(m, d)
	}
	return m
}
