// Package timing estimates timing paths for block-level 3D floorplans: net
// delays via Elmore models of the placed wires (including TSV parasitics for
// cross-die nets), module delays from their intrinsic values scaled by the
// voltage assignment, and a static timing analysis that yields the critical
// delay and per-module slacks. The voltage-assignment stage (internal/volt)
// consumes the slacks, exactly as the paper describes: "the prospects for
// voltage assignment depend primarily on timing slacks".
//
// Block-level IP modules are registered at their boundaries, so a timing
// path is one hop: source module internal delay + Elmore net delay + sink
// module internal delay, and the critical delay is the worst hop. This is
// the standard floorplan-stage model for black-box IP (the paper's Sec. 2.2
// threat model: only basic module properties are known) and it lands the
// critical delays in the paper's reported range (Table 2: 0.78 - 3.8 ns).
package timing

import (
	"math"

	"repro/internal/floorplan"
	"repro/internal/netlist"
)

// Params holds the interconnect parasitics. Units: resistance kOhm,
// capacitance fF, lengths um; kOhm*fF = ps. Defaults model a 90 nm node,
// matching the paper's voltage-scaling data point.
type Params struct {
	RWire   float64 // kOhm per um
	CWire   float64 // fF per um
	RDriver float64 // kOhm, driving-point resistance
	CPin    float64 // fF per sink pin
	RTSV    float64 // kOhm per TSV
	CTSV    float64 // fF per TSV
	VertLen float64 // um, wirelength detour charged to a cross-die net
}

// DefaultParams returns 90 nm-class parasitics.
func DefaultParams() Params {
	return Params{
		RWire:   0.08e-3, // 0.08 Ohm/um
		CWire:   0.2,     // 0.2 fF/um
		RDriver: 1.0,     // 1 kOhm
		CPin:    2.0,     // 2 fF
		RTSV:    0.05e-3, // 50 mOhm
		CTSV:    50.0,    // 50 fF
		VertLen: 50.0,    // um through the bond layer
	}
}

// Analysis is the result of one STA pass over a layout.
type Analysis struct {
	// NetDelay[n] is net n's Elmore delay in ns.
	NetDelay []float64
	// Arrive[m] is the worst incoming stage into module m: the largest
	// (driver delay + net delay) over nets driving m, in ns.
	Arrive []float64
	// Depart[m] is the worst outgoing stage from module m: the largest
	// (net delay + sink delay) over nets m drives, in ns.
	Depart []float64
	// ModuleDelay[m] is the voltage-scaled module delay used.
	ModuleDelay []float64
	// Critical is the design's critical (single-hop) path delay in ns.
	Critical float64
}

// Analyze runs Elmore estimation and single-hop STA over the layout.
// delayScale[m] multiplies module m's intrinsic delay (nil = all 1.0, the
// 1.0 V reference).
func Analyze(l *floorplan.Layout, delayScale []float64, p Params) *Analysis {
	netDelay := make([]float64, len(l.Design.Nets))
	for ni := range l.Design.Nets {
		netDelay[ni] = NetElmore(l, ni, p)
	}
	// Hand the just-built slice in as the copy destination too, so the
	// Into form's defensive copy degenerates to a no-op self-copy.
	return AnalyzeFromNetDelaysInto(l.Design, netDelay, delayScale, &Analysis{NetDelay: netDelay})
}

// AnalyzeFromNetDelays runs the STA pass over precomputed per-net Elmore
// delays (in ns), bypassing the geometric estimation. Given the delays
// Analyze would compute, it returns an identical Analysis — this is the
// entry point for the incremental cost evaluator, which keeps the per-net
// delays cached across annealing moves and recomputes only the nets touched
// by a move. netDelay is copied, not retained.
func AnalyzeFromNetDelays(des *netlist.Design, netDelay []float64, delayScale []float64) *Analysis {
	return AnalyzeFromNetDelaysInto(des, netDelay, delayScale, nil)
}

// AnalyzeFromNetDelaysInto is AnalyzeFromNetDelays reusing the slices of a
// previous Analysis (nil allocates a fresh one) — the annealing loop runs
// one to two STA passes per move, so the buffers are worth recycling. The
// returned Analysis is `into` when provided; its previous contents are
// overwritten. netDelay is copied into the Analysis, never aliased: the
// incremental cost evaluator patches its cached per-net delays in place on
// every annealing move, and an Analysis retained past the call (a report, a
// snapshot in a Result) must not drift with those patches.
func AnalyzeFromNetDelaysInto(des *netlist.Design, netDelay []float64, delayScale []float64, into *Analysis) *Analysis {
	nMod := len(des.Modules)
	a := into
	if a == nil {
		a = &Analysis{}
	}
	if cap(a.NetDelay) < len(netDelay) {
		a.NetDelay = make([]float64, len(netDelay))
	}
	a.NetDelay = a.NetDelay[:len(netDelay)]
	copy(a.NetDelay, netDelay)
	a.Arrive = resizeZeroed(a.Arrive, nMod)
	a.Depart = resizeZeroed(a.Depart, nMod)
	a.ModuleDelay = resizeZeroed(a.ModuleDelay, nMod)
	a.Critical = 0
	for m, mod := range des.Modules {
		s := 1.0
		if delayScale != nil {
			s = delayScale[m]
		}
		a.ModuleDelay[m] = mod.IntrinsicDelay * s
	}
	// Orient each net from its lowest-index module pin to the others (the
	// conventional driver heuristic for direction-less benchmarks).
	for ni, n := range des.Nets {
		if len(n.Modules) < 2 {
			continue
		}
		drv := n.Modules[0]
		for _, m := range n.Modules[1:] {
			if m < drv {
				drv = m
			}
		}
		nd := a.NetDelay[ni]
		for _, m := range n.Modules {
			if m == drv {
				continue
			}
			if in := a.ModuleDelay[drv] + nd; in > a.Arrive[m] {
				a.Arrive[m] = in
			}
			if out := nd + a.ModuleDelay[m]; out > a.Depart[drv] {
				a.Depart[drv] = out
			}
		}
	}
	for m := 0; m < nMod; m++ {
		if th := a.PathThrough(m); th > a.Critical {
			a.Critical = th
		}
	}
	return a
}

// resizeZeroed returns s resized to n elements, all zero.
func resizeZeroed(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// PathThrough returns the longest single-hop path touching module m in ns:
// its own delay plus the worse of its worst incoming and outgoing stages.
func (a *Analysis) PathThrough(m int) float64 {
	return a.ModuleDelay[m] + math.Max(a.Arrive[m], a.Depart[m])
}

// Slack returns module m's slack against a target clock period in ns.
func (a *Analysis) Slack(m int, target float64) float64 {
	return target - a.PathThrough(m)
}

// NetElmore returns net ni's Elmore delay in ns for the given layout.
// The model: a driver of resistance RDriver charges the net's distributed
// RC (length = half-perimeter wirelength plus the vertical detour for
// cross-die nets) and the sink pin loads; TSVs on cross-die nets add their
// lumped resistance and capacitance.
func NetElmore(l *floorplan.Layout, ni int, p Params) float64 {
	n := l.Design.Nets[ni]
	length := l.NetHPWL(n, 0)
	crossDie := false
	die0 := -1
	for _, mi := range n.Modules {
		if die0 == -1 {
			die0 = l.DieOf[mi]
		} else if l.DieOf[mi] != die0 {
			crossDie = true
			break
		}
	}
	return ElmoreDelay(length, crossDie, n.Degree(), p)
}

// ElmoreDelay returns the Elmore delay (ns) of a net from its geometric
// summary: the half-perimeter wirelength in um WITHOUT the vertical detour
// (added here for cross-die nets), whether the net spans dies, and its pin
// degree. NetElmore is exactly ElmoreDelay over the layout-derived summary;
// the incremental evaluator calls this directly on its cached geometry.
//
// Degenerate nets (fewer than two pins) have no wire to charge and are
// defined to have zero delay — without the guard a zero-pin net's
// sinkPins = -1 would yield a negative capacitance and a negative delay,
// which the STA pass skips but aggregate proxies (TotalNetDelay,
// MaxNetDelay) and the evaluators' cached WL/delay terms would absorb.
func ElmoreDelay(length float64, crossDie bool, degree int, p Params) float64 {
	if degree < 2 {
		return 0
	}
	tsvs := 0
	if crossDie {
		tsvs = 1
		length += p.VertLen
	}
	sinkPins := float64(degree - 1)
	cTotal := p.CWire*length + p.CPin*sinkPins + p.CTSV*float64(tsvs)
	// Driver sees the full load; the distributed wire adds R*C/2; the TSV
	// adds its lumped RC charging the downstream half of the load.
	ps := p.RDriver*cTotal +
		0.5*p.RWire*length*(p.CWire*length+p.CPin*sinkPins) +
		p.RTSV*float64(tsvs)*cTotal/2
	return ps * 1e-3 // ps -> ns
}

// WorstPaths returns the k modules with the longest paths through them,
// sorted descending — the voltage-assignment stage protects these first.
func (a *Analysis) WorstPaths(k int) []int {
	n := len(a.ModuleDelay)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	if k > n {
		k = n
	}
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < n; j++ {
			if a.PathThrough(idx[j]) > a.PathThrough(idx[best]) {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	return idx[:k]
}

// TotalNetDelay returns the sum of all net delays (an optimization proxy).
func (a *Analysis) TotalNetDelay() float64 {
	s := 0.0
	for _, d := range a.NetDelay {
		s += d
	}
	return s
}

// MaxNetDelay returns the largest single net delay.
func (a *Analysis) MaxNetDelay() float64 {
	m := 0.0
	for _, d := range a.NetDelay {
		m = math.Max(m, d)
	}
	return m
}
