package timing

import (
	"fmt"
	"math/rand"
	"testing"
)

// BenchmarkSTACachePatch compares one incremental patch against the full
// STA pass it replaces, at move-realistic churn levels (a handful of nets
// up to the evaluator's n/8 fallback threshold). The annealing loop runs
// the scaled pass once per move, so this ratio is the per-move saving
// whenever a move's delay churn stays under the threshold; above it the
// evaluator deliberately falls back to the full pass (see
// core.patchSTA), which the full-pass leg here prices.
func BenchmarkSTACachePatch(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const nMod, nNet = 900, 2500 // ibm01-class design
	des := randomSTADesign(nMod, nNet, rng)
	delays := randomDelays(len(des.Nets), rng)

	b.Run("full-pass", func(b *testing.B) {
		a := &Analysis{}
		for i := 0; i < b.N; i++ {
			AnalyzeFromNetDelaysInto(des, delays, nil, a)
		}
	})
	for _, churn := range []int{1, 8, 32, nMod / 8} {
		b.Run(fmt.Sprintf("patch-%dnets", churn), func(b *testing.B) {
			c := NewSTACache(des, nil)
			c.Rebuild(delays, nil)
			nets := make([]int, churn)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range nets {
					ni := rng.Intn(len(des.Nets))
					nets[j] = ni
					delays[ni] = rng.Float64() * 2
				}
				c.Patch(nets, delays)
			}
		})
	}
	b.Run("rebuild", func(b *testing.B) {
		c := NewSTACache(des, nil)
		for i := 0; i < b.N; i++ {
			c.Rebuild(delays, nil)
		}
	})
}
