package timing

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bench"
	"repro/internal/floorplan"
	"repro/internal/netlist"
)

func chainDesign() *netlist.Design {
	// a -> b -> c chain via two 2-pin nets.
	return &netlist.Design{
		Name: "chain",
		Modules: []*netlist.Module{
			{Name: "a", Kind: netlist.Hard, W: 10, H: 10, Power: 1, IntrinsicDelay: 0.1},
			{Name: "b", Kind: netlist.Hard, W: 10, H: 10, Power: 1, IntrinsicDelay: 0.2},
			{Name: "c", Kind: netlist.Hard, W: 10, H: 10, Power: 1, IntrinsicDelay: 0.3},
		},
		Nets: []*netlist.Net{
			{Name: "ab", Modules: []int{0, 1}},
			{Name: "bc", Modules: []int{1, 2}},
		},
		OutlineW: 100, OutlineH: 100, Dies: 1,
	}
}

func analyzeChain(t *testing.T, scale []float64) (*floorplan.Layout, *Analysis) {
	t.Helper()
	l := floorplan.New(chainDesign()).Pack()
	return l, Analyze(l, scale, DefaultParams())
}

func TestCriticalIsWorstHop(t *testing.T) {
	_, a := analyzeChain(t, nil)
	hopAB := 0.1 + a.NetDelay[0] + 0.2
	hopBC := 0.2 + a.NetDelay[1] + 0.3
	want := math.Max(hopAB, hopBC)
	if math.Abs(a.Critical-want) > 1e-9 {
		t.Fatalf("critical %v want %v", a.Critical, want)
	}
}

func TestArriveDepartStages(t *testing.T) {
	_, a := analyzeChain(t, nil)
	// Module a is the chain source: no incoming stage.
	if a.Arrive[0] != 0 {
		t.Fatal("source module must have arrival 0")
	}
	// Module c is the chain sink: no outgoing stage.
	if a.Depart[2] != 0 {
		t.Fatal("sink module must have departure 0")
	}
	// Middle module b sees both stages.
	if math.Abs(a.Arrive[1]-(0.1+a.NetDelay[0])) > 1e-9 {
		t.Fatalf("arrive[b] = %v", a.Arrive[1])
	}
	if math.Abs(a.Depart[1]-(a.NetDelay[1]+0.3)) > 1e-9 {
		t.Fatalf("depart[b] = %v", a.Depart[1])
	}
}

func TestDelayScaleRaisesCritical(t *testing.T) {
	_, base := analyzeChain(t, nil)
	_, slow := analyzeChain(t, []float64{1.56, 1.56, 1.56})
	if slow.Critical <= base.Critical {
		t.Fatalf("scaling delays up must raise critical: %v vs %v", slow.Critical, base.Critical)
	}
	// Worst hop is b-c: module contributions scale by exactly 1.56.
	wantModules := 1.56 * (0.2 + 0.3)
	gotModules := slow.Critical - slow.NetDelay[1]
	if math.Abs(gotModules-wantModules) > 1e-9 {
		t.Fatalf("module delays %v want %v", gotModules, wantModules)
	}
}

func TestSlack(t *testing.T) {
	_, a := analyzeChain(t, nil)
	target := a.Critical * 1.1
	for m := 0; m < 3; m++ {
		s := a.Slack(m, target)
		want := target - a.PathThrough(m)
		if math.Abs(s-want) > 1e-12 {
			t.Fatalf("module %d slack %v want %v", m, s, want)
		}
		if s < 0 {
			t.Fatalf("module %d negative slack %v against relaxed target", m, s)
		}
	}
}

func TestNetElmorePositiveAndGrowsWithLength(t *testing.T) {
	d := chainDesign()
	d.OutlineW, d.OutlineH = 5000, 5000
	l := floorplan.New(d).Pack()
	p := DefaultParams()
	short := NetElmore(l, 0, p)
	if short <= 0 {
		t.Fatal("net delay must be positive")
	}
	// Move module 1 far away; its net delay must grow.
	l2 := l.Clone()
	l2.Rects[1] = l2.Rects[1].Translate(4000, 4000)
	long := NetElmore(l2, 0, p)
	if long <= short {
		t.Fatalf("longer net must be slower: %v vs %v", long, short)
	}
}

func TestCrossDieNetPaysTSVPenalty(t *testing.T) {
	d := chainDesign()
	d.Dies = 2
	fp := floorplan.New(d) // round-robin: a,c on die 0; b on die 1
	l := fp.Pack()
	p := DefaultParams()
	dSame := *d.Clone()
	dSame.Dies = 1
	lSame := floorplan.New(&dSame).Pack()
	// Align positions so only the TSV term differs: copy rects.
	copy(lSame.Rects, l.Rects)
	cross := NetElmore(l, 0, p)
	same := NetElmore(lSame, 0, p)
	if cross <= same {
		t.Fatalf("cross-die net must be slower: %v vs %v", cross, same)
	}
}

func TestHigherFanoutSlower(t *testing.T) {
	d := chainDesign()
	d.Nets = append(d.Nets, &netlist.Net{Name: "big", Modules: []int{0, 1, 2}})
	l := floorplan.New(d).Pack()
	p := DefaultParams()
	two := NetElmore(l, 0, p)   // 2-pin a-b
	three := NetElmore(l, 2, p) // 3-pin a-b-c
	if three <= two {
		t.Fatalf("3-pin net should be slower than 2-pin subnet: %v vs %v", three, two)
	}
}

func TestWorstPathsOrdering(t *testing.T) {
	des := bench.MustGenerate("n100")
	l := floorplan.NewRandom(des, rand.New(rand.NewSource(1))).Pack()
	a := Analyze(l, nil, DefaultParams())
	worst := a.WorstPaths(10)
	if len(worst) != 10 {
		t.Fatalf("got %d", len(worst))
	}
	for i := 1; i < len(worst); i++ {
		if a.PathThrough(worst[i]) > a.PathThrough(worst[i-1])+1e-12 {
			t.Fatal("WorstPaths not sorted descending")
		}
	}
	if math.Abs(a.PathThrough(worst[0])-a.Critical) > 1e-9 {
		t.Fatal("worst path must equal critical delay")
	}
}

func TestCriticalInPlausibleRange(t *testing.T) {
	// Table 2 reports criticals between ~0.78 and ~3.8 ns across
	// benchmarks; our synthetic stand-ins should land in the same decade.
	des := bench.MustGenerate("n100")
	l := floorplan.NewRandom(des, rand.New(rand.NewSource(2))).Pack()
	a := Analyze(l, nil, DefaultParams())
	if a.Critical < 0.1 || a.Critical > 50 {
		t.Fatalf("critical %v ns implausible", a.Critical)
	}
}

func TestAnalysisAggregates(t *testing.T) {
	_, a := analyzeChain(t, nil)
	if a.TotalNetDelay() <= 0 || a.MaxNetDelay() <= 0 {
		t.Fatal("aggregates must be positive")
	}
	if a.MaxNetDelay() > a.TotalNetDelay() {
		t.Fatal("max cannot exceed total")
	}
}

func TestDeterministicAnalysis(t *testing.T) {
	des := bench.MustGenerate("n100")
	l := floorplan.NewRandom(des, rand.New(rand.NewSource(3))).Pack()
	a1 := Analyze(l, nil, DefaultParams())
	a2 := Analyze(l, nil, DefaultParams())
	if a1.Critical != a2.Critical {
		t.Fatal("analysis must be deterministic")
	}
}
