package timing

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/netlist"
)

// randomSTADesign builds a synthetic multi-fanout design: nMod modules with
// random intrinsic delays and nNet nets of random degree 2..5, plus a few
// degenerate nets (single-pin, empty) that the STA must skip.
func randomSTADesign(nMod, nNet int, rng *rand.Rand) *netlist.Design {
	d := &netlist.Design{Name: "sta-rand", OutlineW: 1000, OutlineH: 1000, Dies: 2}
	for m := 0; m < nMod; m++ {
		d.Modules = append(d.Modules, &netlist.Module{
			Name: fmt.Sprintf("m%d", m), Kind: netlist.Hard,
			W: 10, H: 10, Power: 1,
			IntrinsicDelay: 0.05 + rng.Float64(),
		})
	}
	for ni := 0; ni < nNet; ni++ {
		deg := 2 + rng.Intn(4)
		seen := map[int]bool{}
		var mods []int
		for len(mods) < deg {
			m := rng.Intn(nMod)
			if !seen[m] {
				seen[m] = true
				mods = append(mods, m)
			}
		}
		d.Nets = append(d.Nets, &netlist.Net{Name: fmt.Sprintf("n%d", ni), Modules: mods})
	}
	// Degenerate nets the STA (and, post-fix, the delay model) must ignore.
	d.Nets = append(d.Nets,
		&netlist.Net{Name: "single", Modules: []int{rng.Intn(nMod)}},
		&netlist.Net{Name: "empty"})
	return d
}

// randomDelays returns plausible per-net delays (ns scale).
func randomDelays(n int, rng *rand.Rand) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.Float64() * 2
	}
	return out
}

// mustEqualAnalyses pins got against a fresh full pass bit for bit — the
// cache's contract is exactness, so the comparison epsilon is zero.
func mustEqualAnalyses(t *testing.T, des *netlist.Design, c *STACache, netDelay, scale []float64, ctx string) {
	t.Helper()
	want := AnalyzeFromNetDelays(des, netDelay, scale)
	if err := EquivalentAnalyses(c.Analysis(), want, 0); err != nil {
		t.Fatalf("%s: cached analysis diverged from full pass: %v", ctx, err)
	}
}

// TestSTACacheMatchesFullOverRandomPatches drives the cache through a long
// mixed script — per-net patches, reverts, and scale-changing rebuilds —
// comparing against a from-scratch AnalyzeFromNetDelays after every step
// with zero tolerance.
func TestSTACacheMatchesFullOverRandomPatches(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	des := randomSTADesign(40, 120, rng)
	delays := randomDelays(len(des.Nets), rng)
	scale := []float64(nil)

	c := NewSTACache(des, nil)
	c.Rebuild(delays, scale)
	mustEqualAnalyses(t, des, c, delays, scale, "after rebuild")

	for i := 0; i < 800; i++ {
		switch op := rng.Float64(); {
		case op < 0.70: // patch a random net subset (committing the previous move)
			k := 1 + rng.Intn(6)
			nets := make([]int, 0, k)
			for j := 0; j < k; j++ {
				ni := rng.Intn(len(des.Nets))
				nets = append(nets, ni)
				delays[ni] = rng.Float64() * 2
			}
			c.Patch(nets, delays)
			mustEqualAnalyses(t, des, c, delays, scale, fmt.Sprintf("step %d patch", i))
		case op < 0.90: // patch then revert (a rejected move)
			before := AnalyzeFromNetDelays(des, delays, scale)
			ni := rng.Intn(len(des.Nets))
			old := delays[ni]
			delays[ni] = rng.Float64() * 2
			c.Patch([]int{ni}, delays)
			delays[ni] = old
			c.Revert()
			if err := EquivalentAnalyses(c.Analysis(), before, 0); err != nil {
				t.Fatalf("step %d revert: %v", i, err)
			}
		default: // voltage-refresh shape: new scales, full rebuild
			scale = make([]float64, len(des.Modules))
			for m := range scale {
				scale[m] = 0.8 + rng.Float64()*0.4
			}
			c.Rebuild(delays, scale)
			mustEqualAnalyses(t, des, c, delays, scale, fmt.Sprintf("step %d rebuild", i))
		}
	}
	st := c.Stats()
	if st.Patches == 0 || st.Rebuilds == 0 || st.ModulesRecomputed == 0 {
		t.Fatalf("script did not exercise the cache: %+v", st)
	}
	if st.CritRescans == 0 {
		t.Fatalf("no patch ever decreased the critical module: %+v (enlarge the script)", st)
	}
}

// TestSTACacheCritRescanOnDecrease forces the recompute-on-decrease rule
// directly: shrink the delay of the net that sets the critical path and
// check Critical falls to the exact runner-up.
func TestSTACacheCritRescanOnDecrease(t *testing.T) {
	des := &netlist.Design{
		Name: "crit", OutlineW: 100, OutlineH: 100, Dies: 1,
		Modules: []*netlist.Module{
			{Name: "a", Kind: netlist.Hard, W: 10, H: 10, Power: 1, IntrinsicDelay: 0.1},
			{Name: "b", Kind: netlist.Hard, W: 10, H: 10, Power: 1, IntrinsicDelay: 0.1},
			{Name: "c", Kind: netlist.Hard, W: 10, H: 10, Power: 1, IntrinsicDelay: 0.1},
			{Name: "d", Kind: netlist.Hard, W: 10, H: 10, Power: 1, IntrinsicDelay: 0.1},
		},
		Nets: []*netlist.Net{
			{Name: "ab", Modules: []int{0, 1}}, // the critical hop (delay 5)
			{Name: "cd", Modules: []int{2, 3}}, // the runner-up (delay 1)
		},
	}
	delays := []float64{5, 1}
	c := NewSTACache(des, nil)
	c.Rebuild(delays, nil)
	want := AnalyzeFromNetDelays(des, delays, nil)
	if c.Analysis().Critical != want.Critical {
		t.Fatalf("rebuild critical %v want %v", c.Analysis().Critical, want.Critical)
	}

	delays[0] = 0.1 // the critical hop collapses; cd must take over
	c.Patch([]int{0}, delays)
	want = AnalyzeFromNetDelays(des, delays, nil)
	if c.Analysis().Critical != want.Critical {
		t.Fatalf("patched critical %v want %v", c.Analysis().Critical, want.Critical)
	}
	if c.Stats().CritRescans != 1 {
		t.Fatalf("expected exactly one critical rescan, got %+v", c.Stats())
	}
}

// TestSTACacheDegenerateNetsNoEffect pins the skip rule: patching a
// single-pin or empty net's delay never moves any module stage.
func TestSTACacheDegenerateNetsNoEffect(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	des := randomSTADesign(10, 20, rng)
	delays := randomDelays(len(des.Nets), rng)
	c := NewSTACache(des, nil)
	c.Rebuild(delays, nil)
	before := AnalyzeFromNetDelays(des, delays, nil)

	// The last two nets are the degenerate ones (see randomSTADesign).
	single, empty := len(des.Nets)-2, len(des.Nets)-1
	delays[single], delays[empty] = 99, 77
	c.Patch([]int{single, empty}, delays)
	a := c.Analysis()
	if a.Critical != before.Critical {
		t.Fatalf("degenerate patch moved Critical: %v -> %v", before.Critical, a.Critical)
	}
	for m := range a.Arrive {
		if a.Arrive[m] != before.Arrive[m] || a.Depart[m] != before.Depart[m] {
			t.Fatalf("degenerate patch moved module %d stages", m)
		}
	}
	// The mirror itself must still track the caller's values.
	if a.NetDelay[single] != 99 || a.NetDelay[empty] != 77 {
		t.Fatal("degenerate delays not mirrored")
	}
}

// TestSTACachePatchOnInvalidPanics pins the misuse guard.
func TestSTACachePatchOnInvalidPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	des := randomSTADesign(5, 8, rng)
	c := NewSTACache(des, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("Patch on an invalid cache must panic")
		}
	}()
	c.Patch([]int{0}, randomDelays(len(des.Nets), rng))
}

// TestSTACacheRevertIsIdempotent: Revert after Rebuild, Invalidate, or a
// previous Revert is a no-op, and duplicate nets in one Patch restore the
// oldest value.
func TestSTACacheRevertIsIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	des := randomSTADesign(8, 15, rng)
	delays := randomDelays(len(des.Nets), rng)
	c := NewSTACache(des, nil)
	c.Rebuild(delays, nil)
	c.Revert() // nothing journaled: must not corrupt state
	mustEqualAnalyses(t, des, c, delays, nil, "revert after rebuild")

	before := AnalyzeFromNetDelays(des, delays, nil)
	old := delays[0]
	delays[0] = 3.21
	// Duplicate entry: the journal must restore the pre-patch value, not
	// the intermediate one.
	c.Patch([]int{0, 0}, delays)
	delays[0] = old
	c.Revert()
	c.Revert() // second revert: no-op
	if err := EquivalentAnalyses(c.Analysis(), before, 0); err != nil {
		t.Fatalf("after duplicate-net revert: %v", err)
	}
}
