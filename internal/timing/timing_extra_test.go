package timing

import (
	"math"
	"testing"

	"repro/internal/floorplan"
	"repro/internal/netlist"
)

func TestDefaultParamsPlausible(t *testing.T) {
	p := DefaultParams()
	if p.RWire <= 0 || p.CWire <= 0 || p.RDriver <= 0 || p.CPin <= 0 {
		t.Fatalf("non-positive parasitics: %+v", p)
	}
	if p.RTSV <= 0 || p.CTSV <= 0 || p.VertLen <= 0 {
		t.Fatalf("non-positive TSV parasitics: %+v", p)
	}
	// A 1 mm 2-pin net should land in the tens-to-hundreds of ps.
	d := &netlist.Design{
		Name: "mm",
		Modules: []*netlist.Module{
			{Name: "a", Kind: netlist.Hard, W: 10, H: 10, Power: 1, IntrinsicDelay: 0.1},
			{Name: "b", Kind: netlist.Hard, W: 10, H: 10, Power: 1, IntrinsicDelay: 0.1},
		},
		Nets:     []*netlist.Net{{Name: "n", Modules: []int{0, 1}}},
		OutlineW: 2000, OutlineH: 2000, Dies: 1,
	}
	l := floorplan.New(d).Pack()
	l.Rects[0] = l.Rects[0].Translate(0, 0)
	l.Rects[1] = l.Rects[1].Translate(1000, 0)
	got := NetElmore(l, 0, p)
	if got < 0.01 || got > 2 {
		t.Fatalf("1mm net delay %v ns implausible", got)
	}
}

func TestElmoreQuadraticInLength(t *testing.T) {
	// The distributed-RC term grows quadratically: delay(2L) - delay(0)
	// should exceed 2*(delay(L) - delay(0)).
	d := &netlist.Design{
		Name: "q",
		Modules: []*netlist.Module{
			{Name: "a", Kind: netlist.Hard, W: 10, H: 10, Power: 1},
			{Name: "b", Kind: netlist.Hard, W: 10, H: 10, Power: 1},
		},
		Nets:     []*netlist.Net{{Name: "n", Modules: []int{0, 1}}},
		OutlineW: 20000, OutlineH: 20000, Dies: 1,
	}
	p := DefaultParams()
	at := func(dist float64) float64 {
		l := floorplan.New(d).Pack()
		l.Rects[1] = floorplan.New(d).Pack().Rects[1].Translate(dist, 0)
		return NetElmore(l, 0, p)
	}
	base := at(0)
	one := at(4000)
	two := at(8000)
	if (two - base) <= 2*(one-base) {
		t.Fatalf("expected super-linear growth: %v vs %v", two-base, one-base)
	}
}

func TestSlackHelperSigns(t *testing.T) {
	d := &netlist.Design{
		Name: "s",
		Modules: []*netlist.Module{
			{Name: "a", Kind: netlist.Hard, W: 10, H: 10, Power: 1, IntrinsicDelay: 1},
			{Name: "b", Kind: netlist.Hard, W: 10, H: 10, Power: 1, IntrinsicDelay: 1},
		},
		Nets:     []*netlist.Net{{Name: "n", Modules: []int{0, 1}}},
		OutlineW: 100, OutlineH: 100, Dies: 1,
	}
	l := floorplan.New(d).Pack()
	a := Analyze(l, nil, DefaultParams())
	if a.Slack(0, a.Critical) < -1e-12 {
		t.Fatal("slack against the critical itself must be non-negative for all modules")
	}
	if a.Slack(0, a.Critical*0.5) >= 0 {
		t.Fatal("slack must go negative for an infeasible target")
	}
}

func TestTerminalOnlyNetsIgnoredBySTA(t *testing.T) {
	// A net touching one module plus a terminal constrains no module-to-
	// module hop; Arrive/Depart must stay zero for an isolated module.
	d := &netlist.Design{
		Name: "t",
		Modules: []*netlist.Module{
			{Name: "a", Kind: netlist.Hard, W: 10, H: 10, Power: 1, IntrinsicDelay: 0.3},
		},
		Nets:      []*netlist.Net{{Name: "n", Modules: []int{0}, Terminals: []int{0}}},
		Terminals: []*netlist.Terminal{{Name: "p", X: 0, Y: 50}},
		OutlineW:  100, OutlineH: 100, Dies: 1,
	}
	l := floorplan.New(d).Pack()
	a := Analyze(l, nil, DefaultParams())
	if a.Arrive[0] != 0 || a.Depart[0] != 0 {
		t.Fatal("terminal nets must not create module hops")
	}
	if math.Abs(a.Critical-0.3) > 1e-12 {
		t.Fatalf("critical %v should equal the lone module delay", a.Critical)
	}
}

// TestAnalysisDoesNotAliasNetDelay is the regression test for the aliasing
// bug: AnalyzeFromNetDelaysInto used to store the caller's netDelay slice
// directly, so an Analysis retained past the call (a report, a Result
// snapshot) silently drifted when the incremental evaluator patched its
// cached delays on the next move. All entry points must copy.
func TestAnalysisDoesNotAliasNetDelay(t *testing.T) {
	des := chainDesign()
	src := []float64{0.5, 0.7}
	for _, tc := range []struct {
		name string
		a    *Analysis
	}{
		{"AnalyzeFromNetDelays", AnalyzeFromNetDelays(des, src, nil)},
		{"AnalyzeFromNetDelaysInto-nil", AnalyzeFromNetDelaysInto(des, src, nil, nil)},
		{"AnalyzeFromNetDelaysInto-reused", AnalyzeFromNetDelaysInto(des, src, nil, &Analysis{})},
	} {
		critBefore := tc.a.Critical
		nd := append([]float64(nil), tc.a.NetDelay...)
		src[0], src[1] = 99, 99 // the next move patches the cached delays
		for i := range nd {
			if tc.a.NetDelay[i] != nd[i] {
				t.Fatalf("%s: NetDelay[%d] drifted to %v after the source slice was mutated",
					tc.name, i, tc.a.NetDelay[i])
			}
		}
		if tc.a.Critical != critBefore {
			t.Fatalf("%s: Critical drifted", tc.name)
		}
		src[0], src[1] = 0.5, 0.7
	}
}

// TestElmoreDelayDegenerateNetsZero pins the degenerate-net definition: a
// net with fewer than two pins has no wire and zero delay. Without the
// guard a zero-pin net yielded a NEGATIVE delay (sinkPins = -1).
func TestElmoreDelayDegenerateNetsZero(t *testing.T) {
	p := DefaultParams()
	for degree := 0; degree < 2; degree++ {
		for _, cross := range []bool{false, true} {
			if d := ElmoreDelay(500, cross, degree, p); d != 0 {
				t.Fatalf("degree-%d net (cross=%v) has delay %v, want 0", degree, cross, d)
			}
		}
	}
	if d := ElmoreDelay(500, false, 2, p); d <= 0 {
		t.Fatalf("real net delay %v must stay positive", d)
	}
}

func TestWorstPathsZeroK(t *testing.T) {
	d := &netlist.Design{
		Name: "z",
		Modules: []*netlist.Module{
			{Name: "a", Kind: netlist.Hard, W: 10, H: 10, Power: 1, IntrinsicDelay: 1},
			{Name: "b", Kind: netlist.Hard, W: 10, H: 10, Power: 1, IntrinsicDelay: 1},
		},
		Nets:     []*netlist.Net{{Name: "n", Modules: []int{0, 1}}},
		OutlineW: 100, OutlineH: 100, Dies: 1,
	}
	l := floorplan.New(d).Pack()
	a := Analyze(l, nil, DefaultParams())
	if got := a.WorstPaths(0); len(got) != 0 {
		t.Fatalf("k=0 should be empty, got %v", got)
	}
	if got := a.WorstPaths(100); len(got) != 2 {
		t.Fatalf("k>n should clamp, got %d", len(got))
	}
}
