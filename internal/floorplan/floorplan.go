// Package floorplan implements the 3D floorplan representation and layout
// generation used by the annealer: per-die corner sequences packed by a
// skyline (corner-step) packer, soft-module reshaping, die reassignment, and
// the derived layout queries (power maps, wirelength, outline violation).
//
// Corblivar, the floorplanner the paper extends, encodes each die as a
// corner block list (sequence + insertion direction + junction count). We
// implement the same packing class in simplified form: each die holds an
// ordered module sequence and a per-module insertion preference; layout
// generation walks the sequence and drops each module at the skyline corner
// chosen by that preference (lowest-first or leftmost-first). Packings are
// overlap-free by construction; only fixed-outline violations can occur,
// and those are handled by the annealing cost.
package floorplan

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/geom"
	"repro/internal/netlist"
)

// InsertDir selects the skyline corner used when a module is placed.
type InsertDir uint8

const (
	// LowestFirst drops the module at the lowest available corner
	// (ties broken left), growing the packing bottom-up.
	LowestFirst InsertDir = iota
	// LeftmostFirst drops the module at the leftmost available corner
	// (ties broken low), growing the packing left-to-right.
	LeftmostFirst
)

// Floorplan is a mutable 3D floorplan state: a die assignment plus per-die
// packing sequences. It references (and resizes) the modules of its design
// clone; construct with New or NewRandom.
type Floorplan struct {
	Design *netlist.Design

	// seq[d] is the packing order of module indices on die d.
	seq [][]int
	// dir[m] is module m's insertion preference.
	dir []InsertDir
	// rot[m] marks module m as rotated relative to its design footprint.
	rot []bool
	// aspect[m] is the soft-module aspect ratio (W/H); hard modules keep 0.
	aspect []float64
}

// New builds a floorplan with modules dealt round-robin across dies in index
// order. The design is cloned; the caller's design is never mutated.
func New(des *netlist.Design) *Floorplan {
	fp := &Floorplan{Design: des.Clone()}
	fp.seq = make([][]int, fp.Design.Dies)
	fp.dir = make([]InsertDir, len(fp.Design.Modules))
	fp.rot = make([]bool, len(fp.Design.Modules))
	fp.aspect = make([]float64, len(fp.Design.Modules))
	for i, m := range fp.Design.Modules {
		d := i % fp.Design.Dies
		fp.seq[d] = append(fp.seq[d], i)
		if m.Kind == netlist.Soft {
			fp.aspect[i] = m.W / m.H
		}
	}
	return fp
}

// NewRandom builds a floorplan with random die assignment, sequence order,
// directions, and soft aspect ratios.
func NewRandom(des *netlist.Design, rng *rand.Rand) *Floorplan {
	fp := New(des)
	n := len(fp.Design.Modules)
	// Re-deal the dies randomly but balanced by area: shuffle then alternate.
	order := rng.Perm(n)
	for d := range fp.seq {
		fp.seq[d] = fp.seq[d][:0]
	}
	for k, mi := range order {
		fp.seq[k%fp.Design.Dies] = append(fp.seq[k%fp.Design.Dies], mi)
	}
	for i, m := range fp.Design.Modules {
		if rng.Intn(2) == 0 {
			fp.dir[i] = LeftmostFirst
		}
		if m.Kind == netlist.Soft {
			fp.aspect[i] = clamp(0.5+rng.Float64()*1.5, m.MinAspect, m.MaxAspect)
		}
	}
	return fp
}

// Clone returns an independent deep copy.
func (fp *Floorplan) Clone() *Floorplan {
	c := &Floorplan{Design: fp.Design.Clone()}
	c.seq = make([][]int, len(fp.seq))
	for d := range fp.seq {
		c.seq[d] = append([]int(nil), fp.seq[d]...)
	}
	c.dir = append([]InsertDir(nil), fp.dir...)
	c.rot = append([]bool(nil), fp.rot...)
	c.aspect = append([]float64(nil), fp.aspect...)
	return c
}

// DieOf returns the die index currently holding module mi, or -1.
func (fp *Floorplan) DieOf(mi int) int {
	for d, s := range fp.seq {
		for _, m := range s {
			if m == mi {
				return d
			}
		}
	}
	return -1
}

// footprint returns the module's effective W, H after aspect and rotation.
func (fp *Floorplan) footprint(mi int) (float64, float64) {
	m := fp.Design.Modules[mi]
	w, h := m.W, m.H
	if m.Kind == netlist.Soft && fp.aspect[mi] > 0 {
		area := m.Area()
		h = math.Sqrt(area / fp.aspect[mi])
		w = area / h
	}
	if fp.rot[mi] {
		w, h = h, w
	}
	return w, h
}

// Layout is the packed physical result of a floorplan.
type Layout struct {
	Design *netlist.Design

	// Rects[m] is module m's placed footprint on its die.
	Rects []geom.Rect
	// DieOf[m] is module m's die (0 = bottom, closest to package;
	// Dies-1 = top, closest to the heatsink).
	DieOf []int

	OutlineW, OutlineH float64
	Dies               int
}

// Pack generates the physical layout by walking each die's sequence through
// the skyline packer. The result is always overlap-free; modules may exceed
// the fixed outline (cost term) but never overlap each other.
func (fp *Floorplan) Pack() *Layout {
	l := &Layout{
		Design:   fp.Design,
		Rects:    make([]geom.Rect, len(fp.Design.Modules)),
		DieOf:    make([]int, len(fp.Design.Modules)),
		OutlineW: fp.Design.OutlineW,
		OutlineH: fp.Design.OutlineH,
		Dies:     fp.Design.Dies,
	}
	for d := range fp.seq {
		fp.PackDie(l, d)
	}
	return l
}

// PackDie repacks a single die's sequence into an existing layout in place,
// overwriting the Rects and DieOf entries of the modules currently sequenced
// on that die. A die's packing depends only on its own sequence state, so
// repacking exactly the dies named by a Move's Dies list (after the move, or
// after its undo) restores the layout a full Pack would produce — module by
// module, bit for bit. This is the partial-repack primitive behind the
// incremental cost evaluator.
//
// Callers repacking after a cross-die move must repack every die the move
// touched; a module that left die d is only re-homed when its new die packs.
func (fp *Floorplan) PackDie(l *Layout, d int) {
	sky := newSkyline(fp.Design.OutlineW)
	for _, mi := range fp.seq[d] {
		w, h := fp.footprint(mi)
		x, y := sky.place(w, h, fp.dir[mi])
		l.Rects[mi] = geom.Rect{X: x, Y: y, W: w, H: h}
		l.DieOf[mi] = d
	}
}

// ModulesOnDie returns the modules currently sequenced on die d, in packing
// order. The incremental evaluator diffs their rects before and after a
// partial repack.
func (fp *Floorplan) ModulesOnDie(d int) []int { return fp.seq[d] }

// DiePacker caches one die's skyline states between repacks so a repack can
// resume from the first changed sequence position instead of position 0. A
// placement depends only on the sequence prefix before it, so replaying from
// the snapshot taken before the first change reproduces the full repack bit
// for bit while skipping the untouched prefix — the second half of the
// incremental evaluator's partial-repack primitive.
type DiePacker struct {
	// xs[i], ys[i] snapshot the skyline steps before placing sequence
	// position i; position 0 is the empty skyline.
	xs, ys [][]float64
	// valid is the highest snapshot index consistent with the die's current
	// sequence state (after an undo, snapshots past the undone move's start
	// position describe a packing that no longer exists).
	valid int
	sky   skyline // reusable working skyline

	// Mirror of the last-packed sequence: mods[i] is the module packed at
	// position i, ws/hs its footprint and dirs its insertion preference at
	// pack time. PackDieFromDiff aligns the new sequence tail against this
	// mirror to find where the pre-move snapshots can prove the remaining
	// suffix bit-identical (the early-exit).
	mods                 []int
	ws, hs               []float64
	dirs                 []InsertDir
	mirror               int         // mirror entries [0, mirror) describe the last-packed sequence
	scratchXs, scratchYs [][]float64 // deferred-commit staging for PackDieFromDiff
	spare                [][]float64 // recycled snapshot-row storage
}

// takeRow returns a recycled snapshot row (length 0) or nil (append
// allocates).
func (dp *DiePacker) takeRow() []float64 {
	if n := len(dp.spare); n > 0 {
		r := dp.spare[n-1]
		dp.spare = dp.spare[:n-1]
		return r[:0]
	}
	return nil
}

// recycleRow returns a snapshot row's backing to the bounded spare pool.
func (dp *DiePacker) recycleRow(r []float64) {
	const spareCap = 128
	if r != nil && len(dp.spare) < spareCap {
		dp.spare = append(dp.spare, r)
	}
}

// Invalidate marks snapshots at positions > pos stale. Call it when the
// die's sequence state changed at position pos without a repack (i.e. on the
// undo path, after the floorplan state has been restored).
func (dp *DiePacker) Invalidate(pos int) {
	if pos < dp.valid {
		dp.valid = pos
	}
}

// PackDieFrom repacks die d into the layout like PackDie, resuming from the
// cached skyline snapshot at sequence position `from` (clamped to the last
// valid snapshot). Placements before the resume point are untouched — they
// are already correct in l — and the snapshots from the resume point on are
// refreshed, so consecutive calls keep the cache consistent.
func (fp *Floorplan) PackDieFrom(l *Layout, d, from int, dp *DiePacker) {
	seq := fp.seq[d]
	if from > dp.valid {
		from = dp.valid
	}
	if from > len(seq) {
		from = len(seq)
	}
	if need := len(seq) + 1; cap(dp.xs) < need {
		xs := make([][]float64, need)
		ys := make([][]float64, need)
		copy(xs, dp.xs)
		copy(ys, dp.ys)
		dp.xs, dp.ys = xs, ys
	} else {
		dp.xs = dp.xs[:need]
		dp.ys = dp.ys[:need]
	}
	dp.growMirror(len(seq))
	sky := &dp.sky
	sky.width = fp.Design.OutlineW
	if from == 0 {
		sky.xs = append(sky.xs[:0], 0)
		sky.ys = append(sky.ys[:0], 0)
	} else {
		sky.xs = append(sky.xs[:0], dp.xs[from]...)
		sky.ys = append(sky.ys[:0], dp.ys[from]...)
	}
	for i := from; i < len(seq); i++ {
		dp.xs[i] = append(dp.xs[i][:0], sky.xs...)
		dp.ys[i] = append(dp.ys[i][:0], sky.ys...)
		mi := seq[i]
		w, h := fp.footprint(mi)
		dp.mods[i], dp.ws[i], dp.hs[i], dp.dirs[i] = mi, w, h, fp.dir[mi]
		x, y := sky.place(w, h, fp.dir[mi])
		l.Rects[mi] = geom.Rect{X: x, Y: y, W: w, H: h}
		l.DieOf[mi] = d
	}
	dp.xs[len(seq)] = append(dp.xs[len(seq)][:0], sky.xs...)
	dp.ys[len(seq)] = append(dp.ys[len(seq)][:0], sky.ys...)
	dp.valid = len(seq)
	dp.mirror = len(seq)
}

// growMirror sizes the sequence mirror for n positions, preserving existing
// entries.
func (dp *DiePacker) growMirror(n int) {
	if cap(dp.mods) < n {
		mods := make([]int, n)
		ws := make([]float64, n)
		hs := make([]float64, n)
		dirs := make([]InsertDir, n)
		copy(mods, dp.mods)
		copy(ws, dp.ws)
		copy(hs, dp.hs)
		copy(dirs, dp.dirs)
		dp.mods, dp.ws, dp.hs, dp.dirs = mods, ws, hs, dirs
		return
	}
	dp.mods = dp.mods[:n]
	dp.ws = dp.ws[:n]
	dp.hs = dp.hs[:n]
	dp.dirs = dp.dirs[:n]
}

// skylineEqual reports whether the working skyline's steps are bit-identical
// to a cached snapshot.
func skylineEqual(sky *skyline, xs, ys []float64) bool {
	if len(sky.xs) != len(xs) {
		return false
	}
	for i := range xs {
		//lint:floateq bit-identity against a snapshot is the contract: both sides are copies, not recomputations
		if sky.xs[i] != xs[i] || sky.ys[i] != ys[i] {
			return false
		}
	}
	return true
}

// PackDiff records the exact effect of one PackDieFromDiff call: the modules
// whose placement actually changed (with their pre-move values), how much of
// the sequence was replayed, and the packer-state journal needed to undo the
// call byte-exactly. Exactly one of Commit or Rollback must be called before
// the record is reused; Reset clears it for the next move.
type PackDiff struct {
	// Die is the repacked die.
	Die int
	// Changed lists the modules whose placed rect or die assignment changed,
	// in replay order; OldRects/OldDies hold their pre-move placements.
	// Modules that reproduce their previous placement verbatim — including
	// the whole suffix past a skyline re-convergence — are not listed.
	Changed  []int
	OldRects []geom.Rect
	OldDies  []int
	// From/Exit bound the replayed window [From, Exit) of the new sequence;
	// SeqLen is the new sequence length. Converged reports that the resumed
	// skyline re-converged with a pre-move snapshot at Exit, proving the
	// remaining suffix bit-identical without replaying it.
	From, Exit, SeqLen int
	Converged          bool

	// Rollback record: the displaced snapshot rows and mirror values of old
	// positions [From, oexit), plus the pre-call watermarks.
	dp           *DiePacker
	oldLen       int // mirror length before the call
	oldValid     int
	delta        int // oldLen - SeqLen
	oldXs, oldYs [][]float64
	jMods        []int
	jWs, jHs     []float64
	jDirs        []InsertDir
	settled      bool // Commit or Rollback already ran
}

// Reset clears the record for reuse, retaining storage.
func (pd *PackDiff) Reset() {
	pd.Changed = pd.Changed[:0]
	pd.OldRects = pd.OldRects[:0]
	pd.OldDies = pd.OldDies[:0]
	pd.oldXs = pd.oldXs[:0]
	pd.oldYs = pd.oldYs[:0]
	pd.jMods = pd.jMods[:0]
	pd.jWs = pd.jWs[:0]
	pd.jHs = pd.jHs[:0]
	pd.jDirs = pd.jDirs[:0]
	pd.dp = nil
	pd.Converged = false
	pd.settled = false
}

// PackDieFromDiff is PackDieFrom producing an exact placement diff. It
// repacks die d resuming from the cached skyline snapshot at position `from`
// like PackDieFrom, with two refinements that make the dirty-set contract
// exact instead of suffix-pessimistic:
//
//   - Early exit: before placing each position it aligns the remaining new
//     sequence tail against the packer's mirror of the last-packed sequence
//     (same modules, footprints, and insertion preferences, allowing a
//     constant index shift for insertions/removals) and compares the working
//     skyline against the pre-move snapshot at the aligned position. On a
//     bit-identical match the remaining suffix must repack to its previous
//     placements by construction, so the replay stops there.
//   - Exact changed set: pd.Changed lists precisely the modules whose
//     (x, y, w, h) or die assignment differs from before the call — replayed
//     positions that reproduce their previous placement verbatim are not
//     reported.
//
// The packer's snapshot and mirror state is updated under a journal held in
// pd: pd.Rollback restores the packer AND the layout's changed placements
// byte-exactly (the rejected-move path), pd.Commit releases the journal
// (the accepted-move path). pd must be Reset (or zero) on entry.
func (fp *Floorplan) PackDieFromDiff(l *Layout, d, from int, dp *DiePacker, pd *PackDiff) {
	seq := fp.seq[d]
	newLen := len(seq)
	oldLen := dp.mirror
	if from > dp.valid {
		from = dp.valid
	}
	if from > newLen {
		from = newLen
	}
	if from > oldLen {
		from = oldLen // unreachable when valid <= mirror; defensive
	}
	delta := oldLen - newLen

	pd.Die = d
	pd.dp = dp
	pd.oldLen = oldLen
	pd.oldValid = dp.valid
	pd.delta = delta
	pd.From = from
	pd.SeqLen = newLen

	// Tail alignment: t is the smallest new position such that every
	// position i >= t packs the same module with the same footprint and
	// insertion preference as old position i+delta. Only at i >= t can a
	// skyline match prove the remaining suffix identical. An invalidated
	// mirror tail (valid < mirror: snapshots were dropped without a repack)
	// cannot be trusted, so alignment is disabled there and the call
	// degrades to a full journaled replay.
	t := newLen
	if dp.valid == dp.mirror {
		for i := newLen - 1; i >= from; i-- {
			o := i + delta
			if o < 0 {
				break
			}
			mi := seq[i]
			w, h := fp.footprint(mi)
			//lint:floateq prefix-resume compares cached inputs for bit-identity; any drift must invalidate the prefix
			if dp.mods[o] != mi || dp.dirs[o] != fp.dir[mi] || dp.ws[o] != w || dp.hs[o] != h {
				break
			}
			t = i
		}
	}

	// Resume and replay, staging new snapshots in scratch so the pre-move
	// snapshots stay readable for the convergence compares (with delta < 0
	// an in-place write at position i would clobber old position i+delta
	// before the replay reads it).
	sky := &dp.sky
	sky.width = fp.Design.OutlineW
	if from == 0 {
		sky.xs = append(sky.xs[:0], 0)
		sky.ys = append(sky.ys[:0], 0)
	} else {
		sky.xs = append(sky.xs[:0], dp.xs[from]...)
		sky.ys = append(sky.ys[:0], dp.ys[from]...)
	}
	dp.scratchXs = dp.scratchXs[:0]
	dp.scratchYs = dp.scratchYs[:0]
	exit := newLen
	converged := false
	for i := from; i < newLen; i++ {
		if i >= t && skylineEqual(sky, dp.xs[i+delta], dp.ys[i+delta]) {
			exit, converged = i, true
			break
		}
		dp.scratchXs = append(dp.scratchXs, append(dp.takeRow(), sky.xs...))
		dp.scratchYs = append(dp.scratchYs, append(dp.takeRow(), sky.ys...))
		mi := seq[i]
		w, h := fp.footprint(mi)
		x, y := sky.place(w, h, fp.dir[mi])
		r := geom.Rect{X: x, Y: y, W: w, H: h}
		if l.Rects[mi] != r || l.DieOf[mi] != d {
			pd.Changed = append(pd.Changed, mi)
			pd.OldRects = append(pd.OldRects, l.Rects[mi])
			pd.OldDies = append(pd.OldDies, l.DieOf[mi])
			l.Rects[mi] = r
			l.DieOf[mi] = d
		}
	}
	if !converged {
		// Final snapshot (state after the last placement).
		dp.scratchXs = append(dp.scratchXs, append(dp.takeRow(), sky.xs...))
		dp.scratchYs = append(dp.scratchYs, append(dp.takeRow(), sky.ys...))
	}
	pd.Exit = exit
	pd.Converged = converged

	// Commit: journal the displaced old state, shift the surviving suffix
	// snapshots/mirror to their new positions, and install the staged rows.
	oexit := exit + delta // first surviving old position (converged only)
	snapHi := oexit       // old snapshot indices [from, snapHi) are displaced
	if !converged {
		// The old final snapshot is displaced too; a fresh or never-packed
		// packer has fewer rows than oldLen+1, so clamp to what exists.
		snapHi = min(oldLen+1, len(dp.xs))
	}
	if snapHi < from {
		snapHi = from
	}
	pd.oldXs = append(pd.oldXs, dp.xs[from:snapHi]...)
	pd.oldYs = append(pd.oldYs, dp.ys[from:snapHi]...)
	pd.jMods = append(pd.jMods, dp.mods[from:min(oexit, oldLen)]...)
	pd.jWs = append(pd.jWs, dp.ws[from:min(oexit, oldLen)]...)
	pd.jHs = append(pd.jHs, dp.hs[from:min(oexit, oldLen)]...)
	pd.jDirs = append(pd.jDirs, dp.dirs[from:min(oexit, oldLen)]...)

	need := newLen + 1
	if cap(dp.xs) < need {
		// Reallocate: direct placement, no overlap concerns.
		nxs := make([][]float64, need)
		nys := make([][]float64, need)
		copy(nxs, dp.xs[:from])
		copy(nys, dp.ys[:from])
		if converged {
			copy(nxs[exit:], dp.xs[oexit:oldLen+1])
			copy(nys[exit:], dp.ys[oexit:oldLen+1])
		}
		dp.xs, dp.ys = nxs, nys
	} else if converged && delta != 0 {
		if delta < 0 { // die grew: shift survivors up, descending
			dp.xs = dp.xs[:need]
			dp.ys = dp.ys[:need]
			for j := newLen; j >= exit; j-- {
				dp.xs[j] = dp.xs[j+delta]
				dp.ys[j] = dp.ys[j+delta]
			}
		} else { // die shrank: shift survivors down, ascending
			for j := exit; j <= newLen; j++ {
				dp.xs[j] = dp.xs[j+delta]
				dp.ys[j] = dp.ys[j+delta]
			}
		}
	}
	if len(dp.xs) > need {
		// Drop vacated trailing headers so a later regrowth cannot
		// resurrect stale rows aliasing surviving backing arrays.
		for j := need; j < len(dp.xs); j++ {
			dp.xs[j] = nil
			dp.ys[j] = nil
		}
	}
	dp.xs = dp.xs[:need]
	dp.ys = dp.ys[:need]
	for k, row := range dp.scratchXs {
		dp.xs[from+k] = row
		dp.ys[from+k] = dp.scratchYs[k]
	}
	dp.scratchXs = dp.scratchXs[:0]
	dp.scratchYs = dp.scratchYs[:0]

	// Mirror: same shift for the surviving values, then the replayed window.
	dp.growMirror(max(newLen, oldLen))
	if converged && delta != 0 {
		if delta < 0 {
			for j := newLen - 1; j >= exit; j-- {
				dp.mods[j], dp.ws[j], dp.hs[j], dp.dirs[j] = dp.mods[j+delta], dp.ws[j+delta], dp.hs[j+delta], dp.dirs[j+delta]
			}
		} else {
			for j := exit; j < newLen; j++ {
				dp.mods[j], dp.ws[j], dp.hs[j], dp.dirs[j] = dp.mods[j+delta], dp.ws[j+delta], dp.hs[j+delta], dp.dirs[j+delta]
			}
		}
	}
	for i := from; i < exit; i++ {
		mi := seq[i]
		w, h := fp.footprint(mi)
		dp.mods[i], dp.ws[i], dp.hs[i], dp.dirs[i] = mi, w, h, fp.dir[mi]
	}
	dp.growMirror(newLen)
	dp.valid = newLen
	dp.mirror = newLen
}

// Commit releases a PackDiff's rollback journal (the accepted-move path),
// recycling the displaced snapshot rows. Idempotent with Rollback: the first
// of the two settles the record.
func (pd *PackDiff) Commit() {
	if pd.settled || pd.dp == nil {
		return
	}
	pd.settled = true
	for _, r := range pd.oldXs {
		pd.dp.recycleRow(r)
	}
	for _, r := range pd.oldYs {
		pd.dp.recycleRow(r)
	}
}

// Rollback undoes a PackDieFromDiff call byte-exactly: the layout entries of
// pd.Changed revert to their pre-move values, and the packer's snapshots,
// mirror, and validity watermark are restored so the next repack resumes
// from the same state as if the move never happened — no Invalidate, no
// suffix replay. Call after the floorplan's own undo closure has restored
// the sequences.
func (pd *PackDiff) Rollback(l *Layout) {
	if pd.settled || pd.dp == nil {
		return
	}
	pd.settled = true
	dp := pd.dp
	for k, m := range pd.Changed {
		l.Rects[m] = pd.OldRects[k]
		l.DieOf[m] = pd.OldDies[k]
	}

	from, exit, newLen, oldLen, delta := pd.From, pd.Exit, pd.SeqLen, pd.oldLen, pd.delta
	oexit := exit + delta
	// Recycle the staged rows installed by the replay.
	hi := exit
	if !pd.Converged {
		hi = newLen + 1 // includes the new final snapshot
	}
	for j := from; j < hi; j++ {
		dp.recycleRow(dp.xs[j])
		dp.recycleRow(dp.ys[j])
		dp.xs[j] = nil
		dp.ys[j] = nil
	}
	// Un-shift the surviving suffix back to its old positions.
	need := oldLen + 1
	if cap(dp.xs) < need { // defensive; commit never shrinks capacity below this
		nxs := make([][]float64, need)
		nys := make([][]float64, need)
		copy(nxs, dp.xs)
		copy(nys, dp.ys)
		dp.xs, dp.ys = nxs, nys
	}
	if pd.Converged && delta != 0 {
		if delta > 0 { // commit shifted down; move back up, descending
			dp.xs = dp.xs[:need]
			dp.ys = dp.ys[:need]
			for j := oldLen; j >= oexit; j-- {
				dp.xs[j] = dp.xs[j-delta]
				dp.ys[j] = dp.ys[j-delta]
			}
		} else { // commit shifted up; move back down, ascending
			for j := oexit; j <= oldLen; j++ {
				dp.xs[j] = dp.xs[j-delta]
				dp.ys[j] = dp.ys[j-delta]
			}
		}
	}
	if len(dp.xs) > need {
		for j := need; j < len(dp.xs); j++ {
			dp.xs[j] = nil
			dp.ys[j] = nil
		}
	}
	dp.xs = dp.xs[:need]
	dp.ys = dp.ys[:need]
	// Reinstate the journaled old rows.
	for k, row := range pd.oldXs {
		dp.xs[from+k] = row
		dp.ys[from+k] = pd.oldYs[k]
	}

	// Mirror values: un-shift survivors, reinstate the journaled window.
	dp.growMirror(max(newLen, oldLen))
	if pd.Converged && delta != 0 {
		if delta > 0 {
			for j := oldLen - 1; j >= oexit; j-- {
				dp.mods[j], dp.ws[j], dp.hs[j], dp.dirs[j] = dp.mods[j-delta], dp.ws[j-delta], dp.hs[j-delta], dp.dirs[j-delta]
			}
		} else {
			for j := oexit; j < oldLen; j++ {
				dp.mods[j], dp.ws[j], dp.hs[j], dp.dirs[j] = dp.mods[j-delta], dp.ws[j-delta], dp.hs[j-delta], dp.dirs[j-delta]
			}
		}
	}
	for k, m := range pd.jMods {
		dp.mods[from+k], dp.ws[from+k], dp.hs[from+k], dp.dirs[from+k] = m, pd.jWs[k], pd.jHs[k], pd.jDirs[k]
	}
	dp.growMirror(oldLen)
	dp.valid = pd.oldValid
	dp.mirror = oldLen
}

// skyline tracks the upper contour of a packing as a list of steps.
type skyline struct {
	width float64
	xs    []float64 // step start positions, xs[0] == 0, ascending
	ys    []float64 // step heights, ys[i] spans [xs[i], xs[i+1]) (last to width)

	// commit scratch, reused across placements to keep packing allocation-lean.
	sxs, sys []float64
}

func newSkyline(width float64) *skyline {
	return &skyline{width: width, xs: []float64{0}, ys: []float64{0}}
}

// end returns the x where step i ends.
func (s *skyline) end(i int) float64 {
	if i+1 < len(s.xs) {
		return s.xs[i+1]
	}
	return s.width
}

// spanHeight returns the max height over [x, x+w). The first relevant step
// is located by binary search over the ascending step starts, so a span
// query costs O(log k + steps covered) instead of a full scan.
func (s *skyline) spanHeight(x, w float64) float64 {
	h := 0.0
	i := sort.SearchFloat64s(s.xs, x)
	if i > 0 && s.end(i-1) > x {
		i--
	}
	for ; i < len(s.xs); i++ {
		if s.end(i) <= x {
			continue
		}
		if s.xs[i] >= x+w {
			break
		}
		if s.ys[i] > h {
			h = s.ys[i]
		}
	}
	return h
}

// place finds a corner for a w x h module per the direction preference,
// commits it to the skyline, and returns the lower-left position.
func (s *skyline) place(w, h float64, dir InsertDir) (float64, float64) {
	type cand struct{ x, y float64 }
	var cands []cand
	for i := range s.xs {
		x := s.xs[i]
		if x+w > s.width+1e-9 {
			continue
		}
		cands = append(cands, cand{x, s.spanHeight(x, w)})
	}
	var best cand
	if len(cands) == 0 {
		// Module wider than the outline or no fitting corner: clamp left.
		best = cand{0, s.spanHeight(0, math.Min(w, s.width))}
	} else {
		best = cands[0]
		for _, c := range cands[1:] {
			if better(c.x, c.y, best.x, best.y, dir) {
				best = c
			}
		}
	}
	s.commit(best.x, w, best.y+h)
	return best.x, best.y
}

func better(x, y, bx, by float64, dir InsertDir) bool {
	switch dir {
	case LeftmostFirst:
		//lint:floateq deterministic tie-break: candidates at the exact same coordinate fall through to the secondary key
		if x != bx {
			return x < bx
		}
		return y < by
	default: // LowestFirst
		//lint:floateq deterministic tie-break: candidates at the exact same coordinate fall through to the secondary key
		if y != by {
			return y < by
		}
		return x < bx
	}
}

// commit raises the skyline over [x, x+w) to newY.
func (s *skyline) commit(x, w, newY float64) {
	x1 := x + w
	nxs, nys := s.sxs[:0], s.sys[:0]
	// Preserve steps before x.
	for i := range s.xs {
		if s.xs[i] >= x {
			break
		}
		end := s.end(i)
		nxs = append(nxs, s.xs[i])
		nys = append(nys, s.ys[i])
		if end > x {
			// This step straddles x; the part beyond x is replaced below.
			break
		}
	}
	// New raised step.
	nxs = append(nxs, x)
	nys = append(nys, newY)
	// Preserve steps after x1, splitting any straddler.
	for i := range s.xs {
		end := s.end(i)
		if end <= x1 {
			continue
		}
		start := math.Max(s.xs[i], x1)
		if start < end {
			nxs = append(nxs, start)
			nys = append(nys, s.ys[i])
		}
	}
	// Merge duplicate x positions and equal-height neighbours.
	s.xs, s.ys = s.xs[:0], s.ys[:0]
	for i := range nxs {
		if len(s.xs) > 0 {
			lastX := s.xs[len(s.xs)-1]
			lastY := s.ys[len(s.ys)-1]
			if nxs[i] <= lastX+1e-12 {
				// Same start: keep the later (overriding) value.
				s.ys[len(s.ys)-1] = nys[i]
				continue
			}
			//lint:floateq merging only bit-equal neighbour heights is conservative; unequal heights keep their step
			if nys[i] == lastY {
				continue
			}
		}
		s.xs = append(s.xs, nxs[i])
		s.ys = append(s.ys, nys[i])
	}
	if len(s.xs) == 0 || s.xs[0] != 0 {
		s.xs = append([]float64{0}, s.xs...)
		s.ys = append([]float64{0}, s.ys...)
	}
	s.sxs, s.sys = nxs, nys // keep the grown scratch for the next commit
}

// --- Layout queries ---------------------------------------------------------

// Outline returns the fixed per-die outline rectangle.
func (l *Layout) Outline() geom.Rect {
	return geom.Rect{X: 0, Y: 0, W: l.OutlineW, H: l.OutlineH}
}

// BoundingBox returns the bounding box of all modules on die d.
func (l *Layout) BoundingBox(d int) geom.Rect {
	var bb geom.Rect
	first := true
	for mi, r := range l.Rects {
		if l.DieOf[mi] != d {
			continue
		}
		if first {
			bb, first = r, false
		} else {
			bb = bb.Union(r)
		}
	}
	return bb
}

// OutlineViolation returns the total area (um^2) by which modules exceed the
// fixed outline, summed over dies. Zero means the floorplan is legal.
func (l *Layout) OutlineViolation() float64 {
	out := l.Outline()
	v := 0.0
	for _, r := range l.Rects {
		v += r.Area() - r.OverlapArea(out)
	}
	return v
}

// Legal reports whether every module lies within the fixed outline.
func (l *Layout) Legal() bool { return l.OutlineViolation() <= 1e-6 }

// OverlapArea returns the total pairwise overlap area between modules that
// share a die. The skyline packer produces zero by construction; this is a
// verification hook.
func (l *Layout) OverlapArea() float64 {
	byDie := make([][]int, l.Dies)
	for mi, d := range l.DieOf {
		byDie[d] = append(byDie[d], mi)
	}
	total := 0.0
	for _, mods := range byDie {
		for a := 0; a < len(mods); a++ {
			for b := a + 1; b < len(mods); b++ {
				total += l.Rects[mods[a]].OverlapArea(l.Rects[mods[b]])
			}
		}
	}
	return total
}

// HPWL returns the total half-perimeter wirelength over all nets in um.
// Pins are taken at module centers and terminal positions; a net spanning
// both dies adds the configured via detour vertLen (use 0 to ignore).
func (l *Layout) HPWL(vertLen float64) float64 {
	total := 0.0
	for _, n := range l.Design.Nets {
		total += l.NetHPWL(n, vertLen)
	}
	return total
}

// NetHPWL returns one net's half-perimeter wirelength in um.
func (l *Layout) NetHPWL(n *netlist.Net, vertLen float64) float64 {
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	spansDies := false
	die0 := -1
	add := func(x, y float64) {
		minX = math.Min(minX, x)
		minY = math.Min(minY, y)
		maxX = math.Max(maxX, x)
		maxY = math.Max(maxY, y)
	}
	for _, mi := range n.Modules {
		c := l.Rects[mi].Center()
		add(c.X, c.Y)
		if die0 == -1 {
			die0 = l.DieOf[mi]
		} else if l.DieOf[mi] != die0 {
			spansDies = true
		}
	}
	for _, ti := range n.Terminals {
		t := l.Design.Terminals[ti]
		add(t.X, t.Y)
	}
	if math.IsInf(minX, 1) {
		return 0
	}
	wl := (maxX - minX) + (maxY - minY)
	if spansDies {
		wl += vertLen
	}
	return wl
}

// CrossDieNets returns the indices of nets whose module pins span more than
// one die (each needs at least one signal TSV).
func (l *Layout) CrossDieNets() []int {
	var out []int
	for ni, n := range l.Design.Nets {
		die0 := -1
		for _, mi := range n.Modules {
			if die0 == -1 {
				die0 = l.DieOf[mi]
			} else if l.DieOf[mi] != die0 {
				out = append(out, ni)
				break
			}
		}
	}
	return out
}

// PowerMap rasterizes the given per-module powers (Watts) onto an nx x ny
// grid for die d; cell values are Watts (density = value / cellArea).
func (l *Layout) PowerMap(d, nx, ny int, powers []float64) *geom.Grid {
	return l.PowerMapInto(d, powers, geom.NewGrid(nx, ny))
}

// PowerMapInto is PowerMap rasterizing into g (cleared first), reusing its
// storage instead of allocating. The rasterization order is PowerMap's, so
// the cell values are bit-identical — the incremental evaluator rebuilds
// dirty-die maps through this to stay exactly on the full path's floats
// (an additive patch would accumulate round-off, which the discontinuous
// nested-means entropy classification can amplify past any epsilon).
func (l *Layout) PowerMapInto(d int, powers []float64, g *geom.Grid) *geom.Grid {
	for i := range g.Data {
		g.Data[i] = 0
	}
	out := l.Outline()
	for mi, r := range l.Rects {
		if l.DieOf[mi] != d {
			continue
		}
		g.RasterizeDensity(out, r, powers[mi])
	}
	return g
}

// NominalPowers returns the design's nominal per-module powers in Watts.
func (l *Layout) NominalPowers() []float64 {
	p := make([]float64, len(l.Design.Modules))
	for i, m := range l.Design.Modules {
		p[i] = m.Power
	}
	return p
}

// ModulesOnDie returns the module indices placed on die d, sorted.
func (l *Layout) ModulesOnDie(d int) []int {
	var out []int
	for mi, dd := range l.DieOf {
		if dd == d {
			out = append(out, mi)
		}
	}
	sort.Ints(out)
	return out
}

// Deadspace returns the fraction of die d's outline not covered by modules
// (whitespace). Modules overhanging the outline contribute only their
// inside portion.
func (l *Layout) Deadspace(d int) float64 {
	out := l.Outline()
	covered := 0.0
	for mi, r := range l.Rects {
		if l.DieOf[mi] != d {
			continue
		}
		covered += r.OverlapArea(out)
	}
	area := out.Area()
	if area <= 0 {
		return 0
	}
	return 1 - covered/area
}

// AdjacentModules returns, for each module, the modules whose placed
// rectangles abut or overlap it — on the same die, or vertically on a
// neighbouring die (footprint overlap). This drives voltage-volume growth.
//
// Candidate pairs come from an X-interval sweep per die (and per die pair)
// instead of the all-pairs scan: two rects can only be adjacent when their
// X intervals overlap or touch, so each module is tested only against the
// modules whose interval starts before its own ends. The collected pairs
// are ordered exactly as the all-pairs scan would order them, keeping the
// voltage-volume growth (which is sensitive to neighbour order) identical.
func (l *Layout) AdjacentModules() [][]int {
	return l.AdjacentModulesInto(&AdjacencyScratch{})
}

// AdjacencyScratch recycles the working memory of AdjacentModulesInto
// across calls. The zero value is ready to use; the returned adjacency
// aliases the scratch and is overwritten by the next call with the same
// scratch.
type AdjacencyScratch struct {
	byDie [][]int
	pairs [][2]int
	deg   []int
	flat  []int
	rows  [][]int
}

// AdjacentModulesInto is AdjacentModules writing into a reusable scratch —
// the voltage-assignment engine re-sweeps adjacency on every stride refresh
// of the annealing loop, where the per-call row allocations would dominate
// the sweep itself. The result is value-identical to AdjacentModules.
func (l *Layout) AdjacentModulesInto(s *AdjacencyScratch) [][]int {
	n := len(l.Rects)
	if cap(s.byDie) < l.Dies {
		s.byDie = make([][]int, l.Dies)
	}
	byDie := s.byDie[:l.Dies]
	for d := range byDie {
		byDie[d] = byDie[d][:0]
	}
	for mi, d := range l.DieOf {
		byDie[d] = append(byDie[d], mi)
	}
	s.byDie = byDie
	// Sort each die's population by X once, in place (the lists are rebuilt
	// above on every call, so the previous call's order never leaks in).
	for d := range byDie {
		mods := byDie[d]
		sort.Slice(mods, func(i, j int) bool { return l.Rects[mods[i]].X < l.Rects[mods[j]].X })
	}
	// margin exceeds Adjacent's relative tolerance at any realistic die
	// coordinate, so the sweep never prunes a pair Adjacent would accept.
	const margin = 1e-3
	pairs := s.pairs[:0]
	record := func(a, b int) {
		if a > b {
			a, b = b, a
		}
		pairs = append(pairs, [2]int{a, b})
	}
	for d := 0; d < l.Dies; d++ {
		order := byDie[d]
		for i, a := range order {
			ra := l.Rects[a]
			maxX := ra.MaxX() + margin
			maxY := ra.MaxY() + margin
			for _, b := range order[i+1:] {
				rb := l.Rects[b]
				if rb.X > maxX {
					break
				}
				// Y pre-filter, same margin argument as the X window:
				// disjoint-beyond-margin Y spans can neither overlap nor
				// abut, so Adjacent cannot accept the pair.
				if rb.Y > maxY || ra.Y > rb.MaxY()+margin {
					continue
				}
				if ra.Adjacent(rb) {
					record(a, b)
				}
			}
		}
		// Vertical adjacency against the die above.
		if d+1 >= l.Dies {
			continue
		}
		above := byDie[d+1]
		for _, a := range order {
			ra := l.Rects[a]
			for _, b := range above {
				rb := l.Rects[b]
				if rb.X >= ra.MaxX() {
					break
				}
				if rb.MaxX() <= ra.X {
					continue
				}
				// Footprint overlap needs open Y-interval overlap too.
				if rb.Y >= ra.MaxY() || ra.Y >= rb.MaxY() {
					continue
				}
				if ra.OverlapArea(rb) > 0 {
					record(a, b)
				}
			}
		}
	}
	// Emit in the all-pairs order: ascending (a, b).
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
	s.pairs = pairs
	// Carve the rows out of one flat backing array sized by degree, filling
	// in pair order — the same per-row neighbour order the historical
	// append-per-pair emission produced.
	if cap(s.deg) < n {
		s.deg = make([]int, n)
		s.rows = make([][]int, n)
	}
	deg := s.deg[:n]
	for i := range deg {
		deg[i] = 0
	}
	for _, p := range pairs {
		deg[p[0]]++
		deg[p[1]]++
	}
	if cap(s.flat) < 2*len(pairs) {
		s.flat = make([]int, 2*len(pairs))
	}
	flat := s.flat[:2*len(pairs)]
	rows := s.rows[:n]
	off := 0
	for m := 0; m < n; m++ {
		rows[m] = flat[off : off : off+deg[m]]
		off += deg[m]
	}
	for _, p := range pairs {
		rows[p[0]] = append(rows[p[0]], p[1])
		rows[p[1]] = append(rows[p[1]], p[0])
	}
	return rows
}

// Clone returns a deep copy of the layout sharing the design.
func (l *Layout) Clone() *Layout {
	c := *l
	c.Rects = append([]geom.Rect(nil), l.Rects...)
	c.DieOf = append([]int(nil), l.DieOf...)
	return &c
}

func (l *Layout) String() string {
	return fmt.Sprintf("Layout(%s: %d modules, %d dies, %.0fx%.0f um)",
		l.Design.Name, len(l.Rects), l.Dies, l.OutlineW, l.OutlineH)
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
