package floorplan

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bench"
	"repro/internal/netlist"
)

func tinyDesign() *netlist.Design {
	return &netlist.Design{
		Name: "tiny",
		Modules: []*netlist.Module{
			{Name: "a", Kind: netlist.Hard, W: 20, H: 10, Power: 1},
			{Name: "b", Kind: netlist.Hard, W: 10, H: 10, Power: 2},
			{Name: "c", Kind: netlist.Soft, W: 15, H: 15, MinAspect: 0.5, MaxAspect: 2, Power: 0.5},
			{Name: "d", Kind: netlist.Soft, W: 10, H: 20, MinAspect: 0.25, MaxAspect: 4, Power: 0.25},
		},
		Nets: []*netlist.Net{
			{Name: "n0", Modules: []int{0, 1}},
			{Name: "n1", Modules: []int{1, 2, 3}},
			{Name: "n2", Modules: []int{0, 3}, Terminals: []int{0}},
		},
		Terminals: []*netlist.Terminal{{Name: "t0", X: 0, Y: 25}},
		OutlineW:  60, OutlineH: 60, Dies: 2,
	}
}

func TestPackNoOverlap(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		fp := NewRandom(tinyDesign(), rng)
		l := fp.Pack()
		if ov := l.OverlapArea(); ov > 1e-9 {
			t.Fatalf("trial %d: overlap %v", trial, ov)
		}
	}
}

func TestPackNoOverlapAfterPerturbations(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	fp := NewRandom(tinyDesign(), rng)
	for i := 0; i < 500; i++ {
		fp.Perturb(rng)
		if !fp.CheckInvariants() {
			t.Fatalf("iteration %d: invariants broken", i)
		}
		l := fp.Pack()
		if ov := l.OverlapArea(); ov > 1e-9 {
			t.Fatalf("iteration %d: overlap %v", i, ov)
		}
	}
}

func TestUndoRestoresState(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	fp := NewRandom(tinyDesign(), rng)
	before := fp.Pack()
	for i := 0; i < 200; i++ {
		_, undo := fp.Perturb(rng)
		undo()
		after := fp.Pack()
		for mi := range before.Rects {
			if before.Rects[mi] != after.Rects[mi] || before.DieOf[mi] != after.DieOf[mi] {
				t.Fatalf("iteration %d: undo failed for module %d: %+v vs %+v",
					i, mi, before.Rects[mi], after.Rects[mi])
			}
		}
	}
}

func TestPackDeterministic(t *testing.T) {
	fp := NewRandom(tinyDesign(), rand.New(rand.NewSource(7)))
	a := fp.Pack()
	b := fp.Pack()
	for mi := range a.Rects {
		if a.Rects[mi] != b.Rects[mi] {
			t.Fatalf("module %d: %+v vs %+v", mi, a.Rects[mi], b.Rects[mi])
		}
	}
}

func TestDieOf(t *testing.T) {
	fp := New(tinyDesign())
	l := fp.Pack()
	for mi := range l.Rects {
		if fp.DieOf(mi) != l.DieOf[mi] {
			t.Fatalf("module %d die mismatch", mi)
		}
	}
	if fp.DieOf(99) != -1 {
		t.Fatal("missing module should report -1")
	}
}

func TestModulesAtOriginDie(t *testing.T) {
	fp := New(tinyDesign())
	l := fp.Pack()
	// Round-robin: modules 0, 2 on die 0; modules 1, 3 on die 1.
	if l.DieOf[0] != 0 || l.DieOf[2] != 0 || l.DieOf[1] != 1 || l.DieOf[3] != 1 {
		t.Fatalf("die assignment %v", l.DieOf)
	}
}

func TestOutlineViolationZeroWhenFits(t *testing.T) {
	fp := New(tinyDesign())
	l := fp.Pack()
	if !l.Legal() {
		t.Fatalf("tiny design should fit 60x60 outline; violation %v", l.OutlineViolation())
	}
}

func TestOutlineViolationDetected(t *testing.T) {
	d := tinyDesign()
	d.OutlineW, d.OutlineH = 18, 18 // too small for the 20x10 hard module
	fp := New(d)
	l := fp.Pack()
	if l.Legal() {
		t.Fatal("expected outline violation")
	}
	if l.OutlineViolation() <= 0 {
		t.Fatal("violation must be positive")
	}
}

func TestHPWLPositiveAndMonotonicWithVertLen(t *testing.T) {
	fp := New(tinyDesign())
	l := fp.Pack()
	w0 := l.HPWL(0)
	w1 := l.HPWL(100)
	if w0 <= 0 {
		t.Fatal("HPWL must be positive")
	}
	if w1 < w0 {
		t.Fatal("via detour must not reduce HPWL")
	}
}

func TestNetHPWLSingleDie(t *testing.T) {
	d := tinyDesign()
	d.Dies = 1
	fp := New(d)
	l := fp.Pack()
	// n0 connects modules 0 and 1 on the same die: HPWL = bbox of centers.
	c0, c1 := l.Rects[0].Center(), l.Rects[1].Center()
	want := math.Abs(c0.X-c1.X) + math.Abs(c0.Y-c1.Y)
	if got := l.NetHPWL(d.Nets[0], 50); math.Abs(got-want) > 1e-9 {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestCrossDieNets(t *testing.T) {
	fp := New(tinyDesign()) // round robin: 0,2 vs 1,3
	l := fp.Pack()
	cross := l.CrossDieNets()
	// n0 (0,1): cross. n1 (1,2,3): cross. n2 (0,3): cross.
	if len(cross) != 3 {
		t.Fatalf("cross-die nets = %v", cross)
	}
}

func TestPowerMapConservesPower(t *testing.T) {
	fp := New(tinyDesign())
	l := fp.Pack()
	p := l.NominalPowers()
	total := 0.0
	for d := 0; d < l.Dies; d++ {
		g := l.PowerMap(d, 16, 16, p)
		total += g.Sum()
	}
	if math.Abs(total-3.75) > 1e-9 {
		t.Fatalf("power maps sum to %v, want 3.75", total)
	}
}

func TestModulesOnDie(t *testing.T) {
	fp := New(tinyDesign())
	l := fp.Pack()
	d0 := l.ModulesOnDie(0)
	if len(d0) != 2 || d0[0] != 0 || d0[1] != 2 {
		t.Fatalf("die 0 modules %v", d0)
	}
}

func TestAdjacentModulesSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	fp := NewRandom(tinyDesign(), rng)
	l := fp.Pack()
	adj := l.AdjacentModules()
	for a, ns := range adj {
		for _, b := range ns {
			found := false
			for _, x := range adj[b] {
				if x == a {
					found = true
				}
			}
			if !found {
				t.Fatalf("adjacency not symmetric: %d->%d", a, b)
			}
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	fp := NewRandom(tinyDesign(), rng)
	c := fp.Clone()
	before := fp.Pack()
	for i := 0; i < 50; i++ {
		c.Perturb(rng)
	}
	after := fp.Pack()
	for mi := range before.Rects {
		if before.Rects[mi] != after.Rects[mi] {
			t.Fatal("perturbing clone mutated original")
		}
	}
}

func TestLayoutClone(t *testing.T) {
	l := New(tinyDesign()).Pack()
	c := l.Clone()
	c.Rects[0].X = 999
	c.DieOf[0] = 1
	if l.Rects[0].X == 999 || l.DieOf[0] == 1 {
		t.Fatal("layout clone aliases source")
	}
}

func TestSkylinePackingTight(t *testing.T) {
	// Two 10x10 blocks in a 20-wide outline must pack side by side at y=0.
	d := &netlist.Design{
		Name: "pair",
		Modules: []*netlist.Module{
			{Name: "a", Kind: netlist.Hard, W: 10, H: 10, Power: 1},
			{Name: "b", Kind: netlist.Hard, W: 10, H: 10, Power: 1},
		},
		Nets:     []*netlist.Net{{Name: "n", Modules: []int{0, 1}}},
		OutlineW: 20, OutlineH: 100, Dies: 1,
	}
	fp := New(d)
	l := fp.Pack()
	if l.Rects[0].Y != 0 || l.Rects[1].Y != 0 {
		t.Fatalf("blocks should sit at y=0: %+v %+v", l.Rects[0], l.Rects[1])
	}
	if l.Rects[0].X == l.Rects[1].X {
		t.Fatal("blocks overlap in x")
	}
}

func TestSkylineStacksWhenNarrow(t *testing.T) {
	d := &netlist.Design{
		Name: "stack",
		Modules: []*netlist.Module{
			{Name: "a", Kind: netlist.Hard, W: 10, H: 10, Power: 1},
			{Name: "b", Kind: netlist.Hard, W: 10, H: 10, Power: 1},
		},
		Nets:     []*netlist.Net{{Name: "n", Modules: []int{0, 1}}},
		OutlineW: 12, OutlineH: 100, Dies: 1,
	}
	l := New(d).Pack()
	if l.Rects[1].Y != 10 && l.Rects[0].Y != 10 {
		t.Fatalf("one block must stack: %+v %+v", l.Rects[0], l.Rects[1])
	}
	if ov := l.OverlapArea(); ov != 0 {
		t.Fatalf("overlap %v", ov)
	}
}

func TestRealBenchmarkPacksWithoutOverlap(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	des := bench.MustGenerate("n100")
	rng := rand.New(rand.NewSource(6))
	fp := NewRandom(des, rng)
	for i := 0; i < 100; i++ {
		fp.Perturb(rng)
	}
	l := fp.Pack()
	if ov := l.OverlapArea(); ov > 1e-6 {
		t.Fatalf("overlap %v on n100", ov)
	}
}

func TestResizeKeepsAreaThroughPack(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	fp := NewRandom(tinyDesign(), rng)
	for i := 0; i < 100; i++ {
		op, _ := fp.Perturb(rng)
		_ = op
		l := fp.Pack()
		for mi, m := range fp.Design.Modules {
			if math.Abs(l.Rects[mi].Area()-m.Area()) > 1e-6*m.Area() {
				t.Fatalf("module %d area drifted: %v vs %v", mi, l.Rects[mi].Area(), m.Area())
			}
		}
	}
}

// TestPackDiffResetReuse drives one PackDiff record through many
// apply/settle/Reset cycles — the evaluator pools the records exactly this
// way — alternating commits and rollbacks, and requires the diff contract
// (changed set exact, rollback byte-identical, reused storage never
// aliasing live state) to hold on every cycle.
func TestPackDiffResetReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	fp := NewRandom(fuzzDesign(rng), rng)
	lay := fp.Pack()
	packers := make([]*DiePacker, lay.Dies)
	for d := range packers {
		packers[d] = &DiePacker{}
	}
	pd := &PackDiff{}
	pre := lay.Clone()
	for cycle := 0; cycle < 60; cycle++ {
		mv, undo := fp.PerturbMove(rng)
		copy(pre.Rects, lay.Rects)
		copy(pre.DieOf, lay.DieOf)
		// One record reused across the move's dies in sequence, the way a
		// pooled record cycles through many moves.
		for i, d := range mv.Dies {
			pd.Reset()
			fp.PackDieFromDiff(lay, d, mv.Starts[i], packers[d], pd)
			for k, m := range pd.Changed {
				if pd.OldRects[k] != pre.Rects[m] || pd.OldDies[k] != pre.DieOf[m] {
					t.Fatalf("cycle %d: stale old placement for module %d after Reset reuse", cycle, m)
				}
			}
			if cycle%2 == 0 {
				pd.Commit()
				copy(pre.Rects, lay.Rects)
				copy(pre.DieOf, lay.DieOf)
			} else {
				pd.Rollback(lay)
				for m := range lay.Rects {
					if lay.Rects[m] != pre.Rects[m] || lay.DieOf[m] != pre.DieOf[m] {
						t.Fatalf("cycle %d: rollback left module %d displaced", cycle, m)
					}
				}
			}
		}
		if cycle%2 == 0 {
			// Accepted: keep the floorplan mutation, verify against a full
			// pack.
			want := fp.Pack()
			for m := range want.Rects {
				if lay.Rects[m] != want.Rects[m] || lay.DieOf[m] != want.DieOf[m] {
					t.Fatalf("cycle %d: accepted layout diverged at module %d", cycle, m)
				}
			}
		} else {
			undo()
			want := fp.Pack()
			for m := range want.Rects {
				if lay.Rects[m] != want.Rects[m] || lay.DieOf[m] != want.DieOf[m] {
					t.Fatalf("cycle %d: rejected layout diverged at module %d", cycle, m)
				}
			}
		}
	}
}
