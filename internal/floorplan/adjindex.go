package floorplan

import (
	"fmt"
	"sort"

	"repro/internal/geom"
)

// AdjacencyIndex is a churn-tolerant module-adjacency structure: it holds
// the same per-module neighbour rows AdjacentModulesInto computes, but keeps
// them alive between refreshes and patches only the rows a set of moved
// modules can have changed, instead of re-sweeping every die. This is the
// adjacency half of the annealing loop's incremental evaluator — at the
// voltage-refresh stride the full X-sweep plus the all-rows diff was the
// largest remaining shared cost once the candidate-tree cache landed, and
// both are O(design) regardless of how few modules actually moved.
//
// Layout of the structure:
//
//   - rows[m] is module m's neighbour list, ascending module ids — exactly
//     the order the sweep (and the historical all-pairs scan) emits;
//   - per die, modules are registered in fixed-width X-interval buckets.
//     A moved module is re-bucketed and its new row is recomputed by probing
//     only the buckets its (margin-padded) X span covers, on its own die and
//     the neighbouring dies, with the exact predicates of the sweep
//     (Rect.Adjacent laterally, positive footprint overlap vertically);
//   - gained and lost neighbours get module m spliced into / out of their
//     sorted rows, so every row always equals a from-scratch sweep of the
//     current geometry.
//
// Update is driven by a dirty-module list under the same contract as
// volt.Assigner.Refresh: the list must cover every module whose rect or die
// differs from the layout the index last saw; supersets are safe (modules
// whose stored geometry already matches are skipped in O(1)).
// An AdjacencyIndex is not safe for concurrent use.
type AdjacencyIndex struct {
	n     int
	dies  int
	nb    int     // buckets per die
	bw    float64 // bucket pitch in um
	valid bool

	rects []geom.Rect // stored geometry, synchronized by Rebuild/Update
	dieOf []int
	// buckets[d*nb+b] lists the modules on die d whose X span covers bucket
	// b. Order within a bucket is arbitrary (rows are sorted on emission).
	buckets [][]int
	rows    [][]int

	// Scratch.
	sweep       AdjacencyScratch
	stamp       int
	candMark    []int // stamp-based candidate dedupe
	movedMark   []int // stamp-based moved-module membership
	changedMark []int // stamp-based changed-row dedupe
	moved       []int
	changed     []int
	newRow      []int
	rowBuf      []int
}

// NewAdjacencyIndex returns an empty index; Rebuild fills it.
func NewAdjacencyIndex() *AdjacencyIndex { return &AdjacencyIndex{} }

// Valid reports whether the index currently mirrors a layout.
func (ix *AdjacencyIndex) Valid() bool { return ix.valid }

// Invalidate drops the mirrored state; the next use must Rebuild.
func (ix *AdjacencyIndex) Invalidate() { ix.valid = false }

// Rows returns the per-module adjacency rows, value-identical to
// AdjacentModulesInto on the mirrored layout. The rows are owned by the
// index and are patched in place by Update.
func (ix *AdjacencyIndex) Rows() [][]int { return ix.rows }

// Rebuild resets the index from a full sweep of the layout.
func (ix *AdjacencyIndex) Rebuild(l *Layout) {
	n := len(l.Rects)
	if ix.rects == nil || ix.n != n || ix.dies != l.Dies {
		ix.n = n
		ix.dies = l.Dies
		ix.rects = make([]geom.Rect, n)
		ix.dieOf = make([]int, n)
		ix.rows = make([][]int, n)
		ix.candMark = make([]int, n)
		ix.movedMark = make([]int, n)
		ix.changedMark = make([]int, n)
		ix.stamp = 0
		// Bucket pitch: aim at a handful of modules per bucket per die.
		ix.nb = n / l.Dies / 4
		if ix.nb < 8 {
			ix.nb = 8
		}
		if ix.nb > 256 {
			ix.nb = 256
		}
		ix.buckets = make([][]int, l.Dies*ix.nb)
	}
	ix.bw = l.OutlineW / float64(ix.nb)
	if ix.bw <= 0 {
		ix.bw = 1
	}
	copy(ix.rects, l.Rects)
	copy(ix.dieOf, l.DieOf)
	for b := range ix.buckets {
		ix.buckets[b] = ix.buckets[b][:0]
	}
	for m := 0; m < n; m++ {
		ix.bucketInsert(m)
	}
	swept := l.AdjacentModulesInto(&ix.sweep)
	for m := range swept {
		ix.rows[m] = append(ix.rows[m][:0], swept[m]...)
	}
	ix.valid = true
}

// Update synchronizes the index after the listed modules moved and returns
// the modules whose adjacency rows changed (deduplicated, unordered), plus
// whether the update fell back to the bulk sweep-plus-diff path (so callers
// can count sweep-regime and probe-regime refreshes separately). The
// returned slice aliases scratch — valid until the next Update. Modules in
// dirty whose stored geometry already matches the layout are skipped, so a
// superset is safe. Panics if the index was never built or the design size
// changed (the callers rebuild on those transitions).
func (ix *AdjacencyIndex) Update(l *Layout, dirty []int) (changedRows []int, bulk bool) {
	if !ix.valid || len(l.Rects) != ix.n || l.Dies != ix.dies {
		panic("floorplan: AdjacencyIndex.Update without a matching Rebuild")
	}
	// Collect the modules that really moved, deduplicated.
	ix.stamp++
	movedStamp := ix.stamp
	moved := ix.moved[:0]
	for _, m := range dirty {
		if ix.movedMark[m] == movedStamp {
			continue
		}
		if ix.rects[m] == l.Rects[m] && ix.dieOf[m] == l.DieOf[m] {
			continue // no-op relative to the mirrored geometry
		}
		ix.movedMark[m] = movedStamp
		moved = append(moved, m)
	}
	ix.moved = moved
	if len(moved) == 0 {
		return nil, false
	}

	// Above the churn threshold the per-module probes cannot beat one
	// batch sweep (the sweep's sorted X scan amortizes across the whole
	// die), so the index resynchronizes wholesale: same rows, same changed
	// set, better constant. The threshold is the measured crossover between
	// probe cost and sweep-plus-diff cost on the annealing workloads.
	if len(moved)*bulkFraction > ix.n {
		return ix.bulkResync(l), true
	}

	// Phase 1: re-bucket every moved module so the probes below see current
	// geometry for moved-moved pairs too.
	for _, m := range moved {
		ix.bucketRemove(m)
		ix.rects[m] = l.Rects[m]
		ix.dieOf[m] = l.DieOf[m]
		ix.bucketInsert(m)
	}

	// Phase 2: recompute each moved module's row, splice the gains/losses
	// into the untouched neighbours' rows, and collect every changed row.
	ix.stamp++
	changedStamp := ix.stamp
	changed := ix.changed[:0]
	note := func(m int) {
		if ix.changedMark[m] != changedStamp {
			ix.changedMark[m] = changedStamp
			changed = append(changed, m)
		}
	}
	for _, m := range moved {
		newRow := ix.probeRow(m)
		oldRow := ix.rows[m]
		// Sorted two-pointer diff; neighbours that are themselves moved are
		// skipped (their own probe rebuilds their row in full).
		i, j := 0, 0
		rowChanged := false
		for i < len(oldRow) || j < len(newRow) {
			switch {
			case j == len(newRow) || (i < len(oldRow) && oldRow[i] < newRow[j]):
				u := oldRow[i]
				i++
				rowChanged = true
				if ix.movedMark[u] != movedStamp {
					ix.rowRemove(u, m)
					note(u)
				}
			case i == len(oldRow) || oldRow[i] > newRow[j]:
				u := newRow[j]
				j++
				rowChanged = true
				if ix.movedMark[u] != movedStamp {
					ix.rowInsert(u, m)
					note(u)
				}
			default:
				i++
				j++
			}
		}
		if rowChanged {
			note(m)
		}
		ix.rows[m] = append(ix.rows[m][:0], newRow...)
	}
	ix.changed = changed
	return changed, false
}

// bulkFraction sets the churn threshold: Update switches to bulkResync once
// more than n/bulkFraction modules moved since the last synchronization.
const bulkFraction = 8

// bulkResync brings the whole index in line with l via one adjacency sweep:
// buckets are refilled, every row is diffed against the swept rows, and the
// changed ones are copied in. Row contents and the returned changed set are
// identical to what the per-module probe path would produce.
func (ix *AdjacencyIndex) bulkResync(l *Layout) []int {
	copy(ix.rects, l.Rects)
	copy(ix.dieOf, l.DieOf)
	for b := range ix.buckets {
		ix.buckets[b] = ix.buckets[b][:0]
	}
	for m := 0; m < ix.n; m++ {
		ix.bucketInsert(m)
	}
	swept := l.AdjacentModulesInto(&ix.sweep)
	changed := ix.changed[:0]
	for m := range swept {
		if !intSlicesEqual(ix.rows[m], swept[m]) {
			ix.rows[m] = append(ix.rows[m][:0], swept[m]...)
			changed = append(changed, m)
		}
	}
	ix.changed = changed
	return changed
}

func intSlicesEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// CheckAgainst compares every row with a fresh sweep of l and returns a
// description of the first divergence, or nil. Debug aid for the flow's
// cross-check path; it forfeits the incremental speedup.
func (ix *AdjacencyIndex) CheckAgainst(l *Layout) error {
	if !ix.valid {
		return fmt.Errorf("floorplan: adjacency index not built")
	}
	want := l.AdjacentModulesInto(&AdjacencyScratch{})
	if len(want) != ix.n {
		return fmt.Errorf("floorplan: adjacency index tracks %d modules, layout has %d", ix.n, len(want))
	}
	for m := range want {
		if len(ix.rows[m]) != len(want[m]) {
			return fmt.Errorf("floorplan: module %d adjacency %v != sweep %v", m, ix.rows[m], want[m])
		}
		for k := range want[m] {
			if ix.rows[m][k] != want[m][k] {
				return fmt.Errorf("floorplan: module %d adjacency %v != sweep %v", m, ix.rows[m], want[m])
			}
		}
	}
	return nil
}

// bucketRange returns the bucket span covering [lo, hi], clamped.
func (ix *AdjacencyIndex) bucketRange(lo, hi float64) (int, int) {
	b0 := int(lo / ix.bw)
	b1 := int(hi / ix.bw)
	if b0 < 0 {
		b0 = 0
	}
	if b1 >= ix.nb {
		b1 = ix.nb - 1
	}
	if b1 < b0 {
		b1 = b0
	}
	return b0, b1
}

func (ix *AdjacencyIndex) bucketInsert(m int) {
	r := ix.rects[m]
	b0, b1 := ix.bucketRange(r.X, r.MaxX())
	base := ix.dieOf[m] * ix.nb
	for b := b0; b <= b1; b++ {
		ix.buckets[base+b] = append(ix.buckets[base+b], m)
	}
}

func (ix *AdjacencyIndex) bucketRemove(m int) {
	r := ix.rects[m]
	b0, b1 := ix.bucketRange(r.X, r.MaxX())
	base := ix.dieOf[m] * ix.nb
	for b := b0; b <= b1; b++ {
		s := ix.buckets[base+b]
		for k, v := range s {
			if v == m {
				s[k] = s[len(s)-1]
				ix.buckets[base+b] = s[:len(s)-1]
				break
			}
		}
	}
}

// probeRow recomputes module m's neighbour row from the buckets, sorted
// ascending. The same-die probe pads the span with the sweep's margin (which
// exceeds Rect.Adjacent's relative tolerance at any realistic die
// coordinate); the vertical probes need no padding, since footprint overlap
// requires shared open X intervals. The returned slice aliases scratch.
func (ix *AdjacencyIndex) probeRow(m int) []int {
	const margin = 1e-3
	r := ix.rects[m]
	d := ix.dieOf[m]
	ix.stamp++
	seen := ix.stamp
	row := ix.newRow[:0]

	// The interval prefilters mirror the sweep's pruning windows (same
	// margin argument): entries failing them are skipped before the dedupe
	// stamp and the exact predicate, which keeps the per-entry cost of the
	// piled-up buckets an annealing-era layout produces (heavy overlap,
	// outline overflow) at a couple of float compares.
	collect := func(die int, lo, hi, yLo, yHi float64, vertical bool) {
		b0, b1 := ix.bucketRange(lo, hi)
		base := die * ix.nb
		for b := b0; b <= b1; b++ {
			for _, u := range ix.buckets[base+b] {
				ru := ix.rects[u]
				if ru.X > hi || ru.X+ru.W < lo || ru.Y > yHi || ru.Y+ru.H < yLo {
					continue
				}
				if u == m || ix.candMark[u] == seen {
					continue
				}
				ix.candMark[u] = seen
				if vertical {
					if r.OverlapArea(ru) > 0 {
						row = append(row, u)
					}
				} else if r.Adjacent(ru) {
					row = append(row, u)
				}
			}
		}
	}
	collect(d, r.X-margin, r.MaxX()+margin, r.Y-margin, r.MaxY()+margin, false)
	if d > 0 {
		collect(d-1, r.X, r.MaxX(), r.Y, r.MaxY(), true)
	}
	if d+1 < ix.dies {
		collect(d+1, r.X, r.MaxX(), r.Y, r.MaxY(), true)
	}
	sort.Ints(row)
	ix.newRow = row
	return row
}

// rowRemove splices m out of u's sorted row.
func (ix *AdjacencyIndex) rowRemove(u, m int) {
	row := ix.rows[u]
	k := sort.SearchInts(row, m)
	if k < len(row) && row[k] == m {
		copy(row[k:], row[k+1:])
		ix.rows[u] = row[:len(row)-1]
	}
}

// rowInsert splices m into u's sorted row.
func (ix *AdjacencyIndex) rowInsert(u, m int) {
	row := ix.rows[u]
	k := sort.SearchInts(row, m)
	if k < len(row) && row[k] == m {
		return
	}
	row = append(row, 0)
	copy(row[k+1:], row[k:])
	row[k] = m
	ix.rows[u] = row
}
