package floorplan

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bench"
	"repro/internal/geom"
)

// snapshotRows deep-copies adjacency rows for the changed-set assertion.
func snapshotRows(rows [][]int) [][]int {
	out := make([][]int, len(rows))
	for m := range rows {
		out[m] = append([]int(nil), rows[m]...)
	}
	return out
}

func rowsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestAdjacencyIndexMatchesSweepOverMoves drives the index through journaled
// move sequences with rejections interleaved — exactly the churn the
// annealing loop produces — and pins every row against a fresh
// AdjacentModulesInto sweep, plus the changed-set contract: every module
// whose row differs from the pre-update rows must be reported changed.
func TestAdjacencyIndexMatchesSweepOverMoves(t *testing.T) {
	des := bench.MustGenerate("n100")
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		fp := NewRandom(des, rng)
		l := fp.Pack()
		ix := NewAdjacencyIndex()
		ix.Rebuild(l)
		if err := ix.CheckAgainst(l); err != nil {
			t.Fatalf("seed %d: rebuild diverges: %v", seed, err)
		}

		prev := append([]geom.Rect(nil), l.Rects...)
		prevDie := append([]int(nil), l.DieOf...)
		sync := func(step int) {
			// Dirty set: every module whose geometry changed since the index
			// last saw the layout (the evaluator derives this from its move
			// journal; the test diffs outright).
			var dirty []int
			for m := range l.Rects {
				if l.Rects[m] != prev[m] || l.DieOf[m] != prevDie[m] {
					dirty = append(dirty, m)
				}
			}
			before := snapshotRows(ix.Rows())
			changed, _ := ix.Update(l, dirty)
			if err := ix.CheckAgainst(l); err != nil {
				t.Fatalf("seed %d step %d: index diverges after update: %v", seed, step, err)
			}
			inChanged := make(map[int]bool, len(changed))
			for _, m := range changed {
				inChanged[m] = true
			}
			for m := range before {
				if !rowsEqual(before[m], ix.Rows()[m]) && !inChanged[m] {
					t.Fatalf("seed %d step %d: module %d row changed but was not reported", seed, step, m)
				}
			}
			copy(prev, l.Rects)
			copy(prevDie, l.DieOf)
		}

		for i := 0; i < 120; i++ {
			mv, undo := fp.PerturbMove(rng)
			for _, d := range mv.Dies {
				fp.PackDie(l, d)
			}
			sync(i)
			if rng.Float64() < 0.4 {
				// Rejection: the floorplan reverts and the dies repack to
				// their pre-move geometry; the index must follow exactly.
				undo()
				for _, d := range mv.Dies {
					fp.PackDie(l, d)
				}
				sync(i)
			}
		}
	}
}

// TestAdjacencyIndexSupersetDirtyIsSafe passes every module as dirty on
// every update — the documented superset allowance — and expects identical
// rows at no correctness cost.
func TestAdjacencyIndexSupersetDirtyIsSafe(t *testing.T) {
	des := bench.MustGenerate("n100")
	rng := rand.New(rand.NewSource(9))
	fp := NewRandom(des, rng)
	l := fp.Pack()
	ix := NewAdjacencyIndex()
	ix.Rebuild(l)
	all := make([]int, len(l.Rects))
	for m := range all {
		all[m] = m
	}
	for i := 0; i < 40; i++ {
		mv, _ := fp.PerturbMove(rng)
		for _, d := range mv.Dies {
			fp.PackDie(l, d)
		}
		ix.Update(l, all)
		if err := ix.CheckAgainst(l); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
}

// TestAdjacencyIndexUpdateRequiresRebuild pins the misuse guard: Update on
// an unbuilt (or size-mismatched) index must panic, not corrupt silently.
func TestAdjacencyIndexUpdateRequiresRebuild(t *testing.T) {
	des := bench.MustGenerate("n100")
	fp := NewRandom(des, rand.New(rand.NewSource(1)))
	l := fp.Pack()
	defer func() {
		if recover() == nil {
			t.Fatal("Update on an unbuilt index must panic")
		}
	}()
	NewAdjacencyIndex().Update(l, []int{0})
}

// BenchmarkAdjacencyIndexUpdate measures Update against the full sweep at
// increasing churn (moves applied between synchronizations) on the largest
// benchmark — the measurement behind the index's bulk-resync threshold
// (bulkFraction): below it the per-module probes win, above it Update
// degrades gracefully to sweep-plus-diff cost instead of probing hundreds
// of modules.
func BenchmarkAdjacencyIndexUpdate(b *testing.B) {
	des := bench.MustGenerate("ibm01")
	rng := rand.New(rand.NewSource(1))
	fp := NewRandom(des, rng)
	l := fp.Pack()
	for _, churn := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("update/moves=%d", churn), func(b *testing.B) {
			ix := NewAdjacencyIndex()
			ix.Rebuild(l)
			prev := append([]geom.Rect(nil), l.Rects...)
			var dirty []int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				for k := 0; k < churn; k++ {
					mv, _ := fp.PerturbMove(rng)
					for _, d := range mv.Dies {
						fp.PackDie(l, d)
					}
				}
				dirty = dirty[:0]
				for m := range l.Rects {
					if l.Rects[m] != prev[m] {
						dirty = append(dirty, m)
					}
				}
				copy(prev, l.Rects)
				b.StartTimer()
				ix.Update(l, dirty)
			}
		})
	}
	b.Run("sweep", func(b *testing.B) {
		s := &AdjacencyScratch{}
		for i := 0; i < b.N; i++ {
			l.AdjacentModulesInto(s)
		}
	})
}
