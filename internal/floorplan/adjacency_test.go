package floorplan

import (
	"math/rand"
	"testing"

	"repro/internal/bench"
)

// bruteAdjacent is the reference all-pairs implementation the swept
// AdjacentModules must reproduce exactly, including neighbour order.
func bruteAdjacent(l *Layout) [][]int {
	n := len(l.Rects)
	adj := make([][]int, n)
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			da, db := l.DieOf[a], l.DieOf[b]
			var linked bool
			switch {
			case da == db:
				linked = l.Rects[a].Adjacent(l.Rects[b])
			case da == db+1 || db == da+1:
				linked = l.Rects[a].OverlapArea(l.Rects[b]) > 0
			}
			if linked {
				adj[a] = append(adj[a], b)
				adj[b] = append(adj[b], a)
			}
		}
	}
	return adj
}

func TestAdjacentModulesMatchesBruteForce(t *testing.T) {
	des := bench.MustGenerate("n100")
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		fp := NewRandom(des, rng)
		// A few perturbations so packed and overhanging shapes both occur.
		for i := 0; i < 25; i++ {
			fp.Perturb(rng)
		}
		l := fp.Pack()
		got := l.AdjacentModules()
		want := bruteAdjacent(l)
		for m := range want {
			if len(got[m]) != len(want[m]) {
				t.Fatalf("seed %d module %d: adjacency %v != brute force %v", seed, m, got[m], want[m])
			}
			for k := range want[m] {
				if got[m][k] != want[m][k] {
					t.Fatalf("seed %d module %d: order differs: %v vs %v", seed, m, got[m], want[m])
				}
			}
		}
	}
}
