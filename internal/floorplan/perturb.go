package floorplan

import (
	"math/rand"

	"repro/internal/netlist"
)

// Op identifies a perturbation operator, mirroring Corblivar's move set.
type Op int

const (
	// OpSwap exchanges two modules' sequence positions (possibly across dies).
	OpSwap Op = iota
	// OpMove removes a module and reinserts it at a random position on a
	// random die.
	OpMove
	// OpRotate toggles a module's rotation.
	OpRotate
	// OpResize reshapes a soft module's aspect ratio.
	OpResize
	// OpFlipDir toggles a module's skyline insertion preference.
	OpFlipDir
	numOps
)

func (o Op) String() string {
	switch o {
	case OpSwap:
		return "swap"
	case OpMove:
		return "move"
	case OpRotate:
		return "rotate"
	case OpResize:
		return "resize"
	case OpFlipDir:
		return "flipdir"
	default:
		return "op?"
	}
}

// Move describes one applied perturbation: the operator, the dies whose
// packing it invalidated, and — per die — the earliest sequence position the
// move touched. The incremental cost evaluator repacks only Move.Dies, and
// with a DiePacker only from Move.Starts onward; everything else in the
// layout is untouched by construction (each die's skyline packing depends
// only on that die's own sequence, directions, rotations, and aspects, and
// a placement depends only on the sequence prefix before it).
type Move struct {
	Op Op
	// Dies holds the die indices whose packings changed, deduplicated.
	// For a swap it is both modules' dies; for a cross-die move the source
	// and destination; for the single-module operators the module's die.
	Dies []int
	// Starts[i] is the earliest sequence position of Dies[i] affected by
	// the move; placements before it are unchanged.
	Starts []int
}

// Touch records a die in the move with the earliest affected sequence
// position, deduplicating dies and keeping the minimum position.
func (mv *Move) Touch(d, start int) {
	for i, e := range mv.Dies {
		if e == d {
			if start < mv.Starts[i] {
				mv.Starts[i] = start
			}
			return
		}
	}
	mv.Dies = append(mv.Dies, d)
	mv.Starts = append(mv.Starts, start)
}

// Perturb applies one random operator and returns an undo closure restoring
// the previous state exactly. The returned Op reports which operator ran.
func (fp *Floorplan) Perturb(rng *rand.Rand) (Op, func()) {
	mv, undo := fp.PerturbMove(rng)
	return mv.Op, undo
}

// PerturbMove is Perturb returning the full Move record, the contract the
// incremental evaluator builds on: after the move (and equally after its
// undo), only the packings of Move.Dies may differ from before.
func (fp *Floorplan) PerturbMove(rng *rand.Rand) (Move, func()) {
	for {
		op := Op(rng.Intn(int(numOps)))
		if mv, undo, ok := fp.apply(op, rng); ok {
			return mv, undo
		}
	}
}

func (fp *Floorplan) apply(op Op, rng *rand.Rand) (Move, func(), bool) {
	n := len(fp.Design.Modules)
	mv := Move{Op: op}
	switch op {
	case OpSwap:
		if n < 2 {
			return mv, nil, false
		}
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b {
			return mv, nil, false
		}
		da, ia := fp.locate(a)
		db, ib := fp.locate(b)
		fp.seq[da][ia], fp.seq[db][ib] = fp.seq[db][ib], fp.seq[da][ia]
		mv.Touch(da, ia)
		mv.Touch(db, ib)
		return mv, func() {
			fp.seq[da][ia], fp.seq[db][ib] = fp.seq[db][ib], fp.seq[da][ia]
		}, true

	case OpMove:
		mi := rng.Intn(n)
		d, i := fp.locate(mi)
		// Remove.
		fp.seq[d] = append(fp.seq[d][:i], fp.seq[d][i+1:]...)
		// Reinsert.
		nd := rng.Intn(fp.Design.Dies)
		ni := 0
		if len(fp.seq[nd]) > 0 {
			ni = rng.Intn(len(fp.seq[nd]) + 1)
		}
		fp.seq[nd] = append(fp.seq[nd], 0)
		copy(fp.seq[nd][ni+1:], fp.seq[nd][ni:])
		fp.seq[nd][ni] = mi
		mv.Touch(d, i)
		mv.Touch(nd, ni)
		return mv, func() {
			fp.seq[nd] = append(fp.seq[nd][:ni], fp.seq[nd][ni+1:]...)
			fp.seq[d] = append(fp.seq[d], 0)
			copy(fp.seq[d][i+1:], fp.seq[d][i:])
			fp.seq[d][i] = mi
		}, true

	case OpRotate:
		mi := rng.Intn(n)
		fp.rot[mi] = !fp.rot[mi]
		d, i := fp.locate(mi)
		mv.Touch(d, i)
		return mv, func() { fp.rot[mi] = !fp.rot[mi] }, true

	case OpResize:
		mi := rng.Intn(n)
		m := fp.Design.Modules[mi]
		if m.Kind != netlist.Soft {
			return mv, nil, false
		}
		old := fp.aspect[mi]
		// Random walk on the aspect ratio within the module's bounds.
		f := 0.75 + 0.5*rng.Float64()
		fp.aspect[mi] = clamp(old*f, m.MinAspect, m.MaxAspect)
		//lint:floateq clamp-saturation check: equality means clamp returned the stored bound unchanged
		if fp.aspect[mi] == old {
			fp.aspect[mi] = clamp(old/f, m.MinAspect, m.MaxAspect)
		}
		d, i := fp.locate(mi)
		mv.Touch(d, i)
		return mv, func() { fp.aspect[mi] = old }, true

	case OpFlipDir:
		mi := rng.Intn(n)
		fp.dir[mi] ^= 1
		d, i := fp.locate(mi)
		mv.Touch(d, i)
		return mv, func() { fp.dir[mi] ^= 1 }, true
	}
	return mv, nil, false
}

// locate returns the die and sequence index of module mi. Panics if absent
// (an internal invariant violation).
func (fp *Floorplan) locate(mi int) (die, idx int) {
	for d, s := range fp.seq {
		for i, m := range s {
			if m == mi {
				return d, i
			}
		}
	}
	panic("floorplan: module missing from all die sequences")
}

// CheckInvariants verifies that every module appears exactly once across all
// die sequences; it returns false on the first violation. Used by tests and
// by the annealer's debug mode.
func (fp *Floorplan) CheckInvariants() bool {
	seen := make([]int, len(fp.Design.Modules))
	total := 0
	for _, s := range fp.seq {
		total += len(s)
		for _, m := range s {
			if m < 0 || m >= len(seen) {
				return false
			}
			seen[m]++
		}
	}
	if total != len(fp.Design.Modules) {
		return false
	}
	for _, c := range seen {
		if c != 1 {
			return false
		}
	}
	return true
}
