package floorplan

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/netlist"
)

// TestSkylineSequentialPlacements drives the packer directly through a
// scripted sequence and checks every invariant after each step.
func TestSkylineSequentialPlacements(t *testing.T) {
	s := newSkyline(100)
	type placed struct{ x, y, w, h float64 }
	var all []placed
	rng := rand.New(rand.NewSource(9))
	for step := 0; step < 200; step++ {
		w := 1 + rng.Float64()*30
		h := 1 + rng.Float64()*30
		dir := InsertDir(rng.Intn(2))
		x, y := s.place(w, h, dir)
		p := placed{x, y, w, h}
		// Never placed left of the origin or beyond the strip width when
		// it fits.
		if x < 0 {
			t.Fatalf("step %d: x=%v", step, x)
		}
		if w <= 100 && x+w > 100+1e-9 {
			t.Fatalf("step %d: module sticks out right: x=%v w=%v", step, x, w)
		}
		// No overlap with anything placed before.
		for i, q := range all {
			if x < q.x+q.w && q.x < x+w && y < q.y+q.h && q.y < y+h {
				t.Fatalf("step %d overlaps placement %d: %+v vs %+v", step, i, p, q)
			}
		}
		all = append(all, p)
	}
}

// TestSkylineSupportInvariant: every module must rest either on the floor
// or on top of at least one previously placed module (no floating blocks).
func TestSkylineSupportInvariant(t *testing.T) {
	s := newSkyline(50)
	type placed struct{ x, y, w, h float64 }
	var all []placed
	rng := rand.New(rand.NewSource(10))
	for step := 0; step < 100; step++ {
		w := 1 + rng.Float64()*20
		h := 1 + rng.Float64()*10
		x, y := s.place(w, h, LowestFirst)
		if y > 0 {
			supported := false
			for _, q := range all {
				if math.Abs(q.y+q.h-y) < 1e-9 && q.x < x+w && x < q.x+q.w {
					supported = true
					break
				}
			}
			if !supported {
				t.Fatalf("step %d: module at (%v,%v) floats", step, x, y)
			}
		}
		all = append(all, placed{x, y, w, h})
	}
}

// TestSkylineWiderThanStrip: modules wider than the strip clamp to x=0 and
// still never overlap previously placed modules.
func TestSkylineWiderThanStrip(t *testing.T) {
	s := newSkyline(10)
	x0, y0 := s.place(25, 5, LowestFirst)
	if x0 != 0 || y0 != 0 {
		t.Fatalf("oversize module should clamp to origin: (%v,%v)", x0, y0)
	}
	x1, y1 := s.place(25, 5, LowestFirst)
	if x1 != 0 || y1 < 5 {
		t.Fatalf("second oversize module must stack: (%v,%v)", x1, y1)
	}
}

// TestPackPropertyRandomDesigns: quick-generated designs always pack
// without overlap and preserve areas.
func TestPackPropertyRandomDesigns(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		d := &netlist.Design{Name: "q", OutlineW: 200, OutlineH: 200, Dies: 1 + rng.Intn(3)}
		for i := 0; i < n; i++ {
			kind := netlist.Hard
			if rng.Intn(2) == 0 {
				kind = netlist.Soft
			}
			m := &netlist.Module{
				Name: "m" + string(rune('a'+i)), Kind: kind,
				W: 5 + rng.Float64()*40, H: 5 + rng.Float64()*40,
				MinAspect: 0.25, MaxAspect: 4, Power: rng.Float64(),
			}
			d.Modules = append(d.Modules, m)
		}
		d.Nets = append(d.Nets, &netlist.Net{Name: "n0", Modules: []int{0, 1}})
		fp := NewRandom(d, rng)
		for k := 0; k < 30; k++ {
			fp.Perturb(rng)
		}
		l := fp.Pack()
		if l.OverlapArea() > 1e-9 {
			return false
		}
		for mi, m := range fp.Design.Modules {
			if math.Abs(l.Rects[mi].Area()-m.Area()) > 1e-6*m.Area() {
				return false
			}
		}
		return fp.CheckInvariants()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPerturbOpsCoverage: over many perturbations every operator fires.
func TestPerturbOpsCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	fp := NewRandom(tinyDesign(), rng)
	seen := map[Op]int{}
	for i := 0; i < 2000; i++ {
		op, undo := fp.Perturb(rng)
		seen[op]++
		_ = undo
	}
	for op := OpSwap; op < numOps; op++ {
		if seen[op] == 0 {
			t.Fatalf("operator %v never fired", op)
		}
	}
}

func TestOpStrings(t *testing.T) {
	for op := OpSwap; op < numOps; op++ {
		if op.String() == "op?" {
			t.Fatalf("op %d missing name", op)
		}
	}
}

func TestDeadspace(t *testing.T) {
	d := &netlist.Design{
		Name: "ds",
		Modules: []*netlist.Module{
			{Name: "a", Kind: netlist.Hard, W: 50, H: 100, Power: 1},
		},
		Nets:      []*netlist.Net{{Name: "n", Modules: []int{0}, Terminals: []int{0}}},
		Terminals: []*netlist.Terminal{{Name: "p", X: 0, Y: 0}},
		OutlineW:  100, OutlineH: 100, Dies: 1,
	}
	l := New(d).Pack()
	if got := l.Deadspace(0); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("deadspace %v, want 0.5", got)
	}
}

func TestDeadspaceEmptyDie(t *testing.T) {
	d := tinyDesign()
	l := New(d).Pack()
	for mi := range l.DieOf {
		l.DieOf[mi] = 0
	}
	if got := l.Deadspace(1); got != 1 {
		t.Fatalf("empty die deadspace %v, want 1", got)
	}
}
