package floorplan

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/netlist"
)

// fuzzDesign synthesizes a small stacked design whose module mix (hard and
// soft, varied shapes) is derived from the fuzz seed, so the packer sees
// different geometry regimes — tight packings, overhangs, skinny modules —
// across the corpus without depending on the benchmark generator.
func fuzzDesign(rng *rand.Rand) *netlist.Design {
	nMods := 6 + rng.Intn(10)
	des := &netlist.Design{
		Name:     "fuzz",
		Dies:     2 + rng.Intn(2),
		OutlineW: 80 + rng.Float64()*80,
		OutlineH: 80 + rng.Float64()*80,
	}
	for i := 0; i < nMods; i++ {
		m := &netlist.Module{
			Name:  "m",
			W:     4 + rng.Float64()*40,
			H:     4 + rng.Float64()*40,
			Power: 0.01,
		}
		if rng.Intn(2) == 0 {
			m.Kind = netlist.Soft
			m.MinAspect = 0.3
			m.MaxAspect = 3
		} else {
			m.Kind = netlist.Hard
		}
		des.Modules = append(des.Modules, m)
	}
	return des
}

// FuzzPackDieFrom drives the prefix-resumed skyline packer (PackDieFrom +
// DiePacker snapshots) through random move sequences with rejections and
// cost-less undos interleaved, and requires the incrementally maintained
// layout to stay bit-identical to a from-scratch Pack after every event —
// the exact contract the annealing loop's incremental evaluator builds on.
//
// A second layout is maintained in lockstep through PackDieFromDiff and
// checks the exact-diff contract on every event: the returned changed set
// must equal a brute-force placement compare against the pre-move layout
// (so the early-exited suffix is byte-identical by the same compare), and
// PackDiff.Rollback must restore both the layout and the packer state
// byte-exactly on rejected moves — no Invalidate, no replay.
//
// The script bytes steer the protocol per move: bit 0 rejects the move after
// the partial repack (undo + invalidate + repack, the journal-rollback
// path), bit 1 undoes it before any repack (the undo-before-Cost path).
// The seed drives the design shape and the move randomness.
func FuzzPackDieFrom(f *testing.F) {
	f.Add(int64(1), []byte{0x00, 0x01, 0x02, 0x03})
	f.Add(int64(7), []byte{0x01, 0x01, 0x01, 0x01, 0x01, 0x01})
	f.Add(int64(42), []byte{0x02, 0x00, 0x02, 0x01, 0x03, 0x00, 0x01})
	f.Add(int64(-3), []byte("\xff\x00\xaa\x55packer"))
	f.Add(int64(9001), []byte{0x00, 0x01, 0x00, 0x01, 0x02, 0x00, 0x01, 0x00, 0x00, 0x01, 0x03, 0x00, 0x01, 0x00, 0x01, 0x00})
	f.Fuzz(func(t *testing.T, seed int64, script []byte) {
		if len(script) > 64 {
			script = script[:64]
		}
		rng := rand.New(rand.NewSource(seed))
		des := fuzzDesign(rng)
		fp := NewRandom(des, rng)
		lay := fp.Pack()
		dlay := fp.Pack() // diff-path layout, maintained via PackDieFromDiff
		packers := make([]*DiePacker, des.Dies)
		dpackers := make([]*DiePacker, des.Dies)
		for d := range packers {
			packers[d] = &DiePacker{}
			dpackers[d] = &DiePacker{}
		}
		repack := func(mv Move) {
			for i, d := range mv.Dies {
				fp.PackDieFrom(lay, d, mv.Starts[i], packers[d])
			}
		}
		invalidate := func(mv Move) {
			for i, d := range mv.Dies {
				packers[d].Invalidate(mv.Starts[i])
			}
		}
		// Pre-move placement snapshot for the brute-force diff compare.
		preRects := make([]geom.Rect, len(dlay.Rects))
		preDies := make([]int, len(dlay.DieOf))
		diffs := make([]*PackDiff, 0, 2)
		repackDiff := func(mv Move) {
			copy(preRects, dlay.Rects)
			copy(preDies, dlay.DieOf)
			diffs = diffs[:0]
			for i, d := range mv.Dies {
				pd := &PackDiff{}
				fp.PackDieFromDiff(dlay, d, mv.Starts[i], dpackers[d], pd)
				diffs = append(diffs, pd)
			}
		}
		rollbackDiff := func() {
			for i := len(diffs) - 1; i >= 0; i-- {
				diffs[i].Rollback(dlay)
			}
		}
		commitDiff := func() {
			for _, pd := range diffs {
				pd.Commit()
			}
		}
		check := func(step int, what string) {
			t.Helper()
			want := fp.Pack()
			for m := range want.Rects {
				if lay.Rects[m] != want.Rects[m] || lay.DieOf[m] != want.DieOf[m] {
					t.Fatalf("step %d (%s): module %d incremental %+v/die%d != full %+v/die%d",
						step, what, m, lay.Rects[m], lay.DieOf[m], want.Rects[m], want.DieOf[m])
				}
				if dlay.Rects[m] != want.Rects[m] || dlay.DieOf[m] != want.DieOf[m] {
					t.Fatalf("step %d (%s): module %d diff-path %+v/die%d != full %+v/die%d",
						step, what, m, dlay.Rects[m], dlay.DieOf[m], want.Rects[m], want.DieOf[m])
				}
			}
		}
		// checkDiffExact pins each PackDiff's changed set against a
		// brute-force compare of dlay vs the pre-move snapshot: every
		// reported module really changed, every real change is reported,
		// and no module is reported twice.
		checkDiffExact := func(step int) {
			t.Helper()
			reported := make(map[int]bool)
			for _, pd := range diffs {
				for k, m := range pd.Changed {
					if reported[m] {
						t.Fatalf("step %d: module %d reported changed twice", step, m)
					}
					reported[m] = true
					if pd.OldRects[k] != preRects[m] || pd.OldDies[k] != preDies[m] {
						t.Fatalf("step %d: module %d old placement %+v/die%d != pre-move %+v/die%d",
							step, m, pd.OldRects[k], pd.OldDies[k], preRects[m], preDies[m])
					}
				}
			}
			for m := range dlay.Rects {
				changed := dlay.Rects[m] != preRects[m] || dlay.DieOf[m] != preDies[m]
				if changed != reported[m] {
					t.Fatalf("step %d: module %d brute-force changed=%v but reported=%v",
						step, m, changed, reported[m])
				}
			}
		}
		check(-1, "initial")
		for step, b := range script {
			mv, undo := fp.PerturbMove(rng)
			if b&2 != 0 {
				// Undo before any repack (the evaluator's undo-before-Cost
				// corner): the floorplan reverts, the stale layout must still
				// equal a fresh Pack, and the untouched snapshots stay valid.
				undo()
				invalidate(mv)
				check(step, "undo-before-repack")
				continue
			}
			repack(mv)
			repackDiff(mv)
			checkDiffExact(step)
			check(step, "apply")
			if b&1 != 0 {
				// Rejection: the legacy path undoes, drops the snapshots past
				// the move's resume points, and repacks; the diff path rolls
				// the journal back instead — both must revert bit for bit.
				undo()
				invalidate(mv)
				repack(mv)
				rollbackDiff()
				for m := range dlay.Rects {
					if dlay.Rects[m] != preRects[m] || dlay.DieOf[m] != preDies[m] {
						t.Fatalf("step %d: rollback left module %d at %+v/die%d, want %+v/die%d",
							step, m, dlay.Rects[m], dlay.DieOf[m], preRects[m], preDies[m])
					}
				}
				check(step, "reject")
			} else {
				commitDiff()
			}
		}
		if !fp.CheckInvariants() {
			t.Fatal("floorplan invariants violated")
		}
	})
}
