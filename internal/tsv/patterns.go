package tsv

import (
	"math/rand"

	"repro/internal/geom"
)

// Pattern names the six TSV distributions of the paper's exploratory study
// (Sec. 3): "no TSVs; maximal TSV density ...; irregular TSVs; irregular
// TSVs along with regular TSVs; irregular groups of densely packed TSVs,
// i.e., TSV islands; and TSV islands along with regular TSVs."
type Pattern int

const (
	PatternNone Pattern = iota
	PatternMaxDensity
	PatternIrregular
	PatternIrregularPlusRegular
	PatternIslands
	PatternIslandsPlusRegular
	NumPatterns
)

func (p Pattern) String() string {
	switch p {
	case PatternNone:
		return "none"
	case PatternMaxDensity:
		return "max-density"
	case PatternIrregular:
		return "irregular"
	case PatternIrregularPlusRegular:
		return "irregular+regular"
	case PatternIslands:
		return "islands"
	case PatternIslandsPlusRegular:
		return "islands+regular"
	default:
		return "pattern?"
	}
}

// AllPatterns lists the six distributions in paper order.
func AllPatterns() []Pattern {
	return []Pattern{
		PatternNone, PatternMaxDensity, PatternIrregular,
		PatternIrregularPlusRegular, PatternIslands, PatternIslandsPlusRegular,
	}
}

// GeneratePattern builds a synthetic TSV plan of the given pattern for a
// die of outlineW x outlineH um. The rng drives irregular placements;
// regular placements are deterministic.
func GeneratePattern(p Pattern, outlineW, outlineH float64, rng *rand.Rand) *Plan {
	plan := &Plan{Geometry: DefaultGeometry(), OutlineW: outlineW, OutlineH: outlineH}
	switch p {
	case PatternNone:
		// empty plan
	case PatternMaxDensity:
		// 100% of the area covered by vias and keep-out zones: one via per
		// pitch cell.
		pitch := plan.Geometry.Pitch
		for y := pitch / 2; y < outlineH; y += pitch {
			for x := pitch / 2; x < outlineW; x += pitch {
				plan.TSVs = append(plan.TSVs, TSV{Kind: Signal, Pos: geom.Point{X: x, Y: y}, Net: -1, Count: 1})
			}
		}
	case PatternIrregular:
		// Same via budget as the 16x16 regular lattice (x5 vias), but
		// scattered in random clumps: maximal structural heterogeneity.
		plan.addIrregular(160, 8, rng)
	case PatternIrregularPlusRegular:
		plan.addIrregular(80, 8, rng)
		plan.addRegular(16, 3)
	case PatternIslands:
		plan.addIslands(8, 160, rng)
	case PatternIslandsPlusRegular:
		plan.addIslands(5, 160, rng)
		plan.addRegular(16, 3)
	}
	return plan
}

// addIrregular scatters n clumps of `count` vias uniformly at random.
func (p *Plan) addIrregular(n, count int, rng *rand.Rand) {
	for i := 0; i < n; i++ {
		p.TSVs = append(p.TSVs, TSV{
			Kind:  Signal,
			Pos:   geom.Point{X: rng.Float64() * p.OutlineW, Y: rng.Float64() * p.OutlineH},
			Net:   -1,
			Count: count,
		})
	}
}

// addRegular places an n x n lattice of `count`-via groups: a homogeneous
// distribution (the paper's "regularly arranged TSVs").
func (p *Plan) addRegular(n, count int) {
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			p.TSVs = append(p.TSVs, TSV{
				Kind: Signal,
				Pos: geom.Point{
					X: (float64(i) + 0.5) / float64(n) * p.OutlineW,
					Y: (float64(j) + 0.5) / float64(n) * p.OutlineH,
				},
				Net:   -1,
				Count: count,
			})
		}
	}
}

// addIslands places nIslands dense groups of viasPerIsland vias at random
// locations.
func (p *Plan) addIslands(nIslands, viasPerIsland int, rng *rand.Rand) {
	for i := 0; i < nIslands; i++ {
		pos := geom.Point{
			X: (0.1 + 0.8*rng.Float64()) * p.OutlineW,
			Y: (0.1 + 0.8*rng.Float64()) * p.OutlineH,
		}
		p.TSVs = append(p.TSVs, TSV{Kind: Signal, Pos: pos, Net: -1, Count: viasPerIsland})
	}
}
