// Package tsv plans through-silicon vias for two-die 3D floorplans: signal
// TSVs for every cross-die net (optionally clustered into TSV islands),
// keep-out-zone accounting, the rasterized copper-fraction maps the thermal
// solver consumes, and the dummy thermal TSVs the paper's post-processing
// inserts at the most correlation-stable bins (Sec. 6.2).
package tsv

import (
	"math"
	"sort"

	"repro/internal/floorplan"
	"repro/internal/geom"
)

// Kind distinguishes the TSV roles.
type Kind int

const (
	// Signal TSVs carry a cross-die net.
	Signal Kind = iota
	// Dummy TSVs are thermally motivated only (the paper's post-processing
	// inserts them to destabilize leakage correlations).
	Dummy
)

func (k Kind) String() string {
	if k == Dummy {
		return "dummy"
	}
	return "signal"
}

// TSV is one via (or one via group placed as a unit) in an inter-die bond
// layer.
type TSV struct {
	Kind Kind
	// Pos is the via center in um, in die outline coordinates.
	Pos geom.Point
	// Net is the index of the net served (-1 for dummy TSVs).
	Net int
	// Count is the number of physical vias at this spot (islands > 1).
	Count int
	// Gap is the inter-die gap the via traverses (gap g sits between die g
	// and die g+1); 0 in two-die stacks.
	Gap int
}

// Geometry describes the physical via: the paper takes Corblivar/HotSpot
// defaults; a 5 um via with a 10 um pitch including keep-out.
type Geometry struct {
	Diameter float64 // um, copper body
	Pitch    float64 // um, center-to-center including keep-out zone
}

// DefaultGeometry returns the Corblivar-style default via.
func DefaultGeometry() Geometry {
	return Geometry{Diameter: 5, Pitch: 10}
}

// CuAreaPerVia returns the copper cross-section of one via in um^2.
func (g Geometry) CuAreaPerVia() float64 {
	r := g.Diameter / 2
	return math.Pi * r * r
}

// FootprintPerVia returns the occupied area (via + keep-out) in um^2.
func (g Geometry) FootprintPerVia() float64 { return g.Pitch * g.Pitch }

// Plan holds all TSVs of a floorplan.
type Plan struct {
	TSVs     []TSV
	Geometry Geometry
	OutlineW float64
	OutlineH float64
}

// Options controls signal-TSV planning.
type Options struct {
	Geometry Geometry
	// IslandCapacity > 1 clusters nearby cross-die nets into shared TSV
	// islands of up to that many vias; 0/1 places one TSV per net at its
	// own position.
	IslandCapacity int
	// IslandGridN partitions the die into IslandGridN x IslandGridN
	// clustering buckets when islands are enabled. Default 8.
	IslandGridN int
}

func (o *Options) defaults() {
	if o.Geometry == (Geometry{}) {
		o.Geometry = DefaultGeometry()
	}
	if o.IslandGridN == 0 {
		o.IslandGridN = 8
	}
}

// PlanSignals places signal TSVs for every cross-die net of the layout, at
// the net's pin bounding-box center (the wirelength-optimal stitch point),
// optionally clustered into islands. A net spanning dies [lo, hi] receives
// one via per traversed gap (hi - lo vias), so taller stacks are planned
// correctly.
func PlanSignals(l *floorplan.Layout, opts Options) *Plan {
	opts.defaults()
	p := &Plan{Geometry: opts.Geometry, OutlineW: l.OutlineW, OutlineH: l.OutlineH}
	cross := l.CrossDieNets()
	if opts.IslandCapacity > 1 {
		p.planIslands(l, cross, opts)
		return p
	}
	for _, ni := range cross {
		lo, hi := netDieSpan(l, ni)
		for g := lo; g < hi; g++ {
			p.TSVs = append(p.TSVs, TSV{
				Kind:  Signal,
				Pos:   netCenter(l, ni),
				Net:   ni,
				Count: 1,
				Gap:   g,
			})
		}
	}
	return p
}

// netDieSpan returns the lowest and highest die touched by net ni's module
// pins.
func netDieSpan(l *floorplan.Layout, ni int) (lo, hi int) {
	lo, hi = l.Dies, -1
	for _, mi := range l.Design.Nets[ni].Modules {
		d := l.DieOf[mi]
		if d < lo {
			lo = d
		}
		if d > hi {
			hi = d
		}
	}
	return lo, hi
}

// planIslands buckets cross-die nets into a coarse grid and merges each
// bucket's nets into islands of up to IslandCapacity vias placed at the
// bucket's net centroid.
func (p *Plan) planIslands(l *floorplan.Layout, cross []int, opts Options) {
	ng := opts.IslandGridN
	type bucket struct {
		nets []int
		cx   float64
		cy   float64
	}
	buckets := make(map[int]*bucket)
	for _, ni := range cross {
		c := netCenter(l, ni)
		bi := clampI(int(c.X/l.OutlineW*float64(ng)), 0, ng-1)
		bj := clampI(int(c.Y/l.OutlineH*float64(ng)), 0, ng-1)
		key := bj*ng + bi
		b := buckets[key]
		if b == nil {
			b = &bucket{}
			buckets[key] = b
		}
		b.nets = append(b.nets, ni)
		b.cx += c.X
		b.cy += c.Y
	}
	keys := make([]int, 0, len(buckets))
	for k := range buckets {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		b := buckets[k]
		center := geom.Point{X: b.cx / float64(len(b.nets)), Y: b.cy / float64(len(b.nets))}
		for start := 0; start < len(b.nets); start += opts.IslandCapacity {
			end := start + opts.IslandCapacity
			if end > len(b.nets) {
				end = len(b.nets)
			}
			// The island's vias serve nets[start:end]; record one TSV entry
			// per net and traversed gap so bookkeeping stays exact, sharing
			// the position.
			for _, ni := range b.nets[start:end] {
				lo, hi := netDieSpan(l, ni)
				for g := lo; g < hi; g++ {
					p.TSVs = append(p.TSVs, TSV{Kind: Signal, Pos: center, Net: ni, Count: 1, Gap: g})
				}
			}
		}
	}
}

func netCenter(l *floorplan.Layout, ni int) geom.Point {
	n := l.Design.Nets[ni]
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, mi := range n.Modules {
		c := l.Rects[mi].Center()
		minX = math.Min(minX, c.X)
		minY = math.Min(minY, c.Y)
		maxX = math.Max(maxX, c.X)
		maxY = math.Max(maxY, c.Y)
	}
	return geom.Point{X: clampF((minX+maxX)/2, 0, l.OutlineW), Y: clampF((minY+maxY)/2, 0, l.OutlineH)}
}

// AddDummy appends a dummy thermal TSV group (count vias) at the given bin
// center, in gap 0 (the only gap of a two-die stack).
func (p *Plan) AddDummy(pos geom.Point, count int) {
	p.AddDummyGap(0, pos, count)
}

// AddDummyGap appends a dummy thermal TSV group in a specific inter-die gap.
func (p *Plan) AddDummyGap(gap int, pos geom.Point, count int) {
	p.TSVs = append(p.TSVs, TSV{Kind: Dummy, Pos: pos, Net: -1, Count: count, Gap: gap})
}

// SignalCount returns the number of signal vias.
func (p *Plan) SignalCount() int {
	n := 0
	for _, t := range p.TSVs {
		if t.Kind == Signal {
			n += t.Count
		}
	}
	return n
}

// DummyCount returns the number of dummy vias.
func (p *Plan) DummyCount() int {
	n := 0
	for _, t := range p.TSVs {
		if t.Kind == Dummy {
			n += t.Count
		}
	}
	return n
}

// CuFractionMap rasterizes the whole plan (all gaps merged) onto an
// nx x ny grid of per-cell copper area fractions in [0, 1] — the thermal
// solver's TSV input for two-die stacks. Each via contributes its copper
// cross-section to the cell containing it.
func (p *Plan) CuFractionMap(nx, ny int) *geom.Grid {
	return p.cuMap(nx, ny, -1)
}

// CuFractionMapGap rasterizes only the vias of one inter-die gap; pair with
// thermal.Stack.SetTSVGapMap for stacks with more than two dies.
func (p *Plan) CuFractionMapGap(gap, nx, ny int) *geom.Grid {
	return p.cuMap(nx, ny, gap)
}

func (p *Plan) cuMap(nx, ny, gap int) *geom.Grid {
	g := geom.NewGrid(nx, ny)
	cellArea := (p.OutlineW / float64(nx)) * (p.OutlineH / float64(ny))
	cu := p.Geometry.CuAreaPerVia()
	for _, t := range p.TSVs {
		if gap >= 0 && t.Gap != gap {
			continue
		}
		i := clampI(int(t.Pos.X/p.OutlineW*float64(nx)), 0, nx-1)
		j := clampI(int(t.Pos.Y/p.OutlineH*float64(ny)), 0, ny-1)
		g.Add(i, j, cu*float64(t.Count)/cellArea)
	}
	// Fractions cannot exceed full coverage.
	for i, v := range g.Data {
		if v > 1 {
			g.Data[i] = 1
		}
	}
	return g
}

// DensityMap rasterizes via counts (not copper fractions) for reporting.
func (p *Plan) DensityMap(nx, ny int) *geom.Grid {
	g := geom.NewGrid(nx, ny)
	for _, t := range p.TSVs {
		i := clampI(int(t.Pos.X/p.OutlineW*float64(nx)), 0, nx-1)
		j := clampI(int(t.Pos.Y/p.OutlineH*float64(ny)), 0, ny-1)
		g.Add(i, j, float64(t.Count))
	}
	return g
}

// OccupiedArea returns the total bond-layer area consumed (vias plus
// keep-out) in um^2.
func (p *Plan) OccupiedArea() float64 {
	n := 0
	for _, t := range p.TSVs {
		n += t.Count
	}
	return float64(n) * p.Geometry.FootprintPerVia()
}

// Clone returns a deep copy.
func (p *Plan) Clone() *Plan {
	c := *p
	c.TSVs = append([]TSV(nil), p.TSVs...)
	return &c
}

func clampI(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
