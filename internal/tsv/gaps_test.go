package tsv

import (
	"math/rand"
	"testing"

	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/netlist"
)

// threeDieDesign builds a chain spanning all three dies under round-robin
// assignment (a on die 0, b on die 1, c on die 2).
func threeDieDesign() *netlist.Design {
	return &netlist.Design{
		Name: "3d",
		Modules: []*netlist.Module{
			{Name: "a", Kind: netlist.Hard, W: 20, H: 20, Power: 1},
			{Name: "b", Kind: netlist.Hard, W: 20, H: 20, Power: 1},
			{Name: "c", Kind: netlist.Hard, W: 20, H: 20, Power: 1},
		},
		Nets: []*netlist.Net{
			{Name: "ac", Modules: []int{0, 2}}, // spans dies 0..2: two gaps
			{Name: "ab", Modules: []int{0, 1}}, // spans dies 0..1: one gap
		},
		OutlineW: 100, OutlineH: 100, Dies: 3,
	}
}

func TestPlanSignalsPerGap(t *testing.T) {
	l := floorplan.New(threeDieDesign()).Pack()
	p := PlanSignals(l, Options{})
	// Net ac needs vias in gaps 0 and 1; net ab only in gap 0.
	byGapNet := map[[2]int]int{}
	for _, v := range p.TSVs {
		byGapNet[[2]int{v.Gap, v.Net}]++
	}
	if byGapNet[[2]int{0, 0}] != 1 || byGapNet[[2]int{1, 0}] != 1 {
		t.Fatalf("net ac should hold one via per gap: %v", byGapNet)
	}
	if byGapNet[[2]int{0, 1}] != 1 || byGapNet[[2]int{1, 1}] != 0 {
		t.Fatalf("net ab should only cross gap 0: %v", byGapNet)
	}
	if p.SignalCount() != 3 {
		t.Fatalf("total signal vias %d, want 3", p.SignalCount())
	}
}

func TestCuFractionMapGapFilters(t *testing.T) {
	l := floorplan.New(threeDieDesign()).Pack()
	p := PlanSignals(l, Options{})
	g0 := p.CuFractionMapGap(0, 10, 10)
	g1 := p.CuFractionMapGap(1, 10, 10)
	all := p.CuFractionMap(10, 10)
	// Gap 0 carries two vias, gap 1 one via; merged map carries all three.
	if g0.Sum() <= g1.Sum() {
		t.Fatalf("gap 0 should carry more copper: %v vs %v", g0.Sum(), g1.Sum())
	}
	want := g0.Sum() + g1.Sum()
	if diff := all.Sum() - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("merged map %v != sum of gaps %v", all.Sum(), want)
	}
}

func TestAddDummyGapBookkeeping(t *testing.T) {
	p := &Plan{Geometry: DefaultGeometry(), OutlineW: 100, OutlineH: 100}
	p.AddDummyGap(1, geom.Point{X: 50, Y: 50}, 3)
	p.AddDummy(geom.Point{X: 20, Y: 20}, 2) // defaults to gap 0
	if p.DummyCount() != 5 {
		t.Fatalf("dummy count %d", p.DummyCount())
	}
	if p.CuFractionMapGap(1, 4, 4).Sum() <= 0 {
		t.Fatal("gap 1 map empty")
	}
	if p.CuFractionMapGap(0, 4, 4).Sum() <= 0 {
		t.Fatal("gap 0 map empty")
	}
}

func TestIslandsSpanGaps(t *testing.T) {
	d := threeDieDesign()
	l := floorplan.New(d).Pack()
	p := PlanSignals(l, Options{IslandCapacity: 4, IslandGridN: 2})
	gaps := map[int]bool{}
	for _, v := range p.TSVs {
		gaps[v.Gap] = true
	}
	if !gaps[0] || !gaps[1] {
		t.Fatalf("island planning lost a gap: %v", gaps)
	}
	if p.SignalCount() != 3 {
		t.Fatalf("island planning changed via count: %d", p.SignalCount())
	}
}

func TestPatternPlansStayInGapZero(t *testing.T) {
	// Synthetic exploration patterns model a two-die stack: all vias in
	// gap 0.
	rng := rand.New(rand.NewSource(1))
	for _, pat := range AllPatterns() {
		plan := GeneratePattern(pat, 1000, 1000, rng)
		for _, v := range plan.TSVs {
			if v.Gap != 0 {
				t.Fatalf("%v: via in gap %d", pat, v.Gap)
			}
		}
	}
}
