package tsv

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bench"
	"repro/internal/floorplan"
	"repro/internal/geom"
)

func layoutN100(t *testing.T) *floorplan.Layout {
	t.Helper()
	des := bench.MustGenerate("n100")
	return floorplan.NewRandom(des, rand.New(rand.NewSource(1))).Pack()
}

func TestPlanSignalsOnePerCrossDieNet(t *testing.T) {
	l := layoutN100(t)
	p := PlanSignals(l, Options{})
	if got, want := p.SignalCount(), len(l.CrossDieNets()); got != want {
		t.Fatalf("signal TSVs %d, want %d", got, want)
	}
	if p.DummyCount() != 0 {
		t.Fatal("fresh plan must have no dummies")
	}
}

func TestSignalTSVsInsideOutline(t *testing.T) {
	l := layoutN100(t)
	p := PlanSignals(l, Options{})
	for _, v := range p.TSVs {
		if v.Pos.X < 0 || v.Pos.X > l.OutlineW || v.Pos.Y < 0 || v.Pos.Y > l.OutlineH {
			t.Fatalf("TSV at %+v outside outline", v.Pos)
		}
	}
}

func TestIslandsClusterPositions(t *testing.T) {
	l := layoutN100(t)
	single := PlanSignals(l, Options{})
	island := PlanSignals(l, Options{IslandCapacity: 16, IslandGridN: 4})
	if island.SignalCount() != single.SignalCount() {
		t.Fatalf("island planning changed via count: %d vs %d",
			island.SignalCount(), single.SignalCount())
	}
	distinct := func(p *Plan) int {
		seen := map[geom.Point]bool{}
		for _, v := range p.TSVs {
			seen[v.Pos] = true
		}
		return len(seen)
	}
	if distinct(island) >= distinct(single) {
		t.Fatalf("islands should share positions: %d vs %d", distinct(island), distinct(single))
	}
}

func TestAddDummy(t *testing.T) {
	l := layoutN100(t)
	p := PlanSignals(l, Options{})
	p.AddDummy(geom.Point{X: 100, Y: 100}, 4)
	if p.DummyCount() != 4 {
		t.Fatalf("dummy count %d", p.DummyCount())
	}
}

func TestCuFractionMapBounds(t *testing.T) {
	l := layoutN100(t)
	p := PlanSignals(l, Options{})
	g := p.CuFractionMap(64, 64)
	for _, v := range g.Data {
		if v < 0 || v > 1 {
			t.Fatalf("fraction %v out of [0,1]", v)
		}
	}
	if g.Sum() <= 0 {
		t.Fatal("map must carry copper")
	}
}

func TestCuFractionScalesWithCount(t *testing.T) {
	p := &Plan{Geometry: DefaultGeometry(), OutlineW: 1000, OutlineH: 1000}
	p.AddDummy(geom.Point{X: 500, Y: 500}, 1)
	g1 := p.CuFractionMap(10, 10)
	p2 := &Plan{Geometry: DefaultGeometry(), OutlineW: 1000, OutlineH: 1000}
	p2.AddDummy(geom.Point{X: 500, Y: 500}, 3)
	g3 := p2.CuFractionMap(10, 10)
	if math.Abs(g3.Sum()-3*g1.Sum()) > 1e-12 {
		t.Fatalf("copper should scale with via count: %v vs 3*%v", g3.Sum(), g1.Sum())
	}
}

func TestDensityMapCountsVias(t *testing.T) {
	p := &Plan{Geometry: DefaultGeometry(), OutlineW: 100, OutlineH: 100}
	p.AddDummy(geom.Point{X: 10, Y: 10}, 2)
	p.AddDummy(geom.Point{X: 90, Y: 90}, 3)
	g := p.DensityMap(10, 10)
	if g.Sum() != 5 {
		t.Fatalf("density sum %v", g.Sum())
	}
}

func TestOccupiedArea(t *testing.T) {
	p := &Plan{Geometry: DefaultGeometry(), OutlineW: 100, OutlineH: 100}
	p.AddDummy(geom.Point{X: 10, Y: 10}, 4)
	want := 4 * p.Geometry.FootprintPerVia()
	if p.OccupiedArea() != want {
		t.Fatalf("area %v want %v", p.OccupiedArea(), want)
	}
}

func TestGeometryAreas(t *testing.T) {
	g := DefaultGeometry()
	if g.CuAreaPerVia() <= 0 || g.FootprintPerVia() <= 0 {
		t.Fatal("areas must be positive")
	}
	if g.CuAreaPerVia() >= g.FootprintPerVia() {
		t.Fatal("copper body must be smaller than footprint with keep-out")
	}
}

func TestCloneIndependent(t *testing.T) {
	p := &Plan{Geometry: DefaultGeometry(), OutlineW: 100, OutlineH: 100}
	p.AddDummy(geom.Point{X: 1, Y: 1}, 1)
	c := p.Clone()
	c.AddDummy(geom.Point{X: 2, Y: 2}, 1)
	if len(p.TSVs) != 1 {
		t.Fatal("clone aliases source")
	}
}

func TestPatternsGenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, pat := range AllPatterns() {
		plan := GeneratePattern(pat, 4000, 4000, rng)
		if pat == PatternNone {
			if len(plan.TSVs) != 0 {
				t.Fatalf("%v: expected empty plan", pat)
			}
			continue
		}
		if len(plan.TSVs) == 0 {
			t.Fatalf("%v: expected TSVs", pat)
		}
		for _, v := range plan.TSVs {
			if v.Pos.X < 0 || v.Pos.X > 4000 || v.Pos.Y < 0 || v.Pos.Y > 4000 {
				t.Fatalf("%v: via at %+v outside die", pat, v.Pos)
			}
		}
	}
}

func TestMaxDensityCoversDie(t *testing.T) {
	plan := GeneratePattern(PatternMaxDensity, 1000, 1000, rand.New(rand.NewSource(3)))
	// 1000/10 pitch = 100 per axis.
	if got := plan.SignalCount(); got != 100*100 {
		t.Fatalf("max density count %d", got)
	}
	g := plan.CuFractionMap(10, 10)
	// Every cell must carry the same copper fraction.
	first := g.At(0, 0)
	for _, v := range g.Data {
		if math.Abs(v-first) > 1e-9 {
			t.Fatalf("max density not uniform: %v vs %v", v, first)
		}
	}
}

func TestIslandsAreDense(t *testing.T) {
	plan := GeneratePattern(PatternIslands, 4000, 4000, rand.New(rand.NewSource(4)))
	g := plan.DensityMap(16, 16)
	// Islands: few cells hold many vias.
	nonzero := 0
	for _, v := range g.Data {
		if v > 0 {
			nonzero++
		}
	}
	if nonzero > 16 {
		t.Fatalf("islands spread over %d cells; expected concentration", nonzero)
	}
}

func TestRegularLatticeDeterministic(t *testing.T) {
	a := GeneratePattern(PatternIrregularPlusRegular, 4000, 4000, rand.New(rand.NewSource(5)))
	b := GeneratePattern(PatternIrregularPlusRegular, 4000, 4000, rand.New(rand.NewSource(5)))
	if len(a.TSVs) != len(b.TSVs) {
		t.Fatal("same seed must reproduce the same plan")
	}
	for i := range a.TSVs {
		if a.TSVs[i] != b.TSVs[i] {
			t.Fatal("same seed must reproduce the same plan")
		}
	}
}

func TestPatternStrings(t *testing.T) {
	for _, p := range AllPatterns() {
		if p.String() == "pattern?" {
			t.Fatalf("pattern %d missing name", p)
		}
	}
	if Signal.String() != "signal" || Dummy.String() != "dummy" {
		t.Fatal("kind strings")
	}
}
