package volt

import (
	"math"
	"testing"

	"repro/internal/floorplan"
	"repro/internal/netlist"
	"repro/internal/timing"
)

// pairDesign returns two adjacent modules with controllable slack.
func pairDesign(delayA, delayB float64) *netlist.Design {
	return &netlist.Design{
		Name: "pair",
		Modules: []*netlist.Module{
			{Name: "a", Kind: netlist.Hard, W: 50, H: 50, Power: 1, IntrinsicDelay: delayA},
			{Name: "b", Kind: netlist.Hard, W: 50, H: 50, Power: 1, IntrinsicDelay: delayB},
		},
		Nets:     []*netlist.Net{{Name: "n", Modules: []int{0, 1}}},
		OutlineW: 100, OutlineH: 100, Dies: 1,
	}
}

func TestTightSlackForcesReference(t *testing.T) {
	d := pairDesign(1.0, 1.0)
	l := floorplan.New(d).Pack()
	ref := timing.Analyze(l, nil, timing.DefaultParams())
	// TargetFactor 1.0: zero slack; 0.8 V (1.56x) infeasible everywhere.
	asg := Assign(l, ref, Config{Mode: PowerAware, TargetFactor: 1.0000001})
	for m := range d.Modules {
		if asg.LevelOf[m].V == 0.8 {
			t.Fatalf("module %d assigned 0.8V without slack", m)
		}
	}
}

func TestGenerousSlackAllowsLowVoltage(t *testing.T) {
	d := pairDesign(1.0, 1.0)
	l := floorplan.New(d).Pack()
	ref := timing.Analyze(l, nil, timing.DefaultParams())
	// 2x slack: 1.56x delay fits easily, power-aware must use it.
	asg := Assign(l, ref, Config{Mode: PowerAware, TargetFactor: 2.0})
	for m := range d.Modules {
		if asg.LevelOf[m].V != 0.8 {
			t.Fatalf("module %d should run at 0.8V with 2x slack, got %v", m, asg.LevelOf[m].V)
		}
	}
	wantPower := 2 * 0.817
	if math.Abs(asg.TotalPower-wantPower) > 1e-9 {
		t.Fatalf("power %v want %v", asg.TotalPower, wantPower)
	}
}

func TestAsymmetricSlack(t *testing.T) {
	// Module a dominates the hop; b is fast: slowing b (0.1 -> 0.156 ns)
	// fits a 10% slack target, slowing a (1.0 -> 1.56 ns) blows the hop.
	// MaxVolumeSize 1 keeps the two adjacent modules in separate volumes so
	// the per-module feasibility is observable.
	d := pairDesign(1.0, 0.1)
	l := floorplan.New(d).Pack()
	ref := timing.Analyze(l, nil, timing.DefaultParams())
	asg := Assign(l, ref, Config{Mode: PowerAware, TargetFactor: 1.10, MaxVolumeSize: 1})
	if asg.LevelOf[0].V == 0.8 {
		t.Fatal("critical module a must not drop to 0.8V at 10% slack")
	}
	if asg.LevelOf[1].V != 0.8 {
		t.Fatalf("slack-rich module b should drop to 0.8V, got %v", asg.LevelOf[1].V)
	}
}

func TestRepairRestoresTiming(t *testing.T) {
	// Force an over-aggressive assignment by hand, then Repair.
	d := pairDesign(1.0, 1.0)
	l := floorplan.New(d).Pack()
	p := timing.DefaultParams()
	ref := timing.Analyze(l, nil, p)
	cfg := Config{Mode: PowerAware, TargetFactor: 1.05}
	asg := Assign(l, ref, cfg)
	// Sabotage: drop everything to 0.8V regardless of feasibility.
	low := Levels90nm()[0]
	for vi := range asg.Volumes {
		asg.setVolumeLevel(vi, low, l)
	}
	final := Repair(l, asg, p, cfg)
	if final.Critical > asg.Target+1e-9 {
		// Acceptable only if nothing sub-reference remains.
		for _, v := range asg.Volumes {
			if v.Level.DelayScale > 1 {
				t.Fatalf("repair left %v while failing timing", v.Level.V)
			}
		}
	}
}

func TestLevelsHelpers(t *testing.T) {
	levels := Levels90nm()
	const mask = 0b101 // 0.8 V and 1.2 V
	feas := feasibleLevels(mask, levels)
	if len(feas) != 2 || feas[0].V != 0.8 || feas[1].V != 1.2 {
		t.Fatalf("feasibleLevels: %+v", feas)
	}
	lv := lowestLevel(mask, levels)
	if lv == nil || lv.V != 0.8 {
		t.Fatalf("lowestLevel: %+v", lv)
	}
	if refLevel(levels).V != 1.0 {
		t.Fatal("refLevel")
	}
	if lowestLevel(0, levels) != nil {
		t.Fatal("empty mask must yield nil")
	}
}

func TestStatHelpers(t *testing.T) {
	dens := []float64{1, 3}
	if meanDensity([]int{0, 1}, dens) != 2 {
		t.Fatal("mean")
	}
	if stdDensity([]int{0, 1}, dens) != 1 {
		t.Fatal("std")
	}
	if stdDensity([]int{0}, dens) != 0 {
		t.Fatal("singleton std must be 0")
	}
	if meanOf(nil) != 0 || stdOf(nil) != 0 {
		t.Fatal("empty stats")
	}
}

func TestLowestPowerScaleTable(t *testing.T) {
	// The assigner's lowPS table must agree with lowestLevel for every mask
	// value: it replaces the per-candidate scan on the growth hot path.
	levels := Levels90nm()
	a := NewAssigner(Config{})
	for mask := uint32(0); mask < 1<<len(levels); mask++ {
		want := 1.0
		if lv := lowestLevel(mask, levels); lv != nil {
			want = lv.PowerScale
		}
		if got := a.lowPS[mask]; got != want {
			t.Fatalf("lowPS[%03b] = %v, want %v", mask, got, want)
		}
	}
	// The empty mask yields a zero saving through the power formula.
	if s := 2.0 * (1 - a.lowPS[0]); s != 0 {
		t.Fatalf("empty-mask saving = %v, want 0", s)
	}
	if want := 2.0 * (1 - 0.817); math.Abs(2.0*(1-a.lowPS[0b011])-want) > 1e-12 {
		t.Fatalf("masked saving wrong: %v", 2.0*(1-a.lowPS[0b011]))
	}
}
