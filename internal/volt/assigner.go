package volt

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/floorplan"
	"repro/internal/timing"
)

// Assigner is a reusable voltage-volume assignment engine. It produces the
// exact partition Assign produces, but keeps the intermediate state alive
// between calls — per-module feasible-level masks, the adjacency lists, the
// per-root candidate trees, and each tree's dependency footprint — so a
// Refresh after a small layout change regrows only the candidate trees whose
// inputs actually changed. This is the voltage half of the annealing loop's
// incremental evaluator (internal/core): the paper integrates voltage-volume
// formation into the floorplanning loop (Sec. 6.1), and re-growing one BFS
// tree per module on every stride refresh was the loop's largest shared cost
// once the geometric caches landed.
//
// What is cacheable and why:
//
//   - module power densities and powers never change during a run (soft
//     resizes preserve area; netlist modules are immutable geometry-wise), so
//     the density inputs of both growth objectives are computed once;
//   - a candidate tree grown from root r examines only its members' adjacency
//     lists and the feasible masks of every module that ever entered its
//     frontier. The tree records that footprint (deps); if no dep's mask or
//     adjacency changed, a regrow would reproduce the tree bit for bit, so
//     the cached members/levels/score are reused as-is;
//   - the greedy partition and the leftover re-growth are cheap relative to
//     the n candidate grows and depend on every candidate, so they re-run on
//     every Refresh from the (mostly cached) candidates.
//
// An Assigner is NOT safe for concurrent use, and the *Assignment returned by
// Assign/Refresh is owned by the engine until the next call — callers must
// not mutate it (Repair mutates; run Repair only on assignments from the
// package-level Assign).
type Assigner struct {
	cfg   Config
	n     int
	valid bool

	// Cached inputs of candidate growth. Feasible-level sets are bitmasks
	// (bit k = cfg.Levels[k] feasible): the growth frontier screens
	// thousands of (intersection, candidate-mask) pairs per refresh, and a
	// single AND plus the precomputed lowPS table replaces the historical
	// per-level scans exactly.
	adj        [][]int
	feasible   []uint32  // per-module feasible-level masks
	lowPS      []float64 // lowPS[mask] = lowest PowerScale among mask's levels (1 for empty)
	densities  []float64 // constant per design
	power      []float64 // constant per design
	globalMean float64
	target     float64

	// Adjacency sweeps double-buffer their storage: the refresh diff needs
	// the previous rows (adj, aliasing adjScratch[adjBuf]) while the new
	// sweep fills the other scratch. With the churn-tolerant index enabled
	// (Config.FullAdjacency unset), index owns the rows instead: Refresh
	// patches only the rows the dirty modules touched and reports exactly
	// the changed ones, replacing both the full sweep and the all-rows diff.
	adjScratch [2]floorplan.AdjacencyScratch
	adjBuf     int
	index      *floorplan.AdjacencyIndex

	cands []candTree

	// Scratch, stamped so clears are O(changed) not O(n).
	inVol      []int
	inFrontier []int
	stamp      int
	frontier   []int
	memberBuf  []int
	maskDirty  []bool
	adjDirty   []bool
	order      []int
	assigned   []bool

	last  *Assignment
	stats AssignerStats
}

// candTree is one cached BFS candidate rooted at a module.
type candTree struct {
	modules []int
	levels  uint32
	score   float64
	// deps is the tree's dependency footprint: the root, every member, and
	// every module that ever entered the growth frontier (their masks were
	// screened and their densities read; members' adjacency lists steered
	// the growth). If none of these is dirty, a regrow is bit-identical.
	deps []int
}

// AssignerStats counts the engine's lifetime work; the annealing loop
// surfaces them as Result.Stats counters.
type AssignerStats struct {
	// Refreshes counts Assign/Refresh calls; FullRebuilds of those rebuilt
	// every cache (first use, invalidation, or a design-size change).
	Refreshes    int
	FullRebuilds int
	// CandidatesReused/CandidatesRegrown count cached per-root candidate
	// trees served as-is vs regrown because a dependency changed.
	CandidatesReused  int
	CandidatesRegrown int
	// AdjFullSweeps counts full adjacency re-sweeps: rebuilds, every
	// refresh under Config.FullAdjacency, and index updates that fell back
	// to the bulk sweep-plus-diff path at high churn. AdjIncrementalUpdates
	// counts refreshes served by the index's per-module probes. The index
	// paths together reported AdjRowsChanged changed neighbour rows.
	// AdjBulkFallbacks counts only the high-churn index fallbacks (a subset
	// of AdjFullSweeps) — the gate trips the packer diff contract is meant
	// to avoid.
	AdjFullSweeps         int
	AdjIncrementalUpdates int
	AdjRowsChanged        int
	AdjBulkFallbacks      int
}

// NewAssigner returns an empty engine; the first Assign or Refresh builds
// every cache.
func NewAssigner(cfg Config) *Assigner {
	cfg.defaults()
	if len(cfg.Levels) > 16 {
		// The feasible sets are uint32 bitmasks with a 2^levels side table;
		// realistic level menus are a handful of options (the paper uses 3).
		panic(fmt.Sprintf("volt: %d voltage levels exceed the 16 the assigner supports", len(cfg.Levels)))
	}
	a := &Assigner{cfg: cfg}
	// lowPS[mask] mirrors the historical per-candidate scan exactly: levels
	// in ascending index order, strictly-lower PowerScale wins. The empty
	// mask maps to 1.0 so the power-saving formula yields the historical 0.
	a.lowPS = make([]float64, 1<<len(cfg.Levels))
	for mask := range a.lowPS {
		ps := 1.0
		found := false
		for k, lv := range cfg.Levels {
			if mask&(1<<k) == 0 {
				continue
			}
			if !found || lv.PowerScale < ps {
				ps = lv.PowerScale
				found = true
			}
		}
		a.lowPS[mask] = ps
	}
	return a
}

// Stats returns the lifetime work counters.
func (a *Assigner) Stats() AssignerStats { return a.stats }

// Invalidate drops the caches; the next Refresh rebuilds from scratch. Call
// it when the layout changed in ways the caller cannot itemize (e.g. a
// wholesale rebuild of the floorplan).
func (a *Assigner) Invalidate() {
	a.valid = false
	a.last = nil
	if a.index != nil {
		a.index.Invalidate()
	}
}

// CheckAdjacency compares the engine's cached adjacency rows against a fresh
// sweep of l and returns a description of the first divergence, or nil. The
// flow's cross-check path uses it to pin the adjacency index; it forfeits
// the index's speedup, so it is a debug aid only. A nil result on an engine
// that has not been built yet is trivially nil.
func (a *Assigner) CheckAdjacency(l *floorplan.Layout) error {
	if !a.valid || a.adj == nil {
		return nil
	}
	if a.index != nil && a.index.Valid() {
		return a.index.CheckAgainst(l)
	}
	// FullAdjacency mode: a.adj aliases the double-buffered sweep scratch,
	// so compare against a sweep into fresh storage.
	want := l.AdjacentModulesInto(&floorplan.AdjacencyScratch{})
	if len(want) != len(a.adj) {
		return fmt.Errorf("volt: cached adjacency covers %d modules, layout has %d", len(a.adj), len(want))
	}
	for m := range want {
		if !intsEqual(a.adj[m], want[m]) {
			return fmt.Errorf("volt: module %d cached adjacency %v != fresh sweep %v", m, a.adj[m], want[m])
		}
	}
	return nil
}

// Assign computes the full assignment, replacing every cache. It is
// value-identical to the package-level Assign on the same inputs.
func (a *Assigner) Assign(l *floorplan.Layout, ref *timing.Analysis) *Assignment {
	a.stats.Refreshes++
	return a.rebuild(l, ref)
}

// Refresh recomputes the assignment after a layout/timing change, reusing
// every candidate tree whose inputs did not change. dirtyMods must list
// every module whose placed rect or die assignment differs from the layout
// seen by the previous Assign/Refresh — a superset is safe (it only costs an
// adjacency re-sweep), an incomplete set silently corrupts the caches.
// Timing changes need no itemization: the masks are re-derived from ref and
// diffed here. The result is value-identical to a fresh Assign on (l, ref).
func (a *Assigner) Refresh(l *floorplan.Layout, ref *timing.Analysis, dirtyMods []int) *Assignment {
	a.stats.Refreshes++
	n := len(l.Design.Modules)
	if !a.valid || n != a.n {
		return a.rebuild(l, ref)
	}

	a.target = ref.Critical * a.cfg.TargetFactor
	for i := range a.maskDirty {
		a.maskDirty[i] = false
		a.adjDirty[i] = false
	}
	anyDirty := false
	// Masks absorb every timing change, including a moved target: diffing
	// them is O(n·levels), far below one candidate grow.
	for m := 0; m < n; m++ {
		if a.refreshMask(m, ref) {
			a.maskDirty[m] = true
			anyDirty = true
		}
	}
	// Adjacency depends only on placement, so it is left untouched when
	// nothing moved. A moved module may keep its adjacency (pure slide):
	// both paths keep such moves from dirtying anything — the index by
	// reporting only rows whose content changed, the sweep via the
	// per-module diff.
	if len(dirtyMods) > 0 {
		if a.index != nil {
			changed, bulk := a.index.Update(l, dirtyMods)
			for _, m := range changed {
				a.adjDirty[m] = true
				anyDirty = true
				a.stats.AdjRowsChanged++
			}
			a.adj = a.index.Rows()
			if bulk {
				// The index fell back to its sweep-plus-diff path: count it
				// as a full sweep so the telemetry separates the regimes.
				a.stats.AdjFullSweeps++
				a.stats.AdjBulkFallbacks++
			} else {
				a.stats.AdjIncrementalUpdates++
			}
		} else {
			adj2 := a.sweepAdjacency(l)
			for m := range adj2 {
				if !intsEqual(adj2[m], a.adj[m]) {
					a.adjDirty[m] = true
					anyDirty = true
				}
			}
			a.adj = adj2
			a.stats.AdjFullSweeps++
		}
	}
	if !anyDirty && a.last != nil {
		// The assignment is a pure function of (adjacency, masks, constant
		// densities/powers, config); none of it changed.
		a.stats.CandidatesReused += n
		a.last.Target = a.target
		return a.last
	}

	// A tree dereferences adjacency lists only for its members (to push
	// their neighbours); frontier entrants contribute just their masks and
	// (constant) densities. Testing the two dirt kinds against the exact
	// slices they can influence keeps suffix-repack churn — which moves many
	// non-member neighbours — from regrowing trees it cannot have changed.
	for root := 0; root < n; root++ {
		c := &a.cands[root]
		regrow := false
		for _, m := range c.modules {
			if a.adjDirty[m] {
				regrow = true
				break
			}
		}
		if !regrow {
			for _, d := range c.deps {
				if a.maskDirty[d] {
					regrow = true
					break
				}
			}
		}
		if regrow {
			a.growCandidate(root)
			a.stats.CandidatesRegrown++
		} else {
			a.stats.CandidatesReused++
		}
	}
	a.last = a.partition(l)
	return a.last
}

// rebuild sizes and fills every cache from scratch.
func (a *Assigner) rebuild(l *floorplan.Layout, ref *timing.Analysis) *Assignment {
	n := len(l.Design.Modules)
	a.stats.FullRebuilds++
	a.stats.CandidatesRegrown += n
	if n != a.n || a.feasible == nil {
		a.n = n
		a.feasible = make([]uint32, n)
		a.densities = make([]float64, n)
		a.power = make([]float64, n)
		a.cands = make([]candTree, n)
		a.inVol = make([]int, n)
		a.inFrontier = make([]int, n)
		a.maskDirty = make([]bool, n)
		a.adjDirty = make([]bool, n)
		a.assigned = make([]bool, n)
		a.stamp = 0
	}
	a.target = ref.Critical * a.cfg.TargetFactor
	for m, mod := range l.Design.Modules {
		a.densities[m] = mod.PowerDensity()
		a.power[m] = mod.Power
	}
	a.globalMean = meanOf(a.densities)
	for m := 0; m < n; m++ {
		a.refreshMask(m, ref)
	}
	a.stats.AdjFullSweeps++
	if a.cfg.FullAdjacency {
		a.adj = a.sweepAdjacency(l)
	} else {
		if a.index == nil {
			a.index = floorplan.NewAdjacencyIndex()
		}
		a.index.Rebuild(l)
		a.adj = a.index.Rows()
	}
	for root := 0; root < n; root++ {
		a.growCandidate(root)
	}
	a.valid = true
	a.last = a.partition(l)
	return a.last
}

// sweepAdjacency runs the layout's adjacency sweep into the scratch buffer
// NOT currently backing a.adj, so the caller can diff new rows against old.
func (a *Assigner) sweepAdjacency(l *floorplan.Layout) [][]int {
	a.adjBuf = 1 - a.adjBuf
	return l.AdjacentModulesInto(&a.adjScratch[a.adjBuf])
}

// refreshMask re-derives module m's feasible-level mask from the reference
// STA and reports whether it changed. Level k is feasible if slowing (or
// speeding) only this module keeps its worst hop within the target; the
// 1.0 V reference is always feasible by construction.
func (a *Assigner) refreshMask(m int, ref *timing.Analysis) bool {
	base := math.Max(ref.Arrive[m], ref.Depart[m])
	var mask uint32
	for k, lv := range a.cfg.Levels {
		if base+ref.ModuleDelay[m]*lv.DelayScale <= a.target || lv.DelayScale == 1.0 {
			mask |= 1 << k
		}
	}
	if mask == a.feasible[m] {
		return false
	}
	a.feasible[m] = mask
	return true
}

// growCandidate regrows root's candidate tree into its cache slot,
// re-recording the dependency footprint.
func (a *Assigner) growCandidate(root int) {
	c := &a.cands[root]
	c.deps = c.deps[:0]
	members, inter := a.grow(root, nil, &c.deps)
	c.modules = append(c.modules[:0], members...)
	c.levels = inter
	c.score = scoreVolume(c.modules, c.levels, a.cfg, a.densities, a.globalMean, a.power)
}

// grow builds one voltage-volume tree from root by BFS over adjacent modules
// (paper Sec. 6.1), adding at each step the neighbour that best fits the
// mode's objective while the feasible-set intersection stays non-empty.
// Modules marked in blocked are never added. When deps is non-nil, every
// module the growth examines (root, members, frontier entrants) is appended
// to it exactly once.
//
// The frontier is scanned destructively: entries that can never become
// feasible again — already in the volume, blocked, or failing the mask
// intersection (which only shrinks) — are evicted instead of being re-scanned
// on every later iteration, and a stamp set dedupes neighbours pushed from
// multiple members. Density-screened entries (TSC mode) stay: the volume's
// mean density moves as members join, so their refusal is not permanent.
// Member selection is identical to the historical rescan-everything frontier
// for any input: evicted entries could never be picked again, and duplicates
// shared the key of their first occurrence, which the strict minimum always
// preferred.
//
// The returned member slice aliases the engine's scratch buffer — valid only
// until the next grow.
func (a *Assigner) grow(root int, blocked []bool, deps *[]int) ([]int, uint32) {
	a.stamp++
	stamp := a.stamp
	a.inVol[root] = stamp
	members := append(a.memberBuf[:0], root)
	inter := a.feasible[root]
	if deps != nil {
		*deps = append(*deps, root)
	}
	frontier := a.frontier[:0]
	push := func(m int) {
		if a.inVol[m] == stamp || a.inFrontier[m] == stamp {
			return
		}
		a.inFrontier[m] = stamp
		frontier = append(frontier, m)
		if deps != nil {
			*deps = append(*deps, m)
		}
	}
	for _, nb := range a.adj[root] {
		push(nb)
	}
	for len(members) < a.cfg.MaxVolumeSize && len(frontier) > 0 {
		bestIdx := -1
		bestKey := math.Inf(1)
		volDens := meanDensity(members, a.densities)
		w := 0
		for _, cand := range frontier {
			if a.inVol[cand] == stamp || (blocked != nil && blocked[cand]) {
				continue // joined the volume or blocked for good: evict
			}
			if inter&a.feasible[cand] == 0 {
				continue // the intersection only shrinks: evict
			}
			var key float64
			if a.cfg.Mode == TSCAware {
				key = math.Abs(a.densities[cand] - volDens)
				// Refuse neighbours that would break the volume's
				// power-density uniformity — but keep them in the frontier;
				// the volume mean may drift back within tolerance.
				if key > a.cfg.DensityTolerance*a.globalMean {
					frontier[w] = cand
					w++
					continue
				}
			} else {
				// Power-aware: prefer modules that allow the lowest voltage
				// (largest power saving).
				key = -(a.power[cand] * (1 - a.lowPS[inter&a.feasible[cand]]))
			}
			if key < bestKey {
				bestKey, bestIdx = key, w
			}
			frontier[w] = cand
			w++
		}
		frontier = frontier[:w]
		if bestIdx < 0 {
			break
		}
		pick := frontier[bestIdx]
		frontier = append(frontier[:bestIdx], frontier[bestIdx+1:]...)
		a.inVol[pick] = stamp
		inter &= a.feasible[pick]
		members = append(members, pick)
		for _, nb := range a.adj[pick] {
			push(nb)
		}
	}
	a.memberBuf = members
	a.frontier = frontier[:0]
	return members, inter
}

// partition runs the greedy volume selection over the cached candidates and
// builds a fresh Assignment: best-scoring candidates first, skipping
// overlaps, then leftovers re-grown among themselves so the partition stays
// coarse. Mirrors the historical Assign selection exactly (stable order on
// equal scores).
func (a *Assigner) partition(l *floorplan.Layout) *Assignment {
	n := a.n
	order := a.order[:0]
	for r := 0; r < n; r++ {
		order = append(order, r)
	}
	sort.SliceStable(order, func(i, j int) bool {
		return a.cands[order[i]].score > a.cands[order[j]].score
	})
	a.order = order

	asg := &Assignment{
		LevelOf:    make([]Level, n),
		PowerScale: make([]float64, n),
		DelayScale: make([]float64, n),
		Target:     a.target,
	}
	assigned := a.assigned
	for i := range assigned {
		assigned[i] = false
	}
	addVolume := func(mods []int, levels uint32) {
		lv := pickLevel(mods, levels, a.cfg, a.densities, a.globalMean)
		vol := Volume{Level: lv}
		for _, m := range mods {
			vol.Modules = append(vol.Modules, m)
			assigned[m] = true
			asg.LevelOf[m] = lv
			asg.PowerScale[m] = lv.PowerScale
			asg.DelayScale[m] = lv.DelayScale
		}
		sort.Ints(vol.Modules)
		asg.Volumes = append(asg.Volumes, vol)
	}
	for _, r := range order {
		c := &a.cands[r]
		free := true
		for _, m := range c.modules {
			if assigned[m] {
				free = false
				break
			}
		}
		if !free {
			continue
		}
		addVolume(c.modules, c.levels)
	}
	for m := 0; m < n; m++ {
		if !assigned[m] {
			mods, levels := a.grow(m, assigned, nil)
			addVolume(mods, levels)
		}
	}
	for m, mod := range l.Design.Modules {
		asg.TotalPower += mod.Power * asg.PowerScale[m]
	}
	return asg
}

// Equivalent compares two assignments and returns a description of the first
// divergence, or nil when they describe the same partition: identical
// volumes (same modules, same level, same order), identical per-module
// levels, and TotalPower/Target within eps (relative, floored at 1). The
// incremental evaluator's cross-check path uses it to pin Refresh against a
// fresh Assign.
func Equivalent(a, b *Assignment, eps float64) error {
	if len(a.Volumes) != len(b.Volumes) {
		return fmt.Errorf("volume count %d != %d", len(a.Volumes), len(b.Volumes))
	}
	for i := range a.Volumes {
		if a.Volumes[i].Level != b.Volumes[i].Level {
			return fmt.Errorf("volume %d level %+v != %+v", i, a.Volumes[i].Level, b.Volumes[i].Level)
		}
		if !intsEqual(a.Volumes[i].Modules, b.Volumes[i].Modules) {
			return fmt.Errorf("volume %d members %v != %v", i, a.Volumes[i].Modules, b.Volumes[i].Modules)
		}
	}
	if len(a.LevelOf) != len(b.LevelOf) {
		return fmt.Errorf("module count %d != %d", len(a.LevelOf), len(b.LevelOf))
	}
	for m := range a.LevelOf {
		if a.LevelOf[m] != b.LevelOf[m] {
			return fmt.Errorf("module %d level %+v != %+v", m, a.LevelOf[m], b.LevelOf[m])
		}
	}
	relFloor := func(v float64) float64 { return math.Max(1, math.Abs(v)) }
	if d := math.Abs(a.TotalPower - b.TotalPower); d > eps*relFloor(b.TotalPower) {
		return fmt.Errorf("total power %v != %v (|diff| %g)", a.TotalPower, b.TotalPower, d)
	}
	if d := math.Abs(a.Target - b.Target); d > eps*relFloor(b.Target) {
		return fmt.Errorf("target %v != %v (|diff| %g)", a.Target, b.Target, d)
	}
	return nil
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
