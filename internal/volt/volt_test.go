package volt

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bench"
	"repro/internal/floorplan"
	"repro/internal/timing"
)

func layoutAndRef(t *testing.T, name string, seed int64) (*floorplan.Layout, *timing.Analysis) {
	t.Helper()
	des := bench.MustGenerate(name)
	l := floorplan.NewRandom(des, rand.New(rand.NewSource(seed))).Pack()
	return l, timing.Analyze(l, nil, timing.DefaultParams())
}

func TestLevels90nmMatchPaper(t *testing.T) {
	ls := Levels90nm()
	if len(ls) != 3 {
		t.Fatal("need 3 levels")
	}
	if ls[0].V != 0.8 || ls[0].PowerScale != 0.817 || ls[0].DelayScale != 1.56 {
		t.Fatalf("0.8V level wrong: %+v", ls[0])
	}
	if ls[1].V != 1.0 || ls[1].PowerScale != 1.0 || ls[1].DelayScale != 1.0 {
		t.Fatalf("1.0V level wrong: %+v", ls[1])
	}
	if ls[2].V != 1.2 || ls[2].PowerScale != 1.496 || ls[2].DelayScale != 0.83 {
		t.Fatalf("1.2V level wrong: %+v", ls[2])
	}
}

func TestAssignCoversEveryModule(t *testing.T) {
	l, ref := layoutAndRef(t, "n100", 1)
	asg := Assign(l, ref, Config{Mode: PowerAware})
	covered := make([]bool, len(l.Design.Modules))
	for _, v := range asg.Volumes {
		for _, m := range v.Modules {
			if covered[m] {
				t.Fatalf("module %d in two volumes", m)
			}
			covered[m] = true
		}
	}
	for m, ok := range covered {
		if !ok {
			t.Fatalf("module %d not assigned", m)
		}
	}
}

func TestAssignScalesConsistent(t *testing.T) {
	l, ref := layoutAndRef(t, "n100", 2)
	asg := Assign(l, ref, Config{Mode: PowerAware})
	for m := range l.Design.Modules {
		lv := asg.LevelOf[m]
		if asg.PowerScale[m] != lv.PowerScale || asg.DelayScale[m] != lv.DelayScale {
			t.Fatalf("module %d scales inconsistent with level", m)
		}
	}
}

func TestPowerAwareSavesPower(t *testing.T) {
	l, ref := layoutAndRef(t, "n100", 3)
	asg := Assign(l, ref, Config{Mode: PowerAware})
	nominal := l.Design.TotalPower()
	if asg.TotalPower > nominal {
		t.Fatalf("power-aware assignment must not raise power: %v vs %v", asg.TotalPower, nominal)
	}
	// With a relaxed target (+15%) some modules must drop to 0.8 V.
	low := 0
	for m := range l.Design.Modules {
		if asg.LevelOf[m].V == 0.8 {
			low++
		}
	}
	if low == 0 {
		t.Fatal("expected some modules at 0.8V under a relaxed target")
	}
}

func TestTSCAwareMoreVolumes(t *testing.T) {
	// The paper reports 87% more voltage volumes in TSC-aware mode: the
	// uniformity objective fragments the partition. Direction must hold.
	l, ref := layoutAndRef(t, "n100", 4)
	pa := Assign(l, ref, Config{Mode: PowerAware})
	tsc := Assign(l, ref, Config{Mode: TSCAware})
	if len(tsc.Volumes) <= len(pa.Volumes) {
		t.Fatalf("TSC-aware should use more volumes: %d vs %d", len(tsc.Volumes), len(pa.Volumes))
	}
}

func TestTSCAwareLowerIntraVolumeSpread(t *testing.T) {
	l, ref := layoutAndRef(t, "n100", 5)
	pa := Assign(l, ref, Config{Mode: PowerAware})
	tsc := Assign(l, ref, Config{Mode: TSCAware})
	if tsc.IntraVolumeDensityStdDev(l) > pa.IntraVolumeDensityStdDev(l) {
		t.Fatalf("TSC-aware intra-volume spread %v should not exceed PA %v",
			tsc.IntraVolumeDensityStdDev(l), pa.IntraVolumeDensityStdDev(l))
	}
}

func TestRepairMeetsTargetOrIdentifiesFloorplanLimit(t *testing.T) {
	l, ref := layoutAndRef(t, "n100", 6)
	cfg := Config{Mode: PowerAware}
	asg := Assign(l, ref, cfg)
	a := Repair(l, asg, timing.DefaultParams(), cfg)
	if a.Critical > asg.Target+1e-9 {
		// Only acceptable if no volume below reference remains.
		for _, v := range asg.Volumes {
			if v.Level.DelayScale > 1.0 {
				t.Fatalf("repair left slow volume while timing fails: %v > %v", a.Critical, asg.Target)
			}
		}
	}
}

func TestVerifyAgreesWithTiming(t *testing.T) {
	l, ref := layoutAndRef(t, "n100", 7)
	asg := Assign(l, ref, Config{Mode: PowerAware})
	a, ok := Verify(l, asg, timing.DefaultParams())
	if ok != (a.Critical <= asg.Target+1e-9) {
		t.Fatal("verify flag inconsistent")
	}
}

func TestFeasibilityRespectsTightTarget(t *testing.T) {
	// With a barely-relaxed target, no module on the critical hop can run
	// at 0.8 V (1.56x delay would blow the hop).
	l, ref := layoutAndRef(t, "n100", 8)
	asg := Assign(l, ref, Config{Mode: PowerAware, TargetFactor: 1.001})
	worst := ref.WorstPaths(1)[0]
	if asg.LevelOf[worst].V == 0.8 {
		t.Fatal("critical module assigned 0.8V under tight target")
	}
	a := Repair(l, asg, timing.DefaultParams(), Config{Mode: PowerAware, TargetFactor: 1.001})
	slackViolation := a.Critical - asg.Target
	if slackViolation > 0.05*asg.Target {
		t.Fatalf("repaired timing %v far above target %v", a.Critical, asg.Target)
	}
}

func TestSingletonFallback(t *testing.T) {
	// Every module must be assigned even with MaxVolumeSize 1.
	l, ref := layoutAndRef(t, "n100", 9)
	asg := Assign(l, ref, Config{Mode: PowerAware, MaxVolumeSize: 1})
	if len(asg.Volumes) != len(l.Design.Modules) {
		t.Fatalf("expected all singleton volumes, got %d", len(asg.Volumes))
	}
}

func TestInterVolumeStdDevNonNegative(t *testing.T) {
	l, ref := layoutAndRef(t, "n100", 10)
	for _, mode := range []Mode{PowerAware, TSCAware} {
		asg := Assign(l, ref, Config{Mode: mode})
		if asg.InterVolumeDensityStdDev(l) < 0 {
			t.Fatal("negative stddev")
		}
	}
}

func TestAssignDeterministic(t *testing.T) {
	l, ref := layoutAndRef(t, "n100", 11)
	a := Assign(l, ref, Config{Mode: TSCAware})
	b := Assign(l, ref, Config{Mode: TSCAware})
	if len(a.Volumes) != len(b.Volumes) {
		t.Fatal("volume count differs between identical runs")
	}
	if math.Abs(a.TotalPower-b.TotalPower) > 1e-12 {
		t.Fatal("total power differs between identical runs")
	}
}

func TestVolumesSpanDies(t *testing.T) {
	// Voltage volumes are 3D: at least one multi-module volume should span
	// both dies on a benchmark of this size (vertical adjacency links).
	l, ref := layoutAndRef(t, "n100", 12)
	asg := Assign(l, ref, Config{Mode: PowerAware})
	spans := false
	for _, v := range asg.Volumes {
		dies := map[int]bool{}
		for _, m := range v.Modules {
			dies[l.DieOf[m]] = true
		}
		if len(dies) > 1 {
			spans = true
			break
		}
	}
	if !spans {
		t.Fatal("no volume spans dies; 3D volume growth broken")
	}
}
