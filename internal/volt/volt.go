// Package volt implements the paper's floorplanning-centric voltage
// assignment (Sec. 6.1): voltage volumes — the 3D generalization of voltage
// domains, spanning dies — are grown by breadth-first search over spatially
// adjacent modules, keeping track of the set of voltages feasible for every
// member under the timing constraints; a selection pass then partitions the
// design into volumes optimizing either for minimal power and volume count
// (power-aware mode) or for uniform power densities within and across
// volumes (TSC-aware mode).
//
// The three voltage options and their scalings are the paper's 90 nm values:
// 0.8 V (0.817x power, 1.56x delay), 1.0 V (reference), and 1.2 V
// (1.496x power, 0.83x delay).
package volt

import (
	"math"

	"repro/internal/floorplan"
	"repro/internal/timing"
)

// Level is one voltage option with its power and delay scaling.
type Level struct {
	V          float64
	PowerScale float64
	DelayScale float64
}

// Levels90nm are the paper's simulated options for the 90 nm node.
func Levels90nm() []Level {
	return []Level{
		{V: 0.8, PowerScale: 0.817, DelayScale: 1.56},
		{V: 1.0, PowerScale: 1.0, DelayScale: 1.0},
		{V: 1.2, PowerScale: 1.496, DelayScale: 0.83},
	}
}

// Mode selects the volume-selection objective.
type Mode int

const (
	// PowerAware minimizes overall power and the number of volumes
	// (the paper's baseline setup (i)).
	PowerAware Mode = iota
	// TSCAware minimizes the number of volumes and the standard deviation
	// of power densities within and across volumes (setup (ii)).
	TSCAware
)

// Config tunes the assignment.
type Config struct {
	Levels []Level
	Mode   Mode
	// TargetFactor relaxes the timing target: target = critical(1.0V) *
	// TargetFactor. Default 1.15 — modules with slack may be slowed for
	// power or uniformity.
	TargetFactor float64
	// MaxVolumeSize caps BFS growth (keeps volumes local; default 24).
	MaxVolumeSize int
	// DensityTolerance bounds, in TSC-aware mode, how far (relative to the
	// design's mean power density) a neighbour's density may sit from the
	// growing volume's mean before it is refused. Uniform volumes are the
	// paper's objective (i); the refusal fragments the partition, which is
	// why TSC-aware floorplanning ends up with many more volumes
	// (Table 2: +87%). Default 0.5.
	DensityTolerance float64
	// FullAdjacency disables the Assigner's churn-tolerant adjacency index
	// (floorplan.AdjacencyIndex): every Refresh then re-sweeps the layout's
	// adjacency from scratch and diffs all rows — the debugging reference
	// the index is pinned against. Results are value-identical either way.
	// The one-shot Assign forces it on (a throwaway engine could never
	// amortize the index build); the index only pays off for a held
	// Assigner refreshed over small layout changes.
	FullAdjacency bool
}

func (c *Config) defaults() {
	if c.Levels == nil {
		c.Levels = Levels90nm()
	}
	if c.TargetFactor == 0 {
		c.TargetFactor = 1.15
	}
	if c.MaxVolumeSize == 0 {
		c.MaxVolumeSize = 24
	}
	if c.DensityTolerance == 0 {
		c.DensityTolerance = 0.5
	}
}

// Volume is one selected voltage volume.
type Volume struct {
	Modules []int
	Level   Level
}

// Assignment is the result of Assign.
type Assignment struct {
	Volumes []Volume
	// LevelOf[m] is the selected level for module m.
	LevelOf []Level
	// PowerScale[m] and DelayScale[m] are the per-module scalings.
	PowerScale []float64
	DelayScale []float64
	// TotalPower is the scaled design power in W.
	TotalPower float64
	// Target is the timing target used for feasibility, ns.
	Target float64
}

// Assign computes voltage volumes for a placed layout. The timing analysis
// must have been produced at the 1.0 V reference (delayScale nil).
//
// Assign is the one-shot form of the engine: it builds a throwaway Assigner
// and runs a full rebuild. The adjacency index is forced off — a throwaway
// engine could never amortize its build. Callers refreshing the assignment
// repeatedly over small layout changes (the annealing loop) should hold an
// Assigner and use Refresh, which reuses every candidate tree whose inputs
// did not change.
func Assign(l *floorplan.Layout, ref *timing.Analysis, cfg Config) *Assignment {
	cfg.FullAdjacency = true
	return NewAssigner(cfg).Assign(l, ref)
}

// scoreVolume ranks a candidate for the greedy partition. levels is the
// candidate's feasible-level bitmask; power holds the per-module nominal
// powers in W.
func scoreVolume(mods []int, levels uint32, cfg Config, dens []float64, globalMean float64, power []float64) float64 {
	size := float64(len(mods))
	switch cfg.Mode {
	case TSCAware:
		// Prefer larger volumes of uniform density (low intra-volume
		// spread), weighted toward the global mean (low inter-volume
		// gradients).
		sd := stdDensity(mods, dens)
		meanD := meanDensity(mods, dens)
		return size - 50*sd/(globalMean+1e-18) - 10*math.Abs(meanD-globalMean)/(globalMean+1e-18)
	default:
		// Power-aware: prefer volumes that can run at low voltage and are
		// large (fewer volumes overall).
		saving := 0.0
		lv := lowestLevel(levels, cfg.Levels)
		if lv != nil {
			for _, m := range mods {
				saving += power[m] * (1 - lv.PowerScale)
			}
		}
		return size + 100*saving
	}
}

// pickLevel selects the volume's voltage from its feasible set (a level
// bitmask).
func pickLevel(mods []int, levels uint32, cfg Config, dens []float64, globalMean float64) Level {
	feas := feasibleLevels(levels, cfg.Levels)
	if len(feas) == 0 {
		// Fall back to the reference level.
		for _, lv := range cfg.Levels {
			if lv.DelayScale == 1.0 {
				return lv
			}
		}
		return cfg.Levels[0]
	}
	if cfg.Mode == PowerAware {
		// Minimal power: lowest feasible voltage.
		best := feas[0]
		for _, lv := range feas[1:] {
			if lv.PowerScale < best.PowerScale {
				best = lv
			}
		}
		return best
	}
	// TSC-aware: choose the level that moves the volume's power density
	// closest to the global mean, smoothing inter-volume gradients — but
	// penalize power-raising levels, since injecting extra power is exactly
	// what the paper's approach avoids (its critique of the noise-injection
	// prior art; Table 2 reports only +5.4% power for TSC-aware runs).
	meanD := meanDensity(mods, dens)
	score := func(lv Level) float64 {
		gap := math.Abs(meanD*lv.PowerScale-globalMean) / (globalMean + 1e-18)
		if lv.PowerScale > 1 {
			gap += 5 * (lv.PowerScale - 1)
		}
		return gap
	}
	best := feas[0]
	bestGap := score(best)
	for _, lv := range feas[1:] {
		if gap := score(lv); gap < bestGap {
			best, bestGap = lv, gap
		}
	}
	return best
}

// Verify recomputes timing with the assignment applied and reports whether
// the scaled critical delay meets the target. Callers should bump volumes
// to the reference level and re-verify on failure; Repair does this.
func Verify(l *floorplan.Layout, asg *Assignment, p timing.Params) (*timing.Analysis, bool) {
	a := timing.Analyze(l, asg.DelayScale, p)
	return a, a.Critical <= asg.Target+1e-9
}

// Repair raises volumes to the 1.0 V reference, slowest-hop first, until the
// scaled timing meets the target. Returns the final analysis.
func Repair(l *floorplan.Layout, asg *Assignment, p timing.Params, cfg Config) *timing.Analysis {
	cfg.defaults()
	ref := refLevel(cfg.Levels)
	for iter := 0; iter <= len(asg.Volumes); iter++ {
		a, ok := Verify(l, asg, p)
		if ok {
			return a
		}
		// Find the volume containing the worst offender and reset it. On a
		// degenerate (empty) design there is no offender to blame — return
		// the analysis unchanged instead of indexing an empty slice.
		offenders := a.WorstPaths(1)
		if len(offenders) == 0 {
			return a
		}
		worst := offenders[0]
		fixed := false
		for vi := range asg.Volumes {
			for _, m := range asg.Volumes[vi].Modules {
				if m == worst && asg.Volumes[vi].Level.DelayScale > 1.0 {
					asg.setVolumeLevel(vi, ref, l)
					fixed = true
					break
				}
			}
			if fixed {
				break
			}
		}
		if !fixed {
			// Offender already at (or faster than) reference: timing is
			// limited by the floorplan, not the assignment.
			return a
		}
	}
	a, _ := Verify(l, asg, p)
	return a
}

func (asg *Assignment) setVolumeLevel(vi int, lv Level, l *floorplan.Layout) {
	asg.Volumes[vi].Level = lv
	for _, m := range asg.Volumes[vi].Modules {
		old := asg.PowerScale[m]
		asg.LevelOf[m] = lv
		asg.PowerScale[m] = lv.PowerScale
		asg.DelayScale[m] = lv.DelayScale
		asg.TotalPower += l.Design.Modules[m].Power * (lv.PowerScale - old)
	}
}

// IntraVolumeDensityStdDev returns the average within-volume power-density
// standard deviation — the paper's uniformity objective (i).
func (asg *Assignment) IntraVolumeDensityStdDev(l *floorplan.Layout) float64 {
	dens := make([]float64, len(l.Design.Modules))
	for m, mod := range l.Design.Modules {
		dens[m] = mod.PowerDensity() * asg.PowerScale[m]
	}
	s, cnt := 0.0, 0
	for _, v := range asg.Volumes {
		if len(v.Modules) < 2 {
			continue
		}
		s += stdDensity(v.Modules, dens)
		cnt++
	}
	if cnt == 0 {
		return 0
	}
	return s / float64(cnt)
}

// InterVolumeDensityStdDev returns the standard deviation of per-volume mean
// power densities — the paper's gradient objective (ii).
func (asg *Assignment) InterVolumeDensityStdDev(l *floorplan.Layout) float64 {
	dens := make([]float64, len(l.Design.Modules))
	for m, mod := range l.Design.Modules {
		dens[m] = mod.PowerDensity() * asg.PowerScale[m]
	}
	means := make([]float64, 0, len(asg.Volumes))
	for _, v := range asg.Volumes {
		means = append(means, meanDensity(v.Modules, dens))
	}
	return stdOf(means)
}

// --- helpers -----------------------------------------------------------------

// feasibleLevels expands a level bitmask (bit k = levels[k] feasible) into
// the corresponding levels, in level order.
func feasibleLevels(mask uint32, levels []Level) []Level {
	var out []Level
	for i := range levels {
		if mask&(1<<i) != 0 {
			out = append(out, levels[i])
		}
	}
	return out
}

// lowestLevel returns the mask's level with the lowest power scale (nil for
// an empty mask); earlier levels win ties.
func lowestLevel(mask uint32, levels []Level) *Level {
	var best *Level
	for i := range levels {
		if mask&(1<<i) == 0 {
			continue
		}
		if best == nil || levels[i].PowerScale < best.PowerScale {
			lv := levels[i]
			best = &lv
		}
	}
	return best
}

func refLevel(levels []Level) Level {
	for _, lv := range levels {
		if lv.DelayScale == 1.0 {
			return lv
		}
	}
	return levels[0]
}

func meanDensity(mods []int, dens []float64) float64 {
	if len(mods) == 0 {
		return 0
	}
	s := 0.0
	for _, m := range mods {
		s += dens[m]
	}
	return s / float64(len(mods))
}

func stdDensity(mods []int, dens []float64) float64 {
	if len(mods) < 2 {
		return 0
	}
	mean := meanDensity(mods, dens)
	ss := 0.0
	for _, m := range mods {
		d := dens[m] - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(mods)))
}

func meanOf(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

func stdOf(v []float64) float64 {
	if len(v) < 2 {
		return 0
	}
	mean := meanOf(v)
	ss := 0.0
	for _, x := range v {
		d := x - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(v)))
}
