package volt

import (
	"math/rand"
	"testing"

	"repro/internal/bench"
	"repro/internal/floorplan"
	"repro/internal/netlist"
	"repro/internal/timing"
)

// diffModules returns the modules whose placed rect or die differs between
// two layouts of the same design — the dirty-set contract of
// Assigner.Refresh, derived here exactly as the incremental evaluator
// derives it from its move journal.
func diffModules(a, b *floorplan.Layout) []int {
	var dirty []int
	for m := range a.Rects {
		if a.Rects[m] != b.Rects[m] || a.DieOf[m] != b.DieOf[m] {
			dirty = append(dirty, m)
		}
	}
	return dirty
}

// TestAssignerRefreshMatchesAssignOverPerturbations is the engine's
// equivalence contract: driven through hundreds of random floorplan
// perturbations with journal-style dirty sets, every Refresh must produce an
// assignment strictly equivalent (same volumes, same levels, power within
// 1e-12) to a from-scratch Assign on the same layout and timing.
func TestAssignerRefreshMatchesAssignOverPerturbations(t *testing.T) {
	for _, mode := range []Mode{PowerAware, TSCAware} {
		des := bench.MustGenerate("n100")
		rng := rand.New(rand.NewSource(17))
		fp := floorplan.NewRandom(des, rng)
		cfg := Config{Mode: mode}
		p := timing.DefaultParams()

		prev := fp.Pack()
		a := NewAssigner(cfg)
		if err := Equivalent(a.Assign(prev, timing.Analyze(prev, nil, p)),
			Assign(prev, timing.Analyze(prev, nil, p), cfg), 0); err != nil {
			t.Fatalf("%v: initial assignment differs: %v", mode, err)
		}
		for i := 0; i < 150; i++ {
			fp.Perturb(rng)
			l := fp.Pack()
			dirty := diffModules(prev, l)
			ref := timing.Analyze(l, nil, p)
			got := a.Refresh(l, ref, dirty)
			want := Assign(l, ref, cfg)
			if err := Equivalent(got, want, 1e-12); err != nil {
				t.Fatalf("%v: step %d: incremental refresh diverged: %v", mode, i, err)
			}
			prev = l
		}
		st := a.Stats()
		if st.CandidatesReused == 0 {
			t.Fatalf("%v: assigner never reused a candidate tree: %+v", mode, st)
		}
		if st.CandidatesRegrown == 0 {
			t.Fatalf("%v: assigner never regrew a candidate tree: %+v", mode, st)
		}
	}
}

// TestAssignerEmptyDirtySetServesCache pins the fast path: with no placement
// change and unchanged timing, Refresh must not regrow anything.
func TestAssignerEmptyDirtySetServesCache(t *testing.T) {
	des := bench.MustGenerate("n100")
	l := floorplan.NewRandom(des, rand.New(rand.NewSource(3))).Pack()
	ref := timing.Analyze(l, nil, timing.DefaultParams())
	a := NewAssigner(Config{Mode: TSCAware})
	first := a.Assign(l, ref)
	before := a.Stats()
	second := a.Refresh(l, ref, nil)
	after := a.Stats()
	if err := Equivalent(first, second, 0); err != nil {
		t.Fatalf("cached refresh differs: %v", err)
	}
	if regrown := after.CandidatesRegrown - before.CandidatesRegrown; regrown != 0 {
		t.Fatalf("no-op refresh regrew %d candidates", regrown)
	}
	if reused := after.CandidatesReused - before.CandidatesReused; reused != len(l.Design.Modules) {
		t.Fatalf("no-op refresh reused %d candidates, want %d", reused, len(l.Design.Modules))
	}
}

// TestAssignerInvalidateForcesRebuild covers the reset-rollback path of the
// incremental evaluator: after Invalidate the next Refresh must rebuild and
// still match a fresh Assign.
func TestAssignerInvalidateForcesRebuild(t *testing.T) {
	des := bench.MustGenerate("n100")
	l := floorplan.NewRandom(des, rand.New(rand.NewSource(4))).Pack()
	ref := timing.Analyze(l, nil, timing.DefaultParams())
	cfg := Config{Mode: PowerAware}
	a := NewAssigner(cfg)
	a.Assign(l, ref)
	a.Invalidate()
	before := a.Stats().FullRebuilds
	got := a.Refresh(l, ref, nil)
	if a.Stats().FullRebuilds != before+1 {
		t.Fatal("Invalidate did not force a full rebuild")
	}
	if err := Equivalent(got, Assign(l, ref, cfg), 0); err != nil {
		t.Fatalf("rebuilt assignment differs: %v", err)
	}
}

// TestAssignRepeatedCallsIdentical is the determinism contract at full
// strength: repeated Assign calls on the same inputs must agree exactly —
// volumes, levels, and power — not merely in aggregate.
func TestAssignRepeatedCallsIdentical(t *testing.T) {
	for _, mode := range []Mode{PowerAware, TSCAware} {
		l, ref := layoutAndRef(t, "n100", 13)
		cfg := Config{Mode: mode}
		first := Assign(l, ref, cfg)
		for i := 0; i < 3; i++ {
			if err := Equivalent(Assign(l, ref, cfg), first, 0); err != nil {
				t.Fatalf("%v: call %d differs: %v", mode, i+1, err)
			}
		}
	}
}

// emptyLayout builds a packed layout with no modules at all.
func emptyLayout() *floorplan.Layout {
	des := &netlist.Design{Name: "empty", OutlineW: 100, OutlineH: 100, Dies: 1}
	return floorplan.New(des).Pack()
}

// TestRepairEmptyDesign pins the degenerate-design guard: Repair on a design
// with no modules must return the analysis unchanged instead of indexing an
// empty worst-path slice — even when the assignment's target is unmeetable.
func TestRepairEmptyDesign(t *testing.T) {
	l := emptyLayout()
	p := timing.DefaultParams()
	ref := timing.Analyze(l, nil, p)
	cfg := Config{Mode: PowerAware}
	asg := Assign(l, ref, cfg)
	if len(asg.Volumes) != 0 || asg.TotalPower != 0 {
		t.Fatalf("empty design produced volumes: %+v", asg)
	}
	// Force Verify to fail so Repair actually reaches the offender lookup.
	asg.Target = -1
	a := Repair(l, asg, p, cfg)
	if a == nil {
		t.Fatal("Repair returned nil analysis")
	}
}

// TestRepairSingleModule covers the smallest non-degenerate design: a lone
// module sabotaged below reference must be raised back by Repair.
func TestRepairSingleModule(t *testing.T) {
	des := &netlist.Design{
		Name: "solo",
		Modules: []*netlist.Module{
			{Name: "a", Kind: netlist.Hard, W: 50, H: 50, Power: 1, IntrinsicDelay: 1.0},
		},
		OutlineW: 100, OutlineH: 100, Dies: 1,
	}
	l := floorplan.New(des).Pack()
	p := timing.DefaultParams()
	ref := timing.Analyze(l, nil, p)
	cfg := Config{Mode: PowerAware, TargetFactor: 1.0000001}
	asg := Assign(l, ref, cfg)
	low := Levels90nm()[0]
	for vi := range asg.Volumes {
		asg.setVolumeLevel(vi, low, l)
	}
	a := Repair(l, asg, p, cfg)
	if a.Critical > asg.Target+1e-9 {
		t.Fatalf("repair failed on single module: %v > %v", a.Critical, asg.Target)
	}
	if asg.LevelOf[0].DelayScale > 1.0 {
		t.Fatalf("module left below reference: %+v", asg.LevelOf[0])
	}
}
