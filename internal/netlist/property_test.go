package netlist

import (
	"fmt"
	"math/rand"
	"testing"
)

// randomDesign builds a structurally valid random design.
func randomDesign(rng *rand.Rand) *Design {
	n := 2 + rng.Intn(30)
	d := &Design{Name: "rand", OutlineW: 500, OutlineH: 400, Dies: 1 + rng.Intn(3)}
	for i := 0; i < n; i++ {
		kind := Hard
		m := &Module{
			Name: fmt.Sprintf("m%d", i), Kind: kind,
			W: 1 + rng.Float64()*50, H: 1 + rng.Float64()*50,
			Power: rng.Float64(),
		}
		if rng.Intn(2) == 0 {
			m.Kind = Soft
			m.MinAspect, m.MaxAspect = 0.5, 2
		}
		d.Modules = append(d.Modules, m)
	}
	for t := 0; t < rng.Intn(5); t++ {
		d.Terminals = append(d.Terminals, &Terminal{
			Name: fmt.Sprintf("p%d", t), X: 0, Y: rng.Float64() * d.OutlineH,
		})
	}
	nets := 1 + rng.Intn(40)
	for ni := 0; ni < nets; ni++ {
		net := &Net{Name: fmt.Sprintf("n%d", ni)}
		deg := 2 + rng.Intn(4)
		used := map[int]bool{}
		for len(net.Modules) < deg && len(net.Modules) < n {
			mi := rng.Intn(n)
			if !used[mi] {
				used[mi] = true
				net.Modules = append(net.Modules, mi)
			}
		}
		if len(net.Modules) < 2 {
			net.Modules = []int{0, n - 1}
		}
		d.Nets = append(d.Nets, net)
	}
	return d
}

func TestPropertyRandomDesignsValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		d := randomDesign(rng)
		if err := d.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestPropertyCloneEquality(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		d := randomDesign(rng)
		c := d.Clone()
		if c.TotalPower() != d.TotalPower() ||
			c.TotalModuleArea() != d.TotalModuleArea() ||
			len(c.Nets) != len(d.Nets) ||
			len(c.Terminals) != len(d.Terminals) {
			t.Fatal("clone differs from source")
		}
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPropertyDegreeHistogramSums(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		d := randomDesign(rng)
		total := 0
		for _, cnt := range d.DegreeHistogram() {
			total += cnt
		}
		if total != len(d.Nets) {
			t.Fatalf("histogram sums to %d, nets %d", total, len(d.Nets))
		}
	}
}

func TestPropertyAdjacencyConsistentWithNets(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		d := randomDesign(rng)
		adj := d.AdjacencyCount()
		for pair, cnt := range adj {
			if cnt <= 0 {
				t.Fatal("non-positive adjacency count")
			}
			if pair[0] >= pair[1] {
				t.Fatal("pair keys must be ordered")
			}
			// Verify by brute force.
			shared := 0
			for _, net := range d.Nets {
				hasA, hasB := false, false
				for _, m := range net.Modules {
					if m == pair[0] {
						hasA = true
					}
					if m == pair[1] {
						hasB = true
					}
				}
				if hasA && hasB {
					shared++
				}
			}
			if shared != cnt {
				t.Fatalf("pair %v: adjacency %d, brute force %d", pair, cnt, shared)
			}
		}
	}
}

func TestPropertyNetsOfModuleComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := randomDesign(rng)
	for mi := range d.Modules {
		nets := d.NetsOfModule(mi)
		seen := map[int]bool{}
		for _, ni := range nets {
			seen[ni] = true
			found := false
			for _, m := range d.Nets[ni].Modules {
				if m == mi {
					found = true
				}
			}
			if !found {
				t.Fatalf("net %d reported for module %d but lacks the pin", ni, mi)
			}
		}
		for ni, n := range d.Nets {
			for _, m := range n.Modules {
				if m == mi && !seen[ni] {
					t.Fatalf("net %d touching module %d missing from NetsOfModule", ni, mi)
				}
			}
		}
	}
}
