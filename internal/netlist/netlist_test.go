package netlist

import (
	"math"
	"testing"
	"testing/quick"
)

func smallDesign() *Design {
	return &Design{
		Name: "t",
		Modules: []*Module{
			{Name: "a", Kind: Hard, W: 10, H: 20, Power: 0.5},
			{Name: "b", Kind: Soft, W: 10, H: 10, MinAspect: 0.5, MaxAspect: 2, Power: 0.25},
			{Name: "c", Kind: Soft, W: 20, H: 5, MinAspect: 0.25, MaxAspect: 4, Power: 1.0},
		},
		Nets: []*Net{
			{Name: "n0", Modules: []int{0, 1}},
			{Name: "n1", Modules: []int{0, 1, 2}},
			{Name: "n2", Modules: []int{2}, Terminals: []int{0}},
		},
		Terminals: []*Terminal{{Name: "p0", X: 0, Y: 15}},
		OutlineW:  100, OutlineH: 100, Dies: 2,
	}
}

func TestValidateOK(t *testing.T) {
	if err := smallDesign().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesDuplicateNames(t *testing.T) {
	d := smallDesign()
	d.Modules[1].Name = "a"
	if err := d.Validate(); err == nil {
		t.Fatal("expected duplicate-name error")
	}
}

func TestValidateCatchesBadOutline(t *testing.T) {
	d := smallDesign()
	d.OutlineW = 0
	if err := d.Validate(); err == nil {
		t.Fatal("expected outline error")
	}
}

func TestValidateCatchesDanglingNet(t *testing.T) {
	d := smallDesign()
	d.Nets[0].Modules = []int{7, 1}
	if err := d.Validate(); err == nil {
		t.Fatal("expected out-of-range module reference error")
	}
}

func TestValidateCatchesLowDegreeNet(t *testing.T) {
	d := smallDesign()
	d.Nets[0].Modules = []int{0}
	if err := d.Validate(); err == nil {
		t.Fatal("expected degree error")
	}
}

func TestValidateCatchesOffBoundaryTerminal(t *testing.T) {
	d := smallDesign()
	d.Terminals[0].X, d.Terminals[0].Y = 50, 50
	if err := d.Validate(); err == nil {
		t.Fatal("expected terminal placement error")
	}
}

func TestModuleAreaAndDensity(t *testing.T) {
	m := &Module{Name: "x", W: 10, H: 20, Power: 2}
	if m.Area() != 200 {
		t.Fatal("area")
	}
	if m.PowerDensity() != 0.01 {
		t.Fatal("density")
	}
}

func TestSoftResizePreservesArea(t *testing.T) {
	m := &Module{Name: "s", Kind: Soft, W: 10, H: 10, MinAspect: 0.25, MaxAspect: 4}
	area := m.Area()
	for _, ar := range []float64{0.25, 0.5, 1, 2, 4} {
		m.Resize(ar)
		if math.Abs(m.Area()-area) > 1e-6 {
			t.Fatalf("aspect %v: area drifted to %v", ar, m.Area())
		}
		if math.Abs(m.W/m.H-ar) > 1e-6 {
			t.Fatalf("aspect %v: got ratio %v", ar, m.W/m.H)
		}
	}
}

func TestSoftResizeClamps(t *testing.T) {
	m := &Module{Name: "s", Kind: Soft, W: 10, H: 10, MinAspect: 0.5, MaxAspect: 2}
	m.Resize(100)
	if math.Abs(m.W/m.H-2) > 1e-9 {
		t.Fatalf("ratio %v not clamped to 2", m.W/m.H)
	}
	m.Resize(0.001)
	if math.Abs(m.W/m.H-0.5) > 1e-9 {
		t.Fatalf("ratio %v not clamped to 0.5", m.W/m.H)
	}
}

func TestHardResizeIsNoop(t *testing.T) {
	m := &Module{Name: "h", Kind: Hard, W: 10, H: 20}
	m.Resize(1)
	if m.W != 10 || m.H != 20 {
		t.Fatal("hard module must not resize")
	}
}

func TestRotate(t *testing.T) {
	m := &Module{Name: "h", Kind: Hard, W: 10, H: 20}
	m.Rotate()
	if m.W != 20 || m.H != 10 {
		t.Fatal("rotate failed")
	}
}

func TestDesignAggregates(t *testing.T) {
	d := smallDesign()
	if math.Abs(d.TotalPower()-1.75) > 1e-12 {
		t.Fatalf("power %v", d.TotalPower())
	}
	if d.TotalModuleArea() != 200+100+100 {
		t.Fatalf("area %v", d.TotalModuleArea())
	}
	if d.OutlineArea() != 20000 {
		t.Fatalf("outline area %v", d.OutlineArea())
	}
	if math.Abs(d.Utilization()-0.02) > 1e-12 {
		t.Fatalf("utilization %v", d.Utilization())
	}
	if d.HardCount() != 1 || d.SoftCount() != 2 {
		t.Fatal("hard/soft counts")
	}
}

func TestModuleIndex(t *testing.T) {
	d := smallDesign()
	if d.ModuleIndex("b") != 1 {
		t.Fatal("index of b")
	}
	if d.ModuleIndex("zz") != -1 {
		t.Fatal("missing module should be -1")
	}
}

func TestNetsOfModule(t *testing.T) {
	d := smallDesign()
	nets := d.NetsOfModule(0)
	if len(nets) != 2 || nets[0] != 0 || nets[1] != 1 {
		t.Fatalf("got %v", nets)
	}
	if got := d.NetsOfModule(2); len(got) != 2 {
		t.Fatalf("got %v", got)
	}
}

func TestAdjacencyCount(t *testing.T) {
	d := smallDesign()
	adj := d.AdjacencyCount()
	if adj[[2]int{0, 1}] != 2 {
		t.Fatalf("pair (0,1): %d", adj[[2]int{0, 1}])
	}
	if adj[[2]int{0, 2}] != 1 || adj[[2]int{1, 2}] != 1 {
		t.Fatal("pairs with c")
	}
}

func TestDegreeHistogram(t *testing.T) {
	d := smallDesign()
	h := d.DegreeHistogram()
	if h[2] != 2 || h[3] != 1 {
		t.Fatalf("got %v", h)
	}
}

func TestCloneIsDeep(t *testing.T) {
	d := smallDesign()
	c := d.Clone()
	c.Modules[0].W = 999
	c.Nets[0].Modules[0] = 2
	c.Terminals[0].X = 100
	if d.Modules[0].W == 999 || d.Nets[0].Modules[0] == 2 || d.Terminals[0].X == 100 {
		t.Fatal("clone aliases source")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSortedModuleNames(t *testing.T) {
	d := smallDesign()
	names := d.SortedModuleNames()
	if len(names) != 3 || names[0] != "a" || names[2] != "c" {
		t.Fatalf("got %v", names)
	}
}

func TestPropertyResizeAreaInvariant(t *testing.T) {
	f := func(w, h, aspect float64) bool {
		w = 1 + math.Mod(math.Abs(w), 100)
		h = 1 + math.Mod(math.Abs(h), 100)
		aspect = 0.1 + math.Mod(math.Abs(aspect), 10)
		if math.IsNaN(w) || math.IsNaN(h) || math.IsNaN(aspect) {
			return true
		}
		m := &Module{Name: "s", Kind: Soft, W: w, H: h, MinAspect: 0.1, MaxAspect: 10.1}
		before := m.Area()
		m.Resize(aspect)
		return math.Abs(m.Area()-before) < 1e-6*before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
