// Package netlist models the block-level design input to the floorplanner:
// modules (hard or soft IP blocks with area and nominal power), nets
// connecting module pins and chip-level terminal pins, and the design-level
// queries (connectivity, degree distributions, power budget) the optimizer
// and the benchmark generators need.
//
// The model mirrors the GSRC/IBM-HB+ block-level benchmark conventions used
// by the paper's Table 1: a design has a fixed die outline, a set of
// modules with scale factors applied, nets, and terminal (I/O) pins on the
// outline boundary.
package netlist

import (
	"fmt"
	"sort"
)

// ModuleKind distinguishes hard macros (fixed footprint, may only rotate)
// from soft modules (fixed area, adjustable aspect ratio).
type ModuleKind int

const (
	// Hard modules have a fixed width x height footprint.
	Hard ModuleKind = iota
	// Soft modules have fixed area but a flexible aspect ratio within
	// [MinAspect, MaxAspect].
	Soft
)

func (k ModuleKind) String() string {
	switch k {
	case Hard:
		return "hard"
	case Soft:
		return "soft"
	default:
		return fmt.Sprintf("ModuleKind(%d)", int(k))
	}
}

// Module is a block-level IP module. Designers treat these as black boxes:
// only area, aspect limits, pin count, and nominal power are known, matching
// the threat model in Sec. 2.2 of the paper.
type Module struct {
	Name string
	Kind ModuleKind

	// W, H is the footprint in um. For soft modules this is the current
	// (resizable) footprint; Area() stays constant across resizes.
	W, H float64

	// MinAspect and MaxAspect bound W/H for soft modules.
	MinAspect, MaxAspect float64

	// Power is the nominal power in Watts at the 1.0 V reference voltage.
	Power float64

	// IntrinsicDelay is the module's internal critical delay in ns at the
	// 1.0 V reference, scaled by the voltage assignment (see internal/volt).
	IntrinsicDelay float64

	// Sensitive marks security-critical modules (e.g. crypto cores) that
	// the TSC attacks of Sec. 5 target.
	Sensitive bool
}

// Area returns the module area in um^2.
func (m *Module) Area() float64 { return m.W * m.H }

// PowerDensity returns the nominal power density in W/um^2.
func (m *Module) PowerDensity() float64 {
	a := m.Area()
	if a <= 0 {
		return 0
	}
	return m.Power / a
}

// Resize sets a soft module's footprint to the given aspect ratio (W/H),
// preserving area and clamping the ratio to [MinAspect, MaxAspect]. It is a
// no-op for hard modules.
func (m *Module) Resize(aspect float64) {
	if m.Kind != Soft {
		return
	}
	if aspect < m.MinAspect {
		aspect = m.MinAspect
	}
	if aspect > m.MaxAspect {
		aspect = m.MaxAspect
	}
	area := m.Area()
	m.H = sqrtPos(area / aspect)
	m.W = area / m.H
}

// Rotate swaps the module footprint (legal for hard and soft modules).
func (m *Module) Rotate() { m.W, m.H = m.H, m.W }

func sqrtPos(v float64) float64 {
	if v <= 0 {
		return 0
	}
	// local sqrt to avoid importing math for one call site
	x := v
	for i := 0; i < 40; i++ {
		x = 0.5 * (x + v/x)
	}
	return x
}

// Terminal is a chip-level I/O pin fixed on the die outline.
type Terminal struct {
	Name string
	X, Y float64 // position on the outline, in um
}

// Net connects a set of modules (by index into Design.Modules) and a set of
// terminals (by index into Design.Terminals).
type Net struct {
	Name      string
	Modules   []int
	Terminals []int
}

// Degree returns the number of pins on the net.
func (n *Net) Degree() int { return len(n.Modules) + len(n.Terminals) }

// Design is a complete block-level design: modules, nets, terminals, and the
// fixed per-die outline for the two-die 3D stack.
type Design struct {
	Name      string
	Modules   []*Module
	Nets      []*Net
	Terminals []*Terminal

	// OutlineW, OutlineH is the fixed outline of EACH die in um. The paper
	// uses fixed-outline floorplanning (Sec. 7: "resulting die outlines are
	// fixed").
	OutlineW, OutlineH float64

	// Dies is the stack height; the paper studies two dies, face-to-back.
	Dies int
}

// TotalPower returns the design's nominal power budget in W at 1.0 V.
func (d *Design) TotalPower() float64 {
	s := 0.0
	for _, m := range d.Modules {
		s += m.Power
	}
	return s
}

// TotalModuleArea returns the sum of module areas in um^2.
func (d *Design) TotalModuleArea() float64 {
	s := 0.0
	for _, m := range d.Modules {
		s += m.Area()
	}
	return s
}

// OutlineArea returns the total placement area across all dies in um^2.
func (d *Design) OutlineArea() float64 {
	return d.OutlineW * d.OutlineH * float64(d.Dies)
}

// Utilization returns module area / available area, the packing difficulty.
func (d *Design) Utilization() float64 {
	oa := d.OutlineArea()
	if oa <= 0 {
		return 0
	}
	return d.TotalModuleArea() / oa
}

// HardCount and SoftCount report the module mix.
func (d *Design) HardCount() int {
	n := 0
	for _, m := range d.Modules {
		if m.Kind == Hard {
			n++
		}
	}
	return n
}

// SoftCount returns the number of soft modules.
func (d *Design) SoftCount() int { return len(d.Modules) - d.HardCount() }

// ModuleIndex returns the index of the named module, or -1.
func (d *Design) ModuleIndex(name string) int {
	for i, m := range d.Modules {
		if m.Name == name {
			return i
		}
	}
	return -1
}

// NetsOfModule returns the indices of all nets touching module mi, in order.
func (d *Design) NetsOfModule(mi int) []int {
	var out []int
	for ni, n := range d.Nets {
		for _, m := range n.Modules {
			if m == mi {
				out = append(out, ni)
				break
			}
		}
	}
	return out
}

// AdjacencyCount returns, for each module pair connected by at least one
// net, the number of shared nets. Keys are [2]int with i < j.
func (d *Design) AdjacencyCount() map[[2]int]int {
	adj := make(map[[2]int]int)
	for _, n := range d.Nets {
		for a := 0; a < len(n.Modules); a++ {
			for b := a + 1; b < len(n.Modules); b++ {
				i, j := n.Modules[a], n.Modules[b]
				if i == j {
					continue
				}
				if i > j {
					i, j = j, i
				}
				adj[[2]int{i, j}]++
			}
		}
	}
	return adj
}

// Validate checks structural invariants and returns the first violation.
func (d *Design) Validate() error {
	if d.OutlineW <= 0 || d.OutlineH <= 0 {
		return fmt.Errorf("netlist: non-positive outline %gx%g", d.OutlineW, d.OutlineH)
	}
	if d.Dies < 1 {
		return fmt.Errorf("netlist: need at least one die, got %d", d.Dies)
	}
	names := make(map[string]bool, len(d.Modules))
	for i, m := range d.Modules {
		if m == nil {
			return fmt.Errorf("netlist: nil module at index %d", i)
		}
		if m.Name == "" {
			return fmt.Errorf("netlist: unnamed module at index %d", i)
		}
		if names[m.Name] {
			return fmt.Errorf("netlist: duplicate module name %q", m.Name)
		}
		names[m.Name] = true
		if m.W <= 0 || m.H <= 0 {
			return fmt.Errorf("netlist: module %q has non-positive footprint %gx%g", m.Name, m.W, m.H)
		}
		if m.Power < 0 {
			return fmt.Errorf("netlist: module %q has negative power", m.Name)
		}
		if m.Kind == Soft && (m.MinAspect <= 0 || m.MaxAspect < m.MinAspect) {
			return fmt.Errorf("netlist: module %q has invalid aspect bounds [%g,%g]", m.Name, m.MinAspect, m.MaxAspect)
		}
	}
	for ni, n := range d.Nets {
		if n == nil {
			return fmt.Errorf("netlist: nil net at index %d", ni)
		}
		if n.Degree() < 2 {
			return fmt.Errorf("netlist: net %q (index %d) has degree %d < 2", n.Name, ni, n.Degree())
		}
		for _, mi := range n.Modules {
			if mi < 0 || mi >= len(d.Modules) {
				return fmt.Errorf("netlist: net %q references module %d out of range", n.Name, mi)
			}
		}
		for _, ti := range n.Terminals {
			if ti < 0 || ti >= len(d.Terminals) {
				return fmt.Errorf("netlist: net %q references terminal %d out of range", n.Name, ti)
			}
		}
	}
	for _, t := range d.Terminals {
		//lint:floateq input validation: terminal coordinates must sit exactly on the declared outline, both read from the same design
		onX := t.X == 0 || t.X == d.OutlineW
		//lint:floateq input validation: terminal coordinates must sit exactly on the declared outline, both read from the same design
		onY := t.Y == 0 || t.Y == d.OutlineH
		inX := t.X >= 0 && t.X <= d.OutlineW
		inY := t.Y >= 0 && t.Y <= d.OutlineH
		if !((onX && inY) || (onY && inX)) {
			return fmt.Errorf("netlist: terminal %q at (%g,%g) not on outline boundary", t.Name, t.X, t.Y)
		}
	}
	return nil
}

// DegreeHistogram returns net degree -> count, with keys sorted ascending in
// DegreeList.
func (d *Design) DegreeHistogram() map[int]int {
	h := make(map[int]int)
	for _, n := range d.Nets {
		h[n.Degree()]++
	}
	return h
}

// SortedModuleNames returns all module names sorted lexicographically
// (useful for deterministic reporting).
func (d *Design) SortedModuleNames() []string {
	out := make([]string, len(d.Modules))
	for i, m := range d.Modules {
		out[i] = m.Name
	}
	sort.Strings(out)
	return out
}

// Clone returns a deep copy of the design. Modules are copied by value, so
// the floorplanner may resize soft modules without mutating the input.
func (d *Design) Clone() *Design {
	c := &Design{
		Name:     d.Name,
		OutlineW: d.OutlineW, OutlineH: d.OutlineH,
		Dies: d.Dies,
	}
	c.Modules = make([]*Module, len(d.Modules))
	for i, m := range d.Modules {
		mm := *m
		c.Modules[i] = &mm
	}
	c.Nets = make([]*Net, len(d.Nets))
	for i, n := range d.Nets {
		nn := &Net{Name: n.Name}
		nn.Modules = append([]int(nil), n.Modules...)
		nn.Terminals = append([]int(nil), n.Terminals...)
		c.Nets[i] = nn
	}
	c.Terminals = make([]*Terminal, len(d.Terminals))
	for i, t := range d.Terminals {
		tt := *t
		c.Terminals[i] = &tt
	}
	return c
}
