package registry

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func mustOpen(t *testing.T, cfg Config) *Registry {
	t.Helper()
	r, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func mustPut(t *testing.T, r *Registry, id string, data []byte, jobID string, seq uint64) Artifact {
	t.Helper()
	a, existed, err := r.Put(id, data, jobID, seq)
	if err != nil {
		t.Fatalf("put %s: %v", id, err)
	}
	if existed {
		t.Fatalf("put %s: unexpectedly existed", id)
	}
	return a
}

// testID builds a well-formed sha256: address from a short tag.
func testID(tag string) string {
	return "sha256:" + strings.Repeat("0", 64-len(tag)) + tag
}

// diskPayloadBytes sums payload file sizes under artifacts/ (sidecars
// excluded), for checking the on-disk bound against the actual filesystem.
func diskPayloadBytes(t *testing.T, dir string) int64 {
	t.Helper()
	ents, err := os.ReadDir(filepath.Join(dir, "artifacts"))
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), metaSuffix) {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		total += fi.Size()
	}
	return total
}

// TestPutGetRoundTrip pins the basic contract: a put artifact comes back
// byte-identical, first writer wins on lineage, and the payload + sidecar
// land on disk under the address's hex with no temp litter.
func TestPutGetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	r := mustOpen(t, Config{Dir: dir})

	id := testID("a1")
	payload := []byte(`{"result": 1}`)
	a := mustPut(t, r, id, payload, "j-000001", 1)
	if a.ID != id || a.JobID != "j-000001" || a.Bytes != len(payload) || a.Hits != 0 {
		t.Fatalf("put artifact = %+v", a)
	}

	got, ok := r.Get(id)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("get = %q/%v", got, ok)
	}

	b, existed, err := r.Put(id, []byte("other"), "j-000002", 2)
	if err != nil || !existed || b.JobID != "j-000001" {
		t.Fatalf("second put = %+v existed=%v err=%v, want original lineage kept", b, existed, err)
	}
	if got, _ := r.Get(id); !bytes.Equal(got, payload) {
		t.Fatal("second put replaced the first writer's payload")
	}

	stem := strings.TrimPrefix(id, "sha256:")
	if _, err := os.Stat(filepath.Join(dir, "artifacts", stem)); err != nil {
		t.Fatalf("payload file: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "artifacts", stem+metaSuffix)); err != nil {
		t.Fatalf("sidecar: %v", err)
	}
	tmp, err := os.ReadDir(filepath.Join(dir, "tmp"))
	if err != nil || len(tmp) != 0 {
		t.Fatalf("tmp dir not empty after puts: %v %v", tmp, err)
	}
}

// TestReopenRebuildsIndex is the durability core: a reopened registry
// serves every artifact byte-identically with lineage, hit counts, and the
// job-sequence high-water intact, without putting payloads back in RAM
// until they are asked for.
func TestReopenRebuildsIndex(t *testing.T) {
	dir := t.TempDir()
	r := mustOpen(t, Config{Dir: dir})
	payloads := map[string][]byte{}
	for i := 1; i <= 5; i++ {
		id := testID(fmt.Sprintf("c%d", i))
		data := bytes.Repeat([]byte{byte(i)}, 100*i)
		mustPut(t, r, id, data, fmt.Sprintf("j-%06d", i), uint64(i))
		payloads[id] = data
	}
	if _, ok := r.Hit(testID("c3")); !ok {
		t.Fatal("hit missed")
	}
	if _, ok := r.Hit(testID("c3")); !ok {
		t.Fatal("hit missed")
	}

	r2 := mustOpen(t, Config{Dir: dir})
	st := r2.Stats()
	if st.Artifacts != 5 || st.Rescanned != 5 || st.Quarantined != 0 {
		t.Fatalf("rescan stats = %+v", st)
	}
	if st.CacheBytes != 0 {
		t.Fatalf("rescan preloaded %d payload bytes into RAM; index must stay metadata-only", st.CacheBytes)
	}
	if r2.LastJobSeq() != 5 {
		t.Fatalf("LastJobSeq = %d, want 5", r2.LastJobSeq())
	}
	a, ok := r2.Lookup(testID("c3"))
	if !ok || a.Hits != 2 || a.JobID != "j-000003" {
		t.Fatalf("reopened artifact = %+v/%v, want 2 persisted hits + lineage", a, ok)
	}
	for id, want := range payloads {
		got, ok := r2.Get(id)
		if !ok || !bytes.Equal(got, want) {
			t.Fatalf("reopened get %s = %d bytes/%v, want %d", id, len(got), ok, len(want))
		}
	}
}

// TestRescanQuarantinesCorruption covers every corruption class the rescan
// must survive: truncated payload, flipped payload bytes, unparseable
// sidecar, sidecar without payload, payload without sidecar. Each is moved
// to quarantine/ and counted; the healthy artifact still serves.
func TestRescanQuarantinesCorruption(t *testing.T) {
	dir := t.TempDir()
	r := mustOpen(t, Config{Dir: dir})
	ids := make([]string, 5)
	for i := range ids {
		ids[i] = testID(fmt.Sprintf("d%d", i))
		mustPut(t, r, ids[i], []byte(strings.Repeat("x", 50+i)), "j-000001", 1)
	}
	arts := filepath.Join(dir, "artifacts")
	stem := func(id string) string { return strings.TrimPrefix(id, "sha256:") }

	// ids[0]: truncated payload.
	if err := os.Truncate(filepath.Join(arts, stem(ids[0])), 10); err != nil {
		t.Fatal(err)
	}
	// ids[1]: same size, flipped content (hash mismatch).
	if err := os.WriteFile(filepath.Join(arts, stem(ids[1])), []byte(strings.Repeat("y", 51)), 0o644); err != nil {
		t.Fatal(err)
	}
	// ids[2]: unparseable sidecar.
	if err := os.WriteFile(filepath.Join(arts, stem(ids[2])+metaSuffix), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	// ids[3]: payload deleted, sidecar orphaned.
	if err := os.Remove(filepath.Join(arts, stem(ids[3]))); err != nil {
		t.Fatal(err)
	}
	// plus an orphan payload with no sidecar at all.
	if err := os.WriteFile(filepath.Join(arts, strings.Repeat("e", 64)), []byte("orphan"), 0o644); err != nil {
		t.Fatal(err)
	}

	r2 := mustOpen(t, Config{Dir: dir})
	st := r2.Stats()
	if st.Artifacts != 1 || st.Rescanned != 1 {
		t.Fatalf("stats after corrupt rescan = %+v, want exactly the healthy artifact", st)
	}
	if st.Quarantined != 5 {
		t.Fatalf("quarantined = %d, want 5", st.Quarantined)
	}
	if got, ok := r2.Get(ids[4]); !ok || string(got) != strings.Repeat("x", 54) {
		t.Fatalf("healthy artifact lost: %q/%v", got, ok)
	}
	for _, id := range ids[:4] {
		if _, ok := r2.Lookup(id); ok {
			t.Fatalf("corrupt artifact %s still indexed", id)
		}
	}
	q, err := os.ReadDir(filepath.Join(dir, "quarantine"))
	if err != nil || len(q) == 0 {
		t.Fatalf("quarantine dir empty: %v %v", q, err)
	}
	left, _ := os.ReadDir(arts)
	if len(left) != 2 {
		t.Fatalf("artifacts dir has %d files after quarantine, want the healthy pair", len(left))
	}
}

// TestGetQuarantinesRuntimeRot: a payload corrupted underneath a running
// registry (after its cache entry is gone) is quarantined on read, not
// served.
func TestGetQuarantinesRuntimeRot(t *testing.T) {
	dir := t.TempDir()
	r := mustOpen(t, Config{Dir: dir, MaxCacheBytes: -1}) // no cache: every Get reads disk
	id := testID("f1")
	mustPut(t, r, id, []byte("good bytes"), "j-000001", 1)
	if err := os.WriteFile(filepath.Join(dir, "artifacts", strings.TrimPrefix(id, "sha256:")),
		[]byte("rot bytes!"), 0o644); err != nil {
		t.Fatal(err)
	}
	if data, ok := r.Get(id); ok {
		t.Fatalf("served rotten payload %q", data)
	}
	if _, ok := r.Lookup(id); ok {
		t.Fatal("rotten artifact still indexed")
	}
	if st := r.Stats(); st.Quarantined != 1 {
		t.Fatalf("quarantined = %d, want 1", st.Quarantined)
	}
}

// TestCacheBoundAndCounters churns more payload bytes than the cache bound
// and checks the RAM invariant (CacheBytes <= MaxCacheBytes always), the
// hit/miss counters, and that cache eviction never loses data.
func TestCacheBoundAndCounters(t *testing.T) {
	dir := t.TempDir()
	const bound = 1024
	r := mustOpen(t, Config{Dir: dir, MaxCacheBytes: bound})
	const n = 20
	for i := 0; i < n; i++ {
		id := testID(fmt.Sprintf("a%d", i))
		mustPut(t, r, id, bytes.Repeat([]byte{byte(i)}, 300), "j-000001", 1)
		if st := r.Stats(); st.CacheBytes > bound {
			t.Fatalf("cache bytes %d exceed bound %d after put %d", st.CacheBytes, bound, i)
		}
	}
	// Every payload still serves; cold ones come from disk (misses).
	for i := 0; i < n; i++ {
		id := testID(fmt.Sprintf("a%d", i))
		data, ok := r.Get(id)
		if !ok || len(data) != 300 || data[0] != byte(i) {
			t.Fatalf("get %d = %d bytes/%v", i, len(data), ok)
		}
		if st := r.Stats(); st.CacheBytes > bound {
			t.Fatalf("cache bytes %d exceed bound %d during reads", st.CacheBytes, bound)
		}
	}
	st := r.Stats()
	if st.CacheMisses == 0 {
		t.Fatal("no cache misses despite bound-forced evictions")
	}
	// The most recent read is hot: reading it again must hit RAM.
	hits := st.CacheHits
	if _, ok := r.Get(testID(fmt.Sprintf("a%d", n-1))); !ok {
		t.Fatal("hot get missed")
	}
	if r.Stats().CacheHits != hits+1 {
		t.Fatal("hot re-read did not count a cache hit")
	}
	// An oversized payload must not enter the cache at all.
	mustPut(t, r, testID("big"), bytes.Repeat([]byte{1}, bound+1), "j-000001", 1)
	if st := r.Stats(); st.CacheBytes > bound {
		t.Fatalf("oversized payload cached: %d > %d", st.CacheBytes, bound)
	}
}

// TestDiskRetentionChurn is the acceptance churn test: with MaxStoreBytes
// set, on-disk payload bytes never exceed the bound (checked against the
// real filesystem, not just the counter), evictions are counted, and the
// most recently used artifacts survive.
func TestDiskRetentionChurn(t *testing.T) {
	dir := t.TempDir()
	const bound = 4096
	r := mustOpen(t, Config{Dir: dir, MaxStoreBytes: bound, MaxCacheBytes: 1024})
	const n = 40
	for i := 0; i < n; i++ {
		id := testID(fmt.Sprintf("b%d", i))
		mustPut(t, r, id, bytes.Repeat([]byte{byte(i)}, 512), "j-000001", 1)
		st := r.Stats()
		if st.DiskBytes > bound {
			t.Fatalf("disk bytes counter %d exceeds bound %d after put %d", st.DiskBytes, bound, i)
		}
		if got := diskPayloadBytes(t, dir); got > bound {
			t.Fatalf("on-disk payload bytes %d exceed bound %d after put %d", got, bound, i)
		}
		if st.CacheBytes > 1024 {
			t.Fatalf("cache bytes %d exceed bound during churn", st.CacheBytes)
		}
	}
	st := r.Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions despite churn past the byte bound")
	}
	if st.Artifacts != 8 { // bound/512
		t.Fatalf("artifacts = %d, want 8 within the bound", st.Artifacts)
	}
	// The newest artifact survived; the oldest was evicted and reads as a
	// clean miss everywhere.
	if _, ok := r.Get(testID(fmt.Sprintf("b%d", n-1))); !ok {
		t.Fatal("newest artifact evicted")
	}
	if _, ok := r.Lookup(testID("b0")); ok {
		t.Fatal("oldest artifact survived past the bound")
	}
	if _, ok := r.Get(testID("b0")); ok {
		t.Fatal("evicted artifact still served")
	}
	// A reopen agrees with the bounded on-disk state.
	r2 := mustOpen(t, Config{Dir: dir, MaxStoreBytes: bound})
	if st := r2.Stats(); st.Artifacts != 8 || st.DiskBytes > bound {
		t.Fatalf("reopened stats = %+v", st)
	}
}

// TestAgeRetention ages artifacts out with a fake clock: EnforceRetention
// evicts entries idle past MaxAge and keeps the rest.
func TestAgeRetention(t *testing.T) {
	dir := t.TempDir()
	now := time.Unix(1_700_000_000, 0)
	clock := func() time.Time { return now }
	r := mustOpen(t, Config{Dir: dir, MaxAge: time.Hour, Now: clock})
	mustPut(t, r, testID("old1"), []byte("old"), "j-000001", 1)
	now = now.Add(30 * time.Minute)
	mustPut(t, r, testID("new1"), []byte("new"), "j-000002", 2)
	now = now.Add(45 * time.Minute) // old1 idle 75m, new1 idle 45m
	r.EnforceRetention()
	if _, ok := r.Lookup(testID("old1")); ok {
		t.Fatal("aged artifact survived retention")
	}
	if _, ok := r.Lookup(testID("new1")); !ok {
		t.Fatal("fresh artifact evicted")
	}
	if st := r.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	// A hit refreshes the access time and saves the artifact from aging.
	if _, ok := r.Hit(testID("new1")); !ok {
		t.Fatal("hit missed")
	}
	now = now.Add(50 * time.Minute) // idle only 50m since the hit
	r.EnforceRetention()
	if _, ok := r.Lookup(testID("new1")); !ok {
		t.Fatal("recently-hit artifact aged out")
	}
}

// TestOpenErrors: a missing Dir is an error; a Dir path occupied by a file
// is an error; corruption never is (covered above).
func TestOpenErrors(t *testing.T) {
	if _, err := Open(Config{}); err == nil {
		t.Fatal("Open without Dir succeeded")
	}
	f := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Config{Dir: f}); err == nil {
		t.Fatal("Open on a file path succeeded")
	}
}

// TestFileStemSafety: hostile or malformed ids never escape the artifacts
// directory — anything that is not a clean sha256 address is re-hashed.
func TestFileStemSafety(t *testing.T) {
	for _, id := range []string{"../../etc/passwd", "sha256:../escape", "sha256:UPPER", "", "sha256:"} {
		stem := fileStem(id)
		if !isHex(stem) || len(stem) != 64 {
			t.Fatalf("fileStem(%q) = %q, want 64-char hex", id, stem)
		}
	}
	if got := fileStem(testID("ab")); got != strings.Repeat("0", 62)+"ab" {
		t.Fatalf("well-formed address not mapped to its own hex: %q", got)
	}
	// Distinct malformed ids must not collide on one stem.
	if fileStem("x") == fileStem("y") {
		t.Fatal("malformed ids collide")
	}
	// And a registry accepts them without writing outside its dirs.
	dir := t.TempDir()
	r := mustOpen(t, Config{Dir: dir})
	mustPut(t, r, "../../etc/passwd", []byte("p"), "j-000001", 1)
	if got, ok := r.Get("../../etc/passwd"); !ok || string(got) != "p" {
		t.Fatalf("weird-id round trip = %q/%v", got, ok)
	}
}

// TestTmpCleanup: stale temp files from a crashed predecessor vanish on
// Open and never enter the index.
func TestTmpCleanup(t *testing.T) {
	dir := t.TempDir()
	mustOpen(t, Config{Dir: dir})
	stale := filepath.Join(dir, "tmp", "w00000001")
	if err := os.WriteFile(stale, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	r := mustOpen(t, Config{Dir: dir})
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale temp file survived reopen: %v", err)
	}
	if st := r.Stats(); st.Artifacts != 0 || st.Quarantined != 0 {
		t.Fatalf("stats = %+v, want empty clean registry", st)
	}
}
