// Package registry implements the disk-backed, content-addressed artifact
// registry behind tscfpd's result store. It generalizes the bench_results/
// on-disk convention into one durable home: every artifact is a payload file
// named by the hex of its content address plus a meta.json sidecar carrying
// lineage (producing job, created time, hit count, payload size, payload
// checksum).
//
// Durability contract: both files are written atomically (temp file in the
// same filesystem + rename), so a crash leaves either the complete pair or
// garbage in tmp/ — never a half-written artifact under its final name.
// Opening the registry rescans the data directory and rebuilds the in-memory
// index from the sidecars, verifying each payload's size and SHA-256 against
// its meta; files that fail (truncated payloads, hash mismatches, orphans,
// unreadable sidecars) are quarantined — moved aside into quarantine/ and
// counted, never fatal — so one rotten artifact cannot take the daemon down.
//
// Memory contract: the index holds metadata only (O(artifact count), small);
// payload bytes live on disk and pass through a size-bounded LRU cache, so
// in-RAM payload bytes never exceed MaxCacheBytes. On-disk growth is bounded
// by the retention policy: MaxStoreBytes evicts least-recently-accessed
// artifacts when total payload bytes exceed the bound, and MaxAge evicts
// artifacts idle longer than the age. Losing an evicted artifact costs
// recomputation, never correctness — the registry stays rebuildable state in
// the stateless-serving sense, it just stops being *irreplaceable* state.
package registry

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// metaSuffix names the sidecar next to each payload file: <hex> holds the
// bytes, <hex>.meta.json holds the lineage and checksum.
const metaSuffix = ".meta.json"

// Artifact is the metadata view of one stored artifact.
type Artifact struct {
	// ID is the content address ("sha256:<hex>" of the submission that
	// produced the payload — inputs, not output bytes).
	ID string `json:"id"`
	// JobID and JobSeq name the job that produced the artifact; JobSeq lets
	// a restarted daemon allocate job IDs above every ID already on disk.
	JobID   string    `json:"job_id"`
	JobSeq  uint64    `json:"job_seq,omitempty"`
	Created time.Time `json:"created"`
	Bytes   int       `json:"bytes"`
	// Hits counts submissions served from this artifact without running
	// (dedupe), not including the producing run itself.
	Hits int `json:"hits"`
}

// meta is the on-disk sidecar schema: the Artifact plus the payload's own
// checksum (the address hashes the *inputs*, so integrity needs a second
// hash over the output bytes) and the last access time the retention policy
// evicts by.
type meta struct {
	Artifact
	PayloadSHA256 string    `json:"payload_sha256"`
	LastAccess    time.Time `json:"last_access"`
}

// Stats is the registry's observability surface (exported at /metrics).
type Stats struct {
	Artifacts   int   // indexed artifacts
	DiskBytes   int64 // payload bytes on disk (sidecars excluded)
	CacheBytes  int64 // payload bytes held in the LRU cache
	CacheHits   int64 // Gets served from RAM
	CacheMisses int64 // Gets that had to read disk
	Evictions   int64 // artifacts removed by the retention policy
	Quarantined int64 // artifacts moved aside as corrupt/orphaned
	Rescanned   int64 // artifacts rebuilt into the index at Open
}

// Config tunes a Registry. Dir is required; zero bounds mean unbounded
// except MaxCacheBytes, where 0 selects 64 MiB (use a negative value to
// disable payload caching entirely).
type Config struct {
	Dir           string
	MaxStoreBytes int64         // on-disk payload bound; 0 = unbounded
	MaxCacheBytes int64         // in-RAM payload cache bound; 0 = 64 MiB, <0 = no cache
	MaxAge        time.Duration // evict artifacts idle longer than this; 0 = keep
	// Now is the clock, for retention tests. nil = time.Now.
	Now func() time.Time
}

// entry is one indexed artifact: metadata always, payload bytes only while
// cached (elem marks its LRU position; both are nil when evicted to disk).
type entry struct {
	meta meta
	stem string // payload filename under artifacts/
	data []byte
	elem *list.Element
}

// Registry is the disk-backed store. All methods are safe for concurrent
// use; a single mutex guards the index, the cache, and file I/O (artifact
// payloads are small relative to the flows that produce them, so serialized
// I/O is not the bottleneck).
type Registry struct {
	cfg           Config
	artifactDir   string
	quarantineDir string
	tmpDir        string

	mu         sync.Mutex
	arts       map[string]*entry
	lru        *list.List // of *entry; front = most recently used
	cacheBytes int64
	diskBytes  int64
	lastJobSeq uint64
	tmpSeq     int

	cacheHits, cacheMisses int64
	evictions              int64
	quarantined, rescanned int64
}

// Open creates or reopens the registry rooted at cfg.Dir, rebuilding the
// index from the sidecars on disk. Corrupt or orphaned files are quarantined
// and counted, never an error; only an unusable directory fails Open.
func Open(cfg Config) (*Registry, error) {
	if cfg.Dir == "" {
		return nil, errors.New("registry: Config.Dir is required")
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.MaxCacheBytes == 0 {
		cfg.MaxCacheBytes = 64 << 20
	}
	r := &Registry{
		cfg:           cfg,
		artifactDir:   filepath.Join(cfg.Dir, "artifacts"),
		quarantineDir: filepath.Join(cfg.Dir, "quarantine"),
		tmpDir:        filepath.Join(cfg.Dir, "tmp"),
		arts:          make(map[string]*entry),
		lru:           list.New(),
	}
	for _, d := range []string{r.artifactDir, r.quarantineDir, r.tmpDir} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("registry: %w", err)
		}
	}
	// Leftover temp files are garbage by construction (rename is the commit
	// point), so a crashed predecessor's half-writes vanish here.
	if ents, err := os.ReadDir(r.tmpDir); err == nil {
		for _, e := range ents {
			os.Remove(filepath.Join(r.tmpDir, e.Name()))
		}
	}
	if err := r.rescan(); err != nil {
		return nil, err
	}
	r.enforceLocked(cfg.Now())
	return r, nil
}

// rescan rebuilds the index from the data directory: every sidecar whose
// payload exists, has the recorded size, and hashes to the recorded checksum
// is indexed; everything else is quarantined. Runs before the Registry is
// shared, so it needs no locking.
func (r *Registry) rescan() error {
	ents, err := os.ReadDir(r.artifactDir)
	if err != nil {
		return fmt.Errorf("registry: rescan: %w", err)
	}
	claimed := make(map[string]bool) // payload stems owned by some sidecar
	for _, de := range ents {
		name := de.Name()
		if !strings.HasSuffix(name, metaSuffix) {
			continue
		}
		stem := strings.TrimSuffix(name, metaSuffix)
		claimed[stem] = true
		m, err := readMeta(filepath.Join(r.artifactDir, name))
		if err != nil {
			r.quarantineStem(stem)
			continue
		}
		data, err := os.ReadFile(filepath.Join(r.artifactDir, stem))
		if err != nil || len(data) != m.Bytes || payloadSum(data) != m.PayloadSHA256 {
			r.quarantineStem(stem)
			continue
		}
		e := &entry{meta: m, stem: stem}
		r.arts[m.ID] = e
		r.diskBytes += int64(m.Bytes)
		if m.JobSeq > r.lastJobSeq {
			r.lastJobSeq = m.JobSeq
		}
		r.rescanned++
	}
	// A payload without a sidecar cannot prove its address or lineage:
	// quarantine it rather than guess.
	for _, de := range ents {
		name := de.Name()
		if strings.HasSuffix(name, metaSuffix) || claimed[name] {
			continue
		}
		r.quarantineStem(name)
	}
	return nil
}

// Put stores data under id with lineage to the producing job. The first
// writer wins: if the artifact already exists the original lineage is kept
// and existed reports true. A non-nil error means the payload could not be
// made durable (nothing is left indexed or half-written under the final
// names).
func (r *Registry) Put(id string, data []byte, jobID string, jobSeq uint64) (Artifact, bool, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.cfg.Now()
	if e, ok := r.arts[id]; ok {
		e.meta.LastAccess = now
		return e.meta.Artifact, true, nil
	}
	stem := fileStem(id)
	m := meta{
		Artifact: Artifact{
			ID:      id,
			JobID:   jobID,
			JobSeq:  jobSeq,
			Created: now,
			Bytes:   len(data),
		},
		PayloadSHA256: payloadSum(data),
		LastAccess:    now,
	}
	payloadPath := filepath.Join(r.artifactDir, stem)
	if err := r.writeAtomic(payloadPath, data); err != nil {
		return Artifact{}, false, err
	}
	if err := r.flushMetaLocked(stem, m); err != nil {
		os.Remove(payloadPath) // no orphan payload for the next rescan to quarantine
		return Artifact{}, false, err
	}
	e := &entry{meta: m, stem: stem}
	r.arts[id] = e
	r.diskBytes += int64(len(data))
	if jobSeq > r.lastJobSeq {
		r.lastJobSeq = jobSeq
	}
	r.cacheInsertLocked(e, data)
	r.enforceLocked(now)
	return e.meta.Artifact, false, nil
}

// Hit returns the artifact for id and counts a dedupe hit. The bumped hit
// count and access time are flushed to the sidecar so they survive restarts;
// a flush failure is ignored — hit counts are advisory, the payload's
// durability does not depend on them.
func (r *Registry) Hit(id string) (Artifact, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.arts[id]
	if !ok {
		return Artifact{}, false
	}
	e.meta.Hits++
	e.meta.LastAccess = r.cfg.Now()
	_ = r.flushMetaLocked(e.stem, e.meta)
	return e.meta.Artifact, true
}

// Lookup returns the artifact for id without counting a hit.
func (r *Registry) Lookup(id string) (Artifact, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.arts[id]
	if !ok {
		return Artifact{}, false
	}
	return e.meta.Artifact, true
}

// Get returns the payload for id, from the cache when hot, from disk
// otherwise. A payload that fails its checksum on read (the file rotted or
// was truncated underneath a running daemon) is quarantined and reported as
// a miss rather than served.
func (r *Registry) Get(id string) ([]byte, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.arts[id]
	if !ok {
		return nil, false
	}
	now := r.cfg.Now()
	if e.data != nil {
		r.cacheHits++
		r.lru.MoveToFront(e.elem)
		e.meta.LastAccess = now
		return e.data, true
	}
	r.cacheMisses++
	data, err := os.ReadFile(filepath.Join(r.artifactDir, e.stem))
	if err != nil || len(data) != e.meta.Bytes || payloadSum(data) != e.meta.PayloadSHA256 {
		r.dropLocked(e)
		r.quarantineStem(e.stem)
		return nil, false
	}
	e.meta.LastAccess = now
	r.cacheInsertLocked(e, data)
	return data, true
}

// Len reports the indexed artifact count.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.arts)
}

// LastJobSeq reports the highest producing-job sequence number on record,
// so a restarted daemon can allocate job IDs above every ID whose lineage
// is already on disk.
func (r *Registry) LastJobSeq() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastJobSeq
}

// Stats snapshots the registry counters.
func (r *Registry) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return Stats{
		Artifacts:   len(r.arts),
		DiskBytes:   r.diskBytes,
		CacheBytes:  r.cacheBytes,
		CacheHits:   r.cacheHits,
		CacheMisses: r.cacheMisses,
		Evictions:   r.evictions,
		Quarantined: r.quarantined,
		Rescanned:   r.rescanned,
	}
}

// EnforceRetention applies the age and byte bounds now (Put applies them on
// every write; this is for a periodic sweep so an idle daemon still ages
// artifacts out).
func (r *Registry) EnforceRetention() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.enforceLocked(r.cfg.Now())
}

// ---- internals (all *Locked methods require r.mu) ----

// enforceLocked evicts artifacts past the age bound, then least-recently-
// accessed artifacts until payload bytes fit MaxStoreBytes. The most
// recently accessed artifact is never evicted by the byte bound, so a bound
// smaller than one payload degrades to "keep exactly the hot one" instead
// of thrashing everything.
func (r *Registry) enforceLocked(now time.Time) {
	if r.cfg.MaxAge > 0 {
		cut := now.Add(-r.cfg.MaxAge)
		for _, e := range r.arts {
			if e.meta.LastAccess.Before(cut) {
				r.evictLocked(e)
			}
		}
	}
	if r.cfg.MaxStoreBytes <= 0 {
		return
	}
	for r.diskBytes > r.cfg.MaxStoreBytes && len(r.arts) > 1 {
		var coldest *entry
		for _, e := range r.arts {
			if coldest == nil || e.meta.LastAccess.Before(coldest.meta.LastAccess) {
				coldest = e
			}
		}
		r.evictLocked(coldest)
	}
}

// evictLocked removes an artifact from disk and the index under the
// retention policy.
func (r *Registry) evictLocked(e *entry) {
	os.Remove(filepath.Join(r.artifactDir, e.stem))
	os.Remove(filepath.Join(r.artifactDir, e.stem+metaSuffix))
	r.dropLocked(e)
	r.evictions++
}

// dropLocked removes an entry from the index and cache without touching its
// files.
func (r *Registry) dropLocked(e *entry) {
	delete(r.arts, e.meta.ID)
	r.diskBytes -= int64(e.meta.Bytes)
	r.cacheRemoveLocked(e)
}

// cacheInsertLocked puts a payload into the LRU cache, evicting cold cache
// entries (their disk copies stay) to respect MaxCacheBytes. Payloads larger
// than the whole bound are not cached at all.
func (r *Registry) cacheInsertLocked(e *entry, data []byte) {
	if r.cfg.MaxCacheBytes < 0 || int64(len(data)) > r.cfg.MaxCacheBytes {
		return
	}
	if e.elem != nil {
		r.lru.MoveToFront(e.elem)
		return
	}
	e.data = data
	e.elem = r.lru.PushFront(e)
	r.cacheBytes += int64(len(data))
	for r.cacheBytes > r.cfg.MaxCacheBytes {
		back := r.lru.Back()
		if back == nil {
			break
		}
		r.cacheRemoveLocked(back.Value.(*entry))
	}
}

// cacheRemoveLocked drops an entry's cached payload (the disk copy remains).
func (r *Registry) cacheRemoveLocked(e *entry) {
	if e.elem == nil {
		return
	}
	r.lru.Remove(e.elem)
	r.cacheBytes -= int64(len(e.data))
	e.data, e.elem = nil, nil
}

// quarantineStem moves an artifact's files aside instead of deleting or
// serving them, and counts one quarantined artifact. Move failures are
// ignored — quarantine is best-effort isolation, not a transaction.
func (r *Registry) quarantineStem(stem string) {
	for _, name := range []string{stem, stem + metaSuffix} {
		src := filepath.Join(r.artifactDir, name)
		if _, err := os.Stat(src); err != nil {
			continue
		}
		dst := filepath.Join(r.quarantineDir, name)
		os.Remove(dst)
		os.Rename(src, dst)
	}
	r.quarantined++
}

// writeAtomic writes data to path via a temp file in tmp/ (same filesystem)
// and rename, so path only ever holds a complete write.
func (r *Registry) writeAtomic(path string, data []byte) error {
	r.tmpSeq++
	tmp := filepath.Join(r.tmpDir, fmt.Sprintf("w%08d", r.tmpSeq))
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("registry: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("registry: %w", err)
	}
	return nil
}

// flushMetaLocked persists an artifact's sidecar atomically.
func (r *Registry) flushMetaLocked(stem string, m meta) error {
	data, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return fmt.Errorf("registry: %w", err)
	}
	return r.writeAtomic(filepath.Join(r.artifactDir, stem+metaSuffix), data)
}

func readMeta(path string) (meta, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return meta{}, err
	}
	var m meta
	if err := json.Unmarshal(data, &m); err != nil {
		return meta{}, err
	}
	if m.ID == "" || m.PayloadSHA256 == "" || m.Bytes < 0 {
		return meta{}, errors.New("registry: incomplete sidecar")
	}
	return m, nil
}

// fileStem maps a content address to its payload filename: the hex of a
// well-formed "sha256:<hex>" address, or the SHA-256 of the whole id for
// anything else (never raw user input in a path).
func fileStem(id string) string {
	if h, ok := strings.CutPrefix(id, "sha256:"); ok && isHex(h) {
		return h
	}
	sum := sha256.Sum256([]byte(id))
	return hex.EncodeToString(sum[:])
}

func isHex(s string) bool {
	if s == "" {
		return false
	}
	for _, c := range s {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// payloadSum is the integrity checksum over payload bytes (distinct from the
// artifact's address, which hashes the submission inputs).
func payloadSum(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}
