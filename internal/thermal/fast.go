package thermal

import (
	"math"

	"repro/internal/geom"
	"repro/internal/par"
)

// FastEstimator is the in-loop thermal analysis: per (source die, target
// die) Gaussian impulse-response masks calibrated once against the detailed
// solver, then applied by separable convolution over the power maps. This
// mirrors Corblivar's "power blurring" analysis, which the paper describes
// as fast but "inferior to the detailed analysis of HotSpot, especially for
// diverse arrangements of TSVs" — the estimator deliberately ignores TSV
// heterogeneity, exactly like its model.
type FastEstimator struct {
	nx, ny  int
	dies    int
	ambient float64
	// amp[s][t] and sigma[s][t]: peak response (K per W) and spatial spread
	// (in cells) on target die t for a unit impulse on source die s.
	amp   [][]float64
	sigma [][]float64
	// workers bounds the goroutines fanned out per convolution pass;
	// 0 selects GOMAXPROCS, 1 forces the serial path. Blur outputs are
	// byte-identical for every worker count (each output cell is computed
	// independently).
	workers int
}

// SetWorkers bounds the goroutines used by the separable convolutions.
// 0 selects GOMAXPROCS; 1 forces the serial path. Results are identical for
// every setting.
func (fe *FastEstimator) SetWorkers(n int) { fe.workers = n }

// CalibrateFast builds a FastEstimator for the given stack configuration by
// running one detailed impulse solve per die. The stack's currently
// installed power and TSV maps are not consulted; calibration uses a clean
// TSV-free stack of the same configuration. The impulse solves use the
// default worker fan-out; use CalibrateFastWorkers to bound it.
func CalibrateFast(cfg Config) *FastEstimator {
	return CalibrateFastWorkers(cfg, 0)
}

// CalibrateFastWorkers is CalibrateFast with the calibration solves (and the
// returned estimator's convolutions) bounded to `workers` goroutines —
// 0 selects GOMAXPROCS, 1 forces the serial path. Results are identical for
// every setting.
func CalibrateFastWorkers(cfg Config, workers int) *FastEstimator {
	fe := &FastEstimator{
		nx: cfg.NX, ny: cfg.NY, dies: cfg.Dies, ambient: cfg.Ambient,
		amp:     make([][]float64, cfg.Dies),
		sigma:   make([][]float64, cfg.Dies),
		workers: workers,
	}
	stack := NewStack(cfg)
	ci, cj := cfg.NX/2, cfg.NY/2
	for src := 0; src < cfg.Dies; src++ {
		fe.amp[src] = make([]float64, cfg.Dies)
		fe.sigma[src] = make([]float64, cfg.Dies)
		// Unit impulse: 1 W in the center cell of the source die.
		for d := 0; d < cfg.Dies; d++ {
			stack.SetDiePower(d, geom.NewGrid(cfg.NX, cfg.NY))
		}
		imp := geom.NewGrid(cfg.NX, cfg.NY)
		imp.Set(ci, cj, 1.0)
		stack.SetDiePower(src, imp)
		sol, _ := stack.SolveSteady(nil, SolverOpts{Tol: 1e-6, Workers: workers})
		for tgt := 0; tgt < cfg.Dies; tgt++ {
			dt := sol.DieTemp(tgt)
			// Response above the die's far-field (baseline) temperature.
			base := dt.Quantile(0.05)
			peak := dt.At(ci, cj) - base
			if peak <= 0 {
				peak = 1e-9
			}
			// Second moment of the excess response gives the Gaussian sigma.
			var m0, m2 float64
			for j := 0; j < cfg.NY; j++ {
				for i := 0; i < cfg.NX; i++ {
					e := dt.At(i, j) - base
					if e <= 0 {
						continue
					}
					dx, dy := float64(i-ci), float64(j-cj)
					m0 += e
					m2 += e * (dx*dx + dy*dy)
				}
			}
			sig := 1.0
			if m0 > 0 {
				sig = math.Sqrt(m2 / m0 / 2.0)
			}
			if sig < 0.5 {
				sig = 0.5
			}
			fe.amp[src][tgt] = peak
			fe.sigma[src][tgt] = sig
		}
	}
	return fe
}

// Response returns source die s's scaled contribution to every target die's
// temperature map for the given power map: Response(p, s)[t] =
// amp[s][t] * blur(p, sigma[s][t]). It is the unit of work the incremental
// cost evaluator caches — when only one die's power map changes between
// annealing moves, the other sources' responses are reused verbatim.
func (fe *FastEstimator) Response(power *geom.Grid, s int) []*geom.Grid {
	out := make([]*geom.Grid, fe.dies)
	for t := 0; t < fe.dies; t++ {
		b := gaussianBlur(power, fe.sigma[s][t], fe.workers)
		b.ScaleBy(fe.amp[s][t])
		out[t] = b
	}
	return out
}

// Combine sums per-source responses (as returned by Response, indexed
// resp[source][target]) plus the ambient offset into per-die temperature
// maps. Estimate(power) == Combine over each source's Response — byte for
// byte, which is what lets cached and freshly-computed responses mix.
func (fe *FastEstimator) Combine(resp [][]*geom.Grid) []*geom.Grid {
	return fe.CombineInto(resp, nil)
}

// CombineInto is Combine reusing a previously returned output slice (nil
// allocates a fresh one) — the annealing loop calls it once per move, so
// the per-die grids are worth recycling.
func (fe *FastEstimator) CombineInto(resp [][]*geom.Grid, out []*geom.Grid) []*geom.Grid {
	if len(resp) != fe.dies {
		panic("thermal: response count must equal die count")
	}
	if len(out) != fe.dies {
		out = make([]*geom.Grid, fe.dies)
	}
	for t := 0; t < fe.dies; t++ {
		if out[t] == nil || out[t].NX != fe.nx || out[t].NY != fe.ny {
			out[t] = geom.NewGrid(fe.nx, fe.ny)
		}
		out[t].Fill(fe.ambient)
	}
	for s := 0; s < fe.dies; s++ {
		for t := 0; t < fe.dies; t++ {
			out[t].AddGrid(resp[s][t])
		}
	}
	return out
}

// Estimate returns the estimated temperature map (K) of each die given the
// per-die power maps (W per cell). Superposition of blurred sources plus the
// ambient offset.
func (fe *FastEstimator) Estimate(power []*geom.Grid) []*geom.Grid {
	if len(power) != fe.dies {
		panic("thermal: power map count must equal die count")
	}
	resp := make([][]*geom.Grid, fe.dies)
	for s := 0; s < fe.dies; s++ {
		resp[s] = fe.Response(power[s], s)
	}
	return fe.Combine(resp)
}

// EstimateDie is Estimate restricted to one target die.
func (fe *FastEstimator) EstimateDie(power []*geom.Grid, target int) *geom.Grid {
	g := geom.NewGrid(fe.nx, fe.ny)
	g.Fill(fe.ambient)
	for s := 0; s < fe.dies; s++ {
		blurred := gaussianBlur(power[s], fe.sigma[s][target], fe.workers)
		blurred.ScaleBy(fe.amp[s][target])
		g.AddGrid(blurred)
	}
	return g
}

// Adjoint applies the transpose of the estimator's linear operator to a set
// of per-die temperature residuals, yielding per-die power-space gradients.
// Because the Gaussian blur kernel is symmetric, the adjoint of "blur then
// scale by amp" is "scale by amp then blur": adj_s = sum_t amp[s][t] *
// blur(residual_t, sigma[s][t]). Used by the temperature-to-power inversion
// attack (the paper's cited PowerField-style proxy).
func (fe *FastEstimator) Adjoint(residuals []*geom.Grid) []*geom.Grid {
	if len(residuals) != fe.dies {
		panic("thermal: residual count must equal die count")
	}
	out := make([]*geom.Grid, fe.dies)
	for s := 0; s < fe.dies; s++ {
		g := geom.NewGrid(fe.nx, fe.ny)
		for t := 0; t < fe.dies; t++ {
			b := gaussianBlur(residuals[t], fe.sigma[s][t], fe.workers)
			b.ScaleBy(fe.amp[s][t])
			g.AddGrid(b)
		}
		out[s] = g
	}
	return out
}

// Rises returns the temperature-rise maps (without the ambient offset) for
// the given power maps: the pure linear part of Estimate.
func (fe *FastEstimator) Rises(power []*geom.Grid) []*geom.Grid {
	maps := fe.Estimate(power)
	for _, m := range maps {
		for i := range m.Data {
			m.Data[i] -= fe.ambient
		}
	}
	return maps
}

// Dies returns the estimator's die count.
func (fe *FastEstimator) Dies() int { return fe.dies }

// gaussianBlur applies a separable normalized Gaussian of the given sigma
// (in cells) with reflective boundaries. The two passes fan their rows
// across `workers` goroutines (0 = GOMAXPROCS); every output cell is
// computed independently, so the result does not depend on the fan-out.
func gaussianBlur(g *geom.Grid, sigma float64, workers int) *geom.Grid {
	if sigma <= 0 {
		return g.Clone()
	}
	radius := int(math.Ceil(3 * sigma))
	if radius < 1 {
		radius = 1
	}
	kernel := make([]float64, 2*radius+1)
	sum := 0.0
	for k := -radius; k <= radius; k++ {
		v := math.Exp(-float64(k*k) / (2 * sigma * sigma))
		kernel[k+radius] = v
		sum += v
	}
	for i := range kernel {
		kernel[i] /= sum
	}
	nx, ny := g.NX, g.NY
	workers = blurWorkers(workers, nx, ny, radius)
	tmp := geom.NewGrid(nx, ny)
	// Horizontal pass.
	par.For(workers, ny, func(jlo, jhi int) {
		for j := jlo; j < jhi; j++ {
			for i := 0; i < nx; i++ {
				acc := 0.0
				for k := -radius; k <= radius; k++ {
					ii := reflect(i+k, nx)
					acc += kernel[k+radius] * g.At(ii, j)
				}
				tmp.Set(i, j, acc)
			}
		}
	})
	out := geom.NewGrid(nx, ny)
	// Vertical pass.
	par.For(workers, ny, func(jlo, jhi int) {
		for j := jlo; j < jhi; j++ {
			for i := 0; i < nx; i++ {
				acc := 0.0
				for k := -radius; k <= radius; k++ {
					jj := reflect(j+k, ny)
					acc += kernel[k+radius] * tmp.At(i, jj)
				}
				out.Set(i, j, acc)
			}
		}
	})
	return out
}

// blurWorkers bounds the convolution fan-out by the actual work volume
// (cells x kernel taps) so small blurs stay serial. Deterministic: depends
// only on the blur dimensions.
func blurWorkers(requested, nx, ny, radius int) int {
	w := par.Workers(requested)
	if limit := nx * ny * (2*radius + 1) / 16384; w > limit {
		w = limit
	}
	if w < 1 {
		w = 1
	}
	return w
}

func reflect(i, n int) int {
	for i < 0 || i >= n {
		if i < 0 {
			i = -i - 1
		}
		if i >= n {
			i = 2*n - i - 1
		}
	}
	return i
}
