// Package thermal implements the thermal analysis substrate the paper uses
// HotSpot 6.0 for: a finite-difference model of a two-die, face-to-back,
// TSV-based 3D IC with a heatsink on top and a secondary heat path into the
// package below. It provides
//
//   - a detailed steady-state solver (successive over-relaxation on the
//     discretized heat equation), used to verify leakage correlations after
//     floorplanning and to evaluate activity samples (paper Sec. 6.2, 7);
//   - a transient solver (implicit Euler on the same operator), used to
//     reproduce the time-scale separation of Figure 1;
//   - a fast power-blurring estimator calibrated against the detailed
//     solver, mirroring Corblivar's in-loop thermal analysis (fast.go).
//
// TSVs enter the model exactly as the paper describes them ("heat-pipes
// between stacked dies"): each cell of the inter-die bond layer carries a
// copper area fraction that raises its vertical (and, weakly, lateral)
// conductivity by linear material mixing.
package thermal

import (
	"fmt"

	"repro/internal/geom"
)

// Material conductivities in W/(m K) and volumetric heat capacities in
// J/(m^3 K). Values follow HotSpot's defaults and common 3D-IC literature.
const (
	KSilicon   = 120.0
	KCopper    = 400.0
	KBEOL      = 2.25 // dielectric/metal stack, effective
	KBond      = 0.25 // BCB adhesive bond
	KILD       = 1.4  // SiO2 inter-layer dielectric (monolithic tiers)
	KTIM       = 4.0
	KPackage   = 5.0 // effective board/underfill path
	CapSilicon = 1.75e6
	CapCopper  = 3.4e6
	CapBEOL    = 2.0e6
	CapBond    = 2.2e6
	CapTIM     = 4.0e6
	CapPackage = 2.0e6
)

// Layer describes one slab of the stack.
type Layer struct {
	Name      string
	Thickness float64 // m
	K         float64 // W/(m K), isotropic base conductivity
	Cap       float64 // J/(m^3 K)
	// PowerDie >= 0 marks this as the active layer of that die (0 = bottom).
	PowerDie int
	// TSVMixed marks the layer whose conductivity is modified per cell by
	// the TSV copper fraction.
	TSVMixed bool
	// TSVGap identifies which inter-die gap's TSV map applies to this
	// layer (gap g sits between die g and die g+1); -1 when TSVMixed is
	// false.
	TSVGap int
}

// Config describes the simulated stack and discretization.
type Config struct {
	NX, NY int     // lateral grid resolution
	ChipW  float64 // um
	ChipH  float64 // um
	Dies   int

	Ambient float64 // K

	// RSink is the total convective resistance heatsink->ambient in K/W
	// (HotSpot's r_convec, default 0.1). RPackage is the secondary path
	// board->ambient, much weaker.
	RSink    float64
	RPackage float64

	// Layers overrides the auto-built stack when non-nil.
	Layers []Layer
}

// DefaultConfig returns the stack used throughout the reproduction: two dies
// face-to-back, heatsink above the top die, secondary path to the package.
func DefaultConfig(nx, ny int, chipWUM, chipHUM float64, dies int) Config {
	return Config{
		NX: nx, NY: ny,
		ChipW: chipWUM, ChipH: chipHUM,
		Dies:     dies,
		Ambient:  293.0,
		RSink:    0.1,
		RPackage: 5.0,
	}
}

// MonolithicConfig returns the stack for a monolithic 3D IC — the other
// integration flavour the paper's footnote 1 and conclusion name as future
// work. Tiers are fabricated sequentially on one substrate: upper tiers are
// ultra-thin, separated by a ~1 um inter-layer dielectric (ILD) crossed by
// nano-scale monolithic inter-tier vias (MIVs) instead of 30 um bond layers
// with micro-scale TSVs. The dramatically thinner separation couples the
// tiers far more strongly, which is why "thermal maps would be considerably
// different for other 3D integration flavors".
//
// The TSVMixed/TSVGap machinery carries over: gap g's copper-fraction map
// now describes MIV density in ILD g.
func MonolithicConfig(nx, ny int, chipWUM, chipHUM float64, tiers int) Config {
	um := 1e-6
	ls := []Layer{
		{Name: "package", Thickness: 500 * um, K: KPackage, Cap: CapPackage, PowerDie: -1, TSVGap: -1},
		{Name: "bulk", Thickness: 150 * um, K: KSilicon, Cap: CapSilicon, PowerDie: -1, TSVGap: -1},
	}
	for t := 0; t < tiers; t++ {
		ls = append(ls, Layer{
			Name: fmt.Sprintf("tier%d-active", t), Thickness: 2 * um,
			K: KSilicon, Cap: CapSilicon, PowerDie: t, TSVGap: -1,
		})
		if t < tiers-1 {
			// ILD with MIVs: thin oxide, locally raised by copper fraction.
			ls = append(ls, Layer{
				Name: fmt.Sprintf("ild%d", t), Thickness: 1 * um,
				K: KILD, Cap: CapBEOL, PowerDie: -1, TSVMixed: true, TSVGap: t,
			})
		}
	}
	ls = append(ls,
		Layer{Name: "beol", Thickness: 12 * um, K: KBEOL, Cap: CapBEOL, PowerDie: -1, TSVGap: -1},
		Layer{Name: "tim", Thickness: 20 * um, K: KTIM, Cap: CapTIM, PowerDie: -1, TSVGap: -1},
		Layer{Name: "spreader", Thickness: 1000 * um, K: KCopper, Cap: CapCopper, PowerDie: -1, TSVGap: -1},
		Layer{Name: "sink", Thickness: 6900 * um, K: KCopper, Cap: CapCopper, PowerDie: -1, TSVGap: -1},
	)
	return Config{
		NX: nx, NY: ny,
		ChipW: chipWUM, ChipH: chipHUM,
		Dies:     tiers,
		Ambient:  293.0,
		RSink:    0.1,
		RPackage: 5.0,
		Layers:   ls,
	}
}

// buildLayers constructs the physical stack bottom-up.
func buildLayers(dies int) []Layer {
	um := 1e-6
	ls := []Layer{
		{Name: "package", Thickness: 500 * um, K: KPackage, Cap: CapPackage, PowerDie: -1, TSVGap: -1},
	}
	for d := 0; d < dies; d++ {
		bulk := 150 * um
		if d > 0 {
			bulk = 50 * um // upper dies are thinned for TSVs
		}
		// Inter-die TSV stacks traverse the lower die's BEOL and the bond
		// layer on their way into the upper die's thinned bulk, so both are
		// marked TSV-mixed (their conductivity rises with the local copper
		// fraction).
		hasTSVs := d < dies-1
		gap := -1
		if hasTSVs {
			gap = d
		}
		ls = append(ls,
			Layer{Name: fmt.Sprintf("die%d-bulk", d), Thickness: bulk, K: KSilicon, Cap: CapSilicon, PowerDie: -1, TSVGap: -1},
			Layer{Name: fmt.Sprintf("die%d-active", d), Thickness: 2 * um, K: KSilicon, Cap: CapSilicon, PowerDie: d, TSVGap: -1},
			Layer{Name: fmt.Sprintf("die%d-beol", d), Thickness: 12 * um, K: KBEOL, Cap: CapBEOL, PowerDie: -1, TSVMixed: hasTSVs, TSVGap: gap},
		)
		if hasTSVs {
			ls = append(ls, Layer{
				Name: fmt.Sprintf("bond%d", d), Thickness: 30 * um,
				K: KBond, Cap: CapBond, PowerDie: -1, TSVMixed: true, TSVGap: gap,
			})
		}
	}
	ls = append(ls,
		Layer{Name: "tim", Thickness: 20 * um, K: KTIM, Cap: CapTIM, PowerDie: -1, TSVGap: -1},
		Layer{Name: "spreader", Thickness: 1000 * um, K: KCopper, Cap: CapCopper, PowerDie: -1, TSVGap: -1},
		Layer{Name: "sink", Thickness: 6900 * um, K: KCopper, Cap: CapCopper, PowerDie: -1, TSVGap: -1},
	)
	return ls
}

// Stack is a ready-to-solve discretized model. Build with NewStack, then set
// power maps (and optionally a TSV map) and call SolveSteady.
type Stack struct {
	Cfg    Config
	Layers []Layer

	nx, ny, nl int
	dx, dy     float64 // m
	area       float64 // cell area m^2

	// Effective per-cell conductivities for TSV-mixed layers; nil entries
	// mean the layer's base K applies everywhere.
	kCell [][]float64

	// Conductances (W/K). gE[idx]: east link, gN[idx]: north link,
	// gU[idx]: up link to the next layer. gAmb[idx]: link to ambient.
	gE, gN, gU, gAmb []float64
	diag             []float64

	power []float64 // W per cell (only active layers non-zero)

	dirty bool // conductances need rebuild (TSV map changed)
	// tsvGaps[g] is the copper-fraction map of inter-die gap g (between
	// die g and die g+1); nil entries mean no TSVs in that gap.
	tsvGaps []*geom.Grid
}

// NewStack builds the discretized model for cfg.
func NewStack(cfg Config) *Stack {
	if cfg.NX <= 1 || cfg.NY <= 1 {
		panic("thermal: grid must be at least 2x2")
	}
	if cfg.Dies < 1 {
		panic("thermal: need at least one die")
	}
	layers := cfg.Layers
	if layers == nil {
		layers = buildLayers(cfg.Dies)
	}
	s := &Stack{
		Cfg:    cfg,
		Layers: layers,
		nx:     cfg.NX, ny: cfg.NY, nl: len(layers),
		dx:    cfg.ChipW * 1e-6 / float64(cfg.NX),
		dy:    cfg.ChipH * 1e-6 / float64(cfg.NY),
		kCell: make([][]float64, len(layers)),
	}
	s.area = s.dx * s.dy
	n := s.nx * s.ny * s.nl
	s.gE = make([]float64, n)
	s.gN = make([]float64, n)
	s.gU = make([]float64, n)
	s.gAmb = make([]float64, n)
	s.diag = make([]float64, n)
	s.power = make([]float64, n)
	s.rebuild()
	return s
}

// idx maps (layer, row, col) to the flat index.
func (s *Stack) idx(l, j, i int) int { return (l*s.ny+j)*s.nx + i }

// NumCells returns the total unknown count.
func (s *Stack) NumCells() int { return s.nx * s.ny * s.nl }

// activeLayer returns the layer index of die d's active layer.
func (s *Stack) activeLayer(d int) int {
	for l, ly := range s.Layers {
		if ly.PowerDie == d {
			return l
		}
	}
	panic(fmt.Sprintf("thermal: no active layer for die %d", d))
}

// kAt returns the effective conductivity of layer l at cell (i, j).
func (s *Stack) kAt(l, j, i int) float64 {
	if s.kCell[l] != nil {
		return s.kCell[l][j*s.nx+i]
	}
	return s.Layers[l].K
}

// SetTSVMap installs one TSV copper-fraction map (values in [0,1], cell
// area fraction occupied by TSV copper) for EVERY inter-die gap — the
// convenient form for two-die stacks, where there is exactly one gap.
// Pass nil to clear all gaps.
func (s *Stack) SetTSVMap(frac *geom.Grid) {
	if frac != nil && (frac.NX != s.nx || frac.NY != s.ny) {
		panic("thermal: TSV map dimensions must match the stack grid")
	}
	s.tsvGaps = make([]*geom.Grid, s.Gaps())
	for g := range s.tsvGaps {
		s.tsvGaps[g] = frac
	}
	s.dirty = true
}

// SetTSVGapMap installs the copper-fraction map of one inter-die gap (gap g
// sits between die g and die g+1). Pass nil to clear that gap.
func (s *Stack) SetTSVGapMap(gap int, frac *geom.Grid) {
	if gap < 0 || gap >= s.Gaps() {
		panic(fmt.Sprintf("thermal: gap %d out of range (stack has %d)", gap, s.Gaps()))
	}
	if frac != nil && (frac.NX != s.nx || frac.NY != s.ny) {
		panic("thermal: TSV map dimensions must match the stack grid")
	}
	if s.tsvGaps == nil {
		s.tsvGaps = make([]*geom.Grid, s.Gaps())
	}
	s.tsvGaps[gap] = frac
	s.dirty = true
}

// Gaps returns the number of inter-die gaps (dies - 1).
func (s *Stack) Gaps() int { return s.Cfg.Dies - 1 }

// SetDiePower installs die d's power map (Watts per cell).
func (s *Stack) SetDiePower(d int, g *geom.Grid) {
	if g.NX != s.nx || g.NY != s.ny {
		panic("thermal: power map dimensions must match the stack grid")
	}
	l := s.activeLayer(d)
	base := s.idx(l, 0, 0)
	copy(s.power[base:base+s.nx*s.ny], g.Data)
}

// TotalPower returns the injected power in W.
func (s *Stack) TotalPower() float64 {
	t := 0.0
	for _, p := range s.power {
		t += p
	}
	return t
}

// rebuild recomputes effective conductivities and all conductances.
func (s *Stack) rebuild() {
	// Effective conductivities for TSV-mixed layers.
	for l := range s.Layers {
		var frac *geom.Grid
		if s.Layers[l].TSVMixed && s.tsvGaps != nil {
			if g := s.Layers[l].TSVGap; g >= 0 && g < len(s.tsvGaps) {
				frac = s.tsvGaps[g]
			}
		}
		if frac == nil {
			s.kCell[l] = nil
			continue
		}
		kc := make([]float64, s.nx*s.ny)
		for c := range kc {
			f := frac.Data[c]
			if f < 0 {
				f = 0
			}
			if f > 1 {
				f = 1
			}
			// Vertical mixing is linear in area fraction (parallel paths);
			// we use the same effective value laterally, which slightly
			// overestimates lateral spreading but keeps the operator
			// isotropic per cell. TSVs dominate vertically regardless
			// because KCopper >> KBond.
			kc[c] = f*KCopper + (1-f)*s.Layers[l].K
		}
		s.kCell[l] = kc
	}

	nCells := s.nx * s.ny
	gSinkCell := 1.0 / (s.Cfg.RSink * float64(nCells))
	gPkgCell := 1.0 / (s.Cfg.RPackage * float64(nCells))

	for l := 0; l < s.nl; l++ {
		t := s.Layers[l].Thickness
		for j := 0; j < s.ny; j++ {
			for i := 0; i < s.nx; i++ {
				id := s.idx(l, j, i)
				k := s.kAt(l, j, i)
				// East link: harmonic mean between this cell and (i+1, j).
				if i+1 < s.nx {
					k2 := s.kAt(l, j, i+1)
					s.gE[id] = t * s.dy / (s.dx/2/k + s.dx/2/k2)
				} else {
					s.gE[id] = 0
				}
				if j+1 < s.ny {
					k2 := s.kAt(l, j+1, i)
					s.gN[id] = t * s.dx / (s.dy/2/k + s.dy/2/k2)
				} else {
					s.gN[id] = 0
				}
				// Up link to layer l+1.
				if l+1 < s.nl {
					t2 := s.Layers[l+1].Thickness
					k2 := s.kAt(l+1, j, i)
					s.gU[id] = s.area / (t/2/k + t2/2/k2)
				} else {
					s.gU[id] = 0
				}
				// Ambient links: sink on top layer, package on bottom layer.
				switch l {
				case s.nl - 1:
					s.gAmb[id] = gSinkCell
				case 0:
					s.gAmb[id] = gPkgCell
				default:
					s.gAmb[id] = 0
				}
			}
		}
	}
	// Diagonal = sum of incident conductances.
	for l := 0; l < s.nl; l++ {
		for j := 0; j < s.ny; j++ {
			for i := 0; i < s.nx; i++ {
				id := s.idx(l, j, i)
				d := s.gAmb[id] + s.gE[id] + s.gN[id] + s.gU[id]
				if i > 0 {
					d += s.gE[id-1]
				}
				if j > 0 {
					d += s.gN[id-s.nx]
				}
				if l > 0 {
					d += s.gU[id-s.nx*s.ny]
				}
				s.diag[id] = d
			}
		}
	}
	s.dirty = false
}
