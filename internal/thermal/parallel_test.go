package thermal

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func randomPower(nx, ny int, total float64, rng *rand.Rand) *geom.Grid {
	g := geom.NewGrid(nx, ny)
	for i := range g.Data {
		g.Data[i] = rng.Float64()
	}
	g.ScaleBy(total / g.Sum())
	return g
}

// TestParallelSteadySolveMatchesSerial pins the determinism contract: the
// red-black solver must produce byte-identical fields for every worker
// count, because each half-sweep's updates only read the opposite color.
func TestParallelSteadySolveMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// 48x48 to clear the serial-fallback size gate in solveWorkers.
	cfg := DefaultConfig(48, 48, 4000, 4000, 2)
	solve := func(workers int) []float64 {
		s := NewStack(cfg)
		s.SetDiePower(0, randomPower(48, 48, 8, rand.New(rand.NewSource(1))))
		s.SetDiePower(1, randomPower(48, 48, 5, rand.New(rand.NewSource(2))))
		sol, st := s.SolveSteady(nil, SolverOpts{Tol: 1e-6, Workers: workers})
		if !st.Converged {
			t.Fatalf("workers=%d did not converge: %+v", workers, st)
		}
		return sol.T
	}
	serial := solve(1)
	for _, w := range []int{2, 3, 8, 0} {
		got := solve(w)
		for i := range serial {
			if got[i] != serial[i] {
				t.Fatalf("workers=%d differs from serial at cell %d: %v vs %v",
					w, i, got[i], serial[i])
			}
		}
	}
	_ = rng
}

func TestParallelTransientMatchesSerial(t *testing.T) {
	cfg := DefaultConfig(48, 48, 4000, 4000, 2)
	run := func(workers int) []float64 {
		s := NewStack(cfg)
		s.SetDiePower(0, randomPower(48, 48, 10, rand.New(rand.NewSource(3))))
		traj := s.SolveTransientOpts(nil, 1e-3, 5, 0, nil,
			SolverOpts{Tol: 1e-5, MaxSweeps: 4000, Workers: workers})
		return traj[len(traj)-1].T
	}
	serial := run(1)
	parallel := run(4)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("transient parallel differs at cell %d: %v vs %v", i, serial[i], parallel[i])
		}
	}
}

func TestParallelBlurMatchesSerial(t *testing.T) {
	g := randomPower(64, 64, 20, rand.New(rand.NewSource(4)))
	serial := gaussianBlur(g, 5.0, 1)
	for _, w := range []int{2, 4, 0} {
		got := gaussianBlur(g, 5.0, w)
		for i := range serial.Data {
			if got.Data[i] != serial.Data[i] {
				t.Fatalf("workers=%d blur differs at %d", w, i)
			}
		}
	}
}

func TestFastEstimatorWorkersInvariant(t *testing.T) {
	cfg := DefaultConfig(32, 32, 4000, 4000, 2)
	fe := CalibrateFast(cfg)
	power := []*geom.Grid{
		randomPower(32, 32, 6, rand.New(rand.NewSource(5))),
		randomPower(32, 32, 4, rand.New(rand.NewSource(6))),
	}
	base := fe.Estimate(power)
	fe.SetWorkers(4)
	got := fe.Estimate(power)
	for d := range base {
		for i := range base[d].Data {
			if base[d].Data[i] != got[d].Data[i] {
				t.Fatalf("die %d cell %d differs under workers=4", d, i)
			}
		}
	}
}

// TestCombineMatchesEstimate pins the cache contract used by the incremental
// cost evaluator: summing per-source Response grids must reproduce Estimate
// byte for byte.
func TestCombineMatchesEstimate(t *testing.T) {
	cfg := DefaultConfig(24, 24, 4000, 4000, 2)
	fe := CalibrateFast(cfg)
	power := []*geom.Grid{
		randomPower(24, 24, 6, rand.New(rand.NewSource(8))),
		randomPower(24, 24, 4, rand.New(rand.NewSource(9))),
	}
	want := fe.Estimate(power)
	resp := make([][]*geom.Grid, fe.Dies())
	for s := 0; s < fe.Dies(); s++ {
		resp[s] = fe.Response(power[s], s)
	}
	got := fe.Combine(resp)
	for d := range want {
		for i := range want[d].Data {
			if want[d].Data[i] != got[d].Data[i] {
				t.Fatalf("die %d cell %d: Combine(Response) != Estimate", d, i)
			}
		}
	}
}
