package thermal

import (
	"math"
	"testing"

	"repro/internal/geom"
)

func TestSolverOptsDefaults(t *testing.T) {
	var o SolverOpts
	o.defaults(64, 64)
	if o.Tol != 1e-5 || o.MaxSweeps != 20000 {
		t.Fatalf("defaults: %+v", o)
	}
	if o.Omega <= 1 || o.Omega >= 2 {
		t.Fatalf("omega %v out of (1,2)", o.Omega)
	}
	// Larger grids want omega closer to 2.
	var o2 SolverOpts
	o2.defaults(256, 256)
	if o2.Omega <= o.Omega {
		t.Fatal("omega must grow with grid size")
	}
}

func TestSolverRespectsMaxSweeps(t *testing.T) {
	s := NewStack(testConfig(16, 16))
	s.SetDiePower(0, uniformPower(16, 16, 5))
	_, st := s.SolveSteady(nil, SolverOpts{Tol: 1e-15, MaxSweeps: 7})
	if st.Sweeps != 7 || st.Converged {
		t.Fatalf("expected capped non-convergence: %+v", st)
	}
	if st.Residual <= 0 {
		t.Fatal("residual must be reported")
	}
}

func TestTighterToleranceMoreSweeps(t *testing.T) {
	run := func(tol float64) int {
		s := NewStack(testConfig(16, 16))
		s.SetDiePower(0, uniformPower(16, 16, 5))
		_, st := s.SolveSteady(nil, SolverOpts{Tol: tol})
		return st.Sweeps
	}
	loose := run(1e-2)
	tight := run(1e-7)
	if tight <= loose {
		t.Fatalf("tighter tolerance should cost sweeps: %d vs %d", tight, loose)
	}
}

func TestSuperposition(t *testing.T) {
	// T(P1 + P2) - amb = (T(P1) - amb) + (T(P2) - amb) for the linear model.
	nx := 12
	p1 := geom.NewGrid(nx, nx)
	p1.Set(2, 2, 3)
	p2 := geom.NewGrid(nx, nx)
	p2.Set(9, 9, 2)
	solve := func(p *geom.Grid) *geom.Grid {
		s := NewStack(testConfig(nx, nx))
		s.SetDiePower(0, p)
		sol, _ := s.SolveSteady(nil, SolverOpts{Tol: 1e-8})
		return sol.DieTemp(0)
	}
	t1 := solve(p1)
	t2 := solve(p2)
	sum := p1.Clone()
	sum.AddGrid(p2)
	t12 := solve(sum)
	amb := 293.0
	for i := range t12.Data {
		want := (t1.Data[i] - amb) + (t2.Data[i] - amb)
		got := t12.Data[i] - amb
		if math.Abs(got-want) > 0.02*math.Max(want, 0.1) {
			t.Fatalf("superposition violated at %d: %v vs %v", i, got, want)
		}
	}
}

func TestSinkResistanceControlsRise(t *testing.T) {
	run := func(rSink float64) float64 {
		cfg := testConfig(12, 12)
		cfg.RSink = rSink
		s := NewStack(cfg)
		s.SetDiePower(1, uniformPower(12, 12, 10))
		sol, _ := s.SolveSteady(nil, SolverOpts{})
		return sol.Peak() - cfg.Ambient
	}
	good := run(0.05)
	poor := run(0.5)
	if poor <= good {
		t.Fatalf("worse sink must run hotter: %v vs %v", poor, good)
	}
	// At steady state, rise scales roughly with total path resistance; the
	// sink term alone bounds the difference from below.
	if poor-good < 10*0.4*0.9 { // ~P * dR with margin
		t.Fatalf("rise delta %v implausibly small", poor-good)
	}
}

func TestPackagePathCarriesHeat(t *testing.T) {
	// Blocking the package path (huge resistance) must heat the bottom die.
	run := func(rPkg float64) float64 {
		cfg := testConfig(12, 12)
		cfg.RPackage = rPkg
		s := NewStack(cfg)
		s.SetDiePower(0, uniformPower(12, 12, 10))
		sol, _ := s.SolveSteady(nil, SolverOpts{})
		return sol.DieTemp(0).Max()
	}
	withPath := run(5)
	blocked := run(5000)
	if blocked <= withPath {
		t.Fatalf("blocking the secondary path must heat die 0: %v vs %v", blocked, withPath)
	}
}

func TestLayerTempOrdering(t *testing.T) {
	// With bottom-die power only, temperatures must not increase toward
	// the sink (heat flows up): sink layer cooler than the active layer.
	s := NewStack(testConfig(12, 12))
	s.SetDiePower(0, uniformPower(12, 12, 10))
	sol, _ := s.SolveSteady(nil, SolverOpts{})
	active := sol.DieTemp(0).Mean()
	sink := sol.LayerTemp(len(s.Layers) - 1).Mean()
	if sink >= active {
		t.Fatalf("sink (%v) must be cooler than the heated active layer (%v)", sink, active)
	}
}

func TestLayerTempPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s := NewStack(testConfig(8, 8))
	sol, _ := s.SolveSteady(nil, SolverOpts{})
	sol.LayerTemp(99)
}

func TestSetTSVGapMapValidation(t *testing.T) {
	s := NewStack(testConfig(8, 8))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad gap")
		}
	}()
	s.SetTSVGapMap(5, geom.NewGrid(8, 8))
}

func TestNumCells(t *testing.T) {
	s := NewStack(testConfig(8, 10))
	if s.NumCells() != 8*10*len(s.Layers) {
		t.Fatalf("cells %d", s.NumCells())
	}
}

func TestFastEstimatorDiesAccessor(t *testing.T) {
	fe := CalibrateFast(testConfig(8, 8))
	if fe.Dies() != 2 {
		t.Fatalf("dies %d", fe.Dies())
	}
}
