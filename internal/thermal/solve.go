package thermal

import (
	"context"
	"fmt"
	"math"
	"sync"

	"repro/internal/geom"
	"repro/internal/par"
)

// Solution holds a solved temperature field in Kelvin.
type Solution struct {
	stack *Stack
	T     []float64
}

// Stats reports solver effort and convergence.
type Stats struct {
	Sweeps    int
	Residual  float64 // final max update in K
	Converged bool
}

// SolverOpts tunes the iterative solvers.
type SolverOpts struct {
	Tol       float64 // max per-sweep update in K; default 1e-5
	MaxSweeps int     // default 20000
	Omega     float64 // SOR relaxation; 0 selects an automatic value
	// Workers bounds the goroutines fanned out per red-black half-sweep.
	// 0 selects GOMAXPROCS; 1 forces the serial path. The solve result is
	// byte-identical for every worker count: red-black ordering makes each
	// half-sweep's updates independent of execution order.
	Workers int
	// Ctx, when non-nil, is polled between sweeps; on cancellation the
	// solver returns its current iterate with Stats.Converged false. Callers
	// that thread a context must check it after the solve.
	Ctx context.Context
}

func (o *SolverOpts) defaults(nx, ny int) {
	if o.Tol == 0 {
		o.Tol = 1e-5
	}
	if o.MaxSweeps == 0 {
		o.MaxSweeps = 20000
	}
	if o.Omega == 0 {
		// Optimal SOR factor for a Poisson-like problem on the lateral grid;
		// the ambient sink term only improves conditioning.
		n := nx
		if ny > n {
			n = ny
		}
		o.Omega = 2.0 / (1.0 + math.Sin(math.Pi/float64(n)))
	}
}

// SolveSteady solves the steady-state heat equation. A previous solution may
// be passed to warm-start the iteration (nil starts from ambient).
func (s *Stack) SolveSteady(prev *Solution, opts SolverOpts) (*Solution, Stats) {
	if s.dirty {
		s.rebuild()
	}
	opts.defaults(s.nx, s.ny)
	n := s.NumCells()
	T := make([]float64, n)
	if prev != nil && len(prev.T) == n {
		copy(T, prev.T)
	} else {
		for i := range T {
			T[i] = s.Cfg.Ambient
		}
	}
	stats := s.sor(T, opts)
	return &Solution{stack: s, T: T}, stats
}

// sor runs red-black SOR sweeps in place until converged.
func (s *Stack) sor(T []float64, opts SolverOpts) Stats {
	rhs := make([]float64, s.NumCells())
	amb := s.Cfg.Ambient
	for id := range rhs {
		rhs[id] = s.power[id] + s.gAmb[id]*amb
	}
	workers := s.solveWorkers(opts.Workers)
	var st Stats
	for sweep := 0; sweep < opts.MaxSweeps; sweep++ {
		if opts.Ctx != nil && opts.Ctx.Err() != nil {
			return st
		}
		maxUpd := s.rbSweep(T, rhs, nil, opts.Omega, workers)
		st.Sweeps = sweep + 1
		st.Residual = maxUpd
		if maxUpd < opts.Tol {
			st.Converged = true
			return st
		}
	}
	return st
}

// solveWorkers bounds the fan-out so small stacks stay on the serial path:
// below a few thousand cells the per-sweep goroutine overhead outweighs the
// work. The bound depends only on the problem size, never on the scheduler,
// so results stay deterministic.
func (s *Stack) solveWorkers(requested int) int {
	w := par.Workers(requested)
	if limit := s.NumCells() / 2048; w > limit {
		w = limit
	}
	if w < 1 {
		w = 1
	}
	return w
}

// rbSweep runs one red-black SOR sweep (red half, then black half) over T
// and returns the largest absolute cell update. Cells are colored by
// (i+j+l) parity; every neighbour of a cell has the opposite color, so all
// reads within a half-sweep are of values not written by it. That makes the
// update order immaterial and the result byte-identical for any worker
// count. extraDiag, when non-nil, is added per cell to the operator diagonal
// (the implicit-Euler capacitance term of the transient solver).
func (s *Stack) rbSweep(T, rhs, extraDiag []float64, w float64, workers int) float64 {
	nx, ny, nl := s.nx, s.ny, s.nl
	plane := nx * ny
	rows := nl * ny
	maxUpd := 0.0
	var mu sync.Mutex
	for color := 0; color < 2; color++ {
		par.For(workers, rows, func(rlo, rhi int) {
			m := 0.0
			for r := rlo; r < rhi; r++ {
				l := r / ny
				j := r - l*ny
				base := r * nx
				for i := (color + j + l) & 1; i < nx; i += 2 {
					id := base + i
					num := rhs[id]
					if i > 0 {
						num += s.gE[id-1] * T[id-1]
					}
					if i+1 < nx {
						num += s.gE[id] * T[id+1]
					}
					if j > 0 {
						num += s.gN[id-nx] * T[id-nx]
					}
					if j+1 < ny {
						num += s.gN[id] * T[id+nx]
					}
					if l > 0 {
						num += s.gU[id-plane] * T[id-plane]
					}
					if l+1 < nl {
						num += s.gU[id] * T[id+plane]
					}
					den := s.diag[id]
					if extraDiag != nil {
						den += extraDiag[id]
					}
					tNew := (1-w)*T[id] + w*num/den
					if upd := math.Abs(tNew - T[id]); upd > m {
						m = upd
					}
					T[id] = tNew
				}
			}
			mu.Lock()
			if m > maxUpd {
				maxUpd = m
			}
			mu.Unlock()
		})
	}
	return maxUpd
}

// SolveTransient advances the field from an initial solution (nil = ambient)
// by `steps` implicit-Euler steps of length dt seconds. The optional powerAt
// callback may rescale the injected power before each step (it receives the
// step index and must return a multiplier applied to the installed power
// maps); nil keeps power constant. Returns the trajectory of solutions
// sampled every `sample` steps (sample<=0 records only the final state).
func (s *Stack) SolveTransient(init *Solution, dt float64, steps, sample int, powerAt func(step int) float64) []*Solution {
	return s.SolveTransientOpts(init, dt, steps, sample, powerAt, SolverOpts{Tol: 1e-5, MaxSweeps: 4000})
}

// SolveTransientOpts is SolveTransient with explicit solver options
// (tolerance, sweep cap, relaxation, worker count).
func (s *Stack) SolveTransientOpts(init *Solution, dt float64, steps, sample int, powerAt func(step int) float64, opts SolverOpts) []*Solution {
	if s.dirty {
		s.rebuild()
	}
	n := s.NumCells()
	T := make([]float64, n)
	if init != nil && len(init.T) == n {
		copy(T, init.T)
	} else {
		for i := range T {
			T[i] = s.Cfg.Ambient
		}
	}
	// Per-cell thermal capacitance over dt.
	cOverDT := make([]float64, n)
	for l := 0; l < s.nl; l++ {
		c := s.Layers[l].Cap * s.area * s.Layers[l].Thickness / dt
		for j := 0; j < s.ny; j++ {
			for i := 0; i < s.nx; i++ {
				cOverDT[s.idx(l, j, i)] = c
			}
		}
	}
	basePower := append([]float64(nil), s.power...)
	defer copy(s.power, basePower)

	var out []*Solution
	if opts.Tol == 0 {
		opts.Tol = 1e-5
	}
	if opts.MaxSweeps == 0 {
		opts.MaxSweeps = 4000
	}
	opts.defaults(s.nx, s.ny)
	workers := s.solveWorkers(opts.Workers)
	amb := s.Cfg.Ambient
	rhs := make([]float64, n)
	for step := 0; step < steps; step++ {
		scale := 1.0
		if powerAt != nil {
			scale = powerAt(step)
		}
		// Implicit Euler: (C/dt + G) T_new = C/dt T_old + q. Reuse the SOR
		// kernel by treating C/dt as an extra ambient-like link toward T_old.
		for id := range rhs {
			rhs[id] = basePower[id]*scale + s.gAmb[id]*amb + cOverDT[id]*T[id]
		}
		for sweep := 0; sweep < opts.MaxSweeps; sweep++ {
			if s.rbSweep(T, rhs, cOverDT, opts.Omega, workers) < opts.Tol {
				break
			}
		}
		if sample > 0 && (step+1)%sample == 0 {
			out = append(out, &Solution{stack: s, T: append([]float64(nil), T...)})
		}
	}
	if sample <= 0 {
		out = append(out, &Solution{stack: s, T: T})
	}
	return out
}

// DieTemp returns the temperature map (K) of die d's active layer.
func (sol *Solution) DieTemp(d int) *geom.Grid {
	s := sol.stack
	l := s.activeLayer(d)
	g := geom.NewGrid(s.nx, s.ny)
	copy(g.Data, sol.T[s.idx(l, 0, 0):s.idx(l, 0, 0)+s.nx*s.ny])
	return g
}

// LayerTemp returns the temperature map of an arbitrary layer.
func (sol *Solution) LayerTemp(l int) *geom.Grid {
	s := sol.stack
	if l < 0 || l >= s.nl {
		panic(fmt.Sprintf("thermal: layer %d out of range", l))
	}
	g := geom.NewGrid(s.nx, s.ny)
	copy(g.Data, sol.T[s.idx(l, 0, 0):s.idx(l, 0, 0)+s.nx*s.ny])
	return g
}

// Peak returns the hottest temperature anywhere in the stack.
func (sol *Solution) Peak() float64 {
	m := math.Inf(-1)
	for _, t := range sol.T {
		if t > m {
			m = t
		}
	}
	return m
}

// EnergyBalance returns (powerIn, powerOut): the injected power and the heat
// leaving through the ambient links. At a converged steady state the two
// match to solver tolerance.
func (sol *Solution) EnergyBalance() (in, out float64) {
	s := sol.stack
	for id, p := range s.power {
		in += p
		if s.gAmb[id] > 0 {
			out += s.gAmb[id] * (sol.T[id] - s.Cfg.Ambient)
		}
	}
	return in, out
}
