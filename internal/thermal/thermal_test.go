package thermal

import (
	"math"
	"testing"

	"repro/internal/geom"
)

func testConfig(nx, ny int) Config {
	return DefaultConfig(nx, ny, 4000, 4000, 2) // 4x4 mm, two dies
}

func uniformPower(nx, ny int, total float64) *geom.Grid {
	g := geom.NewGrid(nx, ny)
	g.Fill(total / float64(nx*ny))
	return g
}

func TestSteadyStateConverges(t *testing.T) {
	s := NewStack(testConfig(16, 16))
	s.SetDiePower(0, uniformPower(16, 16, 5))
	s.SetDiePower(1, uniformPower(16, 16, 5))
	_, st := s.SolveSteady(nil, SolverOpts{})
	if !st.Converged {
		t.Fatalf("solver did not converge: %+v", st)
	}
}

func TestEnergyConservation(t *testing.T) {
	s := NewStack(testConfig(16, 16))
	s.SetDiePower(0, uniformPower(16, 16, 3))
	s.SetDiePower(1, uniformPower(16, 16, 7))
	sol, st := s.SolveSteady(nil, SolverOpts{Tol: 1e-7})
	if !st.Converged {
		t.Fatalf("not converged")
	}
	in, out := sol.EnergyBalance()
	if math.Abs(in-10) > 1e-9 {
		t.Fatalf("power in = %v", in)
	}
	if math.Abs(in-out)/in > 0.01 {
		t.Fatalf("energy imbalance: in %v out %v", in, out)
	}
}

func TestTemperatureAboveAmbient(t *testing.T) {
	s := NewStack(testConfig(16, 16))
	s.SetDiePower(0, uniformPower(16, 16, 10))
	sol, _ := s.SolveSteady(nil, SolverOpts{})
	for _, temp := range sol.T {
		if temp < s.Cfg.Ambient-1e-6 {
			t.Fatalf("temperature %v below ambient", temp)
		}
	}
	if sol.Peak() <= s.Cfg.Ambient {
		t.Fatal("peak must exceed ambient with power applied")
	}
}

func TestZeroPowerStaysAmbient(t *testing.T) {
	s := NewStack(testConfig(8, 8))
	sol, _ := s.SolveSteady(nil, SolverOpts{})
	for _, temp := range sol.T {
		if math.Abs(temp-s.Cfg.Ambient) > 1e-6 {
			t.Fatalf("temperature %v should equal ambient", temp)
		}
	}
}

func TestMonotonicInPower(t *testing.T) {
	s := NewStack(testConfig(16, 16))
	s.SetDiePower(1, uniformPower(16, 16, 5))
	solA, _ := s.SolveSteady(nil, SolverOpts{})
	s.SetDiePower(1, uniformPower(16, 16, 10))
	solB, _ := s.SolveSteady(nil, SolverOpts{})
	if solB.Peak() <= solA.Peak() {
		t.Fatalf("doubling power must raise peak: %v vs %v", solA.Peak(), solB.Peak())
	}
}

func TestLinearity(t *testing.T) {
	// Steady state is linear in power: T(2P) - amb = 2 (T(P) - amb).
	s := NewStack(testConfig(16, 16))
	s.SetDiePower(0, uniformPower(16, 16, 4))
	solA, _ := s.SolveSteady(nil, SolverOpts{Tol: 1e-8})
	s.SetDiePower(0, uniformPower(16, 16, 8))
	solB, _ := s.SolveSteady(nil, SolverOpts{Tol: 1e-8})
	amb := s.Cfg.Ambient
	riseA := solA.Peak() - amb
	riseB := solB.Peak() - amb
	if math.Abs(riseB-2*riseA)/riseB > 0.02 {
		t.Fatalf("linearity violated: %v vs 2*%v", riseB, riseA)
	}
}

func TestHotspotDecaysWithDistance(t *testing.T) {
	nx := 32
	s := NewStack(testConfig(nx, nx))
	p := geom.NewGrid(nx, nx)
	p.Set(nx/2, nx/2, 5.0) // 5 W point source on bottom die
	s.SetDiePower(0, p)
	sol, _ := s.SolveSteady(nil, SolverOpts{})
	dt := sol.DieTemp(0)
	center := dt.At(nx/2, nx/2)
	mid := dt.At(nx/2+6, nx/2)
	corner := dt.At(0, 0)
	if !(center > mid && mid > corner) {
		t.Fatalf("no radial decay: center %v mid %v corner %v", center, mid, corner)
	}
}

func TestSymmetry(t *testing.T) {
	nx := 16
	s := NewStack(testConfig(nx, nx))
	s.SetDiePower(0, uniformPower(nx, nx, 8))
	sol, _ := s.SolveSteady(nil, SolverOpts{Tol: 1e-8})
	dt := sol.DieTemp(0)
	for j := 0; j < nx; j++ {
		for i := 0; i < nx/2; i++ {
			a, b := dt.At(i, j), dt.At(nx-1-i, j)
			if math.Abs(a-b) > 1e-3 {
				t.Fatalf("x-symmetry broken at (%d,%d): %v vs %v", i, j, a, b)
			}
		}
	}
}

func TestTopDieRunsCoolerForSamePower(t *testing.T) {
	// The heatsink sits above the top die; the same power injected into the
	// bottom die (far from the sink) must produce a hotter active layer.
	s := NewStack(testConfig(16, 16))
	s.SetDiePower(0, uniformPower(16, 16, 10))
	solBottom, _ := s.SolveSteady(nil, SolverOpts{})
	peakBottom := solBottom.DieTemp(0).Max()

	s2 := NewStack(testConfig(16, 16))
	s2.SetDiePower(1, uniformPower(16, 16, 10))
	solTop, _ := s2.SolveSteady(nil, SolverOpts{})
	peakTop := solTop.DieTemp(1).Max()

	if peakTop >= peakBottom {
		t.Fatalf("top die should run cooler: top %v bottom %v", peakTop, peakBottom)
	}
}

func TestTSVsCoolHotspot(t *testing.T) {
	// TSVs under a bottom-die hotspot act as heat pipes toward the sink and
	// must lower the hotspot peak (the paper's core physical lever).
	nx := 32
	p := geom.NewGrid(nx, nx)
	for j := 14; j < 18; j++ {
		for i := 14; i < 18; i++ {
			p.Set(i, j, 0.5)
		}
	}

	s := NewStack(testConfig(nx, nx))
	s.SetDiePower(0, p)
	solNo, _ := s.SolveSteady(nil, SolverOpts{})
	peakNo := solNo.DieTemp(0).Max()

	tsv := geom.NewGrid(nx, nx)
	for j := 13; j < 19; j++ {
		for i := 13; i < 19; i++ {
			tsv.Set(i, j, 0.5)
		}
	}
	s.SetTSVMap(tsv)
	solTSV, _ := s.SolveSteady(nil, SolverOpts{})
	peakTSV := solTSV.DieTemp(0).Max()

	if peakTSV >= peakNo {
		t.Fatalf("TSVs should cool the hotspot: %v vs %v", peakTSV, peakNo)
	}
}

func TestWarmStartFaster(t *testing.T) {
	s := NewStack(testConfig(24, 24))
	s.SetDiePower(0, uniformPower(24, 24, 6))
	sol, cold := s.SolveSteady(nil, SolverOpts{})
	// Small power change, warm start.
	s.SetDiePower(0, uniformPower(24, 24, 6.3))
	_, warm := s.SolveSteady(sol, SolverOpts{})
	if warm.Sweeps >= cold.Sweeps {
		t.Fatalf("warm start should converge faster: %d vs %d sweeps", warm.Sweeps, cold.Sweeps)
	}
}

func TestTransientApproachesSteadyState(t *testing.T) {
	s := NewStack(testConfig(12, 12))
	s.SetDiePower(0, uniformPower(12, 12, 5))
	steady, _ := s.SolveSteady(nil, SolverOpts{Tol: 1e-7})
	// March 2000 x 1 ms = 2 s of heating; thermal time constants of this
	// stack are tens of ms, so we should be at steady state.
	traj := s.SolveTransient(nil, 1e-3, 2000, 0, nil)
	final := traj[len(traj)-1]
	if math.Abs(final.Peak()-steady.Peak()) > 0.05*(steady.Peak()-s.Cfg.Ambient) {
		t.Fatalf("transient end %v differs from steady %v", final.Peak(), steady.Peak())
	}
}

func TestTransientMonotonicHeating(t *testing.T) {
	s := NewStack(testConfig(12, 12))
	s.SetDiePower(0, uniformPower(12, 12, 5))
	traj := s.SolveTransient(nil, 1e-3, 40, 10, nil)
	for i := 1; i < len(traj); i++ {
		if traj[i].Peak() < traj[i-1].Peak()-1e-9 {
			t.Fatalf("heating must be monotonic: step %d %v < %v", i, traj[i].Peak(), traj[i-1].Peak())
		}
	}
}

func TestTransientLowPassesActivity(t *testing.T) {
	// Figure 1: activity toggling much faster than the thermal time constant
	// must produce temperature ripple far smaller than the power swing.
	s := NewStack(testConfig(8, 8))
	s.SetDiePower(0, uniformPower(8, 8, 10))
	warmup := s.SolveTransient(nil, 1e-3, 400, 0, nil)
	base := warmup[len(warmup)-1]
	// Toggle power 0/2x every 100 us for 20 ms.
	traj := s.SolveTransient(base, 1e-4, 200, 1, func(step int) float64 {
		if step%2 == 0 {
			return 2
		}
		return 0
	})
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, sol := range traj[20:] {
		p := sol.Peak()
		if p < lo {
			lo = p
		}
		if p > hi {
			hi = p
		}
	}
	rise := base.Peak() - s.Cfg.Ambient
	ripple := hi - lo
	if ripple > 0.5*rise {
		t.Fatalf("thermal ripple %v should be far below steady rise %v", ripple, rise)
	}
}

func TestDieTempDims(t *testing.T) {
	s := NewStack(testConfig(8, 10))
	s.SetDiePower(0, geom.NewGrid(8, 10))
	sol, _ := s.SolveSteady(nil, SolverOpts{})
	dt := sol.DieTemp(1)
	if dt.NX != 8 || dt.NY != 10 {
		t.Fatalf("dims %dx%d", dt.NX, dt.NY)
	}
}

func TestPowerMapDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s := NewStack(testConfig(8, 8))
	s.SetDiePower(0, geom.NewGrid(4, 4))
}

func TestLayerStackStructure(t *testing.T) {
	ls := buildLayers(2)
	names := map[string]bool{}
	tsvLayers := 0
	active := 0
	for _, l := range ls {
		names[l.Name] = true
		if l.TSVMixed {
			tsvLayers++
		}
		if l.PowerDie >= 0 {
			active++
		}
	}
	if !names["package"] || !names["sink"] || !names["tim"] {
		t.Fatal("missing boundary layers")
	}
	if tsvLayers != 2 {
		t.Fatalf("two-die stack needs the lower BEOL and the bond layer TSV-mixed, got %d", tsvLayers)
	}
	if active != 2 {
		t.Fatalf("need 2 active layers, got %d", active)
	}
}

func TestFastEstimatorTracksDetailed(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	nx := 32
	cfg := testConfig(nx, nx)
	fe := CalibrateFast(cfg)

	// A two-blob power pattern.
	p0 := geom.NewGrid(nx, nx)
	for j := 4; j < 10; j++ {
		for i := 4; i < 10; i++ {
			p0.Set(i, j, 0.2)
		}
	}
	for j := 20; j < 28; j++ {
		for i := 20; i < 28; i++ {
			p0.Set(i, j, 0.05)
		}
	}
	p1 := geom.NewGrid(nx, nx)

	s := NewStack(cfg)
	s.SetDiePower(0, p0)
	s.SetDiePower(1, p1)
	sol, _ := s.SolveSteady(nil, SolverOpts{})
	detailed := sol.DieTemp(0)

	est := fe.EstimateDie([]*geom.Grid{p0, p1}, 0)

	// The estimator must reproduce the spatial pattern: Pearson correlation
	// of the two maps should be strongly positive.
	r := pearson(detailed.Data, est.Data)
	if r < 0.85 {
		t.Fatalf("fast estimator poorly correlated with detailed solver: r=%v", r)
	}
	// And the hot blob must be hotter than the cool blob in both.
	if est.At(7, 7) <= est.At(24, 24) {
		t.Fatal("fast estimator lost the power ordering")
	}
}

func TestGaussianBlurPreservesMass(t *testing.T) {
	g := geom.NewGrid(16, 16)
	g.Set(8, 8, 3)
	b := gaussianBlur(g, 2.0, 1)
	if math.Abs(b.Sum()-3) > 1e-9 {
		t.Fatalf("blur changed total mass: %v", b.Sum())
	}
}

func TestGaussianBlurZeroSigmaIdentity(t *testing.T) {
	g := geom.NewGrid(4, 4)
	g.Set(1, 2, 5)
	b := gaussianBlur(g, 0, 1)
	for i := range g.Data {
		if g.Data[i] != b.Data[i] {
			t.Fatal("sigma=0 must be identity")
		}
	}
}

func TestReflectIndex(t *testing.T) {
	cases := []struct{ in, n, want int }{
		{-1, 8, 0}, {-2, 8, 1}, {8, 8, 7}, {9, 8, 6}, {3, 8, 3},
	}
	for _, c := range cases {
		if got := reflect(c.in, c.n); got != c.want {
			t.Errorf("reflect(%d,%d) = %d want %d", c.in, c.n, got, c.want)
		}
	}
}

func pearson(a, b []float64) float64 {
	n := float64(len(a))
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= n
	mb /= n
	var num, da, db float64
	for i := range a {
		x, y := a[i]-ma, b[i]-mb
		num += x * y
		da += x * x
		db += y * y
	}
	if da == 0 || db == 0 {
		return 0
	}
	return num / math.Sqrt(da*db)
}

func TestMonolithicStackStructure(t *testing.T) {
	cfg := MonolithicConfig(8, 8, 4000, 4000, 3)
	s := NewStack(cfg)
	active, ilds := 0, 0
	for _, l := range s.Layers {
		if l.PowerDie >= 0 {
			active++
		}
		if l.TSVMixed {
			ilds++
		}
	}
	if active != 3 {
		t.Fatalf("active tiers %d, want 3", active)
	}
	if ilds != 2 {
		t.Fatalf("ILD/MIV layers %d, want 2", ilds)
	}
	if s.Gaps() != 2 {
		t.Fatalf("gaps %d", s.Gaps())
	}
}

// TestMonolithicCouplesTiersMoreStrongly: the paper's footnote — monolithic
// integration's thin ILD couples tiers far more than a TSV-based bond, so
// heat injected in one tier raises the other tier's temperature much closer
// to its own.
func TestMonolithicCouplesTiersMoreStrongly(t *testing.T) {
	const n = 16
	coupling := func(cfg Config) float64 {
		s := NewStack(cfg)
		p := geom.NewGrid(n, n)
		p.Set(n/2, n/2, 3)
		s.SetDiePower(0, p)
		sol, _ := s.SolveSteady(nil, SolverOpts{})
		amb := cfg.Ambient
		rise0 := sol.DieTemp(0).Max() - amb
		rise1 := sol.DieTemp(1).Max() - amb
		return rise1 / rise0
	}
	tsvBased := coupling(DefaultConfig(n, n, 4000, 4000, 2))
	mono := coupling(MonolithicConfig(n, n, 4000, 4000, 2))
	if mono <= tsvBased {
		t.Fatalf("monolithic coupling %v should exceed TSV-based %v", mono, tsvBased)
	}
	if mono < 0.9 {
		t.Fatalf("monolithic tiers should be nearly isothermal: coupling %v", mono)
	}
}

func TestMonolithicSolves(t *testing.T) {
	cfg := MonolithicConfig(12, 12, 4000, 4000, 2)
	s := NewStack(cfg)
	p := geom.NewGrid(12, 12)
	p.Fill(5.0 / 144)
	s.SetDiePower(0, p)
	s.SetDiePower(1, p)
	sol, st := s.SolveSteady(nil, SolverOpts{Tol: 1e-6})
	if !st.Converged {
		t.Fatal("did not converge")
	}
	in, out := sol.EnergyBalance()
	if math.Abs(in-out)/in > 0.01 {
		t.Fatalf("energy imbalance %v vs %v", in, out)
	}
}
