// Package noiseinject implements the prior-art countermeasure the paper
// positions itself against (Gu et al., "Thermal-aware 3D design for
// side-channel information leakage", ICCD 2016): runtime controllers that
// "inject dummy activities" to smooth the thermal profile and hinder
// thermal profiling of module activity.
//
// The paper's critique, which this package lets you reproduce
// (BenchmarkPriorArtNoiseInjection): (1) the injection principle costs
// extra power — prohibitive for thermally-constrained 3D ICs — and (2) the
// best leakage-mitigation rates are only achievable for the highest
// injection rates, whereas TSC-aware floorplanning achieves its mitigation
// at design time for a few percent of power.
package noiseinject

import (
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/leakage"
	"repro/internal/thermal"
)

// Result reports one injection experiment.
type Result struct {
	// Alpha is the injection budget as a fraction of nominal power.
	Alpha float64
	// InjectedW is the dummy power actually spent.
	InjectedW float64
	// R holds the per-die power-temperature correlation AFTER injection,
	// measured against the true (secret) power maps — what an attacker
	// profiling module activity can still extract.
	R []float64
	// PeakTempK after injection.
	PeakTempK float64
}

// Controller is the runtime noise injector: it reads the thermal map (as
// the on-chip controllers of the prior art do via sensors), finds the cool
// regions, and injects dummy activity there to flatten the profile.
type Controller struct {
	// Granularity is the number of coolest bins targeted per die.
	// Defaults to a quarter of the bins.
	Granularity int
}

// Smooth runs the injection against a floorplanned result: dummy power
// totalling alpha * (design power) is spread over the coolest bins of each
// die (proportionally to each die's share of the budget), the steady state
// is re-solved, and the remaining leakage is measured against the original
// secret power maps.
func (c Controller) Smooth(res *core.Result, alpha float64) Result {
	dies := res.Layout.Dies
	out := Result{Alpha: alpha, R: make([]float64, dies)}

	// Budget per die: proportional to the die's nominal power (the
	// controllers of the prior art are per-die/per-layer).
	totalP := 0.0
	dieP := make([]float64, dies)
	for d := 0; d < dies; d++ {
		dieP[d] = res.PowerMaps[d].Sum()
		totalP += dieP[d]
	}

	injected := make([]*geom.Grid, dies)
	for d := 0; d < dies; d++ {
		budget := alpha * dieP[d]
		out.InjectedW += budget
		injected[d] = c.injectionMap(res.TempMaps[d], res.PowerMaps[d], budget)
	}

	// Re-solve with secret + dummy power.
	stack := res.Stack
	for d := 0; d < dies; d++ {
		combined := res.PowerMaps[d].Clone()
		combined.AddGrid(injected[d])
		stack.SetDiePower(d, combined)
	}
	sol, _ := stack.SolveSteady(nil, thermal.SolverOpts{})
	for d := 0; d < dies; d++ {
		out.R[d] = leakage.Pearson(res.PowerMaps[d], sol.DieTemp(d))
		stack.SetDiePower(d, res.PowerMaps[d]) // restore
	}
	out.PeakTempK = sol.Peak()
	return out
}

// injectionMap builds the dummy-power map: the budget is spread over the
// coolest bins, weighted by how far below the die's hottest bin they sit —
// the flattening heuristic of the runtime controllers.
func (c Controller) injectionMap(temp, power *geom.Grid, budget float64) *geom.Grid {
	n := temp.NX * temp.NY
	gran := c.Granularity
	if gran <= 0 {
		gran = n / 4
	}
	type bin struct {
		idx int
		t   float64
	}
	bins := make([]bin, n)
	for i := 0; i < n; i++ {
		bins[i] = bin{i, temp.Data[i]}
	}
	sort.Slice(bins, func(a, b int) bool { return bins[a].t < bins[b].t })
	if gran > n {
		gran = n
	}
	hottest := temp.Max()
	weights := make([]float64, gran)
	wsum := 0.0
	for k := 0; k < gran; k++ {
		w := hottest - bins[k].t
		if w <= 0 {
			w = 1e-12
		}
		weights[k] = w
		wsum += w
	}
	out := geom.NewGrid(temp.NX, temp.NY)
	if wsum <= 0 || budget <= 0 {
		return out
	}
	for k := 0; k < gran; k++ {
		out.Data[bins[k].idx] = budget * weights[k] / wsum
	}
	return out
}

// Sweep evaluates injection rates and returns one Result per alpha —
// the prior art's mitigation-vs-power trade-off curve.
func (c Controller) Sweep(res *core.Result, alphas []float64) []Result {
	out := make([]Result, 0, len(alphas))
	for _, a := range alphas {
		out = append(out, c.Smooth(res, a))
	}
	return out
}

// MeanAbsR averages |R| over dies.
func (r Result) MeanAbsR() float64 {
	if len(r.R) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range r.R {
		s += math.Abs(v)
	}
	return s / float64(len(r.R))
}
