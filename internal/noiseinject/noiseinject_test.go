package noiseinject

import (
	"math"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/geom"
)

var (
	once    sync.Once
	baseRes *core.Result
)

func result(t *testing.T) *core.Result {
	t.Helper()
	once.Do(func() {
		des := bench.MustGenerate("n100")
		r, err := core.Run(des, core.Config{
			Mode: core.PowerAware, GridN: 16, SAIterations: 120,
			ActivitySamples: 6, Seed: 31,
		})
		if err != nil {
			t.Fatal(err)
		}
		baseRes = r
	})
	return baseRes
}

func TestZeroInjectionIsBaseline(t *testing.T) {
	res := result(t)
	r := Controller{}.Smooth(res, 0)
	if r.InjectedW != 0 {
		t.Fatalf("injected %v at alpha 0", r.InjectedW)
	}
	// Correlations must match the result's verified metrics closely.
	if math.Abs(r.R[0]-res.Metrics.R1) > 0.02 {
		t.Fatalf("baseline r %v vs metrics %v", r.R[0], res.Metrics.R1)
	}
}

func TestInjectionReducesCorrelation(t *testing.T) {
	res := result(t)
	ctl := Controller{}
	low := ctl.Smooth(res, 0.1)
	high := ctl.Smooth(res, 0.8)
	if high.MeanAbsR() >= low.MeanAbsR() {
		t.Fatalf("more injection must decorrelate more: %.3f (0.8) vs %.3f (0.1)",
			high.MeanAbsR(), low.MeanAbsR())
	}
}

func TestInjectionCostsPowerAndHeat(t *testing.T) {
	res := result(t)
	ctl := Controller{}
	none := ctl.Smooth(res, 0)
	lots := ctl.Smooth(res, 0.5)
	wantInjected := 0.5 * (res.PowerMaps[0].Sum() + res.PowerMaps[1].Sum())
	if math.Abs(lots.InjectedW-wantInjected) > 1e-9 {
		t.Fatalf("injected %v, want %v", lots.InjectedW, wantInjected)
	}
	if lots.PeakTempK <= none.PeakTempK {
		t.Fatalf("injection must heat the stack: %v vs %v", lots.PeakTempK, none.PeakTempK)
	}
}

func TestSweepMonotoneBudget(t *testing.T) {
	res := result(t)
	rs := Controller{}.Sweep(res, []float64{0, 0.2, 0.4})
	if len(rs) != 3 {
		t.Fatal("sweep length")
	}
	for i := 1; i < len(rs); i++ {
		if rs[i].InjectedW <= rs[i-1].InjectedW {
			t.Fatal("budget must grow with alpha")
		}
	}
}

func TestInjectionMapTargetsCoolBins(t *testing.T) {
	temp := geom.NewGrid(4, 4)
	power := geom.NewGrid(4, 4)
	// Hot top row, cool bottom row.
	for i := 0; i < 4; i++ {
		temp.Set(i, 3, 400)
		temp.Set(i, 0, 300)
		temp.Set(i, 1, 310)
		temp.Set(i, 2, 390)
	}
	m := Controller{Granularity: 4}.injectionMap(temp, power, 1.0)
	if math.Abs(m.Sum()-1.0) > 1e-9 {
		t.Fatalf("budget not conserved: %v", m.Sum())
	}
	// All mass in the coolest row (4 coolest bins are row 0).
	for i := 0; i < 4; i++ {
		if m.At(i, 3) != 0 {
			t.Fatal("injected into the hottest row")
		}
		if m.At(i, 0) <= 0 {
			t.Fatal("coolest row got nothing")
		}
	}
}

func TestInjectionMapZeroBudget(t *testing.T) {
	temp := geom.NewGrid(4, 4)
	m := Controller{}.injectionMap(temp, geom.NewGrid(4, 4), 0)
	if m.Sum() != 0 {
		t.Fatal("zero budget must inject nothing")
	}
}
