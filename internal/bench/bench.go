// Package bench generates the block-level benchmarks of the paper's Table 1.
//
// The original GSRC (n100/n200/n300) and IBM-HB+ (ibm01/ibm03/ibm07) files
// are not redistributable inside this offline module, so we synthesize
// deterministic stand-ins that match every column of Table 1: the module
// count and hard/soft mix, the footprint scale factor, the net count, the
// terminal-pin count, the fixed die outline, and the 1.0 V power budget.
// The paper itself scales the originals ("we scale up the modules'
// footprints in order to obtain sufficiently large dies"), so the
// experiments depend on these aggregate properties rather than the exact
// original geometry.
package bench

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/netlist"
)

// Spec captures one Table 1 row plus the generation knobs.
type Spec struct {
	Name        string
	HardModules int
	SoftModules int
	ScaleFactor float64 // module footprint scale factor (Table 1)
	Nets        int
	Terminals   int
	OutlineMM2  float64 // per-die outline area in mm^2 (Table 1)
	PowerW      float64 // total power at 1.0 V (Table 1)
	Dies        int

	// Utilization is the target module-area / total-placement-area ratio.
	// Table 1 does not fix it; 0 selects the default.
	Utilization float64

	// SensitiveFraction of modules are flagged security-critical (attack
	// targets). 0 selects the default of 5%.
	SensitiveFraction float64

	Seed int64
}

// DefaultUtilization is the packing difficulty used when Spec.Utilization is
// zero. Fixed-outline 3D floorplanning in the paper is "practical yet
// challenging"; 0.55 across two dies reproduces that regime while staying
// solvable in bounded annealing time.
const DefaultUtilization = 0.55

// Table1 returns the specs for all six benchmarks of the paper, in paper
// order.
func Table1() []Spec {
	return []Spec{
		{Name: "n100", HardModules: 0, SoftModules: 100, ScaleFactor: 10, Nets: 885, Terminals: 334, OutlineMM2: 16, PowerW: 7.83, Dies: 2, Seed: 1001},
		{Name: "n200", HardModules: 0, SoftModules: 200, ScaleFactor: 10, Nets: 1585, Terminals: 564, OutlineMM2: 16, PowerW: 7.84, Dies: 2, Seed: 1002},
		{Name: "n300", HardModules: 0, SoftModules: 300, ScaleFactor: 10, Nets: 1893, Terminals: 569, OutlineMM2: 23.04, PowerW: 13.05, Dies: 2, Seed: 1003},
		{Name: "ibm01", HardModules: 246, SoftModules: 665, ScaleFactor: 2, Nets: 5829, Terminals: 246, OutlineMM2: 25, PowerW: 4.02, Dies: 2, Seed: 2001},
		{Name: "ibm03", HardModules: 290, SoftModules: 999, ScaleFactor: 2, Nets: 10279, Terminals: 283, OutlineMM2: 64, PowerW: 19.78, Dies: 2, Seed: 2003},
		{Name: "ibm07", HardModules: 291, SoftModules: 829, ScaleFactor: 2, Nets: 15047, Terminals: 287, OutlineMM2: 64, PowerW: 9.92, Dies: 2, Seed: 2007},
	}
}

// ByName returns the Table 1 spec with the given name.
func ByName(name string) (Spec, error) {
	for _, s := range Table1() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("bench: unknown benchmark %q", name)
}

// MustGenerate is Generate for the named Table 1 benchmark, panicking on
// unknown names (intended for examples and benches).
func MustGenerate(name string) *netlist.Design {
	s, err := ByName(name)
	if err != nil {
		panic(err)
	}
	d, err := Generate(s)
	if err != nil {
		panic(err)
	}
	return d
}

// Generate synthesizes a deterministic design from the spec. The same spec
// always yields the identical design.
func Generate(spec Spec) (*netlist.Design, error) {
	if spec.HardModules < 0 || spec.SoftModules < 0 || spec.HardModules+spec.SoftModules == 0 {
		return nil, fmt.Errorf("bench: invalid module counts %d/%d", spec.HardModules, spec.SoftModules)
	}
	if spec.Nets <= 0 || spec.OutlineMM2 <= 0 || spec.PowerW <= 0 {
		return nil, fmt.Errorf("bench: invalid spec %+v", spec)
	}
	if spec.Dies == 0 {
		spec.Dies = 2
	}
	util := spec.Utilization
	if util == 0 {
		util = DefaultUtilization
	}
	sens := spec.SensitiveFraction
	if sens == 0 {
		sens = 0.05
	}

	rng := rand.New(rand.NewSource(spec.Seed))
	nMod := spec.HardModules + spec.SoftModules

	// Per-die outline: Table 1 reports the per-die area in mm^2; dies are
	// square (the GSRC fixed-outline convention). 1 mm = 1000 um.
	side := math.Sqrt(spec.OutlineMM2) * 1000.0

	d := &netlist.Design{
		Name:     spec.Name,
		OutlineW: side,
		OutlineH: side,
		Dies:     spec.Dies,
	}

	// --- Module areas -----------------------------------------------------
	// Draw lognormal raw areas (GSRC/IBM block-size distributions are heavy
	// tailed), then rescale so that total area = util * dies * outline.
	targetArea := util * float64(spec.Dies) * side * side
	raw := make([]float64, nMod)
	sum := 0.0
	for i := range raw {
		// sigma 0.8 gives ~20x spread between small and large blocks.
		raw[i] = math.Exp(rng.NormFloat64() * 0.8)
		sum += raw[i]
	}
	areaScale := targetArea / sum

	// --- Module powers ----------------------------------------------------
	// Power correlates with area but with noisy per-module density; a few
	// "hot" modules (crypto-like) carry elevated density, mirroring the
	// security modules the paper's attacks target.
	densNoise := make([]float64, nMod)
	for i := range densNoise {
		densNoise[i] = math.Exp(rng.NormFloat64() * 0.5)
	}
	nSens := int(math.Ceil(sens * float64(nMod)))
	sensitive := make(map[int]bool, nSens)
	for len(sensitive) < nSens {
		i := rng.Intn(nMod)
		if !sensitive[i] {
			sensitive[i] = true
			densNoise[i] *= 2.5 // hot security modules
		}
	}
	rawPow := make([]float64, nMod)
	powSum := 0.0
	for i := range rawPow {
		rawPow[i] = raw[i] * densNoise[i]
		powSum += rawPow[i]
	}
	powScale := spec.PowerW / powSum

	for i := 0; i < nMod; i++ {
		area := raw[i] * areaScale
		kind := netlist.Soft
		name := fmt.Sprintf("sb%d", i)
		if i < spec.HardModules {
			kind = netlist.Hard
			name = fmt.Sprintf("hb%d", i)
		}
		// Hard blocks get a fixed aspect ratio in [0.5, 2]; soft blocks are
		// generated square and may be reshaped by the floorplanner.
		aspect := 1.0
		if kind == netlist.Hard {
			aspect = 0.5 + 1.5*rng.Float64()
		}
		h := math.Sqrt(area / aspect)
		w := area / h
		m := &netlist.Module{
			Name: name,
			Kind: kind,
			W:    w, H: h,
			MinAspect: 1.0 / 3.0, MaxAspect: 3.0,
			Power:          rawPow[i] * powScale,
			IntrinsicDelay: moduleDelay(area, rng),
			Sensitive:      sensitive[i],
		}
		if kind == netlist.Hard {
			m.MinAspect, m.MaxAspect = aspect, aspect
		}
		d.Modules = append(d.Modules, m)
	}

	// --- Terminals ----------------------------------------------------------
	// Spread the chip-level I/O pins around the outline boundary.
	for t := 0; t < spec.Terminals; t++ {
		perim := 2 * (d.OutlineW + d.OutlineH)
		pos := perim * float64(t) / float64(spec.Terminals)
		var x, y float64
		switch {
		case pos < d.OutlineW:
			x, y = pos, 0
		case pos < d.OutlineW+d.OutlineH:
			x, y = d.OutlineW, pos-d.OutlineW
		case pos < 2*d.OutlineW+d.OutlineH:
			x, y = 2*d.OutlineW+d.OutlineH-pos, d.OutlineH
		default:
			x, y = 0, perim-pos
		}
		d.Terminals = append(d.Terminals, &netlist.Terminal{
			Name: fmt.Sprintf("p%d", t), X: x, Y: y,
		})
	}

	// --- Nets ----------------------------------------------------------------
	// Degree distribution follows block-level benchmark practice: dominated
	// by 2- and 3-pin nets with a thin high-degree tail. Locality: each net
	// is seeded from a module and preferentially connects to "nearby"
	// modules in index space (a cheap proxy for the logical hierarchy the
	// original netlists encode).
	termNets := spec.Terminals // one net per terminal keeps all I/O connected
	if termNets > spec.Nets {
		termNets = spec.Nets
	}
	for ni := 0; ni < spec.Nets; ni++ {
		n := &netlist.Net{Name: fmt.Sprintf("n%d", ni)}
		deg := netDegree(rng)
		root := rng.Intn(nMod)
		used := map[int]bool{root: true}
		n.Modules = append(n.Modules, root)
		window := 1 + nMod/8
		for len(n.Modules) < deg {
			var cand int
			if rng.Float64() < 0.8 {
				cand = root + rng.Intn(2*window+1) - window
				cand = ((cand % nMod) + nMod) % nMod
			} else {
				cand = rng.Intn(nMod)
			}
			if !used[cand] {
				used[cand] = true
				n.Modules = append(n.Modules, cand)
			}
		}
		if ni < termNets {
			n.Terminals = append(n.Terminals, ni)
		}
		d.Nets = append(d.Nets, n)
	}

	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("bench: generated invalid design: %w", err)
	}
	return d, nil
}

// netDegree draws a net degree: ~60% 2-pin, ~25% 3-pin, thin tail to 12.
func netDegree(rng *rand.Rand) int {
	u := rng.Float64()
	switch {
	case u < 0.60:
		return 2
	case u < 0.85:
		return 3
	case u < 0.95:
		return 4 + rng.Intn(2)
	default:
		return 6 + rng.Intn(7)
	}
}

// moduleDelay estimates an intrinsic module delay in ns from its area; large
// modules have longer internal paths. Calibrated so the biggest benchmark
// blocks land near the paper's critical delays (Table 2: 0.78 - 3.8 ns).
func moduleDelay(areaUM2 float64, rng *rand.Rand) float64 {
	// ~sqrt(area) in mm scaled to a fraction of a ns, with 20% jitter.
	base := 0.05 + 0.12*math.Sqrt(areaUM2)/1000.0
	return base * (0.8 + 0.4*rng.Float64())
}
