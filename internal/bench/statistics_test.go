package bench

import (
	"math"
	"testing"
)

// TestNetDegreeDistribution: the synthesized netlists follow block-level
// benchmark practice — dominated by 2- and 3-pin nets with a thin
// high-degree tail.
func TestNetDegreeDistribution(t *testing.T) {
	d := MustGenerate("ibm03")
	hist := d.DegreeHistogram()
	total := len(d.Nets)
	twoThree := float64(hist[2]+hist[3]) / float64(total)
	if twoThree < 0.7 {
		t.Fatalf("2/3-pin nets only %.2f of nets; want the large majority", twoThree)
	}
	maxDeg := 0
	for deg := range hist {
		if deg > maxDeg {
			maxDeg = deg
		}
	}
	if maxDeg < 6 {
		t.Fatalf("expected a high-degree tail, max degree %d", maxDeg)
	}
	if maxDeg > 16 {
		t.Fatalf("degree tail implausibly fat: %d", maxDeg)
	}
}

// TestNetLocality: nets preferentially connect nearby modules in index
// space (the hierarchy proxy), so the mean index span of a net must be far
// below the uniform-random expectation.
func TestNetLocality(t *testing.T) {
	d := MustGenerate("n300")
	n := len(d.Modules)
	meanSpan := 0.0
	for _, net := range d.Nets {
		lo, hi := n, 0
		for _, m := range net.Modules {
			if m < lo {
				lo = m
			}
			if m > hi {
				hi = m
			}
		}
		span := hi - lo
		// Circular locality window: spans near n wrap; fold them.
		if span > n/2 {
			span = n - span
		}
		meanSpan += float64(span)
	}
	meanSpan /= float64(len(d.Nets))
	// Uniform random pairs on a circle of n modules average ~n/4.
	if meanSpan > float64(n)/5 {
		t.Fatalf("mean net span %v too large; locality missing (n=%d)", meanSpan, n)
	}
}

// TestAreaDistributionHeavyTailed: block areas span at least an order of
// magnitude (lognormal sizes), like the real GSRC/IBM suites.
func TestAreaDistributionHeavyTailed(t *testing.T) {
	d := MustGenerate("ibm01")
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, m := range d.Modules {
		a := m.Area()
		if a < lo {
			lo = a
		}
		if a > hi {
			hi = a
		}
	}
	if hi/lo < 10 {
		t.Fatalf("area spread %v too uniform", hi/lo)
	}
}

// TestTerminalsOnAllFourSides: I/O pads wrap the whole outline.
func TestTerminalsOnAllFourSides(t *testing.T) {
	d := MustGenerate("n200")
	var bottom, right, top, left int
	for _, term := range d.Terminals {
		switch {
		case term.Y == 0:
			bottom++
		case term.X == d.OutlineW:
			right++
		case term.Y == d.OutlineH:
			top++
		case term.X == 0:
			left++
		}
	}
	if bottom == 0 || right == 0 || top == 0 || left == 0 {
		t.Fatalf("terminals missing from a side: %d %d %d %d", bottom, right, top, left)
	}
}

// TestPowerBudgetSplitAcrossModules: no single module dominates the budget
// (the generator bounds density noise), yet the hottest module is clearly
// above the mean — there must be attack-worthy targets.
func TestPowerBudgetSplitAcrossModules(t *testing.T) {
	d := MustGenerate("n100")
	mean := d.TotalPower() / float64(len(d.Modules))
	maxP := 0.0
	for _, m := range d.Modules {
		if m.Power > maxP {
			maxP = m.Power
		}
	}
	if maxP > 0.5*d.TotalPower() {
		t.Fatalf("one module carries %.0f%% of the budget", 100*maxP/d.TotalPower())
	}
	if maxP < 2*mean {
		t.Fatalf("hottest module (%v) too close to the mean (%v); no targets", maxP, mean)
	}
}
