package bench

import (
	"math"
	"testing"

	"repro/internal/netlist"
)

func TestTable1SpecsComplete(t *testing.T) {
	specs := Table1()
	if len(specs) != 6 {
		t.Fatalf("want 6 benchmarks, got %d", len(specs))
	}
	wantNames := []string{"n100", "n200", "n300", "ibm01", "ibm03", "ibm07"}
	for i, s := range specs {
		if s.Name != wantNames[i] {
			t.Errorf("spec %d: name %q want %q", i, s.Name, wantNames[i])
		}
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("ibm03")
	if err != nil {
		t.Fatal(err)
	}
	if s.Nets != 10279 {
		t.Fatalf("ibm03 nets = %d", s.Nets)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected error for unknown benchmark")
	}
}

// TestTable1Properties verifies that every generated benchmark matches its
// Table 1 row: module counts and mix, net count, terminal count, outline,
// and 1.0 V power budget.
func TestTable1Properties(t *testing.T) {
	for _, spec := range Table1() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			d, err := Generate(spec)
			if err != nil {
				t.Fatal(err)
			}
			if got := len(d.Modules); got != spec.HardModules+spec.SoftModules {
				t.Errorf("modules = %d, want %d", got, spec.HardModules+spec.SoftModules)
			}
			if got := d.HardCount(); got != spec.HardModules {
				t.Errorf("hard = %d, want %d", got, spec.HardModules)
			}
			if got := d.SoftCount(); got != spec.SoftModules {
				t.Errorf("soft = %d, want %d", got, spec.SoftModules)
			}
			if got := len(d.Nets); got != spec.Nets {
				t.Errorf("nets = %d, want %d", got, spec.Nets)
			}
			if got := len(d.Terminals); got != spec.Terminals {
				t.Errorf("terminals = %d, want %d", got, spec.Terminals)
			}
			outlineMM2 := d.OutlineW * d.OutlineH / 1e6
			if math.Abs(outlineMM2-spec.OutlineMM2) > 1e-6*spec.OutlineMM2 {
				t.Errorf("outline = %v mm^2, want %v", outlineMM2, spec.OutlineMM2)
			}
			if p := d.TotalPower(); math.Abs(p-spec.PowerW) > 1e-9*spec.PowerW {
				t.Errorf("power = %v W, want %v", p, spec.PowerW)
			}
			if d.Dies != 2 {
				t.Errorf("dies = %d, want 2", d.Dies)
			}
			if err := d.Validate(); err != nil {
				t.Errorf("generated design invalid: %v", err)
			}
		})
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec, _ := ByName("n100")
	a, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Modules {
		if *a.Modules[i] != *b.Modules[i] {
			t.Fatalf("module %d differs between runs", i)
		}
	}
	for i := range a.Nets {
		if len(a.Nets[i].Modules) != len(b.Nets[i].Modules) {
			t.Fatalf("net %d differs", i)
		}
		for j := range a.Nets[i].Modules {
			if a.Nets[i].Modules[j] != b.Nets[i].Modules[j] {
				t.Fatalf("net %d pin %d differs", i, j)
			}
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	spec, _ := ByName("n100")
	a, _ := Generate(spec)
	spec.Seed = 999
	b, _ := Generate(spec)
	same := true
	for i := range a.Modules {
		if a.Modules[i].W != b.Modules[i].W {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should produce different module geometry")
	}
}

func TestUtilizationInTargetBand(t *testing.T) {
	for _, spec := range Table1() {
		d, err := Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		u := d.Utilization()
		if math.Abs(u-DefaultUtilization) > 1e-6 {
			t.Errorf("%s: utilization %v, want %v", spec.Name, u, DefaultUtilization)
		}
	}
}

func TestSensitiveModulesPresent(t *testing.T) {
	d := MustGenerate("n100")
	n := 0
	for _, m := range d.Modules {
		if m.Sensitive {
			n++
		}
	}
	if n != 5 { // 5% of 100
		t.Fatalf("sensitive modules = %d, want 5", n)
	}
}

func TestNetDegreesValid(t *testing.T) {
	d := MustGenerate("ibm01")
	for _, n := range d.Nets {
		if n.Degree() < 2 {
			t.Fatalf("net %s degree %d", n.Name, n.Degree())
		}
		seen := map[int]bool{}
		for _, mi := range n.Modules {
			if seen[mi] {
				t.Fatalf("net %s has duplicate pin on module %d", n.Name, mi)
			}
			seen[mi] = true
		}
	}
}

func TestHardModulesFixedAspect(t *testing.T) {
	d := MustGenerate("ibm01")
	for _, m := range d.Modules {
		if m.Kind == netlist.Hard && m.MinAspect != m.MaxAspect {
			t.Fatalf("hard module %s has flexible aspect", m.Name)
		}
	}
}

func TestGenerateRejectsBadSpecs(t *testing.T) {
	bad := []Spec{
		{Name: "x", SoftModules: 0, HardModules: 0, Nets: 10, OutlineMM2: 1, PowerW: 1},
		{Name: "x", SoftModules: 5, Nets: 0, OutlineMM2: 1, PowerW: 1},
		{Name: "x", SoftModules: 5, Nets: 10, OutlineMM2: 0, PowerW: 1},
		{Name: "x", SoftModules: 5, Nets: 10, OutlineMM2: 1, PowerW: 0},
	}
	for i, s := range bad {
		if _, err := Generate(s); err == nil {
			t.Errorf("spec %d should be rejected", i)
		}
	}
}

func TestModuleDelaysPositive(t *testing.T) {
	d := MustGenerate("n300")
	for _, m := range d.Modules {
		if m.IntrinsicDelay <= 0 {
			t.Fatalf("module %s has non-positive delay", m.Name)
		}
		if m.IntrinsicDelay > 5 {
			t.Fatalf("module %s delay %v ns implausibly large", m.Name, m.IntrinsicDelay)
		}
	}
}

func TestPowerDensitySpread(t *testing.T) {
	d := MustGenerate("n100")
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, m := range d.Modules {
		pd := m.PowerDensity()
		if pd < lo {
			lo = pd
		}
		if pd > hi {
			hi = pd
		}
	}
	if hi/lo < 3 {
		t.Fatalf("power densities too uniform: spread %v", hi/lo)
	}
}
