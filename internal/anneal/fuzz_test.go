package anneal

import (
	"math"
	"math/rand"
	"testing"
)

// FuzzAnnealReplicaSwap drives RunParallel through randomized temperature
// ladders, swap cadences, and replica/speculation shapes on the incremental
// toy problem, and checks the per-replica journal invariants at every swap
// barrier: each copy's incrementally patched cost must match a from-scratch
// recompute within 1e-9 relative, and all speculative copies of a replica
// must stay byte-identical in state, cached cost, and evaluation count.
func FuzzAnnealReplicaSwap(f *testing.F) {
	f.Add(int64(1), int64(2), int64(1), int64(400), int64(0), 1.5)
	f.Add(int64(7), int64(4), int64(3), int64(900), int64(35), 2.25)
	f.Add(int64(42), int64(3), int64(2), int64(777), int64(120), 1.05)

	f.Fuzz(func(t *testing.T, seed, k, m, iters, swapEvery int64, ladder float64) {
		K := int(mod(k, 4)) + 2 // 2..5 replicas
		M := int(mod(m, 3)) + 1 // 1..3 speculative copies
		budget := int(mod(iters, 1500)) + 50
		se := int(mod(swapEvery, 200)) // 0 picks the chain-multiple default
		if math.IsNaN(ladder) || math.IsInf(ladder, 0) || ladder < 0.2 || ladder > 8 {
			ladder = 1.5
		}

		reps := make([]Replica, K)
		sums := make([][]*incrSum, K)
		root := rand.New(rand.NewSource(seed))
		for r := range reps {
			rng := rand.New(rand.NewSource(root.Int63()))
			reps[r], sums[r] = specReplica(9, M, rng)
		}

		check := func(when string) {
			for r := range sums {
				primary := sums[r][0]
				primary.checkInvariant(t, when)
				for c := 1; c < len(sums[r]); c++ {
					cp := sums[r][c]
					cp.checkInvariant(t, when)
					for i := range cp.x {
						if cp.x[i] != primary.x[i] {
							t.Fatalf("%s: replica %d copy %d state diverged at %d", when, r, c, i)
						}
					}
					if cp.cached != primary.cached || cp.evals != primary.evals {
						t.Fatalf("%s: replica %d copy %d out of lockstep (cached %v/%v, evals %d/%d)",
							when, r, c, cp.cached, primary.cached, cp.evals, primary.evals)
					}
					// Diff-bookkeeping lockstep: outside either copy's
					// pending set the mirrors must agree byte-exactly.
					// A committed-winner replay legitimately leaves the
					// replayed index pending on loser copies (mirror
					// sync deferred to the next Cost), so those indices
					// are exempt; everything else diverging means a
					// freeze/rollback path smeared the bookkeeping.
					pend := make(map[int]bool, len(cp.pending)+len(primary.pending))
					for _, i := range cp.pending {
						pend[i] = true
					}
					for _, i := range primary.pending {
						pend[i] = true
					}
					for i := range cp.mirror {
						if !pend[i] && cp.mirror[i] != primary.mirror[i] {
							t.Fatalf("%s: replica %d copy %d mirror diverged at %d (%v vs %v)",
								when, r, c, i, cp.mirror[i], primary.mirror[i])
						}
					}
				}
			}
		}

		res := RunParallel(reps, ParallelOptions{
			Schedule:     Options{Iterations: budget},
			SwapEvery:    se,
			LadderFactor: ladder,
			SwapSeed:     seed ^ 0x5DEECE66D,
			OnStride:     func(done, total int, best float64) { check("post-swap barrier") },
		})
		check("final")

		total := 0
		for r := range res.Replicas {
			if got := res.Replicas[r].Iterations; got > budget {
				t.Fatalf("replica %d overran its budget: %d > %d", r, got, budget)
			}
			total += res.Replicas[r].Iterations
		}
		if total != K*budget {
			t.Fatalf("fleet consumed %d moves, want %d", total, K*budget)
		}
		if res.SwapAccepts > res.SwapAttempts {
			t.Fatalf("swap accepts %d exceed attempts %d", res.SwapAccepts, res.SwapAttempts)
		}
		if res.Best < 0 || res.Best >= K {
			t.Fatalf("best index %d out of range", res.Best)
		}
		for r := range res.Replicas {
			if res.Replicas[r].BestCost < res.BestCost {
				t.Fatalf("replica %d best %v beats the reported fleet best %v",
					r, res.Replicas[r].BestCost, res.BestCost)
			}
		}
	})
}

// mod is a non-negative modulus for fuzz-provided int64s.
func mod(v, n int64) int64 {
	r := v % n
	if r < 0 {
		r += n
	}
	return r
}
