package anneal

import (
	"math"
	"math/rand"
	"testing"
)

func TestOptionsDefaults(t *testing.T) {
	var o Options
	o.defaults()
	if o.Iterations != 5000 || o.ChainLength != 100 {
		t.Fatalf("defaults: %+v", o)
	}
	if o.InitAcceptProb != 0.8 || o.CalibrationMoves != 50 {
		t.Fatalf("defaults: %+v", o)
	}
	// Alpha chosen so T decays to 1e-4 over all chains.
	chains := float64(o.Iterations) / float64(o.ChainLength)
	if math.Abs(math.Pow(o.Alpha, chains)-1e-4) > 1e-9 {
		t.Fatalf("alpha %v does not hit the target decay", o.Alpha)
	}
}

func TestOptionsChainLengthFloor(t *testing.T) {
	o := Options{Iterations: 10}
	o.defaults()
	if o.ChainLength < 1 {
		t.Fatal("chain length must be at least 1")
	}
}

func TestExplicitAlphaRespected(t *testing.T) {
	o := Options{Alpha: 0.5}
	o.defaults()
	if o.Alpha != 0.5 {
		t.Fatal("explicit alpha overridden")
	}
}

func TestValidate(t *testing.T) {
	good := []Options{
		{}, // zero value = default schedule
		{Iterations: 100, ChainLength: 10, InitAcceptProb: 0.5, Alpha: 0.9, CalibrationMoves: 5},
		{InitAcceptProb: 1e-9}, // effectively-greedy, representable
	}
	for i, o := range good {
		if err := o.Validate(); err != nil {
			t.Fatalf("good[%d] rejected: %v", i, err)
		}
	}
	bad := []Options{
		{Iterations: -1},
		{ChainLength: -5},
		{CalibrationMoves: -1},
		{InitAcceptProb: -0.1},
		{InitAcceptProb: 1.0}, // exp calibration needs p < 1
		{Alpha: -0.5},
		{Alpha: 1.0}, // no cooling: the schedule never converges
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Fatalf("bad[%d] accepted: %+v", i, o)
		}
	}
}

// TestZeroValueAmbiguityDocumented pins the collision the docs call out: an
// explicit "zero" is indistinguishable from "default" after defaulting, so
// the representable stand-ins must behave as documented.
func TestZeroValueAmbiguityDocumented(t *testing.T) {
	// InitAcceptProb == 0 silently becomes the default 0.8 ...
	o := Options{InitAcceptProb: 0}
	o.defaults()
	if o.InitAcceptProb != 0.8 {
		t.Fatalf("zero InitAcceptProb must default to 0.8, got %v", o.InitAcceptProb)
	}
	// ... and ChainLength == 0 tracks the iteration budget.
	a := Options{Iterations: 1000}
	a.defaults()
	b := Options{Iterations: 4000}
	b.defaults()
	if a.ChainLength*4 != b.ChainLength {
		t.Fatalf("derived chain length must scale with the budget: %d vs %d", a.ChainLength, b.ChainLength)
	}
}

// TestColdAnnealIsGreedy: with a tiny InitAcceptProb the search degenerates
// toward hill climbing — uphill accepts should be rarer than at the default.
func TestColdAnnealIsGreedy(t *testing.T) {
	mk := func(p float64) int {
		q := &quadratic{x: make([]float64, 8), target: 0, step: 1}
		res := Run(q, Options{Iterations: 4000, InitAcceptProb: p},
			rand.New(rand.NewSource(12)))
		return res.Uphill
	}
	hot := mk(0.95)
	cold := mk(0.01)
	if cold >= hot {
		t.Fatalf("cold start should accept fewer uphill moves: %d vs %d", cold, hot)
	}
}

// TestBestSnapshotUsable: OnBest must fire at the moment the state holds
// the best cost, so a clone taken there reproduces BestCost.
func TestBestSnapshotUsable(t *testing.T) {
	q := &quadratic{x: make([]float64, 6), target: 1, step: 0.5}
	var bestX []float64
	res := Run(q, Options{Iterations: 8000, OnBest: func(c float64) {
		bestX = append(bestX[:0], q.x...)
	}}, rand.New(rand.NewSource(13)))
	snap := &quadratic{x: bestX, target: 1, step: 0.5}
	if math.Abs(snap.Cost()-res.BestCost) > 1e-12 {
		t.Fatalf("snapshot cost %v != best %v", snap.Cost(), res.BestCost)
	}
}
