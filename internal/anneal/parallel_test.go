package anneal

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"runtime"
	"testing"
	"time"
)

// incrSum is the incremental-cost model problem for the parallel harness:
// cost = Σ (x_i − target_i)², held as a running cached sum patched on every
// move — the float-drift hazard the real evaluator's journal contract guards
// against — with the journaled undo restoring the cached value byte-exactly,
// as the evaluator's rollback does. FullCost is the from-scratch reference
// the 1e-9 invariant is checked against.
type incrSum struct {
	x      []float64
	target []float64
	cached float64
	// evals counts Cost calls, mirroring the evaluator's stride counter that
	// speculative copies must keep in lockstep.
	evals int
	// mirror/pending model the evaluator's exact-diff bookkeeping: mirror is
	// the state as of the last Cost (the evaluator's changed-set mirror),
	// pending the indices perturbed since then (the evaluator's pending
	// move, which must survive the undo of a move it was folded into — the
	// speculative loser-replay protocol). Cost absorbs pending into mirror;
	// outside pending, mirror must stay byte-identical to x.
	mirror  []float64
	pending []int
}

func newIncrSum(n int, rng *rand.Rand) *incrSum {
	p := &incrSum{x: make([]float64, n), target: make([]float64, n)}
	for i := range p.x {
		p.x[i] = rng.NormFloat64()
		p.target[i] = rng.NormFloat64()
	}
	p.cached = p.FullCost()
	p.mirror = append([]float64(nil), p.x...)
	return p
}

func (p *incrSum) Clone() *incrSum {
	return &incrSum{
		x:       append([]float64(nil), p.x...),
		target:  append([]float64(nil), p.target...),
		cached:  p.cached,
		evals:   p.evals,
		mirror:  append([]float64(nil), p.mirror...),
		pending: append([]int(nil), p.pending...),
	}
}

func (p *incrSum) FullCost() float64 {
	c := 0.0
	for i := range p.x {
		d := p.x[i] - p.target[i]
		c += d * d
	}
	return c
}

func (p *incrSum) Cost() float64 {
	p.evals++
	for _, i := range p.pending {
		p.mirror[i] = p.x[i]
	}
	p.pending = p.pending[:0]
	return p.cached
}

func (p *incrSum) Perturb(rng *rand.Rand) func() {
	i := rng.Intn(len(p.x))
	step := (rng.Float64()*2 - 1) * 0.5
	oldX, oldCached, oldMirror := p.x[i], p.cached, p.mirror[i]
	pendLen := len(p.pending)
	od := p.x[i] - p.target[i]
	p.x[i] += step
	nd := p.x[i] - p.target[i]
	p.cached += nd*nd - od*od
	p.pending = append(p.pending, i)
	return func() {
		p.x[i], p.cached = oldX, oldCached
		// Exact-diff rollback: restore the mirror entry (in case a Cost
		// absorbed this move) and truncate pending back to the fold point —
		// a previously pending move survives this undo, exactly like the
		// evaluator's journal rollback.
		p.mirror[i] = oldMirror
		p.pending = p.pending[:pendLen]
	}
}

// checkInvariant pins the journal invariant: the incrementally patched cost
// must track the full recompute within 1e-9 relative.
func (p *incrSum) checkInvariant(t *testing.T, label string) {
	t.Helper()
	full := p.FullCost()
	if d := math.Abs(p.cached - full); d > 1e-9*math.Max(1, math.Abs(full)) {
		t.Fatalf("%s: cached cost %v drifted from full recompute %v (|diff| %g)", label, p.cached, full, d)
	}
	// Diff bookkeeping must be byte-exact, not epsilon-close: outside the
	// pending set the mirror is the state the last Cost saw, and the
	// harness's freeze/rollback/replay paths must never smear it.
	pend := make(map[int]bool, len(p.pending))
	for _, i := range p.pending {
		pend[i] = true
	}
	for i := range p.x {
		if !pend[i] && p.mirror[i] != p.x[i] {
			t.Fatalf("%s: mirror[%d] = %v differs from x[%d] = %v outside the pending set %v",
				label, i, p.mirror[i], i, p.x[i], p.pending)
		}
	}
}

// specReplica builds one replica with m synchronized copies of a fresh
// problem, drawing everything from rng.
func specReplica(n, m int, rng *rand.Rand) (Replica, []*incrSum) {
	base := newIncrSum(n, rng)
	sums := []*incrSum{base}
	probs := []Problem{base}
	for k := 1; k < m; k++ {
		c := base.Clone()
		sums = append(sums, c)
		probs = append(probs, c)
	}
	return Replica{Problems: probs, RNG: rng}, sums
}

// TestRunParallelSingleMatchesRun pins the serial-equivalence contract: one
// replica with one problem copy walks bit-identically to Run on the same RNG
// stream — identical Result fields and identical final state.
func TestRunParallelSingleMatchesRun(t *testing.T) {
	mk := func() *incrSum { return newIncrSum(8, rand.New(rand.NewSource(11))) }
	opts := Options{Iterations: 2000}

	p1 := mk()
	want := Run(p1, opts, rand.New(rand.NewSource(42)))

	p2 := mk()
	got := RunParallel(
		[]Replica{{Problems: []Problem{p2}, RNG: rand.New(rand.NewSource(42))}},
		ParallelOptions{Schedule: opts},
	)
	if got.Replicas[0] != want {
		t.Fatalf("single-replica result diverged from Run:\n got %+v\nwant %+v", got.Replicas[0], want)
	}
	if got.Best != 0 || got.BestCost != want.BestCost {
		t.Fatalf("best bookkeeping diverged: Best=%d BestCost=%v want %v", got.Best, got.BestCost, want.BestCost)
	}
	if got.SpecBatches != 0 || got.SwapAttempts != 0 {
		t.Fatalf("single serial replica reported parallel work: %+v", got)
	}
	if !reflect.DeepEqual(p1.x, p2.x) || p1.cached != p2.cached || p1.evals != p2.evals {
		t.Fatal("final problem state diverged from the serial walk")
	}
}

// buildFleet constructs K replicas × M copies deterministically from a base
// seed, for the determinism tests.
func buildFleet(k, m int) ([]Replica, [][]*incrSum) {
	reps := make([]Replica, k)
	sums := make([][]*incrSum, k)
	for r := range reps {
		rng := rand.New(rand.NewSource(int64(100 + r)))
		reps[r], sums[r] = specReplica(12, m, rng)
	}
	return reps, sums
}

// TestRunParallelDeterministicAcrossGOMAXPROCS is the engine half of the
// determinism contract: fixed seeds and a fixed replica/speculation shape
// give an identical ParallelResult and identical final states for any
// GOMAXPROCS.
func TestRunParallelDeterministicAcrossGOMAXPROCS(t *testing.T) {
	run := func() (ParallelResult, [][]float64) {
		reps, sums := buildFleet(4, 3)
		res := RunParallel(reps, ParallelOptions{
			Schedule: Options{Iterations: 600},
			SwapSeed: 9,
		})
		states := make([][]float64, len(sums))
		for r := range sums {
			states[r] = append([]float64(nil), sums[r][0].x...)
		}
		return res, states
	}

	var ref ParallelResult
	var refStates [][]float64
	for i, procs := range []int{1, 4, 8} {
		old := runtime.GOMAXPROCS(procs)
		res, states := run()
		runtime.GOMAXPROCS(old)
		if i == 0 {
			ref, refStates = res, states
			continue
		}
		if !reflect.DeepEqual(res, ref) {
			t.Fatalf("GOMAXPROCS=%d: result diverged\n got %+v\nwant %+v", procs, res, ref)
		}
		if !reflect.DeepEqual(states, refStates) {
			t.Fatalf("GOMAXPROCS=%d: final replica states diverged", procs)
		}
	}
}

// TestSpeculationKeepsCopiesInLockstep drives one replica with 4 speculative
// copies through a budget that is not a multiple of the batch width (forcing
// clamped batches at chain boundaries) and asserts all copies end
// byte-identical — state, patched cost, and evaluation counters.
func TestSpeculationKeepsCopiesInLockstep(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rep, sums := specReplica(10, 4, rng)
	const budget = 777
	res := RunParallel([]Replica{rep}, ParallelOptions{Schedule: Options{Iterations: budget}})

	if got := res.Replicas[0].Iterations; got != budget {
		t.Fatalf("consumed %d iterations, want the full budget %d", got, budget)
	}
	if res.SpecBatches == 0 || res.SpecCommits == 0 {
		t.Fatalf("speculation did no work: %+v", res)
	}
	if res.SpecDiscarded != budget-res.SpecCommits {
		t.Fatalf("discard accounting off: %d discarded, %d commits, budget %d",
			res.SpecDiscarded, res.SpecCommits, budget)
	}
	if res.Replicas[0].Accepted != res.SpecCommits {
		t.Fatalf("accepted %d != committed batches %d", res.Replicas[0].Accepted, res.SpecCommits)
	}
	primary := sums[0]
	primary.checkInvariant(t, "primary")
	for k, c := range sums[1:] {
		if !reflect.DeepEqual(c.x, primary.x) {
			t.Fatalf("copy %d state diverged from primary", k+1)
		}
		if c.cached != primary.cached {
			t.Fatalf("copy %d cached cost %v != primary %v", k+1, c.cached, primary.cached)
		}
		if c.evals != primary.evals {
			t.Fatalf("copy %d saw %d evals, primary %d — stride counters out of lockstep", k+1, c.evals, primary.evals)
		}
	}
}

// TestLadderAndSwapAccounting checks the temperature ladder spacing and the
// swap bookkeeping on a 4-replica run.
func TestLadderAndSwapAccounting(t *testing.T) {
	reps, sums := buildFleet(4, 1)
	res := RunParallel(reps, ParallelOptions{
		Schedule:     Options{Iterations: 2000},
		LadderFactor: 2,
		SwapSeed:     3,
	})
	for r := 1; r < len(res.Replicas); r++ {
		ratio := res.Replicas[r].StartTemp / res.Replicas[r-1].StartTemp
		if math.Abs(ratio-2) > 1e-9 {
			t.Fatalf("rung %d/%d start-temp ratio %v, want the ladder factor 2", r, r-1, ratio)
		}
	}
	if res.SwapAttempts == 0 {
		t.Fatal("no swaps attempted over a multi-stride 4-replica run")
	}
	if res.SwapAccepts > res.SwapAttempts {
		t.Fatalf("swap accepts %d exceed attempts %d", res.SwapAccepts, res.SwapAttempts)
	}
	wantBest, wantCost := 0, math.Inf(1)
	for r := range res.Replicas {
		if res.Replicas[r].BestCost < wantCost {
			wantBest, wantCost = r, res.Replicas[r].BestCost
		}
	}
	if res.Best != wantBest || res.BestCost != wantCost {
		t.Fatalf("best-of pick Best=%d BestCost=%v, want %d/%v", res.Best, res.BestCost, wantBest, wantCost)
	}
	for r := range sums {
		sums[r][0].checkInvariant(t, "replica")
	}
}

// TestOnStrideProgress checks the barrier progress hook: done advances
// monotonically to the budget and the reported best never regresses.
func TestOnStrideProgress(t *testing.T) {
	reps, _ := buildFleet(3, 2)
	lastDone, lastBest := 0, math.Inf(1)
	calls := 0
	res := RunParallel(reps, ParallelOptions{
		Schedule: Options{Iterations: 1200},
		OnStride: func(done, total int, best float64) {
			calls++
			if done <= lastDone || done > total {
				t.Fatalf("OnStride done %d after %d (total %d)", done, lastDone, total)
			}
			if best > lastBest {
				t.Fatalf("OnStride best regressed: %v after %v", best, lastBest)
			}
			lastDone, lastBest = done, best
		},
	})
	if calls == 0 {
		t.Fatal("OnStride never fired")
	}
	if lastDone != 1200 {
		t.Fatalf("final OnStride reported %d moves, want the full budget", lastDone)
	}
	if res.Cancelled {
		t.Fatal("uncancelled run marked Cancelled")
	}
}

// waitGoroutines polls until the goroutine count settles back to the
// baseline (the PR 5 Stream-cancellation idiom), dumping stacks on timeout.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	t.Fatalf("goroutines leaked: %d running, baseline %d\n%s",
		runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
}

// TestRunParallelPreCancelled cancels before the first stride: the engine
// must return immediately with Cancelled set, zero move iterations, and no
// replica worker left behind.
func TestRunParallelPreCancelled(t *testing.T) {
	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	reps, _ := buildFleet(3, 2)
	res := RunParallel(reps, ParallelOptions{Schedule: Options{Iterations: 5000, Ctx: ctx}})
	if !res.Cancelled {
		t.Fatal("pre-cancelled run not marked Cancelled")
	}
	for r := range res.Replicas {
		if res.Replicas[r].Iterations != 0 {
			t.Fatalf("replica %d ran %d moves under a pre-cancelled context", r, res.Replicas[r].Iterations)
		}
	}
	waitGoroutines(t, baseline)
}

// TestRunParallelCancelAtSwapBarrier cancels from the OnStride hook — the
// point right after a swap phase — and verifies the next stride never runs
// and every replica goroutine exits.
func TestRunParallelCancelAtSwapBarrier(t *testing.T) {
	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	reps, _ := buildFleet(3, 1)
	strides := 0
	res := RunParallel(reps, ParallelOptions{
		Schedule: Options{Iterations: 100000, Ctx: ctx},
		OnStride: func(done, total int, best float64) {
			strides++
			cancel()
		},
	})
	if !res.Cancelled {
		t.Fatal("run cancelled at the swap barrier not marked Cancelled")
	}
	if strides != 1 {
		t.Fatalf("ran %d strides after cancellation at the first barrier", strides)
	}
	if res.Replicas[0].Iterations >= 100000 {
		t.Fatal("budget fully consumed despite cancellation")
	}
	waitGoroutines(t, baseline)
}

// cancellingProblem cancels its context after a fixed number of Cost calls,
// driving cancellation from inside a replica stride (and, with speculation,
// from inside a candidate batch).
type cancellingProblem struct {
	*incrSum
	cancel func()
	after  int
	calls  int
}

func (p *cancellingProblem) Cost() float64 {
	p.calls++
	if p.calls == p.after {
		p.cancel()
	}
	return p.incrSum.Cost()
}

// TestRunParallelCancelMidStride cancels from inside one replica's cost
// evaluation mid-stride; all replicas must wind down without leaking.
func TestRunParallelCancelMidStride(t *testing.T) {
	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	reps, _ := buildFleet(3, 2)
	cp := &cancellingProblem{
		incrSum: newIncrSum(10, rand.New(rand.NewSource(77))),
		cancel:  cancel,
		after:   300,
	}
	reps[0].Problems[0] = cp
	// Re-sync the speculative copy with the wrapped primary's state.
	reps[0].Problems[1] = cp.incrSum.Clone()
	res := RunParallel(reps, ParallelOptions{Schedule: Options{Iterations: 100000, Ctx: ctx}})
	if !res.Cancelled {
		t.Fatal("mid-stride cancellation not marked Cancelled")
	}
	for r := range res.Replicas {
		if res.Replicas[r].Iterations >= 100000 {
			t.Fatalf("replica %d consumed the full budget despite cancellation", r)
		}
	}
	waitGoroutines(t, baseline)
}

// TestRunParallelPanicsOnMisuse pins the structural-misuse panics.
func TestRunParallelPanicsOnMisuse(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		})
	}
	expectPanic("no-replicas", func() { RunParallel(nil, ParallelOptions{}) })
	expectPanic("no-problems", func() {
		RunParallel([]Replica{{RNG: rand.New(rand.NewSource(1))}}, ParallelOptions{})
	})
	expectPanic("no-rng", func() {
		RunParallel([]Replica{{Problems: []Problem{&flat{}}}}, ParallelOptions{})
	})
	expectPanic("schedule-hooks", func() {
		RunParallel(
			[]Replica{{Problems: []Problem{&flat{}}, RNG: rand.New(rand.NewSource(1))}},
			ParallelOptions{Schedule: Options{OnBest: func(float64) {}}},
		)
	})
}

// TestRunParallelFindsMinimum sanity-checks that the tempered fleet still
// optimizes: 4 replicas must approach the quadratic minimum at least as well
// as the serial baseline's loose bound.
func TestRunParallelFindsMinimum(t *testing.T) {
	reps := make([]Replica, 4)
	for r := range reps {
		rng := rand.New(rand.NewSource(int64(10 + r)))
		q := &quadratic{x: make([]float64, 8), target: 3, step: 0.5}
		reps[r] = Replica{Problems: []Problem{q}, RNG: rng}
	}
	res := RunParallel(reps, ParallelOptions{Schedule: Options{Iterations: 20000}})
	if res.BestCost > 0.5 {
		t.Fatalf("best cost %v; tempered fleet failed to approach minimum", res.BestCost)
	}
}
