// Package anneal provides the simulated-annealing search engine driving the
// floorplanner, mirroring Corblivar's adaptive SA: the start temperature is
// calibrated from the cost deltas of a random walk, cooling is geometric
// with fixed-length chains per temperature, and the best-seen solution is
// snapshotted through a caller-provided hook (the engine itself is agnostic
// of the state representation).
package anneal

import (
	"context"
	"math"
	"math/rand"
)

// Problem is the state the annealer optimizes. Cost must reflect the current
// state; Perturb must mutate the state and return an undo closure that
// restores it exactly.
type Problem interface {
	Cost() float64
	Perturb(rng *rand.Rand) (undo func())
}

// Options tunes the schedule.
type Options struct {
	// Iterations is the total number of proposed moves. Default 5000.
	Iterations int
	// ChainLength is the number of moves per temperature step. Default
	// Iterations/50 (at least 1).
	ChainLength int
	// InitAcceptProb calibrates the start temperature so that an average
	// uphill move is accepted with this probability. Default 0.8.
	InitAcceptProb float64
	// Alpha is the geometric cooling factor per chain. 0 derives it so the
	// final temperature is 1e-4 of the start temperature.
	Alpha float64
	// CalibrationMoves is the random-walk length used to estimate the cost
	// scale. Default 50.
	CalibrationMoves int
	// OnBest, when non-nil, is invoked whenever a new best cost is seen;
	// the callee should snapshot the state.
	OnBest func(cost float64)
	// OnChain, when non-nil, is invoked after every completed temperature
	// chain with the number of proposed moves so far, the total budget, and
	// the best cost seen — the hook driving progress reporting.
	OnChain func(done, total int, best float64)
	// Ctx, when non-nil, is polled between moves; when it is cancelled the
	// search stops early and Result.Cancelled is set. The state still holds
	// whatever the walk last accepted, and OnBest snapshots remain valid.
	Ctx context.Context
}

func (o *Options) defaults() {
	if o.Iterations == 0 {
		o.Iterations = 5000
	}
	if o.ChainLength == 0 {
		o.ChainLength = o.Iterations / 50
		if o.ChainLength < 1 {
			o.ChainLength = 1
		}
	}
	if o.InitAcceptProb == 0 {
		o.InitAcceptProb = 0.8
	}
	if o.CalibrationMoves == 0 {
		o.CalibrationMoves = 50
	}
	if o.Alpha == 0 {
		chains := float64(o.Iterations) / float64(o.ChainLength)
		if chains < 1 {
			chains = 1
		}
		// T_end/T_start = 1e-4 after `chains` multiplications.
		o.Alpha = math.Pow(1e-4, 1/chains)
	}
}

// Result reports the search outcome.
type Result struct {
	Iterations int
	Accepted   int
	Uphill     int
	BestCost   float64
	FinalCost  float64
	StartTemp  float64
	FinalTemp  float64
	// Cancelled reports that Options.Ctx was done before the budget ran out.
	Cancelled bool
}

// Run anneals the problem. The caller's OnBest hook is responsible for
// snapshotting best states; after Run returns, the problem is in its final
// (not necessarily best) state.
func Run(p Problem, opts Options, rng *rand.Rand) Result {
	opts.defaults()

	// Calibrate the temperature from |ΔC| along a random walk.
	cur := p.Cost()
	meanDelta := 0.0
	walked := 0
	for i := 0; i < opts.CalibrationMoves; i++ {
		if opts.Ctx != nil && opts.Ctx.Err() != nil {
			break
		}
		undo := mustPerturb(p, rng)
		c := p.Cost()
		meanDelta += math.Abs(c - cur)
		walked++
		undo()
	}
	if walked > 0 {
		meanDelta /= float64(walked)
	}
	if meanDelta <= 0 {
		meanDelta = math.Abs(cur)*0.01 + 1e-12
	}
	temp := -meanDelta / math.Log(opts.InitAcceptProb)

	res := Result{StartTemp: temp, BestCost: cur}
	if opts.OnBest != nil {
		opts.OnBest(cur)
	}
	for it := 0; it < opts.Iterations; it++ {
		if opts.Ctx != nil && opts.Ctx.Err() != nil {
			res.Cancelled = true
			break
		}
		undo := mustPerturb(p, rng)
		c := p.Cost()
		delta := c - cur
		accept := delta <= 0
		if !accept {
			if rng.Float64() < math.Exp(-delta/temp) {
				accept = true
				res.Uphill++
			}
		}
		if accept {
			cur = c
			res.Accepted++
			if c < res.BestCost {
				res.BestCost = c
				if opts.OnBest != nil {
					opts.OnBest(c)
				}
			}
		} else {
			undo()
		}
		if (it+1)%opts.ChainLength == 0 {
			temp *= opts.Alpha
			if opts.OnChain != nil {
				opts.OnChain(it+1, opts.Iterations, res.BestCost)
			}
		}
		res.Iterations++
	}
	res.FinalCost = cur
	res.FinalTemp = temp
	return res
}

func mustPerturb(p Problem, rng *rand.Rand) func() {
	undo := p.Perturb(rng)
	if undo == nil {
		panic("anneal: Perturb returned nil undo")
	}
	return undo
}
