// Package anneal provides the simulated-annealing search engine driving the
// floorplanner, mirroring Corblivar's adaptive SA: the start temperature is
// calibrated from the cost deltas of a random walk, cooling is geometric
// with fixed-length chains per temperature, and the best-seen solution is
// snapshotted through a caller-provided hook (the engine itself is agnostic
// of the state representation).
package anneal

import (
	"context"
	"fmt"
	"math"
	"math/rand"
)

// Problem is the state the annealer optimizes. Cost must reflect the current
// state; Perturb must mutate the state and return an undo closure that
// restores it exactly.
type Problem interface {
	Cost() float64
	Perturb(rng *rand.Rand) (undo func())
}

// Options tunes the schedule.
//
// Zero-value semantics: every numeric field treats 0 as "use the default" —
// 0 can NEVER mean "disable" or "literally zero". An Options value that asks
// for a literal zero anywhere (zero iterations, a zero initial acceptance
// probability, a zero-length chain) is unrepresentable; the zero value of
// the whole struct is simply the default schedule. Use Validate to reject
// nonsensical explicit values before Run silently reinterprets them.
type Options struct {
	// Iterations is the total number of proposed moves.
	// Zero value: defaults to 5000 (it does not disable the search).
	Iterations int
	// ChainLength is the number of moves per temperature step.
	// Zero value: defaults to Iterations/50, floored at 1. NOTE: the
	// derived default changes with Iterations — an explicit ChainLength
	// frozen from one budget does not adapt when the budget changes.
	ChainLength int
	// InitAcceptProb calibrates the start temperature so that an average
	// uphill move is accepted with this probability.
	// Zero value: defaults to 0.8. A literal 0 (never accept uphill at the
	// start, i.e. greedy descent) is therefore unrepresentable; use a tiny
	// positive value such as 1e-9 for an effectively greedy schedule.
	InitAcceptProb float64
	// Alpha is the geometric cooling factor per chain.
	// Zero value: derived so the final temperature is 1e-4 of the start
	// temperature after Iterations/ChainLength chains.
	Alpha float64
	// CalibrationMoves is the random-walk length used to estimate the cost
	// scale. Zero value: defaults to 50 (a zero-move calibration is
	// unrepresentable; the walk also seeds the temperature, so disabling it
	// would start the schedule from a degenerate estimate).
	CalibrationMoves int
	// OnBest, when non-nil, is invoked whenever a new best cost is seen;
	// the callee should snapshot the state.
	OnBest func(cost float64)
	// OnChain, when non-nil, is invoked after every completed temperature
	// chain with the number of proposed moves so far, the total budget, and
	// the best cost seen — the hook driving progress reporting.
	OnChain func(done, total int, best float64)
	// Ctx, when non-nil, is polled between moves; when it is cancelled the
	// search stops early and Result.Cancelled is set. The state still holds
	// whatever the walk last accepted, and OnBest snapshots remain valid.
	Ctx context.Context
}

// Validate rejects option values the zero-value defaulting would otherwise
// silently reinterpret: negatives everywhere, and probabilities or cooling
// factors outside their open intervals. A nil error means Run will use the
// options as documented (with zeros replaced by defaults).
func (o *Options) Validate() error {
	if o.Iterations < 0 {
		return fmt.Errorf("anneal: negative Iterations %d", o.Iterations)
	}
	if o.ChainLength < 0 {
		return fmt.Errorf("anneal: negative ChainLength %d", o.ChainLength)
	}
	if o.CalibrationMoves < 0 {
		return fmt.Errorf("anneal: negative CalibrationMoves %d", o.CalibrationMoves)
	}
	if o.InitAcceptProb < 0 || o.InitAcceptProb >= 1 {
		return fmt.Errorf("anneal: InitAcceptProb %v outside [0, 1) (0 selects the default 0.8)", o.InitAcceptProb)
	}
	if o.Alpha < 0 || o.Alpha >= 1 {
		return fmt.Errorf("anneal: Alpha %v outside [0, 1) (0 derives the cooling factor)", o.Alpha)
	}
	return nil
}

func (o *Options) defaults() {
	if o.Iterations == 0 {
		o.Iterations = 5000
	}
	if o.ChainLength == 0 {
		o.ChainLength = o.Iterations / 50
		if o.ChainLength < 1 {
			o.ChainLength = 1
		}
	}
	if o.InitAcceptProb == 0 {
		o.InitAcceptProb = 0.8
	}
	if o.CalibrationMoves == 0 {
		o.CalibrationMoves = 50
	}
	if o.Alpha == 0 {
		chains := float64(o.Iterations) / float64(o.ChainLength)
		if chains < 1 {
			chains = 1
		}
		// T_end/T_start = 1e-4 after `chains` multiplications.
		o.Alpha = math.Pow(1e-4, 1/chains)
	}
}

// Result reports the search outcome.
type Result struct {
	Iterations int
	Accepted   int
	Uphill     int
	BestCost   float64
	FinalCost  float64
	StartTemp  float64
	FinalTemp  float64
	// Cancelled reports that Options.Ctx was done before the budget ran out.
	Cancelled bool
}

// Run anneals the problem. The caller's OnBest hook is responsible for
// snapshotting best states; after Run returns, the problem is in its final
// (not necessarily best) state.
func Run(p Problem, opts Options, rng *rand.Rand) Result {
	opts.defaults()

	// Calibrate the temperature from |ΔC| along a random walk.
	cur := p.Cost()
	meanDelta := 0.0
	walked := 0
	for i := 0; i < opts.CalibrationMoves; i++ {
		if opts.Ctx != nil && opts.Ctx.Err() != nil {
			break
		}
		undo := mustPerturb(p, rng)
		c := p.Cost()
		meanDelta += math.Abs(c - cur)
		walked++
		undo()
	}
	if walked > 0 {
		meanDelta /= float64(walked)
	}
	if meanDelta <= 0 {
		meanDelta = math.Abs(cur)*0.01 + 1e-12
	}
	temp := -meanDelta / math.Log(opts.InitAcceptProb)

	res := Result{StartTemp: temp, BestCost: cur}
	if opts.OnBest != nil {
		opts.OnBest(cur)
	}
	for it := 0; it < opts.Iterations; it++ {
		if opts.Ctx != nil && opts.Ctx.Err() != nil {
			res.Cancelled = true
			break
		}
		undo := mustPerturb(p, rng)
		c := p.Cost()
		delta := c - cur
		accept := delta <= 0
		if !accept {
			if rng.Float64() < math.Exp(-delta/temp) {
				accept = true
				res.Uphill++
			}
		}
		if accept {
			cur = c
			res.Accepted++
			if c < res.BestCost {
				res.BestCost = c
				if opts.OnBest != nil {
					opts.OnBest(c)
				}
			}
		} else {
			undo()
		}
		if (it+1)%opts.ChainLength == 0 {
			temp *= opts.Alpha
			if opts.OnChain != nil {
				opts.OnChain(it+1, opts.Iterations, res.BestCost)
			}
		}
		res.Iterations++
	}
	res.FinalCost = cur
	res.FinalTemp = temp
	return res
}

func mustPerturb(p Problem, rng *rand.Rand) func() {
	undo := p.Perturb(rng)
	if undo == nil {
		panic("anneal: Perturb returned nil undo")
	}
	return undo
}
