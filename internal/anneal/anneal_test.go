package anneal

import (
	"context"
	"math"
	"math/rand"
	"testing"
)

// quadratic is a toy problem: minimize sum (x_i - target)^2 with +-step moves.
type quadratic struct {
	x      []float64
	target float64
	step   float64
}

func (q *quadratic) Cost() float64 {
	c := 0.0
	for _, v := range q.x {
		d := v - q.target
		c += d * d
	}
	return c
}

func (q *quadratic) Perturb(rng *rand.Rand) func() {
	i := rng.Intn(len(q.x))
	old := q.x[i]
	q.x[i] += (rng.Float64()*2 - 1) * q.step
	return func() { q.x[i] = old }
}

func TestAnnealFindsMinimum(t *testing.T) {
	q := &quadratic{x: make([]float64, 8), target: 3, step: 0.5}
	rng := rand.New(rand.NewSource(1))
	res := Run(q, Options{Iterations: 20000}, rng)
	if res.BestCost > 0.5 {
		t.Fatalf("best cost %v; annealer failed to approach minimum", res.BestCost)
	}
	if res.FinalCost < res.BestCost {
		t.Fatal("final cost cannot beat best cost")
	}
}

func TestOnBestMonotonic(t *testing.T) {
	q := &quadratic{x: make([]float64, 4), target: 2, step: 0.5}
	rng := rand.New(rand.NewSource(2))
	last := math.Inf(1)
	Run(q, Options{Iterations: 5000, OnBest: func(c float64) {
		if c > last {
			t.Fatalf("OnBest called with worse cost: %v after %v", c, last)
		}
		last = c
	}}, rng)
	if math.IsInf(last, 1) {
		t.Fatal("OnBest never called")
	}
}

func TestAcceptsCountedAndBounded(t *testing.T) {
	q := &quadratic{x: make([]float64, 4), target: 1, step: 0.3}
	rng := rand.New(rand.NewSource(3))
	res := Run(q, Options{Iterations: 1000}, rng)
	if res.Iterations != 1000 {
		t.Fatalf("iterations %d", res.Iterations)
	}
	if res.Accepted < 1 || res.Accepted > 1000 {
		t.Fatalf("accepted %d out of range", res.Accepted)
	}
	if res.Uphill > res.Accepted {
		t.Fatal("uphill accepts exceed total accepts")
	}
}

func TestTemperatureCools(t *testing.T) {
	q := &quadratic{x: make([]float64, 4), target: 1, step: 0.3}
	rng := rand.New(rand.NewSource(4))
	res := Run(q, Options{Iterations: 2000}, rng)
	if res.FinalTemp >= res.StartTemp {
		t.Fatalf("temperature must cool: %v -> %v", res.StartTemp, res.FinalTemp)
	}
	if res.StartTemp <= 0 {
		t.Fatal("start temperature must be positive")
	}
}

func TestUphillMovesHappenEarly(t *testing.T) {
	q := &quadratic{x: make([]float64, 8), target: 0, step: 1}
	rng := rand.New(rand.NewSource(5))
	res := Run(q, Options{Iterations: 5000}, rng)
	if res.Uphill == 0 {
		t.Fatal("annealing should accept some uphill moves at high temperature")
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	run := func() Result {
		q := &quadratic{x: make([]float64, 4), target: 2, step: 0.5}
		return Run(q, Options{Iterations: 3000}, rand.New(rand.NewSource(6)))
	}
	a, b := run(), run()
	if a.BestCost != b.BestCost || a.Accepted != b.Accepted {
		t.Fatal("same seed must reproduce the run")
	}
}

func TestZeroDeltaCalibrationSafe(t *testing.T) {
	// A flat cost surface must not produce NaN temperatures.
	q := &flat{}
	rng := rand.New(rand.NewSource(7))
	res := Run(q, Options{Iterations: 100}, rng)
	if math.IsNaN(res.StartTemp) || res.StartTemp <= 0 {
		t.Fatalf("bad start temp %v", res.StartTemp)
	}
}

type flat struct{}

func (f *flat) Cost() float64 { return 1 }
func (f *flat) Perturb(rng *rand.Rand) func() {
	return func() {}
}

// TestRunCancellation checks the Ctx contract: a context cancelled mid-walk
// stops the search early, marks Result.Cancelled, and leaves the best-seen
// bookkeeping intact.
func TestRunCancellation(t *testing.T) {
	q := &quadratic{x: make([]float64, 8), target: 3, step: 0.5}
	rng := rand.New(rand.NewSource(1))
	ctx, cancel := context.WithCancel(context.Background())
	moves := 0
	stopAfter := 100
	res := Run(q, Options{
		Iterations: 20000,
		Ctx:        ctx,
		OnChain: func(done, total int, best float64) {
			moves = done
			if done >= stopAfter {
				cancel()
			}
		},
	}, rng)
	if !res.Cancelled {
		t.Fatal("cancelled run not marked Cancelled")
	}
	if res.Iterations >= 20000 {
		t.Fatalf("ran all %d iterations despite cancellation", res.Iterations)
	}
	if moves < stopAfter {
		t.Fatalf("OnChain saw only %d moves before cancel fired", moves)
	}
	// An uncancelled run with the same seed must not be marked Cancelled.
	q2 := &quadratic{x: make([]float64, 8), target: 3, step: 0.5}
	res2 := Run(q2, Options{Iterations: 200, Ctx: context.Background()}, rand.New(rand.NewSource(1)))
	if res2.Cancelled {
		t.Fatal("uncancelled run marked Cancelled")
	}
}
