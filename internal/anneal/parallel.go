package anneal

import (
	"math"
	"math/rand"
	"sync"
)

// Replica is one parallel-tempering chain handed to RunParallel.
//
// Problems holds M ≥ 1 synchronized copies of the same annealing state.
// Problems[0] is the primary copy — OnBest fires when the primary holds a new
// best state. With M == 1 the replica walks exactly like Run (one Perturb per
// move, one conditional uphill draw). With M > 1 every annealing step
// evaluates up to M candidate moves concurrently, one per copy, against the
// frozen pre-step state and commits the first acceptance in candidate order
// (the speculative mode); the committed move is then replayed into every
// other copy so all M stay in lockstep. The copies must start byte-identical
// and must perturb identically when handed identical RNG streams — RunParallel
// never moves state between copies, it only replays moves.
type Replica struct {
	Problems []Problem
	// RNG drives this replica's walk. Each replica needs an independent
	// stream; RunParallel consumes it deterministically (candidate seeds and
	// accept draws only), never concurrently.
	RNG *rand.Rand
	// OnBest, when non-nil, fires whenever this replica improves on its best
	// cost, with Problems[0] holding the corresponding state. It runs on the
	// replica's stride goroutine; replicas may fire concurrently with each
	// other (but never with themselves).
	OnBest func(cost float64)
}

// ParallelOptions tunes RunParallel beyond the per-replica schedule.
//
// Zero-value semantics follow Options: every numeric field treats 0 as "use
// the default".
type ParallelOptions struct {
	// Schedule is the per-replica annealing schedule. OnBest and OnChain must
	// be nil — the per-replica best hook lives on Replica, and chain-level
	// progress is reported through OnStride at the swap barriers (the chains
	// themselves run concurrently, so a per-chain callback would race).
	Schedule Options
	// SwapEvery is the number of moves each replica runs between swap
	// barriers. Zero value: one temperature chain (Schedule.ChainLength).
	// Rounded up to the next chain multiple so swaps always happen at
	// temperature boundaries and every rung cools in lockstep.
	SwapEvery int
	// LadderFactor is the geometric spacing of the temperature ladder: rung r
	// starts at factor^r times the calibrated base temperature. Zero value:
	// 1.5.
	LadderFactor float64
	// SwapSeed seeds the dedicated swap RNG. Swap decisions consume their own
	// stream — never a replica's — so the per-replica walks are independent
	// of the swap schedule.
	SwapSeed int64
	// OnStride, when non-nil, is invoked on the coordinator goroutine after
	// every swap barrier with the per-replica moves consumed so far, the
	// total budget, and the best cost over all replicas.
	OnStride func(done, total int, best float64)
}

// ParallelResult reports a RunParallel outcome.
type ParallelResult struct {
	// Replicas holds each replica's own Result, index-aligned with the input.
	Replicas []Result
	// Best indexes the replica with the lowest BestCost (lowest index wins
	// ties); BestCost is that cost.
	Best     int
	BestCost float64
	// SwapAttempts/SwapAccepts count the Metropolis neighbor-swap decisions
	// taken at the stride barriers.
	SwapAttempts int
	SwapAccepts  int
	// SpecBatches counts speculative candidate batches (0 when every replica
	// has one problem copy); SpecCommits of those committed a move, and
	// SpecDiscarded totals the evaluated-but-discarded candidates.
	SpecBatches   int
	SpecCommits   int
	SpecDiscarded int
	// Cancelled reports that Schedule.Ctx was done before the budget ran out.
	Cancelled bool
}

// specSeedStride separates the candidate RNG streams of one speculative
// batch: candidate k draws from batchSeed + k*specSeedStride. Any large odd
// constant works — the streams only need to be distinct and reproducible.
const specSeedStride int64 = 0x6A09E667F3BCC909

// repState is one replica's mutable search state. During a stride it is
// owned exclusively by the replica's goroutine; between strides (after the
// WaitGroup barrier) the coordinator reads costs and swaps temperatures.
type repState struct {
	res       Result
	cur       float64
	temp      float64
	calTemp   float64
	cancelled bool

	specBatches   int
	specCommits   int
	specDiscarded int
}

// RunParallel anneals K replicas of the problem on a geometric temperature
// ladder with periodic Metropolis neighbor swaps (replica exchange /
// parallel tempering), each replica optionally evaluating M speculative
// candidate moves concurrently per step.
//
// Determinism contract: for fixed inputs (problem states, per-replica RNG
// seeds, SwapSeed, schedule) the outcome is byte-identical on every run and
// for every GOMAXPROCS — replicas interact only at the swap barriers, swap
// decisions consume a dedicated RNG in fixed pair order, candidate k of a
// batch always evaluates on problem copy k from a seed-derived stream, and
// every reduction runs in index order. A single replica with a single
// problem copy walks bit-identically to Run on the same RNG.
//
// RunParallel panics on structurally invalid input (no replicas, a replica
// without problems or RNG, schedule hooks set); use Schedule.Validate for
// value errors, as with Run.
func RunParallel(reps []Replica, opts ParallelOptions) ParallelResult {
	if len(reps) == 0 {
		panic("anneal: RunParallel needs at least one replica")
	}
	for i := range reps {
		if len(reps[i].Problems) == 0 {
			panic("anneal: replica without problem copies")
		}
		if reps[i].RNG == nil {
			panic("anneal: replica without an RNG stream")
		}
	}
	sched := opts.Schedule
	if sched.OnBest != nil || sched.OnChain != nil {
		panic("anneal: Schedule.OnBest/OnChain must be nil (use Replica.OnBest and ParallelOptions.OnStride)")
	}
	sched.defaults()
	if opts.LadderFactor == 0 {
		opts.LadderFactor = 1.5
	}
	if opts.SwapEvery == 0 {
		opts.SwapEvery = sched.ChainLength
	}
	if r := opts.SwapEvery % sched.ChainLength; r != 0 {
		opts.SwapEvery += sched.ChainLength - r
	}

	k := len(reps)
	states := make([]repState, k)

	// Calibrate every replica concurrently on its own RNG stream, exactly as
	// Run does (random walk, mean |ΔC|).
	var wg sync.WaitGroup
	for r := range reps {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			states[r].calibrate(reps[r], &sched)
		}(r)
	}
	wg.Wait()

	// Temperature ladder: rung r starts at base·factor^r, where base is the
	// index-ordered mean of the calibrated temperatures (index order keeps
	// the float sum scheduling-independent). Rung 0 anneals nearest the
	// serial schedule; higher rungs run hotter and trade states down the
	// ladder through swaps.
	base := 0.0
	for r := range states {
		base += states[r].calTemp
	}
	base /= float64(k)
	for r := range states {
		st := &states[r]
		st.temp = base * math.Pow(opts.LadderFactor, float64(r))
		st.res.StartTemp = st.temp
		st.res.BestCost = st.cur
		if reps[r].OnBest != nil {
			reps[r].OnBest(st.cur)
		}
	}

	res := ParallelResult{Replicas: make([]Result, k)}
	swapRNG := rand.New(rand.NewSource(opts.SwapSeed))
	done := 0
	for stride := 0; done < sched.Iterations; stride++ {
		n := sched.Iterations - done
		if n > opts.SwapEvery {
			n = opts.SwapEvery
		}
		for r := range reps {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				states[r].runStride(&reps[r], &sched, done, n)
			}(r)
		}
		wg.Wait()
		cancelled := sched.Ctx != nil && sched.Ctx.Err() != nil
		for r := range states {
			cancelled = cancelled || states[r].cancelled
		}
		if cancelled {
			res.Cancelled = true
			break
		}
		done += n

		// Neighbor swaps at the barrier: alternating parity pairs — even
		// strides attempt (0,1)(2,3)…, odd strides (1,2)(3,4)… — in fixed
		// order on the dedicated swap RNG. The Metropolis criterion
		// exp((C_i−C_j)(1/T_i−1/T_j)) exchanges the two rungs' current
		// temperatures (equivalently, the configurations trade places on the
		// ladder); states, RNG streams, and best snapshots stay put.
		if k > 1 && done < sched.Iterations {
			for i := stride % 2; i+1 < k; i += 2 {
				a, b := &states[i], &states[i+1]
				res.SwapAttempts++
				u := swapRNG.Float64()
				if u < math.Exp((a.cur-b.cur)*(1/a.temp-1/b.temp)) {
					a.temp, b.temp = b.temp, a.temp
					res.SwapAccepts++
				}
			}
		}
		if opts.OnStride != nil {
			best := math.Inf(1)
			for r := range states {
				if states[r].res.BestCost < best {
					best = states[r].res.BestCost
				}
			}
			opts.OnStride(done, sched.Iterations, best)
		}
	}

	best := 0
	for r := range states {
		st := &states[r]
		st.res.FinalCost = st.cur
		st.res.FinalTemp = st.temp
		if st.cancelled {
			st.res.Cancelled = true
		}
		res.Replicas[r] = st.res
		res.SpecBatches += st.specBatches
		res.SpecCommits += st.specCommits
		res.SpecDiscarded += st.specDiscarded
		if st.res.BestCost < states[best].res.BestCost {
			best = r
		}
	}
	res.Best = best
	res.BestCost = states[best].res.BestCost
	return res
}

// calibrate estimates the replica's cost scale along a random walk, exactly
// mirroring Run's calibration. With M > 1 problem copies every copy replays
// the identical walk on a shared per-move seed, so the copies' evaluation
// counters (and any stride caches keyed on them) advance in lockstep from
// the very first Cost call.
func (st *repState) calibrate(rep Replica, sched *Options) {
	m := len(rep.Problems)
	var cur, meanDelta float64
	walked := 0
	if m == 1 {
		p := rep.Problems[0]
		cur = p.Cost()
		for i := 0; i < sched.CalibrationMoves; i++ {
			if sched.Ctx != nil && sched.Ctx.Err() != nil {
				break
			}
			undo := mustPerturb(p, rep.RNG)
			c := p.Cost()
			meanDelta += math.Abs(c - cur)
			walked++
			undo()
		}
	} else {
		curs := make([]float64, m)
		forEachProblem(rep.Problems, func(k int) { curs[k] = rep.Problems[k].Cost() })
		cur = curs[0]
		undos := make([]func(), m)
		costs := make([]float64, m)
		for i := 0; i < sched.CalibrationMoves; i++ {
			if sched.Ctx != nil && sched.Ctx.Err() != nil {
				break
			}
			seed := rep.RNG.Int63()
			forEachProblem(rep.Problems, func(k int) {
				undos[k] = mustPerturb(rep.Problems[k], rand.New(rand.NewSource(seed)))
				costs[k] = rep.Problems[k].Cost()
			})
			meanDelta += math.Abs(costs[0] - cur)
			walked++
			for k := range undos {
				undos[k]()
			}
		}
	}
	if walked > 0 {
		meanDelta /= float64(walked)
	}
	if meanDelta <= 0 {
		meanDelta = math.Abs(cur)*0.01 + 1e-12
	}
	st.calTemp = -meanDelta / math.Log(sched.InitAcceptProb)
	st.cur = cur
}

// runStride advances the replica by up to n moves starting at global move
// index start, cooling at every chain boundary it crosses.
func (st *repState) runStride(rep *Replica, sched *Options, start, n int) {
	spec := len(rep.Problems) > 1
	for done := 0; done < n; {
		if sched.Ctx != nil && sched.Ctx.Err() != nil {
			st.cancelled = true
			return
		}
		it := start + done
		var consumed int
		if spec {
			consumed = st.specBatch(rep, sched, it, n-done)
		} else {
			consumed = st.serialMove(rep, sched)
		}
		for b := it + 1; b <= it+consumed; b++ {
			if b%sched.ChainLength == 0 {
				st.temp *= sched.Alpha
			}
		}
		st.res.Iterations += consumed
		done += consumed
	}
}

// serialMove is one move of Run's loop, bit-identical on the same RNG: one
// Perturb, one Cost, and an uphill draw only when the move goes uphill.
func (st *repState) serialMove(rep *Replica, sched *Options) int {
	p := rep.Problems[0]
	undo := mustPerturb(p, rep.RNG)
	c := p.Cost()
	delta := c - st.cur
	accept := delta <= 0
	if !accept {
		if rep.RNG.Float64() < math.Exp(-delta/st.temp) {
			accept = true
			st.res.Uphill++
		}
	}
	if accept {
		st.cur = c
		st.res.Accepted++
		if c < st.res.BestCost {
			st.res.BestCost = c
			if rep.OnBest != nil {
				rep.OnBest(c)
			}
		}
	} else {
		undo()
	}
	return 1
}

// specBatch evaluates up to M candidate moves concurrently against the
// frozen pre-step state and commits the first acceptance in candidate order.
//
// Candidate k perturbs problem copy k from the stream batchSeed +
// k·specSeedStride and always draws its uphill number, so the whole batch is
// a pure function of the replica RNG — which candidates exist, which worker
// evaluates which, and every accept draw are all fixed before any goroutine
// runs. The batch never crosses a chain boundary (all candidates score at
// one temperature) and consumes its full width from the budget: losers after
// the committed candidate are the price of speculation (SpecDiscarded), just
// as a serial chain would have spent those moves on now-invalidated state.
//
// After the decision, losers roll back byte-exactly and replay the committed
// candidate from its seed — identical state plus an identical stream
// reproduces the identical move on every copy. Copies clamped out of a
// short batch run one bare Cost instead, keeping all M evaluation counters
// in lockstep.
func (st *repState) specBatch(rep *Replica, sched *Options, it, left int) int {
	width := len(rep.Problems)
	m := width
	if chainLeft := sched.ChainLength - it%sched.ChainLength; m > chainLeft {
		m = chainLeft
	}
	if m > left {
		m = left
	}
	batchSeed := rep.RNG.Int63()
	undos := make([]func(), m)
	costs := make([]float64, m)
	draws := make([]float64, m)
	forEachProblem(rep.Problems, func(k int) {
		if k >= m {
			rep.Problems[k].Cost()
			return
		}
		wrng := rand.New(rand.NewSource(batchSeed + int64(k)*specSeedStride))
		undos[k] = mustPerturb(rep.Problems[k], wrng)
		costs[k] = rep.Problems[k].Cost()
		draws[k] = wrng.Float64()
	})

	commit := -1
	uphill := false
	for c := 0; c < m; c++ {
		delta := costs[c] - st.cur
		if delta <= 0 {
			commit = c
			break
		}
		if draws[c] < math.Exp(-delta/st.temp) {
			commit, uphill = c, true
			break
		}
	}
	st.specBatches++
	if commit < 0 {
		st.specDiscarded += m
		for c := range undos {
			undos[c]()
		}
		return m
	}
	st.specCommits++
	st.specDiscarded += m - 1
	winSeed := batchSeed + int64(commit)*specSeedStride
	for c := 0; c < width; c++ {
		if c == commit {
			continue
		}
		if c < m {
			undos[c]()
		}
		rep.Problems[c].Perturb(rand.New(rand.NewSource(winSeed)))
	}
	st.cur = costs[commit]
	st.res.Accepted++
	if uphill {
		st.res.Uphill++
	}
	if st.cur < st.res.BestCost {
		st.res.BestCost = st.cur
		if rep.OnBest != nil {
			rep.OnBest(st.cur)
		}
	}
	return m
}

// forEachProblem runs fn(k) for every problem copy, k ≥ 1 on their own
// goroutines and k = 0 inline, and waits for all of them. Each fn(k) only
// touches copy k and slot k of the batch arrays, so the fan-out is
// scheduling-independent.
func forEachProblem(problems []Problem, fn func(k int)) {
	var wg sync.WaitGroup
	for k := 1; k < len(problems); k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			fn(k)
		}(k)
	}
	fn(0)
	wg.Wait()
}
