package tscfp

import (
	"fmt"

	"repro/internal/core"
)

// Mode selects the experimental setup (Sec. 7 of the paper).
type Mode string

const (
	// PowerAware is the competitive baseline: packing, wirelength, delay,
	// peak temperature, and voltage assignment optimized together.
	PowerAware Mode = "power-aware"
	// TSCAware additionally minimizes the power/thermal correlation (Eq. 1)
	// and the spatial entropy of the power maps (Eq. 3), uses the
	// TSC-oriented voltage-assignment objective, and runs the dummy-TSV
	// post-processing of Sec. 6.2.
	TSCAware Mode = "tsc-aware"
)

func (m Mode) core() (core.Mode, error) {
	switch m {
	case PowerAware:
		return core.PowerAware, nil
	case TSCAware:
		return core.TSCAware, nil
	default:
		return 0, fmt.Errorf("tscfp: unknown mode %q", string(m))
	}
}

// ParseMode accepts the common spellings ("pa", "power-aware", "tsc",
// "tsc-aware") used by the CLI flags. The empty string is an error, not a
// default — an unset variable should not silently pick a setup.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "pa", "power-aware":
		return PowerAware, nil
	case "tsc", "tsc-aware":
		return TSCAware, nil
	default:
		return "", fmt.Errorf("tscfp: unknown mode %q (want pa or tsc)", s)
	}
}

// PostCriterion selects the correlation watched by the dummy-TSV stop rule.
type PostCriterion string

const (
	// BottomDie accepts insertions while |r_1| drops (default; the bottom
	// die is the protectable one).
	BottomDie PostCriterion = "bottom-die"
	// AllDies accepts insertions while the mean |r_d| over dies drops.
	AllDies PostCriterion = "all-dies"
)

// Weights are the multi-objective cost weights; see core's documentation for
// the paper grounding. The zero value selects the mode's defaults.
type Weights struct {
	OutlineViolation float64 `json:"outline_violation"`
	Wirelength       float64 `json:"wirelength"`
	CriticalDelay    float64 `json:"critical_delay"`
	PeakTemp         float64 `json:"peak_temp"`
	Power            float64 `json:"power"`
	VoltageVolumes   float64 `json:"voltage_volumes"`
	Correlation      float64 `json:"correlation"`
	SpatialEntropy   float64 `json:"spatial_entropy"`
	DesignRule       float64 `json:"design_rule"`
}

// Stage identifies one phase of the flow in progress events.
type Stage string

const (
	// StageAnneal is the simulated-annealing floorplanning search.
	StageAnneal Stage = Stage(core.StageAnneal)
	// StageFinalize covers TSV planning, voltage assignment, and detailed
	// thermal verification.
	StageFinalize Stage = Stage(core.StageFinalize)
	// StageSampling is the activity-sampling loop of post-processing.
	StageSampling Stage = Stage(core.StageSampling)
	// StagePostProcess is the iterative dummy-TSV insertion (Sec. 6.2).
	StagePostProcess Stage = Stage(core.StagePostProcess)
	// StageDone fires once, after metrics are final.
	StageDone Stage = Stage(core.StageDone)
)

// Event is one progress update from a running flow. Done/Total count
// stage-local units (annealing moves, activity samples, dummy groups); Total
// is 0 when the stage has no meaningful denominator. Cost carries the best
// annealing cost during StageAnneal and the watched correlation during
// StagePostProcess.
//
// Event marshals to stable JSON, so serving layers (tscfpd's SSE stream)
// forward flow progress verbatim instead of mirroring it into an ad-hoc
// wire struct.
type Event struct {
	Stage Stage   `json:"stage"`
	Done  int     `json:"done"`
	Total int     `json:"total"`
	Cost  float64 `json:"cost"`
}

// settings accumulates option values before a Flow is built.
type settings struct {
	mode        Mode
	cfg         core.Config
	postProcess *bool
	weights     *Weights
	progress    func(Event)
	parSet      bool // WithParallelism was given explicitly
	churnStats  bool // WithChurnStats: surface pack_* churn counters
	err         error
}

// Option configures a Flow (and, through Grid.Options, every Sweep cell).
type Option func(*settings)

func (s *settings) fail(format string, args ...any) {
	if s.err == nil {
		s.err = fmt.Errorf("tscfp: "+format, args...)
	}
}

// WithMode selects power-aware or TSC-aware floorplanning. Default TSCAware.
func WithMode(m Mode) Option {
	return func(s *settings) {
		if _, err := m.core(); err != nil {
			s.fail("%v", err)
			return
		}
		s.mode = m
	}
}

// WithSeed sets the seed driving every stochastic stage of the flow.
//
// Determinism contract: the flow never touches math/rand's global source —
// all randomness flows from rand.New(rand.NewSource(seed)) created per run.
// The same Design, seed, and options therefore produce an identical Result
// (byte-identical JSON, runtime aside) on every run, independent of other
// goroutines, of previous runs, and of Sweep worker scheduling.
func WithSeed(seed int64) Option {
	return func(s *settings) { s.cfg.Seed = seed }
}

// WithIterations sets the simulated-annealing budget. Zero selects the
// default of 3000 (it does not disable annealing).
func WithIterations(n int) Option {
	return func(s *settings) {
		if n < 0 {
			s.fail("negative iteration budget %d", n)
			return
		}
		s.cfg.SAIterations = n
	}
}

// WithGridN sets the lateral resolution of the thermal and leakage grids.
// Zero selects the default of 32.
func WithGridN(n int) Option {
	return func(s *settings) {
		if n < 0 {
			s.fail("negative grid resolution %d", n)
			return
		}
		s.cfg.GridN = n
	}
}

// WithActivitySamples sets m of Eq. 2 (the paper uses 100). Zero selects
// the default of 100 (it does not skip the sampling stage; use
// WithPostProcess(false) for that).
func WithActivitySamples(n int) Option {
	return func(s *settings) {
		if n < 0 {
			s.fail("negative activity sample count %d", n)
			return
		}
		s.cfg.ActivitySamples = n
	}
}

// WithActivitySigma sets the relative power sigma of the activity model
// (the paper uses 0.10).
func WithActivitySigma(sigma float64) Option {
	return func(s *settings) { s.cfg.ActivitySigma = sigma }
}

// WithPostProcess forces the dummy-TSV insertion stage on or off,
// replacing the default of on-in-TSC-mode, off-in-power-aware-mode.
func WithPostProcess(enabled bool) Option {
	return func(s *settings) {
		v := enabled
		s.postProcess = &v
	}
}

// WithPostCriterion selects the correlation watched by the dummy-TSV stop
// rule. Default BottomDie.
func WithPostCriterion(c PostCriterion) Option {
	return func(s *settings) {
		switch c {
		case BottomDie:
			s.cfg.PostCriterion = core.BottomDie
		case AllDies:
			s.cfg.PostCriterion = core.AllDies
		default:
			s.fail("unknown post criterion %q", string(c))
		}
	}
}

// WithProtectedModules switches post-processing to the Sec. 7.1 adaptation:
// dummy TSVs target only the bins covered by these (security-critical)
// modules. Indices refer to Design.Modules.
func WithProtectedModules(modules ...int) Option {
	return func(s *settings) {
		s.cfg.ProtectModules = append([]int(nil), modules...)
	}
}

// WithMaxDummyGroups bounds post-processing insertions. Zero selects the
// default of 64; to disable insertions entirely use WithPostProcess(false).
func WithMaxDummyGroups(n int) Option {
	return func(s *settings) {
		if n < 0 {
			s.fail("negative dummy group bound %d", n)
			return
		}
		s.cfg.MaxDummyGroups = n
	}
}

// WithDummyViasPerGroup sets the island size of each inserted dummy group.
// Zero selects the default of 8.
func WithDummyViasPerGroup(n int) Option {
	return func(s *settings) {
		if n < 0 {
			s.fail("negative dummy via count %d", n)
			return
		}
		s.cfg.DummyViasPerGroup = n
	}
}

// WithVoltEvery re-runs voltage assignment every k-th accepted evaluation.
// Zero selects the default of 10.
func WithVoltEvery(k int) Option {
	return func(s *settings) {
		if k < 0 {
			s.fail("negative voltage-assignment stride %d", k)
			return
		}
		s.cfg.VoltEvery = k
	}
}

// WithVoltTargetFactor relaxes the timing target for voltage assignment.
// Default 1.15.
func WithVoltTargetFactor(f float64) Option {
	return func(s *settings) { s.cfg.VoltTargetFactor = f }
}

// WithWeights overrides the multi-objective cost weights. The zero value of
// any field is taken literally (a zero weight disables that term), so start
// from DefaultWeights when adjusting a single knob.
func WithWeights(w Weights) Option {
	return func(s *settings) {
		wc := w
		s.weights = &wc
	}
}

// DefaultWeights returns the mode's default cost weights. It also accepts
// the ParseMode spellings ("pa", "tsc") and panics on an unknown mode — a
// silent fallback here would hand a caller the wrong tuning baseline.
func DefaultWeights(m Mode) Weights {
	cm, err := m.core()
	if err != nil {
		parsed, perr := ParseMode(string(m))
		if perr != nil {
			panic(err)
		}
		cm, _ = parsed.core()
	}
	w := core.DefaultWeights(cm)
	return Weights{
		OutlineViolation: w.OutlineViolation,
		Wirelength:       w.Wirelength,
		CriticalDelay:    w.CriticalDelay,
		PeakTemp:         w.PeakTemp,
		Power:            w.Power,
		VoltageVolumes:   w.VoltageVolumes,
		Correlation:      w.Correlation,
		SpatialEntropy:   w.SpatialEntropy,
		DesignRule:       w.DesignRule,
	}
}

// WithProgress installs a per-stage progress callback. The callback runs
// synchronously on the flow goroutine (each Sweep worker has its own), so it
// must be cheap and, under Sweep, safe for concurrent invocation.
func WithProgress(fn func(Event)) Option {
	return func(s *settings) { s.progress = fn }
}

// WithParallelism bounds the worker goroutines fanned out by the detailed
// thermal solver's red-black SOR sweeps and the fast estimator's separable
// convolutions. 0 (the default) selects GOMAXPROCS; 1 forces the serial
// path. Results are byte-identical for every setting — parallelism never
// perturbs determinism (see WithSeed).
//
// Under Sweep/Stream the unset default is 1, not GOMAXPROCS: the worker
// pool already saturates the CPU with whole cells, and nesting per-run
// fan-out under pool-level fan-out would oversubscribe it. An explicit
// WithParallelism wins over that adjustment.
func WithParallelism(n int) Option {
	return func(s *settings) {
		if n < 0 {
			s.fail("negative parallelism %d", n)
			return
		}
		s.cfg.Parallelism = n
		s.parSet = true
	}
}

// WithReplicas runs k tempered annealing chains (replica exchange / parallel
// tempering): each replica anneals on its own RNG stream at its rung of a
// geometric temperature ladder, neighbours periodically swap temperatures by
// the Metropolis criterion, and the best replica's floorplan feeds the rest
// of the flow. 0 and 1 (the default) select the single-chain serial path,
// which stays bit-identical to earlier releases at a fixed seed.
//
// k >= 2 is its own deterministic contract: a fixed (seed, replicas,
// speculation) triple yields a byte-identical Result for any GOMAXPROCS, but
// the walk differs from the serial one — replicas trade reproducibility of
// the historical stream for quality per wall-clock second. Under replicas
// the per-run thermal Parallelism defaults to 1 (the chains are the
// parallelism); an explicit WithParallelism wins.
func WithReplicas(k int) Option {
	return func(s *settings) {
		if k < 0 {
			s.fail("negative replica count %d", k)
			return
		}
		s.cfg.Replicas = k
	}
}

// WithSpeculation evaluates m candidate moves per annealing step
// concurrently, each against its own copy of the incremental-cost state, and
// commits the first acceptance in a fixed candidate order. 0 and 1 (the
// default) select the serial move loop. Like WithReplicas, m >= 2 keeps the
// GOMAXPROCS-independence guarantee — same seed and shape, byte-identical
// Result — while walking a different (still deterministic) move sequence
// than serial. Composes with WithReplicas: every replica evaluates m
// candidates per step.
func WithSpeculation(m int) Option {
	return func(s *settings) {
		if m < 0 {
			s.fail("negative speculation width %d", m)
			return
		}
		s.cfg.Speculation = m
	}
}

// WithIncrementalCost selects the annealing-loop cost evaluator. Enabled by
// default: moves repack only the dies they touch and patch cached per-net
// wirelength/delay and per-die thermal state, with the full-recompute path
// kept as the debugging reference. Disabling it recomputes every term from
// scratch on every move. Both evaluators find the identical best floorplan
// for a fixed seed; their per-move costs agree to well within 1e-9.
func WithIncrementalCost(enabled bool) Option {
	return func(s *settings) {
		v := enabled
		s.cfg.IncrementalCost = &v
	}
}

// WithIncrementalVoltage selects the incremental voltage-volume refresh.
// Enabled by default: the annealing loop holds a cached assignment engine
// (per-module feasible-level masks, adjacency lists, per-root candidate
// trees) and each stride refresh regrows only the candidate trees whose
// inputs changed since the previous refresh, with the dirty set derived from
// the move journal. Disabling it recomputes the assignment from scratch at
// every refresh. Both paths produce identical voltage volumes and scales for
// a fixed seed (see WithCostCrossCheck); only effective together with
// WithIncrementalCost, since the dirty set comes from its move journal.
func WithIncrementalVoltage(enabled bool) Option {
	return func(s *settings) {
		v := enabled
		s.cfg.IncrementalVoltage = &v
	}
}

// WithIncrementalEntropy selects the incremental spatial-entropy refresh
// (TSC mode). Enabled by default: each die holds an entropy cache that
// maintains the nested-means value sort and evaluates the per-class
// Manhattan terms of Eq. 3 from coordinate histograms, patching both from
// the power-map diff of each move instead of recomputing the metric from
// scratch per dirty die. Disabling it restores the from-scratch evaluation.
// Both paths agree within 1e-9 per die (see WithCostCrossCheck) and produce
// the identical best floorplan for a fixed seed; only effective together
// with WithIncrementalCost, since the caches live in its move journal.
func WithIncrementalEntropy(enabled bool) Option {
	return func(s *settings) {
		v := enabled
		s.cfg.IncrementalEntropy = &v
	}
}

// WithAdjacencyIndex selects the churn-tolerant adjacency structure inside
// the incremental voltage engine. Enabled by default: the cached assigner
// keeps a bucketed interval index of module adjacency and each stride
// refresh patches only the neighbour rows the moved modules touched,
// replacing the full adjacency re-sweep and all-rows diff. Disabling it
// restores the re-sweep (the debugging reference the index is pinned
// against). Row sets are exactly equal either way; only effective together
// with WithIncrementalVoltage, which owns the assigner.
func WithAdjacencyIndex(enabled bool) Option {
	return func(s *settings) {
		v := enabled
		s.cfg.AdjacencyIndex = &v
	}
}

// WithIncrementalSTA selects the incremental static-timing engine. Enabled
// by default: the annealing loop holds two timing caches — the reference
// analysis feeding voltage refreshes and the delay-scaled one feeding the
// critical-delay cost term — that patch Arrive/Depart and the global
// critical delay from each move's refreshed nets instead of re-running two
// full-design STA passes per evaluation, with journaled undo for rejected
// moves. Disabling it restores the per-evaluation full passes (the
// debugging reference the caches are pinned against). Both paths agree
// within 1e-9 on every analysis field (see WithCostCrossCheck) and produce
// the identical best floorplan for a fixed seed; only effective together
// with WithIncrementalCost, since the patches come from its move journal.
func WithIncrementalSTA(enabled bool) Option {
	return func(s *settings) {
		v := enabled
		s.cfg.IncrementalSTA = &v
	}
}

// WithCostCrossCheck re-evaluates every annealing move through the full
// recompute path and panics if the incremental cost drifts beyond 1e-9
// (relative); with WithIncrementalVoltage it additionally pins every
// incremental voltage refresh against a from-scratch assignment (identical
// volumes, total power within 1e-9), with WithAdjacencyIndex the cached
// adjacency rows against a fresh sweep (exact equality), with
// WithIncrementalEntropy every patched per-die entropy against a
// from-scratch recompute (1e-9 relative), and with WithIncrementalSTA both
// cached timing analyses against a full STA pass on every evaluation (1e-9
// on every field). Debug aid: it forfeits the entire incremental speedup.
// It has no effect when WithIncrementalCost(false) is set.
func WithCostCrossCheck(enabled bool) Option {
	return func(s *settings) { s.cfg.CostCrossCheck = enabled }
}

// WithChurnStats surfaces the exact-diff repack churn counters in
// Result.Stats: the pack_* fields (moves through the diff packer, per-die
// diffs, early exits, replayed positions, changed-module totals and p50/p95
// per move) plus the sta_gate_trips and adj_bulk_fallbacks fallback-path
// counters. The counters are always collected; this knob only controls
// whether they appear on the wire, so the default JSON encoding stays
// byte-identical to earlier releases. Default off.
func WithChurnStats(enabled bool) Option {
	return func(s *settings) { s.churnStats = enabled }
}
