package tscfp

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
)

// Grid describes a parameter sweep: the cross product of Seeds × Modes ×
// GridNs × Iterations over one design, each cell one independent flow run.
// Empty axes default to a single element (seed 1, TSCAware, flow-default
// grid and budget), so the zero Grid with only Design set runs one cell.
type Grid struct {
	// Design is floorplanned in every cell. Required.
	Design *Design
	// Seeds are the random seeds to sweep (see WithSeed's determinism
	// contract: per-cell results are independent of worker scheduling).
	Seeds []int64
	// Modes are the floorplanning modes to sweep.
	Modes []Mode
	// GridNs are the thermal/leakage grid resolutions to sweep (0 = flow
	// default).
	GridNs []int
	// Iterations are the annealing budgets to sweep (0 = flow default).
	Iterations []int
	// Options are applied to every cell before the cell's own axes, so
	// per-cell knobs win over a conflicting shared option.
	Options []Option
}

// Cell identifies one point of the grid. Index is the cell's position in
// Cells() order (seeds outermost, iterations innermost) and in Sweep's
// result slice.
type Cell struct {
	Index      int   `json:"index"`
	Seed       int64 `json:"seed"`
	Mode       Mode  `json:"mode"`
	GridN      int   `json:"grid_n"`
	Iterations int   `json:"iterations"`
}

// Options returns the cell as flow options, to be appended after the grid's
// shared options.
func (c Cell) Options() []Option {
	opts := []Option{WithSeed(c.Seed), WithMode(c.Mode)}
	if c.GridN > 0 {
		opts = append(opts, WithGridN(c.GridN))
	}
	if c.Iterations > 0 {
		opts = append(opts, WithIterations(c.Iterations))
	}
	return opts
}

// Cells enumerates the grid in deterministic order: seeds outermost, then
// modes, grid resolutions, and annealing budgets.
func (g *Grid) Cells() []Cell {
	seeds := g.Seeds
	if len(seeds) == 0 {
		seeds = []int64{1}
	}
	modes := g.Modes
	if len(modes) == 0 {
		modes = []Mode{TSCAware}
	}
	gridNs := g.GridNs
	if len(gridNs) == 0 {
		gridNs = []int{0}
	}
	iters := g.Iterations
	if len(iters) == 0 {
		iters = []int{0}
	}
	var cells []Cell
	for _, seed := range seeds {
		for _, mode := range modes {
			for _, gn := range gridNs {
				for _, it := range iters {
					cells = append(cells, Cell{
						Index: len(cells), Seed: seed, Mode: mode,
						GridN: gn, Iterations: it,
					})
				}
			}
		}
	}
	return cells
}

// SweepResult pairs one grid cell with its outcome. Exactly one of Result
// and Err is non-nil; a cancelled sweep reports ctx.Err() for every cell
// that did not complete.
type SweepResult struct {
	Cell   Cell
	Result *Result
	Err    error
}

// sweepSettings holds the sweep-level knobs.
type sweepSettings struct {
	workers int
}

// SweepOption configures Sweep and Stream, independently of the per-flow
// Options carried by the Grid.
type SweepOption func(*sweepSettings)

// WithWorkers sets the worker-pool size. Values < 1 (and the default)
// select GOMAXPROCS workers; the pool never exceeds the cell count.
func WithWorkers(n int) SweepOption {
	return func(s *sweepSettings) { s.workers = n }
}

// Sweep runs every cell of the grid on a worker pool and returns the
// results ordered by Cell.Index. Per-cell failures (including cancellation)
// are reported in SweepResult.Err; the returned error is non-nil only for a
// malformed grid. Each worker runs independent flows, so peak memory scales
// with the worker count.
func Sweep(ctx context.Context, grid Grid, opts ...SweepOption) ([]SweepResult, error) {
	ch, err := Stream(ctx, grid, opts...)
	if err != nil {
		return nil, err
	}
	var out []SweepResult
	for sr := range ch {
		out = append(out, sr)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Cell.Index < out[b].Cell.Index })
	return out, nil
}

// Stream is Sweep's streaming form: it returns immediately with a channel
// that yields one SweepResult per cell as workers finish (completion order,
// not grid order) and is closed once all cells are accounted for. On
// cancellation, cells that have not finished drain out with Err set to
// ctx.Err(), so consumers always observe exactly len(grid.Cells()) sends.
func Stream(ctx context.Context, grid Grid, opts ...SweepOption) (<-chan SweepResult, error) {
	if grid.Design == nil || grid.Design.d == nil {
		return nil, fmt.Errorf("tscfp: sweep grid has no design")
	}
	cells := grid.Cells()
	// Build every flow up front so option errors surface before any work
	// starts (and before the caller commits to draining the channel).
	flows := make([]*Flow, len(cells))
	for i, c := range cells {
		f, err := NewFlow(grid.Design, append(append([]Option(nil), grid.Options...), c.Options()...)...)
		if err != nil {
			return nil, fmt.Errorf("tscfp: sweep cell %d (seed %d, %s): %w", c.Index, c.Seed, c.Mode, err)
		}
		flows[i] = f
	}

	var s sweepSettings
	for _, opt := range opts {
		opt(&s)
	}
	workers := s.workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	// A multi-worker pool saturates the CPU with whole cells; nesting each
	// cell's solver/blur fan-out under it would oversubscribe the machine
	// (workers × GOMAXPROCS runnable goroutines). Default pooled cells to
	// the serial per-run path unless WithParallelism was given explicitly.
	// Results are identical either way (see WithParallelism).
	if workers > 1 {
		for _, f := range flows {
			if !f.parSet {
				f.cfg.Parallelism = 1
			}
		}
	}

	// Buffered to the cell count so neither workers nor the cancellation
	// drain ever block on a consumer that stopped reading early — an
	// abandoned Stream finishes its in-flight cells and all goroutines exit.
	out := make(chan SweepResult, len(cells))
	jobs := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range jobs {
				res, err := flows[i].Run(ctx)
				out <- SweepResult{Cell: cells[i], Result: res, Err: err}
			}
		}()
	}
	go func() {
		defer close(jobs)
		for i := range cells {
			select {
			case jobs <- i:
			case <-ctx.Done():
				// Report the never-started cells instead of dropping them.
				// Workers are still ranging over jobs here (it closes when
				// this goroutine returns), so out cannot be closed yet.
				for j := i; j < len(cells); j++ {
					out <- SweepResult{Cell: cells[j], Err: ctx.Err()}
				}
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(out)
	}()
	return out, nil
}
