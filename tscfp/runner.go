package tscfp

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/report"
	"repro/internal/tsv"
)

// Flow is one configured floorplanning run. A Flow is immutable after
// NewFlow and safe to Run multiple times (each Run is independent) or from
// multiple goroutines.
type Flow struct {
	design   *Design
	mode     Mode
	cfg      core.Config
	progress func(Event)
	// parSet records an explicit WithParallelism; Sweep respects it when
	// defaulting pooled cells to serial per-run parallelism.
	parSet bool
	// churn surfaces the pack_* churn counters in Result.Stats
	// (WithChurnStats).
	churn bool
}

// NewFlow binds a design to a set of options. Option validation happens
// here, not in Run, so a sweep over many cells fails fast on a bad knob.
func NewFlow(design *Design, opts ...Option) (*Flow, error) {
	if design == nil || design.d == nil {
		return nil, fmt.Errorf("tscfp: nil design")
	}
	s := settings{mode: TSCAware}
	for _, opt := range opts {
		opt(&s)
	}
	if s.err != nil {
		return nil, s.err
	}
	cm, err := s.mode.core()
	if err != nil {
		return nil, err
	}
	cfg := s.cfg
	cfg.Mode = cm
	if s.postProcess != nil {
		pp := *s.postProcess
		cfg.PostProcess = &pp
	}
	if s.weights != nil {
		w := core.Weights(*s.weights)
		cfg.Weights = &w
	}
	return &Flow{design: design, mode: s.mode, cfg: cfg, progress: s.progress, parSet: s.parSet, churn: s.churnStats}, nil
}

// Mode returns the flow's configured mode.
func (f *Flow) Mode() Mode { return f.mode }

// Design returns the flow's design.
func (f *Flow) Design() *Design { return f.design }

// Run executes the full flow: annealing with the fast thermal analysis in
// the loop, signal-TSV planning, voltage assignment with timing repair,
// detailed thermal verification, and — in TSC-aware mode — the dummy-TSV
// post-processing stage. Cancellation of ctx is honored between annealing
// moves and thermal-solver sweeps; a cancelled Run returns ctx.Err() and no
// partial Result.
func (f *Flow) Run(ctx context.Context) (*Result, error) {
	cfg := f.cfg // per-run copy: core mutates defaults in place
	if f.progress != nil {
		prog := f.progress
		cfg.Progress = func(ev core.ProgressEvent) {
			prog(Event{Stage: Stage(ev.Stage), Done: ev.Done, Total: ev.Total, Cost: ev.Cost})
		}
	}
	res, err := core.RunContext(ctx, f.design.d, cfg)
	if err != nil {
		return nil, err
	}
	return newResult(res, f.mode, f.cfg.Seed, f.churn), nil
}

// Run is the one-call convenience wrapper: NewFlow + Flow.Run.
func Run(ctx context.Context, design *Design, opts ...Option) (*Result, error) {
	f, err := NewFlow(design, opts...)
	if err != nil {
		return nil, err
	}
	return f.Run(ctx)
}

// newResult snapshots a completed internal run into the public, JSON-stable
// Result shape.
func newResult(res *core.Result, mode Mode, seed int64, churn bool) *Result {
	r := &Result{
		Benchmark: res.Design.Name,
		Mode:      mode,
		Seed:      seed,
		Dies:      res.Layout.Dies,
		OutlineW:  res.Layout.OutlineW,
		OutlineH:  res.Layout.OutlineH,
		GridN:     res.PowerMaps[0].NX,
		Legal:     res.Layout.Legal(),
		Metrics:   newMetrics(&res.Metrics),
		Stats: RunStats{
			Evals:                    res.EvalStats.Evals,
			FullEvals:                res.EvalStats.FullEvals,
			IncrementalEvals:         res.EvalStats.IncrementalEvals,
			VoltRefreshes:            res.EvalStats.VoltRefreshes,
			VoltIncrementalRefreshes: res.EvalStats.VoltIncrementalRefreshes,
			VoltCandidatesReused:     res.EvalStats.VoltCandidatesReused,
			VoltCandidatesRegrown:    res.EvalStats.VoltCandidatesRegrown,
			VoltCrossChecks:          res.EvalStats.VoltCrossChecks,
			EntropyPatched:           res.EvalStats.EntropyPatched,
			EntropyRebuilt:           res.EvalStats.EntropyRebuilt,
			EntropyCrossChecks:       res.EvalStats.EntropyCrossChecks,
			AdjFullSweeps:            res.EvalStats.AdjFullSweeps,
			AdjIncrementalUpdates:    res.EvalStats.AdjIncrementalUpdates,
			AdjRowsChanged:           res.EvalStats.AdjRowsChanged,
			AdjCrossChecks:           res.EvalStats.AdjCrossChecks,
			STAPatches:               res.EvalStats.STAPatches,
			STARebuilds:              res.EvalStats.STARebuilds,
			STAModulesRecomputed:     res.EvalStats.STAModulesRecomputed,
			STACritRescans:           res.EvalStats.STACritRescans,
			STACrossChecks:           res.EvalStats.STACrossChecks,
			DiesRepacked:             res.EvalStats.DiesRepacked,
			DiesReused:               res.EvalStats.DiesReused,
			NetsRecomputed:           res.EvalStats.NetsRecomputed,
			NetsReused:               res.EvalStats.NetsReused,
			ResponsesComputed:        res.EvalStats.ResponsesComputed,
			ResponsesReused:          res.EvalStats.ResponsesReused,
			SolverSweeps:             res.SolverStats.Sweeps,
			SolverResidual:           res.SolverStats.Residual,
			SolverConverged:          res.SolverStats.Converged,
			ReplicaCount:             res.EvalStats.Replicas,
			ReplicaSwapAttempts:      res.EvalStats.ReplicaSwapAttempts,
			ReplicaSwapAccepts:       res.EvalStats.ReplicaSwapAccepts,
			ReplicaBest:              res.EvalStats.ReplicaBest,
			SpecWorkers:              res.EvalStats.SpecWorkers,
			SpecBatches:              res.EvalStats.SpecBatches,
			SpecCommits:              res.EvalStats.SpecCommits,
			SpecDiscarded:            res.EvalStats.SpecDiscarded,
		},
		raw: res,
	}
	if churn {
		r.Stats.PackMoves = res.EvalStats.PackMoves
		r.Stats.PackDieDiffs = res.EvalStats.PackDieDiffs
		r.Stats.PackEarlyExits = res.EvalStats.PackEarlyExits
		r.Stats.PackReplayedPositions = res.EvalStats.PackReplayedPositions
		r.Stats.PackChangedModules = res.EvalStats.PackChangedModules
		r.Stats.PackChangedP50 = res.EvalStats.PackChangedPercentile(0.50)
		r.Stats.PackChangedP95 = res.EvalStats.PackChangedPercentile(0.95)
		r.Stats.STAGateTrips = res.EvalStats.STAGateTrips
		r.Stats.AdjBulkFallbacks = res.EvalStats.AdjBulkFallbacks
	}
	for mi, m := range res.Design.Modules {
		rect := res.Layout.Rects[mi]
		r.Modules = append(r.Modules, PlacedModule{
			Name: m.Name, Die: res.Layout.DieOf[mi],
			X: rect.X, Y: rect.Y, W: rect.W, H: rect.H,
			PowerW:    m.Power * res.Assignment.PowerScale[mi],
			VoltageV:  res.Assignment.LevelOf[mi].V,
			Sensitive: m.Sensitive,
		})
	}
	for _, v := range res.TSVs.TSVs {
		r.TSVs = append(r.TSVs, TSV{
			Kind: v.Kind.String(), X: v.Pos.X, Y: v.Pos.Y,
			Net: v.Net, Count: v.Count, Gap: v.Gap,
		})
	}
	for _, v := range res.Assignment.Volumes {
		r.Volumes = append(r.Volumes, VoltageVolume{
			Modules: append([]int(nil), v.Modules...), VoltageV: v.Level.V,
		})
	}
	for d := 0; d < res.Layout.Dies; d++ {
		r.PowerMaps = append(r.PowerMaps, append([]float64(nil), res.PowerMaps[d].Data...))
		r.TempMaps = append(r.TempMaps, append([]float64(nil), res.TempMaps[d].Data...))
	}
	return r
}

func newMetrics(m *core.Metrics) Metrics {
	out := Metrics{
		S1: m.S1, S2: m.S2, R1: m.R1, R2: m.R2,
		PowerW:                m.PowerW,
		CriticalNS:            m.CriticalNS,
		WirelengthM:           m.WirelengthM,
		PeakTempK:             m.PeakTempK,
		SignalTSVs:            m.SignalTSVs,
		DummyTSVs:             m.DummyTSVs,
		VoltageVolumes:        m.VoltageVolumes,
		RuntimeSec:            m.RuntimeSec,
		PostCorrelationBefore: m.PostCorrelationBefore,
		PostCorrelationAfter:  m.PostCorrelationAfter,
		SVF1:                  m.SVF1,
		SVF2:                  m.SVF2,
		MeanStability1:        m.MeanStability1,
		MeanStability2:        m.MeanStability2,
	}
	for _, d := range m.PerDie {
		out.PerDie = append(out.PerDie, DieMetrics{
			R: d.R, S: d.S, SVF: d.SVF, MeanStability: d.MeanStability,
		})
	}
	return out
}

// PowerGrid reconstructs die d's power map (W per cell) from the snapshot.
func (r *Result) PowerGrid(d int) (*geom.Grid, error) { return r.grid(r.PowerMaps, d) }

// TempGrid reconstructs die d's temperature map (K) from the snapshot.
func (r *Result) TempGrid(d int) (*geom.Grid, error) { return r.grid(r.TempMaps, d) }

func (r *Result) grid(maps [][]float64, d int) (*geom.Grid, error) {
	if d < 0 || d >= len(maps) {
		return nil, fmt.Errorf("tscfp: die %d out of range", d)
	}
	if len(maps[d]) != r.GridN*r.GridN {
		return nil, fmt.Errorf("tscfp: die %d map has %d cells, want %d", d, len(maps[d]), r.GridN*r.GridN)
	}
	g := geom.NewGrid(r.GridN, r.GridN)
	copy(g.Data, maps[d])
	return g, nil
}

// FloorplanASCII renders die d's floorplan as terminal ASCII art. It needs
// the live layout and returns "" on a Result decoded from JSON.
func (r *Result) FloorplanASCII(d, width int) string {
	if r.raw == nil {
		return ""
	}
	return report.RenderFloorplan(r.raw.Layout, d, width)
}

// PowerHeatmap renders die d's power map as ASCII art, with TSV positions
// overlaid ('o' single vias, 'O' groups). Works on decoded Results too.
func (r *Result) PowerHeatmap(d int) (string, error) {
	g, err := r.PowerGrid(d)
	if err != nil {
		return "", err
	}
	return report.HeatmapWithTSVs(g, r.tsvPlan()), nil
}

// TempHeatmap renders die d's temperature map as ASCII art.
func (r *Result) TempHeatmap(d int) (string, error) {
	g, err := r.TempGrid(d)
	if err != nil {
		return "", err
	}
	return report.Heatmap(g), nil
}

// tsvPlan rebuilds a plan view of the snapshot TSVs for rendering.
func (r *Result) tsvPlan() *tsv.Plan {
	if r.raw != nil {
		return r.raw.TSVs
	}
	p := &tsv.Plan{OutlineW: r.OutlineW, OutlineH: r.OutlineH}
	for _, v := range r.TSVs {
		kind := tsv.Signal
		if v.Kind == tsv.Dummy.String() {
			kind = tsv.Dummy
		}
		p.TSVs = append(p.TSVs, tsv.TSV{
			Kind: kind, Pos: geom.Point{X: v.X, Y: v.Y},
			Net: v.Net, Count: v.Count, Gap: v.Gap,
		})
	}
	return p
}
