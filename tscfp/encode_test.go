package tscfp

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestBenchmarkUnknownName pins the error path for a bad benchmark name —
// the first thing a bad job submission hits.
func TestBenchmarkUnknownName(t *testing.T) {
	for _, name := range []string{"", "n9000", "N100", "ibm99"} {
		d, err := Benchmark(name)
		if err == nil || d != nil {
			t.Errorf("Benchmark(%q) = %v, %v; want error", name, d, err)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("MustBenchmark on an unknown name did not panic")
		}
	}()
	MustBenchmark("n9000")
}

// TestDesignDecodeTruncated: every truncation of a valid design document
// must fail cleanly (an error, never a panic or a silently partial design).
func TestDesignDecodeTruncated(t *testing.T) {
	full, err := json.Marshal(MustBenchmark("n100"))
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 1, len(full) / 4, len(full) / 2, len(full) - 1} {
		var d Design
		if err := json.Unmarshal(full[:cut], &d); err == nil {
			t.Errorf("truncation at %d/%d bytes decoded without error", cut, len(full))
		}
	}
}

// TestDesignDecodeInvalid covers the structured error paths of
// Design.UnmarshalJSON: unknown module kinds and netlists that fail
// validation.
func TestDesignDecodeInvalid(t *testing.T) {
	cases := map[string]string{
		"unknown module kind": `{"name":"x","dies":2,"outline_w_um":100,"outline_h_um":100,
			"modules":[{"name":"m0","kind":"gaseous","w_um":10,"h_um":10,"power_w":1}],
			"nets":[]}`,
		"invalid netlist": `{"name":"x","dies":2,"outline_w_um":100,"outline_h_um":100,
			"modules":[{"name":"m0","kind":"hard","w_um":10,"h_um":10,"power_w":1}],
			"nets":[{"name":"n0","modules":[0,99]}]}`,
	}
	for name, doc := range cases {
		var d Design
		if err := json.Unmarshal([]byte(doc), &d); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

// TestResultDecodeTruncated: ReadResult on a truncated document errors.
func TestResultDecodeTruncated(t *testing.T) {
	doc := `{"benchmark":"n100","mode":"tsc-aware","dies":2,"grid_n":4,`
	if _, err := ReadResult(strings.NewReader(doc)); err == nil {
		t.Fatal("truncated result decoded without error")
	}
	// Structurally inconsistent (validation, not syntax): maps missing.
	bad := `{"benchmark":"n100","mode":"tsc-aware","dies":2,"grid_n":4,
		"metrics":{"per_die":[]},"power_maps":[],"temp_maps":[]}`
	if _, err := ReadResult(strings.NewReader(bad)); err == nil {
		t.Fatal("result with missing maps validated without error")
	}
}

// TestAllBenchmarksDesignRoundTrip: every built-in benchmark survives
// Design -> JSON -> Design with byte-identical re-encoding and an equal
// netlist shape — the property that makes benchmark-by-name submissions
// and their inline-design equivalents content-address identically.
func TestAllBenchmarksDesignRoundTrip(t *testing.T) {
	names := Benchmarks()
	if len(names) == 0 {
		t.Fatal("no built-in benchmarks")
	}
	for _, name := range names {
		orig := MustBenchmark(name)
		data, err := json.Marshal(orig)
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		var back Design
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("%s: unmarshal: %v", name, err)
		}
		again, err := json.Marshal(&back)
		if err != nil {
			t.Fatalf("%s: re-marshal: %v", name, err)
		}
		if !bytes.Equal(data, again) {
			t.Errorf("%s: JSON not stable across a round trip (%d vs %d bytes)",
				name, len(data), len(again))
		}
		if back.Name() != orig.Name() ||
			back.Dies() != orig.Dies() ||
			back.NumModules() != orig.NumModules() ||
			back.NumNets() != orig.NumNets() ||
			back.NumTerminals() != orig.NumTerminals() ||
			back.HardModules() != orig.HardModules() {
			t.Errorf("%s: decoded design shape differs", name)
		}
	}
}
