// Package tscfp is the public entry point to the TSC-aware 3D floorplanning
// flow reproduced from Knechtel & Sinanoglu, "On Mitigation of Side-Channel
// Attacks in 3D ICs: Decorrelating Thermal Patterns from Power and Activity"
// (DAC 2017).
//
// The package wraps the internal flow behind a small, stable surface:
//
//	design, _ := tscfp.Benchmark("n100")
//	flow, _ := tscfp.NewFlow(design,
//		tscfp.WithMode(tscfp.TSCAware),
//		tscfp.WithIterations(3000),
//		tscfp.WithSeed(1))
//	res, err := flow.Run(ctx)
//
// Run honors context cancellation down to the annealing moves and thermal
// solver sweeps, emits optional per-stage progress events (WithProgress),
// and returns a Result that serializes to stable JSON for downstream
// tooling. Sweep fans a parameter grid (seeds × modes × grid sizes) out over
// a worker pool — the batch primitive for experiment campaigns.
package tscfp

import (
	"fmt"
	"sort"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/netlist"
)

// Design is a block-level design accepted by the flow: modules, nets,
// terminal pins, and the fixed per-die outline of the 3D stack. Obtain one
// from Benchmark, or decode one from JSON (see encode.go's schema).
type Design struct {
	d *netlist.Design
}

// Benchmark synthesizes one of the paper's Table 1 benchmarks
// (n100, n200, n300, ibm01, ibm03, ibm07) deterministically.
func Benchmark(name string) (*Design, error) {
	spec, err := bench.ByName(name)
	if err != nil {
		return nil, err
	}
	d, err := bench.Generate(spec)
	if err != nil {
		return nil, err
	}
	return &Design{d: d}, nil
}

// MustBenchmark is Benchmark, panicking on unknown names (for examples).
func MustBenchmark(name string) *Design {
	d, err := Benchmark(name)
	if err != nil {
		panic(err)
	}
	return d
}

// Benchmarks returns the available benchmark names in Table 1 order.
func Benchmarks() []string {
	var names []string
	for _, s := range bench.Table1() {
		names = append(names, s.Name)
	}
	return names
}

// ModuleInfo describes one module of a Design.
type ModuleInfo struct {
	Name      string  `json:"name"`
	Hard      bool    `json:"hard"`
	W         float64 `json:"w_um"`
	H         float64 `json:"h_um"`
	PowerW    float64 `json:"power_w"`
	Sensitive bool    `json:"sensitive,omitempty"`
}

// Name returns the design name.
func (d *Design) Name() string { return d.d.Name }

// Dies returns the stack height.
func (d *Design) Dies() int { return d.d.Dies }

// Outline returns the fixed per-die outline in um.
func (d *Design) Outline() (w, h float64) { return d.d.OutlineW, d.d.OutlineH }

// NumModules, NumNets, and NumTerminals report the netlist size.
func (d *Design) NumModules() int { return len(d.d.Modules) }

// NumNets returns the net count.
func (d *Design) NumNets() int { return len(d.d.Nets) }

// NumTerminals returns the terminal-pin count.
func (d *Design) NumTerminals() int { return len(d.d.Terminals) }

// HardModules and SoftModules report the module mix.
func (d *Design) HardModules() int { return d.d.HardCount() }

// SoftModules returns the soft-module count.
func (d *Design) SoftModules() int { return d.d.SoftCount() }

// TotalPower returns the nominal power budget in W at 1.0 V.
func (d *Design) TotalPower() float64 { return d.d.TotalPower() }

// Modules returns a snapshot of the module list, in index order. Indices
// into this slice are the module indices used by WithProtectedModules,
// SensitiveModules, and Result.Modules.
func (d *Design) Modules() []ModuleInfo {
	out := make([]ModuleInfo, len(d.d.Modules))
	for i, m := range d.d.Modules {
		out[i] = ModuleInfo{
			Name:      m.Name,
			Hard:      m.Kind == netlist.Hard,
			W:         m.W,
			H:         m.H,
			PowerW:    m.Power,
			Sensitive: m.Sensitive,
		}
	}
	return out
}

// SensitiveModules returns the indices of security-critical modules (the
// attack targets of Sec. 5), in index order.
func (d *Design) SensitiveModules() []int {
	var out []int
	for i, m := range d.d.Modules {
		if m.Sensitive {
			out = append(out, i)
		}
	}
	return out
}

// HottestModules returns the indices of the n highest-power modules,
// hottest first (ties broken by index for determinism).
func (d *Design) HottestModules(n int) []int {
	order := make([]int, len(d.d.Modules))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return d.d.Modules[order[a]].Power > d.d.Modules[order[b]].Power
	})
	if n > len(order) {
		n = len(order)
	}
	return order[:n]
}

// Netlist exposes the underlying design for in-repo tooling built on the
// internal packages (attacks, custom analyses). External importers cannot
// name the returned type but may pass it along unchanged.
func (d *Design) Netlist() *netlist.Design { return d.d }

// NewDesign wraps a validated netlist for callers inside this module that
// construct designs programmatically.
func NewDesign(n *netlist.Design) (*Design, error) {
	if n == nil {
		return nil, fmt.Errorf("tscfp: nil netlist")
	}
	if err := n.Validate(); err != nil {
		return nil, fmt.Errorf("tscfp: invalid design: %w", err)
	}
	return &Design{d: n}, nil
}

// Core exposes the completed internal flow result for in-repo tooling (the
// attack simulations, the noise-injection baseline, the ASCII reports). It
// is nil on a Result decoded from JSON — only live runs carry the handle.
func (r *Result) Core() *core.Result { return r.raw }
