package tscfp

import "fmt"

// RunOptions is the JSON-decodable knob set accepted by out-of-process
// callers (the tscfpd job API, config files). It mirrors the functional
// options of this package one field per knob; the zero value of every field
// selects the same default as omitting the corresponding option, so a
// decoded `{}` behaves exactly like NewFlow(design) with no options.
//
// Strings follow the CLI spellings: Mode accepts the ParseMode forms
// ("pa", "power-aware", "tsc", "tsc-aware") and PostCriterion accepts
// "bottom-die" or "all-dies". Marshaling is deterministic (fields in
// declaration order, omitempty throughout), which serving layers rely on
// when content-addressing a submission — normalize Mode via Canonical
// before hashing so "tsc" and "tsc-aware" address the same artifact.
type RunOptions struct {
	Mode              string   `json:"mode,omitempty"`
	Seed              int64    `json:"seed,omitempty"`
	Iterations        int      `json:"iterations,omitempty"`
	GridN             int      `json:"grid_n,omitempty"`
	ActivitySamples   int      `json:"activity_samples,omitempty"`
	ActivitySigma     float64  `json:"activity_sigma,omitempty"`
	PostProcess       *bool    `json:"post_process,omitempty"`
	PostCriterion     string   `json:"post_criterion,omitempty"`
	ProtectedModules  []int    `json:"protected_modules,omitempty"`
	MaxDummyGroups    int      `json:"max_dummy_groups,omitempty"`
	DummyViasPerGroup int      `json:"dummy_vias_per_group,omitempty"`
	VoltEvery         int      `json:"volt_every,omitempty"`
	VoltTargetFactor  float64  `json:"volt_target_factor,omitempty"`
	Weights           *Weights `json:"weights,omitempty"`
	Parallelism       *int     `json:"parallelism,omitempty"`
	// Replicas and Speculation select the parallel annealer (WithReplicas /
	// WithSpeculation). 0 and 1 both mean the serial path; Canonical
	// normalizes 1 to 0 so the two spellings content-address identically.
	Replicas    int `json:"replicas,omitempty"`
	Speculation int `json:"speculation,omitempty"`
}

// Canonical returns a normalized copy: mode and criterion spellings are
// expanded to their full forms ("tsc" becomes "tsc-aware"). Two RunOptions
// that configure the same flow canonicalize to identical JSON, making the
// result a safe content-address component.
func (o RunOptions) Canonical() (RunOptions, error) {
	if o.Mode != "" {
		m, err := ParseMode(o.Mode)
		if err != nil {
			return RunOptions{}, err
		}
		o.Mode = string(m)
	}
	switch PostCriterion(o.PostCriterion) {
	case "", BottomDie, AllDies:
	default:
		return RunOptions{}, fmt.Errorf("tscfp: unknown post criterion %q", o.PostCriterion)
	}
	// 1 and 0 both select the serial annealing path and must hash the same;
	// negatives would otherwise canonicalize silently and only fail later in
	// NewFlow, after a dedupe key was already derived from them.
	if o.Replicas < 0 {
		return RunOptions{}, fmt.Errorf("tscfp: negative replica count %d", o.Replicas)
	}
	if o.Speculation < 0 {
		return RunOptions{}, fmt.Errorf("tscfp: negative speculation width %d", o.Speculation)
	}
	if o.Replicas == 1 {
		o.Replicas = 0
	}
	if o.Speculation == 1 {
		o.Speculation = 0
	}
	return o, nil
}

// Options lowers the decoded knobs into functional options for NewFlow.
// Only knobs that differ from their zero value are emitted, so flow
// defaults stay owned by the options themselves. Spelling errors (unknown
// mode or criterion) surface here; range errors (negative budgets, bad
// weights) surface from NewFlow exactly as they would for a direct caller.
func (o RunOptions) Options() ([]Option, error) {
	c, err := o.Canonical()
	if err != nil {
		return nil, err
	}
	var opts []Option
	if c.Mode != "" {
		opts = append(opts, WithMode(Mode(c.Mode)))
	}
	if c.Seed != 0 {
		opts = append(opts, WithSeed(c.Seed))
	}
	if c.Iterations != 0 {
		opts = append(opts, WithIterations(c.Iterations))
	}
	if c.GridN != 0 {
		opts = append(opts, WithGridN(c.GridN))
	}
	if c.ActivitySamples != 0 {
		opts = append(opts, WithActivitySamples(c.ActivitySamples))
	}
	if c.ActivitySigma != 0 {
		opts = append(opts, WithActivitySigma(c.ActivitySigma))
	}
	if c.PostProcess != nil {
		opts = append(opts, WithPostProcess(*c.PostProcess))
	}
	if c.PostCriterion != "" {
		opts = append(opts, WithPostCriterion(PostCriterion(c.PostCriterion)))
	}
	if len(c.ProtectedModules) > 0 {
		opts = append(opts, WithProtectedModules(c.ProtectedModules...))
	}
	if c.MaxDummyGroups != 0 {
		opts = append(opts, WithMaxDummyGroups(c.MaxDummyGroups))
	}
	if c.DummyViasPerGroup != 0 {
		opts = append(opts, WithDummyViasPerGroup(c.DummyViasPerGroup))
	}
	if c.VoltEvery != 0 {
		opts = append(opts, WithVoltEvery(c.VoltEvery))
	}
	if c.VoltTargetFactor != 0 {
		opts = append(opts, WithVoltTargetFactor(c.VoltTargetFactor))
	}
	if c.Weights != nil {
		opts = append(opts, WithWeights(*c.Weights))
	}
	if c.Parallelism != nil {
		opts = append(opts, WithParallelism(*c.Parallelism))
	}
	if c.Replicas != 0 {
		opts = append(opts, WithReplicas(c.Replicas))
	}
	if c.Speculation != 0 {
		opts = append(opts, WithSpeculation(c.Speculation))
	}
	return opts, nil
}
