package tscfp_test

import (
	"context"
	"fmt"

	"repro/tscfp"
)

// Example_sweep fans a small experiment campaign — two seeds in both modes —
// out over the Sweep worker pool and tabulates the legality and metric
// availability of every cell. Budgets are kept tiny so the example runs in
// seconds; a real campaign raises WithIterations and the grid resolution.
func Example_sweep() {
	design := tscfp.MustBenchmark("n100")
	results, err := tscfp.Sweep(context.Background(), tscfp.Grid{
		Design: design,
		Seeds:  []int64{1, 2},
		Modes:  []tscfp.Mode{tscfp.PowerAware, tscfp.TSCAware},
		Options: []tscfp.Option{
			tscfp.WithIterations(60),
			tscfp.WithGridN(16),
			tscfp.WithPostProcess(false),
		},
	}, tscfp.WithWorkers(2))
	if err != nil {
		panic(err)
	}
	for _, sr := range results {
		if sr.Err != nil {
			panic(sr.Err)
		}
		fmt.Printf("cell %d: seed=%d mode=%s dies=%d evals=%d\n",
			sr.Cell.Index, sr.Cell.Seed, sr.Cell.Mode, sr.Result.Dies, sr.Result.Stats.Evals)
	}
	// Output:
	// cell 0: seed=1 mode=power-aware dies=2 evals=111
	// cell 1: seed=1 mode=tsc-aware dies=2 evals=111
	// cell 2: seed=2 mode=power-aware dies=2 evals=111
	// cell 3: seed=2 mode=tsc-aware dies=2 evals=111
}

// ExampleWithProgress subscribes to per-stage progress events of one flow
// run and counts the events per stage — the hook a CLI progress bar or a
// job queue's status endpoint builds on. The callback runs synchronously on
// the flow goroutine, so it must be cheap.
func ExampleWithProgress() {
	design := tscfp.MustBenchmark("n100")
	counts := map[tscfp.Stage]int{}
	_, err := tscfp.Run(context.Background(), design,
		tscfp.WithMode(tscfp.PowerAware),
		tscfp.WithIterations(200),
		tscfp.WithGridN(16),
		tscfp.WithPostProcess(false),
		tscfp.WithSeed(7),
		tscfp.WithProgress(func(ev tscfp.Event) {
			counts[ev.Stage]++
		}),
	)
	if err != nil {
		panic(err)
	}
	fmt.Printf("anneal events: %v\n", counts[tscfp.StageAnneal] > 0)
	fmt.Printf("finalize events: %d\n", counts[tscfp.StageFinalize])
	fmt.Printf("done events: %d\n", counts[tscfp.StageDone])
	// Output:
	// anneal events: true
	// finalize events: 1
	// done events: 1
}
