package tscfp

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
)

func TestPerfOptionValidation(t *testing.T) {
	design := MustBenchmark("n100")
	if _, err := NewFlow(design, WithParallelism(-1)); err == nil {
		t.Fatal("negative parallelism must fail")
	}
	if _, err := NewFlow(design, WithParallelism(0), WithIncrementalCost(true), WithCostCrossCheck(true)); err != nil {
		t.Fatalf("valid perf options rejected: %v", err)
	}
}

// TestIncrementalTogglesAgree pins the public determinism contract: for a
// fixed seed the incremental and full-recompute evaluators, and every
// parallelism setting, produce the identical result JSON (stats and runtime
// aside).
func TestIncrementalTogglesAgree(t *testing.T) {
	design := MustBenchmark("n100")
	run := func(opts ...Option) *Result {
		t.Helper()
		all := append([]Option{
			WithMode(TSCAware),
			WithIterations(150),
			WithGridN(16),
			WithPostProcess(false),
			WithSeed(5),
		}, opts...)
		res, err := Run(context.Background(), design, all...)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	canon := func(r *Result) string {
		r.Metrics.RuntimeSec = 0
		r.Stats = RunStats{}
		data, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	inc := run(WithIncrementalCost(true), WithParallelism(0))
	if inc.Stats.IncrementalEvals == 0 || inc.Stats.Evals == 0 {
		t.Fatalf("stats not recorded: %+v", inc.Stats)
	}
	if inc.Stats.VoltIncrementalRefreshes == 0 || inc.Stats.VoltCandidatesReused == 0 {
		t.Fatalf("incremental voltage stats not recorded: %+v", inc.Stats)
	}
	// AdjRowsChanged is only counted by the adjacency index (its probe or
	// bulk path), so it witnesses the index engaging even when every update
	// at this design size takes the bulk path.
	if inc.Stats.EntropyPatched == 0 || inc.Stats.AdjRowsChanged == 0 {
		t.Fatalf("default run never engaged the entropy/adjacency caches: %+v", inc.Stats)
	}
	if inc.Stats.STAPatches == 0 || inc.Stats.STAModulesRecomputed == 0 {
		t.Fatalf("default run never engaged the STA caches: %+v", inc.Stats)
	}
	if !inc.Stats.SolverConverged || inc.Stats.SolverSweeps == 0 {
		t.Fatalf("solver stats not recorded: %+v", inc.Stats)
	}
	full := run(WithIncrementalCost(false), WithParallelism(1))
	if full.Stats.IncrementalEvals != 0 {
		t.Fatalf("full run used caches: %+v", full.Stats)
	}
	if canon(inc) != canon(full) {
		t.Fatal("incremental+parallel and full+serial runs disagree")
	}
	checked := run(WithIncrementalCost(true), WithCostCrossCheck(true))
	if checked.Stats.Evals == 0 {
		t.Fatal("cross-checked run recorded no evals")
	}
	if checked.Stats.VoltCrossChecks == 0 {
		t.Fatalf("voltage refreshes were not cross-checked: %+v", checked.Stats)
	}
	if checked.Stats.EntropyCrossChecks == 0 || checked.Stats.AdjCrossChecks == 0 {
		t.Fatalf("entropy/adjacency caches were not cross-checked: %+v", checked.Stats)
	}
	if checked.Stats.STACrossChecks == 0 {
		t.Fatalf("STA caches were not cross-checked: %+v", checked.Stats)
	}
	if canon(checked) != canon(inc) {
		t.Fatal("cross-checked run disagrees")
	}
	fullVolt := run(WithIncrementalVoltage(false))
	if fullVolt.Stats.VoltIncrementalRefreshes != 0 {
		t.Fatalf("full-voltage run used the assigner: %+v", fullVolt.Stats)
	}
	if canon(fullVolt) != canon(inc) {
		t.Fatal("incremental and full voltage refreshes disagree")
	}
	fullEntAdj := run(WithIncrementalEntropy(false), WithAdjacencyIndex(false))
	if fullEntAdj.Stats.EntropyPatched != 0 || fullEntAdj.Stats.AdjRowsChanged != 0 {
		t.Fatalf("disabled entropy/adjacency caches engaged: %+v", fullEntAdj.Stats)
	}
	if canon(fullEntAdj) != canon(inc) {
		t.Fatal("incremental and full entropy/adjacency refreshes disagree")
	}
	fullSTA := run(WithIncrementalSTA(false))
	if fullSTA.Stats.STAPatches != 0 || fullSTA.Stats.STARebuilds != 0 {
		t.Fatalf("disabled STA caches engaged: %+v", fullSTA.Stats)
	}
	if canon(fullSTA) != canon(inc) {
		t.Fatal("incremental and full STA passes disagree")
	}
}

// TestChurnStatsWire pins the churn-counter wire contract: the pack_* keys
// are absent from the JSON encoding unless WithChurnStats opts in (keeping
// default encodings byte-identical across the exact-diff rollout), and an
// opted-in incremental run reports real churn — moves, die diffs, changed
// modules, and ordered percentiles.
func TestChurnStatsWire(t *testing.T) {
	design := MustBenchmark("n100")
	run := func(opts ...Option) *Result {
		t.Helper()
		all := append([]Option{
			WithMode(TSCAware),
			WithIterations(120),
			WithGridN(16),
			WithPostProcess(false),
			WithSeed(5),
		}, opts...)
		res, err := Run(context.Background(), design, all...)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run()
	data, err := plain.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(data, []byte(`"pack_`)) {
		t.Fatal("pack_* churn keys leaked into the default encoding")
	}
	if plain.Stats.PackMoves != 0 {
		t.Fatalf("churn counters surfaced without WithChurnStats: %+v", plain.Stats)
	}
	churn := run(WithChurnStats(true))
	s := churn.Stats
	if s.PackMoves == 0 || s.PackDieDiffs == 0 || s.PackChangedModules == 0 {
		t.Fatalf("opted-in run reported no churn: %+v", s)
	}
	if s.PackChangedP50 <= 0 || s.PackChangedP95 < s.PackChangedP50 {
		t.Fatalf("percentiles not ordered: p50=%d p95=%d", s.PackChangedP50, s.PackChangedP95)
	}
	data, err = churn.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"pack_moves"`)) {
		t.Fatal("WithChurnStats did not surface pack_* keys in the encoding")
	}
	// The knob changes reporting only, never the walk.
	canon := func(r *Result) string {
		r.Metrics.RuntimeSec = 0
		r.Stats = RunStats{}
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if canon(plain) != canon(churn) {
		t.Fatal("WithChurnStats changed the annealing walk")
	}
}
