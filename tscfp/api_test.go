package tscfp

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"
)

// testOptions keeps API tests fast: tiny grid, short anneal, few samples.
func testOptions(extra ...Option) []Option {
	opts := []Option{
		WithGridN(12),
		WithIterations(120),
		WithActivitySamples(6),
		WithMaxDummyGroups(4),
		WithSeed(42),
	}
	return append(opts, extra...)
}

// TestGoldenDeterminism is the WithSeed contract: the same design, seed, and
// options produce byte-identical JSON Results across independent runs.
func TestGoldenDeterminism(t *testing.T) {
	design := MustBenchmark("n100")
	encode := func() []byte {
		t.Helper()
		res, err := Run(context.Background(), design, testOptions(WithMode(TSCAware))...)
		if err != nil {
			t.Fatal(err)
		}
		res.Metrics.RuntimeSec = 0 // wall clock is the one nondeterministic field
		data, err := res.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := encode(), encode()
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed and options produced different JSON (%d vs %d bytes)", len(a), len(b))
	}
}

// TestRunCancellation cancels mid-anneal (from the first progress event) and
// expects a prompt ctx.Err() with no partial result.
func TestRunCancellation(t *testing.T) {
	design := MustBenchmark("n100")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	flow, err := NewFlow(design,
		WithGridN(16),
		WithIterations(100000), // far more budget than the deadline allows
		WithSeed(7),
		WithProgress(func(ev Event) {
			if ev.Stage == StageAnneal {
				cancel()
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res, err := flow.Run(ctx)
	if res != nil {
		t.Fatal("cancelled run returned a partial result")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// A full 100k-iteration run takes minutes; a prompt exit stays well
	// under the generous bound (loose enough for slow CI machines).
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("cancellation took %v, not prompt", elapsed)
	}
}

// TestResultJSONRoundTrip checks that a Result survives encode/decode with
// all snapshot fields intact and validates.
func TestResultJSONRoundTrip(t *testing.T) {
	design := MustBenchmark("n100")
	res, err := Run(context.Background(), design, testOptions()...)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Core() == nil {
		t.Fatal("live result must carry the internal handle")
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadResult(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Core() != nil {
		t.Fatal("decoded result must not carry a live handle")
	}
	if back.Metrics.R1 != res.Metrics.R1 || back.Benchmark != res.Benchmark ||
		len(back.Modules) != len(res.Modules) || len(back.TSVs) != len(res.TSVs) {
		t.Fatal("round trip lost data")
	}
	// Renderers work from the snapshot alone.
	if hm, err := back.PowerHeatmap(0); err != nil || len(hm) == 0 {
		t.Fatalf("decoded heatmap: %q, %v", hm, err)
	}
}

// TestDesignJSONRoundTrip checks a decoded design is flow-equivalent to the
// original: same netlist stats and an identical flow result for the same
// seed.
func TestDesignJSONRoundTrip(t *testing.T) {
	design := MustBenchmark("n100")
	data, err := json.Marshal(design)
	if err != nil {
		t.Fatal(err)
	}
	var back Design
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.NumModules() != design.NumModules() || back.NumNets() != design.NumNets() ||
		back.NumTerminals() != design.NumTerminals() || back.TotalPower() != design.TotalPower() {
		t.Fatal("design round trip changed the netlist")
	}
	run := func(d *Design) *Result {
		t.Helper()
		res, err := Run(context.Background(), d, testOptions(WithMode(PowerAware))...)
		if err != nil {
			t.Fatal(err)
		}
		res.Metrics.RuntimeSec = 0
		return res
	}
	ra, rb := run(design), run(&back)
	ja, _ := ra.JSON()
	jb, _ := rb.JSON()
	if !bytes.Equal(ja, jb) {
		t.Fatal("decoded design floorplans differently from the original")
	}
}

// TestOptionValidation checks bad options fail at NewFlow, not at Run.
func TestOptionValidation(t *testing.T) {
	design := MustBenchmark("n100")
	if _, err := NewFlow(design, WithMode("hyper-aware")); err == nil {
		t.Fatal("bad mode accepted")
	}
	if _, err := NewFlow(design, WithMode("")); err == nil {
		t.Fatal("empty mode accepted (would mislabel results)")
	}
	if _, err := NewFlow(design, WithIterations(-1)); err == nil {
		t.Fatal("negative budget accepted")
	}
	if _, err := NewFlow(nil); err == nil {
		t.Fatal("nil design accepted")
	}
	if _, err := Benchmark("nope"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

// TestProgressEvents checks the stages arrive in flow order and the anneal
// counter is monotone.
func TestProgressEvents(t *testing.T) {
	design := MustBenchmark("n100")
	var stages []Stage
	lastDone := -1
	_, err := Run(context.Background(), design, testOptions(
		WithMode(TSCAware),
		WithProgress(func(ev Event) {
			if len(stages) == 0 || stages[len(stages)-1] != ev.Stage {
				stages = append(stages, ev.Stage)
			}
			if ev.Stage == StageAnneal {
				if ev.Done < lastDone {
					t.Errorf("anneal progress went backwards: %d after %d", ev.Done, lastDone)
				}
				lastDone = ev.Done
			}
		}))...)
	if err != nil {
		t.Fatal(err)
	}
	want := []Stage{StageAnneal, StageFinalize, StageSampling, StagePostProcess, StageDone}
	if len(stages) != len(want) {
		t.Fatalf("stages %v, want %v", stages, want)
	}
	for i := range want {
		if stages[i] != want[i] {
			t.Fatalf("stages %v, want %v", stages, want)
		}
	}
}

// TestPostProcessDefaultByMode checks the tri-state replacement: dummy TSVs
// appear by default only in TSC mode, and WithPostProcess overrides both
// defaults.
func TestPostProcessDefaultByMode(t *testing.T) {
	design := MustBenchmark("n100")
	run := func(opts ...Option) *Result {
		t.Helper()
		res, err := Run(context.Background(), design, testOptions(opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if res := run(WithMode(PowerAware)); res.Metrics.DummyTSVs != 0 {
		t.Fatalf("PA default ran post-processing (%d dummy TSVs)", res.Metrics.DummyTSVs)
	}
	if res := run(WithMode(PowerAware), WithPostProcess(true)); res.Metrics.SVF1 == 0 {
		t.Fatal("WithPostProcess(true) did not run the sampling stage in PA mode")
	}
	if res := run(WithMode(TSCAware), WithPostProcess(false)); res.Metrics.DummyTSVs != 0 {
		t.Fatalf("WithPostProcess(false) still inserted %d dummy TSVs", res.Metrics.DummyTSVs)
	}
}
