package tscfp

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

// sweepGrid is the acceptance grid: 2 seeds × 2 modes × 2 resolutions = 8
// cells, at test scale.
func sweepGrid(t *testing.T) Grid {
	t.Helper()
	return Grid{
		Design: MustBenchmark("n100"),
		Seeds:  []int64{1, 2},
		Modes:  []Mode{PowerAware, TSCAware},
		GridNs: []int{8, 12},
		Options: []Option{
			WithIterations(60),
			WithActivitySamples(4),
			WithMaxDummyGroups(2),
		},
	}
}

// TestSweepCompletesGrid runs the 8-cell grid on 4 workers and checks every
// cell completes with a valid, JSON-serializable result.
func TestSweepCompletesGrid(t *testing.T) {
	grid := sweepGrid(t)
	cells := grid.Cells()
	if len(cells) != 8 {
		t.Fatalf("grid has %d cells, want 8", len(cells))
	}
	results, err := Sweep(context.Background(), grid, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 8 {
		t.Fatalf("sweep returned %d results, want 8", len(results))
	}
	for i, sr := range results {
		if sr.Cell.Index != i {
			t.Fatalf("result %d carries cell index %d", i, sr.Cell.Index)
		}
		if sr.Err != nil {
			t.Fatalf("cell %d (seed %d, %s, grid %d) failed: %v",
				i, sr.Cell.Seed, sr.Cell.Mode, sr.Cell.GridN, sr.Err)
		}
		if sr.Result == nil {
			t.Fatalf("cell %d has neither result nor error", i)
		}
		if err := sr.Result.Validate(); err != nil {
			t.Fatalf("cell %d invalid: %v", i, err)
		}
		if sr.Result.GridN != sr.Cell.GridN {
			t.Fatalf("cell %d ran at grid %d, want %d", i, sr.Result.GridN, sr.Cell.GridN)
		}
		var buf bytes.Buffer
		if err := sr.Result.WriteJSON(&buf); err != nil {
			t.Fatalf("cell %d does not serialize: %v", i, err)
		}
		if _, err := ReadResult(&buf); err != nil {
			t.Fatalf("cell %d JSON does not decode: %v", i, err)
		}
	}
}

// TestSweepMatchesSequentialRuns checks worker scheduling cannot leak into
// results: each sweep cell equals the same flow run alone.
func TestSweepMatchesSequentialRuns(t *testing.T) {
	grid := Grid{
		Design:  MustBenchmark("n100"),
		Seeds:   []int64{3, 4},
		Modes:   []Mode{PowerAware},
		Options: []Option{WithGridN(8), WithIterations(40), WithActivitySamples(2)},
	}
	results, err := Sweep(context.Background(), grid, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, sr := range results {
		if sr.Err != nil {
			t.Fatal(sr.Err)
		}
		solo, err := Run(context.Background(), grid.Design,
			append(append([]Option(nil), grid.Options...), sr.Cell.Options()...)...)
		if err != nil {
			t.Fatal(err)
		}
		a, b := sr.Result, solo
		a.Metrics.RuntimeSec, b.Metrics.RuntimeSec = 0, 0
		ja, _ := a.JSON()
		jb, _ := b.JSON()
		if !bytes.Equal(ja, jb) {
			t.Fatalf("cell %d differs between sweep and solo run", sr.Cell.Index)
		}
	}
}

// TestSweepCancellation cancels a large sweep early; every cell must drain
// out, completed or cancelled, and the channel must close.
func TestSweepCancellation(t *testing.T) {
	grid := Grid{
		Design:  MustBenchmark("n100"),
		Seeds:   []int64{1, 2, 3, 4, 5, 6},
		Modes:   []Mode{PowerAware},
		Options: []Option{WithGridN(8), WithIterations(400), WithActivitySamples(2)},
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ch, err := Stream(ctx, grid, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	var seen, cancelled int
	for sr := range ch {
		if seen == 0 {
			cancel() // first result in hand: stop the rest
		}
		seen++
		if sr.Err != nil {
			if !errors.Is(sr.Err, context.Canceled) {
				t.Fatalf("cell %d: unexpected error %v", sr.Cell.Index, sr.Err)
			}
			cancelled++
		}
	}
	if seen != len(grid.Cells()) {
		t.Fatalf("drained %d results, want %d", seen, len(grid.Cells()))
	}
	if cancelled == 0 {
		t.Fatal("cancellation arrived after every cell finished; enlarge the grid")
	}
}

// TestStreamMixedCancellationExactCellCount is the accounting contract
// under cancellation: with one worker and a many-cell grid cancelled after
// the first result, the channel must yield exactly len(grid.Cells()) sends
// — every cell exactly once — mixing completed cells, the in-flight cell
// (which observes ctx between annealing moves), and the never-started tail
// the dispatcher drains out itself.
func TestStreamMixedCancellationExactCellCount(t *testing.T) {
	grid := Grid{
		Design:  MustBenchmark("n100"),
		Seeds:   []int64{1, 2, 3, 4, 5, 6, 7, 8},
		Modes:   []Mode{PowerAware},
		Options: []Option{WithGridN(8), WithIterations(400), WithActivitySamples(2)},
	}
	cells := grid.Cells()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ch, err := Stream(ctx, grid, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]int, len(cells))
	var completed, cancelled int
	for sr := range ch {
		if seen[sr.Cell.Index] > 0 {
			t.Fatalf("cell %d reported twice", sr.Cell.Index)
		}
		seen[sr.Cell.Index]++
		switch {
		case sr.Err == nil:
			completed++
			cancel() // first completion in hand: stop the rest
		case errors.Is(sr.Err, context.Canceled):
			cancelled++
		default:
			t.Fatalf("cell %d: unexpected error %v", sr.Cell.Index, sr.Err)
		}
	}
	if len(seen) != len(cells) {
		t.Fatalf("observed %d distinct cells, want %d", len(seen), len(cells))
	}
	if completed == 0 || cancelled == 0 {
		t.Fatalf("wanted a mix of completed and cancelled cells, got %d/%d", completed, cancelled)
	}
}

// TestStreamPreCancelledContext: a context cancelled before Stream is even
// called must still account for every cell (all with ctx.Err), never hang,
// and never run a flow to completion.
func TestStreamPreCancelledContext(t *testing.T) {
	grid := sweepGrid(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ch, err := Stream(ctx, grid, WithWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	var seen int
	for sr := range ch {
		seen++
		if sr.Err == nil {
			t.Fatalf("cell %d completed under a pre-cancelled context", sr.Cell.Index)
		}
		if !errors.Is(sr.Err, context.Canceled) {
			t.Fatalf("cell %d: unexpected error %v", sr.Cell.Index, sr.Err)
		}
	}
	if seen != len(grid.Cells()) {
		t.Fatalf("drained %d results, want %d", seen, len(grid.Cells()))
	}
}

// TestStreamAbandonedConsumerNoGoroutineLeak: a consumer that walks away
// after one result (without draining the channel) must not strand the
// worker pool — the result channel is buffered to the cell count, so the
// workers finish their in-flight cells, the dispatcher drains the tail, and
// every goroutine exits.
func TestStreamAbandonedConsumerNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	grid := Grid{
		Design:  MustBenchmark("n100"),
		Seeds:   []int64{1, 2, 3, 4, 5, 6},
		Modes:   []Mode{PowerAware},
		Options: []Option{WithGridN(8), WithIterations(60), WithActivitySamples(2)},
	}
	ctx, cancel := context.WithCancel(context.Background())
	ch, err := Stream(ctx, grid, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	<-ch     // one result in hand...
	cancel() // ...then the consumer gives up and abandons the channel.

	// The pool must wind down on its own despite the unread results. Poll
	// with a deadline: goroutine counts include runtime/test housekeeping,
	// so allow a small slack above the baseline.
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC() // nudge finalizer/timer goroutines to settle
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutines did not settle: %d before, %d now\n%s",
				before, runtime.NumGoroutine(), buf)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestSweepBadOptionFailsFast checks a malformed cell surfaces before any
// flow runs.
func TestSweepBadOptionFailsFast(t *testing.T) {
	grid := sweepGrid(t)
	grid.Modes = []Mode{"warp-aware"}
	if _, err := Stream(context.Background(), grid); err == nil {
		t.Fatal("bad mode accepted by Stream")
	}
	if _, err := Sweep(context.Background(), Grid{}); err == nil {
		t.Fatal("nil design accepted by Sweep")
	}
}
