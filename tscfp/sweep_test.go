package tscfp

import (
	"bytes"
	"context"
	"errors"
	"testing"
)

// sweepGrid is the acceptance grid: 2 seeds × 2 modes × 2 resolutions = 8
// cells, at test scale.
func sweepGrid(t *testing.T) Grid {
	t.Helper()
	return Grid{
		Design: MustBenchmark("n100"),
		Seeds:  []int64{1, 2},
		Modes:  []Mode{PowerAware, TSCAware},
		GridNs: []int{8, 12},
		Options: []Option{
			WithIterations(60),
			WithActivitySamples(4),
			WithMaxDummyGroups(2),
		},
	}
}

// TestSweepCompletesGrid runs the 8-cell grid on 4 workers and checks every
// cell completes with a valid, JSON-serializable result.
func TestSweepCompletesGrid(t *testing.T) {
	grid := sweepGrid(t)
	cells := grid.Cells()
	if len(cells) != 8 {
		t.Fatalf("grid has %d cells, want 8", len(cells))
	}
	results, err := Sweep(context.Background(), grid, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 8 {
		t.Fatalf("sweep returned %d results, want 8", len(results))
	}
	for i, sr := range results {
		if sr.Cell.Index != i {
			t.Fatalf("result %d carries cell index %d", i, sr.Cell.Index)
		}
		if sr.Err != nil {
			t.Fatalf("cell %d (seed %d, %s, grid %d) failed: %v",
				i, sr.Cell.Seed, sr.Cell.Mode, sr.Cell.GridN, sr.Err)
		}
		if sr.Result == nil {
			t.Fatalf("cell %d has neither result nor error", i)
		}
		if err := sr.Result.Validate(); err != nil {
			t.Fatalf("cell %d invalid: %v", i, err)
		}
		if sr.Result.GridN != sr.Cell.GridN {
			t.Fatalf("cell %d ran at grid %d, want %d", i, sr.Result.GridN, sr.Cell.GridN)
		}
		var buf bytes.Buffer
		if err := sr.Result.WriteJSON(&buf); err != nil {
			t.Fatalf("cell %d does not serialize: %v", i, err)
		}
		if _, err := ReadResult(&buf); err != nil {
			t.Fatalf("cell %d JSON does not decode: %v", i, err)
		}
	}
}

// TestSweepMatchesSequentialRuns checks worker scheduling cannot leak into
// results: each sweep cell equals the same flow run alone.
func TestSweepMatchesSequentialRuns(t *testing.T) {
	grid := Grid{
		Design:  MustBenchmark("n100"),
		Seeds:   []int64{3, 4},
		Modes:   []Mode{PowerAware},
		Options: []Option{WithGridN(8), WithIterations(40), WithActivitySamples(2)},
	}
	results, err := Sweep(context.Background(), grid, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, sr := range results {
		if sr.Err != nil {
			t.Fatal(sr.Err)
		}
		solo, err := Run(context.Background(), grid.Design,
			append(append([]Option(nil), grid.Options...), sr.Cell.Options()...)...)
		if err != nil {
			t.Fatal(err)
		}
		a, b := sr.Result, solo
		a.Metrics.RuntimeSec, b.Metrics.RuntimeSec = 0, 0
		ja, _ := a.JSON()
		jb, _ := b.JSON()
		if !bytes.Equal(ja, jb) {
			t.Fatalf("cell %d differs between sweep and solo run", sr.Cell.Index)
		}
	}
}

// TestSweepCancellation cancels a large sweep early; every cell must drain
// out, completed or cancelled, and the channel must close.
func TestSweepCancellation(t *testing.T) {
	grid := Grid{
		Design:  MustBenchmark("n100"),
		Seeds:   []int64{1, 2, 3, 4, 5, 6},
		Modes:   []Mode{PowerAware},
		Options: []Option{WithGridN(8), WithIterations(400), WithActivitySamples(2)},
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ch, err := Stream(ctx, grid, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	var seen, cancelled int
	for sr := range ch {
		if seen == 0 {
			cancel() // first result in hand: stop the rest
		}
		seen++
		if sr.Err != nil {
			if !errors.Is(sr.Err, context.Canceled) {
				t.Fatalf("cell %d: unexpected error %v", sr.Cell.Index, sr.Err)
			}
			cancelled++
		}
	}
	if seen != len(grid.Cells()) {
		t.Fatalf("drained %d results, want %d", seen, len(grid.Cells()))
	}
	if cancelled == 0 {
		t.Fatal("cancellation arrived after every cell finished; enlarge the grid")
	}
}

// TestSweepBadOptionFailsFast checks a malformed cell surfaces before any
// flow runs.
func TestSweepBadOptionFailsFast(t *testing.T) {
	grid := sweepGrid(t)
	grid.Modes = []Mode{"warp-aware"}
	if _, err := Stream(context.Background(), grid); err == nil {
		t.Fatal("bad mode accepted by Stream")
	}
	if _, err := Sweep(context.Background(), Grid{}); err == nil {
		t.Fatal("nil design accepted by Sweep")
	}
}
